#include "src/ftl/flash_store.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

namespace ssmc {
namespace {

FlashSpec SmallFlashSpec() {
  FlashSpec spec;
  spec.name = "test flash";
  spec.read = {100, 10};
  spec.program = {1000, 100};
  spec.erase_sector_bytes = 2048;  // 4 pages of 512 B.
  spec.erase_ns = 1 * kMillisecond;
  spec.endurance_cycles = 1000000;  // Effectively unlimited unless lowered.
  spec.active_mw_per_mib = 30;
  spec.standby_mw_per_mib = 0.05;
  return spec;
}

std::vector<uint8_t> Block(uint8_t fill) {
  return std::vector<uint8_t>(512, fill);
}

class FlashStoreTest : public ::testing::Test {
 protected:
  // 64 sectors of 2 KiB = 128 KiB, 1 bank by default.
  FlashStoreTest() { Recreate(128 * 1024, 1, {}); }

  void Recreate(uint64_t capacity, int banks, FlashStoreOptions options) {
    flash_ = std::make_unique<FlashDevice>(SmallFlashSpec(), capacity, banks,
                                           clock_, /*seed=*/3);
    store_ = std::make_unique<FlashStore>(*flash_, options);
  }

  SimClock clock_;
  std::unique_ptr<FlashDevice> flash_;
  std::unique_ptr<FlashStore> store_;
};

TEST_F(FlashStoreTest, CapacityExcludesReserve) {
  // 64 sectors, reserve = max(banks+1, ceil(0.10*64)=7) = 7 -> 57 sectors *
  // 4 pages = 228 blocks.
  EXPECT_EQ(store_->num_blocks(), 57u * 4);
  EXPECT_EQ(store_->block_bytes(), 512u);
}

TEST_F(FlashStoreTest, UnwrittenBlockIsNotFound) {
  auto out = Block(0);
  EXPECT_EQ(store_->Read(0, out).status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(store_->IsMapped(0));
}

TEST_F(FlashStoreTest, WriteThenReadRoundTrips) {
  auto data = Block(0xAB);
  ASSERT_TRUE(store_->Write(5, data).ok());
  EXPECT_TRUE(store_->IsMapped(5));
  auto out = Block(0);
  ASSERT_TRUE(store_->Read(5, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(FlashStoreTest, OverwriteReturnsNewData) {
  ASSERT_TRUE(store_->Write(9, Block(1)).ok());
  ASSERT_TRUE(store_->Write(9, Block(2)).ok());
  auto out = Block(0);
  ASSERT_TRUE(store_->Read(9, out).ok());
  EXPECT_EQ(out, Block(2));
}

TEST_F(FlashStoreTest, OverwritesNeverEraseInline) {
  // Out-of-place writes mean an overwrite costs one program, not a
  // read-erase-rewrite of the whole sector.
  ASSERT_TRUE(store_->Write(0, Block(1)).ok());
  const uint64_t erases_before = flash_->stats().erases.value();
  ASSERT_TRUE(store_->Write(0, Block(2)).ok());
  EXPECT_EQ(flash_->stats().erases.value(), erases_before);
}

TEST_F(FlashStoreTest, WrongSizeRejected) {
  std::vector<uint8_t> small(100);
  EXPECT_EQ(store_->Write(0, small).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(store_->Read(0, small).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(FlashStoreTest, OutOfRangeRejected) {
  auto b = Block(0);
  EXPECT_EQ(store_->Write(store_->num_blocks(), b).status().code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(store_->Read(store_->num_blocks(), b).status().code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(store_->Trim(store_->num_blocks()).code(),
            ErrorCode::kOutOfRange);
}

TEST_F(FlashStoreTest, TrimUnmapsBlock) {
  ASSERT_TRUE(store_->Write(3, Block(7)).ok());
  ASSERT_TRUE(store_->Trim(3).ok());
  EXPECT_FALSE(store_->IsMapped(3));
  auto out = Block(0);
  EXPECT_EQ(store_->Read(3, out).status().code(), ErrorCode::kNotFound);
  // Trim of an unmapped block is a no-op.
  EXPECT_TRUE(store_->Trim(3).ok());
}

TEST_F(FlashStoreTest, PhysicalAddressTracksRelocation) {
  ASSERT_TRUE(store_->Write(1, Block(1)).ok());
  Result<uint64_t> addr1 = store_->PhysicalAddressOf(1);
  ASSERT_TRUE(addr1.ok());
  ASSERT_TRUE(store_->Write(1, Block(2)).ok());
  Result<uint64_t> addr2 = store_->PhysicalAddressOf(1);
  ASSERT_TRUE(addr2.ok());
  EXPECT_NE(addr1.value(), addr2.value());
  EXPECT_EQ(store_->PhysicalAddressOf(2).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(FlashStoreTest, FillToLogicalCapacitySucceeds) {
  auto data = Block(0x11);
  for (uint64_t b = 0; b < store_->num_blocks(); ++b) {
    ASSERT_TRUE(store_->Write(b, data).ok()) << "block " << b;
  }
  // Every block readable afterwards.
  auto out = Block(0);
  ASSERT_TRUE(store_->Read(store_->num_blocks() - 1, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(FlashStoreTest, SustainedOverwriteTriggersCleaning) {
  auto data = Block(0x22);
  // Fill, then overwrite everything several times: forces GC.
  for (int round = 0; round < 6; ++round) {
    for (uint64_t b = 0; b < store_->num_blocks(); ++b) {
      ASSERT_TRUE(store_->Write(b, data).ok())
          << "round " << round << " block " << b;
    }
  }
  EXPECT_GT(store_->stats().gc_runs.value(), 0u);
  EXPECT_GT(store_->stats().erases.value(), 0u);
}

TEST_F(FlashStoreTest, DataIntactAfterHeavyCleaning) {
  // Unique content per block, many overwrites of a hot subset; verify the
  // cold blocks survive relocation.
  for (uint64_t b = 0; b < store_->num_blocks(); ++b) {
    ASSERT_TRUE(store_->Write(b, Block(static_cast<uint8_t>(b * 7))).ok());
  }
  for (int round = 0; round < 40; ++round) {
    for (uint64_t b = 0; b < 16; ++b) {  // Hot blocks.
      ASSERT_TRUE(
          store_->Write(b, Block(static_cast<uint8_t>(round + b))).ok());
    }
  }
  for (uint64_t b = 16; b < store_->num_blocks(); ++b) {
    auto out = Block(0);
    ASSERT_TRUE(store_->Read(b, out).ok()) << "block " << b;
    EXPECT_EQ(out, Block(static_cast<uint8_t>(b * 7))) << "block " << b;
  }
}

TEST_F(FlashStoreTest, WriteAmplificationAtLeastOne) {
  EXPECT_DOUBLE_EQ(store_->WriteAmplification(), 1.0);
  for (int round = 0; round < 4; ++round) {
    for (uint64_t b = 0; b < store_->num_blocks(); ++b) {
      ASSERT_TRUE(store_->Write(b, Block(1)).ok());
    }
  }
  EXPECT_GE(store_->WriteAmplification(), 1.0);
}

TEST_F(FlashStoreTest, UniformOverwriteHasLowAmplification) {
  // Pure sequential overwrite leaves victims fully dead: the cleaner should
  // relocate almost nothing.
  for (int round = 0; round < 6; ++round) {
    for (uint64_t b = 0; b < store_->num_blocks(); ++b) {
      ASSERT_TRUE(store_->Write(b, Block(1)).ok());
    }
  }
  EXPECT_LT(store_->WriteAmplification(), 1.3);
}

TEST_F(FlashStoreTest, MultiBankSpreadsWrites) {
  FlashStoreOptions opts;
  Recreate(128 * 1024, 4, opts);
  for (uint64_t b = 0; b < 32; ++b) {
    ASSERT_TRUE(store_->Write(b, Block(1)).ok());
  }
  // With round-robin placement, consecutive blocks land in distinct banks.
  std::map<int, int> bank_counts;
  for (uint64_t b = 0; b < 32; ++b) {
    Result<uint64_t> addr = store_->PhysicalAddressOf(b);
    ASSERT_TRUE(addr.ok());
    bank_counts[flash_->BankOfAddress(addr.value())]++;
  }
  EXPECT_EQ(bank_counts.size(), 4u);
  for (const auto& [bank, count] : bank_counts) {
    EXPECT_EQ(count, 8) << "bank " << bank;
  }
}

TEST_F(FlashStoreTest, BackgroundWritesDoNotAdvanceClock) {
  FlashStoreOptions opts;
  opts.background_writes = true;
  Recreate(128 * 1024, 1, opts);
  const SimTime before = clock_.now();
  ASSERT_TRUE(store_->Write(0, Block(1)).ok());
  EXPECT_EQ(clock_.now(), before);
  // But the bank is genuinely occupied.
  EXPECT_GT(flash_->BankBusyUntil(0), before);
}

TEST_F(FlashStoreTest, DynamicWearBeatsNoneOnSkew) {
  // Workload: hammer a few hot blocks. With kNone the same few sectors
  // cycle; with kDynamic reuse spreads over the free pool.
  auto run = [&](WearPolicy wear) {
    FlashStoreOptions opts;
    opts.wear = wear;
    opts.cleaner = CleanerPolicy::kGreedy;
    Recreate(128 * 1024, 1, opts);
    // Occupy most blocks once (cold data), then hammer 8 hot blocks.
    for (uint64_t b = 0; b < store_->num_blocks(); ++b) {
      EXPECT_TRUE(store_->Write(b, Block(1)).ok());
    }
    for (int i = 0; i < 3000; ++i) {
      EXPECT_TRUE(store_->Write(i % 8, Block(2)).ok());
    }
    return flash_->SummarizeWear();
  };
  const FlashDevice::WearSummary none = run(WearPolicy::kNone);
  const FlashDevice::WearSummary dynamic = run(WearPolicy::kDynamic);
  EXPECT_LT(dynamic.stddev_erases, none.stddev_erases);
}

TEST_F(FlashStoreTest, StaticWearLevelingMovesColdData) {
  FlashStoreOptions opts;
  opts.wear = WearPolicy::kStatic;
  opts.cleaner = CleanerPolicy::kGreedy;
  opts.static_wear_check_interval = 8;
  opts.static_wear_delta = 8;
  Recreate(128 * 1024, 1, opts);
  for (uint64_t b = 0; b < store_->num_blocks(); ++b) {
    ASSERT_TRUE(store_->Write(b, Block(static_cast<uint8_t>(b))).ok());
  }
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(store_->Write(i % 8, Block(3)).ok());
  }
  EXPECT_GT(store_->stats().wear_migrations.value(), 0u);
  // Cold data still intact after migration.
  for (uint64_t b = 100; b < 110; ++b) {
    auto out = Block(0);
    ASSERT_TRUE(store_->Read(b, out).ok());
    EXPECT_EQ(out, Block(static_cast<uint8_t>(b)));
  }
}

TEST_F(FlashStoreTest, StaticLevelingTightensWearSpread) {
  auto run = [&](WearPolicy wear) {
    FlashStoreOptions opts;
    opts.wear = wear;
    opts.cleaner = CleanerPolicy::kGreedy;
    opts.static_wear_check_interval = 8;
    opts.static_wear_delta = 8;
    Recreate(128 * 1024, 1, opts);
    for (uint64_t b = 0; b < store_->num_blocks(); ++b) {
      EXPECT_TRUE(store_->Write(b, Block(1)).ok());
    }
    for (int i = 0; i < 8000; ++i) {
      EXPECT_TRUE(store_->Write(i % 8, Block(2)).ok());
    }
    const auto w = flash_->SummarizeWear();
    return w.max_erases - w.min_erases;
  };
  EXPECT_LT(run(WearPolicy::kStatic), run(WearPolicy::kDynamic));
}

TEST_F(FlashStoreTest, WornOutSectorsRetiredGracefully) {
  FlashSpec spec = SmallFlashSpec();
  spec.endurance_cycles = 20;
  flash_ = std::make_unique<FlashDevice>(spec, 32 * 1024, 1, clock_, 11);
  FlashStoreOptions opts;
  opts.cleaner = CleanerPolicy::kGreedy;
  store_ = std::make_unique<FlashStore>(*flash_, opts);
  // Hammer until sectors die; the store must retire them, not corrupt data.
  uint64_t writes = 0;
  for (int i = 0; i < 100000; ++i) {
    if (!store_->Write(static_cast<uint64_t>(i) % store_->num_blocks(),
                       Block(1))
             .ok()) {
      break;
    }
    ++writes;
  }
  EXPECT_GT(flash_->stats().bad_sectors.value(), 0u);
  EXPECT_GT(writes, 1000u);  // Device survived well past first failures.
}

TEST_F(FlashStoreTest, RetirementRemovesSectorFromEveryIndex) {
  // Wear sectors out under the full index complement (victim + cold + wear +
  // wear-ordered free pools) with differential validation on: a retired
  // sector must leave every index, and every later decision must still match
  // the linear-scan oracles.
  FlashSpec spec = SmallFlashSpec();
  spec.endurance_cycles = 20;
  flash_ = std::make_unique<FlashDevice>(spec, 64 * 1024, 4, clock_, 11);
  FlashStoreOptions opts;
  opts.cleaner = CleanerPolicy::kCostBenefit;
  opts.wear = WearPolicy::kStatic;
  opts.static_wear_check_interval = 8;
  opts.static_wear_delta = 8;
  opts.hot_bank_count = 1;
  opts.validate_indexes = true;
  store_ = std::make_unique<FlashStore>(*flash_, opts);

  for (int i = 0; i < 60000 && flash_->stats().bad_sectors.value() < 3; ++i) {
    if (!store_->Write(static_cast<uint64_t>(i) % store_->num_blocks(),
                       Block(1))
             .ok()) {
      break;
    }
  }
  ASSERT_GT(flash_->stats().bad_sectors.value(), 0u);
  uint64_t retired = 0;
  for (uint64_t s = 0; s < flash_->num_sectors(); ++s) {
    retired += store_->sector_meta(s).bad ? 1 : 0;
  }
  EXPECT_EQ(retired, flash_->stats().bad_sectors.value());
  // Membership audit: bad sectors are in no index, and sizes reconcile.
  EXPECT_TRUE(store_->CheckIndexConsistency().ok());
  // Every pick made on the way here agreed with its oracle.
  EXPECT_EQ(store_->index_validation_failures(), 0u);

  // The store keeps serving around the retired sectors.
  for (int i = 0; i < 500; ++i) {
    if (!store_->Write(static_cast<uint64_t>(i) % 16, Block(2)).ok()) {
      break;
    }
  }
  EXPECT_TRUE(store_->CheckIndexConsistency().ok());
  EXPECT_EQ(store_->index_validation_failures(), 0u);
}

TEST_F(FlashStoreTest, WearLevelMigrationFailureIsCountedNotSwallowed) {
  // A failing wear-leveling migration must surface in stats (and the log),
  // not vanish: the seed implementation dropped the error on the floor.
  FlashStoreOptions opts;
  opts.wear = WearPolicy::kStatic;
  opts.cleaner = CleanerPolicy::kGreedy;
  opts.static_wear_check_interval = 4;
  opts.static_wear_delta = 4;
  Recreate(128 * 1024, 1, opts);
  // Fill every block; blocks 0..3 land in sector 0 and are never overwritten,
  // so sector 0 stays fully valid at erase count 0 — the permanent coldest
  // occupied sector and thus every migration's target.
  for (uint64_t b = 0; b < store_->num_blocks(); ++b) {
    ASSERT_TRUE(store_->Write(b, Block(static_cast<uint8_t>(b))).ok());
  }
  // All migration reads from sector 0 fail (transient fault injection).
  flash_->InjectReadFaults(0, 1 << 20);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(store_->Write(100 + static_cast<uint64_t>(i) % 8, Block(3))
                    .ok());
  }
  EXPECT_GT(store_->stats().wear_level_failures.value(), 0u);
  EXPECT_EQ(store_->stats().wear_migrations.value(), 0u);

  // Once the fault clears, the cold data is still there and readable.
  flash_->InjectReadFaults(0, 0);
  for (uint64_t b = 0; b < 4; ++b) {
    auto out = Block(0);
    ASSERT_TRUE(store_->Read(b, out).ok());
    EXPECT_EQ(out, Block(static_cast<uint8_t>(b)));
  }
}

TEST_F(FlashStoreTest, StatsCountUserOps) {
  ASSERT_TRUE(store_->Write(0, Block(1)).ok());
  auto out = Block(0);
  ASSERT_TRUE(store_->Read(0, out).ok());
  ASSERT_TRUE(store_->Trim(0).ok());
  EXPECT_EQ(store_->stats().user_writes.value(), 1u);
  EXPECT_EQ(store_->stats().user_reads.value(), 1u);
  EXPECT_EQ(store_->stats().trims.value(), 1u);
}

// --- Bank segregation (Section 3.3) --------------------------------------

TEST_F(FlashStoreTest, SegregationSeparatesStreams) {
  FlashStoreOptions opts;
  opts.hot_bank_count = 1;
  Recreate(128 * 1024, 4, opts);
  // User writes land in bank 0; cold-hinted writes land in banks 1..3.
  for (uint64_t b = 0; b < 8; ++b) {
    ASSERT_TRUE(store_->Write(b, Block(1), WriteStream::kUser).ok());
    ASSERT_TRUE(
        store_->Write(100 + b, Block(2), WriteStream::kRelocation).ok());
  }
  for (uint64_t b = 0; b < 8; ++b) {
    Result<uint64_t> hot_addr = store_->PhysicalAddressOf(b);
    Result<uint64_t> cold_addr = store_->PhysicalAddressOf(100 + b);
    ASSERT_TRUE(hot_addr.ok());
    ASSERT_TRUE(cold_addr.ok());
    EXPECT_EQ(flash_->BankOfAddress(hot_addr.value()), 0);
    EXPECT_GT(flash_->BankOfAddress(cold_addr.value()), 0);
  }
}

TEST_F(FlashStoreTest, SegregationSpillsWhenColdRangeFull) {
  FlashStoreOptions opts;
  opts.hot_bank_count = 3;  // Cold range is a single bank (16 sectors).
  Recreate(128 * 1024, 4, opts);
  // Write far more cold data than one bank holds: must spill, not fail.
  for (uint64_t b = 0; b < store_->num_blocks(); ++b) {
    ASSERT_TRUE(
        store_->Write(b, Block(1), WriteStream::kRelocation).ok())
        << "block " << b;
  }
}

TEST_F(FlashStoreTest, HintIgnoredWithoutSegregation) {
  // hot_bank_count = 0: hinted and unhinted writes behave identically
  // (round-robin over all banks).
  FlashStoreOptions opts;
  Recreate(128 * 1024, 4, opts);
  for (uint64_t b = 0; b < 16; ++b) {
    ASSERT_TRUE(
        store_->Write(b, Block(1), WriteStream::kRelocation).ok());
  }
  std::map<int, int> banks;
  for (uint64_t b = 0; b < 16; ++b) {
    banks[flash_->BankOfAddress(store_->PhysicalAddressOf(b).value())]++;
  }
  EXPECT_EQ(banks.size(), 4u);
}

TEST_F(FlashStoreTest, ColdDataDistilledOutOfHotBanks) {
  FlashStoreOptions opts;
  opts.hot_bank_count = 1;
  opts.cold_eviction_age = kSecond;
  Recreate(128 * 1024, 4, opts);
  // Mis-place cold data as user writes: it fills the hot bank (16 sectors
  // of 4 pages = 64 blocks).
  for (uint64_t b = 0; b < 64; ++b) {
    ASSERT_TRUE(store_->Write(b, Block(static_cast<uint8_t>(b))).ok());
  }
  clock_.Advance(10 * kSecond);  // The squatters age past eviction age.
  // Hot churn on a few blocks forces hot-range exhaustion and distillation.
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(store_->Write(200 + (i % 4), Block(9)).ok());
    clock_.Advance(10 * kMillisecond);
  }
  // Most of the original 64 blocks should now live outside bank 0.
  int moved = 0;
  for (uint64_t b = 4; b < 64; ++b) {  // Skip blocks 0..3 (may be churned).
    Result<uint64_t> addr = store_->PhysicalAddressOf(b);
    ASSERT_TRUE(addr.ok());
    if (flash_->BankOfAddress(addr.value()) != 0) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 30);
  // And the data is intact.
  for (uint64_t b = 4; b < 64; ++b) {
    auto out = Block(0);
    ASSERT_TRUE(store_->Read(b, out).ok());
    EXPECT_EQ(out, Block(static_cast<uint8_t>(b)));
  }
}

// --- Victim-selection policy unit tests ---------------------------------

class VictimPolicyTest : public ::testing::Test {
 protected:
  static SectorMeta Meta(uint32_t valid, uint32_t dead, SimTime last_write,
                         bool active = false, bool free = false,
                         bool bad = false) {
    SectorMeta m;
    m.valid_pages = valid;
    m.dead_pages = dead;
    m.next_free_page = valid + dead;
    m.last_write_time = last_write;
    m.active = active;
    m.free = free;
    m.bad = bad;
    return m;
  }
};

TEST_F(VictimPolicyTest, NoCandidatesReturnsMinusOne) {
  std::vector<SectorMeta> sectors = {
      Meta(4, 0, 0),                         // No dead pages.
      Meta(0, 4, 0, /*active=*/true),        // Active.
      Meta(0, 0, 0, false, /*free=*/true),   // Free.
      Meta(0, 4, 0, false, false, /*bad=*/true),  // Bad.
  };
  EXPECT_EQ(PickCleaningVictim(sectors, 4, CleanerPolicy::kGreedy, 100), -1);
  EXPECT_EQ(PickCleaningVictim(sectors, 4, CleanerPolicy::kCostBenefit, 100),
            -1);
}

TEST_F(VictimPolicyTest, GreedyPicksMostDead) {
  std::vector<SectorMeta> sectors = {
      Meta(3, 1, 0),
      Meta(1, 3, 0),
      Meta(2, 2, 0),
  };
  EXPECT_EQ(PickCleaningVictim(sectors, 4, CleanerPolicy::kGreedy, 100), 1);
}

TEST_F(VictimPolicyTest, CostBenefitPrefersOldWhenUtilizationTies) {
  std::vector<SectorMeta> sectors = {
      Meta(2, 2, /*last_write=*/90),  // Young.
      Meta(2, 2, /*last_write=*/10),  // Old.
  };
  EXPECT_EQ(PickCleaningVictim(sectors, 4, CleanerPolicy::kCostBenefit, 100),
            1);
}

TEST_F(VictimPolicyTest, CostBenefitWeighsAgeAgainstUtilization) {
  // A very old, fairly full sector can beat a young, mostly-dead one:
  // age 1000 * (1-0.75)/(1+0.75) = 142.9 vs age 10 * (1-0.25)/(1+0.25) = 6.
  std::vector<SectorMeta> sectors = {
      Meta(1, 3, /*last_write=*/990),   // Young, mostly dead.
      Meta(3, 1, /*last_write=*/0),     // Old, mostly valid.
  };
  EXPECT_EQ(
      PickCleaningVictim(sectors, 4, CleanerPolicy::kCostBenefit, 1000), 1);
  // Greedy makes the opposite call.
  EXPECT_EQ(PickCleaningVictim(sectors, 4, CleanerPolicy::kGreedy, 1000), 0);
}

}  // namespace
}  // namespace ssmc
