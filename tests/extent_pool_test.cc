#include "src/support/extent.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

namespace ssmc {
namespace {

void Fill(PayloadRef& ref, uint8_t byte) {
  std::memset(ref.MutableData(), byte, ref.size());
}

bool AllBytesAre(const PayloadRef& ref, uint8_t byte) {
  for (size_t i = 0; i < ref.size(); ++i) {
    if (ref.data()[i] != byte) return false;
  }
  return true;
}

TEST(ExtentPoolTest, RefcountRoundTrip) {
  ExtentPool pool(512, /*extents_per_slab=*/4);
  EXPECT_EQ(pool.payload_bytes(), 512u);
  EXPECT_EQ(pool.live(), 0u);

  PayloadRef a = pool.Allocate();
  ASSERT_TRUE(a);
  EXPECT_EQ(a.size(), 512u);
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(pool.live(), 1u);

  PayloadRef b = a;  // Copy: same extent, bumped count.
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(b.use_count(), 2u);
  EXPECT_TRUE(a.SharesStorageWith(b));
  EXPECT_EQ(pool.live(), 1u);

  PayloadRef c = std::move(b);  // Move: no bump, b empties.
  EXPECT_FALSE(b);
  EXPECT_EQ(b.use_count(), 0u);
  EXPECT_EQ(c.use_count(), 2u);
  EXPECT_TRUE(a.SharesStorageWith(c));

  c.Reset();
  EXPECT_EQ(a.use_count(), 1u);
  a.Reset();
  EXPECT_EQ(pool.live(), 0u);
}

TEST(ExtentPoolTest, CopyOnWritePreservesAliasedBytes) {
  ExtentPool pool(64);
  PayloadRef original = pool.Allocate();
  Fill(original, 0xAA);

  PayloadRef alias = original;
  ASSERT_TRUE(alias.SharesStorageWith(original));

  // Writing through a shared ref must clone, not scribble on the alias.
  Fill(alias, 0xBB);
  EXPECT_FALSE(alias.SharesStorageWith(original));
  EXPECT_EQ(original.use_count(), 1u);
  EXPECT_EQ(alias.use_count(), 1u);
  EXPECT_TRUE(AllBytesAre(original, 0xAA));
  EXPECT_TRUE(AllBytesAre(alias, 0xBB));

  // A sole owner writes in place: same extent before and after.
  const uint8_t* before = alias.data();
  Fill(alias, 0xCC);
  EXPECT_EQ(alias.data(), before);
}

TEST(ExtentPoolTest, CloneSeesSharedBytesAtCowTime) {
  ExtentPool pool(32);
  PayloadRef a = pool.Allocate();
  Fill(a, 0x11);
  PayloadRef b = a;
  // The CoW clone starts from the shared contents, then diverges.
  uint8_t* p = b.MutableData();
  EXPECT_EQ(p[0], 0x11);
  p[0] = 0x22;
  EXPECT_EQ(a.data()[0], 0x11);
  EXPECT_EQ(b.data()[0], 0x22);
}

TEST(ExtentPoolTest, AllocateCopyDuplicatesSource) {
  ExtentPool pool(16);
  std::vector<uint8_t> src(16);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<uint8_t>(i);
  PayloadRef ref = pool.AllocateCopy(src.data());
  EXPECT_EQ(std::memcmp(ref.data(), src.data(), src.size()), 0);
  src[0] = 0xFF;  // The extent owns its bytes; mutating the source is benign.
  EXPECT_EQ(ref.data()[0], 0);
}

TEST(ExtentPoolTest, ResetReusesHighWaterWithoutHeapGrowth) {
  ExtentPool pool(128, /*extents_per_slab=*/8);
  constexpr size_t kHighWater = 20;  // 3 slabs.
  {
    std::vector<PayloadRef> held;
    for (size_t i = 0; i < kHighWater; ++i) held.push_back(pool.Allocate());
    EXPECT_EQ(pool.live(), kHighWater);
  }
  const uint64_t slabs_after_rampup = pool.slab_allocations();
  EXPECT_GE(pool.capacity(), kHighWater);

  pool.Reset();
  // A second ramp to the same high-water mark is served entirely from the
  // retained slabs.
  std::vector<PayloadRef> held;
  for (size_t i = 0; i < kHighWater; ++i) held.push_back(pool.Allocate());
  EXPECT_EQ(pool.slab_allocations(), slabs_after_rampup);
  EXPECT_EQ(pool.live(), kHighWater);
}

TEST(ExtentPoolTest, SteadyStateChurnTouchesNoAllocator) {
  ExtentPool pool(256, /*extents_per_slab=*/4);
  PayloadRef warm = pool.Allocate();
  const uint64_t slabs = pool.slab_allocations();
  for (int i = 0; i < 10000; ++i) {
    PayloadRef r = pool.Allocate();
    Fill(r, static_cast<uint8_t>(i));
    // r released here, recycled by the next iteration.
  }
  EXPECT_EQ(pool.slab_allocations(), slabs);
  EXPECT_EQ(pool.extents_allocated(), 1u + 10000u);
  EXPECT_EQ(pool.live(), 1u);
}

TEST(ExtentPoolTest, ExtentsMayOutliveThePool) {
  // FlashDevice payload refs outlive the FlashStore that owns the pool; the
  // detached State must keep the bytes valid until the last ref drops.
  PayloadRef survivor;
  {
    ExtentPool pool(64);
    survivor = pool.Allocate();
    Fill(survivor, 0x5A);
  }
  EXPECT_TRUE(AllBytesAre(survivor, 0x5A));
  EXPECT_EQ(survivor.size(), 64u);
  survivor.Reset();  // Reaps the orphaned State (leak-checked under ASan).
}

TEST(ExtentPoolTest, RecycledExtentsComeBackInSlabOrder) {
  ExtentPool pool(32, /*extents_per_slab=*/4);
  PayloadRef a = pool.Allocate();
  const uint8_t* first = a.data();
  a.Reset();
  PayloadRef b = pool.Allocate();
  EXPECT_EQ(b.data(), first);
}

}  // namespace
}  // namespace ssmc
