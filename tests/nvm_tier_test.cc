// E16 N-tier hierarchy tests: the NVM cache tier inside ResidencyManager
// (flash -> NVM admission, NVM -> DRAM climb, DRAM -> NVM demotion under
// pressure), hardware-managed page migration in AddressSpace (including
// survival across FTL cleaner relocation of the backing sectors), the
// machine-level trace attribution of reads to tiers, and the Ju et al.
// analytical oracle in tier_model.h.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/core/machine.h"
#include "src/storage/residency.h"
#include "src/storage/tier_model.h"
#include "src/support/rng.h"
#include "src/trace/generator.h"
#include "src/vm/address_space.h"

namespace ssmc {
namespace {

FlashSpec TestFlashSpec() {
  FlashSpec spec;
  spec.read = {100, 10};
  spec.program = {1000, 100};
  spec.erase_sector_bytes = 2048;
  spec.erase_ns = kMillisecond;
  spec.endurance_cycles = 1000000;
  return spec;
}

DramSpec TestDramSpec() {
  DramSpec spec;
  spec.read = {50, 10};
  spec.write = {60, 12};
  spec.active_mw_per_mib = 150;
  spec.standby_mw_per_mib = 1.5;
  return spec;
}

NvmSpec TestNvmSpec() {
  NvmSpec spec;
  spec.name = "test nvm";
  spec.read = {60, 20};
  spec.write = {120, 40};
  spec.endurance_writes = 1000000;
  return spec;
}

ResidencyOptions ReadPromoteOptions() {
  ResidencyOptions options;
  options.policy = ResidencyPolicy::kReadPromote;
  return options;
}

// 128-page DRAM pool, a 32-page NVM device, one-bank flash store.
class NvmTierTest : public ::testing::Test {
 protected:
  explicit NvmTierTest(ResidencyOptions options = ReadPromoteOptions(),
                       uint64_t nvm_bytes = 32 * 512)
      : dram_(TestDramSpec(), 64 * 1024, clock_),
        nvm_(TestNvmSpec(), nvm_bytes, 1, clock_),
        flash_(TestFlashSpec(), 256 * 1024, 1, clock_),
        store_(flash_, {}),
        manager_(dram_, store_, 512, options, &nvm_) {}

  ResidencyManager& res() { return manager_.residency(); }

  std::vector<uint8_t> Page(uint8_t fill) {
    return std::vector<uint8_t>(512, fill);
  }

  void SeedFlashBlock(uint64_t block, uint8_t fill) {
    ASSERT_TRUE(store_.Write(block, Page(fill)).ok());
  }

  SimClock clock_;
  DramDevice dram_;
  NvmDevice nvm_;
  FlashDevice flash_;
  FlashStore store_;
  StorageManager manager_;
};

TEST_F(NvmTierTest, FirstFlashReadAdmitsIntoNvmTier) {
  const BlockKey key{4, 2};
  SeedFlashBlock(9, 0x5C);

  // With an NVM tier the bottom-tier admission threshold (1.0) applies:
  // the very first flash read admits the block — into NVM, not DRAM.
  res().OnFlashRead(key, 9, clock_.now());
  EXPECT_TRUE(res().NvmCached(key));
  EXPECT_FALSE(res().CleanCached(key));
  EXPECT_EQ(res().Resolve(key, 9), Residency::kNvm);
  EXPECT_EQ(res().stats().nvm_promotions.value(), 1u);
  EXPECT_EQ(res().stats().nvm_promoted_bytes.value(), 512u);
  EXPECT_EQ(res().stats().promotions.value(), 0u);
  EXPECT_EQ(res().nvm_pages(), 1u);
  // The install charged an NVM device write of one page.
  EXPECT_EQ(nvm_.stats().written_bytes.value(), 512u);

  // The cached copy reads back byte-identical through the NVM device.
  auto out = Page(0);
  ASSERT_TRUE(res().ReadNvm(key, 0, out).ok());
  EXPECT_EQ(out, Page(0x5C));
  EXPECT_EQ(res().stats().nvm_hits.value(), 1u);
  EXPECT_EQ(res().stats().nvm_hit_bytes.value(), 512u);
  EXPECT_GT(nvm_.stats().read_bytes.value(), 0u);

  // Partial reads honor offsets; out-of-bounds and misses are rejected.
  std::vector<uint8_t> tail(12);
  ASSERT_TRUE(res().ReadNvm(key, 500, tail).ok());
  EXPECT_EQ(tail, std::vector<uint8_t>(12, 0x5C));
  std::vector<uint8_t> over(13);
  EXPECT_EQ(res().ReadNvm(key, 500, over).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(res().ReadNvm(BlockKey{9, 9}, 0, out).code(),
            ErrorCode::kNotFound);
}

TEST_F(NvmTierTest, HotNvmBlockClimbsIntoDram) {
  const BlockKey key{4, 2};
  SeedFlashBlock(9, 0x5C);
  res().OnFlashRead(key, 9, clock_.now());  // Heat 1.0: admitted to NVM.
  ASSERT_TRUE(res().NvmCached(key));

  // The next read's touch crosses the DRAM threshold (2.0): the block moves
  // one tier up and its NVM page returns to the pool.
  res().OnNvmRead(key, clock_.now());
  EXPECT_TRUE(res().CleanCached(key));
  EXPECT_FALSE(res().NvmCached(key));
  EXPECT_EQ(res().Resolve(key, 9), Residency::kClean);
  EXPECT_EQ(res().stats().nvm_to_dram_promotions.value(), 1u);
  EXPECT_EQ(res().stats().promotions.value(), 1u);
  EXPECT_EQ(manager_.free_nvm_pages(), manager_.total_nvm_pages());

  auto out = Page(0);
  ASSERT_TRUE(res().ReadClean(key, 0, out).ok());
  EXPECT_EQ(out, Page(0x5C));
}

TEST_F(NvmTierTest, InvalidationCoversEveryTier) {
  SeedFlashBlock(0, 0xAA);
  SeedFlashBlock(1, 0xBB);
  const BlockKey in_nvm{1, 0};
  const BlockKey in_dram{1, 1};
  res().OnFlashRead(in_nvm, 0, clock_.now());
  res().OnFlashRead(in_dram, 1, clock_.now());
  res().OnNvmRead(in_dram, clock_.now());
  ASSERT_TRUE(res().NvmCached(in_nvm));
  ASSERT_TRUE(res().CleanCached(in_dram));

  res().InvalidateClean(in_nvm);
  EXPECT_FALSE(res().NvmCached(in_nvm));
  EXPECT_EQ(res().stats().demotions_invalidated.value(), 1u);
  EXPECT_EQ(manager_.free_nvm_pages(), manager_.total_nvm_pages());

  res().InvalidateAllClean();
  EXPECT_FALSE(res().CleanCached(in_dram));
  EXPECT_EQ(res().clean_pages() + res().nvm_pages(), 0u);
}

TEST_F(NvmTierTest, TiersSnapshotReportsCapacityAndOccupancy) {
  auto tiers = res().Tiers();
  ASSERT_EQ(tiers.size(), 2u);
  EXPECT_EQ(tiers[0].residency, Residency::kClean);
  EXPECT_EQ(tiers[0].capacity_pages, 64u);  // 128 DRAM pages * 0.5.
  EXPECT_EQ(tiers[1].residency, Residency::kNvm);
  EXPECT_EQ(tiers[1].capacity_pages, 32u);
  EXPECT_EQ(tiers[0].cached_pages + tiers[1].cached_pages, 0u);

  SeedFlashBlock(0, 0xAA);
  res().OnFlashRead(BlockKey{1, 0}, 0, clock_.now());
  tiers = res().Tiers();
  EXPECT_EQ(tiers[1].cached_pages, 1u);
}

class NvmTinyTierTest : public NvmTierTest {
 protected:
  static ResidencyOptions TinyOptions() {
    ResidencyOptions options = ReadPromoteOptions();
    // 128 DRAM pages * 2/128 = two DRAM slots over two NVM slots.
    options.max_clean_fraction = 2.0 / 128.0;
    return options;
  }
  NvmTinyTierTest() : NvmTierTest(TinyOptions(), /*nvm_bytes=*/2 * 512) {}
};

TEST_F(NvmTinyTierTest, DramTailDemotesIntoNvmAndNvmTailDrops) {
  for (uint64_t b = 0; b < 4; ++b) {
    SeedFlashBlock(b, static_cast<uint8_t>(0xA0 + b));
  }
  // Admit from flash into NVM, then climb to DRAM on the second touch.
  auto climb = [&](uint64_t b) {
    res().OnFlashRead(BlockKey{1, b}, b, clock_.now());
    res().OnNvmRead(BlockKey{1, b}, clock_.now());
  };

  climb(0);
  climb(1);  // DRAM = {0, 1}, NVM empty.
  EXPECT_EQ(res().clean_pages(), 2u);
  EXPECT_EQ(res().nvm_pages(), 0u);

  // The third climb squeezes the DRAM tier: its LRU tail (block 0) falls
  // one tier, into NVM — not out of the hierarchy.
  climb(2);  // DRAM = {1, 2}, NVM = {0}.
  EXPECT_EQ(res().stats().demotions_to_nvm.value(), 1u);
  EXPECT_TRUE(res().NvmCached(BlockKey{1, 0}));
  EXPECT_TRUE(res().CleanCached(BlockKey{1, 1}));
  EXPECT_TRUE(res().CleanCached(BlockKey{1, 2}));

  // The fourth climb cascades: DRAM tail (1) demotes into a full NVM tier,
  // whose own LRU tail (0) drops — flash stays authoritative for it.
  climb(3);  // DRAM = {2, 3}, NVM = {1}.
  EXPECT_EQ(res().stats().demotions_to_nvm.value(), 2u);
  EXPECT_EQ(res().Resolve(BlockKey{1, 0}, 0), Residency::kFlash);
  EXPECT_TRUE(res().NvmCached(BlockKey{1, 1}));
  EXPECT_TRUE(res().CleanCached(BlockKey{1, 2}));
  EXPECT_TRUE(res().CleanCached(BlockKey{1, 3}));
  EXPECT_LE(res().clean_pages(), 2u);
  EXPECT_LE(res().nvm_pages(), 2u);

  // Every survivor still reads back its own bytes from its current tier.
  auto out = Page(0);
  ASSERT_TRUE(res().ReadNvm(BlockKey{1, 1}, 0, out).ok());
  EXPECT_EQ(out, Page(0xA1));
  ASSERT_TRUE(res().ReadClean(BlockKey{1, 2}, 0, out).ok());
  EXPECT_EQ(out, Page(0xA2));
  ASSERT_TRUE(res().ReadClean(BlockKey{1, 3}, 0, out).ok());
  EXPECT_EQ(out, Page(0xA3));
}

class NvmDisabledPolicyTest : public NvmTierTest {
 protected:
  NvmDisabledPolicyTest() : NvmTierTest(ResidencyOptions{}) {}
};

TEST_F(NvmDisabledPolicyTest, WriteBufferOnlyNeverFillsNvm) {
  // The tier exists (the machine has NVM), but the baseline policy migrates
  // nothing — byte-identical two-tier behavior with the device idle.
  ASSERT_TRUE(res().has_nvm_tier());
  SeedFlashBlock(0, 0xAA);
  for (int i = 0; i < 10; ++i) {
    res().OnFlashRead(BlockKey{1, 0}, 0, clock_.now());
  }
  EXPECT_EQ(res().nvm_pages(), 0u);
  EXPECT_EQ(res().stats().nvm_promotions.value(), 0u);
  EXPECT_EQ(nvm_.stats().written_bytes.value(), 0u);
}

// --- Hardware-managed migration (OS- vs hardware-managed, E16) ------------

TEST(HwMigrationTest, HotFlashPagesMigrateToNvmAndSurviveCleanerRelocation) {
  MachineConfig config;
  config.dram_bytes = 2 * kMiB;
  // A small store with small sectors so overwrite churn forces the cleaner
  // to relocate live sectors within the test's budget.
  config.flash_spec = GenericPaperFlash();
  config.flash_spec.erase_sector_bytes = 8 * kKiB;
  config.flash_spec.erase_ns = 50 * kMillisecond;
  config.flash_bytes = 2 * kMiB;
  config.flash_banks = 2;
  config.nvm_bytes = 64 * 512;
  config.hw_migration.enabled = true;
  config.hw_migration.epoch_accesses = 16;
  config.hw_migration.promote_threshold = 2;
  MobileComputer machine(config);
  machine.flash().set_validate_payloads(true);

  MemoryFileSystem& fs = machine.fs();
  std::vector<uint8_t> prog(32 * 512);
  for (size_t i = 0; i < prog.size(); ++i) {
    prog[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  ASSERT_TRUE(fs.Create("/prog").ok());
  ASSERT_TRUE(fs.Write("/prog", 0, prog).ok());
  ASSERT_TRUE(fs.Sync().ok());
  // Most of the card is live data, so churn can't just spread into free
  // sectors forever.
  constexpr uint64_t kFillBlocks = 2048;  // 1 MiB.
  ASSERT_TRUE(fs.Create("/fill").ok());
  {
    std::vector<uint8_t> fill(512, 0x11);
    for (uint64_t b = 0; b < kFillBlocks; ++b) {
      ASSERT_TRUE(fs.Write("/fill", b * 512, fill).ok());
      if (b % 256 == 255) {
        ASSERT_TRUE(fs.Sync().ok());
      }
    }
    ASSERT_TRUE(fs.Sync().ok());
  }

  AddressSpace& space = machine.CreateAddressSpace();
  const uint64_t base = 8 * kMiB;
  ASSERT_TRUE(space.MapFileCow(base, fs, "/prog", /*writable=*/true).ok());
  const uint64_t total_nvm = machine.storage().free_nvm_pages();

  // Touch every page once (mappings established), then hammer four hot
  // pages until the access-counter epoch fires and migrates them.
  std::vector<uint8_t> out(512);
  for (uint64_t p = 0; p < 32; ++p) {
    ASSERT_TRUE(space.Read(base + p * 512, out).ok());
  }
  for (int round = 0; round < 8; ++round) {
    for (uint64_t p = 0; p < 4; ++p) {
      ASSERT_TRUE(space.Read(base + p * 512, out).ok());
    }
  }
  EXPECT_GT(space.stats().hw_epochs.value(), 0u);
  ASSERT_GE(space.stats().hw_migrations.value(), 4u);
  EXPECT_GE(space.resident_nvm_pages(), 4u);
  EXPECT_LT(machine.storage().free_nvm_pages(), total_nvm);

  // Migrated pages are served from NVM: correct bytes, no flash traffic,
  // no new faults.
  const uint64_t faults = space.stats().faults.value();
  const uint64_t flash_reads = machine.flash().stats().read_bytes.value();
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(space.Read(base + p * 512, out).ok());
    EXPECT_EQ(out, std::vector<uint8_t>(prog.begin() + p * 512,
                                        prog.begin() + (p + 1) * 512));
  }
  EXPECT_EQ(space.stats().faults.value(), faults);
  EXPECT_EQ(machine.flash().stats().read_bytes.value(), flash_reads);

  // Overwrite random /fill blocks until the FTL cleaner relocates live
  // sectors — including, possibly, /prog's backing blocks.
  Rng rng(99);
  std::vector<uint8_t> blk(512);
  for (int round = 0;
       machine.flash_store().stats().gc_relocations.value() == 0 && round < 200;
       ++round) {
    for (int b = 0; b < 128; ++b) {
      for (auto& byte : blk) {
        byte = static_cast<uint8_t>(rng.Next());
      }
      ASSERT_TRUE(fs.Write("/fill", rng.NextBelow(kFillBlocks) * 512, blk).ok());
    }
    ASSERT_TRUE(fs.Sync().ok());
  }
  ASSERT_GT(machine.flash_store().stats().gc_relocations.value(), 0u);

  // The mapping survived the cleaner: every page — NVM-migrated and
  // flash-mapped alike — still reads its original bytes with no refault.
  for (uint64_t p = 0; p < 32; ++p) {
    ASSERT_TRUE(space.Read(base + p * 512, out).ok());
    ASSERT_EQ(out, std::vector<uint8_t>(prog.begin() + p * 512,
                                        prog.begin() + (p + 1) * 512))
        << "page " << p << " diverged after cleaner relocation";
  }
  EXPECT_EQ(space.stats().faults.value(), faults);

  // A write to a migrated page takes the normal CoW path to DRAM and frees
  // its NVM page (hardware-migrated pages stay read-only).
  const uint64_t nvm_resident = space.resident_nvm_pages();
  std::vector<uint8_t> edit(16, 0xEE);
  ASSERT_TRUE(space.Write(base, edit).ok());
  EXPECT_EQ(space.resident_nvm_pages(), nvm_resident - 1);
  ASSERT_TRUE(space.Read(base, out).ok());
  EXPECT_EQ(std::vector<uint8_t>(out.begin(), out.begin() + 16), edit);
  EXPECT_EQ(std::vector<uint8_t>(out.begin() + 16, out.end()),
            std::vector<uint8_t>(prog.begin() + 16, prog.begin() + 512));

  // Unmapping balances every allocation: all NVM pages return to the pool,
  // and the device's payload shadow card never saw a mismatch.
  ASSERT_TRUE(space.Unmap(base).ok());
  EXPECT_EQ(space.resident_nvm_pages(), 0u);
  EXPECT_EQ(machine.storage().free_nvm_pages(), total_nvm);
  EXPECT_EQ(machine.flash().payload_validation_failures(), 0u);
}

TEST(HwMigrationTest, FallsBackToDramWithoutNvm) {
  MachineConfig config;
  config.dram_bytes = 2 * kMiB;
  config.flash_bytes = 4 * kMiB;
  config.nvm_bytes = 0;  // No NVM device at all.
  config.hw_migration.enabled = true;
  config.hw_migration.epoch_accesses = 8;
  config.hw_migration.promote_threshold = 2;
  MobileComputer machine(config);

  MemoryFileSystem& fs = machine.fs();
  std::vector<uint8_t> prog(8 * 512, 0x3C);
  ASSERT_TRUE(fs.Create("/prog").ok());
  ASSERT_TRUE(fs.Write("/prog", 0, prog).ok());
  ASSERT_TRUE(fs.Sync().ok());

  AddressSpace& space = machine.CreateAddressSpace();
  ASSERT_TRUE(space.MapFileCow(4 * kMiB, fs, "/prog", false).ok());
  std::vector<uint8_t> out(512);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(space.Read(4 * kMiB, out).ok());
  }
  EXPECT_GT(space.stats().hw_migrations.value(), 0u);
  EXPECT_EQ(space.resident_nvm_pages(), 0u);
  EXPECT_GT(space.resident_dram_pages(), 0u);
  EXPECT_EQ(out, std::vector<uint8_t>(512, 0x3C));
}

// --- Machine-level trace attribution --------------------------------------

TEST(MachineNvmTest, RunTraceAttributesReadBytesToTiers) {
  // The E12 cell shape: a small write buffer and a minutes-long read-heavy
  // trace, so the flush daemon pushes blocks to flash and reads come back
  // through the cache tiers.
  MachineConfig config;
  config.dram_bytes = 2 * kMiB;
  config.flash_spec = GenericPaperFlash();
  config.flash_spec.erase_sector_bytes = 8 * kKiB;
  config.flash_spec.erase_ns = 50 * kMillisecond;
  config.flash_bytes = 16 * kMiB;
  config.flash_banks = 2;
  config.fs_options.write_buffer_pages = 256;
  config.nvm_bytes = 1 * kMiB;
  config.residency.policy = ResidencyPolicy::kReadPromote;
  MobileComputer machine(config);

  WorkloadOptions options = ReadMostlyWorkload();
  options.seed = 1212;
  options.duration = 3 * kMinute;
  options.mean_interarrival = 15 * kMillisecond;
  options.max_file_bytes = 64 * 1024;
  const Trace trace = WorkloadGenerator(options).Generate();
  ReplayReport report = machine.RunTrace(trace);
  EXPECT_EQ(report.failures, 0u);

  // The office workload re-reads files: some reads land in DRAM (buffer or
  // clean cache), some in the NVM tier, and a cold remainder goes to flash.
  EXPECT_GT(report.tier_dram_read_bytes, 0u);
  EXPECT_GT(report.tier_nvm_read_bytes, 0u);
  EXPECT_GT(report.tier_flash_read_bytes, 0u);

  // Merge folds the tier counters like every other report field.
  ReplayReport merged;
  merged.Merge(report);
  merged.Merge(report);
  EXPECT_EQ(merged.tier_nvm_read_bytes, 2 * report.tier_nvm_read_bytes);
  EXPECT_EQ(merged.tier_dram_read_bytes, 2 * report.tier_dram_read_bytes);
  EXPECT_EQ(merged.tier_flash_read_bytes, 2 * report.tier_flash_read_bytes);
}

// --- Analytical oracle (tier_model.h) -------------------------------------

TEST(TierModelTest, ZipfPopularityIsNormalizedAndDecreasing) {
  const auto p = ZipfPopularity(1000, 1.0);
  ASSERT_EQ(p.size(), 1000u);
  double sum = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    sum += p[i];
    if (i > 0) {
      EXPECT_LE(p[i], p[i - 1]);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // s = 0 is uniform.
  const auto u = ZipfPopularity(10, 0.0);
  EXPECT_DOUBLE_EQ(u[0], u[9]);
}

TEST(TierModelTest, CheTimeSolvesTheFixedPoint) {
  const auto p = ZipfPopularity(1000, 1.0);
  const double T = CheCharacteristicTime(p, 100);
  ASSERT_GT(T, 0.0);
  double filled = 0;
  for (double pi : p) {
    filled += 1.0 - std::exp(-pi * T);
  }
  EXPECT_NEAR(filled, 100.0, 1e-6);
}

TEST(TierModelTest, HitRateIsMonotoneAndClamped) {
  const auto p = ZipfPopularity(500, 0.8);
  EXPECT_DOUBLE_EQ(LruHitRate(p, 0), 0.0);
  EXPECT_DOUBLE_EQ(LruHitRate(p, 500), 1.0);
  double prev = 0;
  for (double slots : {10.0, 50.0, 100.0, 250.0, 499.0}) {
    const double rate = LruHitRate(p, slots);
    EXPECT_GT(rate, prev);
    EXPECT_LT(rate, 1.0);
    prev = rate;
  }
}

TEST(TierModelTest, UniformPopularityHitsAtCacheFraction) {
  // With p_i = 1/n every Che term equals C/n, so the hit rate is exactly
  // the cache fraction.
  const auto p = ZipfPopularity(100, 0.0);
  EXPECT_NEAR(LruHitRate(p, 25), 0.25, 1e-9);
  EXPECT_NEAR(LruHitRate(p, 80), 0.80, 1e-9);
}

TEST(TierModelTest, ExclusiveLadderSharesAddUp) {
  const auto p = ZipfPopularity(4096, 1.0);
  const TieredHitRates r = TieredLruHitRates(p, 64, 256);
  EXPECT_DOUBLE_EQ(r.dram, LruHitRate(p, 64));
  EXPECT_DOUBLE_EQ(r.combined, LruHitRate(p, 64 + 256));
  EXPECT_NEAR(r.dram + r.nvm, r.combined, 1e-12);
  EXPECT_GT(r.nvm, 0.0);
  // More NVM never hurts the combined rate.
  EXPECT_GE(TieredLruHitRates(p, 64, 512).combined, r.combined);
}

}  // namespace
}  // namespace ssmc
