#include "src/vm/address_space.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

namespace ssmc {
namespace {

class AddressSpaceTest : public ::testing::Test {
 protected:
  AddressSpaceTest() {
    DramSpec dram_spec;
    dram_spec.read = {80, 25};
    dram_spec.write = {80, 25};
    dram_spec.active_mw_per_mib = 150;
    dram_spec.standby_mw_per_mib = 1.5;
    dram_ = std::make_unique<DramDevice>(dram_spec, 2 * kMiB, clock_);

    FlashSpec flash_spec;
    flash_spec.read = {150, 100};
    flash_spec.program = {2000, 10000};
    flash_spec.erase_sector_bytes = 4096;
    flash_spec.erase_ns = 100 * kMillisecond;
    flash_spec.endurance_cycles = 1000000;
    flash_ = std::make_unique<FlashDevice>(flash_spec, 8 * kMiB, 2, clock_);

    store_ = std::make_unique<FlashStore>(*flash_, FlashStoreOptions{});
    manager_ = std::make_unique<StorageManager>(*dram_, *store_, 512);
    fs_ = std::make_unique<MemoryFileSystem>(*manager_, MemoryFsOptions{});
    space_ = std::make_unique<AddressSpace>(*manager_);
  }

  // Creates a synced file whose blocks all live in flash.
  void MakeFlashFile(const std::string& path, size_t bytes, uint8_t seed) {
    ASSERT_TRUE(fs_->Create(path).ok());
    std::vector<uint8_t> data(bytes);
    for (size_t i = 0; i < bytes; ++i) {
      data[i] = static_cast<uint8_t>(seed + i * 7);
    }
    ASSERT_TRUE(fs_->Write(path, 0, data).ok());
    ASSERT_TRUE(fs_->Sync().ok());
  }

  SimClock clock_;
  std::unique_ptr<DramDevice> dram_;
  std::unique_ptr<FlashDevice> flash_;
  std::unique_ptr<FlashStore> store_;
  std::unique_ptr<StorageManager> manager_;
  std::unique_ptr<MemoryFileSystem> fs_;
  std::unique_ptr<AddressSpace> space_;
};

TEST_F(AddressSpaceTest, AnonymousZeroFillOnFirstTouch) {
  ASSERT_TRUE(space_->MapAnonymous(0x10000, 4096, "heap").ok());
  std::vector<uint8_t> out(100, 0xFF);
  ASSERT_TRUE(space_->Read(0x10000, out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(100, 0));
  EXPECT_GE(space_->stats().zero_fill_faults.value(), 1u);
  EXPECT_GT(space_->resident_dram_pages(), 0u);
}

TEST_F(AddressSpaceTest, AnonymousWriteReadRoundTrip) {
  ASSERT_TRUE(space_->MapAnonymous(0x10000, 4096, "heap").ok());
  std::vector<uint8_t> data(1000);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_TRUE(space_->Write(0x10000 + 300, data).ok());
  std::vector<uint8_t> out(1000);
  ASSERT_TRUE(space_->Read(0x10000 + 300, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(AddressSpaceTest, UnmappedAccessRejected) {
  std::vector<uint8_t> out(10);
  EXPECT_EQ(space_->Read(0x999000, out).status().code(),
            ErrorCode::kOutOfRange);
}

TEST_F(AddressSpaceTest, OverlappingMapRejected) {
  ASSERT_TRUE(space_->MapAnonymous(0x10000, 8192, "a").ok());
  EXPECT_EQ(space_->MapAnonymous(0x11000, 4096, "b").code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(AddressSpaceTest, FileCowMapsFlashInPlace) {
  MakeFlashFile("/lib", 4096, 3);
  ASSERT_TRUE(space_->MapFileCow(0x20000, *fs_, "/lib", true).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(space_->Read(0x20000, out).ok());
  // Content matches the file.
  std::vector<uint8_t> expected(512);
  for (size_t i = 0; i < 512; ++i) {
    expected[i] = static_cast<uint8_t>(3 + i * 7);
  }
  EXPECT_EQ(out, expected);
  // No DRAM consumed: the page maps into flash.
  EXPECT_EQ(space_->resident_dram_pages(), 0u);
  EXPECT_GE(space_->stats().flash_map_faults.value(), 1u);
}

TEST_F(AddressSpaceTest, CowCopiesOnFirstWrite) {
  MakeFlashFile("/data", 2048, 5);
  ASSERT_TRUE(space_->MapFileCow(0x20000, *fs_, "/data", true).ok());
  // Read first: flash-mapped.
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(space_->Read(0x20000, out).ok());
  EXPECT_EQ(space_->resident_dram_pages(), 0u);
  // Write: page copies to DRAM.
  std::vector<uint8_t> patch(16, 0xEE);
  ASSERT_TRUE(space_->Write(0x20000 + 8, patch).ok());
  EXPECT_EQ(space_->resident_dram_pages(), 1u);
  EXPECT_GE(space_->stats().cow_faults.value(), 1u);
  // Merged content: patch over original.
  ASSERT_TRUE(space_->Read(0x20000, out).ok());
  EXPECT_EQ(out[7], static_cast<uint8_t>(5 + 7 * 7));
  EXPECT_EQ(out[8], 0xEE);
  EXPECT_EQ(out[24], static_cast<uint8_t>(5 + 24 * 7));
  // Other pages remain flash-mapped (no extra DRAM).
  ASSERT_TRUE(space_->Read(0x20000 + 1024, out).ok());
  EXPECT_EQ(space_->resident_dram_pages(), 1u);
}

TEST_F(AddressSpaceTest, CowWritesDoNotChangeTheFile) {
  MakeFlashFile("/orig", 512, 1);
  ASSERT_TRUE(space_->MapFileCow(0x20000, *fs_, "/orig", true).ok());
  std::vector<uint8_t> patch(512, 0xAA);
  ASSERT_TRUE(space_->Write(0x20000, patch).ok());
  // The file's contents are untouched (private mapping).
  std::vector<uint8_t> file_data(512);
  ASSERT_TRUE(fs_->Read("/orig", 0, file_data).ok());
  EXPECT_EQ(file_data[0], static_cast<uint8_t>(1));
}

TEST_F(AddressSpaceTest, WriteToReadOnlyMappingDenied) {
  MakeFlashFile("/ro", 512, 2);
  ASSERT_TRUE(space_->MapFileCow(0x20000, *fs_, "/ro", false).ok());
  std::vector<uint8_t> patch(8, 1);
  EXPECT_EQ(space_->Write(0x20000, patch).status().code(),
            ErrorCode::kPermissionDenied);
  EXPECT_GE(space_->stats().protection_errors.value(), 1u);
}

TEST_F(AddressSpaceTest, XipMappingReadsFromFlash) {
  MakeFlashFile("/app", 4096, 9);
  ASSERT_TRUE(space_->MapXip(0x40000, *fs_, "/app").ok());
  const uint64_t flash_reads_before = flash_->stats().reads.value();
  Result<Duration> fetched = space_->Fetch(0x40000, 512);
  ASSERT_TRUE(fetched.ok());
  EXPECT_GT(flash_->stats().reads.value(), flash_reads_before);
  EXPECT_EQ(space_->resident_dram_pages(), 0u);
}

TEST_F(AddressSpaceTest, BufferedBlocksCopyInsteadOfMap) {
  // File not synced: blocks live in the write buffer, so mapping must copy.
  ASSERT_TRUE(fs_->Create("/dirty").ok());
  std::vector<uint8_t> data(512, 0x77);
  ASSERT_TRUE(fs_->Write("/dirty", 0, data).ok());
  ASSERT_TRUE(space_->MapFileCow(0x20000, *fs_, "/dirty", true).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(space_->Read(0x20000, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(space_->resident_dram_pages(), 1u);
  EXPECT_EQ(space_->stats().flash_map_faults.value(), 0u);
}

TEST_F(AddressSpaceTest, PopulateCopiesWholeFileToDram) {
  MakeFlashFile("/prog", 8192, 4);
  ASSERT_TRUE(space_->MapFileCow(0x20000, *fs_, "/prog", false).ok());
  Result<Duration> took = space_->Populate(0x20000);
  ASSERT_TRUE(took.ok());
  EXPECT_GT(took.value(), 0);
  EXPECT_EQ(space_->resident_dram_pages(), 8192u / 512);
}

TEST_F(AddressSpaceTest, UnmapFreesDramPages) {
  ASSERT_TRUE(space_->MapAnonymous(0x10000, 4096, "heap").ok());
  std::vector<uint8_t> data(4096, 1);
  ASSERT_TRUE(space_->Write(0x10000, data).ok());
  const uint64_t free_before = manager_->free_dram_pages();
  ASSERT_TRUE(space_->Unmap(0x10000).ok());
  EXPECT_EQ(manager_->free_dram_pages(), free_before + 8);
  EXPECT_EQ(space_->resident_dram_pages(), 0u);
  std::vector<uint8_t> out(8);
  EXPECT_FALSE(space_->Read(0x10000, out).ok());
}

TEST_F(AddressSpaceTest, MappingEmptyFileRejected) {
  ASSERT_TRUE(fs_->Create("/empty").ok());
  EXPECT_EQ(space_->MapFileCow(0x20000, *fs_, "/empty", true).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(AddressSpaceTest, DemandCopyFaultsIntoDram) {
  MakeFlashFile("/dp", 2048, 8);
  ASSERT_TRUE(space_->MapFileDemandCopy(0x50000, *fs_, "/dp", false).ok());
  EXPECT_EQ(space_->resident_dram_pages(), 0u);
  std::vector<uint8_t> out(512);
  // First touch copies the block into DRAM (never maps flash in place).
  ASSERT_TRUE(space_->Read(0x50000, out).ok());
  EXPECT_EQ(space_->resident_dram_pages(), 1u);
  EXPECT_EQ(space_->stats().demand_copies.value(), 1u);
  EXPECT_EQ(space_->stats().flash_map_faults.value(), 0u);
  // Content matches.
  std::vector<uint8_t> expected(512);
  for (size_t i = 0; i < 512; ++i) {
    expected[i] = static_cast<uint8_t>(8 + i * 7);
  }
  EXPECT_EQ(out, expected);
  // Second touch is a DRAM hit: no new fault.
  const uint64_t faults = space_->stats().faults.value();
  ASSERT_TRUE(space_->Read(0x50000, out).ok());
  EXPECT_EQ(space_->stats().faults.value(), faults);
}

TEST_F(AddressSpaceTest, CleanPagesReclaimedUnderMemoryPressure) {
  // DRAM has 4096 pages (2 MiB / 512). Consume almost all of it with
  // anonymous pages, then demand-copy a file bigger than what is left:
  // clean file pages must be reclaimed to keep going.
  MakeFlashFile("/big", 64 * 1024, 2);  // 128 pages.
  ASSERT_TRUE(space_->MapFileDemandCopy(0x80000, *fs_, "/big", false).ok());

  const uint64_t total = manager_->total_dram_pages();
  // Leave room for only 32 pages.
  const uint64_t anon_pages = total - 32;
  ASSERT_TRUE(
      space_->MapAnonymous(uint64_t{1} << 40, anon_pages * 512, "hog").ok());
  std::vector<uint8_t> touch(512, 1);
  for (uint64_t p = 0; p < anon_pages; ++p) {
    ASSERT_TRUE(space_->Write((uint64_t{1} << 40) + p * 512, touch).ok());
  }

  // Stream through the whole file: needs 128 page frames but only ~32 are
  // free. Reclamation of clean demand-copied pages must cover the gap.
  std::vector<uint8_t> out(512);
  for (uint64_t off = 0; off < 64 * 1024; off += 512) {
    ASSERT_TRUE(space_->Read(0x80000 + off, out).ok()) << "offset " << off;
  }
  EXPECT_GT(space_->stats().reclaimed_pages.value(), 0u);
  // Anonymous (dirty) pages were never reclaimed: their content survives.
  ASSERT_TRUE(space_->Read(uint64_t{1} << 40, out).ok());
  EXPECT_EQ(out, touch);
}

TEST_F(AddressSpaceTest, ReclaimedPageRefaultsWithSameContent) {
  MakeFlashFile("/refault", 16 * 1024, 4);  // 32 pages.
  ASSERT_TRUE(
      space_->MapFileDemandCopy(0x90000, *fs_, "/refault", false).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(space_->Read(0x90000, out).ok());
  const std::vector<uint8_t> first = out;

  // Exhaust DRAM so the next faults force reclamation of page 0.
  const uint64_t free_pages = manager_->free_dram_pages();
  ASSERT_TRUE(space_->MapAnonymous(uint64_t{1} << 41,
                                   free_pages * 512, "hog").ok());
  std::vector<uint8_t> touch(512, 9);
  for (uint64_t p = 0; p < free_pages; ++p) {
    ASSERT_TRUE(space_->Write((uint64_t{1} << 41) + p * 512, touch).ok());
  }
  // Touch other file pages: page 0 gets reclaimed eventually...
  for (uint64_t off = 512; off < 16 * 1024; off += 512) {
    ASSERT_TRUE(space_->Read(0x90000 + off, out).ok());
  }
  // ...and re-faults with identical content.
  ASSERT_TRUE(space_->Read(0x90000, out).ok());
  EXPECT_EQ(out, first);
}

TEST_F(AddressSpaceTest, FlashReadsFasterThanNothingButSlowerThanDram) {
  MakeFlashFile("/speed", 512, 6);
  ASSERT_TRUE(space_->MapXip(0x40000, *fs_, "/speed").ok());
  // Fault it in first.
  ASSERT_TRUE(space_->Fetch(0x40000, 1).ok());
  const SimTime t0 = clock_.now();
  ASSERT_TRUE(space_->Fetch(0x40000, 512).ok());
  const Duration flash_fetch = clock_.now() - t0;

  ASSERT_TRUE(space_->MapAnonymous(0x80000, 512, "d").ok());
  std::vector<uint8_t> buf(512, 1);
  ASSERT_TRUE(space_->Write(0x80000, buf).ok());
  const SimTime t1 = clock_.now();
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(space_->Read(0x80000, out).ok());
  const Duration dram_fetch = clock_.now() - t1;
  EXPECT_GT(flash_fetch, dram_fetch);
}

TEST_F(AddressSpaceTest, CowMappingSurvivesCleanerRelocation) {
  // Regression for the flash-map re-resolution contract: the PTE of an
  // in-place CoW mapping stores the *logical* store block, and every access
  // re-resolves the physical flash address through the store's map. If the
  // PTE cached the physical address instead, the cleaner relocating the
  // backing page mid-mapping would leave the mapping reading stale (erased
  // or reused) flash.
  // A deliberately tiny flash (16 sectors of 8 pages) so cleaning pressure
  // is easy to produce. /prog's single block shares its sector with /pad's
  // seven; overwriting /pad leaves that sector 7/8 dead — a prime victim.
  DramSpec dram_spec;
  dram_spec.read = {80, 25};
  dram_spec.write = {80, 25};
  dram_spec.active_mw_per_mib = 150;
  dram_spec.standby_mw_per_mib = 1.5;
  FlashSpec flash_spec;
  flash_spec.read = {150, 100};
  flash_spec.program = {2000, 10000};
  flash_spec.erase_sector_bytes = 4096;
  flash_spec.erase_ns = 100 * kMillisecond;
  flash_spec.endurance_cycles = 1000000;
  SimClock clock;
  DramDevice dram(dram_spec, 256 * 1024, clock);
  FlashDevice flash(flash_spec, 64 * 1024, 1, clock);
  FlashStore store(flash, FlashStoreOptions{});
  StorageManager manager(dram, store, 512);
  MemoryFileSystem fs(manager, MemoryFsOptions{});
  AddressSpace space(manager);

  std::vector<uint8_t> expect(512);
  for (size_t i = 0; i < expect.size(); ++i) {
    expect[i] = static_cast<uint8_t>(42 + i * 7);
  }
  ASSERT_TRUE(fs.Create("/prog").ok());
  ASSERT_TRUE(fs.Write("/prog", 0, expect).ok());
  ASSERT_TRUE(fs.Create("/pad").ok());
  std::vector<uint8_t> pad(7 * 512, 0x33);
  ASSERT_TRUE(fs.Write("/pad", 0, pad).ok());
  ASSERT_TRUE(fs.Sync().ok());

  const uint64_t va = 0x400000;
  ASSERT_TRUE(space.MapFileCow(va, fs, "/prog", true).ok());
  std::vector<uint8_t> out(expect.size());
  ASSERT_TRUE(space.Read(va, out).ok());
  EXPECT_EQ(out, expect);
  ASSERT_GE(space.stats().flash_map_faults.value(), 1u);

  // Note where the mapped block physically lives right now.
  Result<std::vector<BlockLocation>> locations = fs.BlockLocations("/prog");
  ASSERT_TRUE(locations.ok());
  ASSERT_EQ(locations.value()[0].kind, BlockLocation::Kind::kFlash);
  const uint64_t logical = locations.value()[0].flash_block;
  Result<uint64_t> phys_before = store.PhysicalAddressOf(logical);
  ASSERT_TRUE(phys_before.ok());

  // Deaden /prog's sector-mates, then churn the log until the cleaner moves
  // the mapped block to a different physical page.
  for (auto& b : pad) {
    b = 0x44;
  }
  ASSERT_TRUE(fs.Write("/pad", 0, pad).ok());
  ASSERT_TRUE(fs.Sync().ok());
  ASSERT_TRUE(fs.Create("/churn").ok());
  std::vector<uint8_t> junk(16 * 512);
  bool relocated = false;
  for (int round = 0; round < 100 && !relocated; ++round) {
    for (size_t i = 0; i < junk.size(); ++i) {
      junk[i] = static_cast<uint8_t>(round + i * 3);
    }
    ASSERT_TRUE(fs.Write("/churn", 0, junk).ok());
    ASSERT_TRUE(fs.Sync().ok());
    ASSERT_TRUE(store.Clean().ok());
    Result<uint64_t> phys_now = store.PhysicalAddressOf(logical);
    ASSERT_TRUE(phys_now.ok());
    relocated = phys_now.value() != phys_before.value();
  }
  ASSERT_TRUE(relocated) << "cleaner never relocated the mapped block";
  EXPECT_GT(store.stats().gc_relocations.value(), 0u);

  // No new fault: the mapping is still present, and reads re-resolve to the
  // block's new home with the original content.
  const uint64_t faults_before = space.stats().faults.value();
  ASSERT_TRUE(space.Read(va, out).ok());
  EXPECT_EQ(out, expect);
  EXPECT_EQ(space.stats().faults.value(), faults_before);

  // A write fault CoW-copies the relocated bytes, not stale ones.
  const std::vector<uint8_t> patch = {0xDE, 0xAD};
  ASSERT_TRUE(space.Write(va + 5, patch).ok());
  EXPECT_GE(space.stats().cow_faults.value(), 1u);
  expect[5] = 0xDE;
  expect[6] = 0xAD;
  ASSERT_TRUE(space.Read(va, out).ok());
  EXPECT_EQ(out, expect);
}

}  // namespace
}  // namespace ssmc
