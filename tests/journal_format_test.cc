// On-media format units for the metadata journal (ROADMAP E13): record
// encode/decode round-trips, CRC and truncation rejection, torn-tail
// semantics, superblock A/B generation selection, and journal-level
// Format/Append/Recover round-trips over a real flash store.

#include "src/journal/journal_format.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/device/dram_device.h"
#include "src/device/flash_device.h"
#include "src/ftl/flash_store.h"
#include "src/journal/journal.h"
#include "src/sim/clock.h"
#include "src/storage/storage_manager.h"

namespace ssmc {
namespace {

JournalRecord SampleRecord() {
  JournalRecord r;
  r.type = JournalRecordType::kExtent;
  r.lsn = 0x1122334455667788ull;
  r.file_id = 42;
  r.size = 7;
  r.flash_block = 913;
  r.tenant = 5;
  r.path = "/home/user/notes.txt";
  r.path2 = "/home/user/notes.bak";
  return r;
}

TEST(JournalFormatTest, RecordRoundTripAllFields) {
  const JournalRecord in = SampleRecord();
  std::vector<uint8_t> buf;
  const uint64_t encoded = EncodeJournalRecord(in, buf);
  EXPECT_EQ(encoded, buf.size());
  EXPECT_EQ(encoded, EncodedJournalRecordSize(in));

  JournalRecord out;
  uint64_t pos = 0;
  ASSERT_TRUE(DecodeJournalRecord(buf, &pos, &out));
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.lsn, in.lsn);
  EXPECT_EQ(out.file_id, in.file_id);
  EXPECT_EQ(out.size, in.size);
  EXPECT_EQ(out.flash_block, in.flash_block);
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_EQ(out.path, in.path);
  EXPECT_EQ(out.path2, in.path2);
}

TEST(JournalFormatTest, MultiRecordSequenceDecodesInOrder) {
  std::vector<uint8_t> buf;
  for (uint64_t lsn = 1; lsn <= 5; ++lsn) {
    JournalRecord r;
    r.type = JournalRecordType::kMkdir;
    r.lsn = lsn;
    r.path = "/d" + std::to_string(lsn);
    EncodeJournalRecord(r, buf);
  }
  // Trailing zero fill, as in a half-used log block.
  buf.resize(buf.size() + 64, 0);

  uint64_t pos = 0;
  uint64_t expect_lsn = 1;
  JournalRecord r;
  while (DecodeJournalRecord(buf, &pos, &r)) {
    EXPECT_EQ(r.lsn, expect_lsn);
    EXPECT_EQ(r.path, "/d" + std::to_string(expect_lsn));
    ++expect_lsn;
  }
  EXPECT_EQ(expect_lsn, 6u);  // All five decoded; zero fill ended the scan.
}

TEST(JournalFormatTest, CorruptRecordRejectedAndPosUntouched) {
  std::vector<uint8_t> buf;
  EncodeJournalRecord(SampleRecord(), buf);
  // Flip one payload byte: the CRC must catch it.
  buf[buf.size() - 3] ^= 0x40;

  JournalRecord out;
  uint64_t pos = 0;
  EXPECT_FALSE(DecodeJournalRecord(buf, &pos, &out));
  EXPECT_EQ(pos, 0u);
}

TEST(JournalFormatTest, TruncatedRecordRejected) {
  std::vector<uint8_t> buf;
  EncodeJournalRecord(SampleRecord(), buf);
  for (const size_t keep : {size_t{0}, size_t{3}, size_t{7}, buf.size() - 1}) {
    std::vector<uint8_t> cut(buf.begin(), buf.begin() + keep);
    JournalRecord out;
    uint64_t pos = 0;
    EXPECT_FALSE(DecodeJournalRecord(cut, &pos, &out)) << "kept " << keep;
    EXPECT_EQ(pos, 0u);
  }
}

TEST(JournalFormatTest, TornTailStopsAtFirstBadRecord) {
  // Three records; the third is torn mid-payload (power failure). The scan
  // must yield exactly the first two and stop.
  std::vector<uint8_t> buf;
  std::vector<uint64_t> starts;
  for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
    JournalRecord r;
    r.type = JournalRecordType::kCreate;
    r.lsn = lsn;
    r.file_id = lsn * 10;
    r.path = "/f" + std::to_string(lsn);
    starts.push_back(buf.size());
    EncodeJournalRecord(r, buf);
  }
  // Zero everything past the first few bytes of record 3 — a torn program
  // leaves a prefix followed by erased flash.
  std::memset(buf.data() + starts[2] + 5, 0, buf.size() - starts[2] - 5);

  uint64_t pos = 0;
  JournalRecord r;
  ASSERT_TRUE(DecodeJournalRecord(buf, &pos, &r));
  EXPECT_EQ(r.lsn, 1u);
  ASSERT_TRUE(DecodeJournalRecord(buf, &pos, &r));
  EXPECT_EQ(r.lsn, 2u);
  EXPECT_FALSE(DecodeJournalRecord(buf, &pos, &r));
  EXPECT_EQ(pos, starts[2]);
}

TEST(JournalFormatTest, SuperblockRoundTripAndCorruptionRejected) {
  JournalSuperblock in;
  in.generation = 17;
  in.next_lsn = 901;
  in.checkpoint_lsn = 800;
  in.checkpoint_time = 123456789;
  in.checkpoint_head = 33;
  in.checkpoint_bytes = 5000;
  in.log_tail = 77;
  in.log_blocks = 3;

  std::vector<uint8_t> raw;
  EncodeJournalSuperblock(in, 512, raw);
  ASSERT_EQ(raw.size(), 512u);

  JournalSuperblock out;
  ASSERT_TRUE(DecodeJournalSuperblock(raw, &out));
  EXPECT_EQ(out.generation, in.generation);
  EXPECT_EQ(out.next_lsn, in.next_lsn);
  EXPECT_EQ(out.checkpoint_lsn, in.checkpoint_lsn);
  EXPECT_EQ(out.checkpoint_time, in.checkpoint_time);
  EXPECT_EQ(out.checkpoint_head, in.checkpoint_head);
  EXPECT_EQ(out.checkpoint_bytes, in.checkpoint_bytes);
  EXPECT_EQ(out.log_tail, in.log_tail);
  EXPECT_EQ(out.log_blocks, in.log_blocks);

  // Any single corrupt byte in the covered region must invalidate it.
  for (const size_t at : {size_t{0}, size_t{16}, size_t{40}, size_t{79}}) {
    std::vector<uint8_t> bad = raw;
    bad[at] ^= 0x01;
    EXPECT_FALSE(DecodeJournalSuperblock(bad, &out)) << "byte " << at;
  }
}

TEST(JournalFormatTest, BlockHeaderRoundTrips) {
  std::vector<uint8_t> ckpt;
  EncodeCheckpointBlockHeader(55, ckpt);
  ASSERT_EQ(ckpt.size(), kCheckpointBlockHeaderBytes);
  uint64_t next = 0;
  ASSERT_TRUE(DecodeCheckpointBlockHeader(ckpt, &next));
  EXPECT_EQ(next, 55u);
  ckpt[0] ^= 0xFF;
  EXPECT_FALSE(DecodeCheckpointBlockHeader(ckpt, &next));

  std::vector<uint8_t> log;
  EncodeLogBlockHeader(12, 345, log);
  ASSERT_EQ(log.size(), kLogBlockHeaderBytes);
  uint64_t prev = 0, base = 0;
  ASSERT_TRUE(DecodeLogBlockHeader(log, &prev, &base));
  EXPECT_EQ(prev, 12u);
  EXPECT_EQ(base, 345u);
  log[3] ^= 0x10;
  EXPECT_FALSE(DecodeLogBlockHeader(log, &prev, &base));
}

TEST(JournalFormatTest, Crc32KnownVectorAndSeedChaining) {
  // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
  const char* msg = "123456789";
  std::span<const uint8_t> bytes(reinterpret_cast<const uint8_t*>(msg), 9);
  EXPECT_EQ(Crc32(bytes), 0xCBF43926u);
  // Chaining through the seeded form must equal the one-shot CRC.
  const uint32_t head = Crc32(bytes.subspan(0, 4));
  EXPECT_EQ(Crc32(head, bytes.subspan(4)), 0xCBF43926u);
}

// --- Journal-level round trips over a real flash store ---------------------

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DramSpec dram_spec;
    dram_spec.read = {80, 25};
    dram_spec.write = {80, 25};
    dram_ = std::make_unique<DramDevice>(dram_spec, 2 * kMiB, clock_);
    FlashSpec flash_spec;
    flash_spec.read = {150, 100};
    flash_spec.program = {2000, 10000};
    flash_spec.erase_sector_bytes = 4096;
    flash_spec.erase_ns = 100 * kMillisecond;
    flash_spec.endurance_cycles = 1000000;
    flash_ = std::make_unique<FlashDevice>(flash_spec, 8 * kMiB, 2, clock_);
    store_ = std::make_unique<FlashStore>(*flash_, FlashStoreOptions{});
    manager_ = std::make_unique<StorageManager>(*dram_, *store_, 512);
  }

  // Fresh manager over the same surviving store, as crash recovery does.
  void Remount() {
    manager_ = std::make_unique<StorageManager>(*dram_, *store_, 512);
  }

  SimClock clock_;
  std::unique_ptr<DramDevice> dram_;
  std::unique_ptr<FlashDevice> flash_;
  std::unique_ptr<FlashStore> store_;
  std::unique_ptr<StorageManager> manager_;
};

TEST_F(JournalTest, FormatAppendRecoverRoundTrip) {
  MetadataJournal journal(*manager_);
  ASSERT_TRUE(journal.Format().ok());
  for (uint64_t i = 0; i < 40; ++i) {
    JournalRecord r;
    r.type = JournalRecordType::kCreate;
    r.file_id = i + 1;
    r.path = "/file" + std::to_string(i);
    Result<uint64_t> lsn = journal.Append(std::move(r));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(lsn.value(), i + 1);
  }

  Remount();
  MetadataJournal reborn(*manager_);
  Result<MetadataJournal::MountState> mount = reborn.Recover();
  ASSERT_TRUE(mount.ok());
  EXPECT_TRUE(mount.value().checkpoint.empty());
  ASSERT_EQ(mount.value().records.size(), 40u);
  for (uint64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(mount.value().records[i].lsn, i + 1);
    EXPECT_EQ(mount.value().records[i].path, "/file" + std::to_string(i));
  }
  // The mounted journal keeps appending where the old one stopped.
  JournalRecord r;
  r.type = JournalRecordType::kUnlink;
  r.path = "/file0";
  Result<uint64_t> lsn = reborn.Append(std::move(r));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 41u);
}

TEST_F(JournalTest, CheckpointTruncatesLogAndRecoverReturnsSnapshot) {
  MetadataJournal journal(*manager_);
  ASSERT_TRUE(journal.Format().ok());
  for (int i = 0; i < 10; ++i) {
    JournalRecord r;
    r.type = JournalRecordType::kMkdir;
    r.path = "/d" + std::to_string(i);
    ASSERT_TRUE(journal.Append(std::move(r)).ok());
  }
  std::vector<uint8_t> snapshot(3000);
  for (size_t i = 0; i < snapshot.size(); ++i) {
    snapshot[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(journal.WriteCheckpoint(snapshot).ok());
  EXPECT_GT(journal.stats().compacted_blocks.value(), 0u);

  // One post-checkpoint record survives in the fresh log.
  JournalRecord r;
  r.type = JournalRecordType::kRmdir;
  r.path = "/d3";
  ASSERT_TRUE(journal.Append(std::move(r)).ok());

  Remount();
  MetadataJournal reborn(*manager_);
  Result<MetadataJournal::MountState> mount = reborn.Recover();
  ASSERT_TRUE(mount.ok());
  EXPECT_EQ(mount.value().checkpoint, snapshot);
  // The 10 pre-checkpoint mkdirs are compacted away; only the kCheckpoint
  // marker and the rmdir remain above checkpoint_lsn.
  ASSERT_FALSE(mount.value().records.empty());
  EXPECT_EQ(mount.value().records.back().type, JournalRecordType::kRmdir);
  EXPECT_EQ(mount.value().records.back().path, "/d3");
  for (const JournalRecord& rec : mount.value().records) {
    EXPECT_NE(rec.type, JournalRecordType::kMkdir);
  }
}

TEST_F(JournalTest, TornTailProgramLosesOnlyUnackedRecord) {
  MetadataJournal journal(*manager_);
  ASSERT_TRUE(journal.Format().ok());
  for (int i = 0; i < 5; ++i) {
    JournalRecord r;
    r.type = JournalRecordType::kCreate;
    r.file_id = i + 1;
    r.path = "/ok" + std::to_string(i);
    ASSERT_TRUE(journal.Append(std::move(r)).ok());
  }
  // The next tail program tears after 8 bytes: the record was never acked,
  // and the FTL's out-of-place write keeps the previous tail mapped.
  flash_->FailNextProgramAfterBytes(8);
  JournalRecord torn;
  torn.type = JournalRecordType::kCreate;
  torn.file_id = 99;
  torn.path = "/never-acked";
  EXPECT_FALSE(journal.Append(std::move(torn)).ok());

  Remount();
  MetadataJournal reborn(*manager_);
  Result<MetadataJournal::MountState> mount = reborn.Recover();
  ASSERT_TRUE(mount.ok());
  ASSERT_EQ(mount.value().records.size(), 5u);
  for (const JournalRecord& rec : mount.value().records) {
    EXPECT_NE(rec.path, "/never-acked");
  }
}

TEST_F(JournalTest, HighestGenerationSuperblockWins) {
  MetadataJournal journal(*manager_);
  ASSERT_TRUE(journal.Format().ok());
  const uint64_t gen_after_format = journal.generation();
  // Enough appends to roll the tail into new blocks and force more
  // superblock generations into both A and B slots.
  for (int i = 0; i < 60; ++i) {
    JournalRecord r;
    r.type = JournalRecordType::kMkdir;
    r.path = "/gen/dir-with-a-reasonably-long-name-" + std::to_string(i);
    ASSERT_TRUE(journal.Append(std::move(r)).ok());
  }
  EXPECT_GT(journal.generation(), gen_after_format);

  Remount();
  MetadataJournal reborn(*manager_);
  Result<MetadataJournal::MountState> mount = reborn.Recover();
  ASSERT_TRUE(mount.ok());
  EXPECT_EQ(reborn.generation(), journal.generation());
  EXPECT_EQ(mount.value().records.size(), 60u);
}

TEST_F(JournalTest, RecoverOnUnformattedStoreFailsPrecondition) {
  MetadataJournal journal(*manager_);
  Result<MetadataJournal::MountState> mount = journal.Recover();
  ASSERT_FALSE(mount.ok());
  EXPECT_EQ(mount.status().code(), ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ssmc
