// ResidencyManager tests: placement resolution, heat decay, promotion /
// demotion mechanics, the shared DRAM budget, and — most importantly — the
// differential oracle: randomized FS/VM workloads run with
// MemoryFsOptions::validate_residency under every policy, checking each
// per-access Resolve() against the pre-residency buffered/flash/hole logic,
// and the migration policies must return byte-identical file contents to the
// kWriteBufferOnly baseline.

#include "src/storage/residency.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fs/memory_fs.h"
#include "src/storage/write_buffer.h"
#include "src/support/rng.h"
#include "src/vm/address_space.h"

namespace ssmc {
namespace {

FlashSpec TestFlashSpec() {
  FlashSpec spec;
  spec.read = {100, 10};
  spec.program = {1000, 100};
  spec.erase_sector_bytes = 2048;
  spec.erase_ns = kMillisecond;
  spec.endurance_cycles = 1000000;
  return spec;
}

DramSpec TestDramSpec() {
  DramSpec spec;
  spec.read = {50, 10};
  spec.write = {60, 12};
  spec.active_mw_per_mib = 150;
  spec.standby_mw_per_mib = 1.5;
  return spec;
}

ResidencyOptions ReadPromoteOptions() {
  ResidencyOptions options;
  options.policy = ResidencyPolicy::kReadPromote;
  return options;
}

// Low-level harness around a 128-page DRAM pool and a one-bank flash store.
class ResidencyTest : public ::testing::Test {
 protected:
  explicit ResidencyTest(ResidencyOptions options = ReadPromoteOptions())
      : dram_(TestDramSpec(), 64 * 1024, clock_),
        flash_(TestFlashSpec(), 256 * 1024, 1, clock_),
        store_(flash_, {}),
        manager_(dram_, store_, 512, options) {}

  ResidencyManager& res() { return manager_.residency(); }

  std::vector<uint8_t> Page(uint8_t fill) {
    return std::vector<uint8_t>(512, fill);
  }

  // Puts a block with known content into flash.
  void SeedFlashBlock(uint64_t block, uint8_t fill) {
    ASSERT_TRUE(store_.Write(block, Page(fill)).ok());
  }

  SimClock clock_;
  DramDevice dram_;
  FlashDevice flash_;
  FlashStore store_;
  StorageManager manager_;
};

TEST(ResidencyPolicyNames, RoundTripAndParse) {
  EXPECT_STREQ(ResidencyPolicyName(ResidencyPolicy::kWriteBufferOnly),
               "write-buffer-only");
  EXPECT_STREQ(ResidencyPolicyName(ResidencyPolicy::kReadPromote),
               "read-promote");
  EXPECT_STREQ(ResidencyPolicyName(ResidencyPolicy::kAggressive),
               "aggressive");
  for (ResidencyPolicy want :
       {ResidencyPolicy::kWriteBufferOnly, ResidencyPolicy::kReadPromote,
        ResidencyPolicy::kAggressive}) {
    ResidencyPolicy got = ResidencyPolicy::kWriteBufferOnly;
    ASSERT_TRUE(ParseResidencyPolicy(ResidencyPolicyName(want), &got));
    EXPECT_EQ(got, want);
  }
  ResidencyPolicy got;
  EXPECT_TRUE(ParseResidencyPolicy("kReadPromote", &got));
  EXPECT_EQ(got, ResidencyPolicy::kReadPromote);
  EXPECT_FALSE(ParseResidencyPolicy("lru", &got));
}

TEST_F(ResidencyTest, ResolveCoversAllFourStates) {
  WriteBuffer buffer(manager_, 16,
                     [](const BlockKey&, const PayloadRef&, TenantId) {
                       return Status::Ok();
                     });
  res().BindDirtyBackend(&buffer);

  const BlockKey dirty{1, 0};
  ASSERT_TRUE(buffer.Put(dirty, Page(1), clock_.now()).ok());
  EXPECT_EQ(res().Resolve(dirty, -1), Residency::kDirty);
  // Dirty wins even if the block also has a flash copy.
  EXPECT_EQ(res().Resolve(dirty, 5), Residency::kDirty);

  EXPECT_EQ(res().Resolve(BlockKey{1, 1}, 7), Residency::kFlash);
  EXPECT_EQ(res().Resolve(BlockKey{1, 2}, -1), Residency::kHole);

  // Promote a flash block: it resolves kClean until invalidated.
  const BlockKey hot{2, 0};
  SeedFlashBlock(3, 0xAB);
  res().OnFlashRead(hot, 3, clock_.now());
  res().OnFlashRead(hot, 3, clock_.now());
  ASSERT_TRUE(res().CleanCached(hot));
  EXPECT_EQ(res().Resolve(hot, 3), Residency::kClean);
  res().InvalidateClean(hot);
  EXPECT_EQ(res().Resolve(hot, 3), Residency::kFlash);

  res().BindDirtyBackend(nullptr);
}

TEST_F(ResidencyTest, HeatDecaysWithConfiguredHalfLife) {
  const BlockKey key{1, 0};
  res().TouchRead(key, clock_.now());
  EXPECT_DOUBLE_EQ(res().HeatOf(key, clock_.now()), 1.0);

  // One half-life later the touch counts half; HeatOf must not mutate.
  const SimTime later = clock_.now() + 30 * kSecond;
  EXPECT_DOUBLE_EQ(res().HeatOf(key, later), 0.5);
  EXPECT_DOUBLE_EQ(res().HeatOf(key, later), 0.5);
  EXPECT_DOUBLE_EQ(res().HeatOf(key, later + 30 * kSecond), 0.25);

  // A second touch at t+half_life lands on the decayed value.
  clock_.Advance(30 * kSecond);
  res().TouchRead(key, clock_.now());
  EXPECT_DOUBLE_EQ(res().HeatOf(key, clock_.now()), 1.5);

  res().ForgetHeat(key);
  EXPECT_DOUBLE_EQ(res().HeatOf(key, clock_.now()), 0.0);
}

// Randomized property test for the sim-time heat decay. The manager keeps
// the decayed touch count incrementally (one exp2 factor per update); the
// reference recomputes it from the full touch history as
// sum_i 2^-((now - t_i) / half_life). The two must agree for random
// half-lives, touch spacings, and observation points — and touches sharing
// a timestamp must take the decay-free fast path bit-exactly.
TEST(ResidencyHeatProperty, DecayMatchesClosedFormReference) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(0xDECA1 * seed);
    SimClock clock;
    DramDevice dram(TestDramSpec(), 64 * 1024, clock);
    FlashDevice flash(TestFlashSpec(), 256 * 1024, 1, clock);
    FlashStore store(flash, {});
    ResidencyOptions options = ReadPromoteOptions();
    options.heat_half_life = (1 + rng.NextBelow(100000)) * kMillisecond;
    StorageManager manager(dram, store, 512, options);
    ResidencyManager& res = manager.residency();

    constexpr uint64_t kBlocks = 8;
    std::vector<std::vector<SimTime>> touches(kBlocks);
    const double half_life = static_cast<double>(options.heat_half_life);
    auto reference = [&](uint64_t b, SimTime now) {
      double h = 0;
      for (SimTime t : touches[b]) {
        h += std::exp2(-static_cast<double>(now - t) / half_life);
      }
      return h;
    };

    for (int step = 0; step < 400; ++step) {
      const uint64_t b = rng.NextBelow(kBlocks);
      const BlockKey key{1, b};
      switch (rng.NextBelow(4)) {
        case 0:  // Idle a random fraction (0..3x) of the half-life.
          clock.Advance(1 + rng.NextBelow(options.heat_half_life * 3));
          break;
        case 1:  // Touch (read and write feed the same bookkeeping).
          if (rng.NextBelow(2) == 0) {
            res.TouchRead(key, clock.now());
          } else {
            res.TouchWrite(key, clock.now());
          }
          touches[b].push_back(clock.now());
          break;
        case 2: {  // Same-timestamp touches: the decay-on-touch fast path
                   // must add exactly 1.0 with no decay factor applied.
          const double before = res.HeatOf(key, clock.now());
          res.TouchRead(key, clock.now());
          const double mid = res.HeatOf(key, clock.now());
          EXPECT_DOUBLE_EQ(mid, before + 1.0);
          res.TouchRead(key, clock.now());
          EXPECT_DOUBLE_EQ(res.HeatOf(key, clock.now()), mid + 1.0);
          touches[b].push_back(clock.now());
          touches[b].push_back(clock.now());
          break;
        }
        default: {  // Observe: HeatOf is pure and matches the closed form.
          const double want = reference(b, clock.now());
          EXPECT_NEAR(res.HeatOf(key, clock.now()), want, 1e-9 + 1e-9 * want)
              << "seed " << seed << " step " << step << " block " << b;
          break;
        }
      }
    }
  }
}

TEST_F(ResidencyTest, SecondHotReadPromotesAndServesFromDram) {
  const BlockKey key{4, 2};
  SeedFlashBlock(9, 0x5C);

  // First flash read: heat 1.0, below the 2.0 threshold — no promotion.
  res().OnFlashRead(key, 9, clock_.now());
  EXPECT_FALSE(res().CleanCached(key));
  EXPECT_EQ(res().stats().promotions.value(), 0u);

  // Second read with no decay crosses the threshold.
  res().OnFlashRead(key, 9, clock_.now());
  ASSERT_TRUE(res().CleanCached(key));
  EXPECT_EQ(res().stats().promotions.value(), 1u);
  EXPECT_EQ(res().stats().promoted_bytes.value(), 512u);
  EXPECT_EQ(res().clean_pages(), 1u);

  // The cached copy is byte-identical to flash and charges DRAM time only.
  auto out = Page(0);
  ASSERT_TRUE(res().ReadClean(key, 0, out).ok());
  EXPECT_EQ(out, Page(0x5C));
  EXPECT_EQ(res().stats().clean_hits.value(), 1u);
  EXPECT_EQ(res().stats().clean_hit_bytes.value(), 512u);

  // Partial reads honor offsets; out-of-bounds is rejected.
  std::vector<uint8_t> tail(12);
  ASSERT_TRUE(res().ReadClean(key, 500, tail).ok());
  EXPECT_EQ(tail, std::vector<uint8_t>(12, 0x5C));
  std::vector<uint8_t> over(13);
  EXPECT_EQ(res().ReadClean(key, 500, over).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(res().ReadClean(BlockKey{9, 9}, 0, out).code(),
            ErrorCode::kNotFound);
}

TEST_F(ResidencyTest, ColdReadsNeverPromote) {
  const BlockKey key{4, 2};
  SeedFlashBlock(9, 0x5C);
  // Touches spaced two half-lives apart decay to ~0.25 before the next one:
  // the decayed count never reaches 2.0, so the block stays flash-resident.
  for (int i = 0; i < 8; ++i) {
    res().OnFlashRead(key, 9, clock_.now());
    clock_.Advance(60 * kSecond);
  }
  EXPECT_FALSE(res().CleanCached(key));
  EXPECT_EQ(res().stats().promotions.value(), 0u);
}

TEST_F(ResidencyTest, InvalidationDropsEntryAndFreesDram) {
  const BlockKey key{4, 2};
  SeedFlashBlock(9, 0x5C);
  const uint64_t free_before = manager_.free_dram_pages();
  res().OnFlashRead(key, 9, clock_.now());
  res().OnFlashRead(key, 9, clock_.now());
  ASSERT_TRUE(res().CleanCached(key));
  EXPECT_EQ(manager_.free_dram_pages(), free_before - 1);

  res().InvalidateClean(key);
  EXPECT_FALSE(res().CleanCached(key));
  EXPECT_EQ(res().stats().demotions_invalidated.value(), 1u);
  EXPECT_EQ(manager_.free_dram_pages(), free_before);
  // Invalidating a non-cached key is a no-op.
  res().InvalidateClean(key);
  EXPECT_EQ(res().stats().demotions_invalidated.value(), 1u);
}

class ResidencyTinyCacheTest : public ResidencyTest {
 protected:
  static ResidencyOptions TinyCacheOptions() {
    ResidencyOptions options = ReadPromoteOptions();
    // 128 DRAM pages * 2/128 = a two-page clean cache.
    options.max_clean_fraction = 2.0 / 128.0;
    return options;
  }
  ResidencyTinyCacheTest() : ResidencyTest(TinyCacheOptions()) {}
};

TEST_F(ResidencyTinyCacheTest, CacheCapRecyclesLeastRecentlyUsed) {
  for (uint64_t b = 0; b < 3; ++b) {
    SeedFlashBlock(b, static_cast<uint8_t>(b));
  }
  auto promote = [&](uint64_t b) {
    res().OnFlashRead(BlockKey{1, b}, b, clock_.now());
    res().OnFlashRead(BlockKey{1, b}, b, clock_.now());
  };
  promote(0);
  promote(1);
  EXPECT_EQ(res().clean_pages(), 2u);

  // Touch block 0 so block 1 becomes the LRU victim.
  auto out = Page(0);
  ASSERT_TRUE(res().ReadClean(BlockKey{1, 0}, 0, out).ok());

  promote(2);
  EXPECT_EQ(res().clean_pages(), 2u);
  EXPECT_TRUE(res().CleanCached(BlockKey{1, 0}));
  EXPECT_FALSE(res().CleanCached(BlockKey{1, 1}));
  EXPECT_TRUE(res().CleanCached(BlockKey{1, 2}));
  EXPECT_EQ(res().stats().demotions_pressure.value(), 1u);
}

TEST_F(ResidencyTest, DramPressureDemotesCleanPagesFirst) {
  SeedFlashBlock(0, 0xAA);
  res().OnFlashRead(BlockKey{1, 0}, 0, clock_.now());
  res().OnFlashRead(BlockKey{1, 0}, 0, clock_.now());
  ASSERT_EQ(res().clean_pages(), 1u);

  // Exhaust the raw allocator.
  while (manager_.free_dram_pages() > 0) {
    ASSERT_TRUE(manager_.AllocateDramPage().ok());
  }

  // The shared-budget allocator demotes the clean page rather than failing.
  Result<uint64_t> page = res().AllocateDramPage(/*requester=*/nullptr);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(res().clean_pages(), 0u);
  EXPECT_EQ(res().stats().demotions_pressure.value(), 1u);

  // With the cache empty and no reclaim sources, the pool is truly dry.
  EXPECT_EQ(res().AllocateDramPage(nullptr).status().code(),
            ErrorCode::kResourceExhausted);
}

TEST_F(ResidencyTest, PromotionSkipsQuietlyWhenDramIsFull) {
  SeedFlashBlock(0, 0xAA);
  while (manager_.free_dram_pages() > 0) {
    ASSERT_TRUE(manager_.AllocateDramPage().ok());
  }
  // Hot enough to promote, but there is no DRAM and nothing of the cache's
  // own to recycle: the read stays flash-resident, no error surfaces.
  res().OnFlashRead(BlockKey{1, 0}, 0, clock_.now());
  res().OnFlashRead(BlockKey{1, 0}, 0, clock_.now());
  EXPECT_FALSE(res().CleanCached(BlockKey{1, 0}));
  EXPECT_EQ(res().stats().promotions.value(), 0u);
}

TEST_F(ResidencyTest, VmFaultPromotionTriggersOnHotBlocks) {
  const BlockKey key{6, 1};
  EXPECT_FALSE(res().NoteVmFault(key, clock_.now()));  // heat 1.0
  EXPECT_TRUE(res().NoteVmFault(key, clock_.now()));   // heat 2.0
  EXPECT_EQ(res().stats().vm_promote_faults.value(), 1u);
}

TEST_F(ResidencyTest, FlushStreamIsUserOutsideAggressive) {
  EXPECT_EQ(res().FlushStream(BlockKey{1, 0}, clock_.now()),
            WriteStream::kUser);
  EXPECT_EQ(res().stats().cold_stream_hints.value(), 0u);
}

class ResidencyAggressiveTest : public ResidencyTest {
 protected:
  static ResidencyOptions AggressiveOptions() {
    ResidencyOptions options;
    options.policy = ResidencyPolicy::kAggressive;
    return options;
  }
  ResidencyAggressiveTest() : ResidencyTest(AggressiveOptions()) {}
};

TEST_F(ResidencyAggressiveTest, PromotesOnSecondRawTouchDespiteDecay) {
  const BlockKey key{4, 2};
  SeedFlashBlock(9, 0x5C);
  res().OnFlashRead(key, 9, clock_.now());
  // Five half-lives: decayed heat is ~0.03, far below the 2.0 threshold —
  // but the raw touch count reaches aggressive_touches, so promote anyway.
  clock_.Advance(150 * kSecond);
  res().OnFlashRead(key, 9, clock_.now());
  EXPECT_TRUE(res().CleanCached(key));
  EXPECT_EQ(res().stats().promotions.value(), 1u);
}

TEST_F(ResidencyAggressiveTest, ColdFlushesRouteToRelocationStream) {
  const BlockKey hot{1, 0};
  const BlockKey cold{1, 1};
  res().TouchWrite(hot, clock_.now());
  res().TouchWrite(hot, clock_.now());
  res().TouchWrite(cold, clock_.now());
  clock_.Advance(60 * kSecond);  // cold decays to 0.25; hot keeps 0.5.
  res().TouchWrite(hot, clock_.now());

  EXPECT_EQ(res().FlushStream(hot, clock_.now()), WriteStream::kUser);
  EXPECT_EQ(res().FlushStream(cold, clock_.now()), WriteStream::kRelocation);
  EXPECT_EQ(res().stats().cold_stream_hints.value(), 1u);
  // A block never touched at all is cold by definition.
  EXPECT_EQ(res().FlushStream(BlockKey{9, 9}, clock_.now()),
            WriteStream::kRelocation);
}

class ResidencyDisabledTest : public ResidencyTest {
 protected:
  ResidencyDisabledTest() : ResidencyTest(ResidencyOptions{}) {}
};

TEST_F(ResidencyDisabledTest, DefaultPolicyTracksAndMigratesNothing) {
  ASSERT_FALSE(res().enabled());
  const BlockKey key{1, 0};
  SeedFlashBlock(0, 0xAA);
  res().TouchRead(key, clock_.now());
  res().TouchWrite(key, clock_.now());
  for (int i = 0; i < 10; ++i) {
    res().OnFlashRead(key, 0, clock_.now());
    EXPECT_FALSE(res().NoteVmFault(key, clock_.now()));
  }
  EXPECT_EQ(res().HeatOf(key, clock_.now()), 0.0);
  EXPECT_FALSE(res().CleanCached(key));
  EXPECT_EQ(res().stats().touches.value(), 0u);
  EXPECT_EQ(res().stats().promotions.value(), 0u);
  EXPECT_EQ(res().FlushStream(key, clock_.now()), WriteStream::kUser);

  // The shared-budget allocator degenerates to the raw allocator.
  uint64_t allocated = 0;
  while (res().AllocateDramPage(nullptr).ok()) {
    ++allocated;
  }
  EXPECT_EQ(allocated, 128u);
  EXPECT_EQ(res().AllocateDramPage(nullptr).status().code(),
            ErrorCode::kResourceExhausted);
}

// --- Full-stack differential oracle --------------------------------------
//
// One stack per policy, driven in lockstep with the same seeded op stream.
// Every stack runs with validate_residency: each FS access cross-checks
// Resolve() against the pre-residency buffered/flash/hole decision and
// counts mismatches. The kWriteBufferOnly stack is additionally the content
// oracle: reads on the migration stacks must return byte-identical data.
class ResidencyDifferentialTest : public ::testing::Test {
 protected:
  struct Stack {
    explicit Stack(ResidencyPolicy policy) {
      FlashSpec flash_spec = TestFlashSpec();
      flash_spec.erase_sector_bytes = 8192;
      dram = std::make_unique<DramDevice>(TestDramSpec(), 256 * 1024, clock);
      flash = std::make_unique<FlashDevice>(flash_spec, 2 * kMiB, 2, clock);
      store = std::make_unique<FlashStore>(*flash, FlashStoreOptions{});
      ResidencyOptions residency;
      residency.policy = policy;
      // A short half-life keeps promotion *and* decay exercised inside the
      // test's compressed timeline.
      residency.heat_half_life = 2 * kSecond;
      manager =
          std::make_unique<StorageManager>(*dram, *store, 512, residency);
      MemoryFsOptions fs_options;
      fs_options.write_buffer_pages = 64;
      fs_options.validate_residency = true;
      fs = std::make_unique<MemoryFileSystem>(*manager, fs_options);
      space = std::make_unique<AddressSpace>(*manager);
    }

    SimClock clock;
    std::unique_ptr<DramDevice> dram;
    std::unique_ptr<FlashDevice> flash;
    std::unique_ptr<FlashStore> store;
    std::unique_ptr<StorageManager> manager;
    std::unique_ptr<MemoryFileSystem> fs;
    std::unique_ptr<AddressSpace> space;
  };

  static std::string PathOf(uint64_t i) { return "/f" + std::to_string(i); }
};

TEST_F(ResidencyDifferentialTest, TenThousandRandomOpsMatchOracle) {
  Stack oracle(ResidencyPolicy::kWriteBufferOnly);
  Stack promote(ResidencyPolicy::kReadPromote);
  Stack aggressive(ResidencyPolicy::kAggressive);
  Stack* stacks[] = {&oracle, &promote, &aggressive};

  constexpr int kOps = 10000;
  constexpr uint64_t kFiles = 24;
  constexpr uint64_t kMaxFileBytes = 16 * 512;
  constexpr uint64_t kVmBase = 1 * kMiB;
  Rng rng(20260806);
  std::vector<bool> exists(kFiles, false);
  bool vm_mapped[3] = {false, false, false};

  for (int op = 0; op < kOps; ++op) {
    const uint64_t file = rng.NextBelow(kFiles);
    const std::string path = PathOf(file);
    const int kind = static_cast<int>(rng.NextBelow(16));
    switch (kind) {
      case 0: {  // Create.
        if (!exists[file]) {
          for (Stack* s : stacks) {
            ASSERT_TRUE(s->fs->Create(path).ok());
          }
          exists[file] = true;
        }
        break;
      }
      case 1: {  // Unlink (drops buffered blocks, clean copies, and heat).
        if (exists[file] && !(file == 0 && vm_mapped[0])) {
          for (Stack* s : stacks) {
            ASSERT_TRUE(s->fs->Unlink(path).ok());
          }
          exists[file] = false;
        }
        break;
      }
      case 2: {  // Truncate.
        if (exists[file] && !(file == 0 && vm_mapped[0])) {
          const uint64_t size = rng.NextBelow(kMaxFileBytes);
          for (Stack* s : stacks) {
            ASSERT_TRUE(s->fs->Truncate(path, size).ok());
          }
        }
        break;
      }
      case 3: {  // Sync: everything dirty goes to flash.
        for (Stack* s : stacks) {
          ASSERT_TRUE(s->fs->Sync().ok());
        }
        break;
      }
      case 4: {  // Periodic flush daemon tick.
        for (Stack* s : stacks) {
          ASSERT_TRUE(s->fs->TickFlush(s->clock.now()).ok());
        }
        break;
      }
      case 5:
      case 6: {  // Idle: decay heat, age dirty blocks.
        const Duration d = (1 + rng.NextBelow(4000)) * kMillisecond;
        for (Stack* s : stacks) {
          s->clock.Advance(d);
        }
        break;
      }
      case 7: {  // VM read through a CoW mapping of file 0.
        if (!exists[0]) {
          break;
        }
        if (!vm_mapped[0]) {
          // Freeze file 0's size (mapping covers the synced layout) and map
          // it in all three stacks; an empty file refuses to map.
          bool all = true;
          for (int i = 0; i < 3 && all; ++i) {
            Stack* s = stacks[i];
            ASSERT_TRUE(s->fs->Sync().ok());
            all = s->space->MapFileCow(kVmBase, *s->fs, PathOf(0), false).ok();
            vm_mapped[i] = all;
          }
          if (!all) {
            for (int i = 0; i < 3; ++i) {
              if (vm_mapped[i]) {
                ASSERT_TRUE(stacks[i]->space->Unmap(kVmBase).ok());
                vm_mapped[i] = false;
              }
            }
            break;
          }
        }
        const uint64_t size = oracle.fs->Stat(PathOf(0)).value().size;
        if (size > 0) {
          const uint64_t off = rng.NextBelow(size);
          const uint64_t len = 1 + rng.NextBelow(size - off);
          std::vector<uint8_t> want(len);
          ASSERT_TRUE(oracle.space->Read(kVmBase + off, want).ok());
          for (Stack* s : {&promote, &aggressive}) {
            std::vector<uint8_t> got(len);
            ASSERT_TRUE(s->space->Read(kVmBase + off, got).ok());
            ASSERT_EQ(got, want) << "VM read diverged at op " << op;
          }
        }
        break;
      }
      default: {  // Write or read at a random extent.
        if (!exists[file]) {
          break;
        }
        const uint64_t off = rng.NextBelow(kMaxFileBytes);
        const uint64_t len = 1 + rng.NextBelow(3 * 512);
        const bool write_op = kind < 12 && !(file == 0 && vm_mapped[0]);
        if (write_op) {
          std::vector<uint8_t> data(len);
          for (auto& b : data) {
            b = static_cast<uint8_t>(rng.Next());
          }
          for (Stack* s : stacks) {
            ASSERT_TRUE(s->fs->Write(path, off, data).ok());
          }
        } else {  // Read + cross-policy content equivalence.
          std::vector<uint8_t> want(len, 0xEE);
          Result<uint64_t> n = oracle.fs->Read(path, off, want);
          ASSERT_TRUE(n.ok());
          want.resize(n.value());
          for (Stack* s : {&promote, &aggressive}) {
            std::vector<uint8_t> got(len, 0xDD);
            Result<uint64_t> m = s->fs->Read(path, off, got);
            ASSERT_TRUE(m.ok());
            got.resize(m.value());
            ASSERT_EQ(got, want)
                << "read diverged at op " << op << " on " << path;
          }
        }
        break;
      }
    }
  }

  // The differential oracle inside each stack must have stayed silent, and
  // the migration stacks must have actually migrated something (otherwise
  // this test exercised nothing).
  for (Stack* s : stacks) {
    EXPECT_EQ(s->fs->residency_validation_failures(), 0u)
        << ResidencyPolicyName(s->manager->residency().policy());
  }
  EXPECT_EQ(oracle.manager->residency().stats().promotions.value(), 0u);
  EXPECT_GT(promote.manager->residency().stats().promotions.value(), 0u);
  EXPECT_GT(aggressive.manager->residency().stats().promotions.value(), 0u);
  EXPECT_GT(promote.fs->stats().clean_cached_read_bytes.value(), 0u);

  // Final full-content sweep: every surviving file byte-identical.
  for (uint64_t f = 0; f < kFiles; ++f) {
    if (!exists[f]) {
      continue;
    }
    const uint64_t size = oracle.fs->Stat(PathOf(f)).value().size;
    std::vector<uint8_t> want(size);
    if (size > 0) {
      ASSERT_TRUE(oracle.fs->Read(PathOf(f), 0, want).ok());
    }
    for (Stack* s : {&promote, &aggressive}) {
      ASSERT_EQ(s->fs->Stat(PathOf(f)).value().size, size);
      std::vector<uint8_t> got(size);
      if (size > 0) {
        ASSERT_TRUE(s->fs->Read(PathOf(f), 0, got).ok());
      }
      ASSERT_EQ(got, want) << "final content diverged on " << PathOf(f);
    }
  }
}

// Under a migration policy the clean cache, dirty buffer, and VM frames all
// draw from one DRAM pool: exhausting it with VM copies must shrink the
// cache, and FS writes must then be able to steal VM clean pages back.
TEST_F(ResidencyDifferentialTest, SingleDramPoolIsSharedAcrossConsumers) {
  Stack stack(ResidencyPolicy::kReadPromote);
  MemoryFileSystem& fs = *stack.fs;
  ResidencyManager& res = stack.manager->residency();

  // A synced file: 64 flash blocks.
  ASSERT_TRUE(fs.Create("/hot").ok());
  std::vector<uint8_t> bytes(64 * 512);
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<uint8_t>(i * 13);
  }
  ASSERT_TRUE(fs.Write("/hot", 0, bytes).ok());
  ASSERT_TRUE(fs.Sync().ok());

  // Read it twice: the whole file promotes into the clean cache.
  std::vector<uint8_t> out(bytes.size());
  ASSERT_TRUE(fs.Read("/hot", 0, out).ok());
  ASSERT_TRUE(fs.Read("/hot", 0, out).ok());
  EXPECT_EQ(out, bytes);
  const uint64_t cached = res.clean_pages();
  ASSERT_GT(cached, 0u);

  // A demand-copy mapping faults clean file copies into VM frames until the
  // allocator turns to the clean cache (and then the VM's own pages).
  ASSERT_TRUE(
      stack.space->MapFileDemandCopy(2 * kMiB, fs, "/hot", false).ok());
  while (stack.manager->free_dram_pages() > 0) {
    ASSERT_TRUE(stack.manager->AllocateDramPage().ok());
  }
  ASSERT_TRUE(stack.space->Read(2 * kMiB, out).ok());
  EXPECT_EQ(out, bytes);
  EXPECT_LT(res.clean_pages(), cached)
      << "VM pressure should have demoted clean-cache pages";

  // FS writes still succeed: the shared budget reclaims the VM's clean
  // demand-copies once the cache is spent.
  const uint64_t reclaimed_before =
      stack.space->stats().reclaimed_pages.value();
  std::vector<uint8_t> fresh(8 * 512, 0x77);
  ASSERT_TRUE(fs.Create("/new").ok());
  ASSERT_TRUE(fs.Write("/new", 0, fresh).ok());
  std::vector<uint8_t> check(fresh.size());
  ASSERT_TRUE(fs.Read("/new", 0, check).ok());
  EXPECT_EQ(check, fresh);
  EXPECT_GT(stack.space->stats().reclaimed_pages.value(), reclaimed_before);
}

}  // namespace
}  // namespace ssmc
