#include "src/trace/trace.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

TEST(TraceTest, OpNamesRoundTripThroughText) {
  Trace trace;
  trace.Add({100, TraceOp::kMkdir, "/d", 0, 0, ""});
  trace.Add({200, TraceOp::kCreate, "/d/f", 0, 0, ""});
  trace.Add({300, TraceOp::kWrite, "/d/f", 10, 500, ""});
  trace.Add({400, TraceOp::kRead, "/d/f", 0, 510, ""});
  trace.Add({500, TraceOp::kStat, "/d/f", 0, 0, ""});
  trace.Add({600, TraceOp::kTruncate, "/d/f", 0, 100, ""});
  trace.Add({700, TraceOp::kRename, "/d/f", 0, 0, "/d/g"});
  trace.Add({800, TraceOp::kUnlink, "/d/g", 0, 0, ""});

  Result<Trace> parsed = Trace::FromText(trace.ToText());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed.value().records()[i], trace.records()[i]) << "record " << i;
  }
}

TEST(TraceTest, TotalsComputed) {
  Trace trace;
  trace.Add({0, TraceOp::kWrite, "/f", 0, 100, ""});
  trace.Add({10, TraceOp::kWrite, "/f", 0, 200, ""});
  trace.Add({20, TraceOp::kRead, "/f", 0, 50, ""});
  EXPECT_EQ(trace.TotalBytesWritten(), 300u);
  EXPECT_EQ(trace.TotalBytesRead(), 50u);
  EXPECT_EQ(trace.DurationNs(), 20);
}

TEST(TraceTest, EmptyTrace) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.DurationNs(), 0);
  EXPECT_EQ(trace.ToText(), "");
}

TEST(TraceTest, ParserSkipsCommentsAndBlankLines) {
  Result<Trace> parsed = Trace::FromText(
      "# a comment\n"
      "\n"
      "5 create /f 0 0\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value().records()[0].op, TraceOp::kCreate);
}

TEST(TraceTest, PrefixCutsByTime) {
  Trace trace;
  trace.Add({0, TraceOp::kCreate, "/a", 0, 0, ""});
  trace.Add({100, TraceOp::kWrite, "/a", 0, 10, ""});
  trace.Add({200, TraceOp::kUnlink, "/a", 0, 0, ""});
  const Trace cut = trace.Prefix(100);
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_EQ(cut.records()[1].op, TraceOp::kWrite);
  EXPECT_TRUE(trace.Prefix(-1).empty());
  EXPECT_EQ(trace.Prefix(10000).size(), 3u);
}

TEST(TraceTest, WithPathPrefixRewritesAllPaths) {
  Trace trace;
  trace.Add({0, TraceOp::kMkdir, "/d", 0, 0, ""});
  trace.Add({1, TraceOp::kRename, "/d/a", 0, 0, "/d/b"});
  const Trace remapped = trace.WithPathPrefix("/s1");
  EXPECT_EQ(remapped.records()[0].path, "/s1/d");
  EXPECT_EQ(remapped.records()[1].path, "/s1/d/a");
  EXPECT_EQ(remapped.records()[1].path2, "/s1/d/b");
  // The original is untouched.
  EXPECT_EQ(trace.records()[0].path, "/d");
}

TEST(TraceTest, ParserRejectsGarbage) {
  EXPECT_FALSE(Trace::FromText("not a trace line\n").ok());
  EXPECT_FALSE(Trace::FromText("5 explode /f 0 0\n").ok());
}

TEST(TraceTest, TenantTagRoundTripsThroughText) {
  Trace trace;
  trace.Add({100, TraceOp::kCreate, "/f", 0, 0, ""});
  trace.Add({200, TraceOp::kWrite, "/f", 0, 64, ""});
  trace.Add({300, TraceOp::kRename, "/f", 0, 0, "/g"});  // Optional path2.
  const Trace tagged = trace.WithTenant(5);
  ASSERT_EQ(tagged.size(), 3u);
  for (const TraceRecord& r : tagged.records()) {
    EXPECT_EQ(r.tenant, 5);
  }
  // The original is untouched.
  EXPECT_EQ(trace.records()[0].tenant, kDefaultTenant);

  Result<Trace> parsed = Trace::FromText(tagged.ToText());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), tagged.size());
  for (size_t i = 0; i < tagged.size(); ++i) {
    EXPECT_EQ(parsed.value().records()[i], tagged.records()[i])
        << "record " << i;
  }
}

TEST(TraceTest, DefaultTenantSerializesWithoutTenantToken) {
  // Single-tenant traces must round-trip through the exact pre-tenancy text
  // format: no "t=" token on output, and pre-tenancy lines parse to the
  // default tenant.
  Trace trace;
  trace.Add({100, TraceOp::kWrite, "/f", 0, 64, ""});
  EXPECT_EQ(trace.ToText().find("t="), std::string::npos);

  Result<Trace> parsed = Trace::FromText("100 write /f 0 64\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value().records()[0].tenant, kDefaultTenant);
}

}  // namespace
}  // namespace ssmc
