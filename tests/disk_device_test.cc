#include "src/device/disk_device.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace ssmc {
namespace {

DiskSpec TestSpec() {
  DiskSpec spec;
  spec.name = "test disk";
  spec.sector_bytes = 512;
  spec.sectors_per_track = 16;
  spec.cylinders = 100;
  spec.min_seek_ns = 1 * kMillisecond;
  spec.avg_seek_ns = 10 * kMillisecond;
  spec.max_seek_ns = 20 * kMillisecond;
  spec.rotation_ns = 10 * kMillisecond;
  spec.transfer_mib_per_s = 1.0;
  spec.spin_up_ns = 500 * kMillisecond;
  spec.active_mw = 1500;
  spec.idle_mw = 700;
  spec.standby_mw = 15;
  return spec;
}

TEST(DiskDeviceTest, CapacityFromGeometry) {
  SimClock clock;
  DiskDevice disk(TestSpec(), clock);
  EXPECT_EQ(disk.capacity_bytes(), 512u * 16 * 100);
  EXPECT_EQ(disk.num_sectors(), 1600u);
}

TEST(DiskDeviceTest, WriteThenReadRoundTrips) {
  SimClock clock;
  DiskDevice disk(TestSpec(), clock);
  disk.set_spin_down_after(0);
  std::vector<uint8_t> data(1024);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_TRUE(disk.WriteSectors(10, data).ok());
  std::vector<uint8_t> out(1024);
  ASSERT_TRUE(disk.ReadSectors(10, out).ok());
  EXPECT_EQ(out, data);
}

TEST(DiskDeviceTest, PartialSectorIoRejected) {
  SimClock clock;
  DiskDevice disk(TestSpec(), clock);
  std::vector<uint8_t> buf(100);
  EXPECT_EQ(disk.ReadSectors(0, buf).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(DiskDeviceTest, OutOfRangeRejected) {
  SimClock clock;
  DiskDevice disk(TestSpec(), clock);
  std::vector<uint8_t> buf(512);
  EXPECT_EQ(disk.ReadSectors(1600, buf).status().code(),
            ErrorCode::kOutOfRange);
}

TEST(DiskDeviceTest, SeekCostGrowsWithDistance) {
  SimClock clock;
  DiskDevice disk(TestSpec(), clock);
  disk.set_spin_down_after(0);
  std::vector<uint8_t> buf(512);
  // Position head at cylinder 0.
  ASSERT_TRUE(disk.ReadSectors(0, buf).ok());

  const SimTime t0 = clock.now();
  ASSERT_TRUE(disk.ReadSectors(1 * 16, buf).ok());  // 1 cylinder away.
  const Duration near = clock.now() - t0;

  // Re-seat at cylinder 1, then go to the far edge.
  const SimTime t1 = clock.now();
  ASSERT_TRUE(disk.ReadSectors(99 * 16, buf).ok());  // 98 cylinders away.
  const Duration far = clock.now() - t1;
  EXPECT_GT(far, near);
}

TEST(DiskDeviceTest, SameCylinderHasNoSeek) {
  SimClock clock;
  DiskDevice disk(TestSpec(), clock);
  disk.set_spin_down_after(0);
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(disk.ReadSectors(0, buf).ok());
  const uint64_t seeks_before = disk.stats().seeks.value();
  ASSERT_TRUE(disk.ReadSectors(1, buf).ok());  // Same cylinder (track 0).
  EXPECT_EQ(disk.stats().seeks.value(), seeks_before);
}

TEST(DiskDeviceTest, AccessIsMillisecondsNotMicroseconds) {
  SimClock clock;
  DiskDevice disk(TestSpec(), clock);
  disk.set_spin_down_after(0);
  std::vector<uint8_t> buf(512);
  Result<Duration> r = disk.ReadSectors(800, buf);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value(), 1 * kMillisecond);
}

TEST(DiskDeviceTest, SpinUpPaidAfterLongIdle) {
  SimClock clock;
  DiskDevice disk(TestSpec(), clock);
  disk.set_spin_down_after(1 * kSecond);
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(disk.ReadSectors(0, buf).ok());
  // Idle for 10 s: disk spins down.
  clock.Advance(10 * kSecond);
  const SimTime before = clock.now();
  ASSERT_TRUE(disk.ReadSectors(0, buf).ok());
  EXPECT_GE(clock.now() - before, TestSpec().spin_up_ns);
  EXPECT_EQ(disk.stats().spin_ups.value(), 1u);
}

TEST(DiskDeviceTest, NoSpinUpWhenBusy) {
  SimClock clock;
  DiskDevice disk(TestSpec(), clock);
  disk.set_spin_down_after(1 * kSecond);
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(disk.ReadSectors(0, buf).ok());
  clock.Advance(100 * kMillisecond);  // Shorter than spin-down timeout.
  ASSERT_TRUE(disk.ReadSectors(5, buf).ok());
  EXPECT_EQ(disk.stats().spin_ups.value(), 0u);
}

TEST(DiskDeviceTest, EnergyIncludesIdleSpinning) {
  SimClock clock;
  DiskDevice disk(TestSpec(), clock);
  disk.set_spin_down_after(0);  // Never spin down.
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(disk.ReadSectors(0, buf).ok());
  clock.Advance(kSecond);
  disk.AccountIdleEnergy();
  // Idle spinning at 700 mW for ~1 s ~= 0.7 J.
  EXPECT_GT(disk.energy().idle_nanojoules(), 0.5e9);
}

TEST(DiskDeviceTest, StatsBreakDownLatency) {
  SimClock clock;
  DiskDevice disk(TestSpec(), clock);
  disk.set_spin_down_after(0);
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(disk.ReadSectors(0, buf).ok());
  ASSERT_TRUE(disk.ReadSectors(99 * 16, buf).ok());
  EXPECT_GT(disk.stats().seek_ns.value(), 0u);
  EXPECT_GT(disk.stats().transfer_ns.value(), 0u);
  EXPECT_EQ(disk.stats().reads.value(), 2u);
}

// Stats parity with FlashDevice: a blocking read that queues behind an
// earlier reservation reports its wait in queue_wait_ns and read_stall_ns,
// and the wait shows up in the returned latency.
TEST(DiskDeviceTest, BlockingReadBehindWriteBehindReportsStall) {
  SimClock clock;
  DiskDevice disk(TestSpec(), clock);
  disk.set_spin_down_after(0);
  std::vector<uint8_t> data(512, 7);
  // Write-behind: reserves the arm without advancing our clock.
  Result<Duration> w = disk.WriteSectors(0, data, kFlushIo);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(clock.now(), 0);
  const SimTime arm_busy = disk.ArmBusyUntil();
  EXPECT_GT(arm_busy, 0);
  EXPECT_EQ(disk.stats().queue_wait_ns.value(), 0u);
  EXPECT_EQ(disk.stats().read_stall_ns.value(), 0u);

  // A foreground read now queues behind the in-flight write.
  std::vector<uint8_t> out(512);
  Result<Duration> r = disk.ReadSectors(0, out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(disk.stats().read_stall_ns.value(),
            static_cast<uint64_t>(arm_busy));
  EXPECT_EQ(disk.stats().queue_wait_ns.value(),
            static_cast<uint64_t>(arm_busy));
  EXPECT_GE(r.value(), arm_busy);        // Latency includes the wait.
  EXPECT_GE(clock.now(), arm_busy);      // Blocking: clock passed the queue.
}

// Blocking-only traffic never queues, so the parity counters stay zero —
// the disk baseline rows in E3 report a clean breakdown.
TEST(DiskDeviceTest, BlockingOnlyTrafficHasNoQueueWait) {
  SimClock clock;
  DiskDevice disk(TestSpec(), clock);
  disk.set_spin_down_after(0);
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(disk.ReadSectors(0, buf).ok());
  ASSERT_TRUE(disk.WriteSectors(40, buf).ok());
  ASSERT_TRUE(disk.ReadSectors(99 * 16, buf).ok());
  EXPECT_EQ(disk.stats().queue_wait_ns.value(), 0u);
  EXPECT_EQ(disk.stats().read_stall_ns.value(), 0u);
}

}  // namespace
}  // namespace ssmc
