#include "src/device/dram_device.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace ssmc {
namespace {

DramSpec TestSpec(bool battery_backed = true) {
  DramSpec spec;
  spec.name = "test dram";
  spec.read = {50, 10};
  spec.write = {60, 12};
  spec.active_mw_per_mib = 150;
  spec.standby_mw_per_mib = 1.5;
  spec.battery_backed = battery_backed;
  return spec;
}

TEST(DramDeviceTest, WriteThenReadRoundTrips) {
  SimClock clock;
  DramDevice dram(TestSpec(), 64 * 1024, clock);
  std::vector<uint8_t> data(128);
  std::iota(data.begin(), data.end(), 1);
  ASSERT_TRUE(dram.Write(4096, data).ok());
  std::vector<uint8_t> out(128);
  ASSERT_TRUE(dram.Read(4096, out).ok());
  EXPECT_EQ(out, data);
}

TEST(DramDeviceTest, LatencyFollowsSpec) {
  SimClock clock;
  DramDevice dram(TestSpec(), 64 * 1024, clock);
  std::vector<uint8_t> buf(100);
  Result<Duration> r = dram.Read(0, buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 50 + 10 * 100);
  Result<Duration> w = dram.Write(0, buf);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value(), 60 + 12 * 100);
  EXPECT_EQ(clock.now(), r.value() + w.value());
}

TEST(DramDeviceTest, OutOfRangeRejected) {
  SimClock clock;
  DramDevice dram(TestSpec(), 1024, clock);
  std::vector<uint8_t> buf(64);
  EXPECT_EQ(dram.Read(1024, buf).status().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(dram.Write(1000, buf).status().code(), ErrorCode::kOutOfRange);
}

TEST(DramDeviceTest, BatteryBackedSurvivesPowerLoss) {
  SimClock clock;
  DramDevice dram(TestSpec(/*battery_backed=*/true), 1024, clock);
  std::vector<uint8_t> data(16, 0x5A);
  ASSERT_TRUE(dram.Write(0, data).ok());
  dram.OnPowerLoss();
  EXPECT_FALSE(dram.contents_lost());
  std::vector<uint8_t> out(16);
  ASSERT_TRUE(dram.Read(0, out).ok());
  EXPECT_EQ(out, data);
}

TEST(DramDeviceTest, VolatileDramLosesContentsOnPowerLoss) {
  SimClock clock;
  DramDevice dram(TestSpec(/*battery_backed=*/false), 1024, clock);
  std::vector<uint8_t> data(16, 0x5A);
  ASSERT_TRUE(dram.Write(0, data).ok());
  dram.OnPowerLoss();
  EXPECT_TRUE(dram.contents_lost());
  std::vector<uint8_t> out(16, 0xEE);
  ASSERT_TRUE(dram.Read(0, out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(16, 0));
  EXPECT_EQ(dram.stats().content_losses.value(), 1u);
}

TEST(DramDeviceTest, ForceContentLossAlwaysLoses) {
  SimClock clock;
  DramDevice dram(TestSpec(/*battery_backed=*/true), 1024, clock);
  std::vector<uint8_t> data(16, 0x5A);
  ASSERT_TRUE(dram.Write(0, data).ok());
  dram.ForceContentLoss();
  EXPECT_TRUE(dram.contents_lost());
}

TEST(DramDeviceTest, StatsTrackBytes) {
  SimClock clock;
  DramDevice dram(TestSpec(), 1024, clock);
  std::vector<uint8_t> buf(100);
  ASSERT_TRUE(dram.Write(0, buf).ok());
  ASSERT_TRUE(dram.Read(0, buf).ok());
  EXPECT_EQ(dram.stats().writes.value(), 1u);
  EXPECT_EQ(dram.stats().written_bytes.value(), 100u);
  EXPECT_EQ(dram.stats().reads.value(), 1u);
  EXPECT_EQ(dram.stats().read_bytes.value(), 100u);
}

TEST(DramDeviceTest, StandbyPowerScalesWithCapacity) {
  SimClock clock;
  DramDevice small(TestSpec(), 1 * kMiB, clock);
  DramDevice big(TestSpec(), 4 * kMiB, clock);
  EXPECT_DOUBLE_EQ(big.standby_mw(), 4 * small.standby_mw());
}

TEST(DramDeviceTest, IdleEnergyAccrues) {
  SimClock clock;
  DramDevice dram(TestSpec(), 1 * kMiB, clock);
  clock.Advance(kSecond);
  dram.AccountIdleEnergy();
  // 1.5 mW for 1 s = 1.5 mJ = 1.5e6 nJ.
  EXPECT_NEAR(dram.energy().idle_nanojoules(), 1.5e6, 1e4);
}

}  // namespace
}  // namespace ssmc
