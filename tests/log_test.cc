#include "src/support/log.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kWarning); }
};

TEST_F(LogTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kOff);
  EXPECT_EQ(GetLogLevel(), LogLevel::kOff);
}

TEST_F(LogTest, MacroStreamsArbitraryTypes) {
  SetLogLevel(LogLevel::kOff);  // Discarded, but must compile and run.
  SSMC_LOG(kInfo) << "value=" << 42 << " ratio=" << 1.5 << " name=" << "x";
  SSMC_LOG(kError) << std::string("string payload");
}

TEST_F(LogTest, BelowThresholdDiscarded) {
  // Behavioural smoke: capture stderr around calls.
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  SSMC_LOG(kDebug) << "hidden";
  SSMC_LOG(kInfo) << "hidden";
  SSMC_LOG(kWarning) << "hidden";
  const std::string quiet = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(quiet.empty());

  ::testing::internal::CaptureStderr();
  SSMC_LOG(kError) << "visible message";
  const std::string loud = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(loud.find("visible message"), std::string::npos);
  EXPECT_NE(loud.find("ERROR"), std::string::npos);
}

}  // namespace
}  // namespace ssmc
