// Randomized relocation-integrity property test for the zero-copy data
// plane.
//
// The cleaner, cold-eviction, and static wear-leveling paths relocate live
// pages by re-filing the *same* refcounted extent under a new physical
// address — no payload bytes move. This test drives a small store through
// heavy overwrite churn (forcing thousands of relocations) while outside
// holders keep aliased PayloadRefs to live blocks, transient read faults hit
// random sectors, and blocks are trimmed and rewritten. Three oracles must
// agree at every step:
//
//  1. a model map of the logically-written bytes (what Read must return);
//  2. snapshots taken when each alias was acquired (relocation and
//     subsequent overwrites must never mutate a held ref — CoW);
//  3. the device's memcpy shadow card (validate_payloads), which memcmp's
//     every extent read against a flat byte array maintained by the legacy
//     copying path. payload_validation_failures() must end at zero.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/device/flash_device.h"
#include "src/ftl/flash_store.h"
#include "src/support/extent.h"
#include "src/support/rng.h"

namespace ssmc {
namespace {

FlashSpec SmallFlashSpec() {
  FlashSpec spec;
  spec.name = "reloc test flash";
  spec.read = {100, 10};
  spec.program = {1000, 100};
  spec.erase_sector_bytes = 2048;  // 4 pages of 512 B.
  spec.erase_ns = 1 * kMillisecond;
  spec.endurance_cycles = 1000000;
  spec.active_mw_per_mib = 30;
  spec.standby_mw_per_mib = 0.05;
  return spec;
}

struct HeldAlias {
  uint64_t block;
  uint64_t version;  // Model version when the alias was taken.
  PayloadRef ref;
  std::vector<uint8_t> snapshot;
};

class RelocationIntegrityTest
    : public ::testing::TestWithParam<std::pair<CleanerPolicy, WearPolicy>> {};

TEST_P(RelocationIntegrityTest, AliasedPayloadsSurviveChurnAndFaults) {
  SimClock clock;
  FlashDevice flash(SmallFlashSpec(), /*capacity=*/64 * 1024, /*banks=*/2,
                    clock, /*seed=*/7);
  flash.set_validate_payloads(true);

  FlashStoreOptions opts;
  opts.cleaner = GetParam().first;
  opts.wear = GetParam().second;
  opts.hot_bank_count = 1;  // Exercise the cold-eviction relocation path too.
  opts.static_wear_check_interval = 16;
  opts.static_wear_delta = 8;
  FlashStore store(flash, opts);

  const uint64_t kBlockBytes = store.block_bytes();
  const uint64_t kBlocks = store.num_blocks();
  ASSERT_GT(kBlocks, 8u);

  Rng rng(0x5eed + static_cast<uint64_t>(opts.cleaner) * 131 +
          static_cast<uint64_t>(opts.wear));
  std::map<uint64_t, std::vector<uint8_t>> model;
  std::map<uint64_t, uint64_t> version;
  std::vector<HeldAlias> held;
  uint64_t next_version = 1;

  auto make_block = [&](uint64_t block, uint64_t ver) {
    std::vector<uint8_t> data(kBlockBytes);
    for (uint64_t i = 0; i < kBlockBytes; ++i) {
      data[i] = static_cast<uint8_t>(block * 7 + ver * 13 + i);
    }
    return data;
  };

  for (int iter = 0; iter < 6000; ++iter) {
    const uint64_t roll = rng.NextBelow(100);
    if (roll < 70) {
      // Overwrite-heavy traffic over a small hot set forces relocation.
      const uint64_t block =
          roll < 50 ? rng.NextBelow(kBlocks / 4) : rng.NextBelow(kBlocks);
      const uint64_t ver = next_version++;
      std::vector<uint8_t> data = make_block(block, ver);
      PayloadRef payload = store.extent_pool().AllocateCopy(data.data());
      Result<Duration> w = store.WriteRef(block, std::move(payload),
                                          WriteStream::kUser,
                                          IoPriority::kForeground);
      if (w.ok()) {
        model[block] = std::move(data);
        version[block] = ver;
      } else {
        // An armed fault can break the cleaning a write depends on. The
        // failure must be clean: the mapping still serves the old bytes.
        flash.InjectReadFaults(0, 0);
        auto old = model.find(block);
        if (old != model.end()) {
          std::vector<uint8_t> out(kBlockBytes);
          ASSERT_TRUE(store.Read(block, out).ok());
          ASSERT_EQ(std::memcmp(out.data(), old->second.data(), kBlockBytes),
                    0)
              << "failed write corrupted block " << block;
        }
      }
    } else if (roll < 80) {
      // Take (or refresh) an aliased ref to a live block and snapshot it.
      if (model.empty()) continue;
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(model.size())));
      Result<PayloadRef> ref = store.ReadRef(it->first);
      if (!ref.ok()) continue;  // An armed injected fault may eat this read.
      ASSERT_EQ(std::memcmp(ref.value().data(), it->second.data(),
                            kBlockBytes),
                0);
      held.push_back({it->first, version[it->first], std::move(ref.value()),
                      it->second});
      if (held.size() > 32) held.erase(held.begin());
    } else if (roll < 85) {
      // Transient read faults against a random sector: relocation reads may
      // fail mid-clean; the store must fail the move without corrupting
      // anything.
      flash.InjectReadFaults(rng.NextBelow(flash.num_sectors()),
                             static_cast<int>(rng.NextBelow(4)));
    } else if (roll < 92) {
      if (model.empty()) continue;
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(model.size())));
      ASSERT_TRUE(store.Trim(it->first).ok());
      version.erase(it->first);
      model.erase(it);
    } else {
      flash.InjectReadFaults(0, 0);  // Clear faults, then force a full clean.
      ASSERT_TRUE(store.Clean().ok());
    }
  }

  flash.InjectReadFaults(0, 0);

  // Oracle 1: every mapped block reads back its model bytes.
  std::vector<uint8_t> out(kBlockBytes);
  for (const auto& [block, data] : model) {
    ASSERT_TRUE(store.Read(block, out).ok()) << "block " << block;
    ASSERT_EQ(std::memcmp(out.data(), data.data(), kBlockBytes), 0)
        << "block " << block;
  }

  // Oracle 2: held aliases still show the bytes from acquisition time, no
  // matter how many times the cleaner relocated them or callers overwrote
  // the same logical block since.
  for (const HeldAlias& h : held) {
    ASSERT_EQ(std::memcmp(h.ref.data(), h.snapshot.data(), kBlockBytes), 0)
        << "aliased ref of block " << h.block << " (version " << h.version
        << ") mutated";
  }

  // Oracle 3: the device-level shadow card never saw an extent read disagree
  // with the legacy memcpy representation.
  EXPECT_EQ(flash.payload_validation_failures(), 0u);

  // Sanity: the churn actually exercised the relocation machinery.
  EXPECT_GT(store.stats().gc_relocations.value(), 100u);
  EXPECT_GT(store.stats().gc_runs.value(), 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, RelocationIntegrityTest,
    ::testing::Values(
        std::make_pair(CleanerPolicy::kGreedy, WearPolicy::kNone),
        std::make_pair(CleanerPolicy::kGreedy, WearPolicy::kDynamic),
        std::make_pair(CleanerPolicy::kCostBenefit, WearPolicy::kDynamic),
        std::make_pair(CleanerPolicy::kCostBenefit, WearPolicy::kStatic)));

}  // namespace
}  // namespace ssmc
