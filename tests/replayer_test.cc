#include "src/trace/replayer.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/machine.h"
#include "src/trace/generator.h"

namespace ssmc {
namespace {

class ReplayerTest : public ::testing::Test {
 protected:
  ReplayerTest() : machine_(OmniBookConfig()) {}
  MobileComputer machine_;
};

TEST_F(ReplayerTest, ReplaysSimpleTrace) {
  Trace trace;
  trace.Add({0, TraceOp::kMkdir, "/d", 0, 0, ""});
  trace.Add({kMillisecond, TraceOp::kCreate, "/d/f", 0, 0, ""});
  trace.Add({2 * kMillisecond, TraceOp::kWrite, "/d/f", 0, 1000, ""});
  trace.Add({3 * kMillisecond, TraceOp::kRead, "/d/f", 0, 1000, ""});
  trace.Add({4 * kMillisecond, TraceOp::kStat, "/d/f", 0, 0, ""});
  trace.Add({5 * kMillisecond, TraceOp::kUnlink, "/d/f", 0, 0, ""});

  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_EQ(report.ops, 6u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.bytes_written, 1000u);
  EXPECT_EQ(report.bytes_read, 1000u);
  EXPECT_GE(report.elapsed(), 5 * kMillisecond);
}

TEST_F(ReplayerTest, FailuresCountedNotFatal) {
  Trace trace;
  trace.Add({0, TraceOp::kUnlink, "/missing", 0, 0, ""});
  trace.Add({10, TraceOp::kCreate, "/ok", 0, 0, ""});
  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_EQ(report.ops, 2u);
  EXPECT_EQ(report.failures, 1u);
}

TEST_F(ReplayerTest, RespectsTraceTiming) {
  Trace trace;
  trace.Add({0, TraceOp::kCreate, "/f", 0, 0, ""});
  trace.Add({kSecond, TraceOp::kStat, "/f", 0, 0, ""});
  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_GE(report.elapsed(), kSecond);
}

TEST_F(ReplayerTest, PerOpLatenciesRecorded) {
  Trace trace;
  trace.Add({0, TraceOp::kCreate, "/f", 0, 0, ""});
  trace.Add({10, TraceOp::kWrite, "/f", 0, 4096, ""});
  trace.Add({20, TraceOp::kRead, "/f", 0, 4096, ""});
  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_EQ(report.ForOp(TraceOp::kWrite).count(), 1u);
  EXPECT_EQ(report.ForOp(TraceOp::kRead).count(), 1u);
  EXPECT_GT(report.ForOp(TraceOp::kWrite).mean_ns(), 0.0);
}

TEST_F(ReplayerTest, GeneratedOfficeTraceReplaysCleanly) {
  WorkloadOptions options = OfficeWorkload();
  options.duration = kMinute;
  options.max_file_bytes = 64 * 1024;  // Keep within the small machine.
  Trace trace = WorkloadGenerator(options).Generate();
  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.ops, trace.size());
  EXPECT_GT(report.OpsPerSecond(), 0.0);
}

// Regression: a failed transfer must never leak its requested length into
// the throughput byte counts; it is tallied in failed_{read,write}_bytes.
TEST_F(ReplayerTest, FailedOpBytesCountedSeparately) {
  Trace trace;
  trace.Add({0, TraceOp::kCreate, "/f", 0, 0, ""});
  trace.Add({10, TraceOp::kWrite, "/f", 0, 2048, ""});
  trace.Add({20, TraceOp::kRead, "/f", 0, 2048, ""});
  trace.Add({30, TraceOp::kRead, "/missing", 0, 4096, ""});  // Fails.
  trace.Add({40, TraceOp::kWrite, "/missing", 0, 1024, ""});  // Fails.
  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_EQ(report.failures, 2u);
  EXPECT_EQ(report.bytes_read, 2048u);
  EXPECT_EQ(report.bytes_written, 2048u);
  EXPECT_EQ(report.failed_read_bytes, 4096u);
  EXPECT_EQ(report.failed_write_bytes, 1024u);
}

// Same regression against a device-level fault: an injected flash read fault
// surfaces as a failed read whose bytes stay out of bytes_read.
TEST_F(ReplayerTest, InjectedFlashFaultKeepsBytesOutOfThroughput) {
  Trace setup;
  setup.Add({0, TraceOp::kCreate, "/f", 0, 0, ""});
  setup.Add({10, TraceOp::kWrite, "/f", 0, 8192, ""});
  ReplayReport wrote = machine_.RunTrace(setup);
  ASSERT_EQ(wrote.failures, 0u);
  // Flush the write buffer so subsequent reads must come from flash.
  ASSERT_TRUE(machine_.fs().Sync().ok());

  // Poison the sector holding the file's first block.
  auto locations = machine_.fs().BlockLocations("/f");
  ASSERT_TRUE(locations.ok());
  ASSERT_FALSE(locations.value().empty());
  ASSERT_EQ(locations.value()[0].kind, BlockLocation::Kind::kFlash);
  auto addr =
      machine_.flash_store().PhysicalAddressOf(locations.value()[0].flash_block);
  ASSERT_TRUE(addr.ok());
  machine_.flash().InjectReadFaults(addr.value() / machine_.flash().sector_bytes(),
                                    1000);

  Trace read_back;
  read_back.Add({0, TraceOp::kRead, "/f", 0, 8192, ""});
  ReplayReport report = machine_.RunTrace(read_back);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_EQ(report.bytes_read, 0u);
  EXPECT_EQ(report.failed_read_bytes, 8192u);
}

TEST(ReplayReportTest, MergeCombinesShards) {
  ReplayReport a;
  a.ops = 10;
  a.failures = 1;
  a.bytes_read = 100;
  a.bytes_written = 200;
  a.failed_read_bytes = 50;
  a.started = 1000;
  a.finished = 5000;
  a.all_ops.Record(10);
  a.per_op[static_cast<size_t>(TraceOp::kRead)].Record(10);

  ReplayReport b;
  b.ops = 20;
  b.failures = 2;
  b.bytes_read = 300;
  b.bytes_written = 400;
  b.failed_write_bytes = 60;
  b.started = 500;
  b.finished = 4000;
  b.all_ops.Record(30);
  b.per_op[static_cast<size_t>(TraceOp::kWrite)].Record(30);

  ReplayReport merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.ops, 30u);
  EXPECT_EQ(merged.failures, 3u);
  EXPECT_EQ(merged.bytes_read, 400u);
  EXPECT_EQ(merged.bytes_written, 600u);
  EXPECT_EQ(merged.failed_read_bytes, 50u);
  EXPECT_EQ(merged.failed_write_bytes, 60u);
  // The merged window spans both shards (concurrent users overlap).
  EXPECT_EQ(merged.started, 500);
  EXPECT_EQ(merged.finished, 5000);
  EXPECT_EQ(merged.all_ops.count(), 2u);
  EXPECT_EQ(merged.ForOp(TraceOp::kRead).count(), 1u);
  EXPECT_EQ(merged.ForOp(TraceOp::kWrite).count(), 1u);

  // Merging an empty report is the identity.
  ReplayReport before = merged;
  merged.Merge(ReplayReport());
  EXPECT_EQ(merged.ops, before.ops);
  EXPECT_EQ(merged.started, before.started);
  EXPECT_EQ(merged.finished, before.finished);
}

TEST_F(ReplayerTest, FlushDaemonRunsDuringReplay) {
  // A write left idle past the flush age must reach flash via the daemon
  // without an explicit Sync.
  Trace trace;
  trace.Add({0, TraceOp::kCreate, "/f", 0, 0, ""});
  trace.Add({kMillisecond, TraceOp::kWrite, "/f", 0, 512, ""});
  trace.Add({60 * kSecond, TraceOp::kStat, "/f", 0, 0, ""});
  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GT(machine_.flash_store().stats().user_writes.value(), 0u);
}

TEST_F(ReplayerTest, WriteHotTraceExercisesWriteBuffer) {
  WorkloadOptions options = WriteHotWorkload();
  options.duration = kMinute;
  options.max_file_bytes = 32 * 1024;
  Trace trace = WorkloadGenerator(options).Generate();
  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_EQ(report.failures, 0u);
  const auto& wb = machine_.fs().write_buffer().stats();
  // Overwrite absorption and/or delete-dropping must have occurred.
  EXPECT_GT(wb.absorbed_overwrites.value() + wb.dropped_writes.value(), 0u);
}

}  // namespace
}  // namespace ssmc
