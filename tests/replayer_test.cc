#include "src/trace/replayer.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/machine.h"
#include "src/trace/generator.h"

namespace ssmc {
namespace {

class ReplayerTest : public ::testing::Test {
 protected:
  ReplayerTest() : machine_(OmniBookConfig()) {}
  MobileComputer machine_;
};

TEST_F(ReplayerTest, ReplaysSimpleTrace) {
  Trace trace;
  trace.Add({0, TraceOp::kMkdir, "/d", 0, 0, ""});
  trace.Add({kMillisecond, TraceOp::kCreate, "/d/f", 0, 0, ""});
  trace.Add({2 * kMillisecond, TraceOp::kWrite, "/d/f", 0, 1000, ""});
  trace.Add({3 * kMillisecond, TraceOp::kRead, "/d/f", 0, 1000, ""});
  trace.Add({4 * kMillisecond, TraceOp::kStat, "/d/f", 0, 0, ""});
  trace.Add({5 * kMillisecond, TraceOp::kUnlink, "/d/f", 0, 0, ""});

  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_EQ(report.ops, 6u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.bytes_written, 1000u);
  EXPECT_EQ(report.bytes_read, 1000u);
  EXPECT_GE(report.elapsed(), 5 * kMillisecond);
}

TEST_F(ReplayerTest, FailuresCountedNotFatal) {
  Trace trace;
  trace.Add({0, TraceOp::kUnlink, "/missing", 0, 0, ""});
  trace.Add({10, TraceOp::kCreate, "/ok", 0, 0, ""});
  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_EQ(report.ops, 2u);
  EXPECT_EQ(report.failures, 1u);
}

TEST_F(ReplayerTest, RespectsTraceTiming) {
  Trace trace;
  trace.Add({0, TraceOp::kCreate, "/f", 0, 0, ""});
  trace.Add({kSecond, TraceOp::kStat, "/f", 0, 0, ""});
  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_GE(report.elapsed(), kSecond);
}

TEST_F(ReplayerTest, PerOpLatenciesRecorded) {
  Trace trace;
  trace.Add({0, TraceOp::kCreate, "/f", 0, 0, ""});
  trace.Add({10, TraceOp::kWrite, "/f", 0, 4096, ""});
  trace.Add({20, TraceOp::kRead, "/f", 0, 4096, ""});
  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_EQ(report.ForOp(TraceOp::kWrite).count(), 1u);
  EXPECT_EQ(report.ForOp(TraceOp::kRead).count(), 1u);
  EXPECT_GT(report.ForOp(TraceOp::kWrite).mean_ns(), 0.0);
}

TEST_F(ReplayerTest, GeneratedOfficeTraceReplaysCleanly) {
  WorkloadOptions options = OfficeWorkload();
  options.duration = kMinute;
  options.max_file_bytes = 64 * 1024;  // Keep within the small machine.
  Trace trace = WorkloadGenerator(options).Generate();
  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.ops, trace.size());
  EXPECT_GT(report.OpsPerSecond(), 0.0);
}

TEST_F(ReplayerTest, FlushDaemonRunsDuringReplay) {
  // A write left idle past the flush age must reach flash via the daemon
  // without an explicit Sync.
  Trace trace;
  trace.Add({0, TraceOp::kCreate, "/f", 0, 0, ""});
  trace.Add({kMillisecond, TraceOp::kWrite, "/f", 0, 512, ""});
  trace.Add({60 * kSecond, TraceOp::kStat, "/f", 0, 0, ""});
  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GT(machine_.flash_store().stats().user_writes.value(), 0u);
}

TEST_F(ReplayerTest, WriteHotTraceExercisesWriteBuffer) {
  WorkloadOptions options = WriteHotWorkload();
  options.duration = kMinute;
  options.max_file_bytes = 32 * 1024;
  Trace trace = WorkloadGenerator(options).Generate();
  ReplayReport report = machine_.RunTrace(trace);
  EXPECT_EQ(report.failures, 0u);
  const auto& wb = machine_.fs().write_buffer().stats();
  // Overwrite absorption and/or delete-dropping must have occurred.
  EXPECT_GT(wb.absorbed_overwrites.value() + wb.dropped_writes.value(), 0u);
}

}  // namespace
}  // namespace ssmc
