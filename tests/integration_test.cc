// End-to-end integration scenarios exercising the whole machine: devices,
// FTL, storage manager, file system, VM, loader, battery, daemons, and
// crash recovery working together over long simulated stretches.

#include <gtest/gtest.h>

#include "src/core/machine.h"
#include "src/support/log.h"
#include "src/trace/generator.h"
#include "src/vm/loader.h"

namespace ssmc {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override { SetLogLevel(LogLevel::kError); }
  std::vector<uint8_t> Pattern(size_t n, uint8_t seed) {
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<uint8_t>(seed + i * 13);
    }
    return v;
  }
};

TEST_F(IntegrationTest, FullDayOfOfficeWorkWithCheckpoints) {
  MachineConfig config = NotebookConfig();
  config.checkpoint_period = kMinute;
  MobileComputer machine(config);

  // Three workload sessions separated by idle periods, like a real day.
  uint64_t total_failures = 0;
  for (int session = 0; session < 3; ++session) {
    WorkloadOptions options = OfficeWorkload();
    options.seed = 100 + static_cast<uint64_t>(session);
    options.duration = kMinute;
    options.max_file_bytes = 64 * 1024;
    options.num_directories = 4;
    // Each session uses its own directory subtree to avoid collisions.
    const std::string prefix = "/s" + std::to_string(session);
    ASSERT_TRUE(machine.fs().Mkdir(prefix).ok());
    const Trace trace =
        WorkloadGenerator(options).Generate().WithPathPrefix(prefix);
    const ReplayReport report = machine.RunTrace(trace);
    total_failures += report.failures;
    machine.Idle(10 * kMinute);  // Lunch / meetings: daemons run.
    ASSERT_TRUE(machine.SettleEnergy());
  }
  EXPECT_EQ(total_failures, 0u);
  // The day's activity reached flash via the flush daemon.
  EXPECT_GT(machine.flash_store().stats().user_writes.value(), 0u);
  // Checkpoints were taken.
  EXPECT_FALSE(machine.battery().dead());

  // The machine is dropped at the end of the day...
  machine.InjectBatteryFailure();
  Result<RecoveryReport> recovery = machine.RecoverAfterFailure(20000);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_GT(recovery.value().files_recovered, 0u);
  // ...and the recovered machine keeps working.
  ASSERT_TRUE(machine.fs().Create("/after-recovery").ok());
  ASSERT_TRUE(
      machine.fs().Write("/after-recovery", 0, Pattern(1000, 1)).ok());
  std::vector<uint8_t> out(1000);
  ASSERT_TRUE(machine.fs().Read("/after-recovery", 0, out).ok());
  EXPECT_EQ(out, Pattern(1000, 1));
}

TEST_F(IntegrationTest, ProgramsAndFilesShareTheMachine) {
  MobileComputer machine(OmniBookConfig());
  ASSERT_TRUE(machine.fs().Mkdir("/bin").ok());
  ASSERT_TRUE(machine.fs().Mkdir("/home").ok());

  // Install and launch an editor XIP.
  Program editor;
  editor.path = "/bin/editor";
  editor.text_bytes = 96 * kKiB;
  editor.data_bytes = 16 * kKiB;
  ASSERT_TRUE(InstallProgram(machine.fs(), editor).ok());
  machine.Idle(2 * kMinute);

  ProgramLoader loader;
  AddressSpace& space = machine.CreateAddressSpace();
  Result<LaunchResult> launch = loader.Launch(
      space, machine.fs(), editor, LaunchStrategy::kExecuteInPlace);
  ASSERT_TRUE(launch.ok());

  // The "editor" edits a document: reads it via the FS, writes new content.
  ASSERT_TRUE(machine.fs().Create("/home/doc").ok());
  for (int edit = 0; edit < 20; ++edit) {
    ASSERT_TRUE(machine.fs()
                    .Write("/home/doc", static_cast<uint64_t>(edit) * 100,
                           Pattern(100, static_cast<uint8_t>(edit)))
                    .ok());
    // It also executes some code between edits.
    ASSERT_TRUE(loader.Execute(space, launch.value(), 1).ok());
    machine.Idle(5 * kSecond);
  }
  ASSERT_TRUE(machine.fs().Sync().ok());

  // Document intact; program still executable; wear negligible.
  std::vector<uint8_t> out(100);
  ASSERT_TRUE(machine.fs().Read("/home/doc", 700, out).ok());
  EXPECT_EQ(out, Pattern(100, 7));
  EXPECT_LT(machine.flash().SummarizeWear().max_erases, 50u);
}

TEST_F(IntegrationTest, ProtectionAcrossAddressSpaces) {
  // Section 3.2: VM exists for protection. Two processes map the same
  // file; one writes its private COW copy; the other never sees it.
  MobileComputer machine(NotebookConfig());
  ASSERT_TRUE(machine.fs().Create("/shared").ok());
  ASSERT_TRUE(machine.fs().Write("/shared", 0, Pattern(2048, 5)).ok());
  ASSERT_TRUE(machine.fs().Sync().ok());
  machine.Idle(kMinute);

  AddressSpace& a = machine.CreateAddressSpace();
  AddressSpace& b = machine.CreateAddressSpace();
  const uint64_t va = uint64_t{1} << 30;
  ASSERT_TRUE(a.MapFileCow(va, machine.fs(), "/shared", true).ok());
  ASSERT_TRUE(b.MapFileCow(va, machine.fs(), "/shared", false).ok());

  // A writes privately.
  std::vector<uint8_t> patch(64, 0xEE);
  ASSERT_TRUE(a.Write(va + 128, patch).ok());
  // B cannot write at all...
  EXPECT_EQ(b.Write(va + 128, patch).status().code(),
            ErrorCode::kPermissionDenied);
  // ...and B reads the original bytes.
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(b.Read(va + 128, out).ok());
  const auto original = Pattern(2048, 5);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), original.begin() + 128));
  // A reads its own patch.
  ASSERT_TRUE(a.Read(va + 128, out).ok());
  EXPECT_EQ(out, patch);
  // And the file itself is unchanged.
  std::vector<uint8_t> file_bytes(64);
  ASSERT_TRUE(machine.fs().Read("/shared", 128, file_bytes).ok());
  EXPECT_TRUE(
      std::equal(file_bytes.begin(), file_bytes.end(), original.begin() + 128));
}

TEST_F(IntegrationTest, SustainedChurnKeepsInvariantsOverHours) {
  // A soak: hours of simulated hot churn through the whole stack. The
  // cleaner, wear leveler, flush and checkpoint daemons all run; nothing
  // may leak, corrupt, or dead-end.
  MachineConfig config = PdaConfig();
  config.checkpoint_period = 5 * kMinute;
  MobileComputer machine(config);
  MemoryFileSystem& fs = machine.fs();
  ASSERT_TRUE(fs.Mkdir("/data").ok());
  for (int f = 0; f < 16; ++f) {
    ASSERT_TRUE(fs.Create("/data/f" + std::to_string(f)).ok());
  }
  Rng rng(2024);
  for (int round = 0; round < 2000; ++round) {
    const std::string path =
        "/data/f" + std::to_string(rng.NextBelow(16));
    const uint8_t tag = static_cast<uint8_t>(round);
    ASSERT_TRUE(fs.Write(path, rng.NextBelow(8) * 512,
                         Pattern(512, tag))
                    .ok())
        << "round " << round;
    machine.Idle(10 * kSecond);
  }
  ASSERT_TRUE(fs.Sync().ok());
  ASSERT_TRUE(machine.SettleEnergy());

  // ~5.5 hours of simulated time passed.
  EXPECT_GT(machine.clock().now(), 5 * kHour);
  // DRAM pages all accounted for (buffer empty after sync).
  EXPECT_EQ(fs.write_buffer().dirty_pages(), 0u);
  // Flash store consistency: every file still fully readable.
  std::vector<uint8_t> out(512);
  for (int f = 0; f < 16; ++f) {
    const std::string path = "/data/f" + std::to_string(f);
    Result<FileInfo> info = fs.Stat(path);
    ASSERT_TRUE(info.ok());
    if (info.value().size >= 512) {
      EXPECT_TRUE(fs.Read(path, 0, out).ok()) << path;
    }
  }
  // No sector wore out (PDA flash is lightly loaded relative to endurance).
  EXPECT_EQ(machine.flash().SummarizeWear().bad_sectors, 0u);
}

}  // namespace
}  // namespace ssmc
