#include "src/device/specs.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

TEST(SpecsTest, PaperFlashMatchesQuotedNumbers) {
  const FlashSpec f = GenericPaperFlash();
  // "read access times in the 100-nanosecond per byte range".
  EXPECT_EQ(f.read.per_byte_ns, 100);
  // "write times in the 10-microsecond per byte range".
  EXPECT_EQ(f.program.per_byte_ns, 10 * kMicrosecond);
  // "endure a guaranteed 100,000 erase cycles per area".
  EXPECT_EQ(f.endurance_cycles, 100000u);
  // "cost in the 50-dollar per megabyte range".
  EXPECT_DOUBLE_EQ(f.dollars_per_mib, 50.0);
}

TEST(SpecsTest, SunDiskHasSmallSectorsIntelLarge) {
  // Paper: minimum erase sector "in the 512-byte range" for the SunDisk
  // style; Intel cards erase large blocks.
  EXPECT_EQ(SunDiskFlash1993().erase_sector_bytes, 512u);
  EXPECT_GT(IntelFlash1993().erase_sector_bytes, 16 * kKiB);
}

TEST(SpecsTest, IntelReadsFasterSunDiskWritesFaster) {
  const FlashSpec intel = IntelFlash1993();
  const FlashSpec sundisk = SunDiskFlash1993();
  // "The Intel product ... has much faster read times but slower writes."
  EXPECT_LT(intel.read.LatencyFor(512), sundisk.read.LatencyFor(512));
  EXPECT_GT(intel.program.LatencyFor(512), sundisk.program.LatencyFor(512));
}

TEST(SpecsTest, RelativeSpeedOrdering) {
  // DRAM faster than flash reads, flash reads faster than disk access.
  const DramSpec dram = NecDram1993();
  const FlashSpec flash = IntelFlash1993();
  const DiskSpec disk = KittyHawkDisk1993();
  EXPECT_LT(dram.read.LatencyFor(512), flash.read.LatencyFor(512));
  EXPECT_LT(flash.read.LatencyFor(512),
            disk.avg_seek_ns + disk.rotation_ns / 2);
}

TEST(SpecsTest, FlashWritesTwoOrdersSlowerThanReads) {
  // Paper: "write access times are two orders of magnitude higher than read
  // access times."
  const FlashSpec f = GenericPaperFlash();
  const double ratio =
      static_cast<double>(f.program.LatencyFor(512)) /
      static_cast<double>(f.read.LatencyFor(512));
  EXPECT_GE(ratio, 50.0);
  EXPECT_LE(ratio, 500.0);
}

TEST(SpecsTest, NvmReadsNoSlowerThanWrites) {
  // PCM writes are the asymmetric side (the SET/RESET programming pulse,
  // arXiv 2004.05518 quotes 3-8x): reads must cost no more than writes at
  // any granularity the simulator uses.
  const NvmSpec nvm = PcmNvm();
  EXPECT_LE(nvm.read.LatencyFor(1), nvm.write.LatencyFor(1));
  EXPECT_LE(nvm.read.LatencyFor(512), nvm.write.LatencyFor(512));
}

TEST(SpecsTest, NvmSitsBetweenDramAndFlash) {
  // The Section 5 hierarchy ordering at block granularity: DRAM < NVM <
  // every flash product's read path (MigrantStore, arXiv 1504.04297, puts
  // PCM reads a small multiple of DRAM).
  const NvmSpec nvm = PcmNvm();
  EXPECT_LT(NecDram1993().read.LatencyFor(512), nvm.read.LatencyFor(512));
  EXPECT_LT(nvm.read.LatencyFor(512), GenericPaperFlash().read.LatencyFor(512));
  EXPECT_LT(nvm.read.LatencyFor(512), IntelFlash1993().read.LatencyFor(512));
  EXPECT_LT(nvm.read.LatencyFor(512), SunDiskFlash1993().read.LatencyFor(512));
  // Cost lands between DRAM and flash too.
  EXPECT_GT(nvm.dollars_per_mib, NecDram1993().dollars_per_mib);
  EXPECT_LT(nvm.dollars_per_mib, GenericPaperFlash().dollars_per_mib);
}

TEST(SpecsTest, NvmEnduranceAndStandbyBeatTheNeighbors) {
  const NvmSpec nvm = PcmNvm();
  // Per-line write endurance is orders of magnitude above flash sector
  // endurance (arXiv 1805.09127 quotes ~1e8).
  EXPECT_GE(nvm.endurance_writes, 1000 * GenericPaperFlash().endurance_cycles);
  // Non-volatile: no refresh draw, so standby sits far below DRAM's
  // self-refresh and at the flash interface level.
  EXPECT_LT(nvm.standby_mw_per_mib, NecDram1993().standby_mw_per_mib);
  EXPECT_DOUBLE_EQ(nvm.standby_mw_per_mib,
                   IntelFlash1993().standby_mw_per_mib);
}

TEST(SpecsTest, PowerOrderingFlashLowest) {
  // "flash memory has lower power consumption than either [DRAM or disk]".
  const double flash_mw = IntelFlash1993().active_mw_per_mib;
  const double dram_mw = NecDram1993().active_mw_per_mib;
  EXPECT_LT(flash_mw, dram_mw);
  // Disk power is per drive; compare a 20 MiB config.
  const double disk_mw_per_mib = KittyHawkDisk1993().active_mw / 20.0;
  EXPECT_LT(flash_mw, disk_mw_per_mib);
}

TEST(SpecsTest, DensityMatchesPaperQuotes) {
  // "The NEC DRAM already provides 15 megabytes per cubic inch compared to
  // the 19 megabytes per cubic inch provided by the KittyHawk."
  EXPECT_DOUBLE_EQ(NecDram1993().mib_per_cubic_inch, 15.0);
  EXPECT_DOUBLE_EQ(KittyHawkDisk1993().mib_per_cubic_inch, 19.0);
  // Flash densities "already within 20% of the density of the KittyHawk".
  EXPECT_GE(IntelFlash1993().mib_per_cubic_inch, 19.0 * 0.8 - 1e-9);
  // "only half that of the Fujitsu drive".
  EXPECT_LE(IntelFlash1993().mib_per_cubic_inch,
            FujitsuDisk1993().mib_per_cubic_inch * 0.6);
}

TEST(SpecsTest, DiskCapacityFromGeometry) {
  const DiskSpec k = KittyHawkDisk1993();
  EXPECT_NEAR(static_cast<double>(k.capacity_bytes()) / kMiB, 19.1, 1.0);
}

TEST(TrendsTest, ProjectionBaseYearIdentity) {
  EXPECT_DOUBLE_EQ(ProjectDollarsPerMib(50, 0.4, 1993), 50.0);
  EXPECT_DOUBLE_EQ(ProjectDensity(15, 0.4, 1993), 15.0);
}

TEST(TrendsTest, CostsShrinkDensityGrows) {
  EXPECT_LT(ProjectDollarsPerMib(50, 0.4, 1996), 50.0);
  EXPECT_GT(ProjectDensity(15, 0.4, 1996), 15.0);
}

TEST(TrendsTest, DramCatchesDiskEventually) {
  // DRAM $30/MB at 40%/yr vs disk $3/MB at 25%/yr.
  const int year = CostCrossoverYear(30, 0.4, 3, 0.25);
  EXPECT_GT(year, 1993);
  EXPECT_LT(year, 2020);
}

TEST(TrendsTest, SlowerImproverNeverCatchesUp) {
  EXPECT_EQ(CostCrossoverYear(30, 0.25, 3, 0.40), -1);
}

TEST(TrendsTest, AlreadyCheaperIsBaseYear) {
  EXPECT_EQ(CostCrossoverYear(2, 0.4, 3, 0.25), 1993);
}

TEST(TrendsTest, FlashDiskCrossoverNear1996) {
  // Paper: "for 40-Megabyte configurations, the cost per megabyte of flash
  // memory will match that of magnetic disks by the year 1996". With flash
  // at $50/MB improving 40%/yr vs small-disk at ~$2.5/MB improving 25%/yr
  // the parity point for the *total package* (a 40 MB disk has fixed
  // mechanism costs that flash lacks) lands mid-90s once the mechanism
  // premium (~$250/drive) is accounted. We check the raw-media crossover is
  // within the decade, and that adding the fixed mechanism cost pulls it to
  // the mid-90s; bench_e2_trends prints the full projection.
  const int raw = CostCrossoverYear(50, 0.4, 2.5, 0.25);
  EXPECT_GT(raw, 1993);
  EXPECT_LE(raw, 2025);
  // With mechanism premium amortized over 40 MB ($250/40 = $6.25/MB extra).
  const int with_premium = CostCrossoverYear(50, 0.4, 2.5 + 6.25, 0.25);
  EXPECT_LE(with_premium, 2013);
}

}  // namespace
}  // namespace ssmc
