// Contract tests run identically against both file systems: the paper's
// MemoryFileSystem and the conventional DiskFileSystem baseline. Any
// behavioral divergence between the two is a bug in one of them — the
// E3 comparison is only meaningful if they agree on semantics.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "src/device/disk_device.h"
#include "src/device/dram_device.h"
#include "src/device/flash_device.h"
#include "src/fs/disk_fs.h"
#include "src/fs/file_system.h"
#include "src/fs/log_fs.h"
#include "src/fs/memory_fs.h"
#include "src/ftl/flash_store.h"
#include "src/storage/storage_manager.h"

namespace ssmc {
namespace {

// Owns the devices and one file system under test.
class FsHarness {
 public:
  virtual ~FsHarness() = default;
  virtual FileSystem& fs() = 0;
  SimClock clock;
};

class MemoryFsHarness : public FsHarness {
 public:
  MemoryFsHarness() {
    DramSpec dram_spec;
    dram_spec.read = {80, 25};
    dram_spec.write = {80, 25};
    dram_spec.active_mw_per_mib = 150;
    dram_spec.standby_mw_per_mib = 1.5;
    dram_ = std::make_unique<DramDevice>(dram_spec, 2 * kMiB, clock);

    FlashSpec flash_spec;
    flash_spec.read = {150, 100};
    flash_spec.program = {2000, 10000};
    flash_spec.erase_sector_bytes = 4096;
    flash_spec.erase_ns = 100 * kMillisecond;
    flash_spec.endurance_cycles = 1000000;
    flash_ = std::make_unique<FlashDevice>(flash_spec, 8 * kMiB, 2, clock);

    store_ = std::make_unique<FlashStore>(*flash_, FlashStoreOptions{});
    manager_ = std::make_unique<StorageManager>(*dram_, *store_, 512);
    fs_ = std::make_unique<MemoryFileSystem>(*manager_, MemoryFsOptions{});
  }
  FileSystem& fs() override { return *fs_; }

 private:
  std::unique_ptr<DramDevice> dram_;
  std::unique_ptr<FlashDevice> flash_;
  std::unique_ptr<FlashStore> store_;
  std::unique_ptr<StorageManager> manager_;
  std::unique_ptr<MemoryFileSystem> fs_;
};

class DiskFsHarness : public FsHarness {
 public:
  DiskFsHarness() {
    DiskSpec spec;
    spec.sector_bytes = 512;
    spec.sectors_per_track = 32;
    spec.cylinders = 1024;  // 16 MiB.
    spec.min_seek_ns = 2 * kMillisecond;
    spec.avg_seek_ns = 12 * kMillisecond;
    spec.max_seek_ns = 25 * kMillisecond;
    spec.rotation_ns = 11 * kMillisecond;
    spec.transfer_mib_per_s = 1.0;
    spec.spin_up_ns = kSecond;
    spec.active_mw = 1500;
    spec.idle_mw = 700;
    spec.standby_mw = 15;
    disk_ = std::make_unique<DiskDevice>(spec, clock);
    disk_->set_spin_down_after(0);
    fs_ = std::make_unique<DiskFileSystem>(*disk_, DiskFsOptions{});
  }
  FileSystem& fs() override { return *fs_; }

 private:
  std::unique_ptr<DiskDevice> disk_;
  std::unique_ptr<DiskFileSystem> fs_;
};

class LogFsHarness : public FsHarness {
 public:
  LogFsHarness() {
    DiskSpec spec;
    spec.sector_bytes = 512;
    spec.sectors_per_track = 32;
    spec.cylinders = 1024;  // 16 MiB.
    spec.min_seek_ns = 2 * kMillisecond;
    spec.avg_seek_ns = 12 * kMillisecond;
    spec.max_seek_ns = 25 * kMillisecond;
    spec.rotation_ns = 11 * kMillisecond;
    spec.transfer_mib_per_s = 1.0;
    spec.spin_up_ns = kSecond;
    spec.active_mw = 1500;
    spec.idle_mw = 700;
    spec.standby_mw = 15;
    disk_ = std::make_unique<DiskDevice>(spec, clock);
    disk_->set_spin_down_after(0);
    fs_ = std::make_unique<LogFileSystem>(*disk_, LogFsOptions{});
  }
  FileSystem& fs() override { return *fs_; }

 private:
  std::unique_ptr<DiskDevice> disk_;
  std::unique_ptr<LogFileSystem> fs_;
};

enum class FsKind { kMemory, kDisk, kLog };

class FsContractTest : public ::testing::TestWithParam<FsKind> {
 protected:
  void SetUp() override {
    switch (GetParam()) {
      case FsKind::kMemory:
        harness_ = std::make_unique<MemoryFsHarness>();
        break;
      case FsKind::kDisk:
        harness_ = std::make_unique<DiskFsHarness>();
        break;
      case FsKind::kLog:
        harness_ = std::make_unique<LogFsHarness>();
        break;
    }
  }
  FileSystem& fs() { return harness_->fs(); }

  std::vector<uint8_t> Pattern(size_t n, uint8_t seed = 1) {
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<uint8_t>(seed + i * 13);
    }
    return v;
  }

  std::unique_ptr<FsHarness> harness_;
};

TEST_P(FsContractTest, CreateStatEmptyFile) {
  ASSERT_TRUE(fs().Create("/f").ok());
  Result<FileInfo> info = fs().Stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 0u);
  EXPECT_FALSE(info.value().is_directory);
}

TEST_P(FsContractTest, CreateDuplicateFails) {
  ASSERT_TRUE(fs().Create("/f").ok());
  EXPECT_EQ(fs().Create("/f").code(), ErrorCode::kAlreadyExists);
}

TEST_P(FsContractTest, CreateWithoutParentFails) {
  EXPECT_EQ(fs().Create("/nodir/f").code(), ErrorCode::kNotFound);
}

TEST_P(FsContractTest, StatMissingFails) {
  EXPECT_EQ(fs().Stat("/missing").status().code(), ErrorCode::kNotFound);
}

TEST_P(FsContractTest, WriteThenReadBack) {
  ASSERT_TRUE(fs().Create("/f").ok());
  const auto data = Pattern(1000);
  Result<uint64_t> wrote = fs().Write("/f", 0, data);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(wrote.value(), 1000u);
  std::vector<uint8_t> out(1000);
  Result<uint64_t> read = fs().Read("/f", 0, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), 1000u);
  EXPECT_EQ(out, data);
}

TEST_P(FsContractTest, WriteAtOffsetExtendsFile) {
  ASSERT_TRUE(fs().Create("/f").ok());
  const auto data = Pattern(100);
  ASSERT_TRUE(fs().Write("/f", 5000, data).ok());
  Result<FileInfo> info = fs().Stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 5100u);
  // The hole reads as zeros.
  std::vector<uint8_t> out(100);
  Result<uint64_t> read = fs().Read("/f", 1000, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, std::vector<uint8_t>(100, 0));
}

TEST_P(FsContractTest, ReadPastEofReturnsZeroBytes) {
  ASSERT_TRUE(fs().Create("/f").ok());
  ASSERT_TRUE(fs().Write("/f", 0, Pattern(10)).ok());
  std::vector<uint8_t> out(10);
  Result<uint64_t> read = fs().Read("/f", 100, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), 0u);
}

TEST_P(FsContractTest, ReadClampsAtEof) {
  ASSERT_TRUE(fs().Create("/f").ok());
  ASSERT_TRUE(fs().Write("/f", 0, Pattern(10)).ok());
  std::vector<uint8_t> out(100);
  Result<uint64_t> read = fs().Read("/f", 5, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), 5u);
}

TEST_P(FsContractTest, OverwriteMiddleOfFile) {
  ASSERT_TRUE(fs().Create("/f").ok());
  ASSERT_TRUE(fs().Write("/f", 0, std::vector<uint8_t>(3000, 0xAA)).ok());
  ASSERT_TRUE(fs().Write("/f", 1000, std::vector<uint8_t>(500, 0xBB)).ok());
  std::vector<uint8_t> out(3000);
  ASSERT_TRUE(fs().Read("/f", 0, out).ok());
  EXPECT_EQ(out[999], 0xAA);
  EXPECT_EQ(out[1000], 0xBB);
  EXPECT_EQ(out[1499], 0xBB);
  EXPECT_EQ(out[1500], 0xAA);
  Result<FileInfo> info = fs().Stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 3000u);  // Size unchanged.
}

TEST_P(FsContractTest, LargeFileMultiBlockRoundTrip) {
  ASSERT_TRUE(fs().Create("/big").ok());
  const auto data = Pattern(100 * 1000, 7);
  ASSERT_TRUE(fs().Write("/big", 0, data).ok());
  std::vector<uint8_t> out(data.size());
  Result<uint64_t> read = fs().Read("/big", 0, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), data.size());
  EXPECT_EQ(out, data);
}

TEST_P(FsContractTest, UnlinkRemovesFile) {
  ASSERT_TRUE(fs().Create("/f").ok());
  ASSERT_TRUE(fs().Write("/f", 0, Pattern(5000)).ok());
  ASSERT_TRUE(fs().Unlink("/f").ok());
  EXPECT_EQ(fs().Stat("/f").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs().Unlink("/f").code(), ErrorCode::kNotFound);
}

TEST_P(FsContractTest, UnlinkFreesSpaceForReuse) {
  // Create/delete cycles must not leak storage.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(fs().Create("/f").ok()) << "cycle " << i;
    ASSERT_TRUE(fs().Write("/f", 0, Pattern(50 * 1024)).ok()) << "cycle " << i;
    ASSERT_TRUE(fs().Unlink("/f").ok()) << "cycle " << i;
  }
}

TEST_P(FsContractTest, MkdirAndNestedFiles) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  ASSERT_TRUE(fs().Mkdir("/d/e").ok());
  ASSERT_TRUE(fs().Create("/d/e/f").ok());
  ASSERT_TRUE(fs().Write("/d/e/f", 0, Pattern(100)).ok());
  Result<FileInfo> info = fs().Stat("/d/e/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 100u);
  Result<FileInfo> dir_info = fs().Stat("/d");
  ASSERT_TRUE(dir_info.ok());
  EXPECT_TRUE(dir_info.value().is_directory);
}

TEST_P(FsContractTest, ListDirectory) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  ASSERT_TRUE(fs().Create("/d/a").ok());
  ASSERT_TRUE(fs().Create("/d/b").ok());
  ASSERT_TRUE(fs().Mkdir("/d/sub").ok());
  Result<std::vector<std::string>> names = fs().List("/d");
  ASSERT_TRUE(names.ok());
  std::vector<std::string> sorted = names.value();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::string>{"a", "b", "sub"}));
}

TEST_P(FsContractTest, RmdirOnlyWhenEmpty) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  ASSERT_TRUE(fs().Create("/d/f").ok());
  EXPECT_EQ(fs().Rmdir("/d").code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(fs().Unlink("/d/f").ok());
  EXPECT_TRUE(fs().Rmdir("/d").ok());
  EXPECT_EQ(fs().Stat("/d").status().code(), ErrorCode::kNotFound);
}

TEST_P(FsContractTest, UnlinkOfDirectoryFails) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  EXPECT_EQ(fs().Unlink("/d").code(), ErrorCode::kFailedPrecondition);
}

TEST_P(FsContractTest, RenameMovesFileWithData) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  ASSERT_TRUE(fs().Create("/f").ok());
  const auto data = Pattern(777);
  ASSERT_TRUE(fs().Write("/f", 0, data).ok());
  ASSERT_TRUE(fs().Rename("/f", "/d/g").ok());
  EXPECT_EQ(fs().Stat("/f").status().code(), ErrorCode::kNotFound);
  std::vector<uint8_t> out(777);
  Result<uint64_t> read = fs().Read("/d/g", 0, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, data);
}

TEST_P(FsContractTest, RenameDirectoryMovesSubtree) {
  ASSERT_TRUE(fs().Mkdir("/src").ok());
  ASSERT_TRUE(fs().Create("/src/f").ok());
  ASSERT_TRUE(fs().Write("/src/f", 0, Pattern(64)).ok());
  ASSERT_TRUE(fs().Mkdir("/dst").ok());
  ASSERT_TRUE(fs().Rename("/src", "/dst/moved").ok());
  EXPECT_EQ(fs().Stat("/src").status().code(), ErrorCode::kNotFound);
  Result<FileInfo> info = fs().Stat("/dst/moved/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 64u);
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(fs().Read("/dst/moved/f", 0, out).ok());
  EXPECT_EQ(out, Pattern(64));
}

TEST_P(FsContractTest, RenameOntoExistingFails) {
  ASSERT_TRUE(fs().Create("/a").ok());
  ASSERT_TRUE(fs().Create("/b").ok());
  EXPECT_EQ(fs().Rename("/a", "/b").code(), ErrorCode::kAlreadyExists);
}

TEST_P(FsContractTest, TruncateShrinks) {
  ASSERT_TRUE(fs().Create("/f").ok());
  ASSERT_TRUE(fs().Write("/f", 0, Pattern(5000)).ok());
  ASSERT_TRUE(fs().Truncate("/f", 1234).ok());
  Result<FileInfo> info = fs().Stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 1234u);
  std::vector<uint8_t> out(5000);
  Result<uint64_t> read = fs().Read("/f", 0, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), 1234u);
}

TEST_P(FsContractTest, TruncateExtendReadsZeros) {
  ASSERT_TRUE(fs().Create("/f").ok());
  ASSERT_TRUE(fs().Write("/f", 0, Pattern(10)).ok());
  ASSERT_TRUE(fs().Truncate("/f", 1000).ok());
  std::vector<uint8_t> out(990);
  Result<uint64_t> read = fs().Read("/f", 10, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), 990u);
  EXPECT_EQ(out, std::vector<uint8_t>(990, 0));
}

TEST_P(FsContractTest, TruncateShrinkThenExtendReadsZeros) {
  // Regression (found by the model-based property suite): shrinking must
  // zero the cut-off tail of the final partial block, or a later extension
  // resurrects stale bytes.
  ASSERT_TRUE(fs().Create("/f").ok());
  ASSERT_TRUE(fs().Write("/f", 0, std::vector<uint8_t>(3000, 0xAA)).ok());
  ASSERT_TRUE(fs().Truncate("/f", 1000).ok());
  ASSERT_TRUE(fs().Truncate("/f", 3000).ok());
  std::vector<uint8_t> out(2000);
  Result<uint64_t> read = fs().Read("/f", 1000, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, std::vector<uint8_t>(2000, 0));
}

TEST_P(FsContractTest, ReusedStorageNeverLeaksOldContents) {
  // Regression (found by the model-based property suite): blocks freed from
  // one file and reallocated to another must read as zeros in the holes of
  // the new owner, not as the previous file's data.
  ASSERT_TRUE(fs().Create("/secret").ok());
  ASSERT_TRUE(fs().Write("/secret", 0, std::vector<uint8_t>(64 * 1024, 0x5E))
                  .ok());
  ASSERT_TRUE(fs().Sync().ok());
  ASSERT_TRUE(fs().Unlink("/secret").ok());
  // New file: write a few bytes deep into a block, leaving a hole before
  // them; the hole may land on recycled storage.
  ASSERT_TRUE(fs().Create("/fresh").ok());
  ASSERT_TRUE(fs().Write("/fresh", 5000, Pattern(10)).ok());
  std::vector<uint8_t> out(5000);
  Result<uint64_t> read = fs().Read("/fresh", 0, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, std::vector<uint8_t>(5000, 0));
}

TEST_P(FsContractTest, DataSurvivesSync) {
  ASSERT_TRUE(fs().Create("/f").ok());
  const auto data = Pattern(3000, 9);
  ASSERT_TRUE(fs().Write("/f", 0, data).ok());
  ASSERT_TRUE(fs().Sync().ok());
  std::vector<uint8_t> out(3000);
  Result<uint64_t> read = fs().Read("/f", 0, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, data);
}

TEST_P(FsContractTest, ManyFilesInOneDirectory) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  for (int i = 0; i < 50; ++i) {
    const std::string path = "/d/file" + std::to_string(i);
    ASSERT_TRUE(fs().Create(path).ok()) << path;
    ASSERT_TRUE(
        fs().Write(path, 0, Pattern(100, static_cast<uint8_t>(i))).ok());
  }
  Result<std::vector<std::string>> names = fs().List("/d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value().size(), 50u);
  // Spot check contents.
  std::vector<uint8_t> out(100);
  ASSERT_TRUE(fs().Read("/d/file37", 0, out).ok());
  EXPECT_EQ(out, Pattern(100, 37));
}

TEST_P(FsContractTest, InvalidPathsRejected) {
  EXPECT_FALSE(fs().Create("relative").ok());
  EXPECT_FALSE(fs().Create("/a/").ok());
  EXPECT_FALSE(fs().Stat("").ok());
}

INSTANTIATE_TEST_SUITE_P(AllFileSystems, FsContractTest,
                         ::testing::Values(FsKind::kMemory, FsKind::kDisk,
                                           FsKind::kLog),
                         [](const ::testing::TestParamInfo<FsKind>& info) {
                           switch (info.param) {
                             case FsKind::kMemory:
                               return "MemoryFs";
                             case FsKind::kDisk:
                               return "DiskFs";
                             case FsKind::kLog:
                               return "LogFs";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace ssmc
