// IoScheduler unit tests, including the differential oracle the refactor's
// behavior-preservation claim rests on: under the default FIFO policy, every
// dispatch must reproduce the historical per-bank busy-until charge-latency
// model (start = max(now, busy_until)) bit-for-bit, for any interleaving of
// blocking and background requests across channels.

#include "src/sim/io_scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/device/flash_device.h"
#include "src/sim/clock.h"
#include "src/support/rng.h"

namespace ssmc {
namespace {

IoRequest MakeReq(IoOp op, IoPriority priority, bool blocking) {
  IoRequest req;
  req.op = op;
  req.priority = priority;
  req.blocking = blocking;
  return req;
}

// The pre-pipeline charge-latency model, verbatim: one busy-until timestamp
// per bank, start = max(now, busy_until), blocking ops advance the clock to
// completion.
class ChargeLatencyOracle {
 public:
  explicit ChargeLatencyOracle(int channels) : busy_until_(channels, 0) {}

  struct Op {
    SimTime start;
    SimTime complete;
    Duration wait;
  };

  Op Occupy(SimTime now, int channel, Duration op_ns) {
    SimTime& busy = busy_until_[static_cast<size_t>(channel)];
    const SimTime start = std::max(now, busy);
    busy = start + op_ns;
    return Op{start, busy, start - now};
  }

  SimTime busy_until(int channel) const {
    return busy_until_[static_cast<size_t>(channel)];
  }

 private:
  std::vector<SimTime> busy_until_;
};

// --- FIFO differential oracle ---------------------------------------------

TEST(IoSchedulerOracleTest, FifoDispatchMatchesChargeLatencyModel) {
  constexpr int kChannels = 4;
  SimClock clock;
  IoScheduler sched(clock, kChannels, IoSchedPolicy::kFifo);
  ChargeLatencyOracle oracle(kChannels);
  Rng rng(12345);

  for (int i = 0; i < 20000; ++i) {
    // Random idle gaps, including none (back-to-back submissions).
    if (rng.NextBelow(3) == 0) {
      clock.Advance(static_cast<Duration>(rng.NextBelow(5000)));
    }
    const int channel = static_cast<int>(rng.NextBelow(kChannels));
    const Duration service = static_cast<Duration>(1 + rng.NextBelow(10000));
    const bool blocking = rng.NextBelow(2) == 0;
    const IoPriority priority =
        static_cast<IoPriority>(rng.NextBelow(kNumIoPriorities));

    const ChargeLatencyOracle::Op expected =
        oracle.Occupy(clock.now(), channel, service);
    const IoScheduler::Dispatch got = sched.Submit(
        channel, MakeReq(IoOp::kProgram, priority, blocking), service);

    ASSERT_EQ(got.start, expected.start) << "op " << i;
    ASSERT_EQ(got.complete, expected.complete) << "op " << i;
    ASSERT_EQ(got.wait, expected.wait) << "op " << i;
    ASSERT_EQ(got.service, service) << "op " << i;
    if (blocking) {
      clock.AdvanceTo(got.complete);
    }
    for (int c = 0; c < kChannels; ++c) {
      ASSERT_EQ(sched.ChannelBusyUntil(c), oracle.busy_until(c))
          << "op " << i << " channel " << c;
    }
  }
}

// The same differential at the device layer: a FlashDevice must charge
// exactly the latencies and clock advances of the historical model for any
// mix of reads, programs, and erases across banks and issue modes.
TEST(IoSchedulerOracleTest, FlashDeviceFifoMatchesChargeLatencyModel) {
  FlashSpec spec;
  spec.name = "oracle flash";
  spec.read = {100, 10};
  spec.program = {1000, 1000};
  spec.erase_sector_bytes = 1024;
  spec.erase_ns = 1 * kMillisecond;
  spec.endurance_cycles = 0;  // No wear-out: every op succeeds.
  constexpr int kBanks = 4;
  SimClock clock;
  FlashDevice flash(spec, 64 * 1024, kBanks, clock);
  ChargeLatencyOracle oracle(kBanks);
  SimTime oracle_now = 0;
  Rng rng(999);

  std::vector<uint8_t> buf(64, 0xAB);
  std::vector<uint8_t> out(64);
  for (int i = 0; i < 4000; ++i) {
    if (rng.NextBelow(4) == 0) {
      const Duration gap = static_cast<Duration>(rng.NextBelow(20000));
      clock.Advance(gap);
      oracle_now += gap;
    }
    const uint64_t sector = rng.NextBelow(flash.num_sectors());
    const int bank = flash.BankOfSector(sector);
    const bool blocking = rng.NextBelow(2) == 0;
    const IoIssue issue{blocking ? IoPriority::kForeground
                                 : IoPriority::kCleaner,
                        blocking};

    Duration got = 0;
    Duration op_ns = 0;
    switch (rng.NextBelow(3)) {
      case 0: {
        op_ns = spec.read.LatencyFor(out.size());
        got = flash.Read(sector * 1024, out, issue).value();
        break;
      }
      case 1: {
        // Erase first so the program always hits erased bytes; account the
        // erase in the oracle too.
        const ChargeLatencyOracle::Op e =
            oracle.Occupy(oracle_now, bank, spec.erase_ns);
        const Duration erased = flash.EraseSector(sector, issue).value();
        ASSERT_EQ(erased, e.wait + spec.erase_ns);
        if (blocking) {
          oracle_now = e.complete;
        }
        op_ns = spec.program.LatencyFor(buf.size());
        got = flash.Program(sector * 1024, buf, issue).value();
        break;
      }
      default: {
        op_ns = spec.erase_ns;
        got = flash.EraseSector(sector, issue).value();
        break;
      }
    }
    const ChargeLatencyOracle::Op expected =
        oracle.Occupy(oracle_now, bank, op_ns);
    if (blocking) {
      oracle_now = expected.complete;
    }
    ASSERT_EQ(got, expected.wait + op_ns) << "op " << i;
    ASSERT_EQ(clock.now(), oracle_now) << "op " << i;
    for (int b = 0; b < kBanks; ++b) {
      ASSERT_EQ(flash.BankBusyUntil(b), oracle.busy_until(b)) << "op " << i;
    }
  }
}

// --- Basic pipeline mechanics ---------------------------------------------

TEST(IoSchedulerTest, IdleChannelServesImmediately) {
  SimClock clock;
  IoScheduler sched(clock, 1);
  clock.Advance(500);
  const auto d = sched.Submit(
      0, MakeReq(IoOp::kRead, IoPriority::kForeground, true), 100);
  EXPECT_EQ(d.start, 500);
  EXPECT_EQ(d.complete, 600);
  EXPECT_EQ(d.wait, 0);
  EXPECT_EQ(sched.ChannelBusyUntil(0), 600);
}

TEST(IoSchedulerTest, BusyUntilIsMonotoneAcrossIdlePeriods) {
  SimClock clock;
  IoScheduler sched(clock, 1);
  sched.Submit(0, MakeReq(IoOp::kErase, IoPriority::kCleaner, false), 1000);
  EXPECT_EQ(sched.ChannelBusyUntil(0), 1000);
  clock.Advance(5000);
  sched.Poll();
  // Like the busy-until timestamp it replaces, the value does not reset when
  // the channel goes idle.
  EXPECT_EQ(sched.ChannelBusyUntil(0), 1000);
}

TEST(IoSchedulerTest, OnCompleteFiresWithFinalTimestamps) {
  SimClock clock;
  IoScheduler sched(clock, 1);
  std::vector<std::pair<SimTime, SimTime>> completed;
  IoRequest req = MakeReq(IoOp::kProgram, IoPriority::kFlush, false);
  req.on_complete = [&](const IoRequest& r) {
    completed.emplace_back(r.start_time, r.complete_time);
  };
  sched.Submit(0, std::move(req), 700);
  EXPECT_TRUE(completed.empty());
  clock.Advance(699);
  sched.Poll();
  EXPECT_TRUE(completed.empty());  // Not done yet.
  clock.Advance(1);
  sched.Poll();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].first, 0);
  EXPECT_EQ(completed[0].second, 700);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(IoSchedulerTest, LaterSubmitRetiresCompletedFront) {
  SimClock clock;
  IoScheduler sched(clock, 1);
  int completions = 0;
  IoRequest req = MakeReq(IoOp::kProgram, IoPriority::kFlush, false);
  req.on_complete = [&](const IoRequest&) { ++completions; };
  sched.Submit(0, std::move(req), 100);
  clock.Advance(100);
  // The pipeline is pumped by traffic: the next submit retires the front.
  sched.Submit(0, MakeReq(IoOp::kRead, IoPriority::kForeground, true), 10);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(sched.PendingOn(0), 1u);
}

// --- Priority policy ------------------------------------------------------

TEST(IoSchedulerTest, PriorityReadJumpsQueuedCleanerWork) {
  SimClock clock;
  IoScheduler sched(clock, 1, IoSchedPolicy::kPriority);
  // In service now: a cleaner erase. Queued behind it: another one.
  const auto inflight = sched.Submit(
      0, MakeReq(IoOp::kErase, IoPriority::kCleaner, false), 1000000);
  const auto queued = sched.Submit(
      0, MakeReq(IoOp::kErase, IoPriority::kCleaner, false), 1000000);
  EXPECT_EQ(inflight.start, 0);
  EXPECT_EQ(queued.start, 1000000);

  clock.Advance(10);  // The first erase is now on the medium.
  const auto read = sched.Submit(
      0, MakeReq(IoOp::kRead, IoPriority::kForeground, true), 500);
  // The read waits only for the op on the medium, not the queued erase.
  EXPECT_EQ(read.start, 1000000);
  EXPECT_EQ(read.complete, 1000500);
  // And the queued erase was pushed back behind the read.
  EXPECT_EQ(sched.ChannelBusyUntil(0), 1000500 + 1000000);
}

TEST(IoSchedulerTest, PriorityInFlightOpIsNeverPreempted) {
  SimClock clock;
  IoScheduler sched(clock, 1, IoSchedPolicy::kPriority);
  sched.Submit(0, MakeReq(IoOp::kErase, IoPriority::kCleaner, false), 50000);
  clock.Advance(1);
  const auto read = sched.Submit(
      0, MakeReq(IoOp::kRead, IoPriority::kForeground, true), 100);
  EXPECT_EQ(read.start, 50000);  // Waits out the erase already in service.
  EXPECT_EQ(read.wait, 49999);
}

TEST(IoSchedulerTest, PriorityEqualClassKeepsSubmissionOrder) {
  SimClock clock;
  IoScheduler sched(clock, 1, IoSchedPolicy::kPriority);
  sched.Submit(0, MakeReq(IoOp::kProgram, IoPriority::kFlush, false), 100);
  const auto second = sched.Submit(
      0, MakeReq(IoOp::kProgram, IoPriority::kFlush, false), 100);
  const auto third = sched.Submit(
      0, MakeReq(IoOp::kProgram, IoPriority::kFlush, false), 100);
  EXPECT_EQ(second.start, 100);
  EXPECT_EQ(third.start, 200);
}

TEST(IoSchedulerTest, PriorityFlushOutranksCleanerButNotForeground) {
  SimClock clock;
  IoScheduler sched(clock, 1, IoSchedPolicy::kPriority);
  sched.Submit(0, MakeReq(IoOp::kErase, IoPriority::kCleaner, false), 1000);
  const auto cleaner2 = sched.Submit(
      0, MakeReq(IoOp::kErase, IoPriority::kCleaner, false), 1000);
  EXPECT_EQ(cleaner2.start, 1000);
  clock.Advance(1);
  const auto flush = sched.Submit(
      0, MakeReq(IoOp::kProgram, IoPriority::kFlush, false), 200);
  EXPECT_EQ(flush.start, 1000);  // Ahead of the queued cleaner erase.
  clock.Advance(1);
  const auto fg = sched.Submit(
      0, MakeReq(IoOp::kRead, IoPriority::kForeground, true), 10);
  EXPECT_EQ(fg.start, 1000);  // Ahead of the queued flush, too.
}

TEST(IoSchedulerTest, ShiftObserverReportsPushback) {
  SimClock clock;
  IoScheduler sched(clock, 1, IoSchedPolicy::kPriority);
  Duration shifted = 0;
  IoPriority shifted_class = IoPriority::kForeground;
  sched.set_shift_observer([&](const IoRequest& r, Duration delta) {
    shifted += delta;
    shifted_class = r.priority;
  });
  sched.Submit(0, MakeReq(IoOp::kErase, IoPriority::kCleaner, false), 1000);
  sched.Submit(0, MakeReq(IoOp::kErase, IoPriority::kCleaner, false), 1000);
  clock.Advance(1);
  sched.Submit(0, MakeReq(IoOp::kRead, IoPriority::kForeground, true), 300);
  EXPECT_EQ(shifted, 300);
  EXPECT_EQ(shifted_class, IoPriority::kCleaner);
}

// Final queue waits reported via on_complete must equal the dispatch-time
// wait plus every observed shift — the attribution invariant FlashDevice's
// per-class counters rely on.
TEST(IoSchedulerTest, ShiftsReconcileWithFinalTimestamps) {
  SimClock clock;
  IoScheduler sched(clock, 2, IoSchedPolicy::kPriority);
  Rng rng(777);
  Duration dispatch_waits = 0;
  Duration observed_shifts = 0;
  Duration final_waits = 0;
  sched.set_shift_observer(
      [&](const IoRequest&, Duration delta) { observed_shifts += delta; });

  for (int i = 0; i < 5000; ++i) {
    if (rng.NextBelow(3) == 0) {
      clock.Advance(static_cast<Duration>(rng.NextBelow(2000)));
    }
    const int channel = static_cast<int>(rng.NextBelow(2));
    const IoPriority priority =
        static_cast<IoPriority>(rng.NextBelow(kNumIoPriorities));
    const bool blocking = priority == IoPriority::kForeground;
    IoRequest req = MakeReq(IoOp::kProgram, priority, blocking);
    req.on_complete =
        [&](const IoRequest& r) { final_waits += r.queue_wait(); };
    const auto d = sched.Submit(channel, std::move(req),
                                static_cast<Duration>(1 + rng.NextBelow(500)));
    dispatch_waits += d.wait;
    if (blocking) {
      clock.AdvanceTo(d.complete);
    }
  }
  clock.Advance(1000000);
  sched.Poll();  // Drain everything.
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_EQ(final_waits, dispatch_waits + observed_shifts);
}

// --- Device-level priority behavior ---------------------------------------

TEST(IoSchedulerTest, FlashDevicePriorityModeCutsReadTailBehindCleaning) {
  FlashSpec spec;
  spec.name = "tail flash";
  spec.read = {100, 10};
  spec.program = {1000, 1000};
  spec.erase_sector_bytes = 1024;
  spec.erase_ns = 10 * kMillisecond;
  spec.endurance_cycles = 0;

  auto read_latency_with = [&](IoSchedPolicy policy) {
    SimClock clock;
    FlashDevice flash(spec, 16 * 1024, 1, clock);
    flash.set_sched_policy(policy);
    // A burst of background cleaner erases piles up on the bank.
    for (uint64_t s = 0; s < 4; ++s) {
      EXPECT_TRUE(flash.EraseSector(s, kCleanerIo).ok());
    }
    clock.Advance(1);  // First erase is on the medium.
    std::vector<uint8_t> out(64);
    return flash.Read(8 * 1024, out).value();
  };

  const Duration fifo = read_latency_with(IoSchedPolicy::kFifo);
  const Duration prio = read_latency_with(IoSchedPolicy::kPriority);
  // FIFO waits out all four erases; priority waits only for the in-flight
  // one.
  EXPECT_GE(fifo, 4 * spec.erase_ns - 1);
  EXPECT_LT(prio, 2 * spec.erase_ns);
}

TEST(IoSchedulerTest, FlashDeviceAttributesWaitAndServiceByClass) {
  FlashSpec spec;
  spec.name = "attr flash";
  spec.read = {100, 10};
  spec.program = {1000, 1000};
  spec.erase_sector_bytes = 1024;
  spec.erase_ns = 1 * kMillisecond;
  spec.endurance_cycles = 0;
  SimClock clock;
  FlashDevice flash(spec, 16 * 1024, 1, clock);

  ASSERT_TRUE(flash.EraseSector(0, kCleanerIo).ok());
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(flash.Read(1024, out).ok());  // Foreground, stalls on erase.

  const auto& fg = flash.stats().by_class[static_cast<int>(
      IoPriority::kForeground)];
  const auto& cleaner =
      flash.stats().by_class[static_cast<int>(IoPriority::kCleaner)];
  EXPECT_EQ(fg.requests.value(), 1u);
  EXPECT_EQ(fg.queue_wait_ns.value(),
            static_cast<uint64_t>(spec.erase_ns));
  EXPECT_EQ(fg.service_ns.value(),
            static_cast<uint64_t>(spec.read.LatencyFor(out.size())));
  EXPECT_EQ(cleaner.requests.value(), 1u);
  EXPECT_EQ(cleaner.queue_wait_ns.value(), 0u);
  EXPECT_EQ(cleaner.service_ns.value(),
            static_cast<uint64_t>(spec.erase_ns));
  // read_stall_ns remains the blocking-read slice, matching the historical
  // counter.
  EXPECT_EQ(flash.stats().read_stall_ns.value(),
            static_cast<uint64_t>(spec.erase_ns));
}

// --- Weighted-fair policy -------------------------------------------------

IoRequest MakeTenantReq(TenantId tenant, IoPriority priority, bool blocking,
                        uint64_t bytes = 0) {
  IoRequest req = MakeReq(IoOp::kRead, priority, blocking);
  req.tenant = tenant;
  req.bytes = bytes;
  return req;
}

// A lone tenant's virtual tags are monotone, so kWeightedFair placement must
// reproduce the FIFO charge-latency model bit-for-bit for any single-tenant
// interleaving — the degenerate case the default-tenant bit-identity claim
// rests on.
TEST(IoSchedulerWfqTest, SingleTenantMatchesFifoOracle) {
  constexpr int kChannels = 4;
  SimClock clock;
  IoScheduler sched(clock, kChannels, IoSchedPolicy::kWeightedFair);
  ChargeLatencyOracle oracle(kChannels);
  Rng rng(20240);

  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBelow(3) == 0) {
      clock.Advance(static_cast<Duration>(rng.NextBelow(5000)));
    }
    const int channel = static_cast<int>(rng.NextBelow(kChannels));
    const Duration service = static_cast<Duration>(1 + rng.NextBelow(10000));
    const bool blocking = rng.NextBelow(2) == 0;

    const ChargeLatencyOracle::Op expected =
        oracle.Occupy(clock.now(), channel, service);
    const IoScheduler::Dispatch got = sched.Submit(
        channel, MakeTenantReq(kDefaultTenant, IoPriority::kForeground,
                               blocking),
        service);
    ASSERT_EQ(got.start, expected.start) << "op " << i;
    ASSERT_EQ(got.complete, expected.complete) << "op " << i;
    if (blocking) {
      clock.AdvanceTo(got.complete);
    }
    for (int c = 0; c < kChannels; ++c) {
      ASSERT_EQ(sched.ChannelBusyUntil(c), oracle.busy_until(c))
          << "op " << i << " channel " << c;
    }
  }
}

// The multi-tenant degenerate case: equal weights, per-channel round-robin
// submission, equal service per channel. Tag order then equals arrival
// order (each round visits tenants whose finish tags were assigned in the
// same order last round), so placement must again match FIFO exactly.
TEST(IoSchedulerWfqTest, EqualWeightRoundRobinMatchesFifoOracle) {
  constexpr int kChannels = 3;
  constexpr int kTenants = 3;
  SimClock clock;
  IoScheduler sched(clock, kChannels, IoSchedPolicy::kWeightedFair);
  for (TenantId t = 0; t < kTenants; ++t) {
    sched.set_tenant_weight(t, 1);
  }
  ChargeLatencyOracle oracle(kChannels);
  Rng rng(4242);
  int next_tenant[kChannels] = {};

  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBelow(3) == 0) {
      clock.Advance(static_cast<Duration>(rng.NextBelow(8000)));
    }
    const int channel = static_cast<int>(rng.NextBelow(kChannels));
    const TenantId tenant =
        static_cast<TenantId>(next_tenant[channel]++ % kTenants);
    const Duration service = 500 + 100 * channel;  // Constant per channel.
    const bool blocking = rng.NextBelow(2) == 0;

    const ChargeLatencyOracle::Op expected =
        oracle.Occupy(clock.now(), channel, service);
    const IoScheduler::Dispatch got = sched.Submit(
        channel, MakeTenantReq(tenant, IoPriority::kForeground, blocking),
        service);
    ASSERT_EQ(got.start, expected.start) << "op " << i;
    ASSERT_EQ(got.complete, expected.complete) << "op " << i;
    if (blocking) {
      clock.AdvanceTo(got.complete);
    }
  }
}

// Two backlogged tenants with a 9:1 weight split must share channel time
// 9:1: among the first 100 service slots, the heavy tenant gets ~90.
TEST(IoSchedulerWfqTest, WeightedShareTracksWeights) {
  SimClock clock;
  IoScheduler sched(clock, 1, IoSchedPolicy::kWeightedFair);
  sched.set_tenant_weight(1, 9);
  sched.set_tenant_weight(2, 1);
  constexpr Duration kService = 1000;
  constexpr int kPerTenant = 200;

  std::vector<std::pair<SimTime, TenantId>> starts;
  for (int i = 0; i < kPerTenant; ++i) {
    for (TenantId t : {TenantId{1}, TenantId{2}}) {
      IoRequest req = MakeTenantReq(t, IoPriority::kForeground, false);
      req.on_complete = [&starts](const IoRequest& r) {
        starts.emplace_back(r.start_time, r.tenant);
      };
      sched.Submit(0, std::move(req), kService);
    }
  }
  // Work conservation: the channel never idles while backlogged, whatever
  // the interleaving, so total busy time is unchanged by the weights.
  ASSERT_EQ(sched.ChannelBusyUntil(0), 2 * kPerTenant * kService);
  clock.AdvanceTo(sched.ChannelBusyUntil(0));
  sched.Poll();
  ASSERT_EQ(starts.size(), 2u * kPerTenant);

  std::sort(starts.begin(), starts.end());
  int heavy_in_first_100 = 0;
  for (int i = 0; i < 100; ++i) {
    heavy_in_first_100 += starts[static_cast<size_t>(i)].second == 1 ? 1 : 0;
  }
  EXPECT_GE(heavy_in_first_100, 88);
  EXPECT_LE(heavy_in_first_100, 92);
}

// The op on the medium is never preempted, even by a tenant whose virtual
// tag sorts ahead of everything queued.
TEST(IoSchedulerWfqTest, InFlightOpIsNeverPreempted) {
  SimClock clock;
  IoScheduler sched(clock, 1, IoSchedPolicy::kWeightedFair);
  sched.set_tenant_weight(1, 100);
  sched.Submit(0, MakeTenantReq(2, IoPriority::kCleaner, false), 50000);
  clock.Advance(1);  // The cleaner op is on the medium.
  const auto read =
      sched.Submit(0, MakeTenantReq(1, IoPriority::kForeground, true), 100);
  EXPECT_EQ(read.start, 50000);
  EXPECT_EQ(read.wait, 49999);
}

// A backlogged aggressor must not starve a light tenant: the victim's
// queued read overtakes the aggressor's queued backlog (but not the op in
// service) under equal weights.
TEST(IoSchedulerWfqTest, LightTenantOvertakesBackloggedAggressor) {
  SimClock clock;
  IoScheduler sched(clock, 1, IoSchedPolicy::kWeightedFair);
  for (int i = 0; i < 8; ++i) {
    sched.Submit(0, MakeTenantReq(1, IoPriority::kFlush, false), 10000);
  }
  clock.Advance(1);  // First aggressor op is on the medium.
  const auto victim =
      sched.Submit(0, MakeTenantReq(2, IoPriority::kForeground, true), 100);
  // Waits out the in-service op only, not the 7 queued ones.
  EXPECT_EQ(victim.start, 10000);
  EXPECT_EQ(victim.complete, 10100);
}

// --- Token-bucket policy --------------------------------------------------

// With no rate configured, kTokenBucket placement is plain FIFO: the
// default-config bit-identity claim for this policy.
TEST(IoSchedulerTokenTest, UnlimitedTenantsMatchFifoOracle) {
  constexpr int kChannels = 2;
  SimClock clock;
  IoScheduler sched(clock, kChannels, IoSchedPolicy::kTokenBucket);
  ChargeLatencyOracle oracle(kChannels);
  Rng rng(555);
  for (int i = 0; i < 5000; ++i) {
    if (rng.NextBelow(3) == 0) {
      clock.Advance(static_cast<Duration>(rng.NextBelow(5000)));
    }
    const int channel = static_cast<int>(rng.NextBelow(kChannels));
    const Duration service = static_cast<Duration>(1 + rng.NextBelow(4000));
    const bool blocking = rng.NextBelow(2) == 0;
    const ChargeLatencyOracle::Op expected =
        oracle.Occupy(clock.now(), channel, service);
    const auto got = sched.Submit(
        channel,
        MakeTenantReq(static_cast<TenantId>(rng.NextBelow(3)),
                      IoPriority::kForeground, blocking,
                      1 + rng.NextBelow(4096)),
        service);
    ASSERT_EQ(got.start, expected.start) << "op " << i;
    ASSERT_EQ(got.complete, expected.complete) << "op " << i;
    if (blocking) {
      clock.AdvanceTo(got.complete);
    }
  }
}

// The admission invariant: however requests arrive, a rate-limited tenant's
// cumulative admitted bytes by any start time t never exceed
// burst + rate * t. Randomized over sizes, gaps, and competing traffic.
TEST(IoSchedulerTokenTest, NeverAdmitsAboveConfiguredRate) {
  constexpr uint64_t kRate = 1000000;   // 1 MB/s.
  constexpr uint64_t kBurst = 16384;
  SimClock clock;
  IoScheduler sched(clock, 1, IoSchedPolicy::kTokenBucket);
  sched.set_tenant_rate(1, kRate, kBurst);
  Rng rng(31337);

  std::vector<std::pair<SimTime, uint64_t>> admissions;  // (start, bytes).
  for (int i = 0; i < 4000; ++i) {
    if (rng.NextBelow(2) == 0) {
      clock.Advance(static_cast<Duration>(rng.NextBelow(2 * kMillisecond)));
    }
    const bool limited = rng.NextBelow(3) != 0;
    const TenantId tenant = limited ? 1 : 0;
    const uint64_t bytes = 1 + rng.NextBelow(8192);
    const auto d = sched.Submit(
        0, MakeTenantReq(tenant, IoPriority::kForeground, false, bytes),
        static_cast<Duration>(1 + rng.NextBelow(2000)));
    if (limited) {
      ASSERT_GE(d.start, clock.now());
      admissions.emplace_back(d.start, bytes);
    }
  }
  std::sort(admissions.begin(), admissions.end());
  // Token accounting is exact integer arithmetic in byte-nanoseconds:
  // consumed <= initial burst + rate * elapsed, always.
  unsigned __int128 consumed = 0;
  for (const auto& [start, bytes] : admissions) {
    consumed += static_cast<unsigned __int128>(bytes) * kSecond;
    const unsigned __int128 budget =
        static_cast<unsigned __int128>(kBurst) * kSecond +
        static_cast<unsigned __int128>(kRate) * static_cast<uint64_t>(start);
    ASSERT_TRUE(consumed <= budget) << "admission at t=" << start;
  }
  // And the bucket actually throttled: the workload offered far more than
  // the rate allows, so some request must have been delayed.
  bool any_delayed = false;
  for (size_t i = 1; i < admissions.size(); ++i) {
    any_delayed |= admissions[i].first > admissions[i - 1].first;
  }
  EXPECT_TRUE(any_delayed);
}

// --- Device-level tenant behavior -----------------------------------------

// Equal-weight WFQ must be indistinguishable from FIFO at the device layer
// for a single tenant — including when reads fault: the injected-fault path
// returns INTERNAL before any bank time is reserved, identically under both
// policies.
TEST(IoSchedulerWfqTest, FlashDeviceSingleTenantMatchesFifoUnderReadFaults) {
  FlashSpec spec;
  spec.name = "wfq-oracle flash";
  spec.read = {100, 10};
  spec.program = {1000, 1000};
  spec.erase_sector_bytes = 1024;
  spec.erase_ns = 1 * kMillisecond;
  spec.endurance_cycles = 0;
  constexpr int kBanks = 2;

  SimClock fifo_clock;
  SimClock wfq_clock;
  FlashDevice fifo(spec, 16 * 1024, kBanks, fifo_clock);
  FlashDevice wfq(spec, 16 * 1024, kBanks, wfq_clock);
  wfq.set_sched_policy(IoSchedPolicy::kWeightedFair);

  Rng rng(90210);
  std::vector<uint8_t> out_a(64);
  std::vector<uint8_t> out_b(64);
  for (int i = 0; i < 2000; ++i) {
    if (rng.NextBelow(4) == 0) {
      const Duration gap = static_cast<Duration>(rng.NextBelow(20000));
      fifo_clock.Advance(gap);
      wfq_clock.Advance(gap);
    }
    const uint64_t sector = rng.NextBelow(fifo.num_sectors());
    const bool blocking = rng.NextBelow(2) == 0;
    const IoIssue issue{
        blocking ? IoPriority::kForeground : IoPriority::kCleaner, blocking};
    switch (rng.NextBelow(3)) {
      case 0: {
        if (rng.NextBelow(4) == 0) {
          // Transient fault: both devices must fail identically, with no
          // timing side effects.
          fifo.InjectReadFaults(sector, 1);
          wfq.InjectReadFaults(sector, 1);
          const auto rf = fifo.Read(sector * 1024, out_a, issue);
          const auto rw = wfq.Read(sector * 1024, out_b, issue);
          ASSERT_FALSE(rf.ok());
          ASSERT_FALSE(rw.ok());
          ASSERT_EQ(rf.status().code(), rw.status().code()) << "op " << i;
          break;
        }
        const auto rf = fifo.Read(sector * 1024, out_a, issue);
        const auto rw = wfq.Read(sector * 1024, out_b, issue);
        ASSERT_EQ(rf.value(), rw.value()) << "op " << i;
        break;
      }
      case 1: {
        const auto ef = fifo.EraseSector(sector, issue);
        const auto ew = wfq.EraseSector(sector, issue);
        ASSERT_EQ(ef.value(), ew.value()) << "op " << i;
        break;
      }
      default: {
        // Program a fresh slice of an erased sector on both devices.
        const auto ef = fifo.EraseSector(sector, issue);
        const auto ew = wfq.EraseSector(sector, issue);
        ASSERT_EQ(ef.value(), ew.value()) << "op " << i;
        std::vector<uint8_t> buf(64, static_cast<uint8_t>(i));
        const auto pf = fifo.Program(sector * 1024, buf, issue);
        const auto pw = wfq.Program(sector * 1024, buf, issue);
        ASSERT_EQ(pf.value(), pw.value()) << "op " << i;
        break;
      }
    }
    ASSERT_EQ(fifo_clock.now(), wfq_clock.now()) << "op " << i;
    for (int b = 0; b < kBanks; ++b) {
      ASSERT_EQ(fifo.BankBusyUntil(b), wfq.BankBusyUntil(b)) << "op " << i;
    }
  }
  // Identical attribution, too.
  for (int c = 0; c < kNumIoPriorities; ++c) {
    EXPECT_EQ(fifo.stats().by_class[c].requests.value(),
              wfq.stats().by_class[c].requests.value());
    EXPECT_EQ(fifo.stats().by_class[c].queue_wait_ns.value(),
              wfq.stats().by_class[c].queue_wait_ns.value());
    EXPECT_EQ(fifo.stats().by_class[c].service_ns.value(),
              wfq.stats().by_class[c].service_ns.value());
  }
}

// Per-tenant wait/service attribution at the device layer, mirroring the
// by-class test: a foreground read stalled behind another tenant's erase
// bills the wait to the reader and the erase service to the eraser.
TEST(IoSchedulerWfqTest, FlashDeviceAttributesWaitAndServiceByTenant) {
  FlashSpec spec;
  spec.name = "tenant-attr flash";
  spec.read = {100, 10};
  spec.program = {1000, 1000};
  spec.erase_sector_bytes = 1024;
  spec.erase_ns = 1 * kMillisecond;
  spec.endurance_cycles = 0;
  SimClock clock;
  FlashDevice flash(spec, 16 * 1024, 1, clock);

  ASSERT_TRUE(flash.EraseSector(0, ForTenant(kCleanerIo, 7)).ok());
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(flash.Read(1024, out, ForTenant(kForegroundIo, 3)).ok());

  const IoLaneStats* reader = flash.stats().by_tenant.Find(3);
  const IoLaneStats* eraser = flash.stats().by_tenant.Find(7);
  ASSERT_NE(reader, nullptr);
  ASSERT_NE(eraser, nullptr);
  EXPECT_EQ(reader->requests.value(), 1u);
  EXPECT_EQ(reader->queue_wait_ns.value(),
            static_cast<uint64_t>(spec.erase_ns));
  EXPECT_EQ(reader->service_ns.value(),
            static_cast<uint64_t>(spec.read.LatencyFor(out.size())));
  EXPECT_EQ(eraser->requests.value(), 1u);
  EXPECT_EQ(eraser->queue_wait_ns.value(), 0u);
  EXPECT_EQ(eraser->service_ns.value(), static_cast<uint64_t>(spec.erase_ns));
  EXPECT_EQ(flash.stats().by_tenant.Find(kDefaultTenant), nullptr);
}

}  // namespace
}  // namespace ssmc
