#include "src/storage/storage_manager.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

FlashSpec TestFlashSpec() {
  FlashSpec spec;
  spec.read = {100, 10};
  spec.program = {1000, 100};
  spec.erase_sector_bytes = 2048;
  spec.erase_ns = kMillisecond;
  spec.endurance_cycles = 1000000;
  return spec;
}

DramSpec TestDramSpec() {
  DramSpec spec;
  spec.read = {50, 10};
  spec.write = {60, 12};
  spec.active_mw_per_mib = 150;
  spec.standby_mw_per_mib = 1.5;
  return spec;
}

class StorageManagerTest : public ::testing::Test {
 protected:
  StorageManagerTest()
      : dram_(TestDramSpec(), 64 * 1024, clock_),
        flash_(TestFlashSpec(), 128 * 1024, 1, clock_),
        store_(flash_, {}),
        manager_(dram_, store_, 512) {}

  SimClock clock_;
  DramDevice dram_;
  FlashDevice flash_;
  FlashStore store_;
  StorageManager manager_;
};

TEST_F(StorageManagerTest, PageCountsFromCapacity) {
  EXPECT_EQ(manager_.total_dram_pages(), 128u);  // 64 KiB / 512.
  EXPECT_EQ(manager_.free_dram_pages(), 128u);
  EXPECT_EQ(manager_.total_flash_blocks(), store_.num_blocks());
  EXPECT_EQ(manager_.free_flash_blocks(), store_.num_blocks());
}

TEST_F(StorageManagerTest, DramPagesAllocatedLowFirst) {
  Result<uint64_t> a = manager_.AllocateDramPage();
  Result<uint64_t> b = manager_.AllocateDramPage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(manager_.free_dram_pages(), 126u);
  EXPECT_EQ(manager_.DramPageAddress(b.value()), 512u);
}

TEST_F(StorageManagerTest, FreeReturnsPageToPool) {
  Result<uint64_t> a = manager_.AllocateDramPage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(manager_.FreeDramPage(a.value()).ok());
  EXPECT_EQ(manager_.free_dram_pages(), 128u);
}

TEST_F(StorageManagerTest, DoubleFreeDetected) {
  Result<uint64_t> a = manager_.AllocateDramPage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(manager_.FreeDramPage(a.value()).ok());
  EXPECT_EQ(manager_.FreeDramPage(a.value()).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(manager_.FreeDramPage(9999).code(), ErrorCode::kOutOfRange);
}

TEST_F(StorageManagerTest, DramExhaustionReturnsTypedOutOfMemory) {
  for (uint64_t i = 0; i < 128; ++i) {
    ASSERT_TRUE(manager_.AllocateDramPage().ok());
  }
  // A dry DRAM pool is a typed out-of-memory, distinct from media-level
  // kNoSpace: callers (and tests) can tell "machine out of RAM" apart from
  // "flash/disk full" without parsing messages.
  Result<uint64_t> dry = manager_.AllocateDramPage();
  ASSERT_FALSE(dry.ok());
  EXPECT_EQ(dry.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(ErrorCodeName(dry.status().code()), "RESOURCE_EXHAUSTED");
  // Flash exhaustion is a different failure domain and keeps kNoSpace.
  while (manager_.free_flash_blocks() > 0) {
    ASSERT_TRUE(manager_.AllocateFlashBlock().ok());
  }
  EXPECT_EQ(manager_.AllocateFlashBlock().status().code(),
            ErrorCode::kNoSpace);
}

TEST_F(StorageManagerTest, FlashBlockAllocateAndFree) {
  Result<uint64_t> b = manager_.AllocateFlashBlock();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(manager_.free_flash_blocks(), store_.num_blocks() - 1);
  // Write something so the free also trims.
  std::vector<uint8_t> data(512, 0xAA);
  ASSERT_TRUE(store_.Write(b.value(), data).ok());
  ASSERT_TRUE(manager_.FreeFlashBlock(b.value()).ok());
  EXPECT_EQ(manager_.free_flash_blocks(), store_.num_blocks());
  EXPECT_FALSE(store_.IsMapped(b.value()));
}

TEST_F(StorageManagerTest, FlashDoubleFreeDetected) {
  Result<uint64_t> b = manager_.AllocateFlashBlock();
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(manager_.FreeFlashBlock(b.value()).ok());
  EXPECT_EQ(manager_.FreeFlashBlock(b.value()).code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(StorageManagerTest, MetadataChargesAdvanceClock) {
  const SimTime before = clock_.now();
  manager_.ChargeMetadataRead(64);
  EXPECT_GT(clock_.now(), before);
  const SimTime mid = clock_.now();
  manager_.ChargeMetadataWrite(64);
  EXPECT_GT(clock_.now(), mid);
}

}  // namespace
}  // namespace ssmc
