#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sim/legacy_event_queue.h"
#include "src/support/rng.h"

namespace ssmc {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  q.ScheduleAt(300, [&] { order.push_back(3); });
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(200, [&] { order.push_back(2); });
  q.RunUntil(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), 1000);
}

TEST(EventQueueTest, SameTimeEventsRunInScheduleOrder) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(100, [&] { order.push_back(2); });
  q.ScheduleAt(100, [&] { order.push_back(3); });
  q.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// Regression guard for the determinism guarantee documented in
// event_queue.h: insertion order must survive heap rebalancing at scale.
// The I/O scheduler breaks dispatch ties the same way, so a violation here
// would silently reorder same-time I/O completions.
TEST(EventQueueTest, ManySameTimeEventsPopInInsertionOrder) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  // Enough events, at interleaved timestamps, that the heap reshuffles
  // repeatedly; insertion order within each timestamp must still hold.
  constexpr int kPerTime = 257;
  for (int i = 0; i < kPerTime; ++i) {
    for (SimTime t : {300, 100, 200}) {
      q.ScheduleAt(t, [&order, t, i] {
        order.push_back(static_cast<int>(t) * 1000 + i);
      });
    }
  }
  q.RunUntil(300);
  ASSERT_EQ(order.size(), 3u * kPerTime);
  std::vector<int> expected;
  for (int t : {100, 200, 300}) {
    for (int i = 0; i < kPerTime; ++i) {
      expected.push_back(t * 1000 + i);
    }
  }
  EXPECT_EQ(order, expected);
}

TEST(EventQueueTest, SameTimeOrderSurvivesCancellations) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.ScheduleAt(100, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 64; i += 2) {
    EXPECT_TRUE(q.Cancel(ids[static_cast<size_t>(i)]));
  }
  q.RunUntil(100);
  std::vector<int> expected;
  for (int i = 1; i < 64; i += 2) {
    expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

// Events scheduled *during* a same-time cascade at the current time run
// after the already-queued same-time events, still in scheduling order.
TEST(EventQueueTest, SameTimeCascadeAppendsInOrder) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  q.ScheduleAt(100, [&] {
    order.push_back(1);
    q.ScheduleAt(100, [&] { order.push_back(3); });
    q.ScheduleAt(100, [&] { order.push_back(4); });
  });
  q.ScheduleAt(100, [&] { order.push_back(2); });
  q.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueTest, ClockAdvancesToEventTime) {
  SimClock clock;
  EventQueue q(clock);
  SimTime seen = -1;
  q.ScheduleAt(500, [&] { seen = clock.now(); });
  q.RunUntil(600);
  EXPECT_EQ(seen, 500);
}

TEST(EventQueueTest, FutureEventsStayPending) {
  SimClock clock;
  EventQueue q(clock);
  bool ran = false;
  q.ScheduleAt(1000, [&] { ran = true; });
  q.RunUntil(999);
  EXPECT_FALSE(ran);
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntil(1000);
  EXPECT_TRUE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  SimClock clock;
  EventQueue q(clock);
  clock.Advance(100);
  SimTime seen = -1;
  q.ScheduleAfter(50, [&] { seen = clock.now(); });
  q.RunUntil(200);
  EXPECT_EQ(seen, 150);
}

TEST(EventQueueTest, CancelPreventsRun) {
  SimClock clock;
  EventQueue q(clock);
  bool ran = false;
  const EventQueue::EventId id = q.ScheduleAt(100, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // Second cancel fails.
  q.RunUntil(1000);
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents) {
  SimClock clock;
  EventQueue q(clock);
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) {
      q.ScheduleAfter(10, tick);
    }
  };
  q.ScheduleAt(10, tick);
  q.RunUntil(100);
  EXPECT_EQ(count, 5);
}

TEST(EventQueueTest, RunAllDrainsEverything) {
  SimClock clock;
  EventQueue q(clock);
  int count = 0;
  q.ScheduleAt(10, [&] { ++count; });
  q.ScheduleAt(20, [&] { ++count; });
  q.RunAll();
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(clock.now(), 20);
}

TEST(EventQueueTest, PendingCountsExcludeCancelled) {
  SimClock clock;
  EventQueue q(clock);
  const auto id = q.ScheduleAt(10, [] {});
  q.ScheduleAt(20, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.Cancel(id);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, StaleIdCannotCancelReusedSlot) {
  SimClock clock;
  EventQueue q(clock);
  int ran = 0;
  const auto old_id = q.ScheduleAt(10, [&] { ++ran; });
  q.RunUntil(10);
  EXPECT_EQ(ran, 1);
  // The slot is recycled for the next event; the retired id must not be able
  // to cancel it.
  q.ScheduleAt(20, [&] { ++ran; });
  EXPECT_FALSE(q.Cancel(old_id));
  q.RunUntil(20);
  EXPECT_EQ(ran, 2);
}

// Regression for the pending()/memory drift the old implementation had:
// cancelled events accumulated in the heap until run time. Schedule/cancel
// 10k events and assert both that pending() stays truthful and that the
// queue's slot pool stays bounded (compaction reclaims dead slots instead of
// letting them pile up behind a far-future event).
TEST(EventQueueTest, CancelChurnKeepsMemoryBounded) {
  SimClock clock;
  EventQueue q(clock);
  // A far-future event keeps the queue non-empty the whole time, so nothing
  // is reclaimed by draining.
  q.ScheduleAt(1'000'000, [] {});
  std::vector<EventQueue::EventId> ids;
  constexpr int kChurn = 10'000;
  for (int i = 0; i < kChurn; ++i) {
    ids.push_back(q.ScheduleAt(500'000 + i, [] {}));
    if (ids.size() >= 16) {
      for (EventQueue::EventId id : ids) {
        EXPECT_TRUE(q.Cancel(id));
      }
      ids.clear();
    }
  }
  for (EventQueue::EventId id : ids) {
    EXPECT_TRUE(q.Cancel(id));
  }
  EXPECT_EQ(q.pending(), 1u);
  // Without compaction the pool would hold ~10k dead slots; with it, the
  // high-water mark is a small multiple of the live count.
  EXPECT_LT(q.slot_capacity(), 256u);
  q.RunUntil(1'000'000);
  EXPECT_TRUE(q.empty());
}

// --- Determinism property suite --------------------------------------------
//
// Randomized schedule/cancel/run interleavings applied in lockstep to the
// calendar queue and to the retired priority-queue implementation
// (LegacyEventQueue). Both record the logical index of every event they
// fire; the sequences must be bit-equal. The calendar queue additionally
// runs with its built-in validate-mode oracle enabled, so a divergence is
// caught both here and by the queue's own lockstep check.

TEST(EventQueueTest, RandomizedInterleavingsMatchLegacyOracle) {
  constexpr int kRounds = 25;
  constexpr int kOpsPerRound = 400;
  for (int round = 0; round < kRounds; ++round) {
    Rng rng(0x5eed0000 + static_cast<uint64_t>(round));
    SimClock clock_a;
    SimClock clock_b;
    EventQueue calendar(clock_a, /*validate_with_legacy=*/true);
    LegacyEventQueue legacy(clock_b);
    std::vector<int> order_a;
    std::vector<int> order_b;
    std::vector<char> fired_a;  // Indexed by logical event id.
    // Live logical events: index -> ids in both queues.
    struct Live {
      int logical;
      EventQueue::EventId a;
      LegacyEventQueue::EventId b;
    };
    std::vector<Live> live;
    int next_logical = 0;
    for (int op = 0; op < kOpsPerRound; ++op) {
      const uint64_t pick = rng.NextBelow(10);
      if (pick < 6) {
        // Schedule at a clustered time so same-timestamp collisions are
        // common (that is where ordering bugs live).
        const SimTime at =
            clock_a.now() + static_cast<SimTime>(rng.NextBelow(8)) * 10;
        const int logical = next_logical++;
        fired_a.push_back(0);
        const auto ida = calendar.ScheduleAt(at, [&order_a, &fired_a,
                                                  logical] {
          order_a.push_back(logical);
          fired_a[static_cast<size_t>(logical)] = 1;
        });
        const auto idb = legacy.ScheduleAt(
            at, [&order_b, logical] { order_b.push_back(logical); });
        live.push_back({logical, ida, idb});
      } else if (pick < 8) {
        if (!live.empty()) {
          const size_t victim = rng.NextBelow(live.size());
          const bool ca = calendar.Cancel(live[victim].a);
          const bool cb = legacy.Cancel(live[victim].b);
          EXPECT_EQ(ca, cb);
          live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
        }
      } else {
        const SimTime t =
            clock_a.now() + static_cast<SimTime>(rng.NextBelow(40));
        calendar.RunUntil(t);
        legacy.RunUntil(t);
        ASSERT_EQ(clock_a.now(), clock_b.now());
        // Drop fired events from the live set.
        live.erase(
            std::remove_if(live.begin(), live.end(),
                           [&](const Live& l) {
                             return fired_a[static_cast<size_t>(l.logical)];
                           }),
            live.end());
      }
    }
    calendar.RunAll();
    legacy.RunAll();
    ASSERT_EQ(order_a, order_b) << "round " << round;
    EXPECT_TRUE(calendar.empty());
    EXPECT_TRUE(legacy.empty());
  }
}

// Same-time cascades under validate mode: the built-in oracle must agree on
// cascade ordering, not just on pre-scheduled events.
TEST(EventQueueTest, ValidateModeAcceptsCascades) {
  SimClock clock;
  EventQueue q(clock, /*validate_with_legacy=*/true);
  std::vector<int> order;
  q.ScheduleAt(100, [&] {
    order.push_back(1);
    q.ScheduleAt(100, [&] { order.push_back(3); });
    q.ScheduleAfter(50, [&] { order.push_back(4); });
  });
  q.ScheduleAt(100, [&] { order.push_back(2); });
  q.RunUntil(200);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace ssmc
