#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ssmc {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  q.ScheduleAt(300, [&] { order.push_back(3); });
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(200, [&] { order.push_back(2); });
  q.RunUntil(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), 1000);
}

TEST(EventQueueTest, SameTimeEventsRunInScheduleOrder) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(100, [&] { order.push_back(2); });
  q.ScheduleAt(100, [&] { order.push_back(3); });
  q.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ClockAdvancesToEventTime) {
  SimClock clock;
  EventQueue q(clock);
  SimTime seen = -1;
  q.ScheduleAt(500, [&] { seen = clock.now(); });
  q.RunUntil(600);
  EXPECT_EQ(seen, 500);
}

TEST(EventQueueTest, FutureEventsStayPending) {
  SimClock clock;
  EventQueue q(clock);
  bool ran = false;
  q.ScheduleAt(1000, [&] { ran = true; });
  q.RunUntil(999);
  EXPECT_FALSE(ran);
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntil(1000);
  EXPECT_TRUE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  SimClock clock;
  EventQueue q(clock);
  clock.Advance(100);
  SimTime seen = -1;
  q.ScheduleAfter(50, [&] { seen = clock.now(); });
  q.RunUntil(200);
  EXPECT_EQ(seen, 150);
}

TEST(EventQueueTest, CancelPreventsRun) {
  SimClock clock;
  EventQueue q(clock);
  bool ran = false;
  const EventQueue::EventId id = q.ScheduleAt(100, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // Second cancel fails.
  q.RunUntil(1000);
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents) {
  SimClock clock;
  EventQueue q(clock);
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) {
      q.ScheduleAfter(10, tick);
    }
  };
  q.ScheduleAt(10, tick);
  q.RunUntil(100);
  EXPECT_EQ(count, 5);
}

TEST(EventQueueTest, RunAllDrainsEverything) {
  SimClock clock;
  EventQueue q(clock);
  int count = 0;
  q.ScheduleAt(10, [&] { ++count; });
  q.ScheduleAt(20, [&] { ++count; });
  q.RunAll();
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(clock.now(), 20);
}

TEST(EventQueueTest, PendingCountsExcludeCancelled) {
  SimClock clock;
  EventQueue q(clock);
  const auto id = q.ScheduleAt(10, [] {});
  q.ScheduleAt(20, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.Cancel(id);
  EXPECT_EQ(q.pending(), 1u);
}

}  // namespace
}  // namespace ssmc
