#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ssmc {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  q.ScheduleAt(300, [&] { order.push_back(3); });
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(200, [&] { order.push_back(2); });
  q.RunUntil(1000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), 1000);
}

TEST(EventQueueTest, SameTimeEventsRunInScheduleOrder) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  q.ScheduleAt(100, [&] { order.push_back(1); });
  q.ScheduleAt(100, [&] { order.push_back(2); });
  q.ScheduleAt(100, [&] { order.push_back(3); });
  q.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// Regression guard for the determinism guarantee documented in
// event_queue.h: insertion order must survive heap rebalancing at scale.
// The I/O scheduler breaks dispatch ties the same way, so a violation here
// would silently reorder same-time I/O completions.
TEST(EventQueueTest, ManySameTimeEventsPopInInsertionOrder) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  // Enough events, at interleaved timestamps, that the heap reshuffles
  // repeatedly; insertion order within each timestamp must still hold.
  constexpr int kPerTime = 257;
  for (int i = 0; i < kPerTime; ++i) {
    for (SimTime t : {300, 100, 200}) {
      q.ScheduleAt(t, [&order, t, i] {
        order.push_back(static_cast<int>(t) * 1000 + i);
      });
    }
  }
  q.RunUntil(300);
  ASSERT_EQ(order.size(), 3u * kPerTime);
  std::vector<int> expected;
  for (int t : {100, 200, 300}) {
    for (int i = 0; i < kPerTime; ++i) {
      expected.push_back(t * 1000 + i);
    }
  }
  EXPECT_EQ(order, expected);
}

TEST(EventQueueTest, SameTimeOrderSurvivesCancellations) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.ScheduleAt(100, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 64; i += 2) {
    EXPECT_TRUE(q.Cancel(ids[static_cast<size_t>(i)]));
  }
  q.RunUntil(100);
  std::vector<int> expected;
  for (int i = 1; i < 64; i += 2) {
    expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

// Events scheduled *during* a same-time cascade at the current time run
// after the already-queued same-time events, still in scheduling order.
TEST(EventQueueTest, SameTimeCascadeAppendsInOrder) {
  SimClock clock;
  EventQueue q(clock);
  std::vector<int> order;
  q.ScheduleAt(100, [&] {
    order.push_back(1);
    q.ScheduleAt(100, [&] { order.push_back(3); });
    q.ScheduleAt(100, [&] { order.push_back(4); });
  });
  q.ScheduleAt(100, [&] { order.push_back(2); });
  q.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueTest, ClockAdvancesToEventTime) {
  SimClock clock;
  EventQueue q(clock);
  SimTime seen = -1;
  q.ScheduleAt(500, [&] { seen = clock.now(); });
  q.RunUntil(600);
  EXPECT_EQ(seen, 500);
}

TEST(EventQueueTest, FutureEventsStayPending) {
  SimClock clock;
  EventQueue q(clock);
  bool ran = false;
  q.ScheduleAt(1000, [&] { ran = true; });
  q.RunUntil(999);
  EXPECT_FALSE(ran);
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntil(1000);
  EXPECT_TRUE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  SimClock clock;
  EventQueue q(clock);
  clock.Advance(100);
  SimTime seen = -1;
  q.ScheduleAfter(50, [&] { seen = clock.now(); });
  q.RunUntil(200);
  EXPECT_EQ(seen, 150);
}

TEST(EventQueueTest, CancelPreventsRun) {
  SimClock clock;
  EventQueue q(clock);
  bool ran = false;
  const EventQueue::EventId id = q.ScheduleAt(100, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // Second cancel fails.
  q.RunUntil(1000);
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents) {
  SimClock clock;
  EventQueue q(clock);
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) {
      q.ScheduleAfter(10, tick);
    }
  };
  q.ScheduleAt(10, tick);
  q.RunUntil(100);
  EXPECT_EQ(count, 5);
}

TEST(EventQueueTest, RunAllDrainsEverything) {
  SimClock clock;
  EventQueue q(clock);
  int count = 0;
  q.ScheduleAt(10, [&] { ++count; });
  q.ScheduleAt(20, [&] { ++count; });
  q.RunAll();
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(clock.now(), 20);
}

TEST(EventQueueTest, PendingCountsExcludeCancelled) {
  SimClock clock;
  EventQueue q(clock);
  const auto id = q.ScheduleAt(10, [] {});
  q.ScheduleAt(20, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.Cancel(id);
  EXPECT_EQ(q.pending(), 1u);
}

}  // namespace
}  // namespace ssmc
