// Adversarial crash-injection coverage for the metadata journal (ROADMAP
// E13). The property under test: once the file system acks a namespace
// mutation, a power failure at ANY later flash-program boundary must not
// lose it — remounting from the journal restores the exact acked
// namespace. The sweep tears the power at every program boundary of a
// deterministic workload (golden run counts the boundaries, then one fresh
// machine per boundary crashes there), across several seeds and journal
// configurations, for >5000 boundaries in total.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/machine.h"
#include "src/fs/memory_fs.h"
#include "src/journal/journal.h"
#include "src/storage/storage_manager.h"

namespace ssmc {
namespace {

// ---------------------------------------------------------------------------
// Deterministic workload + acked-op model.

// xorshift64: deterministic, seed-stable across platforms.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

struct FileModel {
  uint64_t size = 0;
  uint8_t fill = 0;  // Every written byte of the file is this value.
};

// Namespace a crash must not lose: exactly the ops the fs acked.
struct Model {
  std::map<std::string, FileModel> files;
  std::set<std::string> dirs;  // "/" excluded.
};

MachineConfig CrashConfig(uint64_t compact_log_blocks) {
  MachineConfig config;
  config.name = "crash";
  config.dram_bytes = 1 * kMiB;
  config.flash_bytes = 4 * kMiB;
  config.flash_banks = 2;
  config.journal = true;
  config.journal_options.compact_log_blocks = compact_log_blocks;
  config.flush_period = 2 * kSecond;
  return config;
}

// Issues the op stream for `seed` against `machine`, recording acked ops in
// `model`. Stops after `max_ops` ops, or as soon as a torn program fires
// (the crash point has been reached — the op containing the tear may have
// acked or failed; the model tracks whichever happened). Returns the number
// of ops issued.
int RunWorkload(MobileComputer& machine, uint64_t seed, int max_ops,
                Model* model, bool assert_ok) {
  uint64_t rng = seed * 0x9E3779B97F4A7C15ull + 1;
  int created = 0;
  int ops = 0;
  for (; ops < max_ops; ++ops) {
    MemoryFileSystem& fs = machine.fs();
    const uint64_t roll = NextRand(&rng) % 100;
    const uint64_t pick = NextRand(&rng);
    if (roll < 30 || model->files.empty()) {
      // Create a fresh file in "/" or an existing directory.
      std::string dir = "";
      if (!model->dirs.empty() && (pick & 1) != 0) {
        auto it = model->dirs.begin();
        std::advance(it, (pick >> 1) % model->dirs.size());
        dir = *it;
      }
      const std::string path = dir + "/f" + std::to_string(created);
      const uint8_t fill = static_cast<uint8_t>(created % 251 + 1);
      ++created;
      Status s = fs.Create(path);
      if (assert_ok) EXPECT_TRUE(s.ok()) << path << ": " << s.ToString();
      if (s.ok()) model->files[path] = FileModel{0, fill};
    } else if (roll < 55) {
      // Append whole blocks of the file's fill byte.
      auto it = model->files.begin();
      std::advance(it, pick % model->files.size());
      const uint64_t len = 512 * (1 + (pick >> 8) % 4);
      std::vector<uint8_t> data(len, it->second.fill);
      Result<uint64_t> n = fs.Write(it->first, it->second.size, data);
      if (assert_ok) EXPECT_TRUE(n.ok()) << it->first;
      if (n.ok()) it->second.size += n.value();
    } else if (roll < 65) {
      const std::string path = "/d" + std::to_string(created);
      ++created;
      Status s = fs.Mkdir(path);
      if (assert_ok) EXPECT_TRUE(s.ok()) << path;
      if (s.ok()) model->dirs.insert(path);
    } else if (roll < 73) {
      auto it = model->files.begin();
      std::advance(it, pick % model->files.size());
      Status s = fs.Unlink(it->first);
      if (assert_ok) EXPECT_TRUE(s.ok()) << it->first;
      if (s.ok()) model->files.erase(it);
    } else if (roll < 80) {
      auto it = model->files.begin();
      std::advance(it, pick % model->files.size());
      const std::string to = it->first + ".r" + std::to_string(ops);
      Status s = fs.Rename(it->first, to);
      if (assert_ok) EXPECT_TRUE(s.ok()) << it->first << " -> " << to;
      if (s.ok()) {
        FileModel moved = it->second;
        model->files.erase(it);
        model->files[to] = moved;
      }
    } else if (roll < 86) {
      auto it = model->files.begin();
      std::advance(it, pick % model->files.size());
      const uint64_t size = it->second.size / 2;
      Status s = fs.Truncate(it->first, size);
      if (assert_ok) EXPECT_TRUE(s.ok()) << it->first;
      if (s.ok()) it->second.size = size;
    } else if (roll < 93) {
      Status s = machine.fs().Sync();
      if (assert_ok) EXPECT_TRUE(s.ok());
    } else {
      // Let the flush daemon run (tears can land in daemon programs too).
      machine.Idle(machine.config().flush_period);
    }
    if (machine.flash().stats().torn_programs.value() > 0) {
      ++ops;
      break;
    }
  }
  return ops;
}

// Recursively collects the live namespace: dirs ("/" excluded) and files
// with their Stat sizes.
void Collect(MemoryFileSystem& fs, const std::string& dir, Model* out) {
  Result<std::vector<std::string>> names = fs.List(dir.empty() ? "/" : dir);
  ASSERT_TRUE(names.ok()) << dir;
  for (const std::string& name : names.value()) {
    const std::string path = dir + "/" + name;
    Result<FileInfo> info = fs.Stat(path);
    ASSERT_TRUE(info.ok()) << path;
    if (info.value().is_directory) {
      out->dirs.insert(path);
      Collect(fs, path, out);
    } else {
      out->files[path] = FileModel{info.value().size, 0};
    }
  }
}

// The recovered namespace must be EXACTLY the acked model: same dirs, same
// files, same sizes, and every readable byte either the file's fill value
// or zero (buffered data that legitimately evaporated reads as a hole).
void VerifyAgainstModel(MobileComputer& machine, const Model& model,
                        const std::string& context) {
  Model actual;
  Collect(machine.fs(), "", &actual);
  ASSERT_EQ(actual.dirs, model.dirs) << context;
  ASSERT_EQ(actual.files.size(), model.files.size()) << context;
  for (const auto& [path, expect] : model.files) {
    auto it = actual.files.find(path);
    ASSERT_TRUE(it != actual.files.end()) << context << " lost " << path;
    ASSERT_EQ(it->second.size, expect.size) << context << " " << path;
    std::vector<uint8_t> buf(512);
    for (uint64_t off = 0; off < expect.size; off += buf.size()) {
      Result<uint64_t> n = machine.fs().Read(path, off, buf);
      ASSERT_TRUE(n.ok()) << context << " " << path;
      for (uint64_t i = 0; i < n.value(); ++i) {
        ASSERT_TRUE(buf[i] == expect.fill || buf[i] == 0)
            << context << " " << path << " byte " << off + i;
      }
    }
  }
}

// Runs the full boundary sweep for one seed/config: golden run counts flash
// programs, then one machine per boundary tears that exact program, crashes,
// remounts, and verifies. Adds the boundaries covered to *covered.
void SweepSeed(uint64_t seed, int max_ops, uint64_t compact_log_blocks,
               uint64_t* covered) {
  // Golden run: every op must ack, and the program count bounds the sweep.
  // Count programs from the point the boundary runs arm the tear (right
  // after construction) — mkfs programs are not sweepable boundaries.
  Model golden_model;
  uint64_t programs = 0;
  {
    MobileComputer machine(CrashConfig(compact_log_blocks));
    const uint64_t mkfs = machine.flash().stats().programs.value();
    RunWorkload(machine, seed, max_ops, &golden_model, /*assert_ok=*/true);
    EXPECT_EQ(machine.flash().stats().torn_programs.value(), 0u);
    programs = machine.flash().stats().programs.value() - mkfs;
  }
  EXPECT_GT(programs, 0u);

  // Cycle the tear length: 0 = nothing landed, 511 = one byte short of a
  // full page, odd lengths catch any alignment assumption in between.
  const uint64_t kTearBytes[] = {0, 13, 256, 511};
  for (uint64_t k = 0; k < programs; ++k) {
    const std::string context = "seed=" + std::to_string(seed) +
                                " boundary=" + std::to_string(k);
    MobileComputer machine(CrashConfig(compact_log_blocks));
    ASSERT_NE(machine.journal(), nullptr) << context;
    machine.flash().FailNextProgramAfterBytes(kTearBytes[k % 4],
                                              /*after_programs=*/k);
    Model model;
    RunWorkload(machine, seed, max_ops, &model, /*assert_ok=*/false);
    ASSERT_EQ(machine.flash().stats().torn_programs.value(), 1u) << context;
    machine.InjectBatteryFailure();
    Result<RecoveryReport> report = machine.RecoverAfterFailure(20000);
    ASSERT_TRUE(report.ok()) << context << ": "
                             << report.status().ToString();
    VerifyAgainstModel(machine, model, context);
    if (::testing::Test::HasFatalFailure()) return;
    ++*covered;
  }
}

// ---------------------------------------------------------------------------

TEST(JournalCrashTest, EveryProgramBoundarySurvivesPowerFailure) {
  // Seeds alternate between a roomy log (no compaction during the run) and
  // an aggressively small one (tears land inside checkpoint compaction and
  // superblock commits as well as appends). Together the sweep must cross
  // 5000 boundaries.
  uint64_t boundaries = 0;
  for (uint64_t seed = 1; boundaries < 5000; ++seed) {
    const uint64_t compact = (seed % 2 == 0) ? 6 : 256;
    SweepSeed(seed, /*max_ops=*/120, compact, &boundaries);
    ASSERT_FALSE(::testing::Test::HasFatalFailure()) << "seed " << seed;
    ASSERT_LT(seed, 64u) << "workload too small to reach 5000 boundaries";
  }
  EXPECT_GE(boundaries, 5000u);
}

// Differential oracle: with journal_oracle on, CheckpointMetadata maintains
// BOTH the journal checkpoint and the legacy block-0 checkpoint. Crashing
// right after a checkpoint, the journal remount and the legacy remount must
// agree on the namespace exactly.
TEST(JournalCrashTest, JournalRecoveryMatchesLegacyCheckpointOracle) {
  MachineConfig config = CrashConfig(/*compact_log_blocks=*/256);
  config.journal_oracle = true;
  MobileComputer machine(config);
  ASSERT_NE(machine.journal(), nullptr);

  Model model;
  RunWorkload(machine, /*seed=*/7, /*max_ops=*/150, &model,
              /*assert_ok=*/true);
  ASSERT_TRUE(machine.fs().Sync().ok());
  ASSERT_TRUE(machine.fs().CheckpointMetadata().ok());

  machine.InjectBatteryFailure();
  Result<RecoveryReport> report = machine.RecoverAfterFailure(20000);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  VerifyAgainstModel(machine, model, "journal remount");
  Model via_journal;
  Collect(machine.fs(), "", &via_journal);

  // Legacy oracle over the SAME surviving flash: a throwaway manager, since
  // legacy recovery only reads and re-registers blocks.
  StorageManager oracle(machine.dram(), machine.flash_store(),
                        machine.config().page_bytes);
  RecoveryReport legacy_report;
  Result<std::unique_ptr<MemoryFileSystem>> legacy =
      MemoryFileSystem::RecoverFromCheckpoint(oracle, MemoryFsOptions{},
                                              &legacy_report);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  Model via_legacy;
  Collect(*legacy.value(), "", &via_legacy);

  EXPECT_EQ(via_journal.dirs, via_legacy.dirs);
  ASSERT_EQ(via_journal.files.size(), via_legacy.files.size());
  for (const auto& [path, info] : via_journal.files) {
    auto it = via_legacy.files.find(path);
    ASSERT_TRUE(it != via_legacy.files.end()) << path;
    EXPECT_EQ(it->second.size, info.size) << path;
  }
  EXPECT_EQ(legacy_report.files_recovered, report.value().files_recovered);
  EXPECT_EQ(legacy_report.directories_recovered,
            report.value().directories_recovered);
}

// Regression: recover -> checkpoint -> crash -> recover -> checkpoint again.
// The second checkpoint releases the blocks the first recovery re-registered;
// ReleaseOldCheckpoint must tolerate that cycle without double-freeing or
// freeing live blocks (it once cleared its block list only partially on
// this path).
TEST(JournalCrashTest, DoubleRecoveryAndRecheckpointIsStable) {
  for (const bool journaled : {false, true}) {
    MachineConfig config = CrashConfig(/*compact_log_blocks=*/256);
    config.journal = journaled;
    config.journal_oracle = journaled;
    MobileComputer machine(config);

    Model model;
    RunWorkload(machine, /*seed=*/11, /*max_ops=*/80, &model,
                /*assert_ok=*/true);
    ASSERT_TRUE(machine.fs().Sync().ok());
    ASSERT_TRUE(machine.fs().CheckpointMetadata().ok());

    for (int round = 0; round < 3; ++round) {
      machine.InjectBatteryFailure();
      Result<RecoveryReport> report = machine.RecoverAfterFailure(20000);
      ASSERT_TRUE(report.ok())
          << (journaled ? "journal" : "legacy") << " round " << round << ": "
          << report.status().ToString();
      VerifyAgainstModel(machine, model,
                         std::string(journaled ? "journal" : "legacy") +
                             " round " + std::to_string(round));
      // Re-checkpointing from a recovered fs must free the old chain
      // safely and leave a mountable image for the next round.
      ASSERT_TRUE(machine.fs().CheckpointMetadata().ok()) << round;
    }
  }
}

}  // namespace
}  // namespace ssmc
