// Log-structured-specific behavior: segment batching, sequential write
// latency, the cleaner, and write amplification under churn.

#include "src/fs/log_fs.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/support/rng.h"

namespace ssmc {
namespace {

DiskSpec TestDiskSpec(uint64_t cylinders = 1024) {
  DiskSpec spec;
  spec.sector_bytes = 512;
  spec.sectors_per_track = 32;
  spec.cylinders = cylinders;
  spec.min_seek_ns = 2 * kMillisecond;
  spec.avg_seek_ns = 12 * kMillisecond;
  spec.max_seek_ns = 25 * kMillisecond;
  spec.rotation_ns = 11 * kMillisecond;
  spec.transfer_mib_per_s = 1.0;
  spec.spin_up_ns = kSecond;
  spec.active_mw = 1500;
  spec.idle_mw = 700;
  spec.standby_mw = 15;
  return spec;
}

class LogFsTest : public ::testing::Test {
 protected:
  LogFsTest() : disk_(TestDiskSpec(), clock_) {
    disk_.set_spin_down_after(0);
    fs_ = std::make_unique<LogFileSystem>(disk_, LogFsOptions{});
  }

  std::vector<uint8_t> Pattern(size_t n, uint8_t seed = 1) {
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<uint8_t>(seed + i * 13);
    }
    return v;
  }

  SimClock clock_;
  DiskDevice disk_;
  std::unique_ptr<LogFileSystem> fs_;
};

TEST_F(LogFsTest, SmallWritesBatchIntoSegments) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  // 63 blocks of 4 KiB: under one 64-block segment — nothing hits disk.
  for (int i = 0; i < 63; ++i) {
    ASSERT_TRUE(
        fs_->Write("/f", static_cast<uint64_t>(i) * 4096, Pattern(4096)).ok());
  }
  EXPECT_EQ(disk_.stats().writes.value(), 0u);
  // The 64th write completes a segment: exactly one disk write happens.
  ASSERT_TRUE(fs_->Write("/f", 63 * 4096, Pattern(4096)).ok());
  EXPECT_EQ(disk_.stats().writes.value(), 1u);
  EXPECT_EQ(fs_->stats().segment_writes.value(), 1u);
}

TEST_F(LogFsTest, SegmentWriteIsSequential) {
  // One 256 KiB segment write should take ~transfer time (256 ms at
  // 1 MiB/s) plus one seek+rotation — far less than 64 scattered writes
  // (64 * ~25 ms = 1.6 s).
  ASSERT_TRUE(fs_->Create("/f").ok());
  const SimTime before = clock_.now();
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(64 * 4096)).ok());
  const Duration cost = clock_.now() - before;
  EXPECT_LT(cost, 500 * kMillisecond);
  EXPECT_GT(cost, 200 * kMillisecond);  // The transfer itself is real.
}

TEST_F(LogFsTest, DirtyDataReadableBeforeFlush) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  const auto data = Pattern(5000, 9);
  ASSERT_TRUE(fs_->Write("/f", 0, data).ok());
  std::vector<uint8_t> out(5000);
  Result<uint64_t> read = fs_->Read("/f", 0, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(fs_->stats().reads_from_buffer.value(), 0u);
  EXPECT_EQ(fs_->stats().reads_from_disk.value(), 0u);
}

TEST_F(LogFsTest, SyncFlushesPartialSegment) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(8192)).ok());  // 2 blocks.
  ASSERT_TRUE(fs_->Sync().ok());
  EXPECT_EQ(fs_->stats().segment_writes.value(), 1u);
  // Reads now come from disk.
  std::vector<uint8_t> out(8192);
  ASSERT_TRUE(fs_->Read("/f", 0, out).ok());
  EXPECT_EQ(out, Pattern(8192));
  EXPECT_GT(fs_->stats().reads_from_disk.value(), 0u);
}

TEST_F(LogFsTest, OverwriteChurnTriggersCleaner) {
  // Disk is 16 MiB = 64 segments. Fill ~8 MiB live, then overwrite it
  // several times: dead segments recycle, and mixed segments need cleaning.
  ASSERT_TRUE(fs_->Create("/f").ok());
  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(
        fs_->Write("/f", 0, Pattern(8 * 1024 * 1024,
                                    static_cast<uint8_t>(round)))
            .ok())
        << "round " << round;
  }
  ASSERT_TRUE(fs_->Sync().ok());
  // Content intact after all the churn.
  std::vector<uint8_t> out(4096);
  ASSERT_TRUE(fs_->Read("/f", 1024 * 1024, out).ok());
  const auto expected = Pattern(8 * 1024 * 1024, 7);
  EXPECT_TRUE(std::equal(out.begin(), out.end(),
                         expected.begin() + 1024 * 1024));
}

TEST_F(LogFsTest, CleanerCompactsFragmentedSegments) {
  // Small disk (8 MiB = 128 segments of 64 KiB). Files of 40 KiB straddle
  // segment boundaries, so deleting every other file leaves *mixed*
  // segments (part live, part dead) that only compaction can reclaim.
  SimClock clock;
  DiskDevice disk(TestDiskSpec(512), clock);
  disk.set_spin_down_after(0);
  LogFsOptions options;
  options.segment_blocks = 16;  // 64 KiB segments.
  LogFileSystem fs(disk, options);
  for (int i = 0; i < 150; ++i) {
    const std::string path = "/f" + std::to_string(i);
    ASSERT_TRUE(fs.Create(path).ok());
    ASSERT_TRUE(
        fs.Write(path, 0, Pattern(40 * 1024, static_cast<uint8_t>(i))).ok())
        << path;
  }
  ASSERT_TRUE(fs.Sync().ok());
  for (int i = 0; i < 150; i += 2) {
    ASSERT_TRUE(fs.Unlink("/f" + std::to_string(i)).ok());
  }
  // Write more than the whole-free-segment space: forces compaction of the
  // half-dead segments.
  ASSERT_TRUE(fs.Create("/big").ok());
  ASSERT_TRUE(fs.Write("/big", 0, Pattern(4 * 1024 * 1024, 0xAB)).ok());
  ASSERT_TRUE(fs.Sync().ok());
  EXPECT_GT(fs.stats().cleaner_runs.value(), 0u);
  EXPECT_GT(fs.stats().cleaner_live_blocks.value(), 0u);
  // Survivors uncorrupted.
  std::vector<uint8_t> out(40 * 1024);
  ASSERT_TRUE(fs.Read("/f33", 0, out).ok());
  EXPECT_EQ(out, Pattern(40 * 1024, 33));
  ASSERT_TRUE(fs.Read("/big", 0, out).ok());
  EXPECT_TRUE(std::equal(out.begin(), out.end(),
                         Pattern(4 * 1024 * 1024, 0xAB).begin()));
}

TEST_F(LogFsTest, WriteAmplificationStaysModest) {
  // Sequential whole-file overwrites leave fully dead segments: cleaning is
  // nearly free and amplification stays near 1.
  ASSERT_TRUE(fs_->Create("/f").ok());
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(fs_->Write("/f", 0, Pattern(4 * 1024 * 1024)).ok());
  }
  ASSERT_TRUE(fs_->Sync().ok());
  EXPECT_LT(fs_->WriteAmplification(), 1.3);
}

TEST_F(LogFsTest, FillToCapacityReportsNoSpace) {
  ASSERT_TRUE(fs_->Create("/fill").ok());
  std::vector<uint8_t> chunk(256 * 1024, 1);
  Status last = Status::Ok();
  uint64_t offset = 0;
  while (last.ok() && offset < 32 * 1024 * 1024) {
    Result<uint64_t> wrote = fs_->Write("/fill", offset, chunk);
    last = wrote.status();
    offset += chunk.size();
  }
  EXPECT_EQ(last.code(), ErrorCode::kNoSpace);
  // Deleting and syncing frees the log; writing works again.
  ASSERT_TRUE(fs_->Unlink("/fill").ok());
  ASSERT_TRUE(fs_->Create("/after").ok());
  EXPECT_TRUE(fs_->Write("/after", 0, chunk).ok());
}

TEST_F(LogFsTest, LfsWritesFasterThanUpdateInPlace) {
  // The LFS pitch: random small writes cost sequential-log bandwidth, not a
  // seek each. 64 random 4 KiB writes = 1 segment write (~290 ms) instead
  // of 64 seeks (~1.6 s).
  ASSERT_TRUE(fs_->Create("/rand").ok());
  ASSERT_TRUE(fs_->Write("/rand", 0, Pattern(1024 * 1024)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  Rng rng(5);
  const SimTime before = clock_.now();
  for (int i = 0; i < 64; ++i) {
    const uint64_t block = rng.NextBelow(256);
    ASSERT_TRUE(fs_->Write("/rand", block * 4096, Pattern(4096, 7)).ok());
  }
  ASSERT_TRUE(fs_->Sync().ok());
  const Duration cost = clock_.now() - before;
  EXPECT_LT(cost, 800 * kMillisecond);
}

}  // namespace
}  // namespace ssmc
