#include "src/core/single_level_store.h"

#include <gtest/gtest.h>

#include "src/core/machine.h"

namespace ssmc {
namespace {

class SingleLevelStoreTest : public ::testing::Test {
 protected:
  SingleLevelStoreTest()
      : machine_(NotebookConfig()),
        store_(machine_.storage(), machine_.fs()) {}

  void MakeFile(const std::string& path, size_t bytes, uint8_t seed,
                bool sync = true) {
    ASSERT_TRUE(machine_.fs().Create(path).ok());
    std::vector<uint8_t> data(bytes);
    for (size_t i = 0; i < bytes; ++i) {
      data[i] = static_cast<uint8_t>(seed + i * 3);
    }
    ASSERT_TRUE(machine_.fs().Write(path, 0, data).ok());
    if (sync) {
      ASSERT_TRUE(machine_.fs().Sync().ok());
      machine_.Idle(kMinute);
    }
  }

  MobileComputer machine_;
  SingleLevelStore store_;
};

TEST_F(SingleLevelStoreTest, AttachAssignsStableAlignedAddresses) {
  MakeFile("/a", 1024, 1);
  MakeFile("/b", 1024, 2);
  Result<uint64_t> a = store_.Attach("/a");
  Result<uint64_t> b = store_.Attach("/b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(a.value() % SingleLevelStore::kWindowBytes, 0u);
  EXPECT_GE(a.value(), SingleLevelStore::kWindowBase);
  // Idempotent.
  Result<uint64_t> again = store_.Attach("/a");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), a.value());
  EXPECT_EQ(store_.attached_count(), 2u);
  EXPECT_EQ(store_.stats().attaches.value(), 2u);
}

TEST_F(SingleLevelStoreTest, LoadReadsFileContent) {
  MakeFile("/doc", 3000, 5);
  Result<uint64_t> base = store_.Attach("/doc");
  ASSERT_TRUE(base.ok());
  std::vector<uint8_t> out(100);
  ASSERT_TRUE(store_.Load(base.value() + 1000, out).ok());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<uint8_t>(5 + (1000 + i) * 3)) << i;
  }
  // Read-only windows serve from flash in place: no DRAM consumed.
  EXPECT_EQ(store_.space().resident_dram_pages(), 0u);
}

TEST_F(SingleLevelStoreTest, StoreToReadOnlyWindowDenied) {
  MakeFile("/ro", 512, 1);
  Result<uint64_t> base = store_.Attach("/ro");
  ASSERT_TRUE(base.ok());
  std::vector<uint8_t> data(16, 0xAA);
  EXPECT_EQ(store_.Store(base.value(), data).status().code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(SingleLevelStoreTest, WritableWindowStoresReachTheFile) {
  MakeFile("/db", 2048, 3);
  Result<uint64_t> base = store_.AttachWritable("/db");
  ASSERT_TRUE(base.ok());
  std::vector<uint8_t> record(64, 0xEE);
  ASSERT_TRUE(store_.Store(base.value() + 512, record).ok());
  // Visible through the store...
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(store_.Load(base.value() + 512, out).ok());
  EXPECT_EQ(out, record);
  // ...and through the ordinary file interface.
  ASSERT_TRUE(machine_.fs().Read("/db", 512, out).ok());
  EXPECT_EQ(out, record);
}

TEST_F(SingleLevelStoreTest, StoresAreDurableViaFlushPolicy) {
  MakeFile("/persist", 512, 2);
  Result<uint64_t> base = store_.AttachWritable("/persist");
  ASSERT_TRUE(base.ok());
  std::vector<uint8_t> data(512, 0x77);
  ASSERT_TRUE(store_.Store(base.value(), data).ok());
  ASSERT_TRUE(machine_.fs().Sync().ok());
  // The store's write went through the write buffer into flash.
  Result<std::vector<BlockLocation>> locs =
      machine_.fs().BlockLocations("/persist");
  ASSERT_TRUE(locs.ok());
  EXPECT_EQ(locs.value()[0].kind, BlockLocation::Kind::kFlash);
}

TEST_F(SingleLevelStoreTest, MixedAccessModesRejected) {
  MakeFile("/f", 512, 1);
  ASSERT_TRUE(store_.Attach("/f").ok());
  EXPECT_EQ(store_.AttachWritable("/f").status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(SingleLevelStoreTest, ResolveMapsAddressesBack) {
  MakeFile("/x", 512, 1);
  Result<uint64_t> base = store_.Attach("/x");
  ASSERT_TRUE(base.ok());
  Result<std::pair<std::string, uint64_t>> hit =
      store_.Resolve(base.value() + 123);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value().first, "/x");
  EXPECT_EQ(hit.value().second, 123u);
  EXPECT_FALSE(store_.Resolve(0x1000).ok());
}

TEST_F(SingleLevelStoreTest, DetachReleasesWindow) {
  MakeFile("/gone", 512, 1);
  Result<uint64_t> base = store_.Attach("/gone");
  ASSERT_TRUE(base.ok());
  std::vector<uint8_t> out(16);
  ASSERT_TRUE(store_.Load(base.value(), out).ok());
  ASSERT_TRUE(store_.Detach("/gone").ok());
  EXPECT_FALSE(store_.Load(base.value(), out).ok());
  EXPECT_EQ(store_.Detach("/gone").code(), ErrorCode::kNotFound);
  // The file itself survives.
  EXPECT_TRUE(machine_.fs().Stat("/gone").ok());
}

TEST_F(SingleLevelStoreTest, AttachMissingOrDirectoryFails) {
  EXPECT_EQ(store_.Attach("/missing").status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(machine_.fs().Mkdir("/dir").ok());
  EXPECT_EQ(store_.Attach("/dir").status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(SingleLevelStoreTest, LoadPastEndOfFileFails) {
  MakeFile("/short", 100, 1);
  Result<uint64_t> base = store_.AttachWritable("/short");
  ASSERT_TRUE(base.ok());
  std::vector<uint8_t> out(200);
  EXPECT_FALSE(store_.Load(base.value(), out).ok());
}

TEST_F(SingleLevelStoreTest, ManyWindowsCoexist) {
  for (int i = 0; i < 20; ++i) {
    MakeFile("/w" + std::to_string(i), 600, static_cast<uint8_t>(i),
             /*sync=*/false);
  }
  ASSERT_TRUE(machine_.fs().Sync().ok());
  machine_.Idle(kMinute);
  std::vector<uint64_t> bases;
  for (int i = 0; i < 20; ++i) {
    Result<uint64_t> base = store_.Attach("/w" + std::to_string(i));
    ASSERT_TRUE(base.ok());
    bases.push_back(base.value());
  }
  // All distinct, all resolvable, all readable.
  std::vector<uint8_t> out(1);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store_.Load(bases[static_cast<size_t>(i)], out).ok());
    EXPECT_EQ(out[0], static_cast<uint8_t>(i));
  }
  EXPECT_EQ(store_.attached_count(), 20u);
}

}  // namespace
}  // namespace ssmc
