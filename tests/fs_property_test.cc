// Model-based property tests: a randomized operation stream is applied both
// to the file system under test and to a trivially-correct in-memory
// reference model; after every operation the observable results must match,
// and at checkpoints the full state must match. Run against both file
// systems across several seeds (parameterized), this catches semantic
// divergence that example-based tests miss.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/device/disk_device.h"
#include "src/device/dram_device.h"
#include "src/device/flash_device.h"
#include "src/fs/disk_fs.h"
#include "src/fs/file_system.h"
#include "src/fs/log_fs.h"
#include "src/fs/memory_fs.h"
#include "src/ftl/flash_store.h"
#include "src/storage/storage_manager.h"
#include "src/support/rng.h"

namespace ssmc {
namespace {

// The reference model: perfect, obvious semantics.
class ModelFs {
 public:
  ModelFs() { dirs_.insert("/"); }

  bool DirExists(const std::string& path) const {
    return dirs_.count(path) != 0;
  }
  bool FileExists(const std::string& path) const {
    return files_.count(path) != 0;
  }

  bool Create(const std::string& path) {
    if (FileExists(path) || DirExists(path) ||
        !DirExists(ParentPathOf(path))) {
      return false;
    }
    files_[path] = {};
    return true;
  }

  bool Mkdir(const std::string& path) {
    if (FileExists(path) || DirExists(path) ||
        !DirExists(ParentPathOf(path))) {
      return false;
    }
    dirs_.insert(path);
    return true;
  }

  bool Unlink(const std::string& path) {
    return files_.erase(path) != 0;
  }

  bool Write(const std::string& path, uint64_t offset,
             const std::vector<uint8_t>& data) {
    auto it = files_.find(path);
    if (it == files_.end()) {
      return false;
    }
    if (it->second.size() < offset + data.size()) {
      it->second.resize(offset + data.size(), 0);
    }
    std::copy(data.begin(), data.end(),
              it->second.begin() + static_cast<ptrdiff_t>(offset));
    return true;
  }

  // Returns bytes read into out (zero-padded semantics match the FS).
  int64_t Read(const std::string& path, uint64_t offset,
               std::vector<uint8_t>* out) const {
    auto it = files_.find(path);
    if (it == files_.end()) {
      return -1;
    }
    if (offset >= it->second.size()) {
      out->clear();
      return 0;
    }
    const uint64_t n =
        std::min<uint64_t>(out->size(), it->second.size() - offset);
    out->assign(it->second.begin() + static_cast<ptrdiff_t>(offset),
                it->second.begin() + static_cast<ptrdiff_t>(offset + n));
    return static_cast<int64_t>(n);
  }

  bool Truncate(const std::string& path, uint64_t size) {
    auto it = files_.find(path);
    if (it == files_.end()) {
      return false;
    }
    it->second.resize(size, 0);
    return true;
  }

  bool Rename(const std::string& from, const std::string& to) {
    auto it = files_.find(from);
    if (it == files_.end() || FileExists(to) || DirExists(to) ||
        !DirExists(ParentPathOf(to))) {
      return false;  // Model only renames files (matches generator usage).
    }
    files_[to] = std::move(it->second);
    files_.erase(it);
    return true;
  }

  const std::map<std::string, std::vector<uint8_t>>& files() const {
    return files_;
  }

 private:
  static std::string ParentPathOf(const std::string& path) {
    const size_t slash = path.rfind('/');
    return slash == 0 ? "/" : path.substr(0, slash);
  }

  std::set<std::string> dirs_;
  std::map<std::string, std::vector<uint8_t>> files_;
};

// Harness owning devices + the FS under test.
struct Harness {
  virtual ~Harness() = default;
  virtual FileSystem& fs() = 0;
  SimClock clock;
};

struct MemoryHarness : Harness {
  MemoryHarness() {
    DramSpec dram_spec;
    dram_spec.read = {80, 25};
    dram_spec.write = {80, 25};
    dram = std::make_unique<DramDevice>(dram_spec, 4 * kMiB, clock);
    FlashSpec flash_spec;
    flash_spec.read = {150, 100};
    flash_spec.program = {2000, 1000};
    flash_spec.erase_sector_bytes = 4096;
    flash_spec.erase_ns = 10 * kMillisecond;
    flash_spec.endurance_cycles = 100000000;
    flash = std::make_unique<FlashDevice>(flash_spec, 16 * kMiB, 2, clock);
    store = std::make_unique<FlashStore>(*flash, FlashStoreOptions{});
    manager = std::make_unique<StorageManager>(*dram, *store, 512);
    MemoryFsOptions options;
    options.write_buffer_pages = 512;  // Small: forces eviction traffic.
    impl = std::make_unique<MemoryFileSystem>(*manager, options);
  }
  FileSystem& fs() override { return *impl; }
  std::unique_ptr<DramDevice> dram;
  std::unique_ptr<FlashDevice> flash;
  std::unique_ptr<FlashStore> store;
  std::unique_ptr<StorageManager> manager;
  std::unique_ptr<MemoryFileSystem> impl;
};

struct DiskHarness : Harness {
  DiskHarness() {
    DiskSpec spec;
    spec.sector_bytes = 512;
    spec.sectors_per_track = 32;
    spec.cylinders = 2048;  // 32 MiB.
    spec.min_seek_ns = kMillisecond;
    spec.avg_seek_ns = 8 * kMillisecond;
    spec.max_seek_ns = 16 * kMillisecond;
    spec.rotation_ns = 11 * kMillisecond;
    spec.transfer_mib_per_s = 1.0;
    spec.spin_up_ns = kSecond;
    disk = std::make_unique<DiskDevice>(spec, clock);
    disk->set_spin_down_after(0);
    DiskFsOptions options;
    options.cache_blocks = 16;  // Small: forces miss/eviction traffic.
    impl = std::make_unique<DiskFileSystem>(*disk, options);
  }
  FileSystem& fs() override { return *impl; }
  std::unique_ptr<DiskDevice> disk;
  std::unique_ptr<DiskFileSystem> impl;
};

struct LogHarness : Harness {
  LogHarness() {
    DiskSpec spec;
    spec.sector_bytes = 512;
    spec.sectors_per_track = 32;
    spec.cylinders = 2048;  // 32 MiB.
    spec.min_seek_ns = kMillisecond;
    spec.avg_seek_ns = 8 * kMillisecond;
    spec.max_seek_ns = 16 * kMillisecond;
    spec.rotation_ns = 11 * kMillisecond;
    spec.transfer_mib_per_s = 1.0;
    spec.spin_up_ns = kSecond;
    disk = std::make_unique<DiskDevice>(spec, clock);
    disk->set_spin_down_after(0);
    LogFsOptions options;
    options.segment_blocks = 16;  // Small segments: frequent cleaning.
    impl = std::make_unique<LogFileSystem>(*disk, options);
  }
  FileSystem& fs() override { return *impl; }
  std::unique_ptr<DiskDevice> disk;
  std::unique_ptr<LogFileSystem> impl;
};

enum class FsKind { kMemory, kDisk, kLog };

using PropertyParam = std::tuple<FsKind, uint64_t>;

class FsPropertyTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  void SetUp() override {
    switch (std::get<0>(GetParam())) {
      case FsKind::kMemory:
        harness_ = std::make_unique<MemoryHarness>();
        break;
      case FsKind::kDisk:
        harness_ = std::make_unique<DiskHarness>();
        break;
      case FsKind::kLog:
        harness_ = std::make_unique<LogHarness>();
        break;
    }
  }

  std::string RandomPath(Rng& rng) {
    // A small namespace so operations collide with interesting frequency.
    const int dir = static_cast<int>(rng.NextBelow(3));
    const int file = static_cast<int>(rng.NextBelow(8));
    return "/dir" + std::to_string(dir) + "/f" + std::to_string(file);
  }

  std::unique_ptr<Harness> harness_;
};

TEST_P(FsPropertyTest, RandomOperationsMatchModel) {
  const uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed);
  ModelFs model;
  FileSystem& fs = harness_->fs();

  for (int d = 0; d < 3; ++d) {
    const std::string dir = "/dir" + std::to_string(d);
    ASSERT_TRUE(fs.Mkdir(dir).ok());
    ASSERT_TRUE(model.Mkdir(dir));
  }

  const int kOps = 400;
  for (int i = 0; i < kOps; ++i) {
    const std::string path = RandomPath(rng);
    const double u = rng.NextDouble();
    if (u < 0.15) {
      const bool model_ok = model.Create(path);
      EXPECT_EQ(fs.Create(path).ok(), model_ok) << "op " << i << " create "
                                                << path;
    } else if (u < 0.40) {
      const uint64_t offset = rng.NextBelow(6000);
      std::vector<uint8_t> data(1 + rng.NextBelow(3000));
      for (auto& b : data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      const bool model_ok = model.Write(path, offset, data);
      Result<uint64_t> wrote = fs.Write(path, offset, data);
      EXPECT_EQ(wrote.ok(), model_ok) << "op " << i << " write " << path;
    } else if (u < 0.70) {
      const uint64_t offset = rng.NextBelow(8000);
      std::vector<uint8_t> expected(1 + rng.NextBelow(4000));
      std::vector<uint8_t> actual(expected.size());
      const int64_t model_n = model.Read(path, offset, &expected);
      Result<uint64_t> read = fs.Read(path, offset, actual);
      if (model_n < 0) {
        EXPECT_FALSE(read.ok()) << "op " << i << " read " << path;
      } else {
        ASSERT_TRUE(read.ok()) << "op " << i << " read " << path << ": "
                               << read.status().ToString();
        ASSERT_EQ(read.value(), static_cast<uint64_t>(model_n))
            << "op " << i << " read " << path;
        actual.resize(read.value());
        EXPECT_EQ(actual, expected) << "op " << i << " read " << path;
      }
    } else if (u < 0.80) {
      const bool model_ok = model.Unlink(path);
      EXPECT_EQ(fs.Unlink(path).ok(), model_ok) << "op " << i;
    } else if (u < 0.88) {
      const uint64_t size = rng.NextBelow(8000);
      const bool model_ok = model.Truncate(path, size);
      EXPECT_EQ(fs.Truncate(path, size).ok(), model_ok) << "op " << i;
    } else if (u < 0.94) {
      const std::string to = RandomPath(rng);
      if (to != path) {
        const bool model_ok = model.Rename(path, to);
        EXPECT_EQ(fs.Rename(path, to).ok(), model_ok)
            << "op " << i << " rename " << path << " -> " << to;
      }
    } else {
      ASSERT_TRUE(fs.Sync().ok()) << "op " << i;
    }
    // Cross-check visible sizes against the model every few operations.
    if (i % 16 == 0) {
      const std::string probe = RandomPath(rng);
      Result<FileInfo> info = fs.Stat(probe);
      auto it = model.files().find(probe);
      if (it == model.files().end()) {
        EXPECT_FALSE(info.ok() && !info.value().is_directory)
            << "op " << i << " stat " << probe;
      } else {
        ASSERT_TRUE(info.ok()) << "op " << i << " stat " << probe;
        EXPECT_EQ(info.value().size, it->second.size())
            << "op " << i << " stat " << probe;
      }
    }
    harness_->clock.Advance(50 * kMillisecond);
  }

  // Final deep check: every model file exists with identical content.
  ASSERT_TRUE(fs.Sync().ok());
  for (const auto& [path, content] : model.files()) {
    Result<FileInfo> info = fs.Stat(path);
    ASSERT_TRUE(info.ok()) << path;
    EXPECT_EQ(info.value().size, content.size()) << path;
    std::vector<uint8_t> out(content.size());
    if (!content.empty()) {
      Result<uint64_t> read = fs.Read(path, 0, out);
      ASSERT_TRUE(read.ok()) << path;
      ASSERT_EQ(read.value(), content.size()) << path;
      EXPECT_EQ(out, content) << path;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FsPropertyTest,
    ::testing::Combine(
        ::testing::Values(FsKind::kMemory, FsKind::kDisk, FsKind::kLog),
        ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case FsKind::kMemory:
          name = "MemoryFs";
          break;
        case FsKind::kDisk:
          name = "DiskFs";
          break;
        case FsKind::kLog:
          name = "LogFs";
          break;
      }
      return name + "Seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ssmc
