#include "src/support/units.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

TEST(UnitsTest, DurationConstants) {
  EXPECT_EQ(kMicrosecond, 1000);
  EXPECT_EQ(kMillisecond, 1000 * 1000);
  EXPECT_EQ(kSecond, 1000 * 1000 * 1000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
}

TEST(UnitsTest, FormatDurationPicksUnit) {
  EXPECT_EQ(FormatDuration(500), "500 ns");
  EXPECT_EQ(FormatDuration(1500), "1.50 us");
  EXPECT_EQ(FormatDuration(2 * kMillisecond), "2.00 ms");
  EXPECT_EQ(FormatDuration(3 * kSecond), "3.00 s");
  EXPECT_EQ(FormatDuration(90 * kSecond), "1.5 min");
  EXPECT_EQ(FormatDuration(2 * kHour), "2.0 h");
}

TEST(UnitsTest, FormatDurationNegative) {
  EXPECT_EQ(FormatDuration(-1500), "-1.50 us");
}

TEST(UnitsTest, FormatSizePicksUnit) {
  EXPECT_EQ(FormatSize(100), "100 B");
  EXPECT_EQ(FormatSize(2048), "2.0 KiB");
  EXPECT_EQ(FormatSize(3 * kMiB), "3.0 MiB");
  EXPECT_EQ(FormatSize(kGiB + kGiB / 2), "1.50 GiB");
}

TEST(UnitsTest, FormatEnergyPicksUnit) {
  EXPECT_EQ(FormatEnergy(500), "500.0 nJ");
  EXPECT_EQ(FormatEnergy(2500), "2.50 uJ");
  EXPECT_EQ(FormatEnergy(3.3e6), "3.30 mJ");
  EXPECT_EQ(FormatEnergy(4.2e9), "4.20 J");
}

TEST(UnitsTest, FormatDoubleDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
}

}  // namespace
}  // namespace ssmc
