#include "src/support/status.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "no such file");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such file");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(AlreadyExistsError("").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(InvalidArgumentError("").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(OutOfRangeError("").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(NoSpaceError("").code(), ErrorCode::kNoSpace);
  EXPECT_EQ(ResourceExhaustedError("").code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(PermissionDeniedError("").code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(FailedPreconditionError("").code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(DataLossError("").code(), ErrorCode::kDataLoss);
  EXPECT_EQ(UnavailableError("").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(InternalError("").code(), ErrorCode::kInternal);
}

TEST(StatusTest, ErrorCodeNamesAreDistinct) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kOk), "OK");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kNoSpace), "NO_SPACE");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kDataLoss), "DATA_LOSS");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NoSpaceError("device full");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNoSpace);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status FailsIfNegative(int x) {
  if (x < 0) {
    return InvalidArgumentError("negative");
  }
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  SSMC_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace ssmc
