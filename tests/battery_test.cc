#include "src/device/battery.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

TEST(BatteryTest, StartsFull) {
  SimClock clock;
  Battery b(1000, 100, clock);
  EXPECT_FALSE(b.dead());
  EXPECT_DOUBLE_EQ(b.primary_remaining_mwh(), 1000.0);
  EXPECT_DOUBLE_EQ(b.backup_remaining_mwh(), 100.0);
  EXPECT_DOUBLE_EQ(b.primary_fraction(), 1.0);
}

TEST(BatteryTest, DrainConsumesPrimaryFirst) {
  SimClock clock;
  Battery b(1000, 100, clock);
  // 500 mWh = 1800 J = 1.8e12 nJ.
  EXPECT_TRUE(b.Drain(1.8e12));
  EXPECT_NEAR(b.primary_remaining_mwh(), 500.0, 1e-6);
  EXPECT_DOUBLE_EQ(b.backup_remaining_mwh(), 100.0);
}

TEST(BatteryTest, SpillsToBackupWhenPrimaryEmpty) {
  SimClock clock;
  Battery b(10, 100, clock);
  // Drain 50 mWh: 10 from primary, 40 from backup.
  EXPECT_TRUE(b.Drain(50 * Battery::kJoulesPerMwh * 1e9));
  EXPECT_NEAR(b.primary_remaining_mwh(), 0.0, 1e-9);
  EXPECT_NEAR(b.backup_remaining_mwh(), 60.0, 1e-6);
}

TEST(BatteryTest, DiesWhenBothExhausted) {
  SimClock clock;
  Battery b(10, 10, clock);
  EXPECT_FALSE(b.Drain(100 * Battery::kJoulesPerMwh * 1e9));
  EXPECT_TRUE(b.dead());
  EXPECT_EQ(b.stats().deaths.value(), 1u);
  // Dead battery refuses further drains.
  EXPECT_FALSE(b.Drain(1));
}

TEST(BatteryTest, DrainPowerIntegrates) {
  SimClock clock;
  Battery b(1000, 0, clock);
  // 1000 mW for 1 hour = 1000 mWh.
  EXPECT_TRUE(b.DrainPower(1000, kHour));
  EXPECT_NEAR(b.primary_remaining_mwh(), 0.0, 0.1);
}

TEST(BatteryTest, SwapRefreshesPrimary) {
  SimClock clock;
  Battery b(100, 50, clock);
  ASSERT_TRUE(b.Drain(90 * Battery::kJoulesPerMwh * 1e9));
  // Swap takes 1 minute with a 60 mW standby load on the backup.
  EXPECT_TRUE(b.SwapPrimary(200, 60, kMinute));
  EXPECT_NEAR(b.primary_remaining_mwh(), 200.0, 1e-6);
  EXPECT_LT(b.backup_remaining_mwh(), 50.0);
  EXPECT_EQ(b.stats().swaps.value(), 1u);
  EXPECT_EQ(clock.now(), kMinute);
}

TEST(BatteryTest, SwapFailsIfBackupDiesMidSwap) {
  SimClock clock;
  Battery b(100, 0.001, clock);  // Nearly empty backup.
  EXPECT_FALSE(b.SwapPrimary(200, 1000, kHour));
  EXPECT_TRUE(b.dead());
}

TEST(BatteryTest, InjectedFailureKillsInstantly) {
  SimClock clock;
  Battery b(1000, 100, clock);
  b.InjectFailure();
  EXPECT_TRUE(b.dead());
  EXPECT_DOUBLE_EQ(b.primary_remaining_mwh(), 0.0);
  EXPECT_DOUBLE_EQ(b.backup_remaining_mwh(), 0.0);
  EXPECT_EQ(b.stats().injected_failures.value(), 1u);
}

TEST(BatteryTest, TimeRemainingMatchesCharge) {
  SimClock clock;
  Battery b(1000, 0, clock);
  // 1000 mWh at 1000 mW = 1 hour.
  EXPECT_NEAR(static_cast<double>(b.TimeRemainingAt(1000)),
              static_cast<double>(kHour), 1e6);
  EXPECT_EQ(b.TimeRemainingAt(0), 0);
}

TEST(BatteryTest, PaperClaimIdleDramLastsDays) {
  // Paper (3.1): primaries "can preserve the contents of main memory in an
  // otherwise idle system for many days". A 20,000 mWh notebook pack holding
  // 8 MiB of self-refresh DRAM at ~1.5 mW/MiB (12 mW) lasts ~69 days.
  SimClock clock;
  Battery b(20000, 250, clock);
  const Duration t = b.TimeRemainingAt(12.0);
  EXPECT_GT(t, 10 * kDay);
}

TEST(BatteryTest, PaperClaimBackupLastsHours) {
  // Paper (3.1): backup lithium batteries preserve memory "for many hours".
  SimClock clock;
  Battery b(0, 250, clock);  // Backup only (primaries removed).
  const Duration t = b.TimeRemainingAt(12.0);
  EXPECT_GT(t, 5 * kHour);
  EXPECT_LT(t, 10 * kDay);
}

}  // namespace
}  // namespace ssmc
