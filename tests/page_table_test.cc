#include "src/vm/page_table.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

TEST(PageTableTest, FindOnEmptyReturnsNull) {
  PageTable table(512, nullptr);
  EXPECT_EQ(table.Find(0), nullptr);
  EXPECT_EQ(table.Find(uint64_t{1} << 40), nullptr);
  EXPECT_EQ(table.present_count(), 0u);
}

TEST(PageTableTest, FindOrCreateThenFind) {
  PageTable table(512, nullptr);
  PageTableEntry& pte = table.FindOrCreate(0x1000);
  pte.frame = 42;
  table.MarkPresent(pte, true);
  PageTableEntry* found = table.Find(0x1000);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->frame, 42u);
  EXPECT_TRUE(found->present);
  EXPECT_EQ(table.present_count(), 1u);
}

TEST(PageTableTest, DistinctPagesDistinctEntries) {
  PageTable table(512, nullptr);
  PageTableEntry& a = table.FindOrCreate(0);
  PageTableEntry& b = table.FindOrCreate(512);
  EXPECT_NE(&a, &b);
  // Same page, different offsets: same entry.
  PageTableEntry& c = table.FindOrCreate(100);
  EXPECT_EQ(&a, &c);
}

TEST(PageTableTest, SparseHighAddressesWork) {
  PageTable table(512, nullptr);
  const uint64_t va = uint64_t{0xDEADBEEF} << 24;
  PageTableEntry& pte = table.FindOrCreate(va);
  pte.frame = 7;
  table.MarkPresent(pte, true);
  ASSERT_NE(table.Find(va), nullptr);
  EXPECT_EQ(table.Find(va)->frame, 7u);
  // Neighbors remain unmapped.
  EXPECT_TRUE(table.Find(va + 512) == nullptr ||
              !table.Find(va + 512)->present);
}

TEST(PageTableTest, RemoveClearsEntry) {
  PageTable table(512, nullptr);
  PageTableEntry& pte = table.FindOrCreate(0x2000);
  table.MarkPresent(pte, true);
  EXPECT_EQ(table.present_count(), 1u);
  table.Remove(0x2000);
  EXPECT_EQ(table.present_count(), 0u);
  PageTableEntry* found = table.Find(0x2000);
  // Entry may exist but must not be present.
  EXPECT_TRUE(found == nullptr || !found->present);
}

TEST(PageTableTest, MarkPresentIdempotent) {
  PageTable table(512, nullptr);
  PageTableEntry& pte = table.FindOrCreate(0);
  table.MarkPresent(pte, true);
  table.MarkPresent(pte, true);
  EXPECT_EQ(table.present_count(), 1u);
  table.MarkPresent(pte, false);
  table.MarkPresent(pte, false);
  EXPECT_EQ(table.present_count(), 0u);
}

TEST(PageTableTest, WalkStatsAccumulate) {
  PageTable table(512, nullptr);
  table.FindOrCreate(0);
  const uint64_t walks = table.stats().walks.value();
  const uint64_t levels = table.stats().levels_touched.value();
  EXPECT_GE(walks, 1u);
  // 512-byte pages, 55 VPN bits, 9 bits/level: 7 levels per full walk.
  EXPECT_GE(levels, 7u);
}

TEST(PageTableTest, LargerPagesFewerLevels) {
  PageTable small(512, nullptr);
  PageTable big(64 * 1024, nullptr);
  small.FindOrCreate(0);
  big.FindOrCreate(0);
  EXPECT_GT(small.stats().levels_touched.value(),
            big.stats().levels_touched.value());
}

}  // namespace
}  // namespace ssmc
