#include "src/support/table.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

TEST(TableTest, RendersHeadersAndRows) {
  Table t({"name", "count"});
  t.AddRow();
  t.AddCell("alpha");
  t.AddCell(int64_t{7});
  t.AddRow();
  t.AddCell("beta");
  t.AddCell(int64_t{123});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("count"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("123"), std::string::npos);
}

TEST(TableTest, TitlePrintedFirst) {
  Table t({"a"});
  t.set_title("My Table");
  t.AddRow();
  t.AddCell("x");
  const std::string s = t.ToString();
  EXPECT_EQ(s.rfind("My Table", 0), 0u);
}

TEST(TableTest, NumericCellsRightAligned) {
  Table t({"col"});
  t.AddRow();
  t.AddCell("wide-text-cell");
  t.AddRow();
  t.AddCell(int64_t{5});
  const std::string s = t.ToString();
  // The numeric cell should be padded on the left inside its cell.
  EXPECT_NE(s.find("             5 "), std::string::npos) << s;
}

TEST(TableTest, DoubleFormatting) {
  Table t({"v"});
  t.AddRow();
  t.AddCell(3.14159, 1);
  EXPECT_NE(t.ToString().find("3.1"), std::string::npos);
}

TEST(TableTest, MissingCellsRenderEmpty) {
  Table t({"a", "b"});
  t.AddRow();
  t.AddCell("only-one");
  // Should not crash and should still render two columns.
  const std::string s = t.ToString();
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

TEST(TableTest, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow();
  t.AddCell("x");
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace ssmc
