#include "src/fs/path.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

TEST(PathTest, ValidPaths) {
  EXPECT_TRUE(IsValidPath("/"));
  EXPECT_TRUE(IsValidPath("/a"));
  EXPECT_TRUE(IsValidPath("/a/b/c"));
  EXPECT_TRUE(IsValidPath("/file.txt"));
}

TEST(PathTest, InvalidPaths) {
  EXPECT_FALSE(IsValidPath(""));
  EXPECT_FALSE(IsValidPath("relative"));
  EXPECT_FALSE(IsValidPath("/a/"));
  EXPECT_FALSE(IsValidPath("//"));
  EXPECT_FALSE(IsValidPath("/a//b"));
  EXPECT_FALSE(IsValidPath("/a/./b"));
  EXPECT_FALSE(IsValidPath("/a/../b"));
}

TEST(PathTest, SplitPath) {
  EXPECT_TRUE(SplitPath("/").empty());
  EXPECT_EQ(SplitPath("/a"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(SplitPath("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(PathTest, ParentPath) {
  EXPECT_EQ(ParentPath("/"), "/");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(ParentPath("/a/b"), "/a");
  EXPECT_EQ(ParentPath("/a/b/c"), "/a/b");
}

TEST(PathTest, BaseName) {
  EXPECT_EQ(BaseName("/"), "");
  EXPECT_EQ(BaseName("/a"), "a");
  EXPECT_EQ(BaseName("/a/b/c.txt"), "c.txt");
}

TEST(PathTest, JoinPath) {
  EXPECT_EQ(JoinPath("/", "a"), "/a");
  EXPECT_EQ(JoinPath("/a", "b"), "/a/b");
}

TEST(PathTest, JoinThenSplitRoundTrips) {
  const std::string joined = JoinPath(JoinPath("/", "x"), "y");
  EXPECT_EQ(joined, "/x/y");
  EXPECT_TRUE(IsValidPath(joined));
  EXPECT_EQ(ParentPath(joined), "/x");
  EXPECT_EQ(BaseName(joined), "y");
}

}  // namespace
}  // namespace ssmc
