// Edge cases and failure paths across modules that the per-module suites do
// not reach: exhaustion, cross-callback event manipulation, error
// propagation through composed layers.

#include <gtest/gtest.h>

#include "src/core/machine.h"
#include "src/fs/disk_fs.h"
#include "src/sim/event_queue.h"
#include "src/storage/write_buffer.h"
#include "src/vm/loader.h"

namespace ssmc {
namespace {

// --- Event queue ----------------------------------------------------------

TEST(EventQueueEdgeTest, CallbackCancelsAnotherPendingEvent) {
  SimClock clock;
  EventQueue q(clock);
  bool second_ran = false;
  EventQueue::EventId second = q.ScheduleAt(200, [&] { second_ran = true; });
  q.ScheduleAt(100, [&] { EXPECT_TRUE(q.Cancel(second)); });
  q.RunUntil(1000);
  EXPECT_FALSE(second_ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueEdgeTest, ZeroDelayScheduleRunsAtCurrentTime) {
  SimClock clock;
  EventQueue q(clock);
  clock.Advance(500);
  SimTime seen = -1;
  q.ScheduleAfter(0, [&] { seen = clock.now(); });
  q.RunUntil(clock.now());
  EXPECT_EQ(seen, 500);
}

TEST(EventQueueEdgeTest, CallbackSchedulingAtSameInstantRuns) {
  SimClock clock;
  EventQueue q(clock);
  int order = 0;
  int first = 0;
  int chained = 0;
  q.ScheduleAt(100, [&] {
    first = ++order;
    q.ScheduleAt(100, [&] { chained = ++order; });
  });
  q.RunUntil(100);
  EXPECT_EQ(first, 1);
  EXPECT_EQ(chained, 2);
}

// --- Write buffer error propagation ----------------------------------------

TEST(WriteBufferEdgeTest, FlushFailurePropagates) {
  SimClock clock;
  DramSpec dram_spec;
  dram_spec.read = {50, 10};
  dram_spec.write = {60, 12};
  DramDevice dram(dram_spec, 64 * 1024, clock);
  FlashSpec flash_spec;
  flash_spec.read = {100, 10};
  flash_spec.program = {1000, 100};
  flash_spec.erase_sector_bytes = 2048;
  flash_spec.erase_ns = kMillisecond;
  flash_spec.endurance_cycles = 1000000;
  FlashDevice flash(flash_spec, 128 * 1024, 1, clock);
  FlashStore store(flash, {});
  StorageManager manager(dram, store, 512);

  int failures_injected = 0;
  WriteBuffer buffer(manager, 4,
                     [&](const BlockKey&, const PayloadRef&, TenantId) -> Status {
                       ++failures_injected;
                       return NoSpaceError("injected");
                     });
  std::vector<uint8_t> page(512, 1);
  ASSERT_TRUE(buffer.Put(BlockKey{1, 0}, page, 0).ok());
  Status flushed = buffer.FlushAll();
  EXPECT_EQ(flushed.code(), ErrorCode::kNoSpace);
  EXPECT_EQ(failures_injected, 1);
  // The block stays buffered (not lost) after a failed flush attempt...
  EXPECT_TRUE(buffer.Contains(BlockKey{1, 0}));
  // ...so its data remains readable.
  std::vector<uint8_t> out(512);
  EXPECT_TRUE(buffer.Get(BlockKey{1, 0}, out).ok());
}

// --- DRAM exhaustion through the stack --------------------------------------

TEST(ExhaustionTest, WriteBufferSurvivesDramPressure) {
  // A machine whose write buffer capacity exceeds physical DRAM: the buffer
  // must hit RESOURCE_EXHAUSTED on the allocator, not corrupt state.
  MachineConfig config = PdaConfig();  // 1 MiB DRAM = 2048 pages.
  config.fs_options.write_buffer_pages = 4096;  // Lies about capacity.
  MobileComputer machine(config);
  ASSERT_TRUE(machine.fs().Create("/hog").ok());
  std::vector<uint8_t> chunk(512, 1);
  Status last = Status::Ok();
  for (int i = 0; i < 4000 && last.ok(); ++i) {
    Result<uint64_t> wrote =
        machine.fs().Write("/hog", static_cast<uint64_t>(i) * 512, chunk);
    last = wrote.status();
  }
  EXPECT_EQ(last.code(), ErrorCode::kResourceExhausted);
  // The machine still functions: sync drains the buffer, writes resume.
  ASSERT_TRUE(machine.fs().Sync().ok());
  EXPECT_TRUE(machine.fs().Write("/hog", 0, chunk).ok());
}

// --- Disk file system corners ------------------------------------------------

DiskSpec SmallDiskSpec() {
  DiskSpec spec;
  spec.sector_bytes = 512;
  spec.sectors_per_track = 16;
  spec.cylinders = 200;  // ~1.6 MiB: easy to fill.
  spec.min_seek_ns = kMillisecond;
  spec.avg_seek_ns = 5 * kMillisecond;
  spec.max_seek_ns = 10 * kMillisecond;
  spec.rotation_ns = 10 * kMillisecond;
  spec.transfer_mib_per_s = 1.0;
  spec.spin_up_ns = 100 * kMillisecond;
  return spec;
}

TEST(DiskFsEdgeTest, DiskFullReportedAndRecoverable) {
  SimClock clock;
  DiskDevice disk(SmallDiskSpec(), clock);
  disk.set_spin_down_after(0);
  DiskFileSystem fs(disk, DiskFsOptions{});
  ASSERT_TRUE(fs.Create("/fill").ok());
  std::vector<uint8_t> chunk(64 * 1024, 1);
  Status last = Status::Ok();
  uint64_t offset = 0;
  while (last.ok()) {
    Result<uint64_t> wrote = fs.Write("/fill", offset, chunk);
    last = wrote.status();
    offset += chunk.size();
  }
  EXPECT_EQ(last.code(), ErrorCode::kNoSpace);
  // Deleting frees everything; a new write fits again.
  ASSERT_TRUE(fs.Unlink("/fill").ok());
  ASSERT_TRUE(fs.Create("/after").ok());
  EXPECT_TRUE(fs.Write("/after", 0, chunk).ok());
}

TEST(DiskFsEdgeTest, InodeReuseAfterRmdir) {
  SimClock clock;
  DiskDevice disk(SmallDiskSpec(), clock);
  disk.set_spin_down_after(0);
  DiskFsOptions options;
  options.inode_count = 8;  // 6 usable.
  DiskFileSystem fs(disk, options);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(fs.Mkdir("/d" + std::to_string(i)).ok())
          << "round " << round << " dir " << i;
    }
    EXPECT_EQ(fs.Mkdir("/overflow").code(), ErrorCode::kNoSpace);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(fs.Rmdir("/d" + std::to_string(i)).ok());
    }
  }
}

// --- Loader misuse -----------------------------------------------------------

TEST(LoaderEdgeTest, WrongStrategyEntryPointsRejected) {
  MobileComputer machine(OmniBookConfig());
  Program program;
  program.path = "/app";
  program.text_bytes = 4096;
  ASSERT_TRUE(InstallProgram(machine.fs(), program).ok());
  machine.Idle(kMinute);
  ProgramLoader loader;
  AddressSpace& space = machine.CreateAddressSpace();
  Result<LaunchResult> launch = loader.Launch(
      space, machine.fs(), program, LaunchStrategy::kCopyFromDisk);
  EXPECT_FALSE(launch.ok());
  EXPECT_EQ(launch.status().code(), ErrorCode::kInvalidArgument);
}

TEST(LoaderEdgeTest, LaunchMissingProgramFails) {
  MobileComputer machine(OmniBookConfig());
  ProgramLoader loader;
  AddressSpace& space = machine.CreateAddressSpace();
  Program program;
  program.path = "/nonexistent";
  program.text_bytes = 4096;
  Result<LaunchResult> launch = loader.Launch(
      space, machine.fs(), program, LaunchStrategy::kExecuteInPlace);
  EXPECT_FALSE(launch.ok());
}

// --- Battery corner: machine dies mid-workload -------------------------------

TEST(BatteryEdgeTest, DeadBatteryStopsDaemonsWithoutCrash) {
  MachineConfig config = PdaConfig();
  config.primary_battery_mwh = 0.000001;  // Essentially dead on arrival.
  config.backup_battery_mwh = 0.000001;
  MobileComputer machine(config);
  ASSERT_TRUE(machine.fs().Create("/f").ok());
  std::vector<uint8_t> data(512, 1);
  ASSERT_TRUE(machine.fs().Write("/f", 0, data).ok());
  machine.Idle(kMinute);
  EXPECT_FALSE(machine.SettleEnergy());  // Battery could not cover it.
  EXPECT_TRUE(machine.battery().dead());
  // Daemons notice the dead battery and do nothing; time can still advance.
  machine.Idle(kMinute);
}

}  // namespace
}  // namespace ssmc
