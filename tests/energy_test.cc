#include "src/sim/energy.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

TEST(EnergyMeterTest, StartsAtZero) {
  EnergyMeter m;
  EXPECT_EQ(m.total_nanojoules(), 0.0);
}

TEST(EnergyMeterTest, ActiveEnergyIntegral) {
  EnergyMeter m;
  // 1000 mW for 1 second = 1 J = 1e9 nJ.
  m.AddActive(1000.0, kSecond);
  EXPECT_NEAR(m.total_nanojoules(), 1e9, 1);
  EXPECT_NEAR(m.active_nanojoules(), 1e9, 1);
  EXPECT_EQ(m.idle_nanojoules(), 0.0);
}

TEST(EnergyMeterTest, IdleSeparatedFromActive) {
  EnergyMeter m;
  m.AddActive(100.0, kMillisecond);  // 0.1 mJ = 1e5 nJ.
  m.AddIdle(1.0, kSecond);           // 1 mJ = 1e6 nJ.
  EXPECT_NEAR(m.active_nanojoules(), 1e5, 1);
  EXPECT_NEAR(m.idle_nanojoules(), 1e6, 1);
  EXPECT_NEAR(m.total_nanojoules(), 1.1e6, 1);
}

TEST(EnergyMeterTest, ResetClears) {
  EnergyMeter m;
  m.AddActive(5, 100);
  m.Reset();
  EXPECT_EQ(m.total_nanojoules(), 0.0);
}

TEST(EnergyMeterTest, SummaryIsHumanReadable) {
  EnergyMeter m;
  m.AddActive(1000.0, kSecond);
  EXPECT_NE(m.Summary().find("J"), std::string::npos);
}

}  // namespace
}  // namespace ssmc
