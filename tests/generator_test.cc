#include "src/trace/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

namespace ssmc {
namespace {

TEST(GeneratorTest, DeterministicFromSeed) {
  WorkloadOptions options = OfficeWorkload();
  options.duration = kMinute;
  Trace a = WorkloadGenerator(options).Generate();
  Trace b = WorkloadGenerator(options).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i], b.records()[i]) << "record " << i;
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  WorkloadOptions options = OfficeWorkload();
  options.duration = kMinute;
  Trace a = WorkloadGenerator(options).Generate();
  options.seed += 1;
  Trace b = WorkloadGenerator(options).Generate();
  EXPECT_NE(a.ToText(), b.ToText());
}

TEST(GeneratorTest, TimesAreMonotonic) {
  WorkloadOptions options = OfficeWorkload();
  options.duration = 2 * kMinute;
  Trace trace = WorkloadGenerator(options).Generate();
  SimTime last = 0;
  for (const TraceRecord& r : trace.records()) {
    EXPECT_GE(r.at, last);
    last = r.at;
  }
}

TEST(GeneratorTest, TraceIsSemanticallyConsistent) {
  // Every read/write/unlink targets a file that exists at that point.
  WorkloadOptions options = OfficeWorkload();
  options.duration = 2 * kMinute;
  Trace trace = WorkloadGenerator(options).Generate();
  std::unordered_set<std::string> dirs;
  std::unordered_set<std::string> files;
  for (const TraceRecord& r : trace.records()) {
    switch (r.op) {
      case TraceOp::kMkdir:
        EXPECT_EQ(dirs.count(r.path), 0u);
        dirs.insert(r.path);
        break;
      case TraceOp::kCreate:
        EXPECT_EQ(files.count(r.path), 0u) << r.path;
        files.insert(r.path);
        break;
      case TraceOp::kUnlink:
        EXPECT_EQ(files.count(r.path), 1u) << r.path;
        files.erase(r.path);
        break;
      case TraceOp::kWrite:
      case TraceOp::kRead:
      case TraceOp::kStat:
        EXPECT_EQ(files.count(r.path), 1u) << r.path;
        break;
      default:
        break;
    }
  }
}

TEST(GeneratorTest, OfficeMixRoughlyMatchesConfig) {
  WorkloadOptions options = OfficeWorkload();
  options.duration = 20 * kMinute;
  Trace trace = WorkloadGenerator(options).Generate();
  std::map<TraceOp, int> counts;
  for (const TraceRecord& r : trace.records()) {
    counts[r.op]++;
  }
  const double total = static_cast<double>(trace.size());
  // Reads should outnumber deletes heavily; writes are plentiful. (The
  // population phase and create-attached writes skew exact fractions.)
  EXPECT_GT(counts[TraceOp::kRead], counts[TraceOp::kUnlink]);
  EXPECT_GT(counts[TraceOp::kWrite] / total, 0.2);
  EXPECT_GT(counts[TraceOp::kRead] / total, 0.2);
}

TEST(GeneratorTest, ShortLivedFilesActuallyDie) {
  WorkloadOptions options = WriteHotWorkload();
  options.duration = 10 * kMinute;
  Trace trace = WorkloadGenerator(options).Generate();
  int creates = 0;
  int unlinks = 0;
  for (const TraceRecord& r : trace.records()) {
    creates += r.op == TraceOp::kCreate;
    unlinks += r.op == TraceOp::kUnlink;
  }
  // Most created files are deleted within the trace (p_short_lived = 0.75
  // with 15 s mean lifetime over a 10 min trace).
  EXPECT_GT(unlinks, creates / 2);
}

TEST(GeneratorTest, FileSizesAreSkewedSmall) {
  WorkloadOptions options = OfficeWorkload();
  options.duration = 10 * kMinute;
  Trace trace = WorkloadGenerator(options).Generate();
  uint64_t small = 0;
  uint64_t creates_with_write = 0;
  for (size_t i = 0; i + 1 < trace.size(); ++i) {
    if (trace.records()[i].op == TraceOp::kCreate &&
        trace.records()[i + 1].op == TraceOp::kWrite &&
        trace.records()[i + 1].path == trace.records()[i].path) {
      ++creates_with_write;
      if (trace.records()[i + 1].length < 8 * 1024) {
        ++small;
      }
    }
  }
  ASSERT_GT(creates_with_write, 50u);
  // The bounded-Pareto size distribution makes most files small.
  EXPECT_GT(static_cast<double>(small) / creates_with_write, 0.6);
}

TEST(GeneratorTest, WriteHotProfileWritesMoreThanOffice) {
  WorkloadOptions office = OfficeWorkload();
  office.duration = 5 * kMinute;
  WorkloadOptions hot = WriteHotWorkload();
  hot.duration = 5 * kMinute;
  const Trace office_trace = WorkloadGenerator(office).Generate();
  const Trace hot_trace = WorkloadGenerator(hot).Generate();
  const double office_ratio =
      static_cast<double>(office_trace.TotalBytesWritten()) /
      static_cast<double>(office_trace.TotalBytesRead() + 1);
  const double hot_ratio =
      static_cast<double>(hot_trace.TotalBytesWritten()) /
      static_cast<double>(hot_trace.TotalBytesRead() + 1);
  EXPECT_GT(hot_ratio, office_ratio);
}

TEST(GeneratorTest, ReadMostlyProfileReadsDominate) {
  WorkloadOptions options = ReadMostlyWorkload();
  options.duration = 5 * kMinute;
  Trace trace = WorkloadGenerator(options).Generate();
  EXPECT_GT(trace.TotalBytesRead(), 2 * trace.TotalBytesWritten());
}

}  // namespace
}  // namespace ssmc
