#include "src/support/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace ssmc {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const uint64_t first = a.Next();
  a.Next();
  a.Seed(7);
  EXPECT_EQ(a.Next(), first);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowOneIsZero) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(42);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  // Mean should be near 0.5.
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(42);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextExponential(10.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(RngTest, GaussianIsRoughlyStandard) {
  Rng rng(42);
  double sum = 0;
  double sumsq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextBoundedPareto(1.1, 100, 1000000);
    EXPECT_GE(v, 100.0 * (1 - 1e-9));
    EXPECT_LE(v, 1000000.0 * (1 + 1e-9));
  }
}

TEST(RngTest, BoundedParetoIsSkewedTowardSmall) {
  Rng rng(42);
  int small = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBoundedPareto(1.2, 1, 1 << 20) < 16) {
      ++small;
    }
  }
  // Heavy-tailed: the majority of samples are tiny.
  EXPECT_GT(small, n / 2);
}

TEST(ZipfSamplerTest, RankZeroIsMostFrequent) {
  Rng rng(42);
  ZipfSampler zipf(100, 1.0);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  // Rank 0 of a 100-item zipf(1.0) distribution has weight ~19%.
  EXPECT_NEAR(static_cast<double>(counts[0]) / 20000, 0.19, 0.03);
}

TEST(ZipfSamplerTest, AllIndicesReachable) {
  Rng rng(42);
  ZipfSampler zipf(5, 0.5);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 5000; ++i) {
    seen[zipf.Sample(rng)] = true;
  }
  for (bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(ZipfSamplerTest, SkewZeroIsUniform) {
  Rng rng(42);
  ZipfSampler zipf(10, 0.0);
  std::map<size_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  for (const auto& [idx, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02) << "index " << idx;
  }
}

}  // namespace
}  // namespace ssmc
