#include "src/device/flash_device.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace ssmc {
namespace {

FlashSpec TestSpec() {
  FlashSpec spec;
  spec.name = "test flash";
  spec.read = {100, 10};
  spec.program = {1000, 1000};
  spec.erase_sector_bytes = 1024;
  spec.erase_ns = 1 * kMillisecond;
  spec.endurance_cycles = 10;
  spec.active_mw_per_mib = 30;
  spec.standby_mw_per_mib = 0.05;
  return spec;
}

class FlashDeviceTest : public ::testing::Test {
 protected:
  SimClock clock_;
  FlashSpec spec_ = TestSpec();
};

TEST_F(FlashDeviceTest, GeometryDerivedFromSpec) {
  FlashDevice flash(spec_, 64 * 1024, 4, clock_);
  EXPECT_EQ(flash.capacity_bytes(), 64u * 1024);
  EXPECT_EQ(flash.sector_bytes(), 1024u);
  EXPECT_EQ(flash.num_sectors(), 64u);
  EXPECT_EQ(flash.num_banks(), 4);
  EXPECT_EQ(flash.sectors_per_bank(), 16u);
  EXPECT_EQ(flash.BankOfSector(0), 0);
  EXPECT_EQ(flash.BankOfSector(15), 0);
  EXPECT_EQ(flash.BankOfSector(16), 1);
  EXPECT_EQ(flash.BankOfAddress(17 * 1024), 1);
}

TEST_F(FlashDeviceTest, FreshDeviceIsErased) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  for (uint64_t s = 0; s < flash.num_sectors(); ++s) {
    EXPECT_TRUE(flash.IsSectorErased(s));
    EXPECT_FALSE(flash.IsSectorBad(s));
    EXPECT_EQ(flash.EraseCount(s), 0u);
  }
}

TEST_F(FlashDeviceTest, ProgramThenReadRoundTrips) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> data(256);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_TRUE(flash.Program(512, data).ok());
  std::vector<uint8_t> out(256);
  ASSERT_TRUE(flash.Read(512, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(FlashDeviceTest, ReadAdvancesClockBySpecLatency) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> out(100);
  Result<Duration> r = flash.Read(0, out);
  ASSERT_TRUE(r.ok());
  // access 100 + 10/byte * 100 = 1100 ns.
  EXPECT_EQ(r.value(), 1100);
  EXPECT_EQ(clock_.now(), 1100);
}

TEST_F(FlashDeviceTest, ProgramIsSlowerThanRead) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> data(100, 0xAB);
  Result<Duration> w = flash.Program(0, data);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.value(), 1000 + 1000 * 100);
}

TEST_F(FlashDeviceTest, ProgramToNonErasedFails) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> data(16, 0x00);
  ASSERT_TRUE(flash.Program(0, data).ok());
  Result<Duration> again = flash.Program(0, data);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), ErrorCode::kFailedPrecondition);
}

TEST_F(FlashDeviceTest, EraseRestoresProgrammability) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> data(16, 0x77);
  ASSERT_TRUE(flash.Program(0, data).ok());
  EXPECT_FALSE(flash.IsSectorErased(0));
  ASSERT_TRUE(flash.EraseSector(0).ok());
  EXPECT_TRUE(flash.IsSectorErased(0));
  EXPECT_EQ(flash.EraseCount(0), 1u);
  EXPECT_TRUE(flash.Program(0, data).ok());
}

TEST_F(FlashDeviceTest, ProgramAcrossSectorBoundaryRejected) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> data(64, 1);
  Result<Duration> r = flash.Program(1024 - 32, data);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(FlashDeviceTest, ReadAcrossBankBoundaryRejected) {
  FlashDevice flash(spec_, 64 * 1024, 4, clock_);
  std::vector<uint8_t> out(64);
  // Bank 0 ends at 16 KiB.
  Result<Duration> r = flash.Read(16 * 1024 - 32, out);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(FlashDeviceTest, OutOfRangeOpsRejected) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> buf(32);
  EXPECT_EQ(flash.Read(16 * 1024, buf).status().code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(flash.Program(16 * 1024 - 16, buf).status().code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(flash.EraseSector(99).status().code(), ErrorCode::kOutOfRange);
}

TEST_F(FlashDeviceTest, NonBlockingProgramDoesNotAdvanceClock) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> data(16, 1);
  const SimTime before = clock_.now();
  Result<Duration> r = flash.Program(0, data, kFlushIo);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(clock_.now(), before);
  EXPECT_GT(flash.BankBusyUntil(0), before);
}

TEST_F(FlashDeviceTest, ReadStallsBehindEraseInSameBank) {
  FlashDevice flash(spec_, 64 * 1024, 4, clock_);
  ASSERT_TRUE(flash.EraseSector(0, kCleanerIo).ok());
  const SimTime busy_until = flash.BankBusyUntil(0);
  std::vector<uint8_t> out(16);
  Result<Duration> r = flash.Read(0, out);
  ASSERT_TRUE(r.ok());
  // The read had to wait the full erase (1 ms) plus its own time.
  EXPECT_GE(clock_.now(), busy_until);
  EXPECT_GE(r.value(), spec_.erase_ns);
  EXPECT_GT(flash.stats().read_stall_ns.value(), 0u);
}

TEST_F(FlashDeviceTest, ReadProceedsInOtherBankDuringErase) {
  FlashDevice flash(spec_, 64 * 1024, 4, clock_);
  ASSERT_TRUE(flash.EraseSector(0, kCleanerIo).ok());
  std::vector<uint8_t> out(16);
  // Bank 1 begins at sector 16 -> address 16 KiB.
  Result<Duration> r = flash.Read(16 * 1024, out);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.value(), spec_.erase_ns);
  EXPECT_EQ(flash.stats().read_stall_ns.value(), 0u);
}

TEST_F(FlashDeviceTest, WearOutEventuallyFailsSector) {
  spec_.endurance_cycles = 5;
  FlashDevice flash(spec_, 16 * 1024, 1, clock_, /*seed=*/7);
  // Erase far past endurance; must fail by 2x endurance.
  bool failed = false;
  for (int i = 0; i < 20 && !failed; ++i) {
    failed = !flash.EraseSector(0).ok();
  }
  EXPECT_TRUE(failed);
  EXPECT_TRUE(flash.IsSectorBad(0));
  EXPECT_EQ(flash.stats().bad_sectors.value(), 1u);
  // Reads and further erases now fail with DATA_LOSS.
  std::vector<uint8_t> out(8);
  EXPECT_EQ(flash.Read(0, out).status().code(), ErrorCode::kDataLoss);
  EXPECT_EQ(flash.EraseSector(0).status().code(), ErrorCode::kDataLoss);
}

TEST_F(FlashDeviceTest, WearWithinEnduranceNeverFails) {
  spec_.endurance_cycles = 50;
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(flash.EraseSector(3).ok()) << "cycle " << i;
  }
  EXPECT_FALSE(flash.IsSectorBad(3));
}

TEST_F(FlashDeviceTest, WearSummaryTracksDistribution) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  ASSERT_TRUE(flash.EraseSector(0).ok());
  ASSERT_TRUE(flash.EraseSector(0).ok());
  ASSERT_TRUE(flash.EraseSector(1).ok());
  const FlashDevice::WearSummary w = flash.SummarizeWear();
  EXPECT_EQ(w.min_erases, 0u);
  EXPECT_EQ(w.max_erases, 2u);
  EXPECT_NEAR(w.mean_erases, 3.0 / 16.0, 1e-9);
  EXPECT_GT(w.stddev_erases, 0.0);
  EXPECT_EQ(w.bad_sectors, 0u);
}

TEST_F(FlashDeviceTest, StatsCountOperations) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> buf(64, 1);
  ASSERT_TRUE(flash.Program(0, buf).ok());
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(flash.Read(0, out).ok());
  ASSERT_TRUE(flash.EraseSector(1).ok());
  EXPECT_EQ(flash.stats().programs.value(), 1u);
  EXPECT_EQ(flash.stats().programmed_bytes.value(), 64u);
  EXPECT_EQ(flash.stats().reads.value(), 1u);
  EXPECT_EQ(flash.stats().read_bytes.value(), 64u);
  EXPECT_EQ(flash.stats().erases.value(), 1u);
}

TEST_F(FlashDeviceTest, EnergyAccumulatesWithActivity) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> out(128);
  ASSERT_TRUE(flash.Read(0, out).ok());
  EXPECT_GT(flash.energy().active_nanojoules(), 0.0);
}

TEST_F(FlashDeviceTest, IdleEnergyAccountedOnDemand) {
  FlashDevice flash(spec_, 1024 * 1024, 1, clock_);
  clock_.Advance(kSecond);
  flash.AccountIdleEnergy();
  EXPECT_GT(flash.energy().idle_nanojoules(), 0.0);
}

TEST_F(FlashDeviceTest, TornProgramAppliesPrefixAndFails) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> data(64);
  std::iota(data.begin(), data.end(), 1);
  flash.FailNextProgramAfterBytes(24);
  const SimTime before = clock_.now();
  Result<Duration> r = flash.Program(128, data);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInternal);
  // Injected before scheduling: no time passed, no program counted.
  EXPECT_EQ(clock_.now(), before);
  EXPECT_EQ(flash.stats().programs.value(), 0u);
  EXPECT_EQ(flash.stats().torn_programs.value(), 1u);
  // The first 24 bytes survived; the rest of the range is still erased.
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(flash.Read(128, out).ok());
  EXPECT_TRUE(std::equal(out.begin(), out.begin() + 24, data.begin()));
  for (size_t i = 24; i < out.size(); ++i) {
    EXPECT_EQ(out[i], 0xFF) << "byte " << i;
  }
}

TEST_F(FlashDeviceTest, TornProgramSkipCountArmsLaterWrite) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> data(16, 0x5A);
  flash.FailNextProgramAfterBytes(0, /*after_programs=*/2);
  ASSERT_TRUE(flash.Program(0, data).ok());
  ASSERT_TRUE(flash.Program(64, data).ok());
  Result<Duration> r = flash.Program(256, data);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInternal);
  EXPECT_EQ(flash.stats().torn_programs.value(), 1u);
  // bytes=0: the torn write left nothing behind and the hook disarmed, so
  // the retry succeeds and round-trips.
  ASSERT_TRUE(flash.Program(256, data).ok());
  std::vector<uint8_t> out(16);
  ASSERT_TRUE(flash.Read(256, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(FlashDeviceTest, TornProgramExtentAppliesPrefix) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  ExtentPool pool(64);
  PayloadRef payload = pool.Allocate();
  for (size_t i = 0; i < 64; ++i) {
    payload.MutableData()[i] = static_cast<uint8_t>(i + 1);
  }
  flash.FailNextProgramAfterBytes(10);
  Result<Duration> r = flash.ProgramExtent(512, payload, kForegroundIo);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInternal);
  EXPECT_EQ(flash.stats().torn_programs.value(), 1u);
  std::vector<uint8_t> out(64);
  ASSERT_TRUE(flash.Read(512, out).ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i], static_cast<uint8_t>(i + 1)) << "byte " << i;
  }
  for (size_t i = 10; i < 64; ++i) {
    EXPECT_EQ(out[i], 0xFF) << "byte " << i;
  }
}

TEST_F(FlashDeviceTest, InterruptedEraseConsumesWearKeepsContents) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> data(16, 0x77);
  ASSERT_TRUE(flash.Program(0, data).ok());
  flash.InterruptNextErase();
  Result<Duration> r = flash.EraseSector(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInternal);
  // Wear cycle consumed, contents untouched, hook disarmed.
  EXPECT_EQ(flash.EraseCount(0), 1u);
  EXPECT_EQ(flash.stats().interrupted_erases.value(), 1u);
  EXPECT_FALSE(flash.IsSectorErased(0));
  std::vector<uint8_t> out(16);
  ASSERT_TRUE(flash.Read(0, out).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(flash.EraseSector(0).ok());
  EXPECT_TRUE(flash.IsSectorErased(0));
  EXPECT_EQ(flash.EraseCount(0), 2u);
}

TEST_F(FlashDeviceTest, EmptyReadAndProgramAreFree) {
  FlashDevice flash(spec_, 16 * 1024, 1, clock_);
  std::vector<uint8_t> empty;
  Result<Duration> r = flash.Read(0, std::span<uint8_t>(empty));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0);
  EXPECT_EQ(clock_.now(), 0);
}

}  // namespace
}  // namespace ssmc
