// MemoryFileSystem-specific behavior: write buffering, copy-on-write from
// flash, direct flash reads, write avoidance, and block-location reporting.

#include "src/fs/memory_fs.h"

#include <gtest/gtest.h>

#include <memory>

namespace ssmc {
namespace {

class MemoryFsTest : public ::testing::Test {
 protected:
  void SetUp() override { Recreate(MemoryFsOptions{}); }

  void Recreate(MemoryFsOptions options) {
    // Tear down in reverse dependency order before rebuilding: the file
    // system detaches from the storage manager's residency tracker in its
    // destructor, so it must not outlive the manager it references.
    fs_.reset();
    manager_.reset();
    store_.reset();
    flash_.reset();
    dram_.reset();
    DramSpec dram_spec;
    dram_spec.read = {80, 25};
    dram_spec.write = {80, 25};
    dram_spec.active_mw_per_mib = 150;
    dram_spec.standby_mw_per_mib = 1.5;
    dram_ = std::make_unique<DramDevice>(dram_spec, 2 * kMiB, clock_);

    FlashSpec flash_spec;
    flash_spec.read = {150, 100};
    flash_spec.program = {2000, 10000};
    flash_spec.erase_sector_bytes = 4096;
    flash_spec.erase_ns = 100 * kMillisecond;
    flash_spec.endurance_cycles = 1000000;
    flash_ = std::make_unique<FlashDevice>(flash_spec, 8 * kMiB, 2, clock_);

    store_ = std::make_unique<FlashStore>(*flash_, FlashStoreOptions{});
    manager_ = std::make_unique<StorageManager>(*dram_, *store_, 512);
    fs_ = std::make_unique<MemoryFileSystem>(*manager_, options);
  }

  std::vector<uint8_t> Pattern(size_t n, uint8_t seed = 1) {
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<uint8_t>(seed + i * 13);
    }
    return v;
  }

  SimClock clock_;
  std::unique_ptr<DramDevice> dram_;
  std::unique_ptr<FlashDevice> flash_;
  std::unique_ptr<FlashStore> store_;
  std::unique_ptr<StorageManager> manager_;
  std::unique_ptr<MemoryFileSystem> fs_;
};

TEST_F(MemoryFsTest, WritesStayInDramUntilSync) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(2048)).ok());
  EXPECT_EQ(store_->stats().user_writes.value(), 0u);
  EXPECT_EQ(fs_->write_buffer().dirty_pages(), 4u);
  ASSERT_TRUE(fs_->Sync().ok());
  EXPECT_EQ(store_->stats().user_writes.value(), 4u);
  EXPECT_EQ(fs_->write_buffer().dirty_pages(), 0u);
}

TEST_F(MemoryFsTest, ShortLivedFileNeverTouchesFlash) {
  // The core write-avoidance effect: create, write, delete before any flush.
  ASSERT_TRUE(fs_->Create("/tmp1").ok());
  ASSERT_TRUE(fs_->Write("/tmp1", 0, Pattern(4096)).ok());
  ASSERT_TRUE(fs_->Unlink("/tmp1").ok());
  ASSERT_TRUE(fs_->Sync().ok());
  EXPECT_EQ(store_->stats().user_writes.value(), 0u);
  EXPECT_EQ(flash_->stats().programs.value(), 0u);
  EXPECT_GE(fs_->write_buffer().stats().dropped_writes.value(), 8u);
}

TEST_F(MemoryFsTest, CleanReadsComeDirectlyFromFlash) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  const auto data = Pattern(1024);
  ASSERT_TRUE(fs_->Write("/f", 0, data).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  std::vector<uint8_t> out(1024);
  ASSERT_TRUE(fs_->Read("/f", 0, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(fs_->stats().flash_direct_read_bytes.value(), 1024u);
  EXPECT_EQ(fs_->stats().buffered_read_bytes.value(), 0u);
}

TEST_F(MemoryFsTest, DirtyReadsComeFromBuffer) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(512)).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(fs_->Read("/f", 0, out).ok());
  EXPECT_EQ(fs_->stats().buffered_read_bytes.value(), 512u);
  EXPECT_EQ(fs_->stats().flash_direct_read_bytes.value(), 0u);
}

TEST_F(MemoryFsTest, PartialReadFromFlashIsByteGranular) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(512)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  const uint64_t bytes_before = flash_->stats().read_bytes.value();
  std::vector<uint8_t> out(10);
  ASSERT_TRUE(fs_->Read("/f", 100, out).ok());
  // Only ~10 bytes crossed the flash interface, not a whole block.
  EXPECT_LE(flash_->stats().read_bytes.value() - bytes_before, 16u);
}

TEST_F(MemoryFsTest, PartialOverwriteOfFlashBlockDoesCow) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(512)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  // Small write into the flushed block triggers a flash->DRAM copy.
  ASSERT_TRUE(fs_->Write("/f", 100, Pattern(10, 0xEE)).ok());
  EXPECT_EQ(fs_->stats().cow_block_copies.value(), 1u);
  // Contents merge old and new.
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(fs_->Read("/f", 0, out).ok());
  const auto original = Pattern(512);
  EXPECT_EQ(out[99], original[99]);
  EXPECT_EQ(out[100], Pattern(10, 0xEE)[0]);
  EXPECT_EQ(out[110], original[110]);
}

TEST_F(MemoryFsTest, FullBlockOverwriteSkipsCow) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(512)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(512, 3)).ok());
  EXPECT_EQ(fs_->stats().cow_block_copies.value(), 0u);
}

TEST_F(MemoryFsTest, TickFlushHonorsAge) {
  MemoryFsOptions options;
  options.flush_age = 30 * kSecond;
  Recreate(options);
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(512)).ok());
  clock_.Advance(10 * kSecond);
  ASSERT_TRUE(fs_->TickFlush(clock_.now()).ok());
  EXPECT_EQ(store_->stats().user_writes.value(), 0u);  // Still young.
  clock_.Advance(25 * kSecond);
  ASSERT_TRUE(fs_->TickFlush(clock_.now()).ok());
  EXPECT_EQ(store_->stats().user_writes.value(), 1u);  // Aged out.
}

TEST_F(MemoryFsTest, UnbufferedModeWritesThrough) {
  MemoryFsOptions options;
  options.write_buffer_pages = 0;
  Recreate(options);
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(1024)).ok());
  EXPECT_EQ(store_->stats().user_writes.value(), 2u);
}

TEST_F(MemoryFsTest, OverwriteChurnAbsorbedByBuffer) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fs_->Write("/f", 0, Pattern(512, static_cast<uint8_t>(i))).ok());
  }
  ASSERT_TRUE(fs_->Sync().ok());
  // 50 writes, 1 flash program.
  EXPECT_EQ(store_->stats().user_writes.value(), 1u);
}

TEST_F(MemoryFsTest, BlockLocationsReportPlacement) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(512)).ok());     // Block 0 dirty.
  ASSERT_TRUE(fs_->Write("/f", 1024, Pattern(512)).ok());  // Block 2 dirty.
  ASSERT_TRUE(fs_->Sync().ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(512, 5)).ok());  // Block 0 re-dirty.
  Result<std::vector<BlockLocation>> locs = fs_->BlockLocations("/f");
  ASSERT_TRUE(locs.ok());
  ASSERT_EQ(locs.value().size(), 3u);
  EXPECT_EQ(locs.value()[0].kind, BlockLocation::Kind::kBuffered);
  EXPECT_EQ(locs.value()[1].kind, BlockLocation::Kind::kHole);
  EXPECT_EQ(locs.value()[2].kind, BlockLocation::Kind::kFlash);
}

TEST_F(MemoryFsTest, FileIdStableAcrossWrites) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  Result<uint64_t> id1 = fs_->FileId("/f");
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(512)).ok());
  Result<uint64_t> id2 = fs_->FileId("/f");
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(id1.value(), id2.value());
  EXPECT_EQ(fs_->FileId("/missing").status().code(), ErrorCode::kNotFound);
}

TEST_F(MemoryFsTest, LoseBufferedDataDropsDirtyOnly) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(1024)).ok());  // 2 dirty blocks.
  ASSERT_TRUE(fs_->Sync().ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(512, 9)).ok());  // 1 dirty block.
  const uint64_t lost = fs_->LoseBufferedData();
  EXPECT_EQ(lost, 512u);
  // The flash copy (previous content) of the second block still reads back.
  const auto original = Pattern(1024);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(fs_->Read("/f", 512, out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(original.begin() + 512, original.end()));
  // The first block's dirty overwrite was lost; its flash copy (the original
  // first block) is what survives.
  ASSERT_TRUE(fs_->Read("/f", 0, out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(original.begin(), original.begin() + 512));
}

TEST_F(MemoryFsTest, MetadataOpsCostDramTimeOnly) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  ASSERT_TRUE(fs_->Create("/d/f").ok());
  const SimTime before = clock_.now();
  ASSERT_TRUE(fs_->Stat("/d/f").ok());
  const Duration stat_cost = clock_.now() - before;
  // A stat is a couple of DRAM accesses: well under a microsecond, and no
  // flash or disk I/O.
  EXPECT_LT(stat_cost, 10 * kMicrosecond);
  EXPECT_EQ(flash_->stats().reads.value(), 0u);
}

// --- Metadata checkpointing & crash recovery -----------------------------

class MemoryFsCheckpointTest : public MemoryFsTest {
 protected:
  // Simulates total battery failure + reboot: drops the buffer, builds a
  // fresh storage manager over the surviving flash, recovers.
  Result<std::unique_ptr<MemoryFileSystem>> CrashAndRecover(
      RecoveryReport* report) {
    fs_->LoseBufferedData();
    fs_.reset();  // DRAM-resident metadata is gone.
    manager_ = std::make_unique<StorageManager>(*dram_, *store_, 512);
    return MemoryFileSystem::RecoverFromCheckpoint(*manager_,
                                                   MemoryFsOptions{}, report);
  }
};

TEST_F(MemoryFsCheckpointTest, RecoverRestoresNamespaceAndData) {
  ASSERT_TRUE(fs_->Mkdir("/docs").ok());
  ASSERT_TRUE(fs_->Mkdir("/docs/work").ok());
  ASSERT_TRUE(fs_->Create("/docs/work/report").ok());
  const auto data = Pattern(3000, 7);
  ASSERT_TRUE(fs_->Write("/docs/work/report", 0, data).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  ASSERT_TRUE(fs_->CheckpointMetadata().ok());

  RecoveryReport report;
  auto recovered = CrashAndRecover(&report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.directories_recovered, 2u);
  EXPECT_EQ(report.files_recovered, 1u);
  EXPECT_GE(report.bytes_recovered, 3000u);

  Result<FileInfo> info = recovered.value()->Stat("/docs/work/report");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 3000u);
  std::vector<uint8_t> out(3000);
  Result<uint64_t> read = recovered.value()->Read("/docs/work/report", 0, out);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(out, data);
}

TEST_F(MemoryFsCheckpointTest, RecoveryWithoutCheckpointFails) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Sync().ok());
  RecoveryReport report;
  auto recovered = CrashAndRecover(&report);
  EXPECT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), ErrorCode::kFailedPrecondition);
}

TEST_F(MemoryFsCheckpointTest, DataAfterCheckpointIsLost) {
  ASSERT_TRUE(fs_->Create("/old").ok());
  ASSERT_TRUE(fs_->Write("/old", 0, Pattern(512)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  ASSERT_TRUE(fs_->CheckpointMetadata().ok());
  // Created after the checkpoint: not in the recovered namespace.
  ASSERT_TRUE(fs_->Create("/new").ok());
  ASSERT_TRUE(fs_->Write("/new", 0, Pattern(512)).ok());
  ASSERT_TRUE(fs_->Sync().ok());

  RecoveryReport report;
  auto recovered = CrashAndRecover(&report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value()->Stat("/old").ok());
  EXPECT_EQ(recovered.value()->Stat("/new").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(MemoryFsCheckpointTest, UnflushedBlocksRecoverAsHoles) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(1024, 0xAA)).ok());
  // Checkpoint while the data is still only in the (battery-backed) buffer.
  ASSERT_TRUE(fs_->CheckpointMetadata().ok());
  RecoveryReport report;
  auto recovered = CrashAndRecover(&report);
  ASSERT_TRUE(recovered.ok());
  // The file exists with its size, but the never-flushed content is gone.
  Result<FileInfo> info = recovered.value()->Stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 1024u);
  std::vector<uint8_t> out(1024);
  Result<uint64_t> read = recovered.value()->Read("/f", 0, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, std::vector<uint8_t>(1024, 0));
  EXPECT_EQ(report.bytes_recovered, 0u);
}

TEST_F(MemoryFsCheckpointTest, BlocksFreedAfterCheckpointRecoverAsHoles) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(512, 0x33)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  ASSERT_TRUE(fs_->CheckpointMetadata().ok());
  ASSERT_TRUE(fs_->Unlink("/f").ok());  // Frees (trims) the flash block.

  RecoveryReport report;
  auto recovered = CrashAndRecover(&report);
  ASSERT_TRUE(recovered.ok());
  // The stale namespace resurrects the file, but its trimmed block must
  // read as a hole, never as someone else's data.
  std::vector<uint8_t> out(512);
  Result<uint64_t> read = recovered.value()->Read("/f", 0, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, std::vector<uint8_t>(512, 0));
}

TEST_F(MemoryFsCheckpointTest, RepeatedCheckpointsDoNotLeakFlash) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(4096)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  ASSERT_TRUE(fs_->CheckpointMetadata().ok());
  const uint64_t free_after_first = manager_->free_flash_blocks();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs_->CheckpointMetadata().ok());
  }
  // Each checkpoint replaces the previous one's blocks.
  EXPECT_EQ(manager_->free_flash_blocks(), free_after_first);
}

TEST_F(MemoryFsCheckpointTest, LargeNamespaceSurvivesRoundTrip) {
  // Enough files that the checkpoint index must chain past one block.
  for (int d = 0; d < 4; ++d) {
    const std::string dir = "/d" + std::to_string(d);
    ASSERT_TRUE(fs_->Mkdir(dir).ok());
    for (int f = 0; f < 60; ++f) {
      const std::string path = dir + "/f" + std::to_string(f);
      ASSERT_TRUE(fs_->Create(path).ok());
      ASSERT_TRUE(
          fs_->Write(path, 0, Pattern(700, static_cast<uint8_t>(f))).ok());
    }
  }
  ASSERT_TRUE(fs_->Sync().ok());
  ASSERT_TRUE(fs_->CheckpointMetadata().ok());

  RecoveryReport report;
  auto recovered = CrashAndRecover(&report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.files_recovered, 240u);
  EXPECT_EQ(report.directories_recovered, 4u);
  std::vector<uint8_t> out(700);
  ASSERT_TRUE(recovered.value()->Read("/d2/f33", 0, out).ok());
  EXPECT_EQ(out, Pattern(700, 33));
}

TEST_F(MemoryFsTest, DeepHierarchyWorks) {
  std::string path;
  for (int i = 0; i < 10; ++i) {
    path += "/d" + std::to_string(i);
    ASSERT_TRUE(fs_->Mkdir(path).ok());
  }
  ASSERT_TRUE(fs_->Create(path + "/leaf").ok());
  ASSERT_TRUE(fs_->Write(path + "/leaf", 0, Pattern(100)).ok());
  Result<FileInfo> info = fs_->Stat(path + "/leaf");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 100u);
}

}  // namespace
}  // namespace ssmc
