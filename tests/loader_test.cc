#include "src/vm/loader.h"

#include <gtest/gtest.h>

#include "src/core/machine.h"
#include "src/fs/disk_fs.h"

namespace ssmc {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  LoaderTest() : machine_(OmniBookConfig()) {}

  Program MakeProgram(uint64_t text_bytes) {
    Program program;
    program.path = "/bin/app";
    program.text_bytes = text_bytes;
    program.data_bytes = 8 * kKiB;
    return program;
  }

  MobileComputer machine_;
  ProgramLoader loader_;
};

TEST_F(LoaderTest, InstallPutsImageInFlash) {
  ASSERT_TRUE(machine_.fs().Mkdir("/bin").ok());
  const Program program = MakeProgram(64 * kKiB);
  ASSERT_TRUE(InstallProgram(machine_.fs(), program).ok());
  Result<std::vector<BlockLocation>> locs =
      machine_.fs().BlockLocations(program.path);
  ASSERT_TRUE(locs.ok());
  for (const BlockLocation& loc : locs.value()) {
    EXPECT_EQ(loc.kind, BlockLocation::Kind::kFlash);
  }
}

TEST_F(LoaderTest, XipLaunchIsFastAndUsesNoDramForText) {
  ASSERT_TRUE(machine_.fs().Mkdir("/bin").ok());
  const Program program = MakeProgram(64 * kKiB);
  ASSERT_TRUE(InstallProgram(machine_.fs(), program).ok());

  AddressSpace& space = machine_.CreateAddressSpace();
  Result<LaunchResult> launch = loader_.Launch(
      space, machine_.fs(), program, LaunchStrategy::kExecuteInPlace);
  ASSERT_TRUE(launch.ok());
  // Launch did not read the text: only mapping metadata cost.
  EXPECT_LT(launch.value().launch_latency, kMillisecond);
  EXPECT_EQ(launch.value().dram_pages_after_launch, 0u);
}

TEST_F(LoaderTest, CopyLaunchReadsWholeTextIntoDram) {
  ASSERT_TRUE(machine_.fs().Mkdir("/bin").ok());
  const Program program = MakeProgram(64 * kKiB);
  ASSERT_TRUE(InstallProgram(machine_.fs(), program).ok());

  AddressSpace& space = machine_.CreateAddressSpace();
  Result<LaunchResult> launch = loader_.Launch(
      space, machine_.fs(), program, LaunchStrategy::kCopyFromFlash);
  ASSERT_TRUE(launch.ok());
  EXPECT_EQ(launch.value().dram_pages_after_launch, 64u * kKiB / 512);
  EXPECT_GT(launch.value().launch_latency, kMillisecond);
}

TEST_F(LoaderTest, XipLaunchMuchFasterThanCopy) {
  ASSERT_TRUE(machine_.fs().Mkdir("/bin").ok());
  const Program program = MakeProgram(128 * kKiB);
  ASSERT_TRUE(InstallProgram(machine_.fs(), program).ok());

  AddressSpace& xip_space = machine_.CreateAddressSpace();
  Result<LaunchResult> xip = loader_.Launch(
      xip_space, machine_.fs(), program, LaunchStrategy::kExecuteInPlace);
  ASSERT_TRUE(xip.ok());

  Program copy_program = program;
  copy_program.path = "/bin/app2";
  ASSERT_TRUE(InstallProgram(machine_.fs(), copy_program).ok());
  AddressSpace& copy_space = machine_.CreateAddressSpace();
  Result<LaunchResult> copy = loader_.Launch(
      copy_space, machine_.fs(), copy_program, LaunchStrategy::kCopyFromFlash);
  ASSERT_TRUE(copy.ok());

  EXPECT_LT(xip.value().launch_latency * 10, copy.value().launch_latency);
}

TEST_F(LoaderTest, ExecutionWorksAfterBothLaunchStyles) {
  ASSERT_TRUE(machine_.fs().Mkdir("/bin").ok());
  const Program program = MakeProgram(32 * kKiB);
  ASSERT_TRUE(InstallProgram(machine_.fs(), program).ok());

  AddressSpace& space = machine_.CreateAddressSpace();
  Result<LaunchResult> launch = loader_.Launch(
      space, machine_.fs(), program, LaunchStrategy::kExecuteInPlace);
  ASSERT_TRUE(launch.ok());
  Result<Duration> ran = loader_.Execute(space, launch.value(), 3);
  ASSERT_TRUE(ran.ok());
  EXPECT_GT(ran.value(), 0);
}

TEST_F(LoaderTest, XipSteadyStateSlowerPerPassButCheaperOverall) {
  ASSERT_TRUE(machine_.fs().Mkdir("/bin").ok());
  const Program xip_program = MakeProgram(64 * kKiB);
  ASSERT_TRUE(InstallProgram(machine_.fs(), xip_program).ok());
  Program copy_program = MakeProgram(64 * kKiB);
  copy_program.path = "/bin/app2";
  ASSERT_TRUE(InstallProgram(machine_.fs(), copy_program).ok());
  // Let the background installation writes drain out of the flash banks:
  // launches measure steady state, not install interference.
  machine_.Idle(10 * kSecond);

  AddressSpace& xip_space = machine_.CreateAddressSpace();
  Result<LaunchResult> xip = loader_.Launch(
      xip_space, machine_.fs(), xip_program, LaunchStrategy::kExecuteInPlace);
  ASSERT_TRUE(xip.ok());
  Result<Duration> xip_run = loader_.Execute(xip_space, xip.value(), 2);
  ASSERT_TRUE(xip_run.ok());

  AddressSpace& copy_space = machine_.CreateAddressSpace();
  Result<LaunchResult> copy = loader_.Launch(
      copy_space, machine_.fs(), copy_program, LaunchStrategy::kCopyFromFlash);
  ASSERT_TRUE(copy.ok());
  Result<Duration> copy_run = loader_.Execute(copy_space, copy.value(), 2);
  ASSERT_TRUE(copy_run.ok());

  // Per-pass execution is slower from flash...
  EXPECT_GT(xip_run.value(), copy_run.value());
  // ...but launch + short run still favors XIP.
  EXPECT_LT(xip.value().launch_latency + xip_run.value(),
            copy.value().launch_latency + copy_run.value());
}

TEST_F(LoaderTest, DiskLaunchSlowestOfAll) {
  // Conventional machine: disk file system.
  SimClock disk_clock;
  DiskSpec disk_spec = KittyHawkDisk1993();
  DiskDevice disk(disk_spec, disk_clock);
  disk.set_spin_down_after(0);
  DiskFileSystem disk_fs(disk, DiskFsOptions{});
  ASSERT_TRUE(disk_fs.Mkdir("/bin").ok());
  const Program program = MakeProgram(64 * kKiB);
  ASSERT_TRUE(InstallProgram(disk_fs, program).ok());
  // Cold start: the image must actually come off the platters.
  ASSERT_TRUE(disk_fs.DropCaches().ok());

  // The disk machine still has DRAM for its address space; model it with a
  // storage manager whose flash is vestigial.
  DramSpec dram_spec = NecDram1993();
  DramDevice dram(dram_spec, 2 * kMiB, disk_clock);
  FlashSpec vestigial = GenericPaperFlash();
  FlashDevice flash(vestigial, 256 * kKiB, 1, disk_clock);
  FlashStore store(flash, FlashStoreOptions{});
  StorageManager storage(dram, store, 512);
  AddressSpace space(storage);

  Result<LaunchResult> launch =
      loader_.LaunchFromDisk(space, disk_fs, program);
  ASSERT_TRUE(launch.ok());
  // Mechanical latency: tens of milliseconds at least.
  EXPECT_GT(launch.value().launch_latency, 20 * kMillisecond);
  EXPECT_GE(launch.value().dram_pages_after_launch, 64u * kKiB / 512);

  // And far slower than the flash copy launch on the solid-state machine.
  ASSERT_TRUE(machine_.fs().Mkdir("/bin").ok());
  ASSERT_TRUE(InstallProgram(machine_.fs(), program).ok());
  machine_.Idle(10 * kSecond);  // Drain background install writes.
  AddressSpace& ssd_space = machine_.CreateAddressSpace();
  Result<LaunchResult> flash_launch = loader_.Launch(
      ssd_space, machine_.fs(), program, LaunchStrategy::kCopyFromFlash);
  ASSERT_TRUE(flash_launch.ok());
  EXPECT_GT(launch.value().launch_latency,
            flash_launch.value().launch_latency);
}

TEST_F(LoaderTest, DemandPagedLaunchIsLazy) {
  ASSERT_TRUE(machine_.fs().Mkdir("/bin").ok());
  const Program program = MakeProgram(64 * kKiB);
  ASSERT_TRUE(InstallProgram(machine_.fs(), program).ok());
  machine_.Idle(2 * kMinute);

  AddressSpace& space = machine_.CreateAddressSpace();
  Result<LaunchResult> launch = loader_.Launch(
      space, machine_.fs(), program, LaunchStrategy::kDemandPaged);
  ASSERT_TRUE(launch.ok());
  // Launch is as fast as XIP and loads nothing.
  EXPECT_LT(launch.value().launch_latency, kMillisecond);
  EXPECT_EQ(launch.value().dram_pages_after_launch, 0u);
  // Execution faults the text in; afterwards it is fully resident.
  Result<Duration> run = loader_.Execute(space, launch.value(), 1);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(space.resident_dram_pages(), 64u * kKiB / 512);
  // A second pass runs at DRAM speed: much faster than the faulting pass.
  Result<Duration> warm = loader_.Execute(space, launch.value(), 1);
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm.value() * 5, run.value());
}

TEST_F(LoaderTest, StrategyNamesStable) {
  EXPECT_EQ(LaunchStrategyName(LaunchStrategy::kExecuteInPlace),
            "execute-in-place");
  EXPECT_EQ(LaunchStrategyName(LaunchStrategy::kCopyFromFlash),
            "copy-from-flash");
  EXPECT_EQ(LaunchStrategyName(LaunchStrategy::kDemandPaged),
            "demand-paged");
  EXPECT_EQ(LaunchStrategyName(LaunchStrategy::kCopyFromDisk),
            "copy-from-disk");
}

}  // namespace
}  // namespace ssmc
