#include "src/support/arena.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/io_scheduler.h"

namespace ssmc {
namespace {

TEST(RequestArenaTest, AllocateReturnsDistinctAlignedChunks) {
  RequestArena arena(24, /*chunks_per_slab=*/8);
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t), 0u);
    EXPECT_TRUE(seen.insert(p).second) << "chunk handed out twice";
  }
  EXPECT_EQ(arena.live(), 100u);
  EXPECT_GE(arena.capacity(), 100u);
}

TEST(RequestArenaTest, ReleaseRecyclesWithoutGrowingCapacity) {
  RequestArena arena(32, /*chunks_per_slab=*/4);
  void* p = arena.Allocate();
  const size_t cap = arena.capacity();
  for (int i = 0; i < 1000; ++i) {
    arena.Release(p);
    p = arena.Allocate();
  }
  // Steady-state churn reuses the same chunk; no new slabs appear.
  EXPECT_EQ(arena.capacity(), cap);
  EXPECT_EQ(arena.live(), 1u);
  arena.Release(p);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(RequestArenaTest, AddressesStableWithinGeneration) {
  RequestArena arena(sizeof(uint64_t) * 4, /*chunks_per_slab=*/4);
  std::vector<uint64_t*> held;
  for (uint64_t i = 0; i < 64; ++i) {
    auto* p = static_cast<uint64_t*>(arena.Allocate());
    *p = i;
    held.push_back(p);
  }
  // Interleave further churn; held chunks must not move or be re-handed out.
  void* extra = arena.Allocate();
  arena.Release(extra);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(*held[i], i);
  }
}

TEST(RequestArenaTest, ResetReclaimsEverythingAndBumpsGeneration) {
  RequestArena arena(16, /*chunks_per_slab=*/4);
  for (int i = 0; i < 10; ++i) {
    (void)arena.Allocate();
  }
  const size_t cap = arena.capacity();
  const uint64_t gen = arena.generation();
  arena.Reset();
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.generation(), gen + 1);
  EXPECT_EQ(arena.capacity(), cap) << "Reset must keep the high-water mark";
  // The whole capacity is reusable without carving a new slab.
  for (size_t i = 0; i < cap; ++i) {
    ASSERT_NE(arena.Allocate(), nullptr);
  }
  EXPECT_EQ(arena.capacity(), cap);
}

TEST(RequestArenaTest, TypedNewDeleteRoundTrip) {
  struct Payload {
    uint64_t a;
    uint32_t b;
  };
  RequestArena arena(sizeof(Payload));
  Payload* p = arena.New<Payload>(7u, 9u);
  EXPECT_EQ(p->a, 7u);
  EXPECT_EQ(p->b, 9u);
  arena.Delete(p);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(RequestArenaTest, ChunkSmallerThanPointerStillWorks) {
  // The free-list link needs a pointer's worth of space; tiny chunk sizes
  // must be rounded up rather than corrupting neighbors.
  RequestArena arena(1, /*chunks_per_slab=*/4);
  void* a = arena.Allocate();
  void* b = arena.Allocate();
  EXPECT_NE(a, b);
  std::memset(a, 0xAA, 1);
  arena.Release(a);
  arena.Release(b);
  EXPECT_EQ(arena.live(), 0u);
}

// The scheduler's reservations live in its arena: heavy requests allocate a
// chunk while queued and return it at retire, so steady-state traffic leaves
// the arena empty with a bounded high-water mark.
TEST(IoSchedulerArenaTest, HeavyRequestsReturnChunksAtRetire) {
  SimClock clock;
  IoScheduler sched(clock, /*channels=*/1, IoSchedPolicy::kPriority);
  for (int round = 0; round < 50; ++round) {
    IoRequest req;
    req.op = IoOp::kRead;
    (void)sched.Submit(0, std::move(req), Duration{10});
    clock.Advance(10);
    sched.Poll();
    EXPECT_EQ(sched.arena().live(), 0u) << "round " << round;
  }
  // One slab's worth of capacity suffices for depth-1 traffic.
  EXPECT_LE(sched.arena().capacity(), 64u);
}

TEST(IoSchedulerArenaTest, QueueDepthBoundsArenaLiveCount) {
  SimClock clock;
  IoScheduler sched(clock, /*channels=*/1, IoSchedPolicy::kPriority);
  for (int i = 0; i < 10; ++i) {
    IoRequest req;
    req.op = IoOp::kProgram;
    (void)sched.Submit(0, std::move(req), Duration{100});
  }
  EXPECT_EQ(sched.arena().live(), 10u);
  clock.Advance(1000);
  sched.Poll();
  EXPECT_EQ(sched.arena().live(), 0u);
  EXPECT_EQ(sched.pending(), 0u);
}

}  // namespace
}  // namespace ssmc
