// Differential tests for the FTL index structures: every index must agree
// with a brute-force scan over randomly generated sector states, including
// tie-breaking. See victim_index.h for the bit-identical contract.

#include "src/ftl/victim_index.h"

#include <algorithm>
#include "src/ftl/flash_store.h"  // ScanPickFreeSector oracle.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/support/rng.h"
#include "src/support/units.h"

namespace ssmc {
namespace {

// Mirror of the sector fields the indexes care about.
struct ShadowSector {
  uint32_t valid = 0;
  uint32_t dead = 0;
  SimTime last_write = 0;
  uint64_t erase_count = 0;
  bool candidate = false;  // Cleanable (usable && dead > 0).
  bool cold = false;       // Cold-evictable (usable && dead == 0 && valid > 0).
  bool occupied = false;   // usable.
  bool bad = false;
};

// The retired linear scan, reproduced verbatim for the cleaner.
int64_t ScanVictim(const std::vector<ShadowSector>& sectors,
                   uint32_t pages_per_sector, CleanerPolicy policy,
                   SimTime now) {
  int64_t best = -1;
  double best_score = -1;
  for (size_t s = 0; s < sectors.size(); ++s) {
    const ShadowSector& m = sectors[s];
    if (!m.candidate) {
      continue;
    }
    double score = 0;
    if (policy == CleanerPolicy::kGreedy) {
      score = static_cast<double>(m.dead);
    } else {
      const double u = static_cast<double>(m.valid) /
                       static_cast<double>(pages_per_sector);
      const double age =
          static_cast<double>(std::max<SimTime>(1, now - m.last_write));
      score = age * (1.0 - u) / (1.0 + u);
    }
    if (score > best_score) {
      best_score = score;
      best = static_cast<int64_t>(s);
    }
  }
  return best;
}

int64_t ScanCold(const std::vector<ShadowSector>& sectors, SimTime now,
                 Duration min_age) {
  int64_t victim = -1;
  for (size_t s = 0; s < sectors.size(); ++s) {
    const ShadowSector& m = sectors[s];
    if (!m.cold || now - m.last_write < min_age) {
      continue;
    }
    if (victim < 0 ||
        m.last_write < sectors[static_cast<size_t>(victim)].last_write) {
      victim = static_cast<int64_t>(s);
    }
  }
  return victim;
}

class VictimIndexDifferentialTest
    : public ::testing::TestWithParam<CleanerPolicy> {};

// Random churn of sector states; after every mutation the indexed pick must
// equal the scan's pick at several probe times.
TEST_P(VictimIndexDifferentialTest, MatchesScanUnderRandomChurn) {
  constexpr uint64_t kSectors = 64;
  constexpr uint32_t kPages = 8;
  const CleanerPolicy policy = GetParam();

  Rng rng(42);
  std::vector<ShadowSector> sectors(kSectors);
  VictimIndex index(policy, kPages, kSectors);
  SimTime now = 0;

  for (int step = 0; step < 5000; ++step) {
    // Time advances erratically, sometimes not at all (matching the frozen
    // clock of background-write mode, which stresses the age-clamp ties).
    if (rng.NextBool(0.7)) {
      now += static_cast<SimTime>(rng.NextInRange(0, 1000));
    }
    const uint64_t s = rng.NextBelow(kSectors);
    ShadowSector& m = sectors[s];
    if (rng.NextBool(0.5)) {
      // Become / re-key a candidate.
      m.dead = static_cast<uint32_t>(rng.NextInRange(1, kPages));
      m.valid = static_cast<uint32_t>(rng.NextInRange(0, kPages - m.dead));
      // Duplicate timestamps are common in real runs; force collisions.
      m.last_write = rng.NextBool(0.3)
                         ? now
                         : static_cast<SimTime>(rng.NextInRange(0, 50));
      m.candidate = true;
    } else {
      m.candidate = false;  // Activated, freed, or retired.
    }
    index.Sync(s, m.valid, m.dead, m.last_write, m.candidate);

    for (const SimTime probe : {now, now + 1, now + 2, now + 100000}) {
      ASSERT_EQ(index.Pick(probe), ScanVictim(sectors, kPages, policy, probe))
          << "step " << step << " probe " << probe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, VictimIndexDifferentialTest,
                         ::testing::Values(CleanerPolicy::kGreedy,
                                           CleanerPolicy::kCostBenefit));

TEST(FreeSectorPoolTest, LifoMatchesScan) {
  FreeSectorPool pool(/*wear_ordered=*/false);
  Rng rng(7);
  uint64_t next_sector = 0;
  for (int step = 0; step < 2000; ++step) {
    if (pool.empty() || rng.NextBool(0.6)) {
      pool.Add(next_sector++, static_cast<uint64_t>(rng.NextInRange(0, 5)));
    }
    ASSERT_EQ(pool.Peek(),
              ScanPickFreeSector(pool.SnapshotInsertionOrder(), false));
    if (!pool.empty() && rng.NextBool(0.4)) {
      const int64_t expect = pool.Peek();
      ASSERT_EQ(pool.Take(), expect);
    }
  }
}

TEST(FreeSectorPoolTest, WearOrderedMatchesScanWithTies) {
  FreeSectorPool pool(/*wear_ordered=*/true);
  Rng rng(8);
  uint64_t next_sector = 0;
  for (int step = 0; step < 2000; ++step) {
    if (pool.empty() || rng.NextBool(0.6)) {
      // Erase counts from a tiny range so ties are the common case: the pick
      // must then be the *earliest added* minimum, not the lowest sector.
      pool.Add(next_sector++, static_cast<uint64_t>(rng.NextInRange(0, 3)));
    }
    ASSERT_EQ(pool.Peek(),
              ScanPickFreeSector(pool.SnapshotInsertionOrder(), true));
    if (!pool.empty() && rng.NextBool(0.4)) {
      const int64_t expect = pool.Peek();
      ASSERT_EQ(pool.Take(), expect);
    }
  }
}

TEST(FreeSectorPoolTest, EmptyPoolReturnsMinusOne) {
  for (const bool wear : {false, true}) {
    FreeSectorPool pool(wear);
    EXPECT_EQ(pool.Peek(), -1);
    EXPECT_EQ(pool.Take(), -1);
    EXPECT_TRUE(pool.empty());
  }
}

TEST(ColdSectorIndexTest, MatchesScanUnderRandomChurn) {
  constexpr uint64_t kSectors = 48;
  constexpr Duration kMinAge = 500;
  Rng rng(9);
  std::vector<ShadowSector> sectors(kSectors);
  ColdSectorIndex index(kSectors);
  SimTime now = 0;

  for (int step = 0; step < 5000; ++step) {
    now += static_cast<SimTime>(rng.NextInRange(0, 300));
    const uint64_t s = rng.NextBelow(kSectors);
    ShadowSector& m = sectors[s];
    m.cold = rng.NextBool(0.5);
    if (m.cold) {
      m.last_write = static_cast<SimTime>(
          static_cast<uint64_t>(rng.NextInRange(0, now)));
    }
    index.Sync(s, m.last_write, m.cold);
    ASSERT_EQ(index.PickOlderThan(now, kMinAge), ScanCold(sectors, now, kMinAge))
        << "step " << step;
    ASSERT_EQ(index.PickOlderThan(now, 0), ScanCold(sectors, now, 0));
  }
}

TEST(WearIndexTest, TracksMinMaxAndColdestThroughChurn) {
  constexpr uint64_t kSectors = 40;
  Rng rng(11);
  std::vector<ShadowSector> sectors(kSectors);
  WearIndex index(kSectors);
  for (uint64_t s = 0; s < kSectors; ++s) {
    index.Seed(s, 0);
  }

  for (int step = 0; step < 5000; ++step) {
    const uint64_t s = rng.NextBelow(kSectors);
    ShadowSector& m = sectors[s];
    switch (rng.NextBelow(3)) {
      case 0: {  // Erase (count bump), occasionally a wear-out retirement.
        if (m.bad) {
          break;
        }
        m.erase_count += 1;
        if (rng.NextBool(0.01)) {
          m.bad = true;
          m.occupied = false;
        }
        index.OnEraseCountChanged(s, m.erase_count, m.bad);
        break;
      }
      case 1:  // Sector fills up (joins occupied set).
        if (!m.bad) {
          m.occupied = true;
          index.SyncOccupied(s, m.erase_count, true);
        }
        break;
      default:  // Sector activated or freed (leaves occupied set).
        m.occupied = false;
        index.SyncOccupied(s, m.erase_count, false);
        break;
    }

    // Brute-force reference.
    uint64_t min_e = ~uint64_t{0};
    uint64_t max_e = 0;
    int64_t coldest = -1;
    uint64_t non_bad = 0;
    for (uint64_t i = 0; i < kSectors; ++i) {
      if (sectors[i].bad) {
        continue;
      }
      non_bad += 1;
      min_e = std::min(min_e, sectors[i].erase_count);
      max_e = std::max(max_e, sectors[i].erase_count);
      if (sectors[i].occupied &&
          (coldest < 0 ||
           sectors[i].erase_count <
               sectors[static_cast<size_t>(coldest)].erase_count)) {
        coldest = static_cast<int64_t>(i);
      }
    }
    ASSERT_EQ(index.tracked_sectors(), non_bad);
    if (non_bad > 0) {
      ASSERT_TRUE(index.has_sectors());
      ASSERT_EQ(index.min_erases(), min_e);
      ASSERT_EQ(index.max_erases(), max_e);
    }
    ASSERT_EQ(index.ColdestOccupied(), coldest) << "step " << step;
  }
}

TEST(WearIndexTest, RetirementRemovesFromAllTrackers) {
  WearIndex index(4);
  for (uint64_t s = 0; s < 4; ++s) {
    index.Seed(s, 10);
    index.SyncOccupied(s, 10, true);
  }
  EXPECT_EQ(index.tracked_sectors(), 4u);
  EXPECT_EQ(index.occupied_size(), 4u);

  index.OnEraseCountChanged(1, 11, /*now_bad=*/true);
  EXPECT_EQ(index.tracked_sectors(), 3u);
  EXPECT_EQ(index.occupied_size(), 3u);
  EXPECT_FALSE(index.OccupiedContains(1));
  EXPECT_EQ(index.min_erases(), 10u);
  EXPECT_EQ(index.max_erases(), 10u);
  EXPECT_EQ(index.ColdestOccupied(), 0);
}

}  // namespace
}  // namespace ssmc
