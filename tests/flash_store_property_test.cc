// Model-based property tests for the flash store, swept across the full
// policy cross-product (cleaner x wear leveling x bank count x segregation).
// Whatever the internal relocation traffic does, a logical block must always
// read back the last value written, trimmed blocks must stay gone, and the
// store's accounting invariants must hold.
//
// All configs run with validate_indexes on: every indexed decision (cleaning
// victim, free-sector take, cold eviction, wear-level target) is cross-checked
// at decision time against the retained linear-scan oracles, and the suite
// asserts zero mismatches — the differential proof that the indexed hot paths
// reproduce the scans' choices bit for bit.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/ftl/flash_store.h"
#include "src/support/rng.h"

namespace ssmc {
namespace {

struct StoreConfig {
  CleanerPolicy cleaner;
  WearPolicy wear;
  int banks;
  int hot_banks;
};

std::string ConfigName(const StoreConfig& config) {
  std::string name;
  name += config.cleaner == CleanerPolicy::kGreedy ? "Greedy" : "CostBenefit";
  switch (config.wear) {
    case WearPolicy::kNone:
      name += "NoWear";
      break;
    case WearPolicy::kDynamic:
      name += "Dynamic";
      break;
    case WearPolicy::kStatic:
      name += "Static";
      break;
  }
  name += "Banks" + std::to_string(config.banks);
  if (config.hot_banks > 0) {
    name += "Hot" + std::to_string(config.hot_banks);
  }
  return name;
}

class FlashStorePropertyTest : public ::testing::TestWithParam<StoreConfig> {
 protected:
  void SetUp() override {
    const StoreConfig& config = GetParam();
    FlashSpec spec;
    spec.read = {100, 10};
    spec.program = {1000, 100};
    spec.erase_sector_bytes = 2048;  // 4 pages.
    spec.erase_ns = kMillisecond;
    spec.endurance_cycles = 100000000;
    flash_ = std::make_unique<FlashDevice>(spec, 256 * 1024, config.banks,
                                           clock_, /*seed=*/9);
    FlashStoreOptions options;
    options.cleaner = config.cleaner;
    options.wear = config.wear;
    options.hot_bank_count = config.hot_banks;
    options.static_wear_check_interval = 16;
    options.static_wear_delta = 8;
    options.cold_eviction_age = kSecond;
    options.validate_indexes = true;
    store_ = std::make_unique<FlashStore>(*flash_, options);
  }

  std::vector<uint8_t> BlockValue(uint64_t block, uint32_t version) {
    std::vector<uint8_t> data(512);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(block * 31 + version * 7 + i);
    }
    return data;
  }

  SimClock clock_;
  std::unique_ptr<FlashDevice> flash_;
  std::unique_ptr<FlashStore> store_;
};

TEST_P(FlashStorePropertyTest, RandomOpsAlwaysReadBackLastWrite) {
  Rng rng(1234);
  // block -> version written, absent = unmapped.
  std::map<uint64_t, uint32_t> model;
  uint32_t version = 0;

  const uint64_t blocks = store_->num_blocks();
  for (int i = 0; i < 6000; ++i) {
    const uint64_t block = rng.NextBelow(blocks);
    const double u = rng.NextDouble();
    if (u < 0.55) {
      ++version;
      ASSERT_TRUE(store_->Write(block, BlockValue(block, version)).ok())
          << "op " << i;
      model[block] = version;
    } else if (u < 0.65) {
      ASSERT_TRUE(store_->Trim(block).ok());
      model.erase(block);
    } else {
      std::vector<uint8_t> out(512);
      Result<Duration> read = store_->Read(block, out);
      auto it = model.find(block);
      if (it == model.end()) {
        EXPECT_FALSE(read.ok()) << "op " << i << " block " << block;
      } else {
        ASSERT_TRUE(read.ok()) << "op " << i << " block " << block << ": "
                               << read.status().ToString();
        EXPECT_EQ(out, BlockValue(block, it->second))
            << "op " << i << " block " << block;
      }
    }
    clock_.Advance(kMillisecond);
  }

  // Invariants after the storm.
  EXPECT_GE(store_->WriteAmplification(), 1.0);
  uint64_t valid_pages = 0;
  for (uint64_t s = 0; s < flash_->num_sectors(); ++s) {
    const SectorMeta& m = store_->sector_meta(s);
    valid_pages += m.valid_pages;
    EXPECT_LE(m.valid_pages + m.dead_pages, 4u) << "sector " << s;
    EXPECT_LE(m.next_free_page, 4u) << "sector " << s;
  }
  EXPECT_EQ(valid_pages, model.size());

  // Full final read-back.
  std::vector<uint8_t> out(512);
  for (const auto& [block, v] : model) {
    ASSERT_TRUE(store_->Read(block, out).ok()) << "block " << block;
    EXPECT_EQ(out, BlockValue(block, v)) << "block " << block;
  }

  // Differential guarantee: every indexed pick matched its scan oracle, and
  // the index contents still reconcile with the sector metadata.
  EXPECT_EQ(store_->index_validation_failures(), 0u);
  EXPECT_TRUE(store_->CheckIndexConsistency().ok());
}

TEST_P(FlashStorePropertyTest, FrozenClockDecisionsMatchOracles) {
  // background_writes keeps the caller's clock frozen through the storm, so
  // whole cost-benefit buckets tie on the age clamp max(1, now - t) and the
  // cold-eviction cutoff sits exactly at age zero — the hardest tie-breaking
  // cases for the indexed pickers.
  const StoreConfig& config = GetParam();
  FlashStoreOptions options;
  options.cleaner = config.cleaner;
  options.wear = config.wear;
  options.hot_bank_count = config.hot_banks;
  options.static_wear_check_interval = 16;
  options.static_wear_delta = 8;
  options.cold_eviction_age = 0;
  options.background_writes = true;
  options.validate_indexes = true;
  FlashStore store(*flash_, options);

  Rng rng(4321);
  const uint64_t blocks = store.num_blocks();
  const std::vector<uint8_t> data(512, 0xA5);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(store.Write(rng.NextBelow(blocks), data).ok()) << "op " << i;
  }
  EXPECT_EQ(store.index_validation_failures(), 0u);
  EXPECT_TRUE(store.CheckIndexConsistency().ok());
}

TEST_P(FlashStorePropertyTest, PartialReadsMatchFullReads) {
  Rng rng(77);
  const uint64_t blocks = std::min<uint64_t>(store_->num_blocks(), 64);
  for (uint64_t b = 0; b < blocks; ++b) {
    ASSERT_TRUE(
        store_->Write(b, BlockValue(b, static_cast<uint32_t>(b))).ok());
  }
  for (int i = 0; i < 500; ++i) {
    const uint64_t block = rng.NextBelow(blocks);
    const uint64_t offset = rng.NextBelow(512);
    const uint64_t len = 1 + rng.NextBelow(512 - offset);
    std::vector<uint8_t> partial(len);
    ASSERT_TRUE(store_->ReadPartial(block, offset, partial).ok());
    const std::vector<uint8_t> full =
        BlockValue(block, static_cast<uint32_t>(block));
    EXPECT_TRUE(std::equal(partial.begin(), partial.end(),
                           full.begin() + static_cast<ptrdiff_t>(offset)))
        << "block " << block << " offset " << offset;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, FlashStorePropertyTest,
    ::testing::Values(
        StoreConfig{CleanerPolicy::kGreedy, WearPolicy::kNone, 1, 0},
        StoreConfig{CleanerPolicy::kGreedy, WearPolicy::kDynamic, 2, 0},
        StoreConfig{CleanerPolicy::kGreedy, WearPolicy::kStatic, 4, 0},
        StoreConfig{CleanerPolicy::kCostBenefit, WearPolicy::kNone, 2, 0},
        StoreConfig{CleanerPolicy::kCostBenefit, WearPolicy::kDynamic, 1, 0},
        StoreConfig{CleanerPolicy::kCostBenefit, WearPolicy::kStatic, 8, 0},
        StoreConfig{CleanerPolicy::kCostBenefit, WearPolicy::kDynamic, 4, 1},
        StoreConfig{CleanerPolicy::kGreedy, WearPolicy::kDynamic, 8, 2},
        StoreConfig{CleanerPolicy::kCostBenefit, WearPolicy::kStatic, 4, 2}),
    [](const ::testing::TestParamInfo<StoreConfig>& info) {
      return ConfigName(info.param);
    });

}  // namespace
}  // namespace ssmc
