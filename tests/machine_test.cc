#include "src/core/machine.h"

#include <gtest/gtest.h>

#include "src/trace/generator.h"

namespace ssmc {
namespace {

TEST(MachineTest, PresetsConstruct) {
  MobileComputer omnibook(OmniBookConfig());
  EXPECT_EQ(omnibook.dram().capacity_bytes(), 4 * kMiB);
  EXPECT_EQ(omnibook.flash().capacity_bytes(), 10 * kMiB);

  MobileComputer pda(PdaConfig());
  EXPECT_EQ(pda.dram().capacity_bytes(), 1 * kMiB);

  MobileComputer notebook(NotebookConfig());
  EXPECT_EQ(notebook.flash().num_banks(), 4);
}

TEST(MachineTest, FlushDaemonFlushesAgedData) {
  MobileComputer machine(OmniBookConfig());
  ASSERT_TRUE(machine.fs().Create("/f").ok());
  std::vector<uint8_t> data(512, 1);
  ASSERT_TRUE(machine.fs().Write("/f", 0, data).ok());
  EXPECT_EQ(machine.flash_store().stats().user_writes.value(), 0u);
  // Default flush age is 30 s; idle past it and let the daemon run.
  machine.Idle(40 * kSecond);
  EXPECT_EQ(machine.flash_store().stats().user_writes.value(), 1u);
}

TEST(MachineTest, SettleEnergyDrainsBattery) {
  MobileComputer machine(OmniBookConfig());
  const double before = machine.battery().primary_remaining_mwh();
  ASSERT_TRUE(machine.fs().Create("/f").ok());
  std::vector<uint8_t> data(64 * 1024, 1);
  ASSERT_TRUE(machine.fs().Write("/f", 0, data).ok());
  ASSERT_TRUE(machine.fs().Sync().ok());
  machine.Idle(kMinute);
  EXPECT_TRUE(machine.SettleEnergy());
  EXPECT_LT(machine.battery().primary_remaining_mwh(), before);
  EXPECT_GT(machine.TotalEnergyNj(), 0.0);
}

TEST(MachineTest, SettleEnergyIsIncremental) {
  MobileComputer machine(OmniBookConfig());
  machine.Idle(kMinute);
  ASSERT_TRUE(machine.SettleEnergy());
  const double after_first = machine.battery().primary_remaining_mwh();
  // No further activity: a second settle drains (almost) nothing.
  ASSERT_TRUE(machine.SettleEnergy());
  EXPECT_NEAR(machine.battery().primary_remaining_mwh(), after_first, 1e-6);
}

TEST(MachineTest, BatteryFailureLosesDirtyData) {
  MobileComputer machine(OmniBookConfig());
  ASSERT_TRUE(machine.fs().Create("/f").ok());
  std::vector<uint8_t> data(2048, 1);
  ASSERT_TRUE(machine.fs().Write("/f", 0, data).ok());
  MobileComputer::CrashReport report = machine.InjectBatteryFailure();
  EXPECT_EQ(report.lost_dirty_bytes, 2048u);
  EXPECT_TRUE(report.dram_contents_lost);
  EXPECT_TRUE(machine.battery().dead());
}

TEST(MachineTest, OrderlyShutdownLosesNothing) {
  MobileComputer machine(OmniBookConfig());
  ASSERT_TRUE(machine.fs().Create("/f").ok());
  std::vector<uint8_t> data(2048, 1);
  ASSERT_TRUE(machine.fs().Write("/f", 0, data).ok());
  MobileComputer::CrashReport report = machine.OrderlyShutdown();
  EXPECT_EQ(report.lost_dirty_bytes, 0u);
  EXPECT_FALSE(report.dram_contents_lost);
  EXPECT_EQ(machine.flash_store().stats().user_writes.value(), 4u);
}

TEST(MachineTest, SwapBatteryKeepsMachineAlive) {
  MachineConfig config = OmniBookConfig();
  config.primary_battery_mwh = 100;
  MobileComputer machine(config);
  EXPECT_TRUE(machine.SwapBattery(20000));
  EXPECT_FALSE(machine.battery().dead());
  EXPECT_NEAR(machine.battery().primary_remaining_mwh(), 20000, 1e-6);
}

TEST(MachineTest, RecoverAfterFailureRestoresCheckpointedState) {
  MachineConfig config = OmniBookConfig();
  config.checkpoint_period = 10 * kSecond;
  MobileComputer machine(config);
  ASSERT_TRUE(machine.fs().Mkdir("/docs").ok());
  ASSERT_TRUE(machine.fs().Create("/docs/f").ok());
  std::vector<uint8_t> data(2048, 0x42);
  ASSERT_TRUE(machine.fs().Write("/docs/f", 0, data).ok());
  ASSERT_TRUE(machine.fs().Sync().ok());
  machine.Idle(30 * kSecond);  // Checkpoint daemon runs.

  machine.InjectBatteryFailure();
  Result<RecoveryReport> report = machine.RecoverAfterFailure(20000);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().files_recovered, 1u);
  std::vector<uint8_t> out(2048);
  Result<uint64_t> read = machine.fs().Read("/docs/f", 0, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, data);
  EXPECT_FALSE(machine.battery().dead());
}

TEST(MachineTest, RecoverWithoutCheckpointComesUpEmpty) {
  MobileComputer machine(OmniBookConfig());  // Checkpointing off.
  ASSERT_TRUE(machine.fs().Create("/f").ok());
  ASSERT_TRUE(machine.fs().Sync().ok());
  machine.InjectBatteryFailure();
  Result<RecoveryReport> report = machine.RecoverAfterFailure(20000);
  EXPECT_FALSE(report.ok());
  // Factory-reset file system still works.
  EXPECT_TRUE(machine.fs().Create("/fresh").ok());
  EXPECT_EQ(machine.fs().Stat("/f").status().code(), ErrorCode::kNotFound);
}

TEST(MachineTest, RunTraceEndToEnd) {
  MobileComputer machine(NotebookConfig());
  WorkloadOptions options = OfficeWorkload();
  options.duration = kMinute;
  options.max_file_bytes = 64 * 1024;
  const Trace trace = WorkloadGenerator(options).Generate();
  ReplayReport report = machine.RunTrace(trace);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GT(report.bytes_written, 0u);
  // The flush daemon ran: some data reached flash during the minute.
  EXPECT_GT(machine.flash_store().stats().user_writes.value(), 0u);
  // And the write buffer absorbed traffic: flash writes < logical writes.
  const uint64_t flash_bytes =
      machine.flash_store().stats().user_writes.value() * 512;
  EXPECT_LT(flash_bytes, report.bytes_written * 2);
}

TEST(MachineTest, RunTraceAttributesIoByClass) {
  MobileComputer machine(NotebookConfig());
  WorkloadOptions options = OfficeWorkload();
  options.duration = kMinute;
  options.max_file_bytes = 64 * 1024;
  const Trace trace = WorkloadGenerator(options).Generate();
  const ReplayReport report = machine.RunTrace(trace);

  // Foreground reads and flush-daemon writes both ran during the minute.
  const IoLaneStats& fg = report.ForClass(IoPriority::kForeground);
  const IoLaneStats& flush = report.ForClass(IoPriority::kFlush);
  EXPECT_GT(fg.requests.value(), 0u);
  EXPECT_GT(fg.service_ns.value(), 0u);
  EXPECT_GT(flush.requests.value(), 0u);
  EXPECT_GT(flush.service_ns.value(), 0u);

  // The breakdown covers only the replay window: a second replay on the
  // same (reused) machine reports its own deltas, not cumulative totals.
  const ReplayReport second = machine.RunTrace(trace);
  const IoLaneStats& fg2 = second.ForClass(IoPriority::kForeground);
  EXPECT_GT(fg2.requests.value(), 0u);
  // Device-level cumulative counters span both windows (plus inter-replay
  // daemon work), so each window's delta is strictly below them.
  const uint64_t device_fg_requests =
      machine.flash()
          .stats()
          .by_class[static_cast<int>(IoPriority::kForeground)]
          .requests.value();
  EXPECT_LT(fg2.requests.value(), device_fg_requests);
  EXPECT_GE(device_fg_requests, fg.requests.value() + fg2.requests.value());
}

TEST(MachineTest, PrioritySchedulingConfigIsAppliedToFlash) {
  MachineConfig config = NotebookConfig();
  config.io_sched = IoSchedPolicy::kPriority;
  MobileComputer machine(config);
  EXPECT_EQ(machine.flash().sched_policy(), IoSchedPolicy::kPriority);
  // And the machine still runs a trace correctly under the alternate policy.
  WorkloadOptions options = OfficeWorkload();
  options.duration = 10 * kSecond;
  options.max_file_bytes = 64 * 1024;
  const Trace trace = WorkloadGenerator(options).Generate();
  const ReplayReport report = machine.RunTrace(trace);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GT(report.ops, 0u);
}

TEST(MachineTest, RunTraceAttributesIoAndLatencyByTenant) {
  MachineConfig config = NotebookConfig();
  config.io_sched = IoSchedPolicy::kWeightedFair;
  config.tenant_qos = {{1, 9, 0, 0}, {2, 1, 0, 0}};
  MobileComputer machine(config);
  EXPECT_EQ(machine.flash().sched_policy(), IoSchedPolicy::kWeightedFair);

  // Alternate the issuing tenant record-by-record: both tenants touch the
  // same files, so attribution follows the issuer, not the data.
  WorkloadOptions options = OfficeWorkload();
  options.duration = kMinute;
  options.max_file_bytes = 64 * 1024;
  Trace trace;
  size_t i = 0;
  const Trace generated = WorkloadGenerator(options).Generate();
  for (TraceRecord r : generated.records()) {
    r.tenant = static_cast<TenantId>(1 + (i++ % 2));
    trace.Add(std::move(r));
  }
  const ReplayReport report = machine.RunTrace(trace);
  EXPECT_EQ(report.failures, 0u);

  // Replay-level latency lanes exist for exactly the tenants that issued
  // operations.
  EXPECT_EQ(report.by_tenant.Find(kDefaultTenant), nullptr);
  for (TenantId t : {TenantId{1}, TenantId{2}}) {
    const TenantLatency* lane = report.by_tenant.Find(t);
    ASSERT_NE(lane, nullptr) << "tenant " << t;
    EXPECT_GT(lane->reads.count() + lane->writes.count(), 0u);
  }

  // Device-level attribution: every flash request in the replay window is
  // billed to some tenant, and the per-tenant lanes sum to the per-class
  // lanes (two partitions of the same window).
  uint64_t class_requests = 0;
  for (int p = 0; p < kNumIoPriorities; ++p) {
    class_requests +=
        report.io_by_class[static_cast<size_t>(p)].requests.value();
  }
  uint64_t tenant_requests = 0;
  for (const auto& e : report.io_by_tenant.entries()) {
    tenant_requests += e.value.requests.value();
  }
  EXPECT_GT(class_requests, 0u);
  EXPECT_EQ(tenant_requests, class_requests);
}

TEST(MachineTest, SimulationIsFullyDeterministic) {
  // Two machines, same config, same trace: identical clocks, stats, and
  // energy to the last nanojoule. This is what makes every experiment in
  // bench/ exactly reproducible.
  WorkloadOptions options = OfficeWorkload();
  options.duration = kMinute;
  options.max_file_bytes = 64 * 1024;
  const Trace trace = WorkloadGenerator(options).Generate();

  auto run = [&](MobileComputer& machine) {
    ReplayReport report = machine.RunTrace(trace);
    (void)machine.fs().Sync();
    machine.SettleEnergy();
    return report;
  };
  MobileComputer a(NotebookConfig());
  MobileComputer b(NotebookConfig());
  const ReplayReport ra = run(a);
  const ReplayReport rb = run(b);

  EXPECT_EQ(a.clock().now(), b.clock().now());
  EXPECT_EQ(ra.ops, rb.ops);
  EXPECT_EQ(ra.all_ops.total_ns(), rb.all_ops.total_ns());
  EXPECT_EQ(a.flash().stats().programs.value(),
            b.flash().stats().programs.value());
  EXPECT_EQ(a.flash_store().stats().erases.value(),
            b.flash_store().stats().erases.value());
  EXPECT_DOUBLE_EQ(a.TotalEnergyNj(), b.TotalEnergyNj());
  EXPECT_DOUBLE_EQ(a.battery().primary_remaining_mwh(),
                   b.battery().primary_remaining_mwh());
}

TEST(MachineTest, BackgroundFlushDoesNotBlockForeground) {
  // A burst of writes larger than the buffer forces evictions mid-burst,
  // but because flushes are background device ops the foreground cost stays
  // near DRAM speed.
  MachineConfig config = OmniBookConfig();
  config.fs_options.write_buffer_pages = 64;  // Tiny: 32 KiB.
  MobileComputer machine(config);
  ASSERT_TRUE(machine.fs().Create("/burst").ok());
  std::vector<uint8_t> chunk(512, 7);
  const SimTime start = machine.clock().now();
  for (int i = 0; i < 256; ++i) {  // 128 KiB, 4x the buffer.
    ASSERT_TRUE(machine.fs().Write("/burst", i * 512, chunk).ok());
  }
  const Duration elapsed = machine.clock().now() - start;
  // 256 writes at raw flash program speed (~5 ms each at 10 us/B) would be
  // seconds; buffered + background flush keeps it well under one second.
  EXPECT_LT(elapsed, 500 * kMillisecond);
}

}  // namespace
}  // namespace ssmc
