// DiskFileSystem-specific behavior: on-disk structure, indirect blocks,
// persistence across remounts, and the latency profile of a mechanical disk.

#include "src/fs/disk_fs.h"

#include <gtest/gtest.h>

#include <memory>

namespace ssmc {
namespace {

DiskSpec TestDiskSpec() {
  DiskSpec spec;
  spec.sector_bytes = 512;
  spec.sectors_per_track = 32;
  spec.cylinders = 1024;  // 16 MiB.
  spec.min_seek_ns = 2 * kMillisecond;
  spec.avg_seek_ns = 12 * kMillisecond;
  spec.max_seek_ns = 25 * kMillisecond;
  spec.rotation_ns = 11 * kMillisecond;
  spec.transfer_mib_per_s = 1.0;
  spec.spin_up_ns = kSecond;
  spec.active_mw = 1500;
  spec.idle_mw = 700;
  spec.standby_mw = 15;
  return spec;
}

class DiskFsTest : public ::testing::Test {
 protected:
  DiskFsTest() : disk_(TestDiskSpec(), clock_) {
    disk_.set_spin_down_after(0);
    fs_ = std::make_unique<DiskFileSystem>(disk_, DiskFsOptions{});
  }

  std::vector<uint8_t> Pattern(size_t n, uint8_t seed = 1) {
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<uint8_t>(seed + i * 13);
    }
    return v;
  }

  SimClock clock_;
  DiskDevice disk_;
  std::unique_ptr<DiskFileSystem> fs_;
};

TEST_F(DiskFsTest, LayoutReservesMetadataBlocks) {
  // Superblock + bitmaps + inode table come before data.
  EXPECT_GT(fs_->data_block_start(), 2u);
  EXPECT_LT(fs_->data_block_start(), fs_->total_blocks());
}

TEST_F(DiskFsTest, FileLargerThanDirectBlocksUsesIndirect) {
  // 12 direct blocks of 4 KiB = 48 KiB; write 100 KiB to force the single
  // indirect path.
  ASSERT_TRUE(fs_->Create("/big").ok());
  const auto data = Pattern(100 * 1024, 3);
  ASSERT_TRUE(fs_->Write("/big", 0, data).ok());
  EXPECT_GT(fs_->stats().indirect_fetches.value(), 0u);
  std::vector<uint8_t> out(data.size());
  Result<uint64_t> read = fs_->Read("/big", 0, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, data);
}

TEST_F(DiskFsTest, VeryLargeFileUsesDoubleIndirect) {
  // Direct (48 KiB) + single indirect (1024 * 4 KiB = 4 MiB) is the single-
  // indirect limit; write past it.
  ASSERT_TRUE(fs_->Create("/huge").ok());
  const uint64_t limit = (12 + 1024) * 4096;
  const auto tail = Pattern(8192, 9);
  ASSERT_TRUE(fs_->Write("/huge", limit, tail).ok());
  std::vector<uint8_t> out(tail.size());
  Result<uint64_t> read = fs_->Read("/huge", limit, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, tail);
}

TEST_F(DiskFsTest, DataPersistsAcrossRemount) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  const auto data = Pattern(5000, 5);
  ASSERT_TRUE(fs_->Write("/f", 0, data).ok());
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  ASSERT_TRUE(fs_->Create("/d/g").ok());
  ASSERT_TRUE(fs_->Sync().ok());

  // Remount: a new DiskFileSystem instance would re-mkfs, so instead verify
  // the cache-coldness path — drop everything by creating a fresh cache via
  // a second file system is not possible without reformat. What we can
  // check: all data reachable after Sync through a cache that has evicted
  // everything (read enough other data to cycle the LRU).
  ASSERT_TRUE(fs_->Create("/filler").ok());
  ASSERT_TRUE(fs_->Write("/filler", 0, Pattern(300 * 1024, 1)).ok());
  std::vector<uint8_t> sink(300 * 1024);
  ASSERT_TRUE(fs_->Read("/filler", 0, sink).ok());

  std::vector<uint8_t> out(5000);
  Result<uint64_t> read = fs_->Read("/f", 0, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, data);
  Result<FileInfo> info = fs_->Stat("/d/g");
  ASSERT_TRUE(info.ok());
}

TEST_F(DiskFsTest, UnlinkReleasesBlocksForReuse) {
  // Fill a large fraction of the disk, delete, repeat: only works if blocks
  // are actually freed.
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(fs_->Create("/big").ok()) << "round " << round;
    ASSERT_TRUE(fs_->Write("/big", 0, Pattern(4 * 1024 * 1024)).ok())
        << "round " << round;
    ASSERT_TRUE(fs_->Unlink("/big").ok()) << "round " << round;
  }
}

TEST_F(DiskFsTest, ColdReadsCostMilliseconds) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, Pattern(64 * 1024)).ok());
  ASSERT_TRUE(fs_->Sync().ok());
  // Cycle the cache so /f's blocks are cold.
  ASSERT_TRUE(fs_->Create("/filler").ok());
  ASSERT_TRUE(fs_->Write("/filler", 0, Pattern(300 * 1024)).ok());
  std::vector<uint8_t> sink(300 * 1024);
  ASSERT_TRUE(fs_->Read("/filler", 0, sink).ok());

  const SimTime before = clock_.now();
  std::vector<uint8_t> out(64 * 1024);
  ASSERT_TRUE(fs_->Read("/f", 0, out).ok());
  const Duration cost = clock_.now() - before;
  EXPECT_GT(cost, 10 * kMillisecond);  // Mechanical latency is visible.
}

TEST_F(DiskFsTest, MetadataWritesHitDiskSynchronously) {
  const uint64_t writes_before = disk_.stats().writes.value();
  ASSERT_TRUE(fs_->Create("/f").ok());
  // sync_metadata=true: the create pushed bitmap/inode/directory blocks.
  EXPECT_GT(disk_.stats().writes.value(), writes_before);
}

TEST_F(DiskFsTest, AsyncMetadataOptionDefersWrites) {
  DiskSpec spec = TestDiskSpec();
  SimClock clock2;
  DiskDevice disk2(spec, clock2);
  disk2.set_spin_down_after(0);
  DiskFsOptions options;
  options.sync_metadata = false;
  DiskFileSystem fs2(disk2, options);
  const uint64_t writes_before = disk2.stats().writes.value();
  ASSERT_TRUE(fs2.Create("/f").ok());
  EXPECT_EQ(disk2.stats().writes.value(), writes_before);
}

TEST_F(DiskFsTest, DirScansAccumulate) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fs_->Create("/d/f" + std::to_string(i)).ok());
  }
  const uint64_t scans_before = fs_->stats().dir_scans.value();
  ASSERT_TRUE(fs_->Stat("/d/f19").ok());
  // Linear scan: must look at many entries to find the last one.
  EXPECT_GE(fs_->stats().dir_scans.value() - scans_before, 15u);
}

TEST_F(DiskFsTest, OutOfInodesReported) {
  DiskSpec spec = TestDiskSpec();
  SimClock clock2;
  DiskDevice disk2(spec, clock2);
  disk2.set_spin_down_after(0);
  DiskFsOptions options;
  options.inode_count = 8;  // Inodes 2..7 usable (0 reserved, 1 root).
  DiskFileSystem fs2(disk2, options);
  int created = 0;
  for (int i = 0; i < 20; ++i) {
    if (!fs2.Create("/f" + std::to_string(i)).ok()) {
      break;
    }
    ++created;
  }
  EXPECT_EQ(created, 6);
}

TEST_F(DiskFsTest, SparseFileReadsZeros) {
  ASSERT_TRUE(fs_->Create("/sparse").ok());
  ASSERT_TRUE(fs_->Write("/sparse", 100 * 4096, Pattern(10)).ok());
  std::vector<uint8_t> out(4096);
  Result<uint64_t> read = fs_->Read("/sparse", 50 * 4096, out);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, std::vector<uint8_t>(4096, 0));
}

}  // namespace
}  // namespace ssmc
