// Paper-claims regression suite: the headline *shapes* from EXPERIMENTS.md,
// asserted as tests so a code change that silently breaks an experimental
// result fails CI, not just the next person to read a bench table. Each test
// is a scaled-down version of the corresponding bench binary.

#include <gtest/gtest.h>

#include "src/core/machine.h"
#include "src/device/disk_device.h"
#include "src/fs/disk_fs.h"
#include "src/fs/log_fs.h"
#include "src/support/log.h"
#include "src/trace/generator.h"
#include "src/trace/replayer.h"
#include "src/vm/loader.h"

namespace ssmc {
namespace {

class ClaimsTest : public ::testing::Test {
 protected:
  void SetUp() override { SetLogLevel(LogLevel::kError); }
};

// E1: flash writes are ~two orders of magnitude slower than reads; disk
// random access is orders slower than flash reads.
TEST_F(ClaimsTest, E1_DeviceSpeedOrdering) {
  SimClock clock;
  FlashDevice flash(IntelFlash1993(), 1 * kMiB, 1, clock);
  std::vector<uint8_t> buf(512);
  const Duration flash_read = flash.Read(0, buf).value();
  std::vector<uint8_t> data(512, 1);
  const Duration flash_write =
      flash.Program(flash.sector_bytes(), data).value();
  const double wr_ratio = static_cast<double>(flash_write) /
                          static_cast<double>(flash_read);
  EXPECT_GE(wr_ratio, 50.0);
  EXPECT_LE(wr_ratio, 500.0);

  DiskDevice disk(KittyHawkDisk1993(), clock);
  disk.set_spin_down_after(0);
  std::vector<uint8_t> sector(512);
  (void)disk.ReadSectors(0, sector);
  const Duration disk_read =
      disk.ReadSectors(disk.num_sectors() / 2, sector).value();
  EXPECT_GT(disk_read, 100 * flash_read);
}

// E3: the memory-resident FS beats the disk FS by well over an order of
// magnitude on the same trace.
TEST_F(ClaimsTest, E3_MemoryFsBeatsDiskFs) {
  WorkloadOptions options = OfficeWorkload();
  options.duration = kMinute;
  options.max_file_bytes = 64 * 1024;
  const Trace trace = WorkloadGenerator(options).Generate();

  MobileComputer solid(NotebookConfig());
  const ReplayReport ssd = solid.RunTrace(trace);

  SimClock disk_clock;
  DiskDevice disk(FujitsuDisk1993(), disk_clock);
  disk.set_spin_down_after(0);
  DiskFileSystem disk_fs(disk, DiskFsOptions{});
  TraceReplayer replayer(disk_fs, disk_clock);
  const ReplayReport hdd = replayer.Replay(trace);

  EXPECT_EQ(ssd.failures, 0u);
  EXPECT_EQ(hdd.failures, 0u);
  EXPECT_GT(hdd.all_ops.mean_ns(), 50.0 * ssd.all_ops.mean_ns());
}

// E3 (strong baseline): even LFS on disk loses to the memory FS by >5x.
TEST_F(ClaimsTest, E3_MemoryFsBeatsEvenLfs) {
  WorkloadOptions options = OfficeWorkload();
  options.duration = kMinute;
  options.max_file_bytes = 64 * 1024;
  const Trace trace = WorkloadGenerator(options).Generate();

  MobileComputer solid(NotebookConfig());
  const ReplayReport ssd = solid.RunTrace(trace);

  SimClock lfs_clock;
  DiskDevice disk(FujitsuDisk1993(), lfs_clock);
  disk.set_spin_down_after(0);
  LogFileSystem lfs(disk, LogFsOptions{});
  TraceReplayer replayer(lfs, lfs_clock);
  const ReplayReport lfs_report = replayer.Replay(trace);

  EXPECT_EQ(lfs_report.failures, 0u);
  EXPECT_GT(lfs_report.all_ops.mean_ns(), 5.0 * ssd.all_ops.mean_ns());
  // And LFS genuinely fixes the disk write path: its write mean beats the
  // classic disk FS's by an order of magnitude (sequential log).
  SimClock ufs_clock;
  DiskDevice disk2(FujitsuDisk1993(), ufs_clock);
  disk2.set_spin_down_after(0);
  DiskFileSystem ufs(disk2, DiskFsOptions{});
  TraceReplayer replayer2(ufs, ufs_clock);
  const ReplayReport ufs_report = replayer2.Replay(trace);
  EXPECT_LT(lfs_report.ForOp(TraceOp::kWrite).mean_ns() * 10.0,
            ufs_report.ForOp(TraceOp::kWrite).mean_ns());
}

// E5: XIP launch is orders faster than copying and uses no DRAM for code.
TEST_F(ClaimsTest, E5_XipLaunchShape) {
  MobileComputer machine(OmniBookConfig());
  Program program;
  program.path = "/app";
  program.text_bytes = 128 * kKiB;
  ASSERT_TRUE(InstallProgram(machine.fs(), program).ok());
  machine.Idle(2 * kMinute);

  ProgramLoader loader;
  AddressSpace& xip_space = machine.CreateAddressSpace();
  const LaunchResult xip =
      loader.Launch(xip_space, machine.fs(), program,
                    LaunchStrategy::kExecuteInPlace)
          .value();
  Program copy_program = program;
  copy_program.path = "/app2";
  ASSERT_TRUE(InstallProgram(machine.fs(), copy_program).ok());
  machine.Idle(2 * kMinute);
  AddressSpace& copy_space = machine.CreateAddressSpace();
  const LaunchResult copy =
      loader.Launch(copy_space, machine.fs(), copy_program,
                    LaunchStrategy::kCopyFromFlash)
          .value();

  EXPECT_LT(xip.launch_latency * 100, copy.launch_latency);
  EXPECT_EQ(xip.dram_pages_after_launch, 0u);
  EXPECT_EQ(copy.dram_pages_after_launch, 128u * kKiB / 512);
}

// E6: a ~1 MiB write buffer absorbs a substantial share (but not all) of
// the write traffic on a Sprite-shaped workload.
TEST_F(ClaimsTest, E6_WriteBufferAbsorbsTraffic) {
  WorkloadOptions options;
  options.seed = 60;
  options.duration = 3 * kMinute;
  options.mean_interarrival = 45 * kMillisecond;
  options.num_directories = 32;
  options.initial_files = 768;
  options.min_file_bytes = 1024;
  options.max_file_bytes = 128 * 1024;
  options.p_read = 0.25;
  options.p_write = 0.45;
  options.p_create = 0.10;
  options.p_delete = 0.08;
  options.p_whole_file = 0.60;
  options.hot_skew = 0.4;
  options.p_short_lived = 0.40;
  options.short_lived_mean = 30 * kSecond;
  options.partial_io_bytes = 2048;
  const Trace trace = WorkloadGenerator(options).Generate();

  auto flash_writes = [&](uint64_t buffer_pages) {
    MachineConfig config = NotebookConfig();
    config.fs_options.write_buffer_pages = buffer_pages;
    MobileComputer machine(config);
    (void)machine.RunTrace(trace);
    (void)machine.fs().Sync();
    return machine.flash_store().stats().user_writes.value();
  };
  const uint64_t baseline = flash_writes(0);
  const uint64_t buffered = flash_writes(2048);  // 1 MiB.
  const double reduction =
      1.0 - static_cast<double>(buffered) / static_cast<double>(baseline);
  EXPECT_GT(reduction, 0.25);
  EXPECT_LT(reduction, 0.75);
}

// E8: segregated banks keep read-mostly reads near the raw device latency
// while round-robin banks stall substantially.
TEST_F(ClaimsTest, E8_BankSegregationShape) {
  auto run = [&](int banks, int hot) {
    SimClock clock;
    FlashSpec spec = GenericPaperFlash();
    spec.erase_sector_bytes = 4 * kKiB;
    spec.erase_ns = 50 * kMillisecond;
    spec.endurance_cycles = 10000000;
    FlashDevice flash(spec, 2 * kMiB, banks, clock, 4);
    FlashStoreOptions options;
    options.background_writes = true;
    options.hot_bank_count = hot;
    FlashStore store(flash, options);
    std::vector<uint8_t> block(512, 1);
    const uint64_t fill = store.num_blocks() * 7 / 10;
    const uint64_t hot_blocks = fill / 10;
    for (uint64_t b = 0; b < fill; ++b) {
      (void)store.Write(b, block,
                        b < hot_blocks ? WriteStream::kUser
                                       : WriteStream::kRelocation);
    }
    clock.Advance(5 * kMinute);
    Rng rng(17);
    LatencyRecorder reads;
    std::vector<uint8_t> out(512);
    for (int i = 0; i < 100; ++i) {
      (void)store.Write(rng.NextBelow(hot_blocks), block);
      for (int r = 0; r < 8; ++r) {
        const SimTime before = clock.now();
        (void)store.Read(hot_blocks + rng.NextBelow(fill - hot_blocks), out);
        reads.Record(clock.now() - before);
        clock.Advance(500 * kMicrosecond);
      }
    }
    return reads.mean_ns();
  };
  const double round_robin = run(4, 0);
  const double segregated = run(4, 1);
  EXPECT_LT(segregated * 3, round_robin);
}

// E10: "many days" on primaries, "many hours" on the backup.
TEST_F(ClaimsTest, E10_RetentionWindows) {
  MobileComputer machine(NotebookConfig());
  const double standby =
      machine.dram().standby_mw() + machine.flash().standby_mw();
  EXPECT_GT(machine.battery().TimeRemainingAt(standby), 3 * kDay);
  Battery backup_only(0, 250, machine.clock());
  EXPECT_GT(backup_only.TimeRemainingAt(standby), 3 * kHour);
  EXPECT_LT(backup_only.TimeRemainingAt(standby), 3 * kDay);
}

}  // namespace
}  // namespace ssmc
