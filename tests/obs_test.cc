// Unit and property tests for the observability subsystem (src/obs/):
// metric handle registration, snapshot Merge algebra (associativity,
// commutativity, empty identity — the contract that makes per-cell
// registries combine deterministically under any --jobs sharding), the
// span tracer's ring-buffer drop accounting, and the JSON exporters'
// well-formedness.

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/obs/metrics_export.h"
#include "src/obs/obs.h"
#include "src/obs/span_tracer.h"
#include "src/obs/trace_export.h"
#include "src/support/rng.h"

namespace ssmc {
namespace {

// --- MetricsRegistry handles --------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStableAndDeduplicated) {
  MetricsRegistry registry;
  Counter* a = registry.AddCounter("flash/reads");
  Counter* b = registry.AddCounter("flash/reads");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);

  // Registering many more metrics must not invalidate earlier handles.
  for (int i = 0; i < 1000; ++i) {
    registry.AddCounter("c" + std::to_string(i));
  }
  EXPECT_EQ(a->value(), 3u);
  EXPECT_EQ(registry.num_metrics(), 1001u);
}

TEST(MetricsRegistryTest, SnapshotPrefixesEveryKey) {
  MetricsRegistry registry;
  registry.AddCounter("reads")->Add(7);
  registry.AddGauge("dirty")->Set(-2);
  const MetricsSnapshot snap = registry.Snapshot("cell3/");
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.values().at("cell3/reads").counter, 7u);
  EXPECT_EQ(snap.values().at("cell3/dirty").gauge, -2);
}

TEST(MetricsRegistryTest, KeyedCollectorReplacesOnReRegistration) {
  // The crash-recovery contract: a component rebuilt after a failure
  // re-registers its collector under the same key, REPLACING the old
  // closure (which holds a dangling `this`). Only the new one may run.
  MetricsRegistry registry;
  Gauge* g = registry.AddGauge("fs/files");
  registry.AddCollector("fs", [g] { g->Set(1); });
  registry.AddCollector("fs", [g] { g->Set(2); });
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.values().at("fs/files").gauge, 2);
}

TEST(MetricsRegistryTest, SnapshotRunsCollectorsInKeyOrder) {
  MetricsRegistry registry;
  Gauge* g = registry.AddGauge("order");
  // "a" runs after "z" registered first: key order, not insertion order.
  registry.AddCollector("z", [g] { g->Set(1); });
  registry.AddCollector("a", [g] { g->Set(26); });
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.values().at("order").gauge, 1);  // "z" ran last.
}

// --- Merge algebra -------------------------------------------------------

// A pseudo-random snapshot exercising every mergeable kind.
MetricsSnapshot RandomSnapshot(uint64_t seed) {
  Rng rng(seed);
  MetricsSnapshot s;
  // Overlapping key space across seeds so merges actually combine.
  for (const char* key : {"k0", "k1", "k2", "k3"}) {
    if (rng.NextBelow(3) != 0) {
      s.Set(key, MetricValue::MakeCounter(rng.NextBelow(1000)));
    }
  }
  for (const char* key : {"g0", "g1"}) {
    if (rng.NextBelow(2) != 0) {
      s.Set(key, MetricValue::MakeGauge(static_cast<int64_t>(
                     rng.NextBelow(2000)) - 1000));
    }
  }
  if (rng.NextBelow(2) != 0) {
    Histogram h;
    const int n = static_cast<int>(rng.NextBelow(200));
    for (int i = 0; i < n; ++i) {
      h.Record(static_cast<int64_t>(rng.NextBelow(1u << 20)));
    }
    MetricValue v;
    v.kind = MetricValue::Kind::kHistogram;
    v.histogram.CopyFrom(h);
    s.Set("h0", v);
  }
  return s;
}

MetricsSnapshot Merged(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  MetricsSnapshot out = a;
  out.Merge(b);
  return out;
}

TEST(MetricsSnapshotTest, MergeEmptyIsIdentity) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const MetricsSnapshot s = RandomSnapshot(seed);
    const MetricsSnapshot empty;
    EXPECT_EQ(Merged(s, empty), s) << "right identity, seed " << seed;
    EXPECT_EQ(Merged(empty, s), s) << "left identity, seed " << seed;
  }
}

TEST(MetricsSnapshotTest, MergeIsCommutative) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const MetricsSnapshot a = RandomSnapshot(seed);
    const MetricsSnapshot b = RandomSnapshot(seed + 100);
    EXPECT_EQ(Merged(a, b), Merged(b, a)) << "seed " << seed;
  }
}

TEST(MetricsSnapshotTest, MergeIsAssociative) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const MetricsSnapshot a = RandomSnapshot(seed);
    const MetricsSnapshot b = RandomSnapshot(seed + 100);
    const MetricsSnapshot c = RandomSnapshot(seed + 200);
    EXPECT_EQ(Merged(Merged(a, b), c), Merged(a, Merged(b, c)))
        << "seed " << seed;
  }
}

TEST(MetricsSnapshotTest, ShardingIsMergeOrderInvariant) {
  // The --jobs contract in miniature: any contiguous sharding of the same
  // per-cell snapshots merges to the same aggregate.
  std::vector<MetricsSnapshot> cells;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    cells.push_back(RandomSnapshot(seed));
  }
  MetricsSnapshot serial;
  for (const MetricsSnapshot& c : cells) {
    serial.Merge(c);
  }
  for (size_t split = 1; split < cells.size(); ++split) {
    MetricsSnapshot left, right;
    for (size_t i = 0; i < split; ++i) {
      left.Merge(cells[i]);
    }
    for (size_t i = split; i < cells.size(); ++i) {
      right.Merge(cells[i]);
    }
    EXPECT_EQ(Merged(left, right), serial) << "split at " << split;
  }
}

TEST(MetricsSnapshotTest, HistogramMergeIsExact) {
  // Recording the union of two streams equals merging their snapshots:
  // log2 bucketing is fixed, so bucket-merge loses nothing.
  Histogram ha, hb, hu;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBelow(1u << 24));
    ((i % 2 == 0) ? ha : hb).Record(v);
    hu.Record(v);
  }
  HistogramData a, b, u;
  a.CopyFrom(ha);
  b.CopyFrom(hb);
  u.CopyFrom(hu);
  a.Merge(b);
  EXPECT_EQ(a, u);
}

TEST(MetricsSnapshotTest, ScalarKindsAreFirstWriterWinsLabels) {
  MetricsSnapshot a, b;
  a.Set("op", MetricValue::MakeString("read"));
  b.Set("op", MetricValue::MakeString("write"));
  EXPECT_EQ(Merged(a, b).values().at("op").text, "read");
}

// --- SpanTracer ring buffer ---------------------------------------------

TEST(SpanTracerTest, RetainsEverythingUnderCapacity) {
  SpanTracer tracer(/*capacity=*/8);
  const int track = tracer.RegisterTrack("t");
  for (int i = 0; i < 5; ++i) {
    tracer.Span(track, "s", i * 10, 5);
  }
  EXPECT_EQ(tracer.size(), 5u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 5u);
}

TEST(SpanTracerTest, OverflowKeepsNewestAndCountsExactDrops) {
  SpanTracer tracer(/*capacity=*/4);
  const int track = tracer.RegisterTrack("t");
  for (int i = 0; i < 11; ++i) {
    tracer.Instant(track, "i", i);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 7u);  // Exactly 11 - 4.
  EXPECT_EQ(tracer.total_recorded(), 11u);
  // Oldest-first iteration yields the newest 4 events in order.
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].start, static_cast<SimTime>(7 + i));
  }
}

TEST(SpanTracerTest, TrackRegistrationDeduplicatesByName) {
  SpanTracer tracer;
  const int a = tracer.RegisterTrack("flash bank 0");
  const int b = tracer.RegisterTrack("flash bank 1");
  const int a2 = tracer.RegisterTrack("flash bank 0");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(tracer.tracks().size(), 2u);
}

TEST(SpanTracerTest, DefaultCellTagsEveryEvent) {
  SpanTracer tracer;
  tracer.set_default_cell(5);
  tracer.Instant(tracer.RegisterTrack("t"), "i", 1);
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.Events()[0].cell, 5);
}

TEST(SpanTracerTest, NegativeSpanDurationClampsToInstantFloor) {
  SpanTracer tracer;
  tracer.Span(tracer.RegisterTrack("t"), "s", 10, -3);
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_TRUE(tracer.Events()[0].is_span());
  EXPECT_EQ(tracer.Events()[0].dur, 0);
}

// --- Obs bundle + exporters ---------------------------------------------

TEST(ObsTest, SnapshotMetricsPrefixesByCellAndReportsTracerHealth) {
  ObsOptions options;
  options.cell = 2;
  options.trace_capacity = 2;
  Obs obs(options);
  obs.metrics().AddCounter("x")->Add(1);
  obs.tracer().Instant(obs.tracer().RegisterTrack("t"), "i", 0);
  obs.tracer().Instant(0, "i", 1);
  obs.tracer().Instant(0, "i", 2);  // Overflows capacity 2.
  const MetricsSnapshot snap = obs.SnapshotMetrics();
  EXPECT_EQ(snap.values().at("cell2/x").counter, 1u);
  EXPECT_EQ(snap.values().at("cell2/obs/trace_events_retained").counter, 2u);
  EXPECT_EQ(snap.values().at("cell2/obs/trace_events_dropped").counter, 1u);
}

TEST(TraceExportTest, EmitsValidShapeWithDropCounts) {
  ObsOptions options;
  options.cell = 0;
  Obs obs(options);
  const int track = obs.tracer().RegisterTrack("flash bank 0");
  obs.tracer().Span(track, "read", 1000, 500, {"bytes", 512});
  obs.tracer().Instant(track, "sector-retired", 2000);
  std::ostringstream out;
  ASSERT_TRUE(WriteChromeTrace(out, {&obs}));
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"flash bank 0\""), std::string::npos);
  EXPECT_NE(json.find("\"ssmcDropCounts\""), std::string::npos);
  // ts is exact fractional microseconds: 1000 ns = 1.000 us.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
}

TEST(TraceExportTest, EmptyCaptureIsStillWellFormed) {
  std::ostringstream out;
  ASSERT_TRUE(WriteChromeTrace(out, {}));
  EXPECT_NE(out.str().find("\"traceEvents\""), std::string::npos);
}

TEST(MetricsExportTest, WritesSortedKeysAndHistogramRollups) {
  MetricsSnapshot snap;
  snap.Set("b", MetricValue::MakeCounter(2));
  snap.Set("a", MetricValue::MakeInt(-1));
  Histogram h;
  h.Record(100);
  h.Record(200);
  MetricValue hv;
  hv.kind = MetricValue::Kind::kHistogram;
  hv.histogram.CopyFrom(h);
  snap.Set("lat", hv);
  std::ostringstream out;
  WriteMetricsJson(out, snap);
  const std::string json = out.str();
  EXPECT_LT(json.find("\"a\""), json.find("\"b\""));
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsExportTest, QuantileMatchesLiveHistogram) {
  Histogram h;
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBelow(1u << 22)));
  }
  HistogramData d;
  d.CopyFrom(h);
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(HistogramDataQuantile(d, q), h.Quantile(q)) << "q=" << q;
  }
}

}  // namespace
}  // namespace ssmc
