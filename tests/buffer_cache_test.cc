#include "src/fs/buffer_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

namespace ssmc {
namespace {

DiskSpec TestDiskSpec() {
  DiskSpec spec;
  spec.sector_bytes = 512;
  spec.sectors_per_track = 16;
  spec.cylinders = 256;
  spec.min_seek_ns = kMillisecond;
  spec.avg_seek_ns = 10 * kMillisecond;
  spec.max_seek_ns = 20 * kMillisecond;
  spec.rotation_ns = 10 * kMillisecond;
  spec.transfer_mib_per_s = 1.0;
  spec.spin_up_ns = 500 * kMillisecond;
  spec.active_mw = 1500;
  spec.idle_mw = 700;
  spec.standby_mw = 15;
  return spec;
}

class BufferCacheTest : public ::testing::Test {
 protected:
  BufferCacheTest() : disk_(TestDiskSpec(), clock_) {
    disk_.set_spin_down_after(0);
  }

  std::vector<uint8_t> Block(uint8_t fill) {
    return std::vector<uint8_t>(4096, fill);
  }

  SimClock clock_;
  DiskDevice disk_;
};

TEST_F(BufferCacheTest, WriteThenReadHitsCache) {
  BufferCache cache(disk_, 4096, 8);
  ASSERT_TRUE(cache.Write(3, Block(0xAB)).ok());
  const uint64_t disk_reads = disk_.stats().reads.value();
  auto out = Block(0);
  ASSERT_TRUE(cache.Read(3, out).ok());
  EXPECT_EQ(out, Block(0xAB));
  EXPECT_EQ(disk_.stats().reads.value(), disk_reads);  // Served from cache.
  EXPECT_GE(cache.stats().hits.value(), 1u);
}

TEST_F(BufferCacheTest, ReadMissGoesToDisk) {
  BufferCache cache(disk_, 4096, 8);
  auto out = Block(0xFF);
  ASSERT_TRUE(cache.Read(5, out).ok());
  EXPECT_EQ(out, Block(0));  // Disk is zero-filled.
  EXPECT_EQ(cache.stats().misses.value(), 1u);
  EXPECT_EQ(disk_.stats().reads.value(), 1u);
}

TEST_F(BufferCacheTest, DirtyEvictionWritesBack) {
  BufferCache cache(disk_, 4096, 2);
  ASSERT_TRUE(cache.Write(0, Block(1)).ok());
  ASSERT_TRUE(cache.Write(1, Block(2)).ok());
  ASSERT_TRUE(cache.Write(2, Block(3)).ok());  // Evicts block 0.
  EXPECT_EQ(cache.stats().writebacks.value(), 1u);
  EXPECT_EQ(disk_.stats().writes.value(), 1u);
  // Re-reading block 0 faults it back from disk with the right contents.
  auto out = Block(0);
  ASSERT_TRUE(cache.Read(0, out).ok());
  EXPECT_EQ(out, Block(1));
}

TEST_F(BufferCacheTest, CleanEvictionSkipsDisk) {
  BufferCache cache(disk_, 4096, 2);
  auto out = Block(0);
  ASSERT_TRUE(cache.Read(0, out).ok());
  ASSERT_TRUE(cache.Read(1, out).ok());
  const uint64_t writes_before = disk_.stats().writes.value();
  ASSERT_TRUE(cache.Read(2, out).ok());  // Evicts clean block 0.
  EXPECT_EQ(disk_.stats().writes.value(), writes_before);
}

TEST_F(BufferCacheTest, LruOrderRespectsAccess) {
  BufferCache cache(disk_, 4096, 2);
  ASSERT_TRUE(cache.Write(0, Block(1)).ok());
  ASSERT_TRUE(cache.Write(1, Block(2)).ok());
  auto out = Block(0);
  ASSERT_TRUE(cache.Read(0, out).ok());     // Block 0 now MRU.
  ASSERT_TRUE(cache.Write(2, Block(3)).ok());  // Evicts block 1.
  EXPECT_EQ(cache.cached_blocks(), 2u);
  // Block 0 still cached: no disk read to access it.
  const uint64_t reads_before = disk_.stats().reads.value();
  ASSERT_TRUE(cache.Read(0, out).ok());
  EXPECT_EQ(disk_.stats().reads.value(), reads_before);
}

TEST_F(BufferCacheTest, SyncWritesAllDirty) {
  BufferCache cache(disk_, 4096, 8);
  ASSERT_TRUE(cache.Write(0, Block(1)).ok());
  ASSERT_TRUE(cache.Write(1, Block(2)).ok());
  ASSERT_TRUE(cache.Sync().ok());
  EXPECT_EQ(disk_.stats().writes.value(), 2u);
  // Second sync is a no-op: nothing dirty.
  ASSERT_TRUE(cache.Sync().ok());
  EXPECT_EQ(disk_.stats().writes.value(), 2u);
}

TEST_F(BufferCacheTest, WritePartialMergesWithDiskContents) {
  BufferCache cache(disk_, 4096, 8);
  ASSERT_TRUE(cache.Write(0, Block(0xAA)).ok());
  ASSERT_TRUE(cache.Sync().ok());

  // Fresh cache (simulating reboot): partial write must read-modify-write.
  BufferCache cache2(disk_, 4096, 8);
  std::vector<uint8_t> patch(16, 0xBB);
  ASSERT_TRUE(cache2.WritePartial(0, 100, patch).ok());
  auto out = Block(0);
  ASSERT_TRUE(cache2.Read(0, out).ok());
  EXPECT_EQ(out[99], 0xAA);
  EXPECT_EQ(out[100], 0xBB);
  EXPECT_EQ(out[116], 0xAA);
}

TEST_F(BufferCacheTest, InvalidateDropsWithoutWriteback) {
  BufferCache cache(disk_, 4096, 8);
  ASSERT_TRUE(cache.Write(0, Block(1)).ok());
  cache.Invalidate(0);
  EXPECT_EQ(cache.cached_blocks(), 0u);
  ASSERT_TRUE(cache.Sync().ok());
  EXPECT_EQ(disk_.stats().writes.value(), 0u);
}

TEST_F(BufferCacheTest, FlushBlockWritesOne) {
  BufferCache cache(disk_, 4096, 8);
  ASSERT_TRUE(cache.Write(0, Block(1)).ok());
  ASSERT_TRUE(cache.Write(1, Block(2)).ok());
  ASSERT_TRUE(cache.FlushBlock(0).ok());
  EXPECT_EQ(disk_.stats().writes.value(), 1u);
}

TEST_F(BufferCacheTest, OutOfRangeRejected) {
  BufferCache cache(disk_, 4096, 8);
  auto out = Block(0);
  EXPECT_EQ(cache.Read(cache.num_blocks(), out).code(),
            ErrorCode::kOutOfRange);
}

TEST_F(BufferCacheTest, WrongSizeRejected) {
  BufferCache cache(disk_, 4096, 8);
  std::vector<uint8_t> small(100);
  EXPECT_EQ(cache.Read(0, small).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(cache.Write(0, small).code(), ErrorCode::kInvalidArgument);
}

TEST_F(BufferCacheTest, CacheCutsSimulatedTime) {
  BufferCache cache(disk_, 4096, 8);
  auto out = Block(0);
  ASSERT_TRUE(cache.Read(0, out).ok());
  const SimTime after_miss = clock_.now();
  ASSERT_TRUE(cache.Read(0, out).ok());
  // Cache hit costs zero device time in this model.
  EXPECT_EQ(clock_.now(), after_miss);
}

}  // namespace
}  // namespace ssmc
