// Trace and metrics determinism across host parallelism (satellite of the
// obs subsystem PR): the same seed must produce identical span streams and
// identical merged metrics snapshots whether the fleet runs serially or
// sharded wide. Simulated time is the only clock in the trace, each user
// owns a private Obs tagged with its user index (the ScopedLogCell fix), and
// snapshot Merge is order-invariant — so --jobs=1 vs --jobs=4 must agree
// byte for byte.

#include <cstring>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/harness/scaleout.h"
#include "src/obs/metrics_export.h"
#include "src/obs/obs.h"
#include "src/obs/trace_export.h"

namespace ssmc {
namespace {

struct Capture {
  std::vector<std::unique_ptr<Obs>> per_user;

  explicit Capture(int users) {
    per_user.resize(users);
    for (int u = 0; u < users; ++u) {
      ObsOptions options;
      options.cell = u;
      per_user[u] = std::make_unique<Obs>(options);
    }
  }
};

ScaleoutOptions SmallFleet(Capture* capture, int cells, int jobs) {
  ScaleoutOptions options;
  options.users = 4;
  options.cells = cells;
  options.jobs = jobs;
  options.user_duration = 2 * kSecond;  // Small but non-trivial event count.
  options.user_obs = [capture](int user) {
    return capture->per_user[user].get();
  };
  return options;
}

bool SameEvent(const TraceEvent& a, const TraceEvent& b) {
  if (std::strcmp(a.name, b.name) != 0 || a.start != b.start ||
      a.dur != b.dur || a.track != b.track || a.cell != b.cell) {
    return false;
  }
  for (int i = 0; i < 3; ++i) {
    const bool a_used = a.args[i].key != nullptr;
    const bool b_used = b.args[i].key != nullptr;
    if (a_used != b_used) {
      return false;
    }
    if (a_used && (std::strcmp(a.args[i].key, b.args[i].key) != 0 ||
                   a.args[i].value != b.args[i].value)) {
      return false;
    }
  }
  return true;
}

TEST(ObsDeterminismTest, SpanStreamsIdenticalAcrossJobsAndSharding) {
  Capture serial(4);
  Capture wide(4);
  RunScaleout(SmallFleet(&serial, /*cells=*/1, /*jobs=*/1));
  RunScaleout(SmallFleet(&wide, /*cells=*/4, /*jobs=*/4));

  for (int u = 0; u < 4; ++u) {
    const SpanTracer& a = serial.per_user[u]->tracer();
    const SpanTracer& b = wide.per_user[u]->tracer();
    EXPECT_GT(a.total_recorded(), 0u) << "user " << u << " recorded nothing";
    EXPECT_EQ(a.tracks(), b.tracks()) << "user " << u;
    EXPECT_EQ(a.dropped(), b.dropped()) << "user " << u;
    const std::vector<TraceEvent> ea = a.Events();
    const std::vector<TraceEvent> eb = b.Events();
    ASSERT_EQ(ea.size(), eb.size()) << "user " << u;
    for (size_t i = 0; i < ea.size(); ++i) {
      ASSERT_TRUE(SameEvent(ea[i], eb[i]))
          << "user " << u << " event " << i << ": " << ea[i].name << " vs "
          << eb[i].name;
    }
  }
}

TEST(ObsDeterminismTest, MergedMetricsIdenticalAcrossJobsAndSharding) {
  Capture serial(4);
  Capture wide(4);
  RunScaleout(SmallFleet(&serial, /*cells=*/1, /*jobs=*/1));
  RunScaleout(SmallFleet(&wide, /*cells=*/4, /*jobs=*/4));

  MetricsSnapshot merged_serial;
  MetricsSnapshot merged_wide;
  for (int u = 0; u < 4; ++u) {
    merged_serial.Merge(serial.per_user[u]->SnapshotMetrics());
    merged_wide.Merge(wide.per_user[u]->SnapshotMetrics());
  }
  EXPECT_FALSE(merged_serial.empty());
  EXPECT_EQ(merged_serial, merged_wide);

  // And the serialized form — the bytes a --metrics capture would write —
  // matches too.
  std::ostringstream ja, jb;
  WriteMetricsJson(ja, merged_serial);
  WriteMetricsJson(jb, merged_wide);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(ObsDeterminismTest, ChromeTraceBytesIdenticalAcrossJobs) {
  Capture serial(4);
  Capture wide(4);
  RunScaleout(SmallFleet(&serial, /*cells=*/1, /*jobs=*/1));
  RunScaleout(SmallFleet(&wide, /*cells=*/4, /*jobs=*/4));

  auto dump = [](const Capture& c) {
    std::vector<const Obs*> cells;
    for (const std::unique_ptr<Obs>& obs : c.per_user) {
      cells.push_back(obs.get());
    }
    std::ostringstream out;
    WriteChromeTrace(out, cells);
    return out.str();
  };
  const std::string a = dump(serial);
  const std::string b = dump(wide);
  EXPECT_GT(a.size(), 100u);
  EXPECT_EQ(a, b);
}

TEST(ObsDeterminismTest, ReRunWithSameSeedIsBitIdentical) {
  Capture first(4);
  Capture second(4);
  RunScaleout(SmallFleet(&first, /*cells=*/2, /*jobs=*/2));
  RunScaleout(SmallFleet(&second, /*cells=*/2, /*jobs=*/2));
  for (int u = 0; u < 4; ++u) {
    EXPECT_EQ(first.per_user[u]->SnapshotMetrics(),
              second.per_user[u]->SnapshotMetrics())
        << "user " << u;
    EXPECT_EQ(first.per_user[u]->tracer().total_recorded(),
              second.per_user[u]->tracer().total_recorded())
        << "user " << u;
  }
}

}  // namespace
}  // namespace ssmc
