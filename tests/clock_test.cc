#include "src/sim/clock.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

TEST(SimClockTest, StartsAtZero) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  clock.Advance(100);
  clock.Advance(50);
  EXPECT_EQ(clock.now(), 150);
}

TEST(SimClockTest, AdvanceToAbsolute) {
  SimClock clock;
  clock.AdvanceTo(1000);
  EXPECT_EQ(clock.now(), 1000);
  clock.AdvanceTo(1000);  // No-op: same time is allowed.
  EXPECT_EQ(clock.now(), 1000);
}

TEST(SimClockTest, ResetReturnsToZero) {
  SimClock clock;
  clock.Advance(12345);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0);
}

TEST(SimClockTest, AdvanceZeroIsNoop) {
  SimClock clock;
  clock.Advance(0);
  EXPECT_EQ(clock.now(), 0);
}

}  // namespace
}  // namespace ssmc
