#include "src/storage/write_buffer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <vector>

#include "src/support/rng.h"

namespace ssmc {
namespace {

FlashSpec TestFlashSpec() {
  FlashSpec spec;
  spec.read = {100, 10};
  spec.program = {1000, 100};
  spec.erase_sector_bytes = 2048;
  spec.erase_ns = kMillisecond;
  spec.endurance_cycles = 1000000;
  return spec;
}

DramSpec TestDramSpec() {
  DramSpec spec;
  spec.read = {50, 10};
  spec.write = {60, 12};
  spec.active_mw_per_mib = 150;
  spec.standby_mw_per_mib = 1.5;
  return spec;
}

class WriteBufferTest : public ::testing::Test {
 protected:
  WriteBufferTest()
      : dram_(TestDramSpec(), 64 * 1024, clock_),
        flash_(TestFlashSpec(), 256 * 1024, 1, clock_),
        store_(flash_, {}),
        manager_(dram_, store_, 512) {}

  // Creates a buffer whose flushes record into flushed_ and write to the
  // flash store at block = key.block_index.
  std::unique_ptr<WriteBuffer> MakeBuffer(uint64_t capacity_pages) {
    return std::make_unique<WriteBuffer>(
        manager_, capacity_pages,
        [this](const BlockKey& key, const PayloadRef& data, TenantId) -> Status {
          flushed_[key.block_index] += 1;
          Result<Duration> r = store_.WriteRef(key.block_index, data,
                                               WriteStream::kUser,
                                               IoPriority::kForeground);
          return r.ok() ? Status::Ok() : r.status();
        });
  }

  std::vector<uint8_t> Page(uint8_t fill) {
    return std::vector<uint8_t>(512, fill);
  }

  SimClock clock_;
  DramDevice dram_;
  FlashDevice flash_;
  FlashStore store_;
  StorageManager manager_;
  std::map<uint64_t, int> flushed_;
};

TEST_F(WriteBufferTest, PutThenGetRoundTrips) {
  auto buffer = MakeBuffer(16);
  const BlockKey key{1, 0};
  ASSERT_TRUE(buffer->Put(key, Page(0xAA), clock_.now()).ok());
  EXPECT_TRUE(buffer->Contains(key));
  EXPECT_EQ(buffer->dirty_pages(), 1u);
  auto out = Page(0);
  ASSERT_TRUE(buffer->Get(key, out).ok());
  EXPECT_EQ(out, Page(0xAA));
  EXPECT_TRUE(flushed_.empty());  // Nothing reached flash.
}

TEST_F(WriteBufferTest, GetMissingIsNotFound) {
  auto buffer = MakeBuffer(16);
  auto out = Page(0);
  EXPECT_EQ(buffer->Get(BlockKey{1, 0}, out).code(), ErrorCode::kNotFound);
}

TEST_F(WriteBufferTest, WrongSizeRejected) {
  auto buffer = MakeBuffer(16);
  std::vector<uint8_t> small(100);
  EXPECT_EQ(buffer->Put(BlockKey{1, 0}, small, 0).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(WriteBufferTest, OverwriteAbsorbedInDram) {
  auto buffer = MakeBuffer(16);
  const BlockKey key{1, 0};
  ASSERT_TRUE(buffer->Put(key, Page(1), clock_.now()).ok());
  ASSERT_TRUE(buffer->Put(key, Page(2), clock_.now()).ok());
  ASSERT_TRUE(buffer->Put(key, Page(3), clock_.now()).ok());
  EXPECT_EQ(buffer->stats().absorbed_overwrites.value(), 2u);
  EXPECT_EQ(buffer->dirty_pages(), 1u);
  EXPECT_TRUE(flushed_.empty());
  auto out = Page(0);
  ASSERT_TRUE(buffer->Get(key, out).ok());
  EXPECT_EQ(out, Page(3));
}

TEST_F(WriteBufferTest, CapacityEvictionFlushesOldest) {
  auto buffer = MakeBuffer(2);
  ASSERT_TRUE(buffer->Put(BlockKey{1, 0}, Page(1), clock_.now()).ok());
  ASSERT_TRUE(buffer->Put(BlockKey{1, 1}, Page(2), clock_.now()).ok());
  ASSERT_TRUE(buffer->Put(BlockKey{1, 2}, Page(3), clock_.now()).ok());
  EXPECT_EQ(buffer->dirty_pages(), 2u);
  EXPECT_EQ(buffer->stats().capacity_evictions.value(), 1u);
  EXPECT_EQ(flushed_[0], 1);  // Oldest block flushed.
  EXPECT_FALSE(buffer->Contains(BlockKey{1, 0}));
}

TEST_F(WriteBufferTest, OverwriteKeepsFirstDirtyOrder) {
  // Ordering follows first dirtying (BSD 30-second-rule semantics), so an
  // overwrite does not postpone a block's flush indefinitely.
  auto buffer = MakeBuffer(2);
  ASSERT_TRUE(buffer->Put(BlockKey{1, 0}, Page(1), clock_.now()).ok());
  ASSERT_TRUE(buffer->Put(BlockKey{1, 1}, Page(2), clock_.now()).ok());
  // Touch block 0 again: it stays the oldest-dirtied and is evicted first.
  ASSERT_TRUE(buffer->Put(BlockKey{1, 0}, Page(3), clock_.now()).ok());
  ASSERT_TRUE(buffer->Put(BlockKey{1, 2}, Page(4), clock_.now()).ok());
  EXPECT_EQ(flushed_[0], 1);
  EXPECT_TRUE(buffer->Contains(BlockKey{1, 1}));
}

TEST_F(WriteBufferTest, HotBlockStillAgesOut) {
  auto buffer = MakeBuffer(16);
  ASSERT_TRUE(buffer->Put(BlockKey{1, 0}, Page(1), clock_.now()).ok());
  // Keep overwriting for 40 s — hotter than the flush age.
  for (int i = 0; i < 40; ++i) {
    clock_.Advance(kSecond);
    ASSERT_TRUE(buffer->Put(BlockKey{1, 0}, Page(2), clock_.now()).ok());
  }
  ASSERT_TRUE(buffer->FlushOlderThan(clock_.now(), 30 * kSecond).ok());
  // First dirtied 40 s ago: it must flush despite constant overwrites.
  EXPECT_EQ(flushed_[0], 1);
}

TEST_F(WriteBufferTest, OverwrittenHotBlockFlushesWithinExactlyOneAgeWindow) {
  // Regression for the FlushOlderThan early-stop invariant: lru_ is in
  // FIRST-dirty order because Put's overwrite path neither refreshes
  // dirty_since nor moves the entry. A hot block must flush at exactly one
  // age window after its first buffered write — no earlier (overwrites are
  // still being absorbed) and no later (an implementation that re-ordered on
  // overwrite would hide the old block behind younger entries and the
  // early-stop would defer it indefinitely).
  auto buffer = MakeBuffer(16);
  const Duration kWindow = 30 * kSecond;
  const SimTime first_dirty = clock_.now();
  ASSERT_TRUE(buffer->Put(BlockKey{1, 0}, Page(1), clock_.now()).ok());
  // A younger block queued behind it must not shadow the older hot one.
  clock_.Advance(kSecond);
  ASSERT_TRUE(buffer->Put(BlockKey{1, 1}, Page(9), clock_.now()).ok());

  // Overwrite every second, running the periodic flush like a sync daemon.
  while (clock_.now() - first_dirty < kWindow) {
    ASSERT_TRUE(buffer->FlushOlderThan(clock_.now(), kWindow).ok());
    EXPECT_TRUE(flushed_.empty()) << "flushed before the age window elapsed";
    clock_.Advance(kSecond);
    ASSERT_TRUE(buffer->Put(BlockKey{1, 0}, Page(2), clock_.now()).ok());
  }

  ASSERT_TRUE(buffer->FlushOlderThan(clock_.now(), kWindow).ok());
  EXPECT_EQ(flushed_[0], 1);                      // Hot block reached flash,
  EXPECT_EQ(buffer->stats().flushes.value(), 1u);  // and nothing else did:
  EXPECT_TRUE(buffer->Contains(BlockKey{1, 1}));   // 29 s old, still young.
}

TEST_F(WriteBufferTest, DropAvoidsFlashWrite) {
  auto buffer = MakeBuffer(16);
  const BlockKey key{7, 3};
  ASSERT_TRUE(buffer->Put(key, Page(1), clock_.now()).ok());
  EXPECT_TRUE(buffer->Drop(key));
  EXPECT_FALSE(buffer->Drop(key));  // Already gone.
  ASSERT_TRUE(buffer->FlushAll().ok());
  EXPECT_TRUE(flushed_.empty());
  EXPECT_EQ(buffer->stats().dropped_writes.value(), 1u);
}

TEST_F(WriteBufferTest, FlushAllWritesEverything) {
  auto buffer = MakeBuffer(16);
  for (uint64_t b = 0; b < 5; ++b) {
    ASSERT_TRUE(buffer->Put(BlockKey{1, b}, Page(1), clock_.now()).ok());
  }
  ASSERT_TRUE(buffer->FlushAll().ok());
  EXPECT_EQ(buffer->dirty_pages(), 0u);
  EXPECT_EQ(flushed_.size(), 5u);
  EXPECT_EQ(buffer->stats().flushes.value(), 5u);
}

TEST_F(WriteBufferTest, FlushOlderThanHonorsAge) {
  auto buffer = MakeBuffer(16);
  ASSERT_TRUE(buffer->Put(BlockKey{1, 0}, Page(1), clock_.now()).ok());
  clock_.Advance(40 * kSecond);
  ASSERT_TRUE(buffer->Put(BlockKey{1, 1}, Page(2), clock_.now()).ok());
  // Block 0 is 40 s old; block 1 fresh. 30 s threshold flushes only block 0.
  ASSERT_TRUE(buffer->FlushOlderThan(clock_.now(), 30 * kSecond).ok());
  EXPECT_EQ(flushed_.size(), 1u);
  EXPECT_EQ(flushed_[0], 1);
  EXPECT_TRUE(buffer->Contains(BlockKey{1, 1}));
}

TEST_F(WriteBufferTest, ZeroCapacityWritesThrough) {
  auto buffer = MakeBuffer(0);
  ASSERT_TRUE(buffer->Put(BlockKey{1, 0}, Page(1), clock_.now()).ok());
  EXPECT_EQ(buffer->dirty_pages(), 0u);
  EXPECT_EQ(flushed_[0], 1);
  EXPECT_EQ(buffer->stats().flushes.value(), 1u);
}

TEST_F(WriteBufferTest, DropAllReportsLostBytes) {
  auto buffer = MakeBuffer(16);
  for (uint64_t b = 0; b < 3; ++b) {
    ASSERT_TRUE(buffer->Put(BlockKey{1, b}, Page(1), clock_.now()).ok());
  }
  EXPECT_EQ(buffer->DropAllUnflushed(), 3u * 512);
  EXPECT_EQ(buffer->dirty_pages(), 0u);
  EXPECT_TRUE(flushed_.empty());
}

TEST_F(WriteBufferTest, DramPagesReturnedOnDropAndFlush) {
  auto buffer = MakeBuffer(16);
  const uint64_t free_before = manager_.free_dram_pages();
  ASSERT_TRUE(buffer->Put(BlockKey{1, 0}, Page(1), clock_.now()).ok());
  ASSERT_TRUE(buffer->Put(BlockKey{1, 1}, Page(1), clock_.now()).ok());
  EXPECT_EQ(manager_.free_dram_pages(), free_before - 2);
  buffer->Drop(BlockKey{1, 0});
  ASSERT_TRUE(buffer->FlushAll().ok());
  EXPECT_EQ(manager_.free_dram_pages(), free_before);
}

TEST_F(WriteBufferTest, RandomizedEvictionOrderIsStrictlyOldestFirst) {
  // Property test for the LRU invariant the flush daemon's early-stop and
  // the residency layer's FlushStream accounting both rely on: every
  // capacity eviction flushes exactly the entry whose FIRST dirtying is
  // oldest, regardless of overwrites, drops, and targeted flushes in
  // between. A reference model tracks first-put order in a deque; the
  // buffer's observed flush order must replay it.
  constexpr uint64_t kCapacity = 8;
  std::deque<uint64_t> model;  // Blocks in first-dirty order, front = oldest.
  std::vector<uint64_t> evicted;
  WriteBuffer buffer(
      manager_, kCapacity,
      [this, &evicted](const BlockKey& key, const PayloadRef& data, TenantId) -> Status {
        evicted.push_back(key.block_index);
        Result<Duration> r = store_.WriteRef(key.block_index, data,
                                             WriteStream::kUser,
                                             IoPriority::kForeground);
        return r.ok() ? Status::Ok() : r.status();
      });

  Rng rng(0xE12);
  uint64_t model_puts = 0;
  uint64_t model_drops = 0;
  std::vector<uint64_t> expected_evictions;
  for (int op = 0; op < 2000; ++op) {
    const uint64_t block = rng.NextBelow(32);
    const uint64_t action = rng.NextBelow(10);
    const bool buffered =
        std::find(model.begin(), model.end(), block) != model.end();
    if (action < 7) {  // Put (possibly an absorbed overwrite).
      if (!buffered && model.size() == kCapacity) {
        expected_evictions.push_back(model.front());  // Oldest must go.
        model.pop_front();
      }
      if (!buffered) {
        model.push_back(block);
      }
      // Overwrites must NOT move the entry: first-dirty order is preserved.
      ASSERT_TRUE(buffer.Put(BlockKey{1, block}, Page(1), clock_.now()).ok());
      ++model_puts;
    } else if (action < 9) {  // Drop (write avoidance).
      if (buffered) {
        model.erase(std::find(model.begin(), model.end(), block));
        ++model_drops;
      }
      EXPECT_EQ(buffer.Drop(BlockKey{1, block}), buffered);
    } else {  // Targeted flush of a specific block.
      if (buffered) {
        model.erase(std::find(model.begin(), model.end(), block));
        expected_evictions.push_back(block);
      }
      ASSERT_TRUE(buffer.Flush(BlockKey{1, block}).ok());
    }
    clock_.Advance(kMillisecond);
    ASSERT_EQ(buffer.dirty_pages(), model.size());
  }

  // Flush order matched the model exactly — capacity evictions were always
  // the strictly oldest-dirtied entry.
  EXPECT_EQ(evicted, expected_evictions);
  ASSERT_FALSE(expected_evictions.empty());

  // Drain and check merged-stats parity: every put is accounted for as a
  // flush, an avoided (dropped) write, or a still-buffered absorbed
  // overwrite — nothing lost, nothing double-counted.
  ASSERT_TRUE(buffer.FlushAll().ok());
  const WriteBuffer::Stats& stats = buffer.stats();
  EXPECT_EQ(stats.puts.value(), model_puts);
  EXPECT_EQ(stats.flushes.value() + stats.dropped_writes.value() +
                stats.absorbed_overwrites.value(),
            model_puts);
  EXPECT_EQ(stats.dropped_writes.value(), model_drops);
  EXPECT_EQ(stats.put_bytes.value(), model_puts * 512);
  EXPECT_EQ(stats.flushed_bytes.value(), stats.flushes.value() * 512);
  EXPECT_EQ(stats.dropped_bytes.value(), stats.dropped_writes.value() * 512);
  EXPECT_EQ(buffer.dirty_pages(), 0u);
}

TEST_F(WriteBufferTest, WriteTrafficReductionUnderOverwrites) {
  // The headline mechanism of E6: repeated overwrites of a small set of hot
  // blocks reach flash far fewer times than they are written.
  auto buffer = MakeBuffer(64);
  int puts = 0;
  for (int round = 0; round < 100; ++round) {
    for (uint64_t b = 0; b < 8; ++b) {
      ASSERT_TRUE(buffer->Put(BlockKey{1, b}, Page(1), clock_.now()).ok());
      ++puts;
    }
  }
  ASSERT_TRUE(buffer->FlushAll().ok());
  const uint64_t flushed_total = buffer->stats().flushes.value();
  EXPECT_EQ(flushed_total, 8u);  // One flash write per hot block.
  EXPECT_EQ(puts, 800);
}

}  // namespace
}  // namespace ssmc
