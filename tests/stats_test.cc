#include "src/sim/stats.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, BasicMoments) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(HistogramTest, ZeroGoesToBucketZero) {
  Histogram h;
  h.Record(0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, QuantileWithinBucketResolution) {
  Histogram h;
  for (int i = 0; i < 99; ++i) {
    h.Record(100);  // Bucket [64, 128).
  }
  h.Record(100000);  // One outlier.
  const uint64_t p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 64u);
  EXPECT_LE(p50, 127u);
  // The top quantile should land in the outlier's bucket, capped at max.
  EXPECT_GE(h.Quantile(1.0), 65536u);
  EXPECT_LE(h.Quantile(1.0), 100000u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(5);
  b.Record(500);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 500u);
}

TEST(HistogramTest, MergeWithEmptyKeepsStats) {
  Histogram a;
  Histogram empty;
  a.Record(5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 5u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(9);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(LatencyRecorderTest, RecordsDurations) {
  LatencyRecorder r;
  r.Record(1000);
  r.Record(3000);
  EXPECT_EQ(r.count(), 2u);
  EXPECT_DOUBLE_EQ(r.mean_ns(), 2000.0);
  EXPECT_EQ(r.min_ns(), 1000u);
  EXPECT_EQ(r.max_ns(), 3000u);
  EXPECT_EQ(r.total_ns(), 4000u);
}

TEST(LatencyRecorderTest, NegativeDurationsClampToZero) {
  LatencyRecorder r;
  r.Record(-5);
  EXPECT_EQ(r.min_ns(), 0u);
}

TEST(LatencyRecorderTest, SummaryMentionsCount) {
  LatencyRecorder r;
  EXPECT_EQ(r.Summary(), "no samples");
  r.Record(1000);
  EXPECT_NE(r.Summary().find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace ssmc
