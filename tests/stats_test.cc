#include "src/sim/stats.h"

#include <gtest/gtest.h>

namespace ssmc {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, BasicMoments) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(HistogramTest, ZeroGoesToBucketZero) {
  Histogram h;
  h.Record(0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, QuantileWithinBucketResolution) {
  Histogram h;
  for (int i = 0; i < 99; ++i) {
    h.Record(100);  // Bucket [64, 128).
  }
  h.Record(100000);  // One outlier.
  const uint64_t p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 64u);
  EXPECT_LE(p50, 127u);
  // The top quantile should land in the outlier's bucket, capped at max.
  EXPECT_GE(h.Quantile(1.0), 65536u);
  EXPECT_LE(h.Quantile(1.0), 100000u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(5);
  b.Record(500);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 500u);
}

TEST(HistogramTest, MergeWithEmptyKeepsStats) {
  Histogram a;
  Histogram empty;
  a.Record(5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 5u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(9);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(LatencyRecorderTest, RecordsDurations) {
  LatencyRecorder r;
  r.Record(1000);
  r.Record(3000);
  EXPECT_EQ(r.count(), 2u);
  EXPECT_DOUBLE_EQ(r.mean_ns(), 2000.0);
  EXPECT_EQ(r.min_ns(), 1000u);
  EXPECT_EQ(r.max_ns(), 3000u);
  EXPECT_EQ(r.total_ns(), 4000u);
}

TEST(LatencyRecorderTest, NegativeDurationsClampToZero) {
  LatencyRecorder r;
  r.Record(-5);
  EXPECT_EQ(r.min_ns(), 0u);
}

TEST(CounterTest, MergeSumsValues) {
  Counter a;
  Counter b;
  a.Add(10);
  b.Add(32);
  a.Merge(b);
  EXPECT_EQ(a.value(), 42u);
  EXPECT_EQ(b.value(), 32u);  // Source is untouched.
  Counter empty;
  a.Merge(empty);
  EXPECT_EQ(a.value(), 42u);
}

// Merging shard recorders must be exactly equivalent to one recorder having
// seen the concatenated sample stream — this is what makes sharded
// experiment results independent of the shard count.
TEST(LatencyRecorderTest, MergeOfShardsMatchesSingleRecorder) {
  const uint64_t samples[] = {0,    1,     7,      64,     100,    1000,
                              4096, 99999, 100000, 123456, 7777777};
  LatencyRecorder whole;
  LatencyRecorder shard_a;
  LatencyRecorder shard_b;
  size_t i = 0;
  for (const uint64_t s : samples) {
    whole.Record(static_cast<Duration>(s));
    ((i++ % 3 == 0) ? shard_a : shard_b).Record(static_cast<Duration>(s));
  }
  LatencyRecorder merged;
  merged.Merge(shard_a);
  merged.Merge(shard_b);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.total_ns(), whole.total_ns());
  EXPECT_EQ(merged.min_ns(), whole.min_ns());
  EXPECT_EQ(merged.max_ns(), whole.max_ns());
  EXPECT_DOUBLE_EQ(merged.mean_ns(), whole.mean_ns());
  EXPECT_EQ(merged.p50_ns(), whole.p50_ns());
  EXPECT_EQ(merged.p95_ns(), whole.p95_ns());
  EXPECT_EQ(merged.p99_ns(), whole.p99_ns());
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(merged.histogram().bucket_count(b),
              whole.histogram().bucket_count(b))
        << "bucket " << b;
  }
}

TEST(LatencyRecorderTest, MergeWithEmptyIsIdentity) {
  LatencyRecorder r;
  r.Record(1000);
  LatencyRecorder empty;
  r.Merge(empty);
  EXPECT_EQ(r.count(), 1u);
  EXPECT_EQ(r.min_ns(), 1000u);
  empty.Merge(r);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min_ns(), 1000u);
}

TEST(LatencyRecorderTest, SummaryMentionsCount) {
  LatencyRecorder r;
  EXPECT_EQ(r.Summary(), "no samples");
  r.Record(1000);
  EXPECT_NE(r.Summary().find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace ssmc
