#include "src/support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ssmc {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> poisoned =
      pool.Submit([]() -> int { throw std::runtime_error("cell exploded"); });
  std::future<int> healthy = pool.Submit([] { return 1; });
  EXPECT_THROW(
      {
        try {
          poisoned.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "cell exploded");
          throw;
        }
      },
      std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(healthy.get(), 1);
  EXPECT_EQ(pool.Submit([] { return 2; }).get(), 2);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    // One slow worker and a deep queue: destruction must run every queued
    // task, not discard them.
    ThreadPool pool(1);
    futures.push_back(pool.Submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); }));
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
    }
  }
  EXPECT_EQ(ran.load(), 64);
  for (std::future<void>& f : futures) {
    f.get();  // Every future is ready; none was abandoned.
  }
}

TEST(ThreadPoolTest, DefaultJobsHonorsEnvOverride) {
  ASSERT_EQ(setenv("SSMC_JOBS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(DefaultJobs(), 3);
  ASSERT_EQ(setenv("SSMC_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(DefaultJobs(), 1);  // Unparsable: falls back to CPU count.
  ASSERT_EQ(unsetenv("SSMC_JOBS"), 0);
  EXPECT_GE(DefaultJobs(), 1);
}

TEST(ThreadPoolTest, JobsFromArgsParsesOverrides) {
  ASSERT_EQ(unsetenv("SSMC_JOBS"), 0);
  {
    const char* argv[] = {"bench", "--jobs=5"};
    EXPECT_EQ(JobsFromArgs(2, const_cast<char**>(argv)), 5);
  }
  {
    const char* argv[] = {"bench", "-j", "6"};
    EXPECT_EQ(JobsFromArgs(3, const_cast<char**>(argv)), 6);
  }
  {
    const char* argv[] = {"bench", "-j7"};
    EXPECT_EQ(JobsFromArgs(2, const_cast<char**>(argv)), 7);
  }
  {
    const char* argv[] = {"bench", "--jobs=0"};  // Invalid: fall back.
    EXPECT_GE(JobsFromArgs(2, const_cast<char**>(argv)), 1);
  }
  {
    const char* argv[] = {"bench"};
    EXPECT_EQ(JobsFromArgs(1, const_cast<char**>(argv)), DefaultJobs());
  }
}

}  // namespace
}  // namespace ssmc
