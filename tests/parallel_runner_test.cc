// Determinism suite for the parallel experiment harness: a parallel run of
// an E3-style machine matrix and a sharded E11 scale-out run must produce
// reports — and the tables formatted from them — byte-identical to the
// serial (--jobs=1 / K=1) runs. This is the contract that lets every bench
// sweep run on all CPUs without changing a single published number.

#include "src/harness/parallel_runner.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/harness/scaleout.h"
#include "src/support/table.h"
#include "src/trace/generator.h"

namespace ssmc {
namespace {

void ExpectReportsIdentical(const ReplayReport& a, const ReplayReport& b) {
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.failed_read_bytes, b.failed_read_bytes);
  EXPECT_EQ(a.failed_write_bytes, b.failed_write_bytes);
  EXPECT_EQ(a.started, b.started);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.all_ops.total_ns(), b.all_ops.total_ns());
  for (int bucket = 0; bucket < Histogram::kBuckets; ++bucket) {
    EXPECT_EQ(a.all_ops.histogram().bucket_count(bucket),
              b.all_ops.histogram().bucket_count(bucket));
  }
  for (size_t op = 0; op < a.per_op.size(); ++op) {
    EXPECT_EQ(a.per_op[op].count(), b.per_op[op].count()) << "op " << op;
    EXPECT_EQ(a.per_op[op].total_ns(), b.per_op[op].total_ns()) << "op " << op;
  }
}

// Formats reports the way the E3 bench does, so the comparison covers the
// full path from simulation to printed cell text.
std::string FormatMatrixTable(const std::vector<ReplayReport>& reports) {
  Table table({"cell", "ops/s", "read mean", "write p99", "busy time"});
  for (size_t i = 0; i < reports.size(); ++i) {
    const ReplayReport& r = reports[i];
    table.AddRow();
    table.AddCell(static_cast<int64_t>(i));
    table.AddCell(FormatDouble(r.OpsPerSecond(), 0));
    table.AddCell(FormatDuration(
        static_cast<Duration>(r.ForOp(TraceOp::kRead).mean_ns())));
    table.AddCell(FormatDuration(
        static_cast<Duration>(r.ForOp(TraceOp::kWrite).p99_ns())));
    table.AddCell(FormatDuration(static_cast<Duration>(r.all_ops.total_ns())));
  }
  return table.ToString();
}

TEST(DeriveCellSeedTest, DeterministicAndDistinct) {
  EXPECT_EQ(DeriveCellSeed(42, 0), DeriveCellSeed(42, 0));
  EXPECT_NE(DeriveCellSeed(42, 0), DeriveCellSeed(42, 1));
  EXPECT_NE(DeriveCellSeed(42, 0), DeriveCellSeed(43, 0));
  // Cell 0 is not the raw base seed (the walk starts one gamma in).
  EXPECT_NE(DeriveCellSeed(42, 0), 42u);
}

TEST(ParallelRunnerTest, RunOrderedReturnsSubmissionOrder) {
  ParallelRunner runner(/*jobs=*/4);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([i] {
      // Early tasks sleep longest: completion order inverts submission
      // order, so this only passes if results are reordered correctly.
      std::this_thread::sleep_for(std::chrono::milliseconds(16 - i));
      return i;
    });
  }
  const std::vector<int> results = runner.RunOrdered(std::move(tasks));
  ASSERT_EQ(results.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)], i);
  }
}

TEST(ParallelRunnerTest, TaskExceptionPropagates) {
  ParallelRunner runner(/*jobs=*/2);
  std::vector<std::function<int()>> tasks;
  tasks.push_back([] { return 1; });
  tasks.push_back([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(runner.RunOrdered(std::move(tasks)), std::runtime_error);
}

std::vector<MachineCell> E3StyleMatrix(const Trace& trace) {
  std::vector<MachineCell> cells;
  {
    MachineCell cell;
    cell.config = NotebookConfig();
    cell.trace = &trace;
    cells.push_back(std::move(cell));
  }
  {
    MachineCell cell;
    cell.config = NotebookConfig();
    cell.config.fs_options.write_buffer_pages = 0;  // Write-through ablation.
    cell.trace = &trace;
    cells.push_back(std::move(cell));
  }
  {
    MachineCell cell;
    cell.config = OmniBookConfig();
    cell.trace = &trace;
    cells.push_back(std::move(cell));
  }
  {
    MachineCell cell;
    cell.config = NotebookConfig();
    cell.config.flash_banks = 1;  // Bank ablation.
    cell.trace = &trace;
    cells.push_back(std::move(cell));
  }
  return cells;
}

TEST(ParallelRunnerTest, MachineMatrixByteIdenticalToSerial) {
  WorkloadOptions options = OfficeWorkload();
  options.duration = 20 * kSecond;
  options.max_file_bytes = 32 * 1024;
  const Trace trace = WorkloadGenerator(options).Generate();

  ParallelRunner serial(/*jobs=*/1);
  ParallelRunner parallel(/*jobs=*/4);
  const std::vector<ReplayReport> serial_reports =
      serial.RunMachineCells(E3StyleMatrix(trace));
  const std::vector<ReplayReport> parallel_reports =
      parallel.RunMachineCells(E3StyleMatrix(trace));

  ASSERT_EQ(serial_reports.size(), parallel_reports.size());
  for (size_t i = 0; i < serial_reports.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    ExpectReportsIdentical(serial_reports[i], parallel_reports[i]);
  }
  EXPECT_EQ(FormatMatrixTable(serial_reports),
            FormatMatrixTable(parallel_reports));
  // Sanity: the matrix did real work.
  EXPECT_GT(serial_reports[0].ops, 100u);
}

TEST(ScaleoutTest, ShardedRunByteIdenticalToSerial) {
  ScaleoutOptions options;
  options.users = 5;
  options.user_duration = 10 * kSecond;
  options.base_seed = 911;

  options.cells = 1;
  options.jobs = 1;
  const ScaleoutReport serial = RunScaleout(options);

  for (const int k : {2, 3, 5}) {
    SCOPED_TRACE("K = " + std::to_string(k));
    options.cells = k;
    options.jobs = 3;
    const ScaleoutReport sharded = RunScaleout(options);
    ASSERT_EQ(sharded.per_user.size(), serial.per_user.size());
    for (size_t u = 0; u < serial.per_user.size(); ++u) {
      SCOPED_TRACE("user " + std::to_string(u));
      ExpectReportsIdentical(serial.per_user[u], sharded.per_user[u]);
    }
    ExpectReportsIdentical(serial.aggregate, sharded.aggregate);
    EXPECT_EQ(FormatMatrixTable(serial.per_user),
              FormatMatrixTable(sharded.per_user));
    EXPECT_DOUBLE_EQ(serial.SimOpsPerSimSecond(), sharded.SimOpsPerSimSecond());
  }
  // The fleet did real work and the merge saw every user.
  EXPECT_GT(serial.aggregate.ops, 100u);
  uint64_t sum = 0;
  for (const ReplayReport& r : serial.per_user) {
    sum += r.ops;
  }
  EXPECT_EQ(serial.aggregate.ops, sum);
}

TEST(ScaleoutTest, TenantMixTagsFleetWithoutPerturbingFifoTiming) {
  ScaleoutOptions options;
  options.users = 4;
  options.cells = 2;
  options.jobs = 2;
  options.user_duration = 5 * kSecond;
  const ScaleoutReport legacy = RunScaleout(options);

  // A two-class {office, write-hot} mix reproduces the legacy even/odd
  // alternation seed-for-seed; under FIFO the tenant tags are bookkeeping
  // only, so every timing-derived number in the aggregate is identical.
  options.tenant_mix = {{1, /*write_hot=*/false, 1, 0, 0},
                        {2, /*write_hot=*/true, 1, 0, 0}};
  options.io_sched = IoSchedPolicy::kFifo;
  const ScaleoutReport mixed = RunScaleout(options);
  ExpectReportsIdentical(legacy.aggregate, mixed.aggregate);

  // But the tagged fleet's aggregate carries per-tenant lanes, streamed
  // through the same shard fold as every other counter: the untagged fleet
  // lands entirely in the default-tenant lane, the mix entirely in its
  // named classes.
  ASSERT_EQ(legacy.aggregate.by_tenant.entries().size(), 1u);
  EXPECT_EQ(legacy.aggregate.by_tenant.entries()[0].tenant, kDefaultTenant);
  EXPECT_EQ(mixed.aggregate.by_tenant.Find(kDefaultTenant), nullptr);
  for (TenantId t : {TenantId{1}, TenantId{2}}) {
    const TenantLatency* lane = mixed.aggregate.by_tenant.Find(t);
    ASSERT_NE(lane, nullptr) << "tenant " << t;
    EXPECT_GT(lane->reads.count() + lane->writes.count(), 0u);
  }
}

TEST(ScaleoutTest, CellCountClampedToUsers) {
  ScaleoutOptions options;
  options.users = 2;
  options.cells = 8;  // More shards than users: clamp, don't crash.
  options.jobs = 2;
  options.user_duration = 2 * kSecond;
  const ScaleoutReport report = RunScaleout(options);
  EXPECT_EQ(report.cells, 2);
  EXPECT_EQ(report.per_user.size(), 2u);
}

}  // namespace
}  // namespace ssmc
