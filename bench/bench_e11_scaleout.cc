// E11 — Multi-user scale-out on the parallel harness (experiment M2).
//
// The ROADMAP's north star is serving heavy traffic from many users as fast
// as the hardware allows. The simulator's unit of work — one machine, one
// trace — is a closed world, so a fleet of M simulated users shards
// perfectly over K concurrent cells. This bench replays M users (alternating
// office / write-hot profiles, seeds derived per user via splitmix64 from
// one base seed) sharded over K cells for K = 1 .. available CPUs, and
// reports:
//  * the aggregate simulated throughput (identical for every K — sharding
//    must never change results; the bench asserts the merged report is
//    bit-identical to the K=1 run);
//  * the host wall-clock time and the speedup curve vs K=1.
// Results also land in BENCH_scaleout.json for machine consumption.

#include <chrono>
#include <vector>

#include "bench/bench_common.h"
#include "src/harness/scaleout.h"
#include "src/obs/metrics_export.h"

namespace ssmc {
namespace {

struct SweepPoint {
  int cells = 0;
  ScaleoutReport report;
  double host_ms = 0;
};

double HostMillis(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Bit-level equality of two reports (counts, windows, and every histogram).
bool ReportsIdentical(const ReplayReport& a, const ReplayReport& b) {
  if (a.ops != b.ops || a.failures != b.failures ||
      a.bytes_read != b.bytes_read || a.bytes_written != b.bytes_written ||
      a.failed_read_bytes != b.failed_read_bytes ||
      a.failed_write_bytes != b.failed_write_bytes ||
      a.started != b.started || a.finished != b.finished) {
    return false;
  }
  auto same_hist = [](const LatencyRecorder& x, const LatencyRecorder& y) {
    if (x.count() != y.count() || x.total_ns() != y.total_ns() ||
        x.min_ns() != y.min_ns() || x.max_ns() != y.max_ns()) {
      return false;
    }
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (x.histogram().bucket_count(b) != y.histogram().bucket_count(b)) {
        return false;
      }
    }
    return true;
  };
  if (!same_hist(a.all_ops, b.all_ops)) {
    return false;
  }
  for (size_t i = 0; i < a.per_op.size(); ++i) {
    if (!same_hist(a.per_op[i], b.per_op[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E11: multi-user scale-out on the parallel harness (M2)",
              "Claim: independent simulation cells shard perfectly: K cells "
              "on K CPUs cut host time\n~K-fold while the aggregate report "
              "stays bit-identical to the serial run.");

  const int hw = DefaultJobs();
  const int jobs_cap = JobsFromArgs(argc, argv);
  ScaleoutOptions options;
  options.users = 2 * std::max(hw, 2);  // Fixed fleet; K only reshards it.
  options.user_duration = 30 * kSecond;
  std::cout << options.users << " simulated users (office / write-hot "
            << "alternating, 30 s each), " << hw
            << " host CPUs available.\n\n";

  // K sweep: powers of two up to the CPU count, the CPU count itself, plus
  // a K=2 point even on one CPU so resharding correctness is always shown.
  std::vector<int> sweep = {1, 2};
  for (int k = 4; k < hw; k *= 2) {
    sweep.push_back(k);
  }
  if (hw > 2) {
    sweep.push_back(hw);
  }

  // --trace/--metrics capture one Obs per user (cell id = user index), on
  // the K=1 point only: the sweep re-runs the same fleet at every K, so one
  // capture already covers every user once, and the determinism guarantee
  // makes the other K points redundant in the trace.
  ObsCapture capture(argc, argv);
  std::vector<SweepPoint> points;
  for (const int k : sweep) {
    SweepPoint point;
    point.cells = k;
    options.cells = k;
    options.jobs = std::min(k, jobs_cap);
    if (capture.enabled() && k == sweep.front()) {
      options.user_obs = [&capture](int user) { return capture.ForCell(user); };
    } else {
      options.user_obs = nullptr;
    }
    const auto start = std::chrono::steady_clock::now();
    point.report = RunScaleout(options);
    point.host_ms = HostMillis(start);
    points.push_back(std::move(point));
  }

  const SweepPoint& serial = points.front();
  bool all_identical = true;
  Table table({"K cells", "jobs", "host time (ms)", "speedup vs K=1",
               "agg sim ops/s", "total ops", "failures", "identical to K=1"});
  for (const SweepPoint& p : points) {
    const bool identical =
        ReportsIdentical(p.report.aggregate, serial.report.aggregate);
    all_identical = all_identical && identical;
    table.AddRow();
    table.AddCell(static_cast<int64_t>(p.cells));
    table.AddCell(static_cast<int64_t>(p.report.jobs));
    table.AddCell(p.host_ms, 1);
    table.AddCell(serial.host_ms / p.host_ms, 2);
    table.AddCell(p.report.SimOpsPerSecond(), 0);
    table.AddCell(p.report.aggregate.ops);
    table.AddCell(p.report.aggregate.failures);
    table.AddCell(identical ? std::string("yes") : std::string("NO"));
  }
  table.Print(std::cout);

  const SweepPoint& widest = points.back();
  const double speedup = serial.host_ms / widest.host_ms;
  std::cout << "\nAt K=" << widest.cells << " on " << hw
            << " CPUs: " << FormatDouble(speedup, 2) << "x host-time speedup ("
            << FormatDouble(speedup / static_cast<double>(hw), 2)
            << "x per CPU); aggregate reports "
            << (all_identical ? "bit-identical across all K."
                              : "DIVERGED — sharding bug!")
            << "\n";

  // Machine-readable sweep through the shared metrics-snapshot emitter
  // (same code path as BENCH_micro.json and --metrics).
  std::vector<MetricsSnapshot> rows;
  rows.reserve(points.size());
  for (const SweepPoint& p : points) {
    MetricsSnapshot row;
    row.Set("cells", MetricValue::MakeInt(p.cells));
    row.Set("jobs", MetricValue::MakeInt(p.report.jobs));
    row.Set("users", MetricValue::MakeInt(p.report.users));
    row.Set("host_ms", MetricValue::MakeDouble(p.host_ms));
    row.Set("speedup_vs_serial",
            MetricValue::MakeDouble(serial.host_ms / p.host_ms));
    row.Set("sim_ops_per_s",
            MetricValue::MakeDouble(p.report.SimOpsPerSecond()));
    row.Set("ops", MetricValue::MakeInt(
                       static_cast<int64_t>(p.report.aggregate.ops)));
    row.Set("identical_to_serial",
            MetricValue::MakeBool(ReportsIdentical(p.report.aggregate,
                                                   serial.report.aggregate)));
    rows.push_back(std::move(row));
  }
  (void)WriteMetricsJsonArrayFile("BENCH_scaleout.json", rows);
  capture.Finish();
  return all_identical ? 0 : 1;
}
