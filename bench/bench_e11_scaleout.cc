// E11 — Multi-user scale-out on the parallel harness (experiments M2/M3).
//
// The ROADMAP's north star is serving heavy traffic from many users as fast
// as the hardware allows. The simulator's unit of work — one machine, one
// trace — is a closed world, so a fleet of M simulated users shards
// perfectly over K concurrent cells. Two sweeps:
//  * K sweep (M2): a fixed fleet resharded over K = 1 .. available CPUs.
//    Reports host wall time, the speedup curve vs K=1, and asserts the
//    merged report is bit-identical to the K=1 run at every K.
//  * M sweep (M3): the fleet itself grows 8 -> 65536 users in aggregate-only
//    mode (ScaleoutOptions::keep_per_user = false), charting host throughput
//    and resident bytes per user as the population scales out.
// Throughput is reported against both denominators — sim ops per *simulated*
// second (fleet finishes with its slowest user) and sim ops per *host*
// second (harness replay rate); the old single "sim ops/s" number conflated
// the two. Results also land in BENCH_scaleout.json for machine consumption.

#include <sys/resource.h>

#include <chrono>
#include <vector>

#include "bench/bench_common.h"
#include "src/harness/scaleout.h"
#include "src/obs/metrics_export.h"

namespace ssmc {
namespace {

struct SweepPoint {
  int cells = 0;
  ScaleoutReport report;
  double host_ms = 0;
};

double HostMillis(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Process peak resident set in bytes (ru_maxrss is KiB on Linux). Monotonic
// over the process lifetime, so the M sweep runs smallest fleet first: any
// growth a point shows is growth that fleet size actually caused.
uint64_t PeakRssBytes() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

double OpsPerHostSecond(const ScaleoutReport& report, double host_ms) {
  return host_ms > 0 ? static_cast<double>(report.aggregate.ops) /
                           (host_ms / 1000.0)
                     : 0;
}

// Bit-level equality of two reports (counts, windows, and every histogram).
bool ReportsIdentical(const ReplayReport& a, const ReplayReport& b) {
  if (a.ops != b.ops || a.failures != b.failures ||
      a.bytes_read != b.bytes_read || a.bytes_written != b.bytes_written ||
      a.failed_read_bytes != b.failed_read_bytes ||
      a.failed_write_bytes != b.failed_write_bytes ||
      a.started != b.started || a.finished != b.finished) {
    return false;
  }
  auto same_hist = [](const LatencyRecorder& x, const LatencyRecorder& y) {
    if (x.count() != y.count() || x.total_ns() != y.total_ns() ||
        x.min_ns() != y.min_ns() || x.max_ns() != y.max_ns()) {
      return false;
    }
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (x.histogram().bucket_count(b) != y.histogram().bucket_count(b)) {
        return false;
      }
    }
    return true;
  };
  if (!same_hist(a.all_ops, b.all_ops)) {
    return false;
  }
  for (size_t i = 0; i < a.per_op.size(); ++i) {
    if (!same_hist(a.per_op[i], b.per_op[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E11: multi-user scale-out on the parallel harness (M2)",
              "Claim: independent simulation cells shard perfectly: K cells "
              "on K CPUs cut host time\n~K-fold while the aggregate report "
              "stays bit-identical to the serial run.");

  const int hw = DefaultJobs();
  const int jobs_cap = JobsFromArgs(argc, argv);
  ScaleoutOptions options;
  options.users = 2 * std::max(hw, 2);  // Fixed fleet; K only reshards it.
  options.user_duration = 30 * kSecond;
  std::cout << options.users << " simulated users (office / write-hot "
            << "alternating, 30 s each), " << hw
            << " host CPUs available.\n\n";

  // K sweep: powers of two up to the CPU count, the CPU count itself, plus
  // a K=2 point even on one CPU so resharding correctness is always shown.
  std::vector<int> sweep = {1, 2};
  for (int k = 4; k < hw; k *= 2) {
    sweep.push_back(k);
  }
  if (hw > 2) {
    sweep.push_back(hw);
  }

  // --trace/--metrics capture one Obs per user (cell id = user index), on
  // the K=1 point only: the sweep re-runs the same fleet at every K, so one
  // capture already covers every user once, and the determinism guarantee
  // makes the other K points redundant in the trace.
  ObsCapture capture(argc, argv);
  std::vector<SweepPoint> points;
  for (const int k : sweep) {
    SweepPoint point;
    point.cells = k;
    options.cells = k;
    options.jobs = std::min(k, jobs_cap);
    if (capture.enabled() && k == sweep.front()) {
      options.user_obs = [&capture](int user) { return capture.ForCell(user); };
    } else {
      options.user_obs = nullptr;
    }
    const auto start = std::chrono::steady_clock::now();
    point.report = RunScaleout(options);
    point.host_ms = HostMillis(start);
    points.push_back(std::move(point));
  }

  const SweepPoint& serial = points.front();
  bool all_identical = true;
  Table table({"K cells", "jobs", "host time (ms)", "speedup vs K=1",
               "ops/sim-s", "ops/host-s", "total ops", "failures",
               "identical to K=1"});
  for (const SweepPoint& p : points) {
    const bool identical =
        ReportsIdentical(p.report.aggregate, serial.report.aggregate);
    all_identical = all_identical && identical;
    table.AddRow();
    table.AddCell(static_cast<int64_t>(p.cells));
    table.AddCell(static_cast<int64_t>(p.report.jobs));
    table.AddCell(p.host_ms, 1);
    table.AddCell(serial.host_ms / p.host_ms, 2);
    table.AddCell(p.report.SimOpsPerSimSecond(), 0);
    table.AddCell(OpsPerHostSecond(p.report, p.host_ms), 0);
    table.AddCell(p.report.aggregate.ops);
    table.AddCell(p.report.aggregate.failures);
    table.AddCell(identical ? std::string("yes") : std::string("NO"));
  }
  table.Print(std::cout);

  const SweepPoint& widest = points.back();
  const double speedup = serial.host_ms / widest.host_ms;
  std::cout << "\nAt K=" << widest.cells << " on " << hw
            << " CPUs: " << FormatDouble(speedup, 2) << "x host-time speedup ("
            << FormatDouble(speedup / static_cast<double>(hw), 2)
            << "x per CPU); aggregate reports "
            << (all_identical ? "bit-identical across all K."
                              : "DIVERGED — sharding bug!")
            << "\n";

  // M sweep (M3): grow the fleet itself in aggregate-only mode. per-user
  // reports are folded away inside each shard, so the resident footprint
  // stays flat while the population scales; peak RSS divided by users is the
  // bytes-per-user curve EXPERIMENTS.md quotes. Ascending order matters:
  // ru_maxrss never decreases, so each point's reading is an upper bound
  // set by the fleets up to and including it.
  std::cout << "\nFleet growth, aggregate-only merge (keep_per_user=false):\n";
  ScaleoutOptions grow = options;
  grow.keep_per_user = false;
  grow.user_obs = nullptr;
  std::vector<MetricsSnapshot> rows;
  Table growth({"users", "K cells", "host time (s)", "ops/sim-s", "ops/host-s",
                "total ops", "peak RSS (MiB)", "bytes/user"});
  for (const int users : {8, 64, 512, 4096, 32768, 65536}) {
    grow.users = users;
    grow.cells = std::min(users, std::max(hw, 2));
    grow.jobs = jobs_cap;
    const auto start = std::chrono::steady_clock::now();
    const ScaleoutReport report = RunScaleout(grow);
    const double host_ms = HostMillis(start);
    const uint64_t rss = PeakRssBytes();
    const double bytes_per_user =
        static_cast<double>(rss) / static_cast<double>(users);
    growth.AddRow();
    growth.AddCell(static_cast<int64_t>(users));
    growth.AddCell(static_cast<int64_t>(report.cells));
    growth.AddCell(host_ms / 1000.0, 1);
    growth.AddCell(report.SimOpsPerSimSecond(), 0);
    growth.AddCell(OpsPerHostSecond(report, host_ms), 0);
    growth.AddCell(report.aggregate.ops);
    growth.AddCell(static_cast<double>(rss) / (1024.0 * 1024.0), 1);
    growth.AddCell(bytes_per_user, 0);

    MetricsSnapshot row;
    row.Set("sweep", MetricValue::MakeString("users"));
    row.Set("cells", MetricValue::MakeInt(report.cells));
    row.Set("jobs", MetricValue::MakeInt(report.jobs));
    row.Set("users", MetricValue::MakeInt(users));
    row.Set("host_ms", MetricValue::MakeDouble(host_ms));
    row.Set("sim_ops_per_sim_s",
            MetricValue::MakeDouble(report.SimOpsPerSimSecond()));
    row.Set("sim_ops_per_host_s",
            MetricValue::MakeDouble(OpsPerHostSecond(report, host_ms)));
    row.Set("ops", MetricValue::MakeInt(
                       static_cast<int64_t>(report.aggregate.ops)));
    row.Set("peak_rss_bytes", MetricValue::MakeInt(static_cast<int64_t>(rss)));
    row.Set("bytes_per_user", MetricValue::MakeDouble(bytes_per_user));
    rows.push_back(std::move(row));
  }
  growth.Print(std::cout);

  // Machine-readable sweeps through the shared metrics-snapshot emitter
  // (same code path as BENCH_micro.json and --metrics). The K-sweep rows
  // report throughput against both denominators; the retired
  // "sim_ops_per_s" key conflated them.
  for (const SweepPoint& p : points) {
    MetricsSnapshot row;
    row.Set("sweep", MetricValue::MakeString("cells"));
    row.Set("cells", MetricValue::MakeInt(p.cells));
    row.Set("jobs", MetricValue::MakeInt(p.report.jobs));
    row.Set("users", MetricValue::MakeInt(p.report.users));
    row.Set("host_ms", MetricValue::MakeDouble(p.host_ms));
    row.Set("speedup_vs_serial",
            MetricValue::MakeDouble(serial.host_ms / p.host_ms));
    row.Set("sim_ops_per_sim_s",
            MetricValue::MakeDouble(p.report.SimOpsPerSimSecond()));
    row.Set("sim_ops_per_host_s",
            MetricValue::MakeDouble(OpsPerHostSecond(p.report, p.host_ms)));
    row.Set("ops", MetricValue::MakeInt(
                       static_cast<int64_t>(p.report.aggregate.ops)));
    row.Set("identical_to_serial",
            MetricValue::MakeBool(ReportsIdentical(p.report.aggregate,
                                                   serial.report.aggregate)));
    rows.push_back(std::move(row));
  }
  (void)WriteMetricsJsonArrayFile("BENCH_scaleout.json", rows);
  capture.Finish();
  return all_identical ? 0 : 1;
}
