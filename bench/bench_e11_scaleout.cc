// E11 — Multi-user scale-out on the parallel harness (experiments M2/M3).
//
// The ROADMAP's north star is serving heavy traffic from many users as fast
// as the hardware allows. The simulator's unit of work — one machine, one
// trace — is a closed world, so a fleet of M simulated users shards
// perfectly over K concurrent cells. Two sweeps:
//  * K sweep (M2): a fixed fleet resharded over K = 1 .. available CPUs.
//    Reports host wall time, the speedup curve vs K=1, and asserts the
//    merged report is bit-identical to the K=1 run at every K.
//  * M sweep (M3): the fleet itself grows 8 -> 1,000,000 users in
//    aggregate-only mode (ScaleoutOptions::keep_per_user = false), charting
//    host throughput and resident bytes per user as the population scales
//    out. The fleet runs a two-class tenant mix (office = tenant 1,
//    write-hot = tenant 2) — trace-for-trace the legacy even/odd
//    alternation, just tagged — so the aggregate report also demonstrates
//    fleet-wide per-tenant latency lanes streamed through the O(1)-per-user
//    merge. The largest points shorten the per-user simulated duration to
//    keep host time bounded; marginal bytes/user is the flat quantity.
// Throughput is reported against both denominators — sim ops per *simulated*
// second (fleet finishes with its slowest user) and sim ops per *host*
// second (harness replay rate); the old single "sim ops/s" number conflated
// the two. Results also land in BENCH_scaleout.json for machine consumption.

#include <chrono>
#include <fstream>
#include <vector>

#include <unistd.h>

#include "bench/bench_common.h"
#include "src/harness/scaleout.h"
#include "src/obs/metrics_export.h"

namespace ssmc {
namespace {

struct SweepPoint {
  int cells = 0;
  ScaleoutReport report;
  double host_ms = 0;
};

double HostMillis(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Process resident set *right now*, in bytes (/proc/self/statm field 2 is
// resident pages). The old ru_maxrss reading was the process-lifetime peak —
// monotonic, so every M-sweep point after the first reported whatever
// high-water mark earlier fleets had set, not its own footprint. Current RSS
// measured after each fleet finishes is the per-point quantity the
// bytes/user curve actually claims.
uint64_t CurrentRssBytes() {
  std::ifstream statm("/proc/self/statm");
  uint64_t size_pages = 0;
  uint64_t resident_pages = 0;
  if (!(statm >> size_pages >> resident_pages)) {
    return 0;
  }
  return resident_pages * static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
}

double OpsPerHostSecond(const ScaleoutReport& report, double host_ms) {
  return host_ms > 0 ? static_cast<double>(report.aggregate.ops) /
                           (host_ms / 1000.0)
                     : 0;
}

// Bit-level equality of two reports (counts, windows, and every histogram).
bool ReportsIdentical(const ReplayReport& a, const ReplayReport& b) {
  if (a.ops != b.ops || a.failures != b.failures ||
      a.bytes_read != b.bytes_read || a.bytes_written != b.bytes_written ||
      a.failed_read_bytes != b.failed_read_bytes ||
      a.failed_write_bytes != b.failed_write_bytes ||
      a.started != b.started || a.finished != b.finished) {
    return false;
  }
  auto same_hist = [](const LatencyRecorder& x, const LatencyRecorder& y) {
    if (x.count() != y.count() || x.total_ns() != y.total_ns() ||
        x.min_ns() != y.min_ns() || x.max_ns() != y.max_ns()) {
      return false;
    }
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (x.histogram().bucket_count(b) != y.histogram().bucket_count(b)) {
        return false;
      }
    }
    return true;
  };
  if (!same_hist(a.all_ops, b.all_ops)) {
    return false;
  }
  for (size_t i = 0; i < a.per_op.size(); ++i) {
    if (!same_hist(a.per_op[i], b.per_op[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E11: multi-user scale-out on the parallel harness (M2)",
              "Claim: independent simulation cells shard perfectly: K cells "
              "on K CPUs cut host time\n~K-fold while the aggregate report "
              "stays bit-identical to the serial run.");

  const int hw = DefaultJobs();
  const int jobs_cap = JobsFromArgs(argc, argv);
  ScaleoutOptions options;
  options.users = 2 * std::max(hw, 2);  // Fixed fleet; K only reshards it.
  options.user_duration = 30 * kSecond;
  std::cout << options.users << " simulated users (office / write-hot "
            << "alternating, 30 s each), " << hw
            << " host CPUs available.\n\n";

  // K sweep: powers of two up to the CPU count, the CPU count itself, plus
  // a K=2 point even on one CPU so resharding correctness is always shown.
  std::vector<int> sweep = {1, 2};
  for (int k = 4; k < hw; k *= 2) {
    sweep.push_back(k);
  }
  if (hw > 2) {
    sweep.push_back(hw);
  }

  // --trace/--metrics capture one Obs per user (cell id = user index), on
  // the K=1 point only: the sweep re-runs the same fleet at every K, so one
  // capture already covers every user once, and the determinism guarantee
  // makes the other K points redundant in the trace.
  ObsCapture capture(argc, argv);
  std::vector<SweepPoint> points;
  for (const int k : sweep) {
    SweepPoint point;
    point.cells = k;
    options.cells = k;
    options.jobs = std::min(k, jobs_cap);
    if (capture.enabled() && k == sweep.front()) {
      options.user_obs = [&capture](int user) { return capture.ForCell(user); };
    } else {
      options.user_obs = nullptr;
    }
    const auto start = std::chrono::steady_clock::now();
    point.report = RunScaleout(options);
    point.host_ms = HostMillis(start);
    points.push_back(std::move(point));
  }

  const SweepPoint& serial = points.front();
  bool all_identical = true;
  Table table({"K cells", "jobs", "host time (ms)", "speedup vs K=1",
               "ops/sim-s", "ops/host-s", "total ops", "failures",
               "identical to K=1"});
  for (const SweepPoint& p : points) {
    const bool identical =
        ReportsIdentical(p.report.aggregate, serial.report.aggregate);
    all_identical = all_identical && identical;
    table.AddRow();
    table.AddCell(static_cast<int64_t>(p.cells));
    table.AddCell(static_cast<int64_t>(p.report.jobs));
    table.AddCell(p.host_ms, 1);
    table.AddCell(serial.host_ms / p.host_ms, 2);
    table.AddCell(p.report.SimOpsPerSimSecond(), 0);
    table.AddCell(OpsPerHostSecond(p.report, p.host_ms), 0);
    table.AddCell(p.report.aggregate.ops);
    table.AddCell(p.report.aggregate.failures);
    table.AddCell(identical ? std::string("yes") : std::string("NO"));
  }
  table.Print(std::cout);

  const SweepPoint& widest = points.back();
  const double speedup = serial.host_ms / widest.host_ms;
  std::cout << "\nAt K=" << widest.cells << " on " << hw
            << " CPUs: " << FormatDouble(speedup, 2) << "x host-time speedup ("
            << FormatDouble(speedup / static_cast<double>(hw), 2)
            << "x per CPU); aggregate reports "
            << (all_identical ? "bit-identical across all K."
                              : "DIVERGED — sharding bug!")
            << "\n";

  // M sweep (M3): grow the fleet itself in aggregate-only mode. Per-user
  // reports are folded away inside each shard, so the resident footprint
  // stays flat while the population scales; current RSS after each fleet,
  // divided by its users, is the bytes-per-user curve EXPERIMENTS.md quotes.
  // The fleet is a two-class tenant mix — trace-identical to the legacy
  // even/odd office/write-hot alternation under FIFO, but every record is
  // tagged, so the streamed aggregate carries per-tenant read latencies all
  // the way to the million-user point. The two largest fleets shorten each
  // user's simulated duration (ops/sim-s is not comparable across duration
  // changes; ops/host-s and bytes/user are).
  std::cout << "\nFleet growth, aggregate-only merge (keep_per_user=false),\n"
            << "tenant mix office=t1 / write-hot=t2:\n";
  ScaleoutOptions grow = options;
  grow.keep_per_user = false;
  grow.user_obs = nullptr;
  grow.tenant_mix = {{1, /*write_hot=*/false, 1, 0, 0},
                     {2, /*write_hot=*/true, 1, 0, 0}};
  struct GrowthPoint {
    int users;
    Duration user_duration;
  };
  const std::vector<GrowthPoint> fleet_sizes = {
      {8, 30 * kSecond},     {64, 30 * kSecond},   {512, 30 * kSecond},
      {4096, 30 * kSecond},  {32768, 30 * kSecond}, {65536, 30 * kSecond},
      {262144, 8 * kSecond}, {1000000, 2 * kSecond}};
  std::vector<MetricsSnapshot> rows;
  Table growth({"users", "K cells", "sim s/user", "host time (s)", "ops/sim-s",
                "ops/host-s", "total ops", "t1 read p99 (us)",
                "t2 read p99 (us)", "RSS (MiB)", "bytes/user"});
  for (const GrowthPoint& fleet : fleet_sizes) {
    grow.users = fleet.users;
    grow.user_duration = fleet.user_duration;
    grow.cells = std::min(fleet.users, std::max(hw, 2));
    grow.jobs = jobs_cap;
    const auto start = std::chrono::steady_clock::now();
    const ScaleoutReport report = RunScaleout(grow);
    const double host_ms = HostMillis(start);
    const uint64_t rss = CurrentRssBytes();
    const double bytes_per_user =
        static_cast<double>(rss) / static_cast<double>(fleet.users);
    const TenantLatency* t1 = report.aggregate.by_tenant.Find(1);
    const TenantLatency* t2 = report.aggregate.by_tenant.Find(2);
    growth.AddRow();
    growth.AddCell(static_cast<int64_t>(fleet.users));
    growth.AddCell(static_cast<int64_t>(report.cells));
    growth.AddCell(static_cast<double>(fleet.user_duration) / kSecond, 0);
    growth.AddCell(host_ms / 1000.0, 1);
    growth.AddCell(report.SimOpsPerSimSecond(), 0);
    growth.AddCell(OpsPerHostSecond(report, host_ms), 0);
    growth.AddCell(report.aggregate.ops);
    growth.AddCell(t1 ? static_cast<double>(t1->reads.p99_ns()) / kMicrosecond
                      : 0.0,
                   1);
    growth.AddCell(t2 ? static_cast<double>(t2->reads.p99_ns()) / kMicrosecond
                      : 0.0,
                   1);
    growth.AddCell(static_cast<double>(rss) / (1024.0 * 1024.0), 1);
    growth.AddCell(bytes_per_user, 1);

    MetricsSnapshot row;
    row.Set("op", MetricValue::MakeString("scaleout/users/" +
                                          std::to_string(fleet.users)));
    row.Set("sweep", MetricValue::MakeString("users"));
    row.Set("cells", MetricValue::MakeInt(report.cells));
    row.Set("jobs", MetricValue::MakeInt(report.jobs));
    row.Set("users", MetricValue::MakeInt(fleet.users));
    row.Set("sim_s_per_user",
            MetricValue::MakeDouble(
                static_cast<double>(fleet.user_duration) / kSecond));
    row.Set("host_ms", MetricValue::MakeDouble(host_ms));
    row.Set("sim_ops_per_sim_s",
            MetricValue::MakeDouble(report.SimOpsPerSimSecond()));
    row.Set("sim_ops_per_host_s",
            MetricValue::MakeDouble(OpsPerHostSecond(report, host_ms)));
    row.Set("ops", MetricValue::MakeInt(
                       static_cast<int64_t>(report.aggregate.ops)));
    row.Set("tenant1_read_p99_ns",
            MetricValue::MakeInt(
                t1 ? static_cast<int64_t>(t1->reads.p99_ns()) : 0));
    row.Set("tenant2_read_p99_ns",
            MetricValue::MakeInt(
                t2 ? static_cast<int64_t>(t2->reads.p99_ns()) : 0));
    row.Set("rss_bytes", MetricValue::MakeInt(static_cast<int64_t>(rss)));
    row.Set("bytes_per_user", MetricValue::MakeDouble(bytes_per_user));
    rows.push_back(std::move(row));
  }
  growth.Print(std::cout);

  // Machine-readable sweeps through the shared metrics-snapshot emitter
  // (same code path as BENCH_micro.json and --metrics). The K-sweep rows
  // report throughput against both denominators; the retired
  // "sim_ops_per_s" key conflated them.
  for (const SweepPoint& p : points) {
    MetricsSnapshot row;
    row.Set("op", MetricValue::MakeString("scaleout/cells/" +
                                          std::to_string(p.cells)));
    row.Set("sweep", MetricValue::MakeString("cells"));
    row.Set("cells", MetricValue::MakeInt(p.cells));
    row.Set("jobs", MetricValue::MakeInt(p.report.jobs));
    row.Set("users", MetricValue::MakeInt(p.report.users));
    row.Set("host_ms", MetricValue::MakeDouble(p.host_ms));
    row.Set("speedup_vs_serial",
            MetricValue::MakeDouble(serial.host_ms / p.host_ms));
    row.Set("sim_ops_per_sim_s",
            MetricValue::MakeDouble(p.report.SimOpsPerSimSecond()));
    row.Set("sim_ops_per_host_s",
            MetricValue::MakeDouble(OpsPerHostSecond(p.report, p.host_ms)));
    row.Set("ops", MetricValue::MakeInt(
                       static_cast<int64_t>(p.report.aggregate.ops)));
    row.Set("identical_to_serial",
            MetricValue::MakeBool(ReportsIdentical(p.report.aggregate,
                                                   serial.report.aggregate)));
    rows.push_back(std::move(row));
  }
  (void)WriteMetricsJsonArrayFile("BENCH_scaleout.json", rows);
  capture.Finish();
  return all_identical ? 0 : 1;
}
