// Shared helpers for the experiment benches (E1-E10). Each bench binary
// regenerates one table from DESIGN.md's claim->experiment index; see
// EXPERIMENTS.md for the measured results and their reading.

#ifndef SSMC_BENCH_BENCH_COMMON_H_
#define SSMC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/machine.h"
#include "src/device/disk_device.h"
#include "src/fs/disk_fs.h"
#include "src/harness/parallel_runner.h"
#include "src/support/log.h"
#include "src/support/table.h"
#include "src/support/units.h"
#include "src/trace/generator.h"

namespace ssmc {

// A conventional disk-based mobile computer: the baseline the paper argues
// against. Groups the disk, its file system, and a clock.
struct DiskMachine {
  explicit DiskMachine(DiskSpec spec = KittyHawkDisk1993(),
                       DiskFsOptions options = {}) {
    disk = std::make_unique<DiskDevice>(spec, clock);
    disk->set_spin_down_after(0);  // Keep spinning: favors the baseline.
    fs = std::make_unique<DiskFileSystem>(*disk, options);
  }
  SimClock clock;
  std::unique_ptr<DiskDevice> disk;
  std::unique_ptr<DiskFileSystem> fs;
};

inline void PrintHeader(const std::string& id, const std::string& claim) {
  // Benches exercise overload corners (full devices, dead batteries) on
  // purpose; keep the warning log out of the tables.
  SetLogLevel(LogLevel::kError);
  std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
}

inline std::string Pct(double fraction) {
  return FormatDouble(fraction * 100.0, 1) + "%";
}

// True when `flag` (e.g. "--tail") appears verbatim in argv. Benches use
// this for opt-in ablation sections that must not perturb the default
// (regression-compared) output.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) {
      return true;
    }
  }
  return false;
}

// Runs independent experiment cells through the shared --jobs / SSMC_JOBS
// parallel harness, returning results in submission order so the tables are
// byte-identical to a serial run. Matrix benches call this instead of
// hand-rolling the ParallelRunner setup.
template <typename Result>
std::vector<Result> RunCellsOrdered(int argc, char** argv,
                                    std::vector<std::function<Result()>> cells) {
  ParallelRunner runner(JobsFromArgs(argc, argv));
  return runner.RunOrdered(std::move(cells));
}

}  // namespace ssmc

#endif  // SSMC_BENCH_BENCH_COMMON_H_
