// Shared helpers for the experiment benches (E1-E10). Each bench binary
// regenerates one table from DESIGN.md's claim->experiment index; see
// EXPERIMENTS.md for the measured results and their reading.

#ifndef SSMC_BENCH_BENCH_COMMON_H_
#define SSMC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/core/machine.h"
#include "src/device/disk_device.h"
#include "src/fs/disk_fs.h"
#include "src/harness/parallel_runner.h"
#include "src/obs/metrics_export.h"
#include "src/obs/obs.h"
#include "src/obs/trace_export.h"
#include "src/support/log.h"
#include "src/support/table.h"
#include "src/support/units.h"
#include "src/trace/generator.h"

namespace ssmc {

// A conventional disk-based mobile computer: the baseline the paper argues
// against. Groups the disk, its file system, and a clock.
struct DiskMachine {
  explicit DiskMachine(DiskSpec spec = KittyHawkDisk1993(),
                       DiskFsOptions options = {}) {
    disk = std::make_unique<DiskDevice>(spec, clock);
    disk->set_spin_down_after(0);  // Keep spinning: favors the baseline.
    fs = std::make_unique<DiskFileSystem>(*disk, options);
  }
  SimClock clock;
  std::unique_ptr<DiskDevice> disk;
  std::unique_ptr<DiskFileSystem> fs;
};

inline void PrintHeader(const std::string& id, const std::string& claim) {
  // Benches exercise overload corners (full devices, dead batteries) on
  // purpose; keep the warning log out of the tables.
  SetLogLevel(LogLevel::kError);
  std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
}

inline std::string Pct(double fraction) {
  return FormatDouble(fraction * 100.0, 1) + "%";
}

// True when `flag` (e.g. "--tail") appears verbatim in argv. Benches use
// this for opt-in ablation sections that must not perturb the default
// (regression-compared) output.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) {
      return true;
    }
  }
  return false;
}

// Value of a `--flag=value` argument, or "" when absent. Benches use this
// for --trace=<path> and --metrics=<path>.
inline std::string FlagValue(int argc, char** argv, const char* prefix) {
  const std::string p(prefix);
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind(p, 0) == 0) {
      return arg.substr(p.size());
    }
  }
  return "";
}

// Per-bench observability capture: parses --trace=<path> (Chrome
// trace-event / Perfetto JSON) and --metrics=<path> (merged metrics
// snapshot JSON) and owns one Obs bundle per experiment cell. With neither
// flag given, ForCell() returns null and every hook in the simulator stays
// a disabled null check — the default output is untouched.
class ObsCapture {
 public:
  ObsCapture(int argc, char** argv)
      : trace_path_(FlagValue(argc, argv, "--trace=")),
        metrics_path_(FlagValue(argc, argv, "--metrics=")) {}

  bool enabled() const {
    return !trace_path_.empty() || !metrics_path_.empty();
  }

  // The Obs bundle for experiment cell `cell` (created on first use, tagged
  // with the cell id), or null when capture is off. Thread-safe: cells run
  // concurrently under the parallel runner, but each cell must use its own
  // bundle.
  Obs* ForCell(int cell) {
    if (!enabled()) {
      return nullptr;
    }
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Obs>& slot = cells_[cell];
    if (slot == nullptr) {
      ObsOptions options;
      options.cell = cell;
      slot = std::make_unique<Obs>(options);
    }
    return slot.get();
  }

  // Writes whatever was requested: the trace file over all cells (one
  // Perfetto pid per cell) and the metrics file as the deterministic merge
  // of every cell's snapshot. Call once, after all cells finished.
  void Finish() {
    if (!enabled()) {
      return;
    }
    std::vector<Obs*> ordered;
    ordered.reserve(cells_.size());
    for (const auto& [cell, obs] : cells_) {
      ordered.push_back(obs.get());
    }
    if (!trace_path_.empty()) {
      const std::vector<const Obs*> view(ordered.begin(), ordered.end());
      if (WriteChromeTraceFile(trace_path_, view)) {
        std::cout << "\n[trace written to " << trace_path_ << "]\n";
      } else {
        std::cerr << "failed to write trace to " << trace_path_ << "\n";
      }
    }
    if (!metrics_path_.empty()) {
      MetricsSnapshot merged;
      for (Obs* obs : ordered) {
        merged.Merge(obs->SnapshotMetrics());
      }
      if (WriteMetricsJsonFile(metrics_path_, merged)) {
        std::cout << "[metrics written to " << metrics_path_ << "]\n";
      } else {
        std::cerr << "failed to write metrics to " << metrics_path_ << "\n";
      }
    }
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::mutex mu_;
  std::map<int, std::unique_ptr<Obs>> cells_;  // Keyed by cell id.
};

// Runs independent experiment cells through the shared --jobs / SSMC_JOBS
// parallel harness, returning results in submission order so the tables are
// byte-identical to a serial run. Matrix benches call this instead of
// hand-rolling the ParallelRunner setup.
template <typename Result>
std::vector<Result> RunCellsOrdered(int argc, char** argv,
                                    std::vector<std::function<Result()>> cells) {
  ParallelRunner runner(JobsFromArgs(argc, argv));
  return runner.RunOrdered(std::move(cells));
}

}  // namespace ssmc

#endif  // SSMC_BENCH_BENCH_COMMON_H_
