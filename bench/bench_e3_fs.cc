// E3 — Memory-resident file system vs conventional disk file system
// (paper Section 3.1).
//
// Claim under test: with all storage directly accessible at memory speed,
// the file system needs no clustering, no indirect blocks, and no buffer
// cache, and outperforms a disk-based organization across the board —
// dramatically so for metadata and cold data.
//
// Method: generate one office workload trace and replay it, identically,
// against (a) the solid-state machine's MemoryFileSystem, (b) the same FS
// with the write buffer disabled (ablation: how much the DRAM buffer
// contributes), and (c) the conventional DiskFileSystem on a KittyHawk-class
// microdisk with a 256 KiB LRU buffer cache.

// The five file-system cells are fully independent machines, so they run
// concurrently through the parallel runner (bench_common.h: --jobs /
// SSMC_JOBS); results are collected in submission order, so the table is
// byte-identical to a --jobs=1 run.

#include "bench/bench_common.h"
#include "src/fs/log_fs.h"
#include "src/trace/replayer.h"

namespace ssmc {
namespace {

struct FsResult {
  std::string name;
  ReplayReport report;
};

void AddRow(Table& table, const FsResult& result) {
  const ReplayReport& r = result.report;
  table.AddRow();
  table.AddCell(result.name);
  table.AddCell(FormatDouble(r.OpsPerSecond(), 0));
  table.AddCell(FormatDuration(
      static_cast<Duration>(r.ForOp(TraceOp::kRead).mean_ns())));
  table.AddCell(FormatDuration(
      static_cast<Duration>(r.ForOp(TraceOp::kRead).p99_ns())));
  table.AddCell(FormatDuration(
      static_cast<Duration>(r.ForOp(TraceOp::kWrite).mean_ns())));
  table.AddCell(FormatDuration(
      static_cast<Duration>(r.ForOp(TraceOp::kWrite).p99_ns())));
  table.AddCell(FormatDuration(
      static_cast<Duration>(r.ForOp(TraceOp::kStat).mean_ns())));
  table.AddCell(FormatDuration(
      static_cast<Duration>(r.ForOp(TraceOp::kCreate).mean_ns())));
  table.AddCell(FormatDuration(r.all_ops.total_ns()));
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E3: memory-resident FS vs disk FS (Section 3.1)",
              "Claim: the memory-resident file system outperforms the "
              "conventional disk organization;\nno clustering / indirect "
              "blocks / buffer cache needed.");

  WorkloadOptions options = OfficeWorkload();
  options.duration = 4 * kMinute;
  options.max_file_bytes = 128 * 1024;
  const Trace trace = WorkloadGenerator(options).Generate();
  std::cout << "Workload: " << trace.size() << " ops over "
            << FormatDuration(trace.DurationNs()) << ", "
            << FormatSize(trace.TotalBytesWritten()) << " written, "
            << FormatSize(trace.TotalBytesRead()) << " read\n\n";

  ObsCapture capture(argc, argv);
  std::vector<std::function<FsResult()>> cells;
  cells.push_back([&trace, &capture] {
    MachineConfig config = NotebookConfig();
    config.obs = capture.ForCell(0);
    MobileComputer machine(config);
    return FsResult{"memory-fs (1 MiB buffer)", machine.RunTrace(trace)};
  });
  cells.push_back([&trace, &capture] {
    MachineConfig config = NotebookConfig();
    config.fs_options.write_buffer_pages = 0;  // Ablation: write-through.
    config.obs = capture.ForCell(1);
    MobileComputer machine(config);
    return FsResult{"memory-fs (no buffer)", machine.RunTrace(trace)};
  });
  cells.push_back([&trace, &capture] {
    DiskMachine machine(FujitsuDisk1993());  // 45 MB: fits the workload.
    machine.disk->AttachObs(capture.ForCell(2));
    TraceReplayer replayer(*machine.fs, machine.clock);
    replayer.AttachObs(capture.ForCell(2));
    return FsResult{"disk-fs (sync metadata)", replayer.Replay(trace)};
  });
  cells.push_back([&trace, &capture] {
    // Ablation: give the disk FS asynchronous metadata (trading crash
    // consistency for speed) — the strongest fair version of the baseline.
    DiskFsOptions options;
    options.sync_metadata = false;
    DiskMachine machine(FujitsuDisk1993(), options);
    machine.disk->AttachObs(capture.ForCell(3));
    TraceReplayer replayer(*machine.fs, machine.clock);
    replayer.AttachObs(capture.ForCell(3));
    return FsResult{"disk-fs (async metadata)", replayer.Replay(trace)};
  });
  cells.push_back([&trace, &capture] {
    // The strongest possible disk organization: a log-structured file
    // system [11] — every write becomes sequential log bandwidth.
    SimClock clock;
    DiskDevice disk(FujitsuDisk1993(), clock);
    disk.AttachObs(capture.ForCell(4));
    disk.set_spin_down_after(0);
    LogFileSystem fs(disk, LogFsOptions{});
    TraceReplayer replayer(fs, clock);
    replayer.AttachObs(capture.ForCell(4));
    return FsResult{"log-fs (LFS on disk)", replayer.Replay(trace)};
  });

  const std::vector<FsResult> results =
      RunCellsOrdered(argc, argv, std::move(cells));

  Table table({"file system", "ops/s", "read mean", "read p99", "write mean",
               "write p99", "stat mean", "create mean", "busy time"});
  for (const FsResult& result : results) {
    AddRow(table, result);
  }
  table.Print(std::cout);

  const double speedup = results[2].report.all_ops.mean_ns() /
                         results[0].report.all_ops.mean_ns();
  const double speedup_async = results[3].report.all_ops.mean_ns() /
                               results[0].report.all_ops.mean_ns();
  const double speedup_lfs = results[4].report.all_ops.mean_ns() /
                             results[0].report.all_ops.mean_ns();
  std::cout << "\nMean-op speedup of memory-fs over disk-fs: "
            << FormatDouble(speedup, 1) << "x (sync metadata), "
            << FormatDouble(speedup_async, 1) << "x (async metadata), "
            << FormatDouble(speedup_lfs, 1) << "x (LFS)\n";
  uint64_t failures = 0;
  for (const FsResult& result : results) {
    failures += result.report.failures;
  }
  std::cout << "Total op failures across all runs: " << failures << "\n";
  capture.Finish();
  return 0;
}
