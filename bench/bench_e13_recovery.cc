// E13 — durable metadata journal: crash-recovery mount time vs namespace
// size (ROADMAP E13, paper Section 4).
//
// Claim under test: a mobile computer that keeps its file system in
// battery-backed DRAM must still survive total power failure, and remount
// time must not grow with a serial walk of the namespace. The journal
// persists a dense checkpoint plus an append-only log tail; Recover() reads
// the checkpoint chain bank-parallel and replays only the tail, so mount
// cost scales with checkpoint bytes over the aggregate read bandwidth —
// not with per-path rebuild work against one serially-busy bank.
//
// Method: per namespace size N (1k..256k inodes), populate a journaled
// machine (journal_oracle keeps the legacy block-0 checkpoint alongside),
// checkpoint, apply a fixed burst of post-checkpoint tail mutations, then
// pull the battery. Mount the SAME flash image both ways and compare
// simulated wall time:
//   checkpoint rebuild — the legacy serial path: read the block-0 chain,
//     re-create every path (the pre-E13 recovery story);
//   journal mount      — dense checkpoint install + log-tail replay.
// The journal mount also recovers the tail burst, which the legacy path
// loses (it only knows state as of the checkpoint). Flash write overhead
// of journaling (journal-tenant programmed bytes vs all other write
// traffic) is reported per cell. Results land in BENCH_recovery.json;
// the 256k row's mount time and write overhead are regression-gated by
// scripts/bench_gate.py.

#include <algorithm>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/machine.h"
#include "src/fs/memory_fs.h"
#include "src/journal/journal.h"
#include "src/obs/metrics_export.h"
#include "src/storage/storage_manager.h"

namespace ssmc {
namespace {

constexpr uint64_t kInodeSweep[] = {1024, 4096, 16384, 65536, 262144};
constexpr uint64_t kDirs = 64;
constexpr uint64_t kDataFiles = 4096;     // Files that also carry data...
constexpr uint64_t kDataFileBytes = 4096; // ...this much each (16 MiB total).
constexpr uint64_t kTailMutations = 128;  // Acked after the last checkpoint.

struct RecoveryResult {
  uint64_t inodes = 0;
  uint64_t checkpoint_mount_ns = 0;  // Legacy serial rebuild.
  uint64_t journal_mount_ns = 0;     // Dense checkpoint + log-tail replay.
  uint64_t journal_files = 0;        // Files each path recovered.
  uint64_t legacy_files = 0;
  uint64_t tail_replayed = 0;        // Log records applied on top.
  double journal_overhead_pct = 0;   // Journal programs vs all other writes.
  bool ok = false;
};

RecoveryResult RunCell(uint64_t inodes, Obs* obs) {
  MachineConfig config;
  config.obs = obs;
  config.name = "recovery";
  config.dram_bytes = 64 * kMiB;
  config.flash_bytes = 128 * kMiB;
  config.flash_banks = 8;
  config.journal = true;
  config.journal_oracle = true;  // Maintain the legacy checkpoint too.
  // One explicit checkpoint below; no compaction mid-population, so the
  // cell measures one well-defined checkpoint + tail image.
  config.journal_options.compact_log_blocks = 0;
  MobileComputer machine(config);

  RecoveryResult result;
  result.inodes = inodes;

  // Population: kDirs directories, `inodes` files round-robin across them;
  // a fixed 16 MiB of file data spread over kDataFiles of the names so the
  // write-overhead ratio has real user traffic under it at every N.
  for (uint64_t d = 0; d < kDirs; ++d) {
    if (!machine.fs().Mkdir("/d" + std::to_string(d)).ok()) return result;
  }
  const uint64_t data_stride =
      inodes > kDataFiles ? inodes / kDataFiles : 1;
  const std::vector<uint8_t> payload(kDataFileBytes, 0xA5);
  for (uint64_t i = 0; i < inodes; ++i) {
    const std::string path =
        "/d" + std::to_string(i % kDirs) + "/f" + std::to_string(i);
    if (!machine.fs().Create(path).ok()) return result;
    if (i % data_stride == 0) {
      if (!machine.fs().Write(path, 0, payload).ok()) return result;
    }
  }
  if (!machine.fs().Sync().ok()) return result;
  if (!machine.fs().CheckpointMetadata().ok()) return result;

  // Tail burst: acked after the checkpoint, durable only in the log.
  for (uint64_t i = 0; i < kTailMutations; ++i) {
    if (!machine.fs().Create("/d0/tail" + std::to_string(i)).ok()) {
      return result;
    }
  }

  // Journal share of all flash write traffic (tail-block programs, the
  // checkpoint chain, and cleaner relocations of journal blocks) against
  // everything else (user data, legacy checkpoint, user relocations).
  uint64_t journal_bytes = 0;
  uint64_t total_bytes = 0;
  for (const auto& entry : machine.flash_store().stats().by_tenant.entries()) {
    total_bytes += entry.value.written_bytes.value();
    if (entry.tenant == kJournalTenant) {
      journal_bytes = entry.value.written_bytes.value();
    }
  }
  if (total_bytes > journal_bytes) {
    result.journal_overhead_pct =
        100.0 * static_cast<double>(journal_bytes) /
        static_cast<double>(total_bytes - journal_bytes);
  }

  // Population queued its programs non-blocking; let every bank drain so
  // the two mounts time their own reads, not the population backlog.
  SimTime quiesce = machine.clock().now();
  for (int b = 0; b < machine.config().flash_banks; ++b) {
    quiesce = std::max(quiesce, machine.flash().BankBusyUntil(b));
  }
  machine.clock().AdvanceTo(quiesce);

  machine.InjectBatteryFailure();

  // Legacy oracle mount over the SAME surviving flash: a throwaway manager,
  // since the rebuild only reads flash and re-registers blocks with its own
  // allocator. This is the pre-E13 recovery path, timed on the same clock.
  {
    const SimTime t0 = machine.clock().now();
    StorageManager oracle(machine.dram(), machine.flash_store(),
                          machine.config().page_bytes);
    RecoveryReport legacy_report;
    Result<std::unique_ptr<MemoryFileSystem>> legacy =
        MemoryFileSystem::RecoverFromCheckpoint(oracle, MemoryFsOptions{},
                                                &legacy_report);
    if (!legacy.ok()) return result;
    result.checkpoint_mount_ns = machine.clock().now() - t0;
    result.legacy_files = legacy_report.files_recovered;
  }

  // Journal mount: the machine's real recovery path.
  const SimTime t1 = machine.clock().now();
  Result<RecoveryReport> report = machine.RecoverAfterFailure(20000);
  if (!report.ok()) return result;
  result.journal_mount_ns = machine.clock().now() - t1;
  result.journal_files = report.value().files_recovered;
  result.tail_replayed = report.value().journal_records_replayed;
  result.ok = true;
  return result;
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E13: journal crash recovery — mount time vs namespace size "
              "(Section 4)",
              "Claim: remount after power failure scales with checkpoint "
              "bytes + log-tail length,\nnot with a serial per-path rebuild "
              "of the namespace; acked tail mutations survive.");
  std::cout << "Flash 128 MiB x8 banks, 16 MiB file data, " << kDirs
            << " dirs, " << kTailMutations
            << " post-checkpoint tail mutations;\nnamespace size swept. "
               "Both recovery paths mount the same crashed image.\n";

  ObsCapture capture(argc, argv);
  std::vector<std::function<RecoveryResult()>> cells;
  for (const uint64_t inodes : kInodeSweep) {
    const int cell = static_cast<int>(cells.size());
    cells.push_back(
        [&capture, cell, inodes] { return RunCell(inodes, capture.ForCell(cell)); });
  }
  const std::vector<RecoveryResult> results =
      RunCellsOrdered(argc, argv, std::move(cells));

  std::cout << "\n";
  Table table({"inodes", "checkpoint rebuild", "journal mount", "speedup",
               "files (legacy)", "files (journal)", "tail replayed",
               "journal write overhead"});
  std::vector<MetricsSnapshot> rows;
  bool all_ok = true;
  for (const RecoveryResult& r : results) {
    all_ok = all_ok && r.ok;
    const double speedup =
        r.journal_mount_ns > 0
            ? static_cast<double>(r.checkpoint_mount_ns) /
                  static_cast<double>(r.journal_mount_ns)
            : 0;
    table.AddRow();
    table.AddCell(r.inodes);
    table.AddCell(FormatDuration(r.checkpoint_mount_ns));
    table.AddCell(FormatDuration(r.journal_mount_ns));
    table.AddCell(speedup, 1);
    table.AddCell(r.legacy_files);
    table.AddCell(r.journal_files);
    table.AddCell(r.tail_replayed);
    table.AddCell(Pct(r.journal_overhead_pct / 100.0));

    MetricsSnapshot row;
    row.Set("op", MetricValue::MakeString("recovery/inodes/" +
                                          std::to_string(r.inodes)));
    row.Set("journal_mount_ns",
            MetricValue::MakeInt(static_cast<int64_t>(r.journal_mount_ns)));
    row.Set("checkpoint_mount_ns", MetricValue::MakeInt(static_cast<int64_t>(
                                       r.checkpoint_mount_ns)));
    row.Set("speedup", MetricValue::MakeDouble(speedup));
    row.Set("journal_write_overhead_pct",
            MetricValue::MakeDouble(r.journal_overhead_pct));
    row.Set("files_recovered",
            MetricValue::MakeInt(static_cast<int64_t>(r.journal_files)));
    row.Set("tail_records_replayed",
            MetricValue::MakeInt(static_cast<int64_t>(r.tail_replayed)));
    rows.push_back(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\nReading: the legacy path re-reads the block-0 checkpoint "
               "chain serially and re-creates\nevery path, so mount time "
               "grows with namespace size against one busy bank. The "
               "journal\nmount streams the dense checkpoint across all "
               "banks and replays only the log tail —\nand it is the only "
               "path that recovers the post-checkpoint mutations (files "
               "journal vs\nlegacy differ by the tail burst).\n";
  if (!all_ok) {
    std::cerr << "\nERROR: at least one cell failed to populate or mount.\n";
    return 1;
  }
  (void)WriteMetricsJsonArrayFile("BENCH_recovery.json", rows);
  capture.Finish();
  return 0;
}
