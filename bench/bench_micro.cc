// M1 — Microbenchmarks over the simulator's hot paths (google-benchmark).
//
// These measure *host* execution cost of the simulation primitives (not
// simulated time): device ops, flash-store writes with and without cleaning
// pressure, file-system operations, page-table walks. They guard against
// performance regressions that would make the E3/E6/E9 sweeps impractically
// slow.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/machine.h"
#include "src/core/single_level_store.h"
#include "src/device/disk_device.h"
#include "src/fs/disk_fs.h"
#include "src/obs/metrics_export.h"
#include "src/trace/generator.h"
#include "src/vm/loader.h"

namespace ssmc {
namespace {

FlashSpec MicroFlashSpec() {
  FlashSpec spec = GenericPaperFlash();
  spec.erase_sector_bytes = 4 * kKiB;
  spec.erase_ns = 10 * kMillisecond;
  spec.endurance_cycles = 100000000;
  return spec;
}

void BM_FlashRead512(benchmark::State& state) {
  SimClock clock;
  FlashDevice flash(MicroFlashSpec(), 1 * kMiB, 1, clock);
  std::vector<uint8_t> buf(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flash.Read(0, buf));
  }
}
BENCHMARK(BM_FlashRead512);

void BM_FlashProgramEraseCycle(benchmark::State& state) {
  SimClock clock;
  FlashDevice flash(MicroFlashSpec(), 1 * kMiB, 1, clock);
  std::vector<uint8_t> data(512, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flash.Program(0, data));
    benchmark::DoNotOptimize(flash.EraseSector(0));
  }
}
BENCHMARK(BM_FlashProgramEraseCycle);

void BM_FlashProgram4K(benchmark::State& state) {
  // Full-sector program + erase: dominated by the host-side erased-state
  // check in Program() and the erase fill — the byte loops the memcmp /
  // fill_n vectorization replaced.
  SimClock clock;
  FlashDevice flash(MicroFlashSpec(), 1 * kMiB, 1, clock);
  std::vector<uint8_t> data(4096, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flash.Program(0, data));
    benchmark::DoNotOptimize(flash.EraseSector(0));
  }
}
BENCHMARK(BM_FlashProgram4K);

void BM_DramWrite512(benchmark::State& state) {
  SimClock clock;
  DramDevice dram(NecDram1993(), 1 * kMiB, clock);
  std::vector<uint8_t> data(512, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dram.Write(0, data));
  }
}
BENCHMARK(BM_DramWrite512);

void BM_DiskRandomRead(benchmark::State& state) {
  SimClock clock;
  DiskDevice disk(KittyHawkDisk1993(), clock);
  disk.set_spin_down_after(0);
  std::vector<uint8_t> buf(512);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        disk.ReadSectors(rng.NextBelow(disk.num_sectors()), buf));
  }
}
BENCHMARK(BM_DiskRandomRead);

void BM_FlashStoreSequentialOverwrite(benchmark::State& state) {
  SimClock clock;
  FlashDevice flash(MicroFlashSpec(), 2 * kMiB, 1, clock);
  FlashStore store(flash, FlashStoreOptions{});
  std::vector<uint8_t> block(512, 1);
  uint64_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Write(b, block));
    b = (b + 1) % store.num_blocks();
  }
  state.counters["write_amp"] = store.WriteAmplification();
}
BENCHMARK(BM_FlashStoreSequentialOverwrite);

void BM_FlashStoreHotOverwriteWithCleaning(benchmark::State& state) {
  SimClock clock;
  FlashDevice flash(MicroFlashSpec(), 2 * kMiB, 1, clock);
  FlashStoreOptions options;
  options.cleaner = CleanerPolicy::kCostBenefit;
  FlashStore store(flash, options);
  std::vector<uint8_t> block(512, 1);
  for (uint64_t i = 0; i < store.num_blocks(); ++i) {
    (void)store.Write(i, block);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Write(rng.NextBelow(64), block));
  }
  state.counters["write_amp"] = store.WriteAmplification();
}
BENCHMARK(BM_FlashStoreHotOverwriteWithCleaning);

// --- Large-device FTL hot paths ------------------------------------------
//
// Production-scale devices (4k-64k erase sectors) under sustained cleaning
// pressure. These are the paths the indexed FTL keeps O(1)/O(log N): page
// allocation, victim selection, free-sector take, and wear tracking. The
// "sectors" counter is emitted into BENCH_micro.json so the perf trajectory
// across PRs is machine-comparable.

FlashSpec LargeFlashSpec() {
  FlashSpec spec = GenericPaperFlash();
  spec.erase_sector_bytes = 4 * kKiB;  // 8 pages of 512 B.
  spec.erase_ns = 10 * kMillisecond;
  spec.endurance_cycles = 0;  // Unlimited: these runs measure host cost only.
  return spec;
}

// Fills every logical block once, so the steady-state loop starts with the
// store near capacity and every further write fights the cleaner.
void FillStore(FlashStore& store, std::span<const uint8_t> block) {
  for (uint64_t b = 0; b < store.num_blocks(); ++b) {
    (void)store.Write(b, block);
  }
}

void LargeStoreOverwrite(benchmark::State& state, CleanerPolicy cleaner,
                         WearPolicy wear, bool random_blocks, int banks,
                         int hot_banks) {
  const uint64_t sectors = static_cast<uint64_t>(state.range(0));
  SimClock clock;
  FlashDevice flash(LargeFlashSpec(), sectors * 4 * kKiB, banks, clock);
  FlashStoreOptions options;
  options.cleaner = cleaner;
  options.wear = wear;
  options.hot_bank_count = hot_banks;
  FlashStore store(flash, options);
  std::vector<uint8_t> block(512, 1);
  FillStore(store, block);
  Rng rng(7);
  uint64_t b = 0;
  for (auto _ : state) {
    if (random_blocks) {
      b = rng.NextBelow(store.num_blocks());
    } else {
      b = (b + 1) % store.num_blocks();
    }
    benchmark::DoNotOptimize(store.Write(b, block));
  }
  state.counters["sectors"] = static_cast<double>(sectors);
  state.counters["write_amp"] = store.WriteAmplification();
}

void BM_LargeStoreSeqOverwrite(benchmark::State& state) {
  // Sequential overwrite: victims are fully dead, so host cost is dominated
  // by victim selection + free-sector take, one erase per pages_per_sector
  // writes.
  LargeStoreOverwrite(state, CleanerPolicy::kCostBenefit, WearPolicy::kDynamic,
                      /*random_blocks=*/false, /*banks=*/1, /*hot_banks=*/0);
}
BENCHMARK(BM_LargeStoreSeqOverwrite)->Arg(4096)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kNanosecond);

void BM_LargeStoreRandOverwrite(benchmark::State& state) {
  // Random overwrite at ~90% utilization: high write amplification, victim
  // selection and relocation on nearly every user write.
  LargeStoreOverwrite(state, CleanerPolicy::kCostBenefit, WearPolicy::kDynamic,
                      /*random_blocks=*/true, /*banks=*/1, /*hot_banks=*/0);
}
BENCHMARK(BM_LargeStoreRandOverwrite)->Arg(4096)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kNanosecond);

void BM_LargeStoreRandOverwriteGreedyStatic(benchmark::State& state) {
  // Greedy cleaning + static wear leveling: exercises the dead-page victim
  // buckets and the min/max wear trackers instead of the cost-benefit index.
  LargeStoreOverwrite(state, CleanerPolicy::kGreedy, WearPolicy::kStatic,
                      /*random_blocks=*/true, /*banks=*/1, /*hot_banks=*/0);
}
BENCHMARK(BM_LargeStoreRandOverwriteGreedyStatic)
    ->Arg(4096)->Arg(16384)->Arg(65536)->Unit(benchmark::kNanosecond);

void BM_CleaningRelocation(benchmark::State& state) {
  // The cleaner's page-relocation path in near-isolation: with only 2%
  // overprovisioning, uniform random overwrite leaves every victim sector
  // mostly valid, so nearly all host work per user write is victim selection
  // plus live-page relocation — since the zero-copy data plane a refcount
  // bump and map update per page, not a read/program memcpy pair. Arg is the
  // page size: 8 pages per erase sector on a fixed 64 MiB card, so /512 and
  // /4096 relocate the same page count per op but 8x different byte counts —
  // the spread between them is the residual per-byte cost of relocation
  // (zero for the extent plane, two memcpys per page for the flat plane it
  // replaced). Both are gated in CI alongside BM_SimCoreReplay and
  // BM_LargeStoreRandOverwrite/65536 (scripts/bench_gate.py).
  const uint64_t page_bytes = static_cast<uint64_t>(state.range(0));
  SimClock clock;
  FlashSpec spec = LargeFlashSpec();
  spec.erase_sector_bytes = 8 * page_bytes;
  FlashDevice flash(spec, 64 * kMiB, /*banks=*/1, clock);
  FlashStoreOptions options;
  options.block_bytes = page_bytes;
  options.cleaner = CleanerPolicy::kCostBenefit;
  options.wear = WearPolicy::kDynamic;
  options.overprovision = 0.02;
  FlashStore store(flash, options);
  std::vector<uint8_t> block(page_bytes, 1);
  FillStore(store, block);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.Write(rng.NextBelow(store.num_blocks()), block));
  }
  state.counters["write_amp"] = store.WriteAmplification();
  state.counters["relocations_per_op"] =
      static_cast<double>(store.stats().gc_relocations.value()) /
      static_cast<double>(std::max<int64_t>(state.iterations(), 1));
}
BENCHMARK(BM_CleaningRelocation)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kNanosecond);

void BM_LargeStoreSegregatedChurn(benchmark::State& state) {
  // Bank segregation with a hot-range working set: exercises the cold-sector
  // eviction path on top of cleaning.
  LargeStoreOverwrite(state, CleanerPolicy::kCostBenefit, WearPolicy::kDynamic,
                      /*random_blocks=*/true, /*banks=*/8, /*hot_banks=*/2);
}
BENCHMARK(BM_LargeStoreSegregatedChurn)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kNanosecond);

void BM_ReadTailUnderCleaning(benchmark::State& state) {
  // Foreground reads against a near-full 1-bank store whose cleaner issues
  // background programs/erases. Arg(0) = FIFO (the charge-latency oracle),
  // Arg(1) = priority scheduling (reads jump queued cleaner work). Host
  // ns/op guards the scheduler's queue mechanics; the sim_read_p99_ns
  // counter records the simulated read tail each policy produces, so the
  // FIFO-vs-priority ablation is machine-comparable across PRs.
  const IoSchedPolicy policy = state.range(0) == 0 ? IoSchedPolicy::kFifo
                                                   : IoSchedPolicy::kPriority;
  SimClock clock;
  FlashDevice flash(MicroFlashSpec(), 2 * kMiB, 1, clock);
  flash.set_sched_policy(policy);
  FlashStoreOptions options;
  options.background_writes = true;  // Cleaner work queues, never blocks us.
  FlashStore store(flash, options);
  std::vector<uint8_t> block(512, 1);
  FillStore(store, block);
  Rng rng(11);
  std::vector<uint8_t> out(512);
  LatencyRecorder read_latency;
  for (auto _ : state) {
    (void)store.Write(rng.NextBelow(64), block);  // Churn: forces cleaning.
    const SimTime before = clock.now();
    benchmark::DoNotOptimize(
        store.Read(64 + rng.NextBelow(store.num_blocks() - 64), out));
    read_latency.Record(clock.now() - before);
    // Think time just above the ~5.2 ms/write production rate: the queue
    // drains between cleaning bursts instead of growing without bound, so
    // reads contend with bursts (where policy matters), not a backlog.
    clock.Advance(8 * kMillisecond);
  }
  state.counters["sim_read_p99_ns"] =
      static_cast<double>(read_latency.p99_ns());
  state.counters["sim_read_mean_ns"] = read_latency.mean_ns();
}
BENCHMARK(BM_ReadTailUnderCleaning)->Arg(0)->Arg(1)
    ->Unit(benchmark::kNanosecond);

void BM_MemoryFsCreateWriteUnlink(benchmark::State& state) {
  MobileComputer machine(NotebookConfig());
  std::vector<uint8_t> data(4096, 1);
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string path = "/f" + std::to_string(i++);
    (void)machine.fs().Create(path);
    (void)machine.fs().Write(path, 0, data);
    (void)machine.fs().Unlink(path);
  }
}
BENCHMARK(BM_MemoryFsCreateWriteUnlink);

void BM_MemoryFsRead4K(benchmark::State& state) {
  MobileComputer machine(NotebookConfig());
  (void)machine.fs().Create("/f");
  std::vector<uint8_t> data(4096, 1);
  (void)machine.fs().Write("/f", 0, data);
  (void)machine.fs().Sync();
  std::vector<uint8_t> out(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.fs().Read("/f", 0, out));
  }
}
BENCHMARK(BM_MemoryFsRead4K);

void BM_DiskFsRead4KWarm(benchmark::State& state) {
  SimClock clock;
  DiskDevice disk(KittyHawkDisk1993(), clock);
  disk.set_spin_down_after(0);
  DiskFileSystem fs(disk, DiskFsOptions{});
  (void)fs.Create("/f");
  std::vector<uint8_t> data(4096, 1);
  (void)fs.Write("/f", 0, data);
  std::vector<uint8_t> out(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.Read("/f", 0, out));
  }
}
BENCHMARK(BM_DiskFsRead4KWarm);

void BM_FlashStoreSegregatedWrite(benchmark::State& state) {
  SimClock clock;
  FlashDevice flash(MicroFlashSpec(), 2 * kMiB, 4, clock);
  FlashStoreOptions options;
  options.hot_bank_count = 1;
  FlashStore store(flash, options);
  std::vector<uint8_t> block(512, 1);
  Rng rng(3);
  for (uint64_t b = 0; b < store.num_blocks(); ++b) {
    (void)store.Write(b, block,
                      b < store.num_blocks() / 10
                          ? WriteStream::kUser
                          : WriteStream::kRelocation);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.Write(rng.NextBelow(store.num_blocks() / 10), block));
  }
}
BENCHMARK(BM_FlashStoreSegregatedWrite);

void BM_MetadataCheckpoint(benchmark::State& state) {
  MobileComputer machine(NotebookConfig());
  for (int d = 0; d < 4; ++d) {
    (void)machine.fs().Mkdir("/d" + std::to_string(d));
    for (int f = 0; f < 32; ++f) {
      const std::string path =
          "/d" + std::to_string(d) + "/f" + std::to_string(f);
      (void)machine.fs().Create(path);
      std::vector<uint8_t> data(2048, 1);
      (void)machine.fs().Write(path, 0, data);
    }
  }
  (void)machine.fs().Sync();
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.fs().CheckpointMetadata());
  }
  state.counters["files"] = 128;
}
BENCHMARK(BM_MetadataCheckpoint);

void BM_TraceGeneration(benchmark::State& state) {
  WorkloadOptions options = OfficeWorkload();
  options.duration = kMinute;
  uint64_t records = 0;
  for (auto _ : state) {
    options.seed += 1;
    WorkloadGenerator generator(options);
    const Trace trace = generator.Generate();
    records += trace.size();
    benchmark::DoNotOptimize(trace.size());
  }
  state.counters["records_per_iter"] =
      static_cast<double>(records) /
      static_cast<double>(std::max<int64_t>(1, state.iterations()));
}
BENCHMARK(BM_TraceGeneration);

void BM_TraceReplay(benchmark::State& state) {
  // Host cost of replaying one pre-generated office trace on a fresh
  // machine. Exercises the replayer's per-record path (pattern fill with the
  // cached per-path hash, one-shot buffer reservation) on top of the FS.
  WorkloadOptions options = OfficeWorkload();
  options.duration = kMinute;
  options.max_file_bytes = 64 * 1024;
  const Trace trace = WorkloadGenerator(options).Generate();
  uint64_t records = 0;
  for (auto _ : state) {
    MobileComputer machine(NotebookConfig());
    const ReplayReport report = machine.RunTrace(trace);
    records += report.ops;
    benchmark::DoNotOptimize(report.ops);
  }
  state.counters["records_per_iter"] =
      static_cast<double>(records) /
      static_cast<double>(std::max<int64_t>(1, state.iterations()));
}
BENCHMARK(BM_TraceReplay)->Unit(benchmark::kMicrosecond);

void BM_SimCoreReplay(benchmark::State& state) {
  // Macro-benchmark over the whole simulation core: a five-minute office
  // workload replayed on a fresh machine each iteration — event queue, I/O
  // pipeline, FTL, file system, and tracer all on the hot path. The
  // sim_ops_per_s rate (trace records retired per host second) is the
  // regression-gated figure: CI's bench-smoke leg fails when it drops more
  // than 15% below the committed BENCH_micro.json baseline
  // (scripts/bench_gate.py); scripts/regen_experiments.sh refreshes the
  // baseline after intentional changes.
  WorkloadOptions options = OfficeWorkload();
  options.duration = 5 * kMinute;
  options.max_file_bytes = 64 * 1024;
  const Trace trace = WorkloadGenerator(options).Generate();
  uint64_t ops = 0;
  for (auto _ : state) {
    MobileComputer machine(NotebookConfig());
    const ReplayReport report = machine.RunTrace(trace);
    ops += report.ops;
    benchmark::DoNotOptimize(report.ops);
  }
  state.counters["sim_ops_per_s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimCoreReplay)->Unit(benchmark::kMillisecond);

void BM_SingleLevelStoreLoad(benchmark::State& state) {
  MobileComputer machine(NotebookConfig());
  (void)machine.fs().Create("/f");
  std::vector<uint8_t> data(64 * kKiB, 1);
  (void)machine.fs().Write("/f", 0, data);
  (void)machine.fs().Sync();
  machine.Idle(kMinute);
  SingleLevelStore store(machine.storage(), machine.fs());
  const uint64_t base = store.Attach("/f").value();
  std::vector<uint8_t> out(512);
  uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Load(base + off, out));
    off = (off + 512) % (64 * kKiB);
  }
}
BENCHMARK(BM_SingleLevelStoreLoad);

void BM_PageTableWalk(benchmark::State& state) {
  PageTable table(512, nullptr);
  for (uint64_t va = 0; va < 1024 * 512; va += 512) {
    PageTableEntry& pte = table.FindOrCreate(va);
    table.MarkPresent(pte, true);
  }
  uint64_t va = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(va));
    va = (va + 512) % (1024 * 512);
  }
}
BENCHMARK(BM_PageTableWalk);

void BM_AddressSpaceDramRead(benchmark::State& state) {
  MobileComputer machine(NotebookConfig());
  AddressSpace& space = machine.CreateAddressSpace();
  (void)space.MapAnonymous(1 << 20, 64 * kKiB, "bench");
  std::vector<uint8_t> data(64 * kKiB, 1);
  (void)space.Write(1 << 20, data);
  std::vector<uint8_t> out(512);
  uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.Read((1 << 20) + off, out));
    off = (off + 512) % (64 * kKiB);
  }
}
BENCHMARK(BM_AddressSpaceDramRead);

// Console reporter that also collects every run as a MetricsSnapshot row
// and dumps them through the shared metrics-snapshot emitter (same code
// path as BENCH_scaleout.json and the benches' --metrics flag): op name,
// ns/op (normalized to nanoseconds), counters; keys in sorted order.
class JsonDumpingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      MetricsSnapshot row;
      row.Set("op", MetricValue::MakeString(run.benchmark_name()));
      // GetAdjustedRealTime() is in the run's display unit; normalize so the
      // JSON field is always nanoseconds regardless of ->Unit().
      double to_ns = 1.0;
      switch (run.time_unit) {
        case benchmark::kNanosecond:  to_ns = 1.0;  break;
        case benchmark::kMicrosecond: to_ns = 1e3;  break;
        case benchmark::kMillisecond: to_ns = 1e6;  break;
        case benchmark::kSecond:      to_ns = 1e9;  break;
      }
      row.Set("ns_per_op",
              MetricValue::MakeDouble(run.GetAdjustedRealTime() * to_ns));
      for (const auto& [counter_name, counter] : run.counters) {
        row.Set(counter_name,
                MetricValue::MakeDouble(static_cast<double>(counter.value)));
      }
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  bool WriteJson(const std::string& path) const {
    return WriteMetricsJsonArrayFile(path, rows_);
  }

 private:
  std::vector<MetricsSnapshot> rows_;
};

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ssmc::JsonDumpingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!reporter.WriteJson("BENCH_micro.json")) {
    fprintf(stderr, "failed to write BENCH_micro.json\n");
    return 1;
  }
  return 0;
}
