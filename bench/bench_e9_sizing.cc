// E9 — Sizing DRAM vs flash under a fixed budget (paper Section 4).
//
// Claim under test: "How should a system apportion its storage capacity
// between the two technologies? ... The answer depends on the workload.
// DRAM has the advantage of better write performance and relatively
// unlimited endurance, but flash memory uses less power and must ultimately
// be the repository for long-lived data."
//
// Method: hold the total solid-state capacity fixed at 12 MiB and sweep the
// DRAM share, running three workload profiles on each split. Report
// throughput, energy (drives battery life), flash write amplification and
// erase counts (drives endurance), and failures (a too-small side breaks
// the workload). The best split should differ by workload — that is the
// paper's point.

// The 4 workloads x 5 splits matrix is 20 independent machines; all 20 run
// concurrently through the parallel runner and the per-workload tables print
// in submission order, byte-identical to --jobs=1.

#include <functional>

#include "bench/bench_common.h"

namespace ssmc {
namespace {

constexpr uint64_t kBudgetBytes = 12 * kMiB;
constexpr uint64_t kDramSweepMib[] = {1, 2, 4, 6, 8};

struct SizingResult {
  double ops_per_s = 0;
  double mean_op_us = 0;
  double energy_mj = 0;
  double write_amp = 0;
  uint64_t erases = 0;
  uint64_t failures = 0;
};

SizingResult RunSplit(uint64_t dram_bytes, const WorkloadOptions& workload,
                      Obs* obs = nullptr) {
  MachineConfig config;
  config.obs = obs;
  config.name = "sizing";
  config.dram_bytes = dram_bytes;
  config.flash_spec = GenericPaperFlash();
  config.flash_spec.erase_sector_bytes = 8 * kKiB;
  config.flash_spec.erase_ns = 50 * kMillisecond;
  config.flash_bytes = kBudgetBytes - dram_bytes;
  config.flash_banks = 2;
  // Most of DRAM serves as the write buffer; the rest is program memory.
  config.fs_options.write_buffer_pages = (dram_bytes / 512) / 2;
  MobileComputer machine(config);

  const Trace trace = WorkloadGenerator(workload).Generate();
  const ReplayReport report = machine.RunTrace(trace);
  (void)machine.fs().Sync();
  machine.SettleEnergy();

  SizingResult result;
  result.ops_per_s = report.OpsPerSecond();
  result.mean_op_us = report.all_ops.mean_ns() / 1e3;
  result.energy_mj = machine.TotalEnergyNj() / 1e6;
  result.write_amp = machine.flash_store().WriteAmplification();
  result.erases = machine.flash_store().stats().erases.value();
  result.failures = report.failures;
  return result;
}

WorkloadOptions Calibrate(WorkloadOptions options) {
  options.duration = 3 * kMinute;
  options.mean_interarrival = 15 * kMillisecond;
  options.min_file_bytes = 512;
  options.max_file_bytes = 96 * 1024;
  options.num_directories = 16;
  options.initial_files = 320;
  options.hot_skew = 0.5;  // Broad write working set: sizing pressure.
  return options;
}

// Queues this workload's five splits as cells; the results land, in order,
// behind the previously queued workloads.
void QueueWorkload(std::vector<std::function<SizingResult()>>& cells,
                   const WorkloadOptions& options, ObsCapture& capture) {
  for (const uint64_t dram_mib : kDramSweepMib) {
    const int cell = static_cast<int>(cells.size());
    cells.push_back([&capture, cell, dram_mib, options] {
      return RunSplit(dram_mib * kMiB, options, capture.ForCell(cell));
    });
  }
}

void PrintWorkload(const std::string& name,
                   const std::vector<SizingResult>& results, size_t& cell) {
  std::cout << "\nWorkload: " << name << "\n";
  Table table({"DRAM : flash", "mean op (us)", "ops/s", "energy (mJ)",
               "flash WA", "erases", "failures"});
  for (const uint64_t dram_mib : kDramSweepMib) {
    const uint64_t dram = dram_mib * kMiB;
    const SizingResult& r = results[cell++];
    table.AddRow();
    table.AddCell(std::to_string(dram_mib) + " : " +
                  std::to_string((kBudgetBytes - dram) / kMiB) + " MiB");
    table.AddCell(r.mean_op_us, 1);
    table.AddCell(r.ops_per_s, 0);
    table.AddCell(r.energy_mj, 1);
    table.AddCell(r.write_amp, 2);
    table.AddCell(r.erases);
    table.AddCell(r.failures);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E9: DRAM vs flash sizing at a fixed budget (Section 4)",
              "Claim: the right DRAM:flash split depends on the workload's "
              "writable working set.");
  std::cout << "Total solid-state budget: " << FormatSize(kBudgetBytes)
            << "; DRAM share swept; half of DRAM is write buffer.\n";

  // Archive: long-lived data accumulates until it no longer fits the flash
  // side — the "sufficiently large repository for permanent data" corner.
  WorkloadOptions archive;
  archive.seed = 4242;
  archive.p_read = 0.30;
  archive.p_write = 0.10;
  archive.p_create = 0.25;
  archive.p_delete = 0.02;
  archive.p_short_lived = 0.0;  // Nothing dies young.
  archive.max_file_bytes = 256 * 1024;

  ObsCapture capture(argc, argv);
  std::vector<std::function<SizingResult()>> cells;
  QueueWorkload(cells, Calibrate(ReadMostlyWorkload()), capture);
  QueueWorkload(cells, Calibrate(OfficeWorkload()), capture);
  QueueWorkload(cells, Calibrate(WriteHotWorkload()), capture);
  QueueWorkload(cells, Calibrate(archive), capture);

  const std::vector<SizingResult> results =
      RunCellsOrdered(argc, argv, std::move(cells));

  size_t cell = 0;
  PrintWorkload("read-mostly", results, cell);
  PrintWorkload("office", results, cell);
  PrintWorkload("write-hot", results, cell);
  PrintWorkload("archive (long-lived data)", results, cell);

  std::cout << "\nReading: the write-hot profile wants more DRAM (lower "
               "latency); every profile pays\nDRAM retention power, so the "
               "read-mostly profile prefers a small-DRAM split; the archive\n"
               "profile fails outright (NO_SPACE) when the flash share is "
               "too small — flash must be\nthe repository for long-lived "
               "data.\n";
  capture.Finish();
  return 0;
}
