// E14 — Noisy-neighbor tenant QoS ablation.
//
// Claim under test: threading tenant identity through the whole I/O stack
// lets the flash scheduler protect an interactive tenant's read tail from a
// co-located write-burst aggressor — without giving up aggregate
// throughput. One machine hosts two tenants:
//   victim    (tenant 1): read-mostly interactive traffic;
//   aggressor (tenant 2): write-hot bursts that keep the flush daemon
//                         pushing batches of programs at the flash banks.
// The merged two-tenant trace replays under the four scheduling policies
// (src/sim/io_scheduler.h):
//   fifo     — arrival order; victim reads queue behind whole flush batches;
//   priority — foreground jumps flush/cleaner work, tenant-blind (E8);
//   wfq      — start-time-fair queueing on per-tenant virtual time, victim
//              weighted 8:1 (flush work is billed to the tenant that wrote
//              the data, so the aggressor's background traffic competes at
//              the aggressor's weight);
//   token    — the aggressor capped by a token bucket (rate + burst). The
//              queue stays FIFO with gated start times: this shapes the
//              aggressor's long-run share (and flash wear), it is not a
//              latency shield — expect throughput to move, not the tail.
// Victim read p50/p99 come from the replay's per-tenant latency lanes
// (ReplayReport::by_tenant); per-tenant queue-wait from the device's
// io_by_tenant attribution. Results also land in BENCH_qos.json.

#include <algorithm>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/metrics_export.h"

namespace ssmc {
namespace {

constexpr TenantId kVictim = 1;
constexpr TenantId kAggressor = 2;

constexpr IoSchedPolicy kPolicies[] = {
    IoSchedPolicy::kFifo, IoSchedPolicy::kPriority,
    IoSchedPolicy::kWeightedFair, IoSchedPolicy::kTokenBucket};

struct QosResult {
  double victim_read_p50_us = 0;
  double victim_read_p99_us = 0;
  double aggressor_write_p99_us = 0;
  // Mean flash queue wait per request, per tenant (device attribution).
  double victim_wait_us = 0;
  double aggressor_wait_us = 0;
  uint64_t ops = 0;
  double ops_per_sim_s = 0;
  uint64_t failures = 0;
};

// Interleaves two per-tenant traces by issue time (ties: victim first).
// Both inputs are time-sorted, so the merge is too.
Trace MergeByTime(const Trace& a, const Trace& b) {
  Trace merged;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    const bool take_a =
        j >= b.size() ||
        (i < a.size() && a.records()[i].at <= b.records()[j].at);
    merged.Add(take_a ? a.records()[i++] : b.records()[j++]);
  }
  return merged;
}

// The shared two-tenant trace: every policy cell replays exactly this.
// Victim reads are small partial reads (~127 us on SunDisk-style flash) so
// queue wait — not transfer time — dominates their latency; aggressor
// writes are mostly whole files, so its flush batches queue runs of ~1.3 ms
// page programs at the banks.
Trace NoisyNeighborTrace() {
  WorkloadOptions victim = ReadMostlyWorkload();
  victim.duration = kMinute;
  victim.mean_interarrival = 10 * kMillisecond;
  victim.p_whole_file = 0.05;
  victim.partial_io_bytes = 512;
  victim.max_file_bytes = 16 * 1024;

  WorkloadOptions aggressor = WriteHotWorkload();
  aggressor.duration = kMinute;
  aggressor.mean_interarrival = 5 * kMillisecond;
  aggressor.p_whole_file = 0.9;
  aggressor.max_file_bytes = 64 * 1024;

  // Separate namespaces: contention is for the device, not for files.
  return MergeByTime(WorkloadGenerator(victim)
                         .Generate()
                         .WithPathPrefix("/victim")
                         .WithTenant(kVictim),
                     WorkloadGenerator(aggressor)
                         .Generate()
                         .WithPathPrefix("/aggr")
                         .WithTenant(kAggressor));
}

QosResult RunPolicy(IoSchedPolicy policy, const Trace& trace, Obs* obs) {
  MachineConfig config = NotebookConfig();
  config.name = std::string("qos-") + std::string(IoSchedPolicyName(policy));
  config.obs = obs;
  // A small write buffer keeps the flush daemon emitting frequent batches —
  // the contention regime where scheduling policy matters (cf. E8) — and
  // enough flash that the cleaner's 20 ms erases stay rare: an in-service
  // erase is never preempted, so heavy cleaning would floor every policy's
  // tail at erase time and hide the scheduling difference.
  config.fs_options.write_buffer_pages = 128;
  config.flash_bytes = 64 * kMiB;
  config.flash_banks = 1;
  config.io_sched = policy;
  if (policy == IoSchedPolicy::kWeightedFair) {
    config.tenant_qos = {{kVictim, 8, 0, 0}, {kAggressor, 1, 0, 0}};
  } else if (policy == IoSchedPolicy::kTokenBucket) {
    config.tenant_qos = {{kAggressor, 1, /*rate_bytes_per_s=*/256 * 1024,
                          /*burst_bytes=*/64 * 1024}};
  }
  MobileComputer machine(config);
  (void)machine.fs().Mkdir("/victim");
  (void)machine.fs().Mkdir("/aggr");
  const ReplayReport report = machine.RunTrace(trace);

  QosResult result;
  const TenantLatency* victim = report.by_tenant.Find(kVictim);
  const TenantLatency* aggressor = report.by_tenant.Find(kAggressor);
  if (victim != nullptr) {
    result.victim_read_p50_us = victim->reads.p50_ns() / 1e3;
    result.victim_read_p99_us = victim->reads.p99_ns() / 1e3;
  }
  if (aggressor != nullptr) {
    result.aggressor_write_p99_us = aggressor->writes.p99_ns() / 1e3;
  }
  auto mean_wait_us = [&](TenantId tenant) {
    const IoLaneStats* lane = report.io_by_tenant.Find(tenant);
    if (lane == nullptr || lane->requests.value() == 0) {
      return 0.0;
    }
    return static_cast<double>(lane->queue_wait_ns.value()) /
           static_cast<double>(lane->requests.value()) / 1e3;
  };
  result.victim_wait_us = mean_wait_us(kVictim);
  result.aggressor_wait_us = mean_wait_us(kAggressor);
  result.ops = report.ops;
  const double sim_s = static_cast<double>(report.elapsed()) / kSecond;
  result.ops_per_sim_s =
      sim_s > 0 ? static_cast<double>(report.ops) / sim_s : 0;
  result.failures = report.failures;
  return result;
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E14: noisy-neighbor tenant QoS on the flash scheduler",
              "Claim: weighted-fair queueing over per-tenant virtual time "
              "protects an interactive\ntenant's read tail from a co-located "
              "write-burst aggressor at unchanged aggregate\nthroughput; "
              "token buckets shape the aggressor's rate instead.");

  const Trace trace = NoisyNeighborTrace();
  std::cout << "One machine, two tenants: victim t" << int{kVictim}
            << " read-mostly (10 ms mean interarrival), aggressor t"
            << int{kAggressor}
            << " write-hot\n(5 ms mean interarrival), 60 s, one flash bank, "
               "128-page write buffer; wfq weights\nvictim 8:1, token caps "
               "the aggressor at 256 KiB/s (burst 64 KiB).\n\n";

  ObsCapture capture(argc, argv);
  std::vector<std::function<QosResult()>> cells;
  for (const IoSchedPolicy policy : kPolicies) {
    const int cell = static_cast<int>(cells.size());
    cells.push_back([&capture, cell, policy, &trace] {
      return RunPolicy(policy, trace, capture.ForCell(cell));
    });
  }
  const std::vector<QosResult> results =
      RunCellsOrdered(argc, argv, std::move(cells));

  std::vector<MetricsSnapshot> rows;
  Table table({"scheduler", "victim read p50 (us)", "victim read p99 (us)",
               "victim wait (us)", "aggr wait (us)", "aggr write p99 (us)",
               "ops/sim-s", "total ops", "failures"});
  for (size_t i = 0; i < std::size(kPolicies); ++i) {
    const QosResult& r = results[i];
    const std::string name(IoSchedPolicyName(kPolicies[i]));
    table.AddRow();
    table.AddCell(name);
    table.AddCell(r.victim_read_p50_us, 1);
    table.AddCell(r.victim_read_p99_us, 1);
    table.AddCell(r.victim_wait_us, 1);
    table.AddCell(r.aggressor_wait_us, 1);
    table.AddCell(r.aggressor_write_p99_us, 1);
    table.AddCell(r.ops_per_sim_s, 0);
    table.AddCell(r.ops);
    table.AddCell(r.failures);

    MetricsSnapshot row;
    row.Set("op", MetricValue::MakeString("qos/" + name));
    row.Set("scheduler", MetricValue::MakeString(name));
    row.Set("victim_read_p50_us",
            MetricValue::MakeDouble(r.victim_read_p50_us));
    row.Set("victim_read_p99_us",
            MetricValue::MakeDouble(r.victim_read_p99_us));
    row.Set("victim_mean_wait_us", MetricValue::MakeDouble(r.victim_wait_us));
    row.Set("aggressor_mean_wait_us",
            MetricValue::MakeDouble(r.aggressor_wait_us));
    row.Set("aggressor_write_p99_us",
            MetricValue::MakeDouble(r.aggressor_write_p99_us));
    row.Set("ops_per_sim_s", MetricValue::MakeDouble(r.ops_per_sim_s));
    row.Set("ops", MetricValue::MakeInt(static_cast<int64_t>(r.ops)));
    row.Set("failures",
            MetricValue::MakeInt(static_cast<int64_t>(r.failures)));
    rows.push_back(std::move(row));
  }
  table.Print(std::cout);

  const QosResult& fifo = results[0];
  const QosResult& wfq = results[2];
  const double p99_gain = wfq.victim_read_p99_us > 0
                              ? fifo.victim_read_p99_us / wfq.victim_read_p99_us
                              : 0;
  const double throughput_delta =
      fifo.ops_per_sim_s > 0
          ? (wfq.ops_per_sim_s - fifo.ops_per_sim_s) / fifo.ops_per_sim_s
          : 0;
  std::cout << "\nfifo -> wfq: victim read p99 improves "
            << FormatDouble(p99_gain, 2) << "x; aggregate throughput moves "
            << FormatDouble(throughput_delta * 100.0, 2)
            << "% (work-conserving).\n";
  std::cout << "\nReading: under fifo every victim read waits out whatever "
               "flush batch is queued\nahead of it. priority helps all "
               "foreground work but cannot tell tenants apart.\nwfq bills "
               "flush programs to the tenant whose writes they carry, so "
               "the victim's\nreads overtake the aggressor's backlog at 8:1 "
               "— the tail collapses while every\nqueued byte still gets "
               "served (virtual time is work-conserving). token shapes\nthe "
               "aggressor's admission rate: its queue-wait balloons and "
               "aggregate throughput\ndips, the price of a hard rate cap "
               "that wfq does not charge.\n";
  (void)WriteMetricsJsonArrayFile("BENCH_qos.json", rows);
  capture.Finish();
  return 0;
}
