// E16 — N-tier hierarchy: a byte-addressable NVM tier between DRAM and
// flash (paper Section 5).
//
// Claim under test: the paper anticipates "other solid-state memory
// technologies" slotting between battery-backed DRAM and flash. This
// experiment asks what a PCM-class NVM cache tier buys at a *fixed* DRAM
// budget, and who should manage it:
//   no-nvm   — the two-tier baseline: DRAM clean cache over flash;
//   os-nvm   — OS-managed: the ResidencyManager's tiered ladder (flash ->
//              NVM on first touch, NVM -> DRAM on the next hit, DRAM tail
//              demotes into NVM, NVM tail drops);
//   hw-nvm   — hardware-managed: the OS sees nothing; a per-space access
//              counter migrates hot flash-mapped pages into NVM frames at
//              epoch boundaries (AddressSpace::HwMigrationOptions).
//
// Method: one 2 MiB file (4096 x 512 B blocks), synced to flash, read with
// an independent-reference Zipf(1.0) stream (fixed seed, inverse-CDF over
// tier_model's ZipfPopularity). Warm up 3N draws, then measure 8192: flash
// read traffic, per-tier hit rates, mean simulated read latency, energy.
//
// The OS cells run promote_threshold = 1.0 (admit on first touch), which
// makes the exclusive DRAM-over-NVM ladder behave as one big LRU — exactly
// what the Ju et al. analytical oracle (arXiv:1607.00714, Che
// approximation; src/storage/tier_model.h) models. Each OS cell's measured
// combined hit rate is checked against the closed form; the bench fails
// loudly if any lands more than 5 points off.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/metrics_export.h"
#include "src/storage/residency.h"
#include "src/storage/tier_model.h"
#include "src/support/rng.h"

namespace ssmc {
namespace {

constexpr uint64_t kBlocks = 4096;       // 2 MiB file of 512 B blocks.
constexpr uint64_t kBlockBytes = 512;
constexpr double kZipfSkew = 1.0;
constexpr uint64_t kDramBytes = 1 * kMiB;
constexpr double kCleanFraction = 0.25;  // C1 = 512 DRAM clean slots.
constexpr int kWarmupReads = 3 * kBlocks;
constexpr int kMeasuredReads = 8192;
constexpr uint64_t kNvmSweepKib[] = {256, 512, 1024};

struct NvmResult {
  double hit_rate = 0;          // Measured: reads served above flash.
  double dram_rate = 0;
  double nvm_rate = 0;
  double oracle_hit_rate = -1;  // Closed form; < 0 when no oracle applies.
  uint64_t flash_read_bytes = 0;  // Device-level, incl. promotion traffic.
  uint64_t nvm_read_bytes = 0;
  uint64_t nvm_write_bytes = 0;
  double read_avg_us = 0;
  double energy_mj = 0;
};

MachineConfig BaseConfig(uint64_t nvm_kib) {
  MachineConfig config;
  config.name = "e16";
  config.dram_bytes = kDramBytes;
  config.flash_spec = GenericPaperFlash();
  config.flash_spec.erase_sector_bytes = 8 * kKiB;
  config.flash_spec.erase_ns = 50 * kMillisecond;
  config.flash_bytes = 8 * kMiB;
  config.flash_banks = 2;
  config.fs_options.write_buffer_pages = 256;
  config.nvm_bytes = nvm_kib * kKiB;
  config.nvm_banks = nvm_kib > 0 ? 2 : 1;
  return config;
}

// Writes and syncs the shared 2 MiB test file.
void PopulateFile(MobileComputer& machine) {
  std::vector<uint8_t> block(kBlockBytes);
  if (!machine.fs().Create("/data").ok()) {
    return;
  }
  for (uint64_t b = 0; b < kBlocks; ++b) {
    for (uint64_t i = 0; i < kBlockBytes; ++i) {
      block[i] = static_cast<uint8_t>(b * 31 + i);
    }
    (void)machine.fs().Write("/data", b * kBlockBytes, block);
    if (b % 256 == 255) {
      (void)machine.fs().Sync();
    }
  }
  (void)machine.fs().Sync();
}

// Inverse-CDF sampler over the shared Zipf popularity (IRM traffic).
class ZipfSampler {
 public:
  explicit ZipfSampler(const std::vector<double>& popularity, uint64_t seed)
      : cdf_(popularity.size()), rng_(seed) {
    double sum = 0;
    for (size_t i = 0; i < popularity.size(); ++i) {
      sum += popularity[i];
      cdf_[i] = sum;
    }
  }

  uint64_t Draw() {
    const double u =
        static_cast<double>(rng_.Next() >> 11) * 0x1.0p-53;
    return static_cast<uint64_t>(
        std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  Rng rng_;
};

// OS-managed cell (nvm_kib = 0 is the two-tier baseline): the residency
// ladder with first-touch admission, driven through the file system.
NvmResult RunOsCell(uint64_t nvm_kib, const std::vector<double>& popularity,
                    Obs* obs) {
  MachineConfig config = BaseConfig(nvm_kib);
  config.obs = obs;
  config.residency.policy = ResidencyPolicy::kReadPromote;
  config.residency.promote_threshold = 1.0;  // First touch: pure LRU ladder.
  config.residency.max_clean_fraction = kCleanFraction;
  MobileComputer machine(config);
  PopulateFile(machine);

  ZipfSampler sampler(popularity, 20260808);
  std::vector<uint8_t> out(kBlockBytes);
  for (int i = 0; i < kWarmupReads; ++i) {
    (void)machine.fs().Read("/data", sampler.Draw() * kBlockBytes, out);
  }
  (void)machine.fs().Sync();

  const MemoryFileSystem::Stats& fs = machine.fs().stats();
  const uint64_t dram0 = fs.clean_cached_read_bytes.value() +
                         fs.buffered_read_bytes.value();
  const uint64_t nvm0 = fs.nvm_cached_read_bytes.value();
  const uint64_t flash0 = machine.flash().stats().read_bytes.value();
  const uint64_t nvm_dev_r0 =
      machine.nvm() ? machine.nvm()->stats().read_bytes.value() : 0;
  const uint64_t nvm_dev_w0 =
      machine.nvm() ? machine.nvm()->stats().written_bytes.value() : 0;
  const SimTime t0 = machine.clock().now();

  for (int i = 0; i < kMeasuredReads; ++i) {
    (void)machine.fs().Read("/data", sampler.Draw() * kBlockBytes, out);
  }
  machine.SettleEnergy();

  const uint64_t total = kMeasuredReads * kBlockBytes;
  NvmResult result;
  result.dram_rate =
      static_cast<double>(fs.clean_cached_read_bytes.value() +
                          fs.buffered_read_bytes.value() - dram0) /
      static_cast<double>(total);
  result.nvm_rate =
      static_cast<double>(fs.nvm_cached_read_bytes.value() - nvm0) /
      static_cast<double>(total);
  result.hit_rate = result.dram_rate + result.nvm_rate;
  result.flash_read_bytes =
      machine.flash().stats().read_bytes.value() - flash0;
  if (machine.nvm() != nullptr) {
    result.nvm_read_bytes =
        machine.nvm()->stats().read_bytes.value() - nvm_dev_r0;
    result.nvm_write_bytes =
        machine.nvm()->stats().written_bytes.value() - nvm_dev_w0;
  }
  result.read_avg_us = static_cast<double>(machine.clock().now() - t0) /
                       kMeasuredReads / 1e3;
  result.energy_mj = machine.TotalEnergyNj() / 1e6;
  const double c1 = kCleanFraction * (kDramBytes / kBlockBytes);
  const double c2 = static_cast<double>(nvm_kib * kKiB / kBlockBytes);
  result.oracle_hit_rate = TieredLruHitRates(popularity, c1, c2).combined;
  return result;
}

// Hardware-managed cell: no OS cache at all (write-buffer-only); a
// per-space access counter migrates hot flash-mapped pages into NVM at
// epoch boundaries, transparently to the file system.
NvmResult RunHwCell(uint64_t nvm_kib, const std::vector<double>& popularity,
                    Obs* obs) {
  MachineConfig config = BaseConfig(nvm_kib);
  config.obs = obs;
  config.hw_migration.enabled = true;
  config.hw_migration.epoch_accesses = 1024;
  config.hw_migration.promote_threshold = 2;
  MobileComputer machine(config);
  PopulateFile(machine);

  AddressSpace& space = machine.CreateAddressSpace();
  const uint64_t base = 16 * kMiB;
  if (!space.MapFileCow(base, machine.fs(), "/data", false).ok()) {
    return {};
  }

  ZipfSampler sampler(popularity, 20260808);
  std::vector<uint8_t> out(kBlockBytes);
  for (int i = 0; i < kWarmupReads; ++i) {
    (void)space.Read(base + sampler.Draw() * kBlockBytes, out);
  }

  const uint64_t flash0 = machine.flash().stats().read_bytes.value();
  const uint64_t nvm_r0 = machine.nvm()->stats().read_bytes.value();
  const uint64_t nvm_w0 = machine.nvm()->stats().written_bytes.value();
  const SimTime t0 = machine.clock().now();

  for (int i = 0; i < kMeasuredReads; ++i) {
    (void)space.Read(base + sampler.Draw() * kBlockBytes, out);
  }
  machine.SettleEnergy();

  const uint64_t total = kMeasuredReads * kBlockBytes;
  NvmResult result;
  result.nvm_read_bytes = machine.nvm()->stats().read_bytes.value() - nvm_r0;
  result.nvm_write_bytes =
      machine.nvm()->stats().written_bytes.value() - nvm_w0;
  result.nvm_rate = static_cast<double>(result.nvm_read_bytes) /
                    static_cast<double>(total);
  result.hit_rate = result.nvm_rate;  // No DRAM cache in this cell.
  result.flash_read_bytes =
      machine.flash().stats().read_bytes.value() - flash0;
  result.read_avg_us = static_cast<double>(machine.clock().now() - t0) /
                       kMeasuredReads / 1e3;
  result.energy_mj = machine.TotalEnergyNj() / 1e6;
  return result;
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader(
      "E16: N-tier hierarchy — byte-addressable NVM between DRAM and flash "
      "(Section 5)",
      "Claim: a PCM-class NVM tier at a fixed DRAM budget absorbs most of "
      "the flash read traffic;\nthe OS-managed tier ladder tracks the Ju et "
      "al. closed-form LRU model, and beats\nhardware epoch-counter "
      "migration at equal NVM capacity.");
  std::cout << "Zipf(" << FormatDouble(kZipfSkew, 1) << ") IRM reads over a "
            << FormatSize(kBlocks * kBlockBytes) << " file; DRAM "
            << FormatSize(kDramBytes) << " (clean cache "
            << FormatSize(static_cast<uint64_t>(kCleanFraction * kDramBytes))
            << "); " << kMeasuredReads << " measured reads after "
            << kWarmupReads << " warm-up.\n";

  const std::vector<double> popularity = ZipfPopularity(kBlocks, kZipfSkew);

  // --nvm=<kib> restricts the sweep to one NVM size and --nvm-policy=<os|hw>
  // to one managed family (quick A/B runs; the no-NVM baseline always runs —
  // it is the denominator of the "cut" column). A restricted run does not
  // refresh BENCH_nvm.json: the regression gate resolves rows by op name, so
  // a partial file must never overwrite the committed baseline.
  std::vector<uint64_t> sweep_kib(std::begin(kNvmSweepKib),
                                  std::end(kNvmSweepKib));
  uint64_t hw_kib = 1024;
  bool run_os = true;
  bool run_hw = true;
  const std::string nvm_flag = FlagValue(argc, argv, "--nvm=");
  if (!nvm_flag.empty()) {
    const uint64_t one = std::strtoull(nvm_flag.c_str(), nullptr, 10);
    if (one == 0) {
      std::cerr << "bad --nvm size: " << nvm_flag << " (want KiB > 0)\n";
      return 2;
    }
    sweep_kib.assign(1, one);
    hw_kib = one;
  }
  const std::string policy_flag = FlagValue(argc, argv, "--nvm-policy=");
  if (policy_flag == "os") {
    run_hw = false;
  } else if (policy_flag == "hw") {
    run_os = false;
  } else if (!policy_flag.empty()) {
    std::cerr << "unknown --nvm-policy: " << policy_flag << " (want os | hw)\n";
    return 2;
  }
  const bool full_sweep = nvm_flag.empty() && policy_flag.empty();

  // Cell 0: no NVM. Then the OS-managed sweep, then HW-managed.
  ObsCapture capture(argc, argv);
  std::vector<std::function<NvmResult()>> cells;
  cells.push_back([&capture, &popularity] {
    return RunOsCell(0, popularity, capture.ForCell(0));
  });
  if (run_os) {
    for (const uint64_t nvm_kib : sweep_kib) {
      const int cell = static_cast<int>(cells.size());
      cells.push_back([&capture, &popularity, nvm_kib, cell] {
        return RunOsCell(nvm_kib, popularity, capture.ForCell(cell));
      });
    }
  }
  if (run_hw) {
    cells.push_back([&capture, &popularity, hw_kib, cell = cells.size()] {
      return RunHwCell(hw_kib, popularity,
                       capture.ForCell(static_cast<int>(cell)));
    });
  }
  const std::vector<NvmResult> results =
      RunCellsOrdered(argc, argv, std::move(cells));
  const NvmResult& baseline = results[0];

  Table table({"cell", "nvm", "hit rate", "dram", "nvm hits", "oracle",
               "flash reads (MiB)", "cut (x)", "read avg (us)",
               "energy (mJ)"});
  std::vector<MetricsSnapshot> rows;
  bool oracle_ok = true;
  auto add = [&](const std::string& label, const std::string& op,
                 uint64_t nvm_kib, const NvmResult& r) {
    const double cut =
        r.flash_read_bytes > 0
            ? static_cast<double>(baseline.flash_read_bytes) /
                  static_cast<double>(r.flash_read_bytes)
            : 0;
    table.AddRow();
    table.AddCell(label);
    table.AddCell(FormatSize(nvm_kib * kKiB));
    table.AddCell(Pct(r.hit_rate));
    table.AddCell(Pct(r.dram_rate));
    table.AddCell(Pct(r.nvm_rate));
    table.AddCell(r.oracle_hit_rate >= 0 ? Pct(r.oracle_hit_rate)
                                         : std::string("-"));
    table.AddCell(static_cast<double>(r.flash_read_bytes) / kMiB, 2);
    table.AddCell(cut, 2);
    table.AddCell(r.read_avg_us, 1);
    table.AddCell(r.energy_mj, 1);
    if (r.oracle_hit_rate >= 0 &&
        std::abs(r.hit_rate - r.oracle_hit_rate) > 0.05) {
      oracle_ok = false;
      std::cerr << "ORACLE MISMATCH: " << label << " measured "
                << Pct(r.hit_rate) << " vs closed-form "
                << Pct(r.oracle_hit_rate) << " (> 5 points)\n";
    }

    MetricsSnapshot row;
    row.Set("op", MetricValue::MakeString(op));
    row.Set("nvm_kib", MetricValue::MakeInt(static_cast<int64_t>(nvm_kib)));
    row.Set("hit_rate", MetricValue::MakeDouble(r.hit_rate));
    row.Set("dram_hit_rate", MetricValue::MakeDouble(r.dram_rate));
    row.Set("nvm_hit_rate", MetricValue::MakeDouble(r.nvm_rate));
    row.Set("oracle_hit_rate", MetricValue::MakeDouble(r.oracle_hit_rate));
    row.Set("flash_read_bytes",
            MetricValue::MakeInt(static_cast<int64_t>(r.flash_read_bytes)));
    row.Set("flash_read_reduction_x", MetricValue::MakeDouble(cut));
    row.Set("nvm_read_bytes",
            MetricValue::MakeInt(static_cast<int64_t>(r.nvm_read_bytes)));
    row.Set("nvm_write_bytes",
            MetricValue::MakeInt(static_cast<int64_t>(r.nvm_write_bytes)));
    row.Set("read_avg_us", MetricValue::MakeDouble(r.read_avg_us));
    row.Set("energy_mj", MetricValue::MakeDouble(r.energy_mj));
    rows.push_back(std::move(row));
  };

  add("no-nvm (2-tier)", "e16/no-nvm", 0, results[0]);
  if (run_os) {
    for (size_t i = 0; i < sweep_kib.size(); ++i) {
      add("os-nvm", "e16/os-nvm/" + std::to_string(sweep_kib[i]) + "kib",
          sweep_kib[i], results[1 + i]);
    }
  }
  if (run_hw) {
    add("hw-nvm", "e16/hw-nvm/" + std::to_string(hw_kib) + "kib", hw_kib,
        results.back());
  }
  table.Print(std::cout);

  std::cout << "\nReading: the OS-managed ladder turns NVM capacity "
               "directly into flash-read reduction —\nthe combined "
               "DRAM+NVM hit rate tracks the Che/Ju closed form, so the "
               "tier behaves as one\nbig LRU whose fast head lives in "
               "DRAM. Hardware epoch-counter migration catches only\nthe "
               "hottest head (no eviction, coarse epochs): same NVM, far "
               "less of the Zipf tail covered.\n";
  if (full_sweep) (void)WriteMetricsJsonArrayFile("BENCH_nvm.json", rows);
  capture.Finish();
  return oracle_ok ? 0 : 1;
}
