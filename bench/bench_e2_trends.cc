// E2 — Technology trends (paper Section 2).
//
// Claims under test:
//  * "The megabytes per dollar of DRAM increases by 40% a year, compared to
//    25% for disk ... these prices will become comparable."
//  * "The megabytes per cubic inch of DRAM also increase by 40% a year ...
//    the density of DRAM will shortly exceed that of disk."
//  * "for 40-Megabyte configurations, the cost per megabyte of flash memory
//    will match that of magnetic disks by the year 1996."
//
// Regenerates the projection series from the 1993 catalog anchors. For the
// flash-vs-disk 40 MB comparison, the disk side carries a fixed mechanism
// cost (heads, motor, controller ~ $250/drive) amortized over 40 MB, which
// is how mid-90s trade-press parity estimates were computed.

#include <cmath>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace ssmc;
  // E2 is catalog arithmetic (no simulated machine), but it accepts the
  // shared --trace/--metrics flags so every bench has the same CLI; the
  // outputs are valid, empty captures.
  ObsCapture capture(argc, argv);
  PrintHeader("E2: cost & density trends (Section 2)",
              "Claims: DRAM $/MB approaches disk (40%/yr vs 25%/yr); DRAM "
              "density passes disk;\nflash matches 40MB-disk cost mid-90s.");

  const double dram93 = NecDram1993().dollars_per_mib;
  const double flash93 = IntelFlash1993().dollars_per_mib;
  const double kitty93 = KittyHawkDisk1993().dollars_per_mib;
  const double mech_premium_per_mib = 250.0 / 40.0;  // $250 mechanism / 40 MB.

  Table cost({"year", "DRAM $/MiB", "flash $/MiB", "disk media $/MiB",
              "40MB disk drive $/MiB", "flash<=drive?"});
  for (int year = 1993; year <= 2002; ++year) {
    const double dram =
        ProjectDollarsPerMib(dram93, kDramCostImprovementPerYear, year);
    const double flash =
        ProjectDollarsPerMib(flash93, kFlashCostImprovementPerYear, year);
    const double media =
        ProjectDollarsPerMib(kitty93, kDiskCostImprovementPerYear, year);
    const double drive = ProjectDollarsPerMib(
        kitty93 + mech_premium_per_mib, kDiskCostImprovementPerYear, year);
    cost.AddRow();
    cost.AddCell(static_cast<int64_t>(year));
    cost.AddCell(dram, 2);
    cost.AddCell(flash, 2);
    cost.AddCell(media, 2);
    cost.AddCell(drive, 2);
    cost.AddCell(flash <= drive ? "YES" : "no");
  }
  cost.Print(std::cout);

  std::cout << "\nCrossover years (first year the left side is no costlier):\n";
  std::cout << "  DRAM vs disk media:   "
            << CostCrossoverYear(dram93, kDramCostImprovementPerYear, kitty93,
                                 kDiskCostImprovementPerYear)
            << "\n";
  std::cout << "  flash vs 40MB drive:  "
            << CostCrossoverYear(flash93, kFlashCostImprovementPerYear,
                                 kitty93 + mech_premium_per_mib,
                                 kDiskCostImprovementPerYear)
            << "  (paper predicts ~1996)\n";
  // What improvement rate would the paper's 1996 prediction have required?
  {
    const double drive96 = ProjectDollarsPerMib(
        kitty93 + mech_premium_per_mib, kDiskCostImprovementPerYear, 1996);
    // flash93 / (1+r)^3 = drive96  =>  r = (flash93/drive96)^(1/3) - 1.
    const double r = std::pow(flash93 / drive96, 1.0 / 3.0) - 1.0;
    std::cout << "  (parity by 1996 would need flash MB/$ to improve "
              << FormatDouble(r * 100, 0)
              << "%/yr — faster than the paper's own 40%/yr figure;\n"
                 "   historically flash did fall faster than 40%/yr in the "
                 "mid-90s.)\n";
  }

  Table density({"year", "DRAM MiB/in^3", "flash MiB/in^3", "KittyHawk",
                 "Fujitsu 2.5\""});
  const double dram_d = NecDram1993().mib_per_cubic_inch;
  const double flash_d = IntelFlash1993().mib_per_cubic_inch;
  const double kitty_d = KittyHawkDisk1993().mib_per_cubic_inch;
  const double fuji_d = FujitsuDisk1993().mib_per_cubic_inch;
  for (int year = 1993; year <= 2000; ++year) {
    density.AddRow();
    density.AddCell(static_cast<int64_t>(year));
    density.AddCell(ProjectDensity(dram_d, 0.40, year), 1);
    density.AddCell(ProjectDensity(flash_d, 0.40, year), 1);
    density.AddCell(ProjectDensity(kitty_d, 0.25, year), 1);
    density.AddCell(ProjectDensity(fuji_d, 0.25, year), 1);
  }
  std::cout << "\n";
  density.Print(std::cout);

  // First year DRAM density exceeds the denser (Fujitsu) drive.
  int dram_passes_disk = -1;
  for (int year = 1993; year <= 2020; ++year) {
    if (ProjectDensity(dram_d, 0.40, year) >
        ProjectDensity(fuji_d, 0.25, year)) {
      dram_passes_disk = year;
      break;
    }
  }
  std::cout << "\nDRAM density passes the 2.5\" drive in: " << dram_passes_disk
            << " (paper: \"shortly\")\n";
  capture.Finish();
  return 0;
}
