// E5 — Execute-in-place (paper Section 3.2).
//
// Claim under test: "programs residing in flash memory can be executed in
// place ... There is no need to load their code segment into primary storage
// before execution, again saving both the storage needed for duplicate
// copies and the time needed to perform the copies. This technique is
// already in use ... in the Hewlett-Packard OmniBook."
//
// Method: install the same program three ways and launch it — execute-in-
// place from flash, copy-from-flash into DRAM, and copy-from-disk on the
// conventional baseline (cold cache). Report launch latency and DRAM
// consumed, then the cumulative cost over repeated executions (sensitivity:
// XIP pays slightly more per pass because flash reads are slower than DRAM).

#include "bench/bench_common.h"
#include "src/vm/loader.h"

namespace ssmc {
namespace {

constexpr uint64_t kTextBytes = 256 * kKiB;

struct XipRow {
  std::string strategy;
  Duration launch = 0;
  uint64_t dram_pages = 0;
  Duration pass1 = 0;    // Cold execution pass.
  Duration pass10 = 0;   // Cumulative over 10 passes.
};

XipRow RunSolidState(LaunchStrategy strategy, Obs* obs = nullptr) {
  // The OmniBook preset uses Intel-style memory-mapped flash — the part
  // XIP was actually done on (slow to write, near-DRAM to read).
  MachineConfig config = OmniBookConfig();
  config.obs = obs;
  MobileComputer machine(config);
  Program program;
  program.path = "/app";
  program.text_bytes = kTextBytes;
  program.data_bytes = 32 * kKiB;
  (void)InstallProgram(machine.fs(), program);
  machine.Idle(2 * kMinute);  // Drain the background install writes.

  ProgramLoader loader;
  AddressSpace& space = machine.CreateAddressSpace();
  XipRow row;
  row.strategy = std::string(LaunchStrategyName(strategy));
  Result<LaunchResult> launch =
      loader.Launch(space, machine.fs(), program, strategy);
  row.launch = launch.value().launch_latency;
  row.pass1 = loader.Execute(space, launch.value(), 1).value();
  row.pass10 = row.pass1 + loader.Execute(space, launch.value(), 9).value();
  // Execution only touches the text segment (data/stack stay unfaulted), so
  // residency after the passes is the code's steady-state DRAM footprint.
  row.dram_pages = space.resident_dram_pages();
  return row;
}

XipRow RunDisk(Obs* obs = nullptr) {
  DiskMachine disk_machine(FujitsuDisk1993());
  disk_machine.disk->AttachObs(obs);
  Program program;
  program.path = "/app";
  program.text_bytes = kTextBytes;
  program.data_bytes = 32 * kKiB;
  (void)InstallProgram(*disk_machine.fs, program);
  (void)disk_machine.fs->DropCaches();  // Cold launch.

  // The disk machine's DRAM-side substrate for its address space.
  DramDevice dram(NecDram1993(), 4 * kMiB, disk_machine.clock);
  FlashDevice vestigial(GenericPaperFlash(), 256 * kKiB, 1,
                        disk_machine.clock);
  FlashStore store(vestigial, FlashStoreOptions{});
  StorageManager storage(dram, store, 512);
  AddressSpace space(storage);

  ProgramLoader loader;
  XipRow row;
  row.strategy = "copy-from-disk";
  Result<LaunchResult> launch =
      loader.LaunchFromDisk(space, *disk_machine.fs, program);
  row.launch = launch.value().launch_latency;
  row.dram_pages = launch.value().dram_pages_after_launch;
  row.pass1 = loader.Execute(space, launch.value(), 1).value();
  row.pass10 = row.pass1 + loader.Execute(space, launch.value(), 9).value();
  return row;
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E5: execute-in-place (Section 3.2)",
              "Claim: XIP eliminates the code-copy at launch, saving the "
              "copy time and the duplicate DRAM.");

  std::cout << "Program: " << FormatSize(kTextBytes)
            << " text + 32 KiB data. 10 execution passes.\n\n";

  // One cell per launch strategy, in table order.
  ObsCapture capture(argc, argv);
  std::vector<std::function<XipRow()>> cells;
  const std::vector<LaunchStrategy> strategies = {
      LaunchStrategy::kExecuteInPlace, LaunchStrategy::kCopyFromFlash,
      LaunchStrategy::kDemandPaged};
  for (size_t s = 0; s < strategies.size(); ++s) {
    const int cell = static_cast<int>(s);
    const LaunchStrategy strategy = strategies[s];
    cells.push_back([&capture, cell, strategy] {
      return RunSolidState(strategy, capture.ForCell(cell));
    });
  }
  cells.push_back([&capture] { return RunDisk(capture.ForCell(3)); });
  const std::vector<XipRow> rows =
      RunCellsOrdered(argc, argv, std::move(cells));

  Table table({"strategy", "launch", "text DRAM after 10 passes",
               "exec pass 1", "launch+10 passes"});
  for (const XipRow& row : rows) {
    table.AddRow();
    table.AddCell(row.strategy);
    table.AddCell(FormatDuration(row.launch));
    table.AddCell(FormatSize(row.dram_pages * 512));
    table.AddCell(FormatDuration(row.pass1));
    table.AddCell(FormatDuration(row.launch + row.pass10));
  }
  table.Print(std::cout);

  std::cout << "\nLaunch speedup, XIP vs copy-from-flash: "
            << FormatDouble(static_cast<double>(rows[1].launch) /
                                std::max<Duration>(1, rows[0].launch),
                            0)
            << "x;  vs copy-from-disk: "
            << FormatDouble(static_cast<double>(rows[3].launch) /
                                std::max<Duration>(1, rows[0].launch),
                            0)
            << "x\n";

  // Sensitivity: cumulative cost crossover between XIP and copy-from-flash.
  int crossover = -1;
  const Duration xip_warm = (rows[0].pass10 - rows[0].pass1) / 9;
  const Duration copy_warm = (rows[1].pass10 - rows[1].pass1) / 9;
  Duration xip_total = rows[0].launch + rows[0].pass1;
  Duration copy_total = rows[1].launch + rows[1].pass1;
  for (int pass = 2; pass <= 10000; ++pass) {
    xip_total += xip_warm;
    copy_total += copy_warm;
    if (xip_total > copy_total) {
      crossover = pass;
      break;
    }
  }
  if (crossover > 0) {
    std::cout << "Copy-from-flash overtakes XIP after ~" << crossover
              << " warm executions (flash fetch premium).\n";
  } else {
    std::cout << "XIP stays cheaper for at least 10000 executions.\n";
  }
  capture.Finish();
  return 0;
}
