// E1 — Device characteristics (paper Section 2).
//
// Claim under test: "DRAM is faster than flash memory but somewhat costlier,
// while disk is slower than flash memory but considerably cheaper.
// Furthermore, flash memory has lower power consumption than either."
// Plus the quoted constants: flash reads ~100 ns/B, writes ~10 us/B,
// >=512 B erase sectors, 100k cycles, ~$50/MB.
//
// Regenerates the comparison table the paper describes in prose: measured
// 512 B random access latency, 64 KiB sequential bandwidth, and the catalog
// cost/density/power figures, for all five 1993 products.

#include <vector>

#include "bench/bench_common.h"
#include "src/device/dram_device.h"
#include "src/device/flash_device.h"

namespace ssmc {
namespace {

struct Row {
  std::string name;
  Duration read_512 = 0;
  Duration write_512 = 0;
  double seq_read_mib_s = 0;
  double seq_write_mib_s = 0;
  double dollars_per_mib = 0;
  double mib_per_in3 = 0;
  double active_mw_per_mib = 0;
  std::string erase;
};

Row MeasureDram(const DramSpec& spec) {
  SimClock clock;
  DramDevice dram(spec, 4 * kMiB, clock);
  Row row;
  row.name = spec.name;
  std::vector<uint8_t> buf(512);
  row.read_512 = dram.Read(0, buf).value();
  row.write_512 = dram.Write(0, buf).value();
  std::vector<uint8_t> big(64 * kKiB);
  const Duration seq_r = dram.Read(0, big).value();
  const Duration seq_w = dram.Write(0, big).value();
  row.seq_read_mib_s = 64.0 / 1024 / (static_cast<double>(seq_r) / kSecond);
  row.seq_write_mib_s = 64.0 / 1024 / (static_cast<double>(seq_w) / kSecond);
  row.dollars_per_mib = spec.dollars_per_mib;
  row.mib_per_in3 = spec.mib_per_cubic_inch;
  row.active_mw_per_mib = spec.active_mw_per_mib;
  row.erase = "n/a";
  return row;
}

Row MeasureFlash(const FlashSpec& spec, Obs* obs = nullptr) {
  SimClock clock;
  FlashDevice flash(spec, 4 * kMiB, 1, clock);
  flash.AttachObs(obs);
  Row row;
  row.name = spec.name;
  std::vector<uint8_t> buf(512);
  row.read_512 = flash.Read(0, buf).value();
  // Program 512 B into an erased area (one sector's worth or sub-sector).
  std::vector<uint8_t> data(512, 0x5A);
  const uint64_t target = spec.erase_sector_bytes;  // Sector 1, erased.
  row.write_512 = flash.Program(target, data).value();
  // Sequential read bandwidth over 64 KiB in sector-sized chunks.
  Duration seq_r = 0;
  std::vector<uint8_t> chunk(4096);
  for (uint64_t off = 0; off < 64 * kKiB; off += chunk.size()) {
    seq_r += flash.Read(off, chunk).value();
  }
  row.seq_read_mib_s = 64.0 / 1024 / (static_cast<double>(seq_r) / kSecond);
  // Sequential program bandwidth (pre-erased region).
  Duration seq_w = 0;
  uint64_t programmed = 0;
  std::vector<uint8_t> wchunk(512, 0x11);
  for (uint64_t off = 2 * spec.erase_sector_bytes; programmed < 64 * kKiB;
       off += 512, programmed += 512) {
    seq_w += flash.Program(off, wchunk).value();
  }
  row.seq_write_mib_s = 64.0 / 1024 / (static_cast<double>(seq_w) / kSecond);
  row.dollars_per_mib = spec.dollars_per_mib;
  row.mib_per_in3 = spec.mib_per_cubic_inch;
  row.active_mw_per_mib = spec.active_mw_per_mib;
  row.erase = FormatSize(spec.erase_sector_bytes) + " / " +
              FormatDuration(spec.erase_ns) + " / " +
              std::to_string(spec.endurance_cycles) + " cycles";
  return row;
}

Row MeasureDisk(const DiskSpec& spec, Obs* obs = nullptr) {
  SimClock clock;
  DiskDevice disk(spec, clock);
  disk.AttachObs(obs);
  disk.set_spin_down_after(0);
  Row row;
  row.name = spec.name;
  // Random 512 B reads across the surface: average of a deterministic sweep.
  Rng rng(7);
  Duration total = 0;
  const int kSamples = 200;
  std::vector<uint8_t> buf(512);
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t sector = rng.NextBelow(disk.num_sectors());
    total += disk.ReadSectors(sector, buf).value();
  }
  row.read_512 = total / kSamples;
  total = 0;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t sector = rng.NextBelow(disk.num_sectors());
    total += disk.WriteSectors(sector, buf).value();
  }
  row.write_512 = total / kSamples;
  // Sequential: stream 64 KiB from sector 0.
  std::vector<uint8_t> big(64 * kKiB);
  const Duration seq_r = disk.ReadSectors(0, big).value();
  row.seq_read_mib_s = 64.0 / 1024 / (static_cast<double>(seq_r) / kSecond);
  const Duration seq_w = disk.WriteSectors(0, big).value();
  row.seq_write_mib_s = 64.0 / 1024 / (static_cast<double>(seq_w) / kSecond);
  row.dollars_per_mib = spec.dollars_per_mib;
  row.mib_per_in3 = spec.mib_per_cubic_inch;
  // Power per MiB for a ~20 MB drive.
  row.active_mw_per_mib =
      spec.active_mw / (static_cast<double>(spec.capacity_bytes()) / kMiB);
  row.erase = "n/a";
  return row;
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E1: device characteristics (Section 2)",
              "Claim: DRAM > flash > disk in speed; disk < flash < DRAM in "
              "$/MB; flash lowest power.\nFlash: ~100 ns/B reads, ~10 us/B "
              "writes, sector erase, 100k cycles.");

  ObsCapture capture(argc, argv);
  std::vector<Row> rows;
  rows.push_back(MeasureDram(NecDram1993()));
  rows.push_back(MeasureFlash(IntelFlash1993(), capture.ForCell(1)));
  rows.push_back(MeasureFlash(SunDiskFlash1993(), capture.ForCell(2)));
  rows.push_back(MeasureDisk(KittyHawkDisk1993(), capture.ForCell(3)));
  rows.push_back(MeasureDisk(FujitsuDisk1993(), capture.ForCell(4)));

  Table table({"device", "512B read", "512B write", "seq read MiB/s",
               "seq write MiB/s", "$/MiB", "MiB/in^3", "mW/MiB",
               "erase (size/time/endurance)"});
  for (const Row& row : rows) {
    table.AddRow();
    table.AddCell(row.name);
    table.AddCell(FormatDuration(row.read_512));
    table.AddCell(FormatDuration(row.write_512));
    table.AddCell(row.seq_read_mib_s, 2);
    table.AddCell(row.seq_write_mib_s, 2);
    table.AddCell(row.dollars_per_mib, 0);
    table.AddCell(row.mib_per_in3, 1);
    table.AddCell(row.active_mw_per_mib, 1);
    table.AddCell(row.erase);
  }
  table.Print(std::cout);

  std::cout << "\nDerived checks:\n";
  const double flash_rw_ratio =
      static_cast<double>(rows[1].write_512) /
      static_cast<double>(rows[1].read_512);
  std::cout << "  flash write/read latency ratio (Intel): "
            << FormatDouble(flash_rw_ratio, 0)
            << "x  (paper: two orders of magnitude)\n";
  std::cout << "  disk/flash random read ratio (KittyHawk vs Intel): "
            << FormatDouble(static_cast<double>(rows[3].read_512) /
                                static_cast<double>(rows[1].read_512),
                            0)
            << "x\n";
  capture.Finish();
  return 0;
}
