// E8 — Flash bank partitioning (paper Section 3.3).
//
// Claim under test: "In order to maintain fast read access to programs and
// other data in secondary storage during the slow erase/write cycles of
// flash memory, it may prove necessary to partition flash memory into two or
// more banks."
//
// Method: a foreground reader streams random reads from the flash store
// while a background writer (the storage manager's flush path) continuously
// programs and forces cleaning erases. Sweep the bank count; report the
// foreground read latency distribution and total stall time. With one bank
// every read can stall behind a multi-millisecond erase; with several banks
// reads proceed in the banks the writer is not using.

// Each (banks, placement) configuration is a closed simulation cell; the
// seven runs execute concurrently on the parallel runner and the table
// prints in submission order, byte-identical to --jobs=1.

#include <functional>
#include <memory>

#include "bench/bench_common.h"
#include "src/ftl/flash_store.h"

namespace ssmc {
namespace {

struct BankResult {
  LatencyRecorder read_latency;
  uint64_t stall_ns = 0;
  uint64_t reads = 0;
};

// `write_burst` > 1 issues the background writes in back-to-back batches, as
// a write buffer flushing a dirty window would; queued flush programs then
// stack on the banks, which is the regime where scheduling policy matters.
// The default (1) is the original smooth-writer workload.
BankResult RunBanks(int banks, int hot_banks,
                    IoSchedPolicy policy = IoSchedPolicy::kFifo,
                    int write_burst = 1, Obs* obs = nullptr) {
  SimClock clock;
  FlashSpec spec = GenericPaperFlash();
  spec.erase_sector_bytes = 4 * kKiB;
  spec.erase_ns = 50 * kMillisecond;  // Slow erases: the problem case.
  spec.endurance_cycles = 10000000;
  FlashDevice flash(spec, 4 * kMiB, banks, clock, /*seed=*/4);
  flash.set_sched_policy(policy);
  flash.AttachObs(obs);  // Per-bank + per-class tracks (--trace).
  FlashStoreOptions options;
  options.background_writes = true;  // Writer does not advance our clock.
  options.hot_bank_count = hot_banks;
  FlashStore store(flash, options);
  store.AttachObs(obs);  // Cleaner-pass spans on the same cell.

  // Pre-fill to 70% so reads have targets and cleaning has work. The hot
  // tenth (blocks the writer overwrites) is placed as ordinary user data;
  // the read-mostly remainder carries the cold placement hint, as a file
  // system installing programs and documents would.
  std::vector<uint8_t> block(512, 1);
  const uint64_t fill_blocks = store.num_blocks() * 7 / 10;
  const uint64_t hot_blocks = fill_blocks / 10;
  for (uint64_t b = 0; b < fill_blocks; ++b) {
    (void)store.Write(b, block,
                      b < hot_blocks ? WriteStream::kUser
                                     : WriteStream::kRelocation);
  }
  // Let the fill drain, then settle with a burst of hot-set overwrites so
  // the store reaches its steady state before we measure.
  clock.Advance(5 * kMinute);
  Rng settle_rng(3);
  for (int i = 0; i < 3000; ++i) {
    (void)store.Write(settle_rng.NextBelow(hot_blocks), block);
    clock.Advance(10 * kMillisecond);
  }
  clock.Advance(5 * kMinute);
  const uint64_t stall_baseline = flash.stats().read_stall_ns.value();

  Rng rng(17);
  BankResult result;
  std::vector<uint8_t> out(512);
  // Steady load: one background flush write (5.2 ms program) per 16 reads
  // spaced 500 us apart (~8 ms of foreground time). The write stream keeps
  // ~60% of one bank's bandwidth busy — heavy but stable, so the bank count
  // determines how often a read lands behind a program or a cleaning erase.
  // Foreground reads target the read-mostly 90% (programs, documents) —
  // exactly the data the paper wants kept fast while writes churn.
  for (int i = 0; i < 300; ++i) {
    for (int w = 0; w < write_burst; ++w) {
      (void)store.Write(rng.NextBelow(hot_blocks), block);
    }
    for (int r = 0; r < 16; ++r) {
      const SimTime before = clock.now();
      (void)store.Read(hot_blocks + rng.NextBelow(fill_blocks - hot_blocks),
                       out);
      result.read_latency.Record(clock.now() - before);
      ++result.reads;
      clock.Advance(500 * kMicrosecond);  // Think time between reads.
    }
  }
  result.stall_ns = flash.stats().read_stall_ns.value() - stall_baseline;
  return result;
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E8: flash bank partitioning (Section 3.3)",
              "Claim: partitioning flash into banks keeps reads fast during "
              "slow erase/write cycles.");

  std::cout << "4 MiB store, 50 ms erases, continuous background flush "
               "writes, 4000 foreground reads.\n\n";

  Table table({"banks", "placement", "read mean", "read p50", "read p99",
               "read max", "total read stall"});
  struct Config {
    int banks;
    int hot;
  };
  const Config configs[] = {{1, 0}, {2, 0}, {4, 0}, {8, 0},
                            {2, 1}, {4, 1}, {8, 2}};
  ObsCapture capture(argc, argv);
  std::vector<std::function<BankResult()>> cells;
  for (const Config& config : configs) {
    const int cell = static_cast<int>(cells.size());
    cells.push_back([&capture, cell, config] {
      return RunBanks(config.banks, config.hot, IoSchedPolicy::kFifo,
                      /*write_burst=*/1, capture.ForCell(cell));
    });
  }
  const std::vector<BankResult> results =
      RunCellsOrdered(argc, argv, std::move(cells));
  for (size_t i = 0; i < std::size(configs); ++i) {
    const Config& config = configs[i];
    const BankResult& r = results[i];
    table.AddRow();
    table.AddCell(static_cast<int64_t>(config.banks));
    table.AddCell(config.hot == 0
                      ? std::string("round-robin")
                      : "segregated (hot=" + std::to_string(config.hot) + ")");
    table.AddCell(FormatDuration(static_cast<Duration>(r.read_latency.mean_ns())));
    table.AddCell(FormatDuration(static_cast<Duration>(r.read_latency.p50_ns())));
    table.AddCell(FormatDuration(static_cast<Duration>(r.read_latency.p99_ns())));
    table.AddCell(FormatDuration(static_cast<Duration>(r.read_latency.max_ns())));
    table.AddCell(FormatDuration(static_cast<Duration>(r.stall_ns)));
  }
  table.Print(std::cout);

  std::cout
      << "\nReading: round-robin banks dilute stalls roughly linearly; "
         "segregating the write\ntraffic into dedicated banks removes them "
         "almost entirely (reads run at the raw\ndevice latency). The "
         "2-bank segregated row shows the boundary condition: the cold\n"
         "partition must be large enough to actually hold the read-mostly "
         "data, or it spills\ninto the write banks and the benefit "
         "evaporates.\n";

  // Opt-in ablation (--tail): the same workload under the two I/O scheduling
  // policies. FIFO is the charge-latency oracle the tables above use;
  // priority mode lets foreground reads jump queued cleaner work (programs
  // and erases issued by the flash store's cleaner), which trims the read
  // tail without adding banks. Kept behind a flag so the default output
  // stays byte-comparable across runs.
  if (HasFlag(argc, argv, "--tail")) {
    std::cout << "\n--- Read tail under cleaning: FIFO vs priority "
                 "scheduling (--tail) ---\n\nSame store, but the writer "
                 "flushes in bursts of 8 (a write buffer draining a\ndirty "
                 "window), so flush programs and cleaner work stack on the "
                 "banks.\n\n";
    struct TailConfig {
      int banks;
      IoSchedPolicy policy;
    };
    const TailConfig tail_configs[] = {
        {1, IoSchedPolicy::kFifo},
        {1, IoSchedPolicy::kPriority},
        {2, IoSchedPolicy::kFifo},
        {2, IoSchedPolicy::kPriority},
        {4, IoSchedPolicy::kFifo},
        {4, IoSchedPolicy::kPriority},
    };
    std::vector<std::function<BankResult()>> tail_cells;
    for (const TailConfig& config : tail_configs) {
      // Tail cells get ids after the 7 default cells so a combined capture
      // keeps every configuration distinct.
      const int cell = static_cast<int>(std::size(configs) + tail_cells.size());
      tail_cells.push_back([&capture, cell, config] {
        return RunBanks(config.banks, /*hot_banks=*/0, config.policy,
                        /*write_burst=*/8, capture.ForCell(cell));
      });
    }
    const std::vector<BankResult> tail_results =
        RunCellsOrdered(argc, argv, std::move(tail_cells));
    Table tail_table({"banks", "scheduler", "read mean", "read p50",
                      "read p99", "read max", "total read stall"});
    for (size_t i = 0; i < std::size(tail_configs); ++i) {
      const TailConfig& config = tail_configs[i];
      const BankResult& r = tail_results[i];
      tail_table.AddRow();
      tail_table.AddCell(static_cast<int64_t>(config.banks));
      tail_table.AddCell(config.policy == IoSchedPolicy::kFifo
                             ? std::string("fifo")
                             : std::string("priority"));
      tail_table.AddCell(
          FormatDuration(static_cast<Duration>(r.read_latency.mean_ns())));
      tail_table.AddCell(
          FormatDuration(static_cast<Duration>(r.read_latency.p50_ns())));
      tail_table.AddCell(
          FormatDuration(static_cast<Duration>(r.read_latency.p99_ns())));
      tail_table.AddCell(
          FormatDuration(static_cast<Duration>(r.read_latency.max_ns())));
      tail_table.AddCell(FormatDuration(static_cast<Duration>(r.stall_ns)));
    }
    tail_table.Print(std::cout);
    std::cout
        << "\nReading: priority scheduling attacks the same tail as bank "
           "partitioning but from\nthe scheduler: a foreground read jumps "
           "cleaner programs/erases that are queued\nbut not yet in service. "
           "It cannot preempt an erase already on the die, so the\nworst "
           "case (read arrives mid-erase) is unchanged — banks cut the tail "
           "by\nphysical parallelism, priority by reordering, and they "
           "compose.\n";
  }
  capture.Finish();
  return 0;
}
