// E7 — Cleaning policy and wear leveling (paper Section 3.3).
//
// Claim under test: "in order to evenly balance the write load throughout
// flash memory, the storage manager can use garbage collection techniques
// like those used in log-structured file systems" — i.e. LFS-style cleaning
// plus wear leveling spreads erases and prolongs device life.
//
// Method: drive a flash store with a skewed overwrite workload (hot blocks
// rewritten constantly over a cold majority) across the policy cross-product
// {greedy, cost-benefit} x {none, dynamic, static}. Two tables:
//  (a) wear balance at effectively unlimited endurance: erase-count spread
//      and write amplification;
//  (b) lifetime at a reduced endurance: how many writes the device absorbs
//      before it can no longer accept data, and how many sectors died.

// Each policy-cross-product point owns its clock, device and store, so the
// 16 runs behind the three tables execute concurrently on the parallel
// runner; rows print in submission order, byte-identical to --jobs=1.

#include <functional>
#include <memory>

#include "bench/bench_common.h"
#include "src/ftl/flash_store.h"

namespace ssmc {
namespace {

FlashSpec BenchFlashSpec(uint64_t endurance) {
  FlashSpec spec = GenericPaperFlash();
  spec.erase_sector_bytes = 4 * kKiB;
  spec.erase_ns = 50 * kMillisecond;
  spec.endurance_cycles = endurance;
  return spec;
}

struct WearResult {
  double write_amp = 0;
  uint64_t erases = 0;
  double erase_stddev = 0;
  uint64_t erase_min = 0;
  uint64_t erase_max = 0;
  uint64_t wear_migrations = 0;
  uint64_t writes_survived = 0;
  uint64_t bad_sectors = 0;
};

WearResult RunPolicy(CleanerPolicy cleaner, WearPolicy wear,
                     uint64_t endurance, uint64_t max_writes,
                     bool skewed = true, Obs* obs = nullptr) {
  SimClock clock;
  FlashDevice flash(BenchFlashSpec(endurance), 2 * kMiB, 1, clock, /*seed=*/5);
  flash.AttachObs(obs);
  FlashStoreOptions options;
  options.cleaner = cleaner;
  options.wear = wear;
  options.static_wear_check_interval = 32;
  options.static_wear_delta = 16;
  FlashStore store(flash, options);
  store.AttachObs(obs);

  Rng rng(99);
  std::vector<uint8_t> block(512, 0xAB);
  // Fill once (cold data pins its sectors), then hammer a hot 5%.
  uint64_t writes = 0;
  for (uint64_t b = 0; b < store.num_blocks(); ++b) {
    if (!store.Write(b, block).ok()) {
      break;
    }
    ++writes;
  }
  const uint64_t hot_set =
      skewed ? std::max<uint64_t>(8, store.num_blocks() / 20)
             : store.num_blocks();
  while (writes < max_writes) {
    const uint64_t b = rng.NextBelow(hot_set);
    if (!store.Write(b, block).ok()) {
      break;  // Device worn out.
    }
    ++writes;
    // Advance time so cost-benefit aging has signal.
    clock.Advance(10 * kMillisecond);
  }

  WearResult result;
  result.write_amp = store.WriteAmplification();
  result.erases = store.stats().erases.value();
  const FlashDevice::WearSummary w = flash.SummarizeWear();
  result.erase_stddev = w.stddev_erases;
  result.erase_min = w.min_erases;
  result.erase_max = w.max_erases;
  result.wear_migrations = store.stats().wear_migrations.value();
  result.writes_survived = writes;
  result.bad_sectors = w.bad_sectors;
  return result;
}

std::string CleanerName(CleanerPolicy policy) {
  return policy == CleanerPolicy::kGreedy ? "greedy" : "cost-benefit";
}

std::string WearName(WearPolicy policy) {
  switch (policy) {
    case WearPolicy::kNone:
      return "none";
    case WearPolicy::kDynamic:
      return "dynamic";
    case WearPolicy::kStatic:
      return "static";
  }
  return "?";
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E7: cleaning & wear leveling (Section 3.3)",
              "Claim: LFS-style cleaning + wear leveling evenly balances the "
              "erase load and prolongs flash life.");

  const CleanerPolicy cleaners[] = {CleanerPolicy::kGreedy,
                                    CleanerPolicy::kCostBenefit};
  const WearPolicy wears[] = {WearPolicy::kNone, WearPolicy::kDynamic,
                              WearPolicy::kStatic};

  // Submit the full policy cross-product for all three tables up front.
  ObsCapture capture(argc, argv);
  std::vector<std::function<WearResult()>> cells;
  for (const CleanerPolicy cleaner : cleaners) {
    for (const WearPolicy wear : wears) {
      const int cell = static_cast<int>(cells.size());
      cells.push_back([&capture, cell, cleaner, wear] {
        return RunPolicy(cleaner, wear, 1000000, 60000, /*skewed=*/true,
                         capture.ForCell(cell));
      });
    }
  }
  for (const CleanerPolicy cleaner : cleaners) {
    for (const WearPolicy wear : wears) {
      const int cell = static_cast<int>(cells.size());
      cells.push_back([&capture, cell, cleaner, wear] {
        return RunPolicy(cleaner, wear, 300, 100000000, /*skewed=*/true,
                         capture.ForCell(cell));
      });
    }
  }
  for (const CleanerPolicy cleaner :
       {CleanerPolicy::kGreedy, CleanerPolicy::kCostBenefit}) {
    for (const WearPolicy wear : {WearPolicy::kNone, WearPolicy::kStatic}) {
      const int cell = static_cast<int>(cells.size());
      cells.push_back([&capture, cell, cleaner, wear] {
        return RunPolicy(cleaner, wear, 300, 100000000, /*skewed=*/false,
                         capture.ForCell(cell));
      });
    }
  }
  const std::vector<WearResult> results =
      RunCellsOrdered(argc, argv, std::move(cells));
  size_t cell = 0;

  std::cout << "(a) Wear balance under a skewed overwrite workload "
               "(endurance effectively unlimited, 60k writes)\n";
  Table balance({"cleaner", "leveling", "write amp", "erases",
                 "erase stddev", "min..max erases", "cold migrations"});
  for (const CleanerPolicy cleaner : cleaners) {
    for (const WearPolicy wear : wears) {
      const WearResult& r = results[cell++];
      balance.AddRow();
      balance.AddCell(CleanerName(cleaner));
      balance.AddCell(WearName(wear));
      balance.AddCell(r.write_amp, 2);
      balance.AddCell(r.erases);
      balance.AddCell(r.erase_stddev, 1);
      balance.AddCell(std::to_string(r.erase_min) + ".." +
                      std::to_string(r.erase_max));
      balance.AddCell(r.wear_migrations);
    }
  }
  balance.Print(std::cout);

  std::cout << "\n(b) Device lifetime at 300-cycle endurance (write until "
               "the store can no longer accept data)\n";
  Table life({"cleaner", "leveling", "writes survived", "x endurance-ideal",
              "bad sectors"});
  // Ideal: every sector used perfectly evenly = sectors * endurance * pages.
  for (const CleanerPolicy cleaner : cleaners) {
    for (const WearPolicy wear : wears) {
      const WearResult& r = results[cell++];
      life.AddRow();
      life.AddCell(CleanerName(cleaner));
      life.AddCell(WearName(wear));
      life.AddCell(r.writes_survived);
      const double ideal = 512.0 * 300 * 8;  // sectors * endurance * pages.
      life.AddCell(static_cast<double>(r.writes_survived) / ideal, 2);
      life.AddCell(r.bad_sectors);
    }
  }
  life.Print(std::cout);

  std::cout << "\n(c) Ablation: uniform (unskewed) overwrites — leveling "
               "should buy little here\n";
  Table uniform({"cleaner", "leveling", "writes survived",
                 "x endurance-ideal"});
  for (const CleanerPolicy cleaner :
       {CleanerPolicy::kGreedy, CleanerPolicy::kCostBenefit}) {
    for (const WearPolicy wear : {WearPolicy::kNone, WearPolicy::kStatic}) {
      const WearResult& r = results[cell++];
      uniform.AddRow();
      uniform.AddCell(CleanerName(cleaner));
      uniform.AddCell(WearName(wear));
      uniform.AddCell(r.writes_survived);
      uniform.AddCell(static_cast<double>(r.writes_survived) /
                          (512.0 * 300 * 8),
                      2);
    }
  }
  uniform.Print(std::cout);
  std::cout << "\nReading: under a skewed workload, cost-benefit cleaning + "
               "static leveling extends\ndevice life ~40%; under uniform "
               "wear the workload self-levels and the policies tie.\n";
  capture.Finish();
  return 0;
}
