// E12 — DRAM<->flash migration-policy ablation (paper Section 3.3).
//
// Claim under test: "the physical storage manager ... migrating data
// between DRAM and flash". The write buffer already migrates dirty data
// downward; this experiment asks what *upward* migration — promoting hot
// read-mostly flash blocks into a DRAM clean cache — buys on a skewed
// workload, and what it costs.
//
// Method: replay one hot/cold-skewed read-heavy trace per DRAM size under
// the three residency policies (src/storage/residency.h):
//   write-buffer-only  — dirty buffering only (the pre-E12 baseline);
//   read-promote       — heat-threshold promotion into the clean cache;
//   aggressive         — promote on second touch + cold-flush hints.
// Report foreground read latency (p50/p99), how much read traffic still
// goes to flash vs the clean cache, promotion/demotion churn, and flash
// write amplification. The promotion policies should cut flash read traffic
// and tail latency at a fixed DRAM budget, with diminishing (or negative)
// returns when DRAM is too small to hold the hot set.
//
// The 3 policies x 3 DRAM sizes matrix is 9 independent machines; all run
// concurrently through the parallel runner and print in submission order,
// byte-identical to --jobs=1. Results also land in BENCH_migration.json.

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/metrics_export.h"
#include "src/storage/residency.h"

namespace ssmc {
namespace {

constexpr uint64_t kDramSweepKib[] = {512, 1024, 4096};
constexpr ResidencyPolicy kPolicies[] = {ResidencyPolicy::kWriteBufferOnly,
                                         ResidencyPolicy::kReadPromote,
                                         ResidencyPolicy::kAggressive};

struct MigrationResult {
  double read_p50_us = 0;
  double read_p99_us = 0;
  uint64_t flash_read_bytes = 0;   // Read bytes that had to touch flash.
  uint64_t clean_hit_bytes = 0;    // Read bytes served by the clean cache.
  uint64_t buffered_read_bytes = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;          // Pressure + invalidation demotions.
  double write_amp = 0;
  double energy_mj = 0;
  uint64_t failures = 0;
};

// One machine, one policy, one DRAM size, the shared skewed trace.
MigrationResult RunCell(ResidencyPolicy policy, uint64_t dram_bytes,
                        const WorkloadOptions& workload, Obs* obs) {
  MachineConfig config;
  config.obs = obs;
  config.name = "migration";
  config.dram_bytes = dram_bytes;
  config.flash_spec = GenericPaperFlash();
  config.flash_spec.erase_sector_bytes = 8 * kKiB;
  config.flash_spec.erase_ns = 50 * kMillisecond;
  config.flash_bytes = 16 * kMiB;
  config.flash_banks = 2;
  // A fixed, deliberately small write buffer: the interesting DRAM headroom
  // is what the clean cache can claim (residency caps it at half of DRAM).
  config.fs_options.write_buffer_pages = 256;
  config.residency.policy = policy;
  MobileComputer machine(config);

  const Trace trace = WorkloadGenerator(workload).Generate();
  const ReplayReport report = machine.RunTrace(trace);
  (void)machine.fs().Sync();
  machine.SettleEnergy();

  const MemoryFileSystem::Stats& fs = machine.fs().stats();
  const ResidencyManager::Stats& res = machine.storage().residency().stats();
  MigrationResult result;
  result.read_p50_us = report.ForOp(TraceOp::kRead).p50_ns() / 1e3;
  result.read_p99_us = report.ForOp(TraceOp::kRead).p99_ns() / 1e3;
  result.flash_read_bytes = fs.flash_direct_read_bytes.value();
  result.clean_hit_bytes = fs.clean_cached_read_bytes.value();
  result.buffered_read_bytes = fs.buffered_read_bytes.value();
  result.promotions = res.promotions.value();
  result.demotions = res.demotions_pressure.value() +
                     res.demotions_invalidated.value();
  result.write_amp = machine.flash_store().WriteAmplification();
  result.energy_mj = machine.TotalEnergyNj() / 1e6;
  result.failures = report.failures;
  return result;
}

// Read-heavy with a hot set: the case upward migration exists for. The same
// seed is used for every cell, so all nine machines replay the same trace.
WorkloadOptions SkewedReadWorkload() {
  WorkloadOptions options = ReadMostlyWorkload();
  options.seed = 1212;
  options.duration = 3 * kMinute;
  options.mean_interarrival = 15 * kMillisecond;
  options.num_directories = 16;
  options.initial_files = 384;
  options.min_file_bytes = 512;
  options.max_file_bytes = 64 * 1024;
  options.hot_skew = 0.9;      // Hot set wider than the smallest cache.
  options.p_whole_file = 0.4;  // Mostly partial re-reads of hot blocks.
  options.partial_io_bytes = 1024;
  return options;
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E12: DRAM<->flash migration-policy ablation (Section 3.3)",
              "Claim: promoting hot read-mostly flash blocks into a DRAM "
              "clean cache cuts flash read traffic and read tail latency at "
              "a fixed DRAM budget.");
  // --residency=<policy> restricts the sweep to one policy (quick A/B runs;
  // the "avoided vs baseline" JSON column is then relative to that policy's
  // own first row, i.e. zero).
  std::vector<ResidencyPolicy> policies(std::begin(kPolicies),
                                        std::end(kPolicies));
  const std::string policy_flag = FlagValue(argc, argv, "--residency=");
  if (!policy_flag.empty()) {
    ResidencyPolicy one;
    if (!ParseResidencyPolicy(policy_flag, &one)) {
      std::cerr << "unknown --residency policy: " << policy_flag
                << " (want write-buffer-only | read-promote | aggressive)\n";
      return 2;
    }
    policies.assign(1, one);
  }
  const WorkloadOptions workload = SkewedReadWorkload();
  std::cout << "Skewed read-heavy replay (hot_skew=0.9), flash 16 MiB, "
               "write buffer 256 pages;\nDRAM size and residency policy "
               "swept; clean cache capped at half of DRAM.\n";

  ObsCapture capture(argc, argv);
  std::vector<std::function<MigrationResult()>> cells;
  for (const uint64_t dram_kib : kDramSweepKib) {
    for (const ResidencyPolicy policy : policies) {
      const int cell = static_cast<int>(cells.size());
      cells.push_back([&capture, cell, policy, dram_kib, workload] {
        return RunCell(policy, dram_kib * kKiB, workload,
                       capture.ForCell(cell));
      });
    }
  }
  const std::vector<MigrationResult> results =
      RunCellsOrdered(argc, argv, std::move(cells));

  std::vector<MetricsSnapshot> rows;
  size_t cell = 0;
  for (const uint64_t dram_kib : kDramSweepKib) {
    std::cout << "\nDRAM = " << FormatSize(dram_kib * kKiB) << "\n";
    Table table({"policy", "read p50 (us)", "read p99 (us)",
                 "flash reads (MiB)", "clean hits (MiB)", "promos", "demos",
                 "flash WA", "energy (mJ)", "failures"});
    const MigrationResult& base = results[cell];  // write-buffer-only row.
    for (const ResidencyPolicy policy : policies) {
      const MigrationResult& r = results[cell++];
      table.AddRow();
      table.AddCell(ResidencyPolicyName(policy));
      table.AddCell(r.read_p50_us, 1);
      table.AddCell(r.read_p99_us, 1);
      table.AddCell(static_cast<double>(r.flash_read_bytes) / kMiB, 2);
      table.AddCell(static_cast<double>(r.clean_hit_bytes) / kMiB, 2);
      table.AddCell(r.promotions);
      table.AddCell(r.demotions);
      table.AddCell(r.write_amp, 2);
      table.AddCell(r.energy_mj, 1);
      table.AddCell(r.failures);

      MetricsSnapshot row;
      row.Set("policy", MetricValue::MakeString(ResidencyPolicyName(policy)));
      row.Set("dram_kib", MetricValue::MakeInt(static_cast<int64_t>(dram_kib)));
      row.Set("read_p50_us", MetricValue::MakeDouble(r.read_p50_us));
      row.Set("read_p99_us", MetricValue::MakeDouble(r.read_p99_us));
      row.Set("flash_direct_read_bytes",
              MetricValue::MakeInt(static_cast<int64_t>(r.flash_read_bytes)));
      row.Set("clean_cached_read_bytes",
              MetricValue::MakeInt(static_cast<int64_t>(r.clean_hit_bytes)));
      row.Set("flash_read_bytes_avoided_vs_baseline",
              MetricValue::MakeInt(static_cast<int64_t>(base.flash_read_bytes) -
                                   static_cast<int64_t>(r.flash_read_bytes)));
      row.Set("promotions", MetricValue::MakeInt(
                                static_cast<int64_t>(r.promotions)));
      row.Set("demotions", MetricValue::MakeInt(
                               static_cast<int64_t>(r.demotions)));
      row.Set("write_amplification", MetricValue::MakeDouble(r.write_amp));
      row.Set("energy_mj", MetricValue::MakeDouble(r.energy_mj));
      row.Set("failures", MetricValue::MakeInt(
                              static_cast<int64_t>(r.failures)));
      rows.push_back(std::move(row));
    }
    table.Print(std::cout);
  }

  std::cout << "\nReading: at each DRAM size, read-promote serves the hot "
               "set from the clean cache —\nflash read traffic drops and "
               "read p50/p99 fall toward DRAM speed. aggressive promotes\n"
               "sooner (more churn for a similar hit rate) and routes cold "
               "flushes to the relocation\nstream. With tiny DRAM the cache "
               "cap shrinks and the benefit fades — migration only\npays "
               "when there is headroom to hold the hot set.\n";
  (void)WriteMetricsJsonArrayFile("BENCH_migration.json", rows);
  capture.Finish();
  return 0;
}
