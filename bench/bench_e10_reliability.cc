// E10 — Stability of battery-backed DRAM (paper Section 3.1).
//
// Claims under test: battery-backed DRAM "can safely hold file system data
// for much longer than in conventional configurations"; backup batteries
// cover pack swaps; but "the contents of DRAM will not survive a battery
// failure. Such failures will be relatively common in mobile computers" —
// which is why flash must hold long-lived data and why the flush policy
// bounds the exposure.
//
// Method: run an office workload and inject a total battery failure at a
// random point, for several flush-age policies and several seeds. Report
// the dirty (unflushed) bytes lost, absolute and as a share of all data
// written. Also verify the two safe paths: orderly shutdown and a battery
// swap carried by the backup, both of which lose nothing.

#include "bench/bench_common.h"

namespace ssmc {
namespace {

struct LossResult {
  uint64_t lost_bytes = 0;
  uint64_t written_bytes = 0;
  uint64_t flash_writes = 0;
};

// Replays the trace records up to `cut`, then injects battery failure.
// buffer_pages == 0 is true write-through (no exposure, maximum traffic).
LossResult RunFailure(uint64_t buffer_pages, Duration flush_age,
                      uint64_t seed, double cut_fraction,
                      Obs* obs = nullptr) {
  WorkloadOptions options = WriteHotWorkload();
  options.seed = seed;
  options.duration = 4 * kMinute;
  options.mean_interarrival = 25 * kMillisecond;
  options.initial_files = 256;
  options.hot_skew = 0.5;
  options.max_file_bytes = 64 * 1024;
  const Trace full = WorkloadGenerator(options).Generate();
  const Trace prefix = full.Prefix(static_cast<SimTime>(
      static_cast<double>(full.DurationNs()) * cut_fraction));

  MachineConfig config = NotebookConfig();
  config.fs_options.write_buffer_pages = buffer_pages;
  config.fs_options.flush_age = flush_age;
  config.obs = obs;
  MobileComputer machine(config);
  const ReplayReport report = machine.RunTrace(prefix);
  const MobileComputer::CrashReport crash = machine.InjectBatteryFailure();

  LossResult result;
  result.lost_bytes = crash.lost_dirty_bytes;
  result.written_bytes = report.bytes_written;
  result.flash_writes = machine.flash_store().stats().user_writes.value();
  return result;
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E10: battery failure and flush policy (Section 3.1)",
              "Claim: battery-backed DRAM safely buffers file data, but a "
              "total battery failure loses\nwhatever has not reached flash — "
              "the flush policy bounds the exposure.");

  const uint64_t seeds[] = {11, 22, 33, 44, 55};
  Table table({"flush policy", "avg dirty bytes lost", "max lost",
               "share of bytes written", "flash block writes"});
  struct Policy {
    std::string name;
    uint64_t buffer_pages;
    Duration age;
  };
  const Policy policies[] = {
      {"write-through (no buffer)", 0, 0},
      {"flush age 5 s", 4096, 5 * kSecond},
      {"flush age 30 s", 4096, 30 * kSecond},
      {"flush age 5 min", 4096, 5 * kMinute},
      {"never (capacity evictions only)", 4096, 365 * kDay},
  };
  // One cell per (policy, seed) pair, aggregated per policy row below.
  ObsCapture capture(argc, argv);
  std::vector<std::function<LossResult()>> cells;
  for (const Policy& policy : policies) {
    for (const uint64_t seed : seeds) {
      const int cell = static_cast<int>(cells.size());
      const uint64_t buffer_pages = policy.buffer_pages;
      const Duration age = policy.age;
      cells.push_back([&capture, cell, buffer_pages, age, seed] {
        return RunFailure(buffer_pages, age, seed, 0.7,
                          capture.ForCell(cell));
      });
    }
  }
  const std::vector<LossResult> results =
      RunCellsOrdered(argc, argv, std::move(cells));

  for (size_t p = 0; p < std::size(policies); ++p) {
    const Policy& policy = policies[p];
    uint64_t total_lost = 0;
    uint64_t max_lost = 0;
    uint64_t total_written = 0;
    uint64_t total_flash_writes = 0;
    for (size_t s = 0; s < std::size(seeds); ++s) {
      const LossResult& r = results[p * std::size(seeds) + s];
      total_lost += r.lost_bytes;
      max_lost = std::max(max_lost, r.lost_bytes);
      total_written += r.written_bytes;
      total_flash_writes += r.flash_writes;
    }
    table.AddRow();
    table.AddCell(policy.name);
    table.AddCell(FormatSize(total_lost / std::size(seeds)));
    table.AddCell(FormatSize(max_lost));
    table.AddCell(Pct(static_cast<double>(total_lost) /
                      static_cast<double>(std::max<uint64_t>(1, total_written))));
    table.AddCell(total_flash_writes / std::size(seeds));
  }
  table.Print(std::cout);
  std::cout << "\nThe flush policy trades crash exposure against flash write "
               "traffic (and thus wear):\na shorter age loses less at "
               "failure but forfeits part of the E6 write absorption.\n";

  // Crash recovery via metadata checkpointing.
  std::cout << "\nRecovery after total failure (30 s metadata checkpoints):\n";
  {
    WorkloadOptions options = OfficeWorkload();
    options.duration = 3 * kMinute;
    options.max_file_bytes = 64 * 1024;
    const Trace full = WorkloadGenerator(options).Generate();
    const Trace prefix = full.Prefix(full.DurationNs() * 7 / 10);
    MachineConfig config = NotebookConfig();
    config.checkpoint_period = 30 * kSecond;
    // Pair checkpoints with a shorter flush age: metadata recovery is only
    // as useful as the data that actually reached flash.
    config.fs_options.flush_age = 10 * kSecond;
    // Capture cell 25 (after the 5x5 failure matrix): the checkpoint /
    // crash / recovery spans land on this cell's "machine" track.
    config.obs = capture.ForCell(25);
    MobileComputer machine(config);
    (void)machine.RunTrace(prefix);
    const MobileComputer::CrashReport crash = machine.InjectBatteryFailure();
    Result<RecoveryReport> recovery = machine.RecoverAfterFailure(20000);
    if (recovery.ok()) {
      std::cout << "  lost at failure: "
                << FormatSize(crash.lost_dirty_bytes)
                << " dirty; recovered from a checkpoint "
                << FormatDuration(recovery.value().checkpoint_age)
                << " old:\n    " << recovery.value().directories_recovered
                << " directories, " << recovery.value().files_recovered
                << " files, " << FormatSize(recovery.value().bytes_recovered)
                << " of file data back from flash.\n";
    } else {
      std::cout << "  recovery failed: " << recovery.status().ToString()
                << "\n";
    }
  }

  // The safe paths.
  std::cout << "\nSafe-path checks:\n";
  {
    MobileComputer machine(NotebookConfig());
    WorkloadOptions options = OfficeWorkload();
    options.duration = kMinute;
    options.max_file_bytes = 64 * 1024;
    (void)machine.RunTrace(WorkloadGenerator(options).Generate());
    const MobileComputer::CrashReport report = machine.OrderlyShutdown();
    std::cout << "  orderly shutdown: lost " << report.lost_dirty_bytes
              << " bytes (expected 0)\n";
  }
  {
    MachineConfig config = NotebookConfig();
    config.primary_battery_mwh = 50;  // Nearly drained pack.
    MobileComputer machine(config);
    const bool swapped = machine.SwapBattery(20000);
    std::cout << "  battery swap on backup power: "
              << (swapped ? "survived, no data loss" : "FAILED") << "\n";
  }
  {
    // Idle retention: how long the batteries hold DRAM in a sleeping machine.
    MobileComputer machine(NotebookConfig());
    const double standby_mw =
        machine.dram().standby_mw() + machine.flash().standby_mw();
    std::cout << "  idle retention on a full pack at "
              << FormatDouble(standby_mw, 1) << " mW standby: "
              << FormatDuration(machine.battery().TimeRemainingAt(standby_mw))
              << " (paper: \"many days\")\n";
    Battery backup_only(0, 250, machine.clock());
    std::cout << "  retention on the lithium backup alone: "
              << FormatDuration(backup_only.TimeRemainingAt(standby_mw))
              << " (paper: \"many hours\")\n";
  }
  capture.Finish();
  return 0;
}
