// E6 — DRAM write buffer vs flash write traffic (paper Section 3.3).
//
// Claim under test: "Trace-driven simulations of networked workstations have
// shown that as little as one megabyte of battery-backed RAM can reduce
// write traffic by 40 to 50%" [Baker et al., ASPLOS'91] — applied here to
// reduce writes into flash.
//
// Method: replay the same write-intensive trace through machines whose only
// difference is the write-buffer capacity (0 = write-through baseline), and
// report the flash write traffic, the reduction vs baseline, and where the
// absorbed traffic went (overwrites absorbed in DRAM vs short-lived data
// dropped before flush). Ablation: the age-based flush threshold.

// Every (buffer size, flush age) point is an independent machine replaying
// the same trace, so the whole sweep matrix runs concurrently through the
// parallel runner; rows print in submission order, byte-identical to
// --jobs=1.

#include <functional>

#include "bench/bench_common.h"

namespace ssmc {
namespace {

struct BufferResult {
  uint64_t flash_writes = 0;
  uint64_t absorbed = 0;
  uint64_t dropped = 0;
  uint64_t puts = 0;
  double write_amp = 0;
};

BufferResult RunWithBuffer(const Trace& trace, uint64_t buffer_pages,
                           Duration flush_age, Obs* obs = nullptr) {
  MachineConfig config = NotebookConfig();
  config.fs_options.write_buffer_pages = buffer_pages;
  config.fs_options.flush_age = flush_age;
  config.obs = obs;
  MobileComputer machine(config);
  (void)machine.RunTrace(trace);
  // End-of-day sync so every run accounts its tail identically.
  (void)machine.fs().Sync();
  BufferResult result;
  result.flash_writes = machine.flash_store().stats().user_writes.value();
  result.absorbed =
      machine.fs().write_buffer().stats().absorbed_overwrites.value();
  result.dropped = machine.fs().write_buffer().stats().dropped_writes.value();
  result.puts = machine.fs().write_buffer().stats().puts.value();
  result.write_amp = machine.flash_store().WriteAmplification();
  return result;
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E6: DRAM write buffering (Section 3.3)",
              "Claim: ~1 MB of battery-backed RAM absorbs 40-50% of write "
              "traffic\n(short-lived files + quick overwrites die in DRAM).");

  // Calibrated to the Sprite-study shape the paper leans on: a write
  // working set several MiB wide per 30 s window, roughly half of all
  // written bytes dying young (overwritten or deleted), the rest long-lived
  // data that must reach flash no matter how large the buffer is.
  WorkloadOptions options;
  options.seed = 60;
  options.duration = 8 * kMinute;
  options.mean_interarrival = 45 * kMillisecond;
  options.num_directories = 32;
  options.initial_files = 768;
  options.min_file_bytes = 1024;
  options.max_file_bytes = 128 * 1024;
  options.p_read = 0.25;
  options.p_write = 0.45;
  options.p_create = 0.10;
  options.p_delete = 0.08;
  options.p_whole_file = 0.60;
  options.hot_skew = 0.4;
  options.p_short_lived = 0.40;
  options.short_lived_mean = 30 * kSecond;
  options.partial_io_bytes = 2048;
  const Trace trace = WorkloadGenerator(options).Generate();
  std::cout << "Workload: " << trace.size() << " ops, "
            << FormatSize(trace.TotalBytesWritten()) << " logically written "
            << "over " << FormatDuration(trace.DurationNs()) << "\n\n";

  // The whole matrix — baseline, size sweep, flush-age ablation — as
  // independent cells. Cell 0 is the baseline; the reduction columns are
  // computed against it after all cells complete.
  const uint64_t sweep_kib[] = {0, 64, 128, 256, 512, 1024, 2048, 4096};
  const Duration ablation_ages[] = {5 * kSecond, 15 * kSecond, 30 * kSecond,
                                    60 * kSecond, 5 * kMinute};
  ObsCapture capture(argc, argv);
  std::vector<std::function<BufferResult()>> cells;
  cells.push_back([&trace, &capture] {
    return RunWithBuffer(trace, 0, 30 * kSecond, capture.ForCell(0));
  });
  for (const uint64_t kib : sweep_kib) {
    const int cell = static_cast<int>(cells.size());
    cells.push_back([&trace, &capture, cell, kib] {
      return RunWithBuffer(trace, kib * 1024 / 512, 30 * kSecond,
                           capture.ForCell(cell));
    });
  }
  for (const Duration age : ablation_ages) {
    const int cell = static_cast<int>(cells.size());
    cells.push_back([&trace, &capture, cell, age] {
      return RunWithBuffer(trace, 2048, age, capture.ForCell(cell));
    });
  }

  const std::vector<BufferResult> results =
      RunCellsOrdered(argc, argv, std::move(cells));

  const BufferResult& baseline = results[0];
  std::cout << "Write-through baseline: " << baseline.flash_writes
            << " flash block writes ("
            << FormatSize(baseline.flash_writes * 512) << ")\n\n";

  Table table({"buffer size", "flash writes", "flash bytes", "reduction",
               "absorbed overwrites", "dropped (dead) blocks", "flash WA"});
  for (size_t i = 0; i < std::size(sweep_kib); ++i) {
    const uint64_t kib = sweep_kib[i];
    const BufferResult& r = results[1 + i];
    const double reduction =
        1.0 - static_cast<double>(r.flash_writes) /
                  static_cast<double>(baseline.flash_writes);
    table.AddRow();
    table.AddCell(kib == 0 ? std::string("none (write-through)")
                           : FormatSize(kib * 1024));
    table.AddCell(r.flash_writes);
    table.AddCell(FormatSize(r.flash_writes * 512));
    table.AddCell(kib == 0 ? std::string("-") : Pct(reduction));
    table.AddCell(r.absorbed);
    table.AddCell(r.dropped);
    table.AddCell(r.write_amp, 2);
  }
  table.Print(std::cout);

  std::cout << "\nAblation: flush-age threshold at a fixed 1 MiB buffer\n";
  Table ablation({"flush age", "flash writes", "reduction vs baseline"});
  for (size_t i = 0; i < std::size(ablation_ages); ++i) {
    const BufferResult& r = results[1 + std::size(sweep_kib) + i];
    ablation.AddRow();
    ablation.AddCell(FormatDuration(ablation_ages[i]));
    ablation.AddCell(r.flash_writes);
    ablation.AddCell(Pct(1.0 - static_cast<double>(r.flash_writes) /
                                   static_cast<double>(baseline.flash_writes)));
  }
  ablation.Print(std::cout);
  capture.Finish();
  return 0;
}
