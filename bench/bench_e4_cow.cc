// E4 — Copy-on-write mapped files (paper Section 3.1).
//
// Claim under test: "files in flash memory can be mapped directly into the
// address spaces of interested processes without having to make a copy in
// primary storage. These techniques save both the storage needed for
// duplicate copies and the time needed to perform the copies. Copy-on-write
// techniques can be used to postpone the complications brought on by the
// erase/write behavior of flash memory until application-level writes
// actually take place."
//
// Method: install N read-mostly files in flash; a process maps all of them
// and reads them fully; then writes touch a small fraction of pages. Compare
// eager copy-in (conventional mapped files over a copy) with in-place
// copy-on-write mapping: setup time, DRAM pages consumed, read time, and
// end-to-end total, as the write fraction varies.

#include "bench/bench_common.h"
#include "src/vm/address_space.h"

namespace ssmc {
namespace {

constexpr int kFiles = 16;
constexpr uint64_t kFileBytes = 64 * kKiB;
constexpr uint64_t kMapBase = uint64_t{1} << 33;

struct CowResult {
  Duration setup = 0;
  Duration read_all = 0;
  Duration write_frac = 0;
  uint64_t dram_pages = 0;
};

CowResult RunScenario(bool eager_copy, double write_fraction,
                      Obs* obs = nullptr) {
  MachineConfig config = NotebookConfig();
  config.obs = obs;
  MobileComputer machine(config);
  MemoryFileSystem& fs = machine.fs();
  // Install the files and let the background writes drain.
  for (int i = 0; i < kFiles; ++i) {
    const std::string path = "/doc" + std::to_string(i);
    (void)fs.Create(path);
    std::vector<uint8_t> data(kFileBytes, static_cast<uint8_t>(i));
    (void)fs.Write(path, 0, data);
  }
  (void)fs.Sync();
  machine.Idle(30 * kSecond);

  AddressSpace& space = machine.CreateAddressSpace();
  CowResult result;

  SimTime t0 = machine.clock().now();
  for (int i = 0; i < kFiles; ++i) {
    const uint64_t va = kMapBase + static_cast<uint64_t>(i) * (kFileBytes * 2);
    (void)space.MapFileCow(va, fs, "/doc" + std::to_string(i), true);
    if (eager_copy) {
      (void)space.Populate(va);
    }
  }
  result.setup = machine.clock().now() - t0;

  // Read every page of every mapping.
  t0 = machine.clock().now();
  std::vector<uint8_t> sink(512);
  for (int i = 0; i < kFiles; ++i) {
    const uint64_t va = kMapBase + static_cast<uint64_t>(i) * (kFileBytes * 2);
    for (uint64_t off = 0; off < kFileBytes; off += 512) {
      (void)space.Read(va + off, sink);
    }
  }
  result.read_all = machine.clock().now() - t0;

  // Write the first `write_fraction` of pages in each file.
  t0 = machine.clock().now();
  std::vector<uint8_t> patch(64, 0xEE);
  const uint64_t pages = kFileBytes / 512;
  const uint64_t dirty_pages = static_cast<uint64_t>(
      static_cast<double>(pages) * write_fraction);
  for (int i = 0; i < kFiles; ++i) {
    const uint64_t va = kMapBase + static_cast<uint64_t>(i) * (kFileBytes * 2);
    for (uint64_t p = 0; p < dirty_pages; ++p) {
      (void)space.Write(va + p * 512, patch);
    }
  }
  result.write_frac = machine.clock().now() - t0;
  result.dram_pages = space.resident_dram_pages();
  return result;
}

}  // namespace
}  // namespace ssmc

int main(int argc, char** argv) {
  using namespace ssmc;
  PrintHeader("E4: copy-on-write mapped files (Section 3.1)",
              "Claim: mapping flash files in place avoids duplicate copies "
              "and copy time;\nCOW defers flash complications until writes "
              "actually happen.");

  std::cout << kFiles << " files x " << FormatSize(kFileBytes)
            << " mapped; whole-file reads; write fraction varies.\n\n";

  // One cell per (write fraction, strategy) pair, in table order.
  const std::vector<double> fracs = {0.0, 0.05, 0.25, 1.0};
  ObsCapture capture(argc, argv);
  std::vector<std::function<CowResult()>> cells;
  for (size_t f = 0; f < fracs.size(); ++f) {
    for (const bool eager : {true, false}) {
      const int cell = static_cast<int>(cells.size());
      const double frac = fracs[f];
      cells.push_back([&capture, cell, eager, frac] {
        return RunScenario(eager, frac, capture.ForCell(cell));
      });
    }
  }
  const std::vector<CowResult> results =
      RunCellsOrdered(argc, argv, std::move(cells));

  Table table({"strategy", "write frac", "map+setup", "read all",
               "write time", "total", "DRAM pages", "DRAM bytes"});
  for (size_t f = 0; f < fracs.size(); ++f) {
    for (const bool eager : {true, false}) {
      const CowResult& r = results[f * 2 + (eager ? 0 : 1)];
      table.AddRow();
      table.AddCell(eager ? "eager copy-in" : "cow map in place");
      table.AddCell(Pct(fracs[f]));
      table.AddCell(FormatDuration(r.setup));
      table.AddCell(FormatDuration(r.read_all));
      table.AddCell(FormatDuration(r.write_frac));
      table.AddCell(FormatDuration(r.setup + r.read_all + r.write_frac));
      table.AddCell(r.dram_pages);
      table.AddCell(FormatSize(r.dram_pages * 512));
    }
  }
  table.Print(std::cout);

  // Cells 2 and 3 are the 5%-fraction pair; scenarios are deterministic, so
  // reusing them matches a re-run byte for byte.
  const CowResult& eager = results[2];
  const CowResult& cow = results[3];
  std::cout << "\nAt a 5% write fraction, COW mapping uses "
            << FormatDouble(100.0 * static_cast<double>(cow.dram_pages) /
                                static_cast<double>(eager.dram_pages),
                            1)
            << "% of the eager strategy's DRAM and sets up "
            << FormatDouble(static_cast<double>(eager.setup) /
                                std::max<Duration>(1, cow.setup),
                            0)
            << "x faster.\n";
  capture.Finish();
  return 0;
}
