// Trace statistics tool: quantifies a workload's distributional shape and
// checks it against the published facts the paper's argument relies on
// (Ousterhout et al. 1985 [8], Baker et al. 1991 [3]):
//   * most files are small;
//   * most access is whole-file and sequential;
//   * a large share of newly written bytes dies young (deleted or
//     overwritten within ~30 seconds);
//   * access frequency is heavily skewed.
//
//   $ ./examples/trace_stats [profile]     # office | write-hot | read-mostly
//   $ ./examples/trace_stats /path/to.trace
//
// This is the calibration evidence behind DESIGN.md's trace substitution.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <unordered_map>

#include "src/support/table.h"
#include "src/trace/generator.h"

namespace {

using namespace ssmc;

void Analyze(const Trace& trace, Duration young = 30 * kSecond) {
  std::cout << "records: " << trace.size() << ", span "
            << FormatDuration(trace.DurationNs()) << ", "
            << FormatSize(trace.TotalBytesWritten()) << " written, "
            << FormatSize(trace.TotalBytesRead()) << " read\n\n";

  // File size distribution (size at each file's largest extent).
  std::unordered_map<std::string, uint64_t> sizes;
  std::unordered_map<std::string, uint64_t> ever_sizes;
  // Per (path, block) last write time, to classify overwrite deaths.
  std::map<std::pair<std::string, uint64_t>, SimTime> last_write;
  uint64_t written_bytes = 0;
  uint64_t young_bytes = 0;  // Died by overwrite or delete within `young`.
  uint64_t whole_file_ops = 0;
  uint64_t rw_ops = 0;
  std::unordered_map<std::string, uint64_t> touches;

  for (const TraceRecord& r : trace.records()) {
    switch (r.op) {
      case TraceOp::kWrite: {
        sizes[r.path] = std::max(sizes[r.path], r.offset + r.length);
        ever_sizes[r.path] = std::max(ever_sizes[r.path], sizes[r.path]);
        touches[r.path] += 1;
        ++rw_ops;
        if (r.offset == 0 && r.length == sizes[r.path]) {
          ++whole_file_ops;
        }
        written_bytes += r.length;
        for (uint64_t b = r.offset / 512;
             b <= (r.offset + r.length - 1) / 512; ++b) {
          auto key = std::make_pair(r.path, b);
          auto it = last_write.find(key);
          if (it != last_write.end() && r.at - it->second <= young) {
            young_bytes += 512;  // Overwritten while young.
          }
          last_write[key] = r.at;
        }
        break;
      }
      case TraceOp::kRead:
        touches[r.path] += 1;
        ++rw_ops;
        if (r.offset == 0 && r.length >= sizes[r.path]) {
          ++whole_file_ops;
        }
        break;
      case TraceOp::kUnlink: {
        // Blocks of this file written recently die young.
        const uint64_t blocks = sizes[r.path] / 512 + 1;
        for (uint64_t b = 0; b < blocks; ++b) {
          auto it = last_write.find(std::make_pair(r.path, b));
          if (it != last_write.end()) {
            if (r.at - it->second <= young) {
              young_bytes += 512;
            }
            last_write.erase(it);
          }
        }
        sizes.erase(r.path);
        break;
      }
      default:
        break;
    }
  }

  // Size buckets.
  std::map<uint64_t, int> size_hist;  // upper bound -> count
  for (const auto& [path, size] : ever_sizes) {
    uint64_t bucket = 1024;
    while (bucket < size) {
      bucket *= 4;
    }
    size_hist[bucket] += 1;
  }
  Table sizes_table({"file size <=", "files", "share"});
  int total_files = 0;
  for (const auto& [bucket, count] : size_hist) {
    total_files += count;
  }
  int cumulative = 0;
  for (const auto& [bucket, count] : size_hist) {
    cumulative += count;
    sizes_table.AddRow();
    sizes_table.AddCell(FormatSize(bucket));
    sizes_table.AddCell(static_cast<int64_t>(count));
    sizes_table.AddCell(FormatDouble(100.0 * cumulative / total_files, 0) +
                        "% cum");
  }
  sizes_table.Print(std::cout);

  // Touch skew: share of accesses landing on the hottest 10% of files.
  std::vector<uint64_t> touch_counts;
  uint64_t total_touches = 0;
  for (const auto& [path, count] : touches) {
    touch_counts.push_back(count);
    total_touches += count;
  }
  std::sort(touch_counts.rbegin(), touch_counts.rend());
  uint64_t hot_touches = 0;
  const size_t hot_n = std::max<size_t>(1, touch_counts.size() / 10);
  for (size_t i = 0; i < hot_n && i < touch_counts.size(); ++i) {
    hot_touches += touch_counts[i];
  }

  std::cout << "\nworkload shape (paper-cited facts in brackets):\n";
  std::cout << "  whole-file sequential ops: "
            << FormatDouble(100.0 * static_cast<double>(whole_file_ops) /
                                static_cast<double>(std::max<uint64_t>(1, rw_ops)),
                            0)
            << "%   [most bytes move in whole-file transfers]\n";
  std::cout << "  written bytes dying within "
            << FormatDuration(young) << ": "
            << FormatDouble(std::min(100.0,
                                100.0 * static_cast<double>(young_bytes) /
                                    static_cast<double>(
                                        std::max<uint64_t>(1, written_bytes))),
                            0)
            << "%   [a large share of new data dies young]\n";
  std::cout << "  accesses to the hottest 10% of files: "
            << FormatDouble(100.0 * static_cast<double>(hot_touches) /
                                static_cast<double>(
                                    std::max<uint64_t>(1, total_touches)),
                            0)
            << "%   [access frequency is heavily skewed]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssmc;
  const std::string arg = argc > 1 ? argv[1] : "office";

  Trace trace;
  if (arg == "office" || arg == "write-hot" || arg == "read-mostly") {
    WorkloadOptions options = arg == "office"      ? OfficeWorkload()
                              : arg == "write-hot" ? WriteHotWorkload()
                                                   : ReadMostlyWorkload();
    options.duration = 5 * kMinute;
    std::cout << "profile: " << arg << "\n";
    trace = WorkloadGenerator(options).Generate();
  } else {
    std::ifstream in(arg);
    if (!in) {
      std::cerr << "cannot open " << arg << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<Trace> parsed = Trace::FromText(buffer.str());
    if (!parsed.ok()) {
      std::cerr << parsed.status().ToString() << "\n";
      return 1;
    }
    trace = std::move(parsed).value();
    std::cout << "trace file: " << arg << "\n";
  }
  Analyze(trace);
  return 0;
}
