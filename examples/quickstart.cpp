// Quickstart: build a solid-state mobile computer, use its file system, and
// look at what the storage stack did.
//
//   $ ./examples/quickstart
//
// Walks through the core API: MobileComputer construction from a preset,
// file operations at DRAM speed, explicit sync to flash, direct-from-flash
// reads, and the stats every layer keeps.

#include <iostream>
#include <numeric>
#include <vector>

#include "src/core/machine.h"

int main() {
  using namespace ssmc;

  // A diskless notebook: 16 MiB battery-backed DRAM + 32 MiB flash in 4
  // banks, 2 MiB of the DRAM serving as the write buffer.
  MobileComputer machine(NotebookConfig());
  MemoryFileSystem& fs = machine.fs();

  std::cout << "Machine: " << machine.config().name << " — "
            << FormatSize(machine.dram().capacity_bytes()) << " DRAM + "
            << FormatSize(machine.flash().capacity_bytes()) << " flash ("
            << machine.flash().num_banks() << " banks)\n\n";

  // 1. Create a file and write to it. Writes land in the DRAM write buffer:
  //    no flash program happens yet.
  if (Status s = fs.Mkdir("/notes"); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  (void)fs.Create("/notes/todo.txt");
  std::vector<uint8_t> text(2000);
  std::iota(text.begin(), text.end(), 0);
  (void)fs.Write("/notes/todo.txt", 0, text);

  std::cout << "After writing 2000 bytes:\n";
  std::cout << "  dirty blocks in DRAM buffer: "
            << fs.write_buffer().dirty_pages() << "\n";
  std::cout << "  flash programs so far:       "
            << machine.flash().stats().programs.value() << "\n";
  std::cout << "  simulated time elapsed:      "
            << FormatDuration(machine.clock().now()) << "\n\n";

  // 2. Sync: the dirty blocks flush to the log-structured flash store.
  (void)fs.Sync();
  std::cout << "After sync:\n";
  std::cout << "  dirty blocks:    " << fs.write_buffer().dirty_pages() << "\n";
  std::cout << "  flash programs:  " << machine.flash().stats().programs.value()
            << "\n\n";

  // 3. Read it back: clean data is served directly from flash, at byte
  //    granularity — there is no buffer cache to copy through.
  std::vector<uint8_t> readback(100);
  (void)fs.Read("/notes/todo.txt", 500, readback);
  std::cout << "Read 100 bytes at offset 500: first byte = "
            << static_cast<int>(readback[0]) << " (expected "
            << static_cast<int>(text[500]) << ")\n";
  std::cout << "  bytes served straight from flash: "
            << fs.stats().flash_direct_read_bytes.value() << "\n\n";

  // 4. Short-lived data never costs a flash write.
  (void)fs.Create("/notes/scratch.tmp");
  (void)fs.Write("/notes/scratch.tmp", 0, text);
  (void)fs.Unlink("/notes/scratch.tmp");
  (void)fs.Sync();
  std::cout << "Scratch file written and deleted before flush:\n";
  std::cout << "  write traffic avoided: "
            << FormatSize(fs.write_buffer().stats().dropped_bytes.value())
            << "\n\n";

  // 5. Let the machine idle; settle energy into the battery.
  machine.Idle(kMinute);
  machine.SettleEnergy();
  std::cout << "After a minute of idle:\n";
  std::cout << "  energy consumed: " << FormatEnergy(machine.TotalEnergyNj())
            << "\n";
  std::cout << "  battery remaining: "
            << FormatDouble(machine.battery().primary_fraction() * 100, 2)
            << "%\n";
  return 0;
}
