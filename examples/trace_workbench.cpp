// Trace workbench: generate a synthetic workload, save it as a text trace,
// reload it, and replay it against both storage organizations — the
// solid-state machine and the conventional disk machine.
//
//   $ ./examples/trace_workbench [trace-file]
//
// Demonstrates the record/replay tooling: traces are deterministic,
// serializable, and portable across file-system implementations.

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/core/machine.h"
#include "src/device/disk_device.h"
#include "src/fs/disk_fs.h"
#include "src/support/table.h"
#include "src/trace/generator.h"
#include "src/trace/replayer.h"

int main(int argc, char** argv) {
  using namespace ssmc;
  const std::string path = argc > 1 ? argv[1] : "/tmp/ssmc_office.trace";

  // 1. Generate a deterministic office workload.
  WorkloadOptions options = OfficeWorkload();
  options.duration = 2 * kMinute;
  options.max_file_bytes = 64 * 1024;
  const Trace trace = WorkloadGenerator(options).Generate();
  std::cout << "Generated " << trace.size() << " operations ("
            << FormatSize(trace.TotalBytesWritten()) << " written, "
            << FormatSize(trace.TotalBytesRead()) << " read)\n";

  // 2. Save and reload as text.
  {
    std::ofstream out(path);
    out << trace.ToText();
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<Trace> reloaded = Trace::FromText(buffer.str());
  if (!reloaded.ok()) {
    std::cerr << "reload failed: " << reloaded.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Round-tripped through " << path << ": "
            << reloaded.value().size() << " records\n\n";

  // 3. Replay on the solid-state machine.
  MobileComputer machine(NotebookConfig());
  const ReplayReport ssd = machine.RunTrace(reloaded.value());

  // 4. Replay on the conventional disk machine.
  SimClock disk_clock;
  DiskDevice disk(FujitsuDisk1993(), disk_clock);
  disk.set_spin_down_after(0);
  DiskFileSystem disk_fs(disk, DiskFsOptions{});
  TraceReplayer disk_replayer(disk_fs, disk_clock);
  const ReplayReport hdd = disk_replayer.Replay(reloaded.value());

  Table table({"machine", "ops", "failures", "mean op", "p99 op",
               "device busy"});
  auto add = [&](const std::string& name, const ReplayReport& report) {
    table.AddRow();
    table.AddCell(name);
    table.AddCell(report.ops);
    table.AddCell(report.failures);
    table.AddCell(
        FormatDuration(static_cast<Duration>(report.all_ops.mean_ns())));
    table.AddCell(
        FormatDuration(static_cast<Duration>(report.all_ops.p99_ns())));
    table.AddCell(FormatDuration(report.all_ops.total_ns()));
  };
  add("solid-state (DRAM+flash)", ssd);
  add("conventional (disk)", hdd);
  table.Print(std::cout);

  std::cout << "\nSame trace, same semantics, two storage organizations — "
               "the speedup is the paper's thesis.\n";
  return 0;
}
