// Execute-in-place on an OmniBook-class machine: install a few bundled
// applications into flash and launch them, comparing XIP against the
// conventional copy-into-DRAM load (paper Section 3.2).
//
//   $ ./examples/xip_launcher

#include <iostream>
#include <vector>

#include "src/core/machine.h"
#include "src/support/table.h"
#include "src/vm/loader.h"

int main() {
  using namespace ssmc;

  MobileComputer machine(OmniBookConfig());
  (void)machine.fs().Mkdir("/rom");

  struct App {
    const char* name;
    uint64_t text_kib;
    uint64_t data_kib;
  };
  const App apps[] = {
      {"word", 384, 64},
      {"sheet", 256, 96},
      {"organizer", 128, 32},
  };

  // Install the bundled software (as shipped on the flash card).
  for (const App& app : apps) {
    Program program;
    program.path = std::string("/rom/") + app.name;
    program.text_bytes = app.text_kib * kKiB;
    program.data_bytes = app.data_kib * kKiB;
    if (Status s = InstallProgram(machine.fs(), program); !s.ok()) {
      std::cerr << "install failed: " << s.ToString() << "\n";
      return 1;
    }
  }
  machine.Idle(5 * kMinute);  // Background installation writes drain.

  std::cout << "Installed " << std::size(apps)
            << " applications into flash; free DRAM pages: "
            << machine.storage().free_dram_pages() << "\n\n";

  ProgramLoader loader;
  Table table({"app", "strategy", "launch", "code DRAM", "first run"});
  for (const App& app : apps) {
    Program program;
    program.path = std::string("/rom/") + app.name;
    program.text_bytes = app.text_kib * kKiB;
    program.data_bytes = app.data_kib * kKiB;
    for (const LaunchStrategy strategy :
         {LaunchStrategy::kExecuteInPlace, LaunchStrategy::kCopyFromFlash}) {
      AddressSpace& space = machine.CreateAddressSpace();
      Result<LaunchResult> launch =
          loader.Launch(space, machine.fs(), program, strategy);
      if (!launch.ok()) {
        std::cerr << "launch failed: " << launch.status().ToString() << "\n";
        return 1;
      }
      Result<Duration> run = loader.Execute(space, launch.value(), 1);
      table.AddRow();
      table.AddCell(app.name);
      table.AddCell(std::string(LaunchStrategyName(strategy)));
      table.AddCell(FormatDuration(launch.value().launch_latency));
      table.AddCell(FormatSize(launch.value().dram_pages_after_launch * 512));
      table.AddCell(FormatDuration(run.value()));
      // Release the space's DRAM before the next run.
      (void)space.Unmap(launch.value().text_va);
      (void)space.Unmap(launch.value().stack_va);
      if (program.data_bytes > 0) {
        (void)space.Unmap(launch.value().data_va);
      }
    }
  }
  table.Print(std::cout);

  std::cout << "\nXIP launches instantly and leaves DRAM for data — the "
               "OmniBook shipped its bundled\nsoftware exactly this way "
               "(paper Section 3.2, ref [12]).\n";
  return 0;
}
