// The single-level store in action: every file is just memory at a stable
// 64-bit address — the paper's core abstraction (Sections 1 and 3).
//
//   $ ./examples/single_level_tour

#include <iostream>
#include <vector>

#include "src/core/machine.h"
#include "src/core/single_level_store.h"

int main() {
  using namespace ssmc;
  MobileComputer machine(NotebookConfig());
  MemoryFileSystem& fs = machine.fs();
  SingleLevelStore store(machine.storage(), fs);

  // Ship a reference document and a database on the machine.
  (void)fs.Create("/manual");
  std::vector<uint8_t> manual(48 * 1024);
  for (size_t i = 0; i < manual.size(); ++i) {
    manual[i] = static_cast<uint8_t>('A' + i % 26);
  }
  (void)fs.Write("/manual", 0, manual);
  (void)fs.Create("/addressbook");
  (void)fs.Write("/addressbook", 0, std::vector<uint8_t>(8 * 1024, 0));
  (void)fs.Sync();
  machine.Idle(kMinute);

  // Attach both into the one 64-bit space.
  const uint64_t manual_va = store.Attach("/manual").value();
  const uint64_t book_va = store.AttachWritable("/addressbook").value();
  std::cout << "/manual      @ 0x" << std::hex << manual_va << "\n";
  std::cout << "/addressbook @ 0x" << book_va << std::dec << "\n\n";

  // Reading the manual is a plain load: served in place from flash, no
  // buffer cache, no copies, no DRAM consumed.
  std::vector<uint8_t> line(26);
  (void)store.Load(manual_va + 1040, line);
  std::cout << "manual[1040..1066): ";
  for (uint8_t c : line) {
    std::cout << static_cast<char>(c);
  }
  std::cout << "\nDRAM pages used by the mapping: "
            << store.space().resident_dram_pages() << "\n\n";

  // Updating the address book is a plain store: it lands in the write
  // buffer and becomes durable under the machine's flush policy.
  struct Contact {
    char name[24];
    char phone[8];
  };
  Contact contact = {"Ramon Caceres", "x1993"};
  (void)store.Store(book_va + 0 * sizeof(Contact),
                    std::span<const uint8_t>(
                        reinterpret_cast<const uint8_t*>(&contact),
                        sizeof(contact)));
  machine.Idle(2 * kMinute);  // Flush daemon persists it.

  // The same bytes are visible through the classic file API...
  std::vector<uint8_t> raw(sizeof(Contact));
  (void)fs.Read("/addressbook", 0, raw);
  std::cout << "file sees: "
            << reinterpret_cast<const Contact*>(raw.data())->name << " / "
            << reinterpret_cast<const Contact*>(raw.data())->phone << "\n";
  // ...and the store write reached flash via the flush daemon.
  std::cout << "flash programs so far: "
            << machine.flash().stats().programs.value() << "\n";

  // Reverse-resolving an address tells you what memory *is*.
  auto hit = store.Resolve(manual_va + 1040);
  std::cout << "0x" << std::hex << manual_va + 1040 << std::dec << " = "
            << hit.value().first << " + " << hit.value().second << "\n";
  return 0;
}
