// A day in the life of a 1993 personal information manager (Sharp Wizard /
// Casio Boss class device, per the paper's Section 2 examples): an address
// book and a notes application on a tiny solid-state machine, with a
// mid-day battery swap and an end-of-day accounting of flash wear, energy,
// and data safety.
//
//   $ ./examples/pim_organizer

#include <iostream>
#include <string>
#include <vector>

#include "src/core/machine.h"

namespace {

using namespace ssmc;

// Appends one fixed-size record to a flat-file database.
void AppendRecord(MemoryFileSystem& fs, const std::string& path,
                  uint64_t record_bytes, uint8_t fill) {
  Result<FileInfo> info = fs.Stat(path);
  const uint64_t at = info.ok() ? info.value().size : 0;
  std::vector<uint8_t> record(record_bytes, fill);
  (void)fs.Write(path, at, record);
}

}  // namespace

int main() {
  using namespace ssmc;

  MobileComputer pda(PdaConfig());
  MemoryFileSystem& fs = pda.fs();
  std::cout << "PDA: " << FormatSize(pda.dram().capacity_bytes())
            << " DRAM, " << FormatSize(pda.flash().capacity_bytes())
            << " flash, "
            << FormatDouble(pda.battery().primary_remaining_mwh(), 0)
            << " mWh battery\n\n";

  (void)fs.Mkdir("/db");
  (void)fs.Create("/db/contacts");
  (void)fs.Create("/db/calendar");
  (void)fs.Mkdir("/notes");

  Rng rng(77);
  int notes = 0;
  int contacts = 0;
  int appointments = 0;

  // 12 hours of intermittent use: bursts of activity separated by long
  // idle stretches (the machine spends most of the day asleep).
  for (int hour = 0; hour < 12; ++hour) {
    const int interactions = static_cast<int>(rng.NextInRange(2, 8));
    for (int i = 0; i < interactions; ++i) {
      const double u = rng.NextDouble();
      if (u < 0.35) {
        AppendRecord(fs, "/db/contacts", 128,
                     static_cast<uint8_t>(++contacts));
      } else if (u < 0.70) {
        AppendRecord(fs, "/db/calendar", 64,
                     static_cast<uint8_t>(++appointments));
      } else {
        const std::string path = "/notes/note" + std::to_string(++notes);
        (void)fs.Create(path);
        std::vector<uint8_t> body(
            static_cast<size_t>(rng.NextInRange(200, 3000)),
            static_cast<uint8_t>(notes));
        (void)fs.Write(path, 0, body);
      }
      pda.Idle(static_cast<Duration>(rng.NextInRange(5, 90)) * kSecond);
    }
    pda.Idle(kHour);  // The rest of the hour: asleep, DRAM retained.
    if (!pda.SettleEnergy()) {
      std::cout << "battery died at hour " << hour << "!\n";
      return 1;
    }

    // Lunchtime: the user swaps in a fresh battery pack; the lithium
    // backup carries the DRAM through the swap.
    if (hour == 5) {
      const bool ok = pda.SwapBattery(3000);
      std::cout << "hour 6: battery swap "
                << (ok ? "succeeded (no data lost)" : "FAILED") << "\n";
    }
  }

  // End of day: power down cleanly.
  const MobileComputer::CrashReport shutdown = pda.OrderlyShutdown();

  std::cout << "\nEnd of day\n";
  std::cout << "  contacts: " << contacts << ", appointments: "
            << appointments << ", notes: " << notes << "\n";
  Result<FileInfo> contacts_info = fs.Stat("/db/contacts");
  std::cout << "  /db/contacts size: "
            << FormatSize(contacts_info.value().size) << "\n";
  std::cout << "  flash programs: " << pda.flash().stats().programs.value()
            << " (" << FormatSize(pda.flash().stats().programmed_bytes.value())
            << ")\n";
  std::cout << "  logical writes absorbed in DRAM: "
            << pda.fs().write_buffer().stats().absorbed_overwrites.value()
            << "\n";
  const FlashDevice::WearSummary wear = pda.flash().SummarizeWear();
  std::cout << "  flash wear: mean " << FormatDouble(wear.mean_erases, 2)
            << " erases/sector, max " << wear.max_erases << "\n";
  std::cout << "  energy used: " << FormatEnergy(pda.TotalEnergyNj()) << "\n";
  std::cout << "  battery remaining: "
            << FormatDouble(pda.battery().primary_fraction() * 100, 1)
            << "%\n";
  std::cout << "  data lost at shutdown: " << shutdown.lost_dirty_bytes
            << " bytes\n";
  return 0;
}
