#!/usr/bin/env bash
# Regenerates the experiment artifacts after a change that may move numbers:
# rebuilds the release preset, runs every experiment bench (E1-E12, E14,
# E16) plus the microbenchmarks, and refreshes the machine-readable result
# files (BENCH_micro.json, BENCH_scaleout.json, BENCH_migration.json,
# BENCH_qos.json, BENCH_nvm.json) at the repository root. BENCH_micro.json and
# BENCH_scaleout.json double as the benchmark regression baselines: CI's
# bench-smoke leg re-measures BM_SimCoreReplay,
# BM_LargeStoreRandOverwrite/65536, BM_CleaningRelocation, and the
# million-user scale-out row (sim_ops_per_host_s, bytes_per_user) and fails
# if any regresses >15% against the committed numbers
# (scripts/bench_gate.py), so rerun this script and commit the refreshed
# JSON when a change is meant to move simulator throughput or fleet
# footprint.
#
#   scripts/regen_experiments.sh             # everything
#   scripts/regen_experiments.sh --no-micro  # skip bench_micro/e11 (fast)
#
# Per-bench console output lands in experiments_out/<bench>.txt so a diff
# against the previous run shows exactly which tables moved; EXPERIMENTS.md
# quotes those tables, so any diff here means EXPERIMENTS.md needs a matching
# prose update (the numbers are deterministic — an unchanged simulator
# reproduces them byte-for-byte). The E8 FIFO-vs-priority scheduling ablation
# (opt-in: bench_e8_banks --tail) is captured alongside the default output.
set -euo pipefail
cd "$(dirname "$0")/.."

run_micro=1
if [ "${1:-}" = "--no-micro" ]; then run_micro=0; fi

echo "=== release: configure + build ==="
cmake --preset release
cmake --build --preset release -j "$(nproc)"

bindir="build-release/bench"
outdir="experiments_out"
mkdir -p "${outdir}"

for bench in "${bindir}"/bench_e[0-9]*; do
  name="$(basename "${bench}")"
  case "${name}" in
    bench_e11_scaleout) continue ;;  # runs below with its JSON artifact
  esac
  echo "=== ${name} ==="
  "${bench}" | tee "${outdir}/${name}.txt"
done
# bench_e12_migration, bench_e13_recovery, bench_e14_qos, and bench_e16_nvm
# (in the loop above, run from the repo root) also refresh
# BENCH_migration.json / BENCH_recovery.json / BENCH_qos.json /
# BENCH_nvm.json in place; fail loudly if they did not. BENCH_recovery.json
# doubles as the E13 mount-time regression baseline, and BENCH_nvm.json as
# the E16 flash-read-reduction baseline (scripts/bench_gate.py).
test -s BENCH_migration.json
test -s BENCH_recovery.json
test -s BENCH_qos.json
test -s BENCH_nvm.json

echo "=== bench_e8_banks --tail (scheduling ablation) ==="
"${bindir}/bench_e8_banks" --tail | tee "${outdir}/bench_e8_banks_tail.txt"

if [ "${run_micro}" -eq 1 ]; then
  echo "=== bench_e11_scaleout ==="
  (cd "${bindir}" && ./bench_e11_scaleout) | tee "${outdir}/bench_e11_scaleout.txt"
  cp "${bindir}/BENCH_scaleout.json" BENCH_scaleout.json

  echo "=== bench_micro ==="
  (cd "${bindir}" && ./bench_micro) | tee "${outdir}/bench_micro.txt"
  cp "${bindir}/BENCH_micro.json" BENCH_micro.json
fi

echo
echo "Done. Console tables: ${outdir}/ ; JSON artifacts refreshed in repo root."
echo "If any table changed, update the matching section of EXPERIMENTS.md."
