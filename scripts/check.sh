#!/usr/bin/env bash
# Tier-1 verification: build and run the full test suite in Release, then
# again under AddressSanitizer + UndefinedBehaviorSanitizer (including the
# E13 journal crash-injection sweep — torn programs + remount is exactly
# where a stale-pointer or double-free would hide), then run the
# parallel-harness tests (thread pool, parallel runner, sharded scale-out,
# log sink) under ThreadSanitizer. Run from the repository root:
#
#   scripts/check.sh            # all three configurations
#   scripts/check.sh release    # just the optimized build
#   scripts/check.sh asan       # just the sanitizer build
#   scripts/check.sh tsan       # just the ThreadSanitizer leg
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("${@:-release asan tsan}")
# Word-split the default; explicit args arrive pre-split.
if [ $# -eq 0 ]; then presets=(release asan tsan); fi

for preset in "${presets[@]}"; do
  echo "=== ${preset}: configure ==="
  cmake --preset "${preset}"
  echo "=== ${preset}: build ==="
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "=== ${preset}: test ==="
  ctest --preset "${preset}"
done
echo "All checks passed."
