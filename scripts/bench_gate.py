#!/usr/bin/env python3
"""Benchmark regression gate over the committed BENCH_*.json baselines.

Compares freshly measured result files against the committed baselines at
the repo root and fails (exit 1) if any gated number regressed more than the
allowed fraction. Which gates apply is decided by the fresh file's basename:

BENCH_micro.json — three ops guard the three hot paths a change is most
likely to break:

  * BM_SimCoreReplay            — whole-machine replay (sim_ops_per_s,
                                  higher is better);
  * BM_LargeStoreRandOverwrite/65536 — FTL write + cleaning under steady
                                  overwrite pressure (ns_per_op, lower is
                                  better);
  * BM_CleaningRelocation/{512,4096} — the cleaner's zero-copy relocation
                                  path in isolation (ns_per_op, lower is
                                  better).

BENCH_scaleout.json — the million-user fleet row guards the scale-out
harness's two scaling claims:

  * scaleout/users/1000000 sim_ops_per_host_s — streaming replay rate at
                                  fleet scale (higher is better);
  * scaleout/users/1000000 bytes_per_user — resident footprint per user
                                  under the O(1)-per-user aggregate fold
                                  (lower is better).

BENCH_recovery.json — the 256k-inode row guards the E13 journal's two
promises:

  * recovery/inodes/262144 journal_mount_ns — crash-recovery mount time at
                                  the largest namespace (lower is better);
  * recovery/inodes/262144 journal_write_overhead_pct — flash write traffic
                                  the journal adds over everything else
                                  (lower is better).

BENCH_nvm.json — the two headline E16 rows guard the NVM tier's reason to
exist (both are deterministic simulated counters, so any movement is a
behavior change, not runner noise):

  * e16/os-nvm/1024kib flash_read_reduction_x — how much flash read traffic
                                  the OS-managed 1 MiB NVM tier removes vs
                                  the no-NVM baseline (higher is better);
  * e16/hw-nvm/1024kib flash_read_reduction_x — the same cut from the
                                  hardware access-counter migration path
                                  (higher is better).

Run from CI's bench-smoke leg after the benches have emitted their JSON
next to the binaries; pass one or more fresh files:

    python3 scripts/bench_gate.py build-release/bench/BENCH_micro.json \
        build-release/bench/BENCH_scaleout.json

The committed baselines (BENCH_*.json at the repo root) are refreshed by
scripts/regen_experiments.sh; regenerate them deliberately when a change is
*supposed* to move a number, so the gate tracks intent rather than drift.

The threshold is deliberately loose (15%) because shared CI runners are
noisy; the gate exists to catch order-of-magnitude regressions in the
simulation core (event queue, arena, FTL hot path) and in the scale-out
memory discipline, not single-digit wobble.
"""

import json
import os
import sys

# basename -> [(op, key, higher_is_better)], matched against row["op"].
GATES = {
    "BENCH_micro.json": [
        ("BM_SimCoreReplay", "sim_ops_per_s", True),
        ("BM_LargeStoreRandOverwrite/65536", "ns_per_op", False),
        ("BM_CleaningRelocation/512", "ns_per_op", False),
        ("BM_CleaningRelocation/4096", "ns_per_op", False),
    ],
    "BENCH_scaleout.json": [
        ("scaleout/users/1000000", "sim_ops_per_host_s", True),
        ("scaleout/users/1000000", "bytes_per_user", False),
    ],
    "BENCH_recovery.json": [
        ("recovery/inodes/262144", "journal_mount_ns", False),
        ("recovery/inodes/262144", "journal_write_overhead_pct", False),
    ],
    "BENCH_nvm.json": [
        ("e16/os-nvm/1024kib", "flash_read_reduction_x", True),
        ("e16/hw-nvm/1024kib", "flash_read_reduction_x", True),
    ],
}


MAX_REGRESSION = 0.15


def load_value(path, op, key):
    with open(path) as f:
        rows = json.load(f)
    for row in rows:
        if row.get("op") == op:
            value = row.get(key)
            if value is None:
                raise SystemExit(f"{path}: {op} row has no {key}")
            return float(value)
    raise SystemExit(f"{path}: no {op} row")


def gate_file(fresh_path, baseline_path, gates):
    failed = False
    for op, key, higher_is_better in gates:
        baseline = load_value(baseline_path, op, key)
        fresh = load_value(fresh_path, op, key)
        # Normalize so ratio > 1 always means "got better".
        ratio = fresh / baseline if higher_is_better else baseline / fresh
        print(
            f"{op} [{key}]: baseline {baseline:,.1f}, "
            f"measured {fresh:,.1f} ({ratio:.2%} of baseline)"
        )
        if ratio < 1.0 - MAX_REGRESSION:
            failed = True
            print(
                f"FAIL: {op} [{key}] regressed more than "
                f"{MAX_REGRESSION:.0%}. If the change is intentional, "
                "refresh the baseline with scripts/regen_experiments.sh and "
                f"commit {os.path.basename(baseline_path)}.",
                file=sys.stderr,
            )
    return failed


def main():
    if len(sys.argv) < 2:
        raise SystemExit(
            f"usage: {sys.argv[0]} <fresh BENCH_*.json> [<more fresh files>]"
        )
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    failed = False
    for fresh_path in sys.argv[1:]:
        name = os.path.basename(fresh_path)
        gates = GATES.get(name)
        if gates is None:
            raise SystemExit(
                f"{fresh_path}: no gates defined for {name} "
                f"(known: {', '.join(sorted(GATES))})"
            )
        baseline_path = os.path.join(repo_root, name)
        failed = gate_file(fresh_path, baseline_path, gates) or failed
    if failed:
        return 1
    print("OK: all gated benchmarks within regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
