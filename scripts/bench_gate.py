#!/usr/bin/env python3
"""Sim-ops/s regression gate over BENCH_micro.json.

Compares a freshly measured BENCH_micro.json against the committed baseline
and fails (exit 1) if the gated benchmark's sim_ops_per_s dropped more than
the allowed fraction. Run from CI's bench-smoke leg after bench_micro has
emitted its JSON next to the binary:

    python3 scripts/bench_gate.py build-release/bench/BENCH_micro.json

The committed baseline (BENCH_micro.json at the repo root) is refreshed by
scripts/regen_experiments.sh; regenerate it deliberately when a change is
*supposed* to move the number, so the gate tracks intent rather than drift.

The threshold is deliberately loose (15%) because shared CI runners are
noisy; the gate exists to catch order-of-magnitude regressions in the
simulation core (event queue, arena, FTL hot path), not single-digit wobble.
"""

import json
import os
import sys

GATED_OP = "BM_SimCoreReplay"
COUNTER = "sim_ops_per_s"
MAX_REGRESSION = 0.15


def load_rate(path):
    with open(path) as f:
        rows = json.load(f)
    for row in rows:
        if row.get("op") == GATED_OP:
            rate = row.get(COUNTER)
            if rate is None:
                raise SystemExit(f"{path}: {GATED_OP} row has no {COUNTER}")
            return float(rate)
    raise SystemExit(f"{path}: no {GATED_OP} row")


def main():
    if len(sys.argv) != 2:
        raise SystemExit(f"usage: {sys.argv[0]} <fresh BENCH_micro.json>")
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_path = os.path.join(repo_root, "BENCH_micro.json")
    baseline = load_rate(baseline_path)
    fresh = load_rate(sys.argv[1])
    ratio = fresh / baseline
    print(
        f"{GATED_OP}: baseline {baseline:,.0f} sim-ops/s, "
        f"measured {fresh:,.0f} sim-ops/s ({ratio:.2%} of baseline)"
    )
    if ratio < 1.0 - MAX_REGRESSION:
        print(
            f"FAIL: sim-ops/s regressed more than {MAX_REGRESSION:.0%}. "
            "If the slowdown is intentional, refresh the baseline with "
            "scripts/regen_experiments.sh and commit BENCH_micro.json.",
            file=sys.stderr,
        )
        return 1
    print("OK: within regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
