#!/usr/bin/env python3
"""Benchmark regression gate over BENCH_micro.json.

Compares a freshly measured BENCH_micro.json against the committed baseline
and fails (exit 1) if any gated benchmark regressed more than the allowed
fraction. Three ops guard the three hot paths a change is most likely to
break:

  * BM_SimCoreReplay            — whole-machine replay (sim_ops_per_s,
                                  higher is better);
  * BM_LargeStoreRandOverwrite/65536 — FTL write + cleaning under steady
                                  overwrite pressure (ns_per_op, lower is
                                  better);
  * BM_CleaningRelocation/{512,4096} — the cleaner's zero-copy relocation
                                  path in isolation (ns_per_op, lower is
                                  better).

Run from CI's bench-smoke leg after bench_micro has emitted its JSON next to
the binary:

    python3 scripts/bench_gate.py build-release/bench/BENCH_micro.json

The committed baseline (BENCH_micro.json at the repo root) is refreshed by
scripts/regen_experiments.sh; regenerate it deliberately when a change is
*supposed* to move a number, so the gate tracks intent rather than drift.

The threshold is deliberately loose (15%) because shared CI runners are
noisy; the gate exists to catch order-of-magnitude regressions in the
simulation core (event queue, arena, FTL hot path), not single-digit wobble.
"""

import json
import os
import sys

# (op, key, higher_is_better)
GATES = [
    ("BM_SimCoreReplay", "sim_ops_per_s", True),
    ("BM_LargeStoreRandOverwrite/65536", "ns_per_op", False),
    ("BM_CleaningRelocation/512", "ns_per_op", False),
    ("BM_CleaningRelocation/4096", "ns_per_op", False),
]
MAX_REGRESSION = 0.15


def load_value(path, op, key):
    with open(path) as f:
        rows = json.load(f)
    for row in rows:
        if row.get("op") == op:
            value = row.get(key)
            if value is None:
                raise SystemExit(f"{path}: {op} row has no {key}")
            return float(value)
    raise SystemExit(f"{path}: no {op} row")


def main():
    if len(sys.argv) != 2:
        raise SystemExit(f"usage: {sys.argv[0]} <fresh BENCH_micro.json>")
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_path = os.path.join(repo_root, "BENCH_micro.json")
    failed = False
    for op, key, higher_is_better in GATES:
        baseline = load_value(baseline_path, op, key)
        fresh = load_value(sys.argv[1], op, key)
        # Normalize so ratio > 1 always means "got better".
        ratio = fresh / baseline if higher_is_better else baseline / fresh
        unit = "sim-ops/s" if higher_is_better else "ns/op"
        print(
            f"{op}: baseline {baseline:,.1f} {unit}, "
            f"measured {fresh:,.1f} {unit} ({ratio:.2%} of baseline speed)"
        )
        if ratio < 1.0 - MAX_REGRESSION:
            failed = True
            print(
                f"FAIL: {op} regressed more than {MAX_REGRESSION:.0%}. "
                "If the slowdown is intentional, refresh the baseline with "
                "scripts/regen_experiments.sh and commit BENCH_micro.json.",
                file=sys.stderr,
            )
    if failed:
        return 1
    print("OK: all gated benchmarks within regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
