// MobileComputer — the whole machine the paper envisions, composed from the
// other libraries: battery-backed DRAM primary storage, banked flash
// secondary storage behind a log-structured store, the physical storage
// manager, the memory-resident file system with its DRAM write buffer, a
// periodic flush daemon, virtual address spaces, and the battery that makes
// "stable" a matter of policy. Construct one from a MachineConfig preset and
// drive it with traces or the VM/loader API.

#ifndef SSMC_SRC_CORE_MACHINE_H_
#define SSMC_SRC_CORE_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/device/battery.h"
#include "src/device/dram_device.h"
#include "src/device/flash_device.h"
#include "src/device/nvm_device.h"
#include "src/device/specs.h"
#include "src/fs/memory_fs.h"
#include "src/ftl/flash_store.h"
#include "src/journal/journal.h"
#include "src/sim/clock.h"
#include "src/sim/event_queue.h"
#include "src/storage/storage_manager.h"
#include "src/trace/replayer.h"
#include "src/trace/trace.h"
#include "src/vm/address_space.h"

namespace ssmc {

class Obs;

struct MachineConfig {
  std::string name = "ssmc";
  DramSpec dram_spec = NecDram1993();
  uint64_t dram_bytes = 4 * kMiB;
  FlashSpec flash_spec = IntelFlash1993();
  uint64_t flash_bytes = 16 * kMiB;
  int flash_banks = 2;
  // Optional byte-addressable NVM tier between DRAM and flash (E16). 0 bytes
  // (the default) builds no NVM device and keeps the two-tier hierarchy
  // bit-identical. Sized in page_bytes units; must divide evenly by banks.
  NvmSpec nvm_spec = PcmNvm();
  uint64_t nvm_bytes = 0;
  int nvm_banks = 1;
  // Hardware-managed page migration applied to every address space the
  // machine creates (OS-managed migration is `residency` below; the two are
  // the E16 comparison). Off by default.
  HwMigrationOptions hw_migration;
  FlashStoreOptions store_options;   // background_writes forced on below.
  // How each flash bank orders contending requests. kFifo (default) is the
  // paper-faithful charge-latency model, byte-identical to the pre-pipeline
  // simulator; kPriority lets foreground reads jump queued flush/cleaner
  // work (the E8 read-tail ablation); kWeightedFair / kTokenBucket add
  // per-tenant QoS (the E14 noisy-neighbor ablation), configured via
  // `tenant_qos` below.
  IoSchedPolicy io_sched = IoSchedPolicy::kFifo;
  // Per-tenant QoS spec applied to the flash scheduler at construction:
  // kWeightedFair consumes `weight`, kTokenBucket consumes `rate_bytes_per_s`
  // / `burst_bytes` (rate 0 = unlimited). Unlisted tenants get weight 1 and
  // no rate cap. Empty (the default) configures nothing.
  struct TenantQos {
    TenantId tenant = kDefaultTenant;
    uint32_t weight = 1;
    uint64_t rate_bytes_per_s = 0;
    uint64_t burst_bytes = 0;
  };
  std::vector<TenantQos> tenant_qos;
  MemoryFsOptions fs_options;
  // DRAM<->flash migration policy (src/storage/residency.h). The default
  // kWriteBufferOnly is byte-identical to the pre-residency simulator;
  // kReadPromote/kAggressive additionally promote hot flash blocks into a
  // DRAM clean cache (experiment E12).
  ResidencyOptions residency;
  double primary_battery_mwh = 20000;  // Notebook pack.
  double backup_battery_mwh = 250;     // Lithium backup.
  Duration flush_period = 5 * kSecond;
  // Period of the metadata-checkpoint daemon; 0 disables checkpointing.
  // With it off, a total battery failure loses the whole namespace.
  Duration checkpoint_period = 0;
  // Durable metadata journal (ROADMAP E13). Off by default — byte-identical
  // legacy behavior. When on, every namespace mutation is appended to the
  // journal before it is acked, CheckpointMetadata() compacts through the
  // journal, and RecoverAfterFailure() remounts from checkpoint + log tail,
  // restoring every acked mutation — not just state as of the last
  // checkpoint.
  bool journal = false;
  MetadataJournalOptions journal_options;
  // With the journal on, also maintain the legacy block-0 checkpoint so the
  // two recovery paths can be compared differentially (tests, E13 bench).
  bool journal_oracle = false;
  uint64_t page_bytes = 512;
  uint64_t seed = 1;
  // Observability bundle (metrics registry + span tracer), not owned. Null
  // (the default) keeps every hook disabled — the hot paths see only a null
  // check. The machine attaches all of its layers (flash device, flash
  // store, storage manager, file system, write buffer, trace replays) and
  // re-attaches after crash recovery rebuilds the fs/storage stack.
  Obs* obs = nullptr;
};

// Presets modeled on the machines the paper names.
// HP OmniBook 300: flash-card secondary storage, XIP'd bundled software.
MachineConfig OmniBookConfig();
// Apple Newton / Casio Zoomer class PDA: small, power-starved.
MachineConfig PdaConfig();
// A diskless notebook with workstation-class memory.
MachineConfig NotebookConfig();

class MobileComputer {
 public:
  explicit MobileComputer(MachineConfig config);
  ~MobileComputer();

  MobileComputer(const MobileComputer&) = delete;
  MobileComputer& operator=(const MobileComputer&) = delete;

  const MachineConfig& config() const { return config_; }
  SimClock& clock() { return clock_; }
  EventQueue& events() { return events_; }
  DramDevice& dram() { return *dram_; }
  FlashDevice& flash() { return *flash_; }
  // Null unless MachineConfig::nvm_bytes > 0.
  NvmDevice* nvm() { return nvm_.get(); }
  Battery& battery() { return *battery_; }
  FlashStore& flash_store() { return *store_; }
  StorageManager& storage() { return *storage_; }
  MemoryFileSystem& fs() { return *fs_; }
  // Null unless MachineConfig::journal is set.
  MetadataJournal* journal() { return journal_.get(); }

  // Creates a process address space owned by the machine.
  AddressSpace& CreateAddressSpace();

  // Replays a trace against the machine's file system with the flush daemon
  // running.
  ReplayReport RunTrace(const Trace& trace);

  // Advances simulated time (running due events such as flushes).
  void Idle(Duration d) { events_.RunUntil(clock_.now() + d); }

  // --- Energy & battery ----------------------------------------------------
  // Settles idle energy on every device and drains the battery by the energy
  // consumed since the last settlement. Returns false if the battery died.
  bool SettleEnergy();
  // Total energy consumed so far (nJ), after settlement.
  double TotalEnergyNj() const;

  // --- Failure injection (experiment E10) -----------------------------------
  struct CrashReport {
    uint64_t lost_dirty_bytes = 0;  // Write-buffered data that evaporated.
    bool dram_contents_lost = false;
    SimTime at = 0;
  };
  // Total battery failure (dropped machine / dead packs): battery-backed
  // DRAM loses its contents, including every dirty buffered block.
  CrashReport InjectBatteryFailure();
  // Orderly shutdown: flush everything, then power off. Nothing is lost.
  CrashReport OrderlyShutdown();
  // Primary-pack swap carried by the backup battery.
  bool SwapBattery(double fresh_mwh);

  // After a total battery failure: installs a fresh primary pack, rebuilds
  // the storage manager over the surviving flash, and recovers the file
  // system from its last metadata checkpoint (fails FAILED_PRECONDITION if
  // none was ever taken). Address spaces do not survive; data written after
  // the last checkpoint is gone.
  Result<RecoveryReport> RecoverAfterFailure(double fresh_battery_mwh);

 private:
  void ScheduleFlushDaemon();
  void ScheduleCheckpointDaemon();
  double CurrentStandbyMw() const;

  MachineConfig config_;
  SimClock clock_;
  EventQueue events_;
  std::unique_ptr<DramDevice> dram_;
  std::unique_ptr<FlashDevice> flash_;
  // Declared before storage_ (which holds a raw pointer into it).
  std::unique_ptr<NvmDevice> nvm_;
  std::unique_ptr<Battery> battery_;
  std::unique_ptr<FlashStore> store_;
  std::unique_ptr<StorageManager> storage_;
  // Declared before fs_: the fs holds a raw pointer into the journal, so it
  // must be destroyed first.
  std::unique_ptr<MetadataJournal> journal_;
  std::unique_ptr<MemoryFileSystem> fs_;
  std::vector<std::unique_ptr<AddressSpace>> spaces_;
  double drained_nj_ = 0;  // Energy already taken from the battery.
  int obs_track_ = 0;      // "machine" track (crash/recovery lifecycle).
};

}  // namespace ssmc

#endif  // SSMC_SRC_CORE_MACHINE_H_
