#include "src/core/machine.h"

#include "src/obs/obs.h"
#include "src/support/log.h"

namespace ssmc {

MachineConfig OmniBookConfig() {
  MachineConfig config;
  config.name = "omnibook";
  config.dram_bytes = 4 * kMiB;
  config.flash_spec = IntelFlash1993();
  // Keep simulated erase cost moderate for a 10 MiB card with many small
  // sectors (the card's controller erases subsectors).
  config.flash_spec.erase_sector_bytes = 16 * kKiB;
  config.flash_spec.erase_ns = 300 * kMillisecond;
  config.flash_bytes = 10 * kMiB;
  config.flash_banks = 2;
  return config;
}

MachineConfig PdaConfig() {
  MachineConfig config;
  config.name = "pda";
  config.dram_bytes = 1 * kMiB;
  config.flash_spec = GenericPaperFlash();
  config.flash_bytes = 4 * kMiB;
  config.flash_banks = 1;
  config.primary_battery_mwh = 3000;  // AAA cells.
  config.backup_battery_mwh = 100;
  config.fs_options.write_buffer_pages = 512;  // 256 KiB buffer.
  return config;
}

MachineConfig NotebookConfig() {
  MachineConfig config;
  config.name = "notebook";
  config.dram_bytes = 16 * kMiB;
  config.flash_spec = SunDiskFlash1993();
  // SunDisk-style small sectors; group them into 8 KiB store sectors for a
  // reasonable page count at 32 MiB.
  config.flash_spec.erase_sector_bytes = 8 * kKiB;
  config.flash_spec.erase_ns = 20 * kMillisecond;
  config.flash_bytes = 32 * kMiB;
  config.flash_banks = 4;
  config.fs_options.write_buffer_pages = 4096;  // 2 MiB buffer.
  return config;
}

MobileComputer::MobileComputer(MachineConfig config)
    : config_(std::move(config)), events_(clock_) {
  dram_ = std::make_unique<DramDevice>(config_.dram_spec, config_.dram_bytes,
                                       clock_);
  flash_ = std::make_unique<FlashDevice>(config_.flash_spec,
                                         config_.flash_bytes,
                                         config_.flash_banks, clock_,
                                         config_.seed);
  flash_->set_sched_policy(config_.io_sched);
  for (const MachineConfig::TenantQos& qos : config_.tenant_qos) {
    flash_->set_tenant_weight(qos.tenant, qos.weight);
    if (qos.rate_bytes_per_s > 0) {
      flash_->set_tenant_rate(qos.tenant, qos.rate_bytes_per_s,
                              qos.burst_bytes);
    }
  }
  if (config_.nvm_bytes > 0) {
    nvm_ = std::make_unique<NvmDevice>(config_.nvm_spec, config_.nvm_bytes,
                                       config_.nvm_banks, clock_);
  }
  battery_ = std::make_unique<Battery>(config_.primary_battery_mwh,
                                       config_.backup_battery_mwh, clock_);
  // The storage manager's flush path runs in the background: writes occupy
  // flash banks without blocking the application.
  FlashStoreOptions store_options = config_.store_options;
  store_options.background_writes = true;
  store_options.block_bytes = config_.page_bytes;
  store_ = std::make_unique<FlashStore>(*flash_, store_options);
  storage_ = std::make_unique<StorageManager>(*dram_, *store_,
                                              config_.page_bytes,
                                              config_.residency, nvm_.get());
  MemoryFsOptions fs_options = config_.fs_options;
  if (config_.journal) {
    journal_ = std::make_unique<MetadataJournal>(*storage_,
                                                 config_.journal_options);
    Status formatted = journal_->Format();
    if (!formatted.ok()) {
      SSMC_LOG(kWarning) << "journal format failed, running unjournaled: "
                         << formatted.ToString();
      journal_.reset();
    } else {
      fs_options.journal = journal_.get();
      fs_options.journal_oracle = config_.journal_oracle;
    }
  }
  fs_ = std::make_unique<MemoryFileSystem>(*storage_, fs_options);
  if (config_.obs != nullptr) {
    obs_track_ = config_.obs->tracer().RegisterTrack("machine");
    flash_->AttachObs(config_.obs);
    if (nvm_ != nullptr) {
      nvm_->AttachObs(config_.obs);
    }
    store_->AttachObs(config_.obs);
    storage_->AttachObs(config_.obs);
    if (journal_ != nullptr) {
      journal_->AttachObs(config_.obs);
    }
    fs_->AttachObs(config_.obs);
  }
  ScheduleFlushDaemon();
  if (config_.checkpoint_period > 0) {
    ScheduleCheckpointDaemon();
  }
}

MobileComputer::~MobileComputer() = default;

void MobileComputer::ScheduleFlushDaemon() {
  events_.ScheduleAfter(config_.flush_period, [this] {
    if (!battery_->dead()) {
      Status flushed = fs_->TickFlush(clock_.now());
      if (!flushed.ok()) {
        SSMC_LOG(kWarning) << "flush daemon: " << flushed.ToString();
      }
    }
    ScheduleFlushDaemon();
  });
}

void MobileComputer::ScheduleCheckpointDaemon() {
  events_.ScheduleAfter(config_.checkpoint_period, [this] {
    if (!battery_->dead()) {
      Status checkpointed = fs_->CheckpointMetadata();
      if (!checkpointed.ok()) {
        SSMC_LOG(kWarning) << "checkpoint daemon: "
                           << checkpointed.ToString();
      }
    }
    ScheduleCheckpointDaemon();
  });
}

Result<RecoveryReport> MobileComputer::RecoverAfterFailure(
    double fresh_battery_mwh) {
  const SimTime recovery_start = clock_.now();
  battery_ = std::make_unique<Battery>(fresh_battery_mwh,
                                       config_.backup_battery_mwh, clock_);
  spaces_.clear();
  // Tear down in dependency order, then rebuild the DRAM-resident state
  // (allocators, namespace) from flash.
  fs_.reset();
  journal_.reset();
  storage_ = std::make_unique<StorageManager>(*dram_, *store_,
                                              config_.page_bytes,
                                              config_.residency, nvm_.get());
  RecoveryReport report;
  if (config_.journal) {
    journal_ = std::make_unique<MetadataJournal>(*storage_,
                                                 config_.journal_options);
    MemoryFsOptions fs_options = config_.fs_options;
    fs_options.journal_oracle = config_.journal_oracle;
    Result<std::unique_ptr<MemoryFileSystem>> remounted =
        MemoryFileSystem::RecoverFromJournal(*journal_, *storage_, fs_options,
                                             &report);
    if (!remounted.ok()) {
      // No (or unreadable) journal: factory-reset to an empty, freshly
      // formatted journaled fs. The failed mount left reservations behind,
      // so rebuild the manager first.
      journal_.reset();
      storage_ = std::make_unique<StorageManager>(*dram_, *store_,
                                                  config_.page_bytes,
                                                  config_.residency,
                                                  nvm_.get());
      journal_ = std::make_unique<MetadataJournal>(*storage_,
                                                   config_.journal_options);
      MemoryFsOptions fresh = config_.fs_options;
      Status formatted = journal_->Format();
      if (!formatted.ok()) {
        SSMC_LOG(kWarning) << "journal reformat failed, running unjournaled: "
                           << formatted.ToString();
        journal_.reset();
      } else {
        fresh.journal = journal_.get();
        fresh.journal_oracle = config_.journal_oracle;
      }
      fs_ = std::make_unique<MemoryFileSystem>(*storage_, fresh);
      if (config_.obs != nullptr) {
        storage_->AttachObs(config_.obs);
        if (journal_ != nullptr) {
          journal_->AttachObs(config_.obs);
        }
        fs_->AttachObs(config_.obs);
      }
      return remounted.status();
    }
    fs_ = std::move(remounted).value();
    if (config_.obs != nullptr) {
      storage_->AttachObs(config_.obs);
      journal_->AttachObs(config_.obs);
      fs_->AttachObs(config_.obs);
      config_.obs->tracer().Span(obs_track_, "journal-mount", recovery_start,
                                 clock_.now() - recovery_start,
                                 {"files", report.files_recovered},
                                 {"records", report.journal_records_replayed});
    }
    return report;
  }
  Result<std::unique_ptr<MemoryFileSystem>> recovered =
      MemoryFileSystem::RecoverFromCheckpoint(*storage_, config_.fs_options,
                                              &report);
  if (!recovered.ok()) {
    // No checkpoint: come up with an empty file system (factory-reset).
    // The failed recovery attempt constructed (and destroyed) a file system
    // that reserved the superblock — and possibly checkpoint index blocks —
    // in storage_, so rebuild the manager before constructing the fresh FS.
    storage_ = std::make_unique<StorageManager>(*dram_, *store_,
                                                config_.page_bytes,
                                                config_.residency, nvm_.get());
    fs_ = std::make_unique<MemoryFileSystem>(*storage_, config_.fs_options);
    if (config_.obs != nullptr) {
      storage_->AttachObs(config_.obs);
      fs_->AttachObs(config_.obs);
    }
    return recovered.status();
  }
  fs_ = std::move(recovered).value();
  if (config_.obs != nullptr) {
    // The fs and storage manager were rebuilt; re-point their collectors and
    // tracks at the new instances (keyed collectors replace, track
    // registration dedupes by name).
    storage_->AttachObs(config_.obs);
    fs_->AttachObs(config_.obs);
    config_.obs->tracer().Span(obs_track_, "recovery", recovery_start,
                               clock_.now() - recovery_start,
                               {"files", report.files_recovered},
                               {"bytes", report.bytes_recovered});
  }
  return report;
}

AddressSpace& MobileComputer::CreateAddressSpace() {
  spaces_.push_back(std::make_unique<AddressSpace>(*storage_));
  spaces_.back()->set_hw_migration(config_.hw_migration);
  return *spaces_.back();
}

ReplayReport MobileComputer::RunTrace(const Trace& trace) {
  // Snapshot per-class and per-tenant device attribution so the report
  // covers exactly the replay window (machines are reused across traces).
  struct Snap {
    uint64_t requests, wait, service;
  };
  std::array<Snap, kNumIoPriorities> before;
  for (int i = 0; i < kNumIoPriorities; ++i) {
    const IoLaneStats& c = flash_->stats().by_class[i];
    before[static_cast<size_t>(i)] = {c.requests.value(),
                                      c.queue_wait_ns.value(),
                                      c.service_ns.value()};
  }
  const TenantLaneTable before_tenants = flash_->stats().by_tenant;
  const MemoryFileSystem::Stats& fstats = fs_->stats();
  const uint64_t dram_before = fstats.buffered_read_bytes.value() +
                               fstats.clean_cached_read_bytes.value();
  const uint64_t nvm_before = fstats.nvm_cached_read_bytes.value();
  const uint64_t flash_before = fstats.flash_direct_read_bytes.value();
  TraceReplayer replayer(*fs_, clock_, &events_);
  replayer.AttachObs(config_.obs);
  ReplayReport report = replayer.Replay(trace);
  report.tier_dram_read_bytes = fstats.buffered_read_bytes.value() +
                                fstats.clean_cached_read_bytes.value() -
                                dram_before;
  report.tier_nvm_read_bytes = fstats.nvm_cached_read_bytes.value() -
                               nvm_before;
  report.tier_flash_read_bytes =
      fstats.flash_direct_read_bytes.value() - flash_before;
  for (int i = 0; i < kNumIoPriorities; ++i) {
    const IoLaneStats& c = flash_->stats().by_class[i];
    const Snap& b = before[static_cast<size_t>(i)];
    IoLaneStats& out = report.io_by_class[static_cast<size_t>(i)];
    out.requests.Add(c.requests.value() - b.requests);
    out.queue_wait_ns.Add(c.queue_wait_ns.value() - b.wait);
    out.service_ns.Add(c.service_ns.value() - b.service);
  }
  report.io_by_tenant.AddDelta(flash_->stats().by_tenant, before_tenants);
  return report;
}

double MobileComputer::CurrentStandbyMw() const {
  return dram_->standby_mw() + flash_->standby_mw() +
         (nvm_ != nullptr ? nvm_->standby_mw() : 0.0);
}

bool MobileComputer::SettleEnergy() {
  dram_->AccountIdleEnergy();
  flash_->AccountIdleEnergy();
  if (nvm_ != nullptr) {
    nvm_->AccountIdleEnergy();
  }
  const double total = TotalEnergyNj();
  const double delta = total - drained_nj_;
  drained_nj_ = total;
  if (delta <= 0) {
    return !battery_->dead();
  }
  return battery_->Drain(delta);
}

double MobileComputer::TotalEnergyNj() const {
  return dram_->energy().total_nanojoules() +
         flash_->energy().total_nanojoules() +
         (nvm_ != nullptr ? nvm_->energy().total_nanojoules() : 0.0);
}

MobileComputer::CrashReport MobileComputer::InjectBatteryFailure() {
  CrashReport report;
  report.at = clock_.now();
  if (config_.obs != nullptr) {
    config_.obs->tracer().Instant(obs_track_, "battery-failure", report.at);
  }
  battery_->InjectFailure();
  report.lost_dirty_bytes = fs_->LoseBufferedData();
  dram_->ForceContentLoss();
  // The payload table shadows DRAM page contents; it loses them too.
  storage_->DropAllPagePayloads();
  report.dram_contents_lost = true;
  return report;
}

MobileComputer::CrashReport MobileComputer::OrderlyShutdown() {
  CrashReport report;
  report.at = clock_.now();
  Status synced = fs_->Sync();
  if (!synced.ok()) {
    SSMC_LOG(kWarning) << "shutdown sync failed: " << synced.ToString();
  }
  report.lost_dirty_bytes = fs_->LoseBufferedData();  // 0 after a clean sync.
  report.dram_contents_lost = false;
  return report;
}

bool MobileComputer::SwapBattery(double fresh_mwh) {
  // The backup carries the DRAM retention load for a one-minute swap.
  return battery_->SwapPrimary(fresh_mwh, CurrentStandbyMw(), kMinute);
}

}  // namespace ssmc
