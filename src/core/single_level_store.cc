#include "src/core/single_level_store.h"

namespace ssmc {

SingleLevelStore::SingleLevelStore(StorageManager& storage,
                                   MemoryFileSystem& fs)
    : storage_(storage), fs_(fs), space_(storage) {}

Result<uint64_t> SingleLevelStore::AttachInternal(const std::string& path,
                                                  bool writable) {
  auto it = windows_.find(path);
  if (it != windows_.end()) {
    if (it->second.writable != writable) {
      return FailedPreconditionError(path +
                                     " is attached with different access");
    }
    return it->second.base;
  }
  Result<FileInfo> info = fs_.Stat(path);
  if (!info.ok()) {
    return info.status();
  }
  if (info.value().is_directory) {
    return InvalidArgumentError("cannot attach a directory");
  }
  if (info.value().size > kWindowBytes) {
    return OutOfRangeError("file larger than a store window");
  }
  const uint64_t base = next_base_;
  if (!writable) {
    // Read-only windows ride the VM: pages map straight into flash and are
    // reclaimable under memory pressure.
    if (info.value().size > 0) {
      SSMC_RETURN_IF_ERROR(space_.MapFileCow(base, fs_, path, false));
    }
  }
  // Writable windows route loads and stores through the file system, so a
  // store is immediately visible to every reader and durable per the flush
  // policy (the FS arbitrates buffer vs flash; a private VM copy cannot).
  next_base_ += kWindowBytes;
  windows_[path] = Window{base, writable};
  stats_.attaches.Add();
  return base;
}

Result<uint64_t> SingleLevelStore::Attach(const std::string& path) {
  return AttachInternal(path, /*writable=*/false);
}

Result<uint64_t> SingleLevelStore::AttachWritable(const std::string& path) {
  return AttachInternal(path, /*writable=*/true);
}

Status SingleLevelStore::Detach(const std::string& path) {
  auto it = windows_.find(path);
  if (it == windows_.end()) {
    return NotFoundError(path + " is not attached");
  }
  if (!it->second.writable &&
      space_.FindRegion(it->second.base) != nullptr) {
    SSMC_RETURN_IF_ERROR(space_.Unmap(it->second.base));
  }
  windows_.erase(it);
  stats_.detaches.Add();
  return Status::Ok();
}

Result<uint64_t> SingleLevelStore::AddressOf(const std::string& path) const {
  auto it = windows_.find(path);
  if (it == windows_.end()) {
    return NotFoundError(path + " is not attached");
  }
  return it->second.base;
}

const SingleLevelStore::Window* SingleLevelStore::WindowAt(
    uint64_t address) const {
  for (const auto& [path, window] : windows_) {
    if (address >= window.base && address < window.base + kWindowBytes) {
      return &window;
    }
  }
  return nullptr;
}

Result<std::pair<std::string, uint64_t>> SingleLevelStore::Resolve(
    uint64_t address) const {
  for (const auto& [path, window] : windows_) {
    if (address >= window.base && address < window.base + kWindowBytes) {
      return std::make_pair(path, address - window.base);
    }
  }
  return NotFoundError("address hits no attached window");
}

Result<Duration> SingleLevelStore::Load(uint64_t address,
                                        std::span<uint8_t> out) {
  Result<std::pair<std::string, uint64_t>> hit = Resolve(address);
  if (!hit.ok()) {
    return hit.status();
  }
  const Window* window = WindowAt(address);
  Result<Duration> r = Duration{0};
  if (window->writable) {
    // Through the file system: sees buffered stores immediately.
    const SimTime before = storage_.dram().clock().now();
    Result<uint64_t> n = fs_.Read(hit.value().first, hit.value().second, out);
    if (!n.ok()) {
      return n.status();
    }
    if (n.value() < out.size()) {
      return OutOfRangeError("load past end of file");
    }
    r = storage_.dram().clock().now() - before;
  } else {
    r = space_.Read(address, out);
    if (!r.ok()) {
      return r.status();
    }
  }
  stats_.loads.Add();
  stats_.loaded_bytes.Add(out.size());
  return r;
}

Result<Duration> SingleLevelStore::Store(uint64_t address,
                                         std::span<const uint8_t> data) {
  Result<std::pair<std::string, uint64_t>> hit = Resolve(address);
  if (!hit.ok()) {
    return hit.status();
  }
  const Window* window = WindowAt(address);
  if (!window->writable) {
    return PermissionDeniedError("store to a read-only window");
  }
  if (hit.value().second + data.size() > kWindowBytes) {
    return OutOfRangeError("store crosses the window boundary");
  }
  const SimTime before = storage_.dram().clock().now();
  Result<uint64_t> n = fs_.Write(hit.value().first, hit.value().second, data);
  if (!n.ok()) {
    return n.status();
  }
  stats_.stores.Add();
  stats_.stored_bytes.Add(data.size());
  return storage_.dram().clock().now() - before;
}

}  // namespace ssmc
