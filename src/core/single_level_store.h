// SingleLevelStore — the paper's unifying abstraction (Sections 1 and 3).
//
// "All data will reside in a single-level 64-bit address space. All storage
// will offer uniform, random-access read times. ... the resulting single-
// level store allows all application programs and their data to be memory-
// resident along with the operating system."
//
// This layer gives every file a window in one shared 64-bit address space:
// Attach(path) assigns (or returns) the file's window and maps it copy-on-
// write, after which ordinary loads and stores against the global address
// reach the file — reads served in place from flash or the write buffer,
// writes landing in private DRAM copies or, with writeback attached, in the
// file itself. Programs, libraries and documents all become "memory" with
// stable addresses; there is no read()/write() copy boundary.
//
// Windows are aligned on a fixed stride and assigned monotonically; Detach
// releases the mapping (the file itself is untouched). A writeback mapping
// (AttachWritable) routes stores through the file system so they are
// durable — that is the single-level store acting as the file interface.

#ifndef SSMC_SRC_CORE_SINGLE_LEVEL_STORE_H_
#define SSMC_SRC_CORE_SINGLE_LEVEL_STORE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/fs/memory_fs.h"
#include "src/sim/stats.h"
#include "src/support/status.h"
#include "src/vm/address_space.h"

namespace ssmc {

class SingleLevelStore {
 public:
  // Window stride: every attached file gets this much address space, so a
  // file can grow in place up to the stride. 16 MiB spans any file on a
  // 1993 mobile machine with room to spare; the 64-bit space fits 2^40 such
  // windows.
  static constexpr uint64_t kWindowBytes = 16 * kMiB;
  // Attached windows start here; below is reserved for process images.
  static constexpr uint64_t kWindowBase = uint64_t{1} << 44;

  SingleLevelStore(StorageManager& storage, MemoryFileSystem& fs);

  // Maps `path` into the store read-only (stores fault with
  // PERMISSION_DENIED). Idempotent: re-attaching returns the same address.
  Result<uint64_t> Attach(const std::string& path);

  // Maps `path` writable-in-place: loads read the file, stores write the
  // file (through the write buffer, so durability follows the machine's
  // flush policy). The file must not already be attached read-only.
  Result<uint64_t> AttachWritable(const std::string& path);

  // Removes the mapping. The file keeps its contents.
  Status Detach(const std::string& path);

  // Address of an attached file (NOT_FOUND if not attached).
  Result<uint64_t> AddressOf(const std::string& path) const;
  // Reverse lookup: which file (and offset) does a global address hit?
  Result<std::pair<std::string, uint64_t>> Resolve(uint64_t address) const;

  // Loads and stores against the global address space. Accesses must stay
  // within one attached window (and within the file for loads).
  Result<Duration> Load(uint64_t address, std::span<uint8_t> out);
  Result<Duration> Store(uint64_t address, std::span<const uint8_t> data);

  uint64_t attached_count() const { return windows_.size(); }
  const AddressSpace& space() const { return space_; }

  struct Stats {
    Counter attaches;
    Counter detaches;
    Counter loads;
    Counter stores;
    Counter loaded_bytes;
    Counter stored_bytes;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Window {
    uint64_t base = 0;
    bool writable = false;
  };

  Result<uint64_t> AttachInternal(const std::string& path, bool writable);
  const Window* WindowAt(uint64_t address) const;

  StorageManager& storage_;
  MemoryFileSystem& fs_;
  AddressSpace space_;
  std::map<std::string, Window> windows_;
  uint64_t next_base_ = kWindowBase;
  Stats stats_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_CORE_SINGLE_LEVEL_STORE_H_
