// MetadataJournal — durable metadata persistence for the memory-resident
// file system (ROADMAP E13).
//
// The paper keeps the namespace in battery-backed DRAM; the journal is what
// makes the "no disk" claim survive arbitrary power failure. It is a small
// log-structured metadata store layered on the flash-block allocator:
//
//   superblock A/B   two fixed logical blocks, written alternately with a
//                    generation number — the commit point of every journal
//                    state change (see journal_format.h);
//   checkpoint chain a dense namespace snapshot, rewritten by compaction;
//   log chain        append-only mutation records (per-record CRC + LSN).
//
// Commit protocol. Append() encodes the record into the current tail block
// image and rewrites that ONE logical block through the flash store. The
// store's out-of-place write keeps the previous tail version mapped until
// the replacement program completes, so a power failure mid-program leaves
// every previously acked record readable — the write either lands whole or
// not at all from the log's point of view. A superblock write is needed
// only when the tail block changes identity (new tail, checkpoint,
// format), so the steady-state cost of durability is one block program per
// mutation.
//
// Compaction. WriteCheckpoint() persists a caller-provided snapshot into a
// fresh chain using cleaner-class I/O, commits it with a superblock write,
// then frees the previous checkpoint and the entire log — dead records are
// reclaimed wholesale. NeedsCompaction() tells the file system when the
// log has grown past the configured bound.
//
// Mount. Recover() reads superblocks, checkpoint, and log tail, reserving
// every journal-owned block with the storage manager. Chain reads are
// issued non-blocking: each block's successor id sits in the first bytes
// of its header, so a real controller pipelines the pointer chase and the
// banks stream payloads concurrently; the mount clock advances to the
// completion of the busiest bank. Replay work is therefore bounded by the
// checkpoint size over the bank-parallel read bandwidth plus the log-tail
// length — not by a serial walk of the namespace.
//
// Journal blocks are first-class flash residents billed to kJournalTenant:
// the FTL's per-tenant lanes attribute journal programs and any cleaner
// relocations of journal blocks to the journal itself.

#ifndef SSMC_SRC_JOURNAL_JOURNAL_H_
#define SSMC_SRC_JOURNAL_JOURNAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/journal/journal_format.h"
#include "src/sim/stats.h"
#include "src/storage/storage_manager.h"
#include "src/support/status.h"

namespace ssmc {

class Obs;

// Reserved tenant identity for journal-issued I/O (top of the 16-bit space,
// far from any workload tenant).
inline constexpr TenantId kJournalTenant = 0xFFFF;

struct MetadataJournalOptions {
  // NeedsCompaction() reports true once the log chain reaches this many
  // blocks (tail included). 0 disables the advisory (the log grows until
  // the caller checkpoints on its own schedule).
  uint64_t compact_log_blocks = 256;
};

class MetadataJournal {
 public:
  // Fixed superblock locations. Logical block 0 stays the legacy
  // whole-namespace checkpoint anchor (memory_fs.h), so the two formats
  // coexist on one store — the differential-oracle configurations depend
  // on that.
  static constexpr uint64_t kSuperblockA = 1;
  static constexpr uint64_t kSuperblockB = 2;

  MetadataJournal(StorageManager& storage, MetadataJournalOptions options = {});
  ~MetadataJournal();

  MetadataJournal(const MetadataJournal&) = delete;
  MetadataJournal& operator=(const MetadataJournal&) = delete;

  // Initializes a fresh journal on an empty store: reserves the superblock
  // pair and commits generation 1 (empty checkpoint, empty log).
  Status Format();

  // Assigns the next LSN to `record`, encodes it into the tail block, and
  // writes that block durably before returning. On success the record
  // survives any subsequent power failure; on failure the journal's
  // durable state is unchanged (the failed bytes are rolled back from the
  // tail image so a later Append never resurrects them). Returns the
  // assigned LSN.
  Result<uint64_t> Append(JournalRecord record);

  // Persists `snapshot` (the file system's dense namespace serialization)
  // as the new checkpoint and truncates the log: the previous checkpoint
  // chain and every log block are freed once the superblock commits. The
  // chain is written with cleaner-class I/O — compaction is background
  // reclamation, not foreground latency. A kCheckpoint record announcing
  // the new checkpoint LSN opens the fresh log.
  Status WriteCheckpoint(std::span<const uint8_t> snapshot);

  bool NeedsCompaction() const {
    return options_.compact_log_blocks > 0 &&
           log_block_ids_.size() >= options_.compact_log_blocks;
  }

  // Everything Recover() learned from flash, in replay order.
  struct MountState {
    std::vector<uint8_t> checkpoint;  // Dense snapshot (empty if none).
    uint64_t checkpoint_lsn = 0;
    SimTime checkpoint_time = 0;
    // Log records with lsn > checkpoint_lsn, oldest first. Replay stops at
    // the first record whose CRC fails (the torn tail of a power failure);
    // everything before it was acked and is intact.
    std::vector<JournalRecord> records;
  };

  // Mounts the journal from flash after a crash: picks the newest valid
  // superblock, reads the checkpoint chain and log chain (non-blocking,
  // bank-parallel — see file comment), reserves every journal-owned block
  // with the storage manager, and leaves this instance ready to Append().
  // FAILED_PRECONDITION if no valid superblock exists (never formatted);
  // DATA_LOSS if the superblock names blocks that cannot be read back.
  Result<MountState> Recover();

  bool formatted() const { return formatted_; }
  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t checkpoint_lsn() const { return checkpoint_lsn_; }
  uint64_t generation() const { return generation_; }
  uint64_t log_blocks() const { return log_block_ids_.size(); }
  uint64_t checkpoint_blocks() const { return checkpoint_block_ids_.size(); }

  struct Stats {
    Counter records;           // Records durably appended.
    Counter appended_bytes;    // Encoded record bytes (not block rewrites).
    Counter log_block_writes;  // Tail-block programs issued.
    Counter superblock_writes;
    Counter checkpoints;       // Successful WriteCheckpoint() calls.
    Counter checkpoint_bytes;  // Snapshot payload bytes persisted.
    Counter compacted_blocks;  // Old checkpoint + log blocks reclaimed.
  };
  const Stats& stats() const { return stats_; }

  // Observability (nullable; null detaches): counter mirrors plus log/lsn
  // gauges under "journal/". The machine re-attaches after recovery
  // rebuilds the journal (keyed collectors replace).
  void AttachObs(Obs* obs);

 private:
  // Writes the live state as generation_ + 1 into the alternate superblock
  // slot; bumps generation_ on success.
  Status WriteSuperblock();
  // Writes `image` (a full block) to logical `block` on the journal's
  // tenant. `priority` distinguishes append/commit traffic (kFlush) from
  // compaction (kCleaner).
  Status WriteBlock(uint64_t block, std::span<const uint8_t> image,
                    IoPriority priority);

  StorageManager& storage_;
  MetadataJournalOptions options_;
  bool formatted_ = false;
  uint64_t generation_ = 0;
  uint64_t next_lsn_ = 1;
  uint64_t checkpoint_lsn_ = 0;
  SimTime checkpoint_time_ = 0;
  uint64_t checkpoint_bytes_ = 0;
  std::vector<uint64_t> checkpoint_block_ids_;  // Chain order.
  std::vector<uint64_t> log_block_ids_;         // Oldest first; back = tail.
  // Image of the tail block (always block_bytes long, zero beyond
  // tail_used_). Rewritten in place on every Append.
  std::vector<uint8_t> tail_buf_;
  uint64_t tail_used_ = 0;
  Stats stats_;
  Obs* obs_ = nullptr;
};

}  // namespace ssmc

#endif  // SSMC_SRC_JOURNAL_JOURNAL_H_
