// On-flash format of the metadata journal (ssmc_journal).
//
// Three kinds of flash blocks, all sized to the flash store's logical block:
//
//  * Superblock — two fixed logical blocks (A/B) written alternately, each
//    carrying a generation number and a CRC. The valid superblock with the
//    highest generation is the mount anchor; a torn superblock program
//    leaves the sibling valid, so the superblock write IS the commit point
//    of every journal state change.
//  * Checkpoint chain — a dense snapshot of the namespace at some LSN,
//    split across a chain of blocks (each block's header names its
//    successor). Immutable once the superblock that references it lands.
//  * Log blocks — an append-only chain of mutation records. Each log block
//    header names the previously sealed block, so sealed blocks are never
//    rewritten; only the unsealed tail block is replaced (out of place via
//    the FTL) as records accumulate, and the replacement is published by
//    the next superblock generation.
//
// Records carry a monotonic LSN and a per-record CRC32 over type + LSN +
// payload. Recovery replays the checkpoint, then the log chain in LSN
// order; the first record whose CRC fails ends replay (a half-written tail
// from a power failure mid-program).

#ifndef SSMC_SRC_JOURNAL_JOURNAL_FORMAT_H_
#define SSMC_SRC_JOURNAL_JOURNAL_FORMAT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/io_request.h"

namespace ssmc {

// CRC-32 (IEEE 802.3 polynomial, bit-reflected), the checksum on every
// journal record and superblock.
uint32_t Crc32(std::span<const uint8_t> data);
uint32_t Crc32(uint32_t seed, std::span<const uint8_t> data);

// Metadata mutations the log records. Values are on-media — never renumber.
enum class JournalRecordType : uint8_t {
  kMkdir = 1,        // path
  kCreate = 2,       // file_id, tenant, path
  kUnlink = 3,       // path
  kRmdir = 4,        // path
  kRename = 5,       // path (from), path2 (to)
  kSetSize = 6,      // file_id, size
  kExtent = 7,       // file_id, block_index, flash_block (kNoFlashBlock = hole)
  kTenantStamp = 8,  // file_id, tenant (last writer changed)
  kCheckpoint = 9,   // lsn of the checkpoint this record announces
};
const char* JournalRecordTypeName(JournalRecordType type);

inline constexpr uint64_t kNoFlashBlock = ~uint64_t{0};

// One decoded log record. Which fields are meaningful depends on `type`
// (see the enum); unused fields stay zero/empty.
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kMkdir;
  uint64_t lsn = 0;
  uint64_t file_id = 0;
  uint64_t size = 0;         // kSetSize; block_index for kExtent.
  uint64_t flash_block = 0;  // kExtent target; lsn payload for kCheckpoint.
  TenantId tenant = kDefaultTenant;
  std::string path;
  std::string path2;  // Rename destination.
};

// Appends the record's wire encoding (header + CRC + payload) to `out`.
// Returns the encoded size in bytes.
uint64_t EncodeJournalRecord(const JournalRecord& record,
                             std::vector<uint8_t>& out);

// Size EncodeJournalRecord would append, without encoding.
uint64_t EncodedJournalRecordSize(const JournalRecord& record);

// Decodes one record starting at `data[pos]`. On success advances *pos past
// the record and returns true. Returns false — leaving *pos untouched — on
// a truncated header, a CRC mismatch, or an unknown type: the caller treats
// the remainder of the block as the torn tail of the log.
bool DecodeJournalRecord(std::span<const uint8_t> data, uint64_t* pos,
                         JournalRecord* record);

// --- Block headers ---------------------------------------------------------

// Superblock payload (one per superblock slot). CRC covers every field
// after it, so a torn superblock program is detected and the sibling slot
// (previous generation) wins.
struct JournalSuperblock {
  uint64_t generation = 0;   // Monotonic; highest valid generation mounts.
  uint64_t next_lsn = 1;     // First unassigned LSN.
  uint64_t checkpoint_lsn = 0;       // State below this LSN is checkpointed.
  uint64_t checkpoint_time = 0;      // SimTime the checkpoint was taken.
  uint64_t checkpoint_head = kNoFlashBlock;  // First checkpoint-chain block.
  uint64_t checkpoint_bytes = 0;             // Snapshot payload size.
  uint64_t log_tail = kNoFlashBlock;         // Newest log block (chain head).
  uint64_t log_blocks = 0;                   // Chain length (tail included).
};

// Encodes into exactly `block_bytes` (zero padded); requires block_bytes >=
// kJournalSuperblockBytes.
inline constexpr uint64_t kJournalSuperblockBytes = 80;
void EncodeJournalSuperblock(const JournalSuperblock& sb, uint64_t block_bytes,
                             std::vector<uint8_t>& out);
// False if magic/version/CRC do not validate.
bool DecodeJournalSuperblock(std::span<const uint8_t> raw,
                             JournalSuperblock* sb);

// Checkpoint-chain block header: [magic, next_block]; the rest of the block
// is snapshot payload bytes. The payload's total length and CRC live in the
// superblock (checkpoint_bytes) and the chain is immutable, so per-block
// CRCs are unnecessary — the snapshot is validated as one stream.
inline constexpr uint64_t kCheckpointBlockHeaderBytes = 16;
void EncodeCheckpointBlockHeader(uint64_t next_block, std::vector<uint8_t>& out);
// Returns false on bad magic; else sets *next_block.
bool DecodeCheckpointBlockHeader(std::span<const uint8_t> raw,
                                 uint64_t* next_block);

// Log block header: [magic, prev_block, base_lsn]. Records follow
// back-to-back; the unused remainder of the block is zero, which record
// decoding rejects (a zero length field), ending the block.
inline constexpr uint64_t kLogBlockHeaderBytes = 24;
void EncodeLogBlockHeader(uint64_t prev_block, uint64_t base_lsn,
                          std::vector<uint8_t>& out);
bool DecodeLogBlockHeader(std::span<const uint8_t> raw, uint64_t* prev_block,
                          uint64_t* base_lsn);

}  // namespace ssmc

#endif  // SSMC_SRC_JOURNAL_JOURNAL_FORMAT_H_
