#include "src/journal/journal_format.h"

#include <array>
#include <cstring>

namespace ssmc {
namespace {

// Magics are 8 ASCII bytes stored little-endian so a hex dump reads them.
constexpr uint64_t kSuperblockMagic = 0x314E524A434D5353ull;  // "SSMCJRN1"
constexpr uint64_t kCheckpointMagic = 0x50484B43434D5353ull;  // "SSMCCKHP"
constexpr uint64_t kLogMagic = 0x30474F4C434D5353ull;         // "SSMCLOG0"
constexpr uint16_t kFormatVersion = 1;

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void AppendU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

uint64_t ReadU64(std::span<const uint8_t> raw, uint64_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t{raw[pos + i]} << (8 * i);
  return v;
}

uint32_t ReadU32(std::span<const uint8_t> raw, uint64_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t{raw[pos + i]} << (8 * i);
  return v;
}

uint16_t ReadU16(std::span<const uint8_t> raw, uint64_t pos) {
  return static_cast<uint16_t>(uint16_t{raw[pos]} |
                               (uint16_t{raw[pos + 1]} << 8));
}

bool KnownRecordType(uint8_t type) {
  return type >= static_cast<uint8_t>(JournalRecordType::kMkdir) &&
         type <= static_cast<uint8_t>(JournalRecordType::kCheckpoint);
}

// Record wire layout:
//   u32 crc        (over everything after this field)
//   u32 length     (bytes after the length field itself)
//   u8  type
//   u64 lsn
//   u64 file_id | u64 size/index | u64 flash_block | u16 tenant
//   u16 path_len, path bytes, u16 path2_len, path2 bytes
constexpr uint64_t kRecordFixedBytes =
    4 + 4 + 1 + 8 + 8 + 8 + 8 + 2 + 2 + 2;

}  // namespace

uint32_t Crc32(uint32_t seed, std::span<const uint8_t> data) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (uint8_t byte : data) c = table[(c ^ byte) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::span<const uint8_t> data) { return Crc32(0, data); }

const char* JournalRecordTypeName(JournalRecordType type) {
  switch (type) {
    case JournalRecordType::kMkdir: return "mkdir";
    case JournalRecordType::kCreate: return "create";
    case JournalRecordType::kUnlink: return "unlink";
    case JournalRecordType::kRmdir: return "rmdir";
    case JournalRecordType::kRename: return "rename";
    case JournalRecordType::kSetSize: return "set_size";
    case JournalRecordType::kExtent: return "extent";
    case JournalRecordType::kTenantStamp: return "tenant_stamp";
    case JournalRecordType::kCheckpoint: return "checkpoint";
  }
  return "unknown";
}

uint64_t EncodedJournalRecordSize(const JournalRecord& record) {
  return kRecordFixedBytes + record.path.size() + record.path2.size();
}

uint64_t EncodeJournalRecord(const JournalRecord& record,
                             std::vector<uint8_t>& out) {
  const uint64_t start = out.size();
  const uint64_t total = EncodedJournalRecordSize(record);
  const uint32_t length = static_cast<uint32_t>(total - 8);  // After crc+len.
  AppendU32(out, 0);  // CRC placeholder.
  AppendU32(out, length);
  out.push_back(static_cast<uint8_t>(record.type));
  AppendU64(out, record.lsn);
  AppendU64(out, record.file_id);
  AppendU64(out, record.size);
  AppendU64(out, record.flash_block);
  AppendU16(out, record.tenant);
  AppendU16(out, static_cast<uint16_t>(record.path.size()));
  out.insert(out.end(), record.path.begin(), record.path.end());
  AppendU16(out, static_cast<uint16_t>(record.path2.size()));
  out.insert(out.end(), record.path2.begin(), record.path2.end());
  // CRC covers the length field onward so a truncated or bit-flipped record
  // fails closed.
  const uint32_t crc = Crc32(
      std::span<const uint8_t>(out.data() + start + 4, total - 4));
  out[start + 0] = static_cast<uint8_t>(crc);
  out[start + 1] = static_cast<uint8_t>(crc >> 8);
  out[start + 2] = static_cast<uint8_t>(crc >> 16);
  out[start + 3] = static_cast<uint8_t>(crc >> 24);
  return total;
}

bool DecodeJournalRecord(std::span<const uint8_t> data, uint64_t* pos,
                         JournalRecord* record) {
  const uint64_t p = *pos;
  if (data.size() - p < kRecordFixedBytes) return false;
  const uint32_t crc = ReadU32(data, p);
  const uint32_t length = ReadU32(data, p + 4);
  const uint64_t total = uint64_t{length} + 8;
  if (length < kRecordFixedBytes - 8 || total > data.size() - p) return false;
  if (Crc32(data.subspan(p + 4, total - 4)) != crc) return false;
  const uint8_t type = data[p + 8];
  if (!KnownRecordType(type)) return false;
  record->type = static_cast<JournalRecordType>(type);
  record->lsn = ReadU64(data, p + 9);
  record->file_id = ReadU64(data, p + 17);
  record->size = ReadU64(data, p + 25);
  record->flash_block = ReadU64(data, p + 33);
  record->tenant = ReadU16(data, p + 41);
  const uint16_t path_len = ReadU16(data, p + 43);
  if (kRecordFixedBytes - 2 + path_len > total) return false;
  record->path.assign(reinterpret_cast<const char*>(data.data() + p + 45),
                      path_len);
  const uint64_t p2_at = p + 45 + path_len;
  const uint16_t path2_len = ReadU16(data, p2_at);
  if (kRecordFixedBytes + path_len + path2_len != total) return false;
  record->path2.assign(
      reinterpret_cast<const char*>(data.data() + p2_at + 2), path2_len);
  *pos = p + total;
  return true;
}

void EncodeJournalSuperblock(const JournalSuperblock& sb, uint64_t block_bytes,
                             std::vector<uint8_t>& out) {
  out.clear();
  out.reserve(block_bytes);
  AppendU64(out, kSuperblockMagic);
  AppendU32(out, 0);  // CRC placeholder (over every byte after it).
  AppendU16(out, kFormatVersion);
  AppendU16(out, 0);  // Reserved.
  AppendU64(out, sb.generation);
  AppendU64(out, sb.next_lsn);
  AppendU64(out, sb.checkpoint_lsn);
  AppendU64(out, sb.checkpoint_time);
  AppendU64(out, sb.checkpoint_head);
  AppendU64(out, sb.checkpoint_bytes);
  AppendU64(out, sb.log_tail);
  AppendU64(out, sb.log_blocks);
  const uint32_t crc = Crc32(
      std::span<const uint8_t>(out.data() + 12, kJournalSuperblockBytes - 12));
  out[8] = static_cast<uint8_t>(crc);
  out[9] = static_cast<uint8_t>(crc >> 8);
  out[10] = static_cast<uint8_t>(crc >> 16);
  out[11] = static_cast<uint8_t>(crc >> 24);
  out.resize(block_bytes, 0);
}

bool DecodeJournalSuperblock(std::span<const uint8_t> raw,
                             JournalSuperblock* sb) {
  if (raw.size() < kJournalSuperblockBytes) return false;
  if (ReadU64(raw, 0) != kSuperblockMagic) return false;
  const uint32_t crc = ReadU32(raw, 8);
  if (Crc32(raw.subspan(12, kJournalSuperblockBytes - 12)) != crc) return false;
  if (ReadU16(raw, 12) != kFormatVersion) return false;
  sb->generation = ReadU64(raw, 16);
  sb->next_lsn = ReadU64(raw, 24);
  sb->checkpoint_lsn = ReadU64(raw, 32);
  sb->checkpoint_time = ReadU64(raw, 40);
  sb->checkpoint_head = ReadU64(raw, 48);
  sb->checkpoint_bytes = ReadU64(raw, 56);
  sb->log_tail = ReadU64(raw, 64);
  sb->log_blocks = ReadU64(raw, 72);
  return true;
}

void EncodeCheckpointBlockHeader(uint64_t next_block,
                                 std::vector<uint8_t>& out) {
  AppendU64(out, kCheckpointMagic);
  AppendU64(out, next_block);
}

bool DecodeCheckpointBlockHeader(std::span<const uint8_t> raw,
                                 uint64_t* next_block) {
  if (raw.size() < kCheckpointBlockHeaderBytes) return false;
  if (ReadU64(raw, 0) != kCheckpointMagic) return false;
  *next_block = ReadU64(raw, 8);
  return true;
}

void EncodeLogBlockHeader(uint64_t prev_block, uint64_t base_lsn,
                          std::vector<uint8_t>& out) {
  AppendU64(out, kLogMagic);
  AppendU64(out, prev_block);
  AppendU64(out, base_lsn);
}

bool DecodeLogBlockHeader(std::span<const uint8_t> raw, uint64_t* prev_block,
                          uint64_t* base_lsn) {
  if (raw.size() < kLogBlockHeaderBytes) return false;
  if (ReadU64(raw, 0) != kLogMagic) return false;
  *prev_block = ReadU64(raw, 8);
  *base_lsn = ReadU64(raw, 16);
  return true;
}

}  // namespace ssmc
