#include "src/journal/journal.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/obs/obs.h"

namespace ssmc {

MetadataJournal::MetadataJournal(StorageManager& storage,
                                 MetadataJournalOptions options)
    : storage_(storage), options_(options) {}

MetadataJournal::~MetadataJournal() {
  if (obs_ != nullptr) {
    obs_->metrics().FlushAndRemoveCollector("journal");
  }
}

Status MetadataJournal::WriteBlock(uint64_t block,
                                   std::span<const uint8_t> image,
                                   IoPriority priority) {
  // The log tail is the hottest block on the card; checkpoint/superblock
  // traffic is read-mostly. Route by class so bank segregation (when on)
  // places them sensibly.
  const WriteStream stream =
      priority == IoPriority::kCleaner ? WriteStream::kRelocation
                                       : WriteStream::kUser;
  Result<Duration> wrote = storage_.flash_store().Write(
      block, image, stream, priority, kJournalTenant);
  return wrote.ok() ? Status::Ok() : wrote.status();
}

Status MetadataJournal::WriteSuperblock() {
  JournalSuperblock sb;
  sb.generation = generation_ + 1;
  sb.next_lsn = next_lsn_;
  sb.checkpoint_lsn = checkpoint_lsn_;
  sb.checkpoint_time = static_cast<uint64_t>(checkpoint_time_);
  sb.checkpoint_head =
      checkpoint_block_ids_.empty() ? kNoFlashBlock : checkpoint_block_ids_[0];
  sb.checkpoint_bytes = checkpoint_bytes_;
  sb.log_tail = log_block_ids_.empty() ? kNoFlashBlock : log_block_ids_.back();
  sb.log_blocks = log_block_ids_.size();

  std::vector<uint8_t> image;
  EncodeJournalSuperblock(sb, storage_.page_bytes(), image);
  // Alternate slots by generation so the previous generation always
  // survives a torn program of the current one.
  const uint64_t slot = (sb.generation % 2 == 1) ? kSuperblockA : kSuperblockB;
  SSMC_RETURN_IF_ERROR(WriteBlock(slot, image, IoPriority::kFlush));
  generation_ = sb.generation;
  stats_.superblock_writes.Add();
  return Status::Ok();
}

Status MetadataJournal::Format() {
  assert(!formatted_ && "journal already formatted");
  SSMC_RETURN_IF_ERROR(storage_.ReserveFlashBlock(kSuperblockA));
  SSMC_RETURN_IF_ERROR(storage_.ReserveFlashBlock(kSuperblockB));
  generation_ = 0;
  next_lsn_ = 1;
  checkpoint_lsn_ = 0;
  checkpoint_time_ = 0;
  checkpoint_bytes_ = 0;
  checkpoint_block_ids_.clear();
  log_block_ids_.clear();
  tail_buf_.assign(storage_.page_bytes(), 0);
  tail_used_ = 0;
  SSMC_RETURN_IF_ERROR(WriteSuperblock());
  formatted_ = true;
  return Status::Ok();
}

Result<uint64_t> MetadataJournal::Append(JournalRecord record) {
  assert(formatted_ && "journal not formatted");
  const uint64_t bs = storage_.page_bytes();
  record.lsn = next_lsn_;
  const uint64_t size = EncodedJournalRecordSize(record);
  if (size > bs - kLogBlockHeaderBytes) {
    return FailedPreconditionError("journal record larger than a log block");
  }

  const bool fits =
      !log_block_ids_.empty() && tail_used_ + size <= bs;
  if (fits) {
    // Steady state: splice the record into the tail image and rewrite that
    // one block. The store's out-of-place program keeps the previous tail
    // version mapped if this write tears, so acked records are never at
    // risk; on failure the spliced bytes are zeroed back out so a later
    // Append cannot resurrect an un-acked record.
    std::vector<uint8_t> encoded;
    EncodeJournalRecord(record, encoded);
    std::memcpy(tail_buf_.data() + tail_used_, encoded.data(), size);
    Status wrote =
        WriteBlock(log_block_ids_.back(), tail_buf_, IoPriority::kFlush);
    if (!wrote.ok()) {
      std::memset(tail_buf_.data() + tail_used_, 0, size);
      return wrote;
    }
    tail_used_ += size;
  } else {
    // Tail full (or no log yet): open a new tail block, then publish it
    // with a superblock write. Until the superblock lands, the old tail is
    // still the chain head and the store still holds its last image — a
    // crash anywhere in between recovers the pre-append state.
    Result<uint64_t> block = storage_.AllocateFlashBlock();
    if (!block.ok()) {
      return block.status();
    }
    const uint64_t prev =
        log_block_ids_.empty() ? kNoFlashBlock : log_block_ids_.back();
    std::vector<uint8_t> image;
    image.reserve(bs);
    EncodeLogBlockHeader(prev, record.lsn, image);
    EncodeJournalRecord(record, image);
    const uint64_t used = image.size();
    image.resize(bs, 0);
    Status wrote = WriteBlock(block.value(), image, IoPriority::kFlush);
    if (wrote.ok()) {
      log_block_ids_.push_back(block.value());
      wrote = WriteSuperblock();
      if (!wrote.ok()) {
        log_block_ids_.pop_back();
      }
    }
    if (!wrote.ok()) {
      (void)storage_.FreeFlashBlock(block.value());
      return wrote;
    }
    tail_buf_ = std::move(image);
    tail_used_ = used;
  }

  next_lsn_ = record.lsn + 1;
  stats_.records.Add();
  stats_.appended_bytes.Add(size);
  stats_.log_block_writes.Add();
  return record.lsn;
}

Status MetadataJournal::WriteCheckpoint(std::span<const uint8_t> snapshot) {
  assert(formatted_ && "journal not formatted");
  const uint64_t bs = storage_.page_bytes();
  const uint64_t payload_per_block = bs - kCheckpointBlockHeaderBytes;
  const uint64_t nblocks =
      (snapshot.size() + payload_per_block - 1) / payload_per_block;

  // Stage the new chain in freshly allocated blocks. Nothing references
  // them until the superblock commits, so any failure here just returns
  // the blocks and leaves the journal's durable state untouched.
  std::vector<uint64_t> chain;
  chain.reserve(nblocks);
  auto fail_cleanup = [&](const Status& status) {
    for (const uint64_t block : chain) {
      (void)storage_.FreeFlashBlock(block);
    }
    return status;
  };
  for (uint64_t i = 0; i < nblocks; ++i) {
    Result<uint64_t> block = storage_.AllocateFlashBlock();
    if (!block.ok()) {
      return fail_cleanup(block.status());
    }
    chain.push_back(block.value());
  }
  std::vector<uint8_t> image;
  for (uint64_t i = 0; i < nblocks; ++i) {
    image.clear();
    image.reserve(bs);
    const uint64_t next = i + 1 < nblocks ? chain[i + 1] : kNoFlashBlock;
    EncodeCheckpointBlockHeader(next, image);
    const uint64_t off = i * payload_per_block;
    const uint64_t len = std::min(payload_per_block, snapshot.size() - off);
    image.insert(image.end(), snapshot.begin() + static_cast<ptrdiff_t>(off),
                 snapshot.begin() + static_cast<ptrdiff_t>(off + len));
    image.resize(bs, 0);
    // Compaction is background reclamation: cleaner-class, absorbed by the
    // banks like the store's own GC.
    Status wrote = WriteBlock(chain[i], image, IoPriority::kCleaner);
    if (!wrote.ok()) {
      return fail_cleanup(wrote);
    }
  }

  // Commit: swap in the new chain, truncate the log, write the superblock.
  std::vector<uint64_t> old_checkpoint = std::move(checkpoint_block_ids_);
  std::vector<uint64_t> old_log = std::move(log_block_ids_);
  const uint64_t old_ckpt_lsn = checkpoint_lsn_;
  const SimTime old_ckpt_time = checkpoint_time_;
  const uint64_t old_ckpt_bytes = checkpoint_bytes_;
  checkpoint_block_ids_ = std::move(chain);
  log_block_ids_.clear();
  checkpoint_lsn_ = next_lsn_;
  checkpoint_time_ = storage_.flash_store().device().clock().now();
  checkpoint_bytes_ = snapshot.size();
  Status committed = WriteSuperblock();
  if (!committed.ok()) {
    chain = std::move(checkpoint_block_ids_);
    checkpoint_block_ids_ = std::move(old_checkpoint);
    log_block_ids_ = std::move(old_log);
    checkpoint_lsn_ = old_ckpt_lsn;
    checkpoint_time_ = old_ckpt_time;
    checkpoint_bytes_ = old_ckpt_bytes;
    return fail_cleanup(committed);
  }
  tail_buf_.assign(bs, 0);
  tail_used_ = 0;

  // The old checkpoint and the whole old log are dead now that the new
  // generation references neither — reclaim them.
  uint64_t freed = 0;
  for (const uint64_t block : old_checkpoint) {
    if (storage_.FreeFlashBlock(block).ok()) {
      ++freed;
    }
  }
  for (const uint64_t block : old_log) {
    if (storage_.FreeFlashBlock(block).ok()) {
      ++freed;
    }
  }
  stats_.checkpoints.Add();
  stats_.checkpoint_bytes.Add(snapshot.size());
  stats_.compacted_blocks.Add(freed);

  // Open the fresh log with a record announcing the checkpoint.
  JournalRecord marker;
  marker.type = JournalRecordType::kCheckpoint;
  marker.flash_block = checkpoint_lsn_;
  Result<uint64_t> appended = Append(marker);
  return appended.ok() ? Status::Ok() : appended.status();
}

Result<MetadataJournal::MountState> MetadataJournal::Recover() {
  assert(!formatted_ && "Recover on a live journal");
  FlashStore& store = storage_.flash_store();
  FlashDevice& device = store.device();
  const uint64_t bs = storage_.page_bytes();
  SSMC_RETURN_IF_ERROR(storage_.ReserveFlashBlock(kSuperblockA));
  SSMC_RETURN_IF_ERROR(storage_.ReserveFlashBlock(kSuperblockB));

  // Mount reads are issued non-blocking: every chain block's successor id
  // sits in the first bytes of its header, so a real controller overlaps
  // the pointer chase with payload streaming and the banks run in
  // parallel. The clock advances to the busiest bank's completion below —
  // mount time is the bank-parallel read time, not a serial walk.
  const IoIssue mount_read{IoPriority::kForeground, /*blocking=*/false,
                           kJournalTenant};
  const SimTime mount_start = device.clock().now();

  // 1. Superblocks: the valid slot with the highest generation wins.
  JournalSuperblock sb;
  bool have_sb = false;
  std::vector<uint8_t> raw(bs);
  for (const uint64_t slot : {kSuperblockA, kSuperblockB}) {
    if (!store.Read(slot, raw, mount_read).ok()) {
      continue;  // Never written (or torn away): the sibling decides.
    }
    JournalSuperblock candidate;
    if (DecodeJournalSuperblock(raw, &candidate) &&
        (!have_sb || candidate.generation > sb.generation)) {
      sb = candidate;
      have_sb = true;
    }
  }
  if (!have_sb) {
    return FailedPreconditionError("no valid journal superblock");
  }

  MountState state;
  state.checkpoint_lsn = sb.checkpoint_lsn;
  state.checkpoint_time = static_cast<SimTime>(sb.checkpoint_time);

  // 2. Checkpoint chain.
  uint64_t block = sb.checkpoint_head;
  state.checkpoint.reserve(sb.checkpoint_bytes);
  while (block != kNoFlashBlock) {
    if (!store.Read(block, raw, mount_read).ok()) {
      return DataLossError("journal checkpoint block " +
                           std::to_string(block) + " unreadable");
    }
    uint64_t next = kNoFlashBlock;
    if (!DecodeCheckpointBlockHeader(raw, &next)) {
      return DataLossError("journal checkpoint chain is corrupt");
    }
    SSMC_RETURN_IF_ERROR(storage_.ReserveFlashBlock(block));
    checkpoint_block_ids_.push_back(block);
    const uint64_t want = sb.checkpoint_bytes - state.checkpoint.size();
    const uint64_t take = std::min(want, bs - kCheckpointBlockHeaderBytes);
    state.checkpoint.insert(
        state.checkpoint.end(), raw.begin() + kCheckpointBlockHeaderBytes,
        raw.begin() + static_cast<ptrdiff_t>(kCheckpointBlockHeaderBytes +
                                             take));
    block = next;
  }
  if (state.checkpoint.size() != sb.checkpoint_bytes) {
    return DataLossError("journal checkpoint is truncated");
  }

  // 3. Log chain, tail -> oldest, then replay oldest-first.
  std::vector<std::vector<uint8_t>> log_raw;  // Newest first.
  std::vector<uint64_t> log_ids_newest_first;
  block = sb.log_tail;
  while (block != kNoFlashBlock) {
    std::vector<uint8_t> img(bs);
    if (!store.Read(block, img, mount_read).ok()) {
      return DataLossError("journal log block " + std::to_string(block) +
                           " unreadable");
    }
    uint64_t prev = kNoFlashBlock;
    uint64_t base_lsn = 0;
    if (!DecodeLogBlockHeader(img, &prev, &base_lsn)) {
      return DataLossError("journal log chain is corrupt");
    }
    SSMC_RETURN_IF_ERROR(storage_.ReserveFlashBlock(block));
    log_ids_newest_first.push_back(block);
    log_raw.push_back(std::move(img));
    block = prev;
  }
  log_block_ids_.assign(log_ids_newest_first.rbegin(),
                        log_ids_newest_first.rend());

  uint64_t max_lsn = 0;
  for (size_t i = log_raw.size(); i-- > 0;) {
    const std::vector<uint8_t>& img = log_raw[i];
    uint64_t pos = kLogBlockHeaderBytes;
    JournalRecord record;
    // The first undecodable record ends the block: zero padding in a
    // sealed block, or the torn tail of the program a power failure
    // interrupted — either way nothing past it was ever acked.
    while (DecodeJournalRecord(img, &pos, &record)) {
      max_lsn = std::max(max_lsn, record.lsn);
      state.records.push_back(record);
    }
    if (i == 0) {
      // Continue appending where the tail left off, with any torn bytes
      // scrubbed from the image.
      tail_buf_ = img;
      std::fill(tail_buf_.begin() + static_cast<ptrdiff_t>(pos),
                tail_buf_.end(), 0);
      tail_used_ = pos;
    }
  }
  if (log_block_ids_.empty()) {
    tail_buf_.assign(bs, 0);
    tail_used_ = 0;
  }

  // 4. The mount's reads ran bank-parallel; the mount completes when the
  // last bank does.
  SimTime done = device.clock().now();
  for (int bank = 0; bank < device.num_banks(); ++bank) {
    done = std::max(done, device.BankBusyUntil(bank));
  }
  device.clock().AdvanceTo(done);
  (void)mount_start;

  generation_ = sb.generation;
  next_lsn_ = std::max(sb.next_lsn, max_lsn + 1);
  checkpoint_lsn_ = sb.checkpoint_lsn;
  checkpoint_time_ = static_cast<SimTime>(sb.checkpoint_time);
  checkpoint_bytes_ = sb.checkpoint_bytes;
  formatted_ = true;
  return state;
}

void MetadataJournal::AttachObs(Obs* obs) {
  if (obs_ != nullptr && obs_ != obs) {
    obs_->metrics().FlushAndRemoveCollector("journal");
  }
  obs_ = obs;
  if (obs_ == nullptr) {
    return;
  }
  MetricsRegistry& m = obs_->metrics();
  Counter* records = m.AddCounter("journal/records");
  Counter* appended = m.AddCounter("journal/appended_bytes");
  Counter* block_writes = m.AddCounter("journal/log_block_writes");
  Counter* sb_writes = m.AddCounter("journal/superblock_writes");
  Counter* checkpoints = m.AddCounter("journal/checkpoints");
  Counter* ckpt_bytes = m.AddCounter("journal/checkpoint_bytes");
  Counter* compacted = m.AddCounter("journal/compacted_blocks");
  Gauge* log_blocks = m.AddGauge("journal/log_blocks");
  Gauge* lsn = m.AddGauge("journal/next_lsn");
  m.AddCollector("journal", [=, this] {
    auto mirror = [](Counter* dst, const Counter& src) {
      dst->Reset();
      dst->Add(src.value());
    };
    mirror(records, stats_.records);
    mirror(appended, stats_.appended_bytes);
    mirror(block_writes, stats_.log_block_writes);
    mirror(sb_writes, stats_.superblock_writes);
    mirror(checkpoints, stats_.checkpoints);
    mirror(ckpt_bytes, stats_.checkpoint_bytes);
    mirror(compacted, stats_.compacted_blocks);
    log_blocks->Set(static_cast<int64_t>(log_block_ids_.size()));
    lsn->Set(static_cast<int64_t>(next_lsn_));
  });
}

}  // namespace ssmc
