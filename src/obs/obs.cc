#include "src/obs/obs.h"

namespace ssmc {

Obs::Obs(ObsOptions options) : tracer_(options.trace_capacity) {
  tracer_.set_default_cell(options.cell);
}

MetricsSnapshot Obs::SnapshotMetrics() {
  std::string prefix;
  if (cell() >= 0) {
    prefix = "cell" + std::to_string(cell()) + "/";
  }
  MetricsSnapshot snapshot = metrics_.Snapshot(prefix);
  snapshot.Set(prefix + "obs/trace_events_retained",
               MetricValue::MakeCounter(tracer_.size()));
  snapshot.Set(prefix + "obs/trace_events_dropped",
               MetricValue::MakeCounter(tracer_.dropped()));
  return snapshot;
}

}  // namespace ssmc
