#include "src/obs/span_tracer.h"

#include <algorithm>
#include <cassert>

#include "src/support/log.h"

namespace ssmc {

SpanTracer::SpanTracer(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

int SpanTracer::RegisterTrack(const std::string& name) {
  for (size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) {
      return static_cast<int>(i);
    }
  }
  tracks_.push_back(name);
  return static_cast<int>(tracks_.size() - 1);
}

void SpanTracer::Push(TraceEvent event) {
  if (event.cell < 0) {
    event.cell = default_cell_ >= 0 ? default_cell_ : CurrentLogCell();
  }
  if (size_ < capacity_) {
    if ((size_ >> kSlabShift) == slabs_.size()) {
      slabs_.emplace_back(new TraceEvent[kSlabEvents]);
    }
    At(size_) = event;
    size_ += 1;
    return;
  }
  // Flight-recorder overwrite: the oldest retained event is lost, exactly
  // counted.
  At(head_) = event;
  head_ += 1;
  if (head_ == capacity_) {
    head_ = 0;
  }
  dropped_ += 1;
}

void SpanTracer::Span(int track, const char* name, SimTime start, Duration dur,
                      TraceArg a, TraceArg b, TraceArg c) {
  assert(track >= 0 && static_cast<size_t>(track) < tracks_.size());
  TraceEvent event;
  event.name = name;
  event.start = start;
  event.dur = std::max<Duration>(0, dur);
  event.track = track;
  event.args[0] = a;
  event.args[1] = b;
  event.args[2] = c;
  Push(event);
}

void SpanTracer::Instant(int track, const char* name, SimTime at, TraceArg a,
                         TraceArg b) {
  assert(track >= 0 && static_cast<size_t>(track) < tracks_.size());
  TraceEvent event;
  event.name = name;
  event.start = at;
  event.dur = -1;
  event.track = track;
  event.args[0] = a;
  event.args[1] = b;
  Push(event);
}

std::vector<TraceEvent> SpanTracer::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  ForEach([&out](const TraceEvent& e) { out.push_back(e); });
  return out;
}

}  // namespace ssmc
