// Metrics registry — the named-metric half of the observability subsystem
// (ssmc_obs). Components register typed handles (counters, gauges,
// log-bucketed histograms) or snapshot-time collectors; benches call
// Snapshot() and merge per-cell snapshots into one deterministic report.
//
// Design constraints (see DESIGN.md, "obs"):
//  * hot-path updates are plain pointer writes — a Counter/Gauge/Histogram
//    handle is stable for the registry's lifetime, so instrumented code
//    holds the raw pointer and never does a name lookup per event;
//  * Snapshot() is keyed by name in sorted (std::map) order, so emitted
//    JSON has a stable key order regardless of registration order;
//  * MetricsSnapshot::Merge is associative and commutative with the empty
//    snapshot as identity (counters and gauges sum; histograms bucket-merge,
//    which is exact because the bucketing is fixed log2) — per-cell
//    registries combine into the same aggregate at any --jobs or cell
//    sharding, enforced by obs_test's property suite.

#ifndef SSMC_SRC_OBS_METRICS_H_
#define SSMC_SRC_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/stats.h"

namespace ssmc {

// A point-in-time level (free pages, dirty blocks, write amplification
// scaled, ...). Distinct from Counter, which is monotonic. Merge semantics
// are summation — per-cell gauges describe disjoint machines, so the fleet
// level is the sum of the cell levels.
class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t d) { value_ += d; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Histogram contents copied out of a live Histogram at snapshot time.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  std::array<uint64_t, Histogram::kBuckets> buckets = {};

  void CopyFrom(const Histogram& h);
  // Exact bucket-wise merge (fixed log2 bucketing).
  void Merge(const HistogramData& other);
  bool operator==(const HistogramData& other) const = default;
};

// One snapshot value. The registry produces kCounter/kGauge/kHistogram;
// kInt/kDouble/kBool/kString exist so the shared JSON emitter
// (metrics_export.h) can also carry bench-level fields (benchmark names,
// ns/op, sweep parameters) through the same code path.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram, kInt, kDouble, kBool, kString };
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;
  int64_t gauge = 0;
  double number = 0;
  bool flag = false;
  std::string text;
  HistogramData histogram;

  static MetricValue MakeCounter(uint64_t v);
  static MetricValue MakeGauge(int64_t v);
  static MetricValue MakeInt(int64_t v);
  static MetricValue MakeDouble(double v);
  static MetricValue MakeBool(bool v);
  static MetricValue MakeString(std::string v);

  bool operator==(const MetricValue& other) const = default;
};

// Sorted name -> value map. The sorted order is what makes every emitted
// JSON object's key order stable.
class MetricsSnapshot {
 public:
  using Map = std::map<std::string, MetricValue>;

  void Set(const std::string& name, MetricValue value) {
    values_[name] = std::move(value);
  }
  const Map& values() const { return values_; }
  bool empty() const { return values_.empty(); }
  size_t size() const { return values_.size(); }

  // Folds `other` in. Matching keys combine per kind: counters and gauges
  // sum, histograms bucket-merge. Scalar kinds (kInt/kDouble/kBool/kString)
  // are labels, not accumulators: an existing value is kept. Associative and
  // commutative over the mergeable kinds, with the empty snapshot as
  // identity (obs_test's property suite).
  void Merge(const MetricsSnapshot& other);

  bool operator==(const MetricsSnapshot& other) const = default;

 private:
  Map values_;
};

// Per-cell registry of live metric handles. Not thread-safe — each
// simulation cell is single-threaded and owns its registry; cross-cell
// aggregation happens on immutable snapshots.
class MetricsRegistry {
 public:
  // Registration returns a handle that stays valid for the registry's
  // lifetime (std::deque storage: no reallocation moves). Registering a name
  // twice returns the same handle; a name registered under a different type
  // returns a fresh unnamed handle rather than aliasing (callers should not
  // do this).
  Counter* AddCounter(const std::string& name);
  Gauge* AddGauge(const std::string& name);
  Histogram* AddHistogram(const std::string& name);

  // Snapshot-time pull: the collector runs at the start of every Snapshot()
  // call, typically copying a component's existing Stats struct into gauges
  // registered here. Zero hot-path cost — nothing runs per event. Keyed:
  // re-registering under the same key REPLACES the previous collector, so a
  // component rebuilt after crash recovery re-attaches without leaving a
  // dangling `this` behind. Collectors run in key order.
  void AddCollector(const std::string& key, std::function<void()> collector);

  // Runs the collector under `key` one last time (so its final values persist
  // in the registered handles), then removes it. Components call this from
  // their destructors and on re-attach: the Obs routinely outlives the
  // machine it instrumented (benches snapshot after the run), and a removed
  // collector is the only thing standing between Snapshot() and a dangling
  // `this`. No-op for an unknown key.
  void FlushAndRemoveCollector(const std::string& key);

  // Runs the collectors, then copies every metric out under its name, each
  // key prefixed with `prefix` (cell tagging: "cell3/flash/reads").
  MetricsSnapshot Snapshot(const std::string& prefix = "");

  size_t num_metrics() const { return names_.size(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    size_t index;  // Into the deque for its kind.
  };

  std::map<std::string, Entry> names_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, std::function<void()>> collectors_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_OBS_METRICS_H_
