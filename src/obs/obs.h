// Obs — one simulation cell's observability bundle: a metrics registry plus
// a span tracer, handed to every instrumented layer of that cell's machine
// (device, FTL, storage, FS, replayer) as a single non-owning pointer.
//
// The toggle contract: a null Obs* disables everything. Instrumented hot
// paths guard with one pointer test (`if (obs_ == nullptr) return;`), so the
// disabled configuration costs a predicted branch — measured at <= 2% on the
// bench_micro hot loops (EXPERIMENTS.md M1) — and produces byte-identical
// results, because observability never reads the RNG, never advances the
// clock, and never changes a decision.
//
// One Obs per cell, cells single-threaded: no locking anywhere in the
// subsystem. Cross-cell aggregation happens after the cells finish, on
// snapshots and event streams, in cell order — deterministic at any --jobs.

#ifndef SSMC_SRC_OBS_OBS_H_
#define SSMC_SRC_OBS_OBS_H_

#include <cstddef>

#include "src/obs/metrics.h"
#include "src/obs/span_tracer.h"

namespace ssmc {

struct ObsOptions {
  // Flight-recorder depth: the tracer retains the most recent
  // trace_capacity events and counts exact overwrites.
  size_t trace_capacity = SpanTracer::kDefaultCapacity;
  // Cell id stamped on every event and metrics-snapshot key prefix; -1 =
  // take the parallel harness's thread-local ScopedLogCell tag per event.
  int cell = -1;
};

class Obs {
 public:
  explicit Obs(ObsOptions options = {});

  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  SpanTracer& tracer() { return tracer_; }
  const SpanTracer& tracer() const { return tracer_; }

  int cell() const { return tracer_.default_cell(); }
  void set_cell(int cell) { tracer_.set_default_cell(cell); }

  // Snapshot with this cell's key prefix ("cell3/..."), plus the tracer's
  // own health metrics (retained/dropped event counts).
  MetricsSnapshot SnapshotMetrics();

 private:
  MetricsRegistry metrics_;
  SpanTracer tracer_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_OBS_OBS_H_
