#include "src/obs/metrics_export.h"

#include <algorithm>
#include <fstream>
#include <limits>

#include "src/obs/json_writer.h"

namespace ssmc {
namespace {

void WriteValue(std::ostream& os, const MetricValue& v) {
  switch (v.kind) {
    case MetricValue::Kind::kCounter:
      os << v.counter;
      break;
    case MetricValue::Kind::kGauge:
    case MetricValue::Kind::kInt:
      os << v.gauge;
      break;
    case MetricValue::Kind::kDouble:
      os << FormatJsonNumber(v.number);
      break;
    case MetricValue::Kind::kBool:
      os << (v.flag ? "true" : "false");
      break;
    case MetricValue::Kind::kString:
      WriteJsonString(os, v.text);
      break;
    case MetricValue::Kind::kHistogram: {
      const HistogramData& h = v.histogram;
      const double mean =
          h.count == 0 ? 0.0
                       : static_cast<double>(h.sum) / static_cast<double>(h.count);
      os << "{\"count\": " << h.count << ", \"sum\": " << h.sum
         << ", \"min\": " << h.min << ", \"max\": " << h.max
         << ", \"mean\": " << FormatJsonNumber(mean)
         << ", \"p50\": " << HistogramDataQuantile(h, 0.50)
         << ", \"p95\": " << HistogramDataQuantile(h, 0.95)
         << ", \"p99\": " << HistogramDataQuantile(h, 0.99) << "}";
      break;
    }
  }
}

}  // namespace

uint64_t HistogramDataQuantile(const HistogramData& h, double q) {
  if (h.count == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(h.count - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < h.buckets.size(); ++b) {
    seen += h.buckets[b];
    if (seen > rank) {
      if (b == 0) {
        return 0;
      }
      const uint64_t edge = b >= 63 ? std::numeric_limits<uint64_t>::max()
                                    : (1ULL << b) - 1;
      return std::min(edge, h.max);
    }
  }
  return h.max;
}

void WriteMetricsJson(std::ostream& os, const MetricsSnapshot& snapshot,
                      int indent) {
  const std::string pad(static_cast<size_t>(indent), ' ');
  os << "{";
  bool first = true;
  for (const auto& [name, value] : snapshot.values()) {
    os << (first ? "\n" : ",\n") << pad << "  ";
    first = false;
    WriteJsonString(os, name);
    os << ": ";
    WriteValue(os, value);
  }
  if (!first) {
    os << "\n" << pad;
  }
  os << "}";
}

void WriteMetricsJsonArray(std::ostream& os,
                           const std::vector<MetricsSnapshot>& rows) {
  os << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    // Bench rows are flat scalars: one line per row diffs cleanly.
    os << "  {";
    bool first = true;
    for (const auto& [name, value] : rows[i].values()) {
      os << (first ? "" : ", ");
      first = false;
      WriteJsonString(os, name);
      os << ": ";
      WriteValue(os, value);
    }
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

bool WriteMetricsJsonFile(const std::string& path,
                          const MetricsSnapshot& snapshot) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteMetricsJson(out, snapshot);
  out << "\n";
  return out.good();
}

bool WriteMetricsJsonArrayFile(const std::string& path,
                               const std::vector<MetricsSnapshot>& rows) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteMetricsJsonArray(out, rows);
  return out.good();
}

void WriteHistogramText(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.values()) {
    if (value.kind != MetricValue::Kind::kHistogram ||
        value.histogram.count == 0) {
      continue;
    }
    const HistogramData& h = value.histogram;
    os << name << ": n=" << h.count << " min=" << h.min << " max=" << h.max
       << " p50=" << HistogramDataQuantile(h, 0.50)
       << " p99=" << HistogramDataQuantile(h, 0.99) << "\n";
    const uint64_t peak =
        *std::max_element(h.buckets.begin(), h.buckets.end());
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) {
        continue;
      }
      const uint64_t lo = b == 0 ? 0 : (1ULL << (b - 1));
      const int bar = static_cast<int>((h.buckets[b] * 40 + peak - 1) / peak);
      os << "  [" << lo << ", " << (b >= 63 ? h.max : (1ULL << b) - 1)
         << "]  " << std::string(static_cast<size_t>(bar), '#') << " "
         << h.buckets[b] << "\n";
    }
  }
}

}  // namespace ssmc
