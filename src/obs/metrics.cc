#include "src/obs/metrics.h"

#include <algorithm>

namespace ssmc {

void HistogramData::CopyFrom(const Histogram& h) {
  count = h.count();
  sum = h.sum();
  min = h.min();
  max = h.max();
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    buckets[static_cast<size_t>(b)] = h.bucket_count(b);
  }
}

void HistogramData::Merge(const HistogramData& other) {
  if (other.count == 0) {
    return;
  }
  min = count == 0 ? other.min : std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  for (size_t b = 0; b < buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
}

MetricValue MetricValue::MakeCounter(uint64_t v) {
  MetricValue m;
  m.kind = Kind::kCounter;
  m.counter = v;
  return m;
}

MetricValue MetricValue::MakeGauge(int64_t v) {
  MetricValue m;
  m.kind = Kind::kGauge;
  m.gauge = v;
  return m;
}

MetricValue MetricValue::MakeInt(int64_t v) {
  MetricValue m;
  m.kind = Kind::kInt;
  m.gauge = v;
  return m;
}

MetricValue MetricValue::MakeDouble(double v) {
  MetricValue m;
  m.kind = Kind::kDouble;
  m.number = v;
  return m;
}

MetricValue MetricValue::MakeBool(bool v) {
  MetricValue m;
  m.kind = Kind::kBool;
  m.flag = v;
  return m;
}

MetricValue MetricValue::MakeString(std::string v) {
  MetricValue m;
  m.kind = Kind::kString;
  m.text = std::move(v);
  return m;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.values_) {
    auto [it, inserted] = values_.emplace(name, value);
    if (inserted) {
      continue;
    }
    MetricValue& mine = it->second;
    if (mine.kind != value.kind) {
      continue;  // Kind clash: keep the existing value.
    }
    switch (mine.kind) {
      case MetricValue::Kind::kCounter:
        mine.counter += value.counter;
        break;
      case MetricValue::Kind::kGauge:
        mine.gauge += value.gauge;
        break;
      case MetricValue::Kind::kHistogram:
        mine.histogram.Merge(value.histogram);
        break;
      case MetricValue::Kind::kInt:
      case MetricValue::Kind::kDouble:
      case MetricValue::Kind::kBool:
      case MetricValue::Kind::kString:
        break;  // Labels, not accumulators: first writer wins.
    }
  }
}

Counter* MetricsRegistry::AddCounter(const std::string& name) {
  auto it = names_.find(name);
  if (it != names_.end() && it->second.kind == Kind::kCounter) {
    return &counters_[it->second.index];
  }
  counters_.emplace_back();
  if (it == names_.end()) {
    names_.emplace(name, Entry{Kind::kCounter, counters_.size() - 1});
  }
  return &counters_.back();
}

Gauge* MetricsRegistry::AddGauge(const std::string& name) {
  auto it = names_.find(name);
  if (it != names_.end() && it->second.kind == Kind::kGauge) {
    return &gauges_[it->second.index];
  }
  gauges_.emplace_back();
  if (it == names_.end()) {
    names_.emplace(name, Entry{Kind::kGauge, gauges_.size() - 1});
  }
  return &gauges_.back();
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name) {
  auto it = names_.find(name);
  if (it != names_.end() && it->second.kind == Kind::kHistogram) {
    return &histograms_[it->second.index];
  }
  histograms_.emplace_back();
  if (it == names_.end()) {
    names_.emplace(name, Entry{Kind::kHistogram, histograms_.size() - 1});
  }
  return &histograms_.back();
}

void MetricsRegistry::AddCollector(const std::string& key,
                                   std::function<void()> collector) {
  collectors_[key] = std::move(collector);
}

void MetricsRegistry::FlushAndRemoveCollector(const std::string& key) {
  auto it = collectors_.find(key);
  if (it == collectors_.end()) {
    return;
  }
  it->second();
  collectors_.erase(it);
}

MetricsSnapshot MetricsRegistry::Snapshot(const std::string& prefix) {
  for (const auto& [key, collector] : collectors_) {
    collector();
  }
  MetricsSnapshot snapshot;
  for (const auto& [name, entry] : names_) {
    MetricValue value;
    switch (entry.kind) {
      case Kind::kCounter:
        value = MetricValue::MakeCounter(counters_[entry.index].value());
        break;
      case Kind::kGauge:
        value = MetricValue::MakeGauge(gauges_[entry.index].value());
        break;
      case Kind::kHistogram:
        value.kind = MetricValue::Kind::kHistogram;
        value.histogram.CopyFrom(histograms_[entry.index]);
        break;
    }
    snapshot.Set(prefix + name, std::move(value));
  }
  return snapshot;
}

}  // namespace ssmc
