#include "src/obs/trace_export.h"

#include <cstdio>
#include <fstream>

#include "src/obs/json_writer.h"
#include "src/obs/obs.h"

namespace ssmc {
namespace {

// Trace-event timestamps are microseconds; sim-time is integer ns, so three
// fraction digits represent every timestamp exactly.
std::string Micros(int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns < 0 ? -(ns % 1000) : ns % 1000));
  return std::string(buf);
}

void WriteArgs(std::ostream& os, const TraceEvent& e) {
  bool any = false;
  for (const TraceArg& arg : e.args) {
    if (arg.key == nullptr) {
      continue;
    }
    os << (any ? "," : ",\"args\":{");
    any = true;
    WriteJsonString(os, arg.key);
    os << ":" << arg.value;
  }
  if (any) {
    os << "}";
  }
}

}  // namespace

bool WriteChromeTrace(std::ostream& os, const std::vector<const Obs*>& cells) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&os, &first]() {
    if (!first) {
      os << ",\n";
    }
    first = false;
  };

  // Metadata pass: name every process (cell) and thread (track).
  for (size_t i = 0; i < cells.size(); ++i) {
    const Obs* obs = cells[i];
    if (obs == nullptr) {
      continue;
    }
    const int pid = obs->cell() >= 0 ? obs->cell() : static_cast<int>(i);
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"name\":\"process_name\",\"args\":{\"name\":\"cell " << pid
       << "\"}}";
    const std::vector<std::string>& tracks = obs->tracer().tracks();
    for (size_t t = 0; t < tracks.size(); ++t) {
      sep();
      os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << t
         << ",\"name\":\"thread_name\",\"args\":{\"name\":";
      WriteJsonString(os, tracks[t]);
      os << "}}";
    }
  }

  // Event pass, cell by cell, each flight recorder oldest-first.
  for (size_t i = 0; i < cells.size(); ++i) {
    const Obs* obs = cells[i];
    if (obs == nullptr) {
      continue;
    }
    const int default_pid = obs->cell() >= 0 ? obs->cell() : static_cast<int>(i);
    obs->tracer().ForEach([&](const TraceEvent& e) {
      const int pid = e.cell >= 0 ? e.cell : default_pid;
      sep();
      os << "{\"ph\":\"" << (e.is_span() ? 'X' : 'i') << "\",\"pid\":" << pid
         << ",\"tid\":" << e.track << ",\"name\":";
      WriteJsonString(os, e.name);
      os << ",\"ts\":" << Micros(e.start);
      if (e.is_span()) {
        os << ",\"dur\":" << Micros(e.dur);
      } else {
        os << ",\"s\":\"t\"";
      }
      WriteArgs(os, e);
      os << "}";
    });
  }

  os << "\n],\n\"ssmcDropCounts\":{";
  bool first_drop = true;
  for (size_t i = 0; i < cells.size(); ++i) {
    const Obs* obs = cells[i];
    if (obs == nullptr) {
      continue;
    }
    const int pid = obs->cell() >= 0 ? obs->cell() : static_cast<int>(i);
    os << (first_drop ? "" : ",") << "\"" << pid
       << "\":" << obs->tracer().dropped();
    first_drop = false;
  }
  os << "}}\n";
  return os.good();
}

bool WriteChromeTraceFile(const std::string& path,
                          const std::vector<const Obs*>& cells) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  return WriteChromeTrace(out, cells);
}

}  // namespace ssmc
