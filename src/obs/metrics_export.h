// Metrics-snapshot JSON emitter and text histogram dump — the one code path
// all benches share for machine-readable output (BENCH_micro.json,
// BENCH_scaleout.json, --metrics=out.json). Key order is the snapshot's
// sorted map order; number formatting is FormatJsonNumber (json_writer.h),
// so a given snapshot always serializes to the same bytes.

#ifndef SSMC_SRC_OBS_METRICS_EXPORT_H_
#define SSMC_SRC_OBS_METRICS_EXPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace ssmc {

// Approximate quantile over snapshot bucket data — same semantics as
// Histogram::Quantile (upper bucket edge, clamped to observed max).
uint64_t HistogramDataQuantile(const HistogramData& h, double q);

// Writes one snapshot as a JSON object, keys in sorted order. Histogram
// values become nested objects {"count","sum","min","max","mean","p50",
// "p95","p99"}; counters/gauges/ints are integers, doubles go through
// FormatJsonNumber, bools and strings as themselves.
void WriteMetricsJson(std::ostream& os, const MetricsSnapshot& snapshot,
                      int indent = 0);

// Writes a JSON array with one object per snapshot — the bench-table shape
// (one row per benchmark op / sweep point).
void WriteMetricsJsonArray(std::ostream& os,
                           const std::vector<MetricsSnapshot>& rows);

// Convenience file writers; return false on open/write failure.
bool WriteMetricsJsonFile(const std::string& path,
                          const MetricsSnapshot& snapshot);
bool WriteMetricsJsonArrayFile(const std::string& path,
                               const std::vector<MetricsSnapshot>& rows);

// Human-readable log2-bucket dump of every histogram in the snapshot (one
// '#'-bar block per histogram); no-op if the snapshot holds none.
void WriteHistogramText(std::ostream& os, const MetricsSnapshot& snapshot);

}  // namespace ssmc

#endif  // SSMC_SRC_OBS_METRICS_EXPORT_H_
