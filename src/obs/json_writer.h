// Minimal JSON emission helpers shared by the trace and metrics exporters.
// Formatting is fully deterministic: doubles print through FormatJsonNumber
// (shortest round-trip-free fixed notation the old hand-rolled bench writers
// used), strings escape the JSON control set, and callers are responsible
// for key order (the exporters iterate sorted maps).

#ifndef SSMC_SRC_OBS_JSON_WRITER_H_
#define SSMC_SRC_OBS_JSON_WRITER_H_

#include <ostream>
#include <string>
#include <string_view>

namespace ssmc {

// Escapes `s` for inclusion inside a JSON string literal (no surrounding
// quotes added).
std::string JsonEscape(std::string_view s);

// Writes `"escaped"` including quotes.
void WriteJsonString(std::ostream& os, std::string_view s);

// Deterministic double formatting: integers without a fraction part print as
// integers; otherwise default precision (6 significant digits), matching the
// pre-obs hand-rolled bench JSON writers. NaN/inf degrade to 0 (JSON has no
// spelling for them).
std::string FormatJsonNumber(double value);

}  // namespace ssmc

#endif  // SSMC_SRC_OBS_JSON_WRITER_H_
