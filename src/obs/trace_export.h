// Chrome trace-event exporter: serializes one or more cells' SpanTracer
// flight recorders into the Trace Event Format JSON that chrome://tracing
// and Perfetto (ui.perfetto.dev) open directly.
//
// Mapping: pid = cell id (one "process" per simulated machine/cell, named
// "cell N"), tid = track id within that cell (one named track per flash
// bank, disk arm, priority class, and subsystem — the names come from
// SpanTracer::RegisterTrack). Spans become "ph":"X" complete events with
// ts/dur in microseconds (fractional — sim-time is ns); instants become
// "ph":"i" thread-scoped events. Metadata events name every process and
// thread. A top-level "ssmcDropCounts" object reports each cell's exact
// flight-recorder drop count so a truncated capture is visible in the file
// itself.

#ifndef SSMC_SRC_OBS_TRACE_EXPORT_H_
#define SSMC_SRC_OBS_TRACE_EXPORT_H_

#include <ostream>
#include <string>
#include <vector>

namespace ssmc {

class Obs;

// Writes all cells' events as one Chrome trace JSON document. Null entries
// in `cells` are skipped; events are emitted cell by cell in vector order
// (deterministic given deterministic tracers). Returns false if the stream
// failed.
bool WriteChromeTrace(std::ostream& os, const std::vector<const Obs*>& cells);

// Convenience: open `path` and write. Returns false on open/write failure.
bool WriteChromeTraceFile(const std::string& path,
                          const std::vector<const Obs*>& cells);

}  // namespace ssmc

#endif  // SSMC_SRC_OBS_TRACE_EXPORT_H_
