// Sim-time span tracer — the flight-recorder half of the observability
// subsystem (ssmc_obs). Instrumented components record structured spans
// (a named interval on a track: an IoRequest's service window on its bank, a
// cleaner pass, a checkpoint) and instant events into a bounded per-cell
// ring buffer. The buffer keeps the most recent `capacity` events and counts
// exactly how many older events it overwrote — the drop counter is part of
// the deterministic output, so two runs of the same cell always agree on
// both the retained events and the number lost.
//
// Timestamps are SIMULATED nanoseconds (SimClock), never host time: the
// trace of a run is a pure function of the simulation, byte-identical at any
// --jobs width. Event names and argument keys must be string literals (or
// otherwise outlive the tracer); tracks are registered once by name and
// deduplicated, so components re-attached after a rebuild (crash recovery)
// reuse their tracks.
//
// Cell attribution (the ScopedLogCell fix): every recorded event carries a
// cell id — the tracer's explicitly set default cell when one was assigned
// (RunScaleout tags each user's Obs with the user index, which is sharding-
// independent), else the calling thread's CurrentLogCell() from the parallel
// harness, else -1.

#ifndef SSMC_SRC_OBS_SPAN_TRACER_H_
#define SSMC_SRC_OBS_SPAN_TRACER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/support/units.h"

namespace ssmc {

// One named numeric argument on an event. `key == nullptr` marks an unused
// slot.
struct TraceArg {
  const char* key = nullptr;
  uint64_t value = 0;
};

struct TraceEvent {
  const char* name = "";  // Static string: never owned by the event.
  SimTime start = 0;      // Simulated ns.
  Duration dur = -1;      // Span length; < 0 marks an instant event.
  int track = 0;
  int cell = -1;
  TraceArg args[3];

  bool is_span() const { return dur >= 0; }
};

class SpanTracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit SpanTracer(size_t capacity = kDefaultCapacity);

  // Registers (or finds) a track by display name and returns its id. Track
  // ids are dense and stable; a bank, an arm, a priority class, and each
  // subsystem get one track each.
  int RegisterTrack(const std::string& name);
  const std::vector<std::string>& tracks() const { return tracks_; }

  // Explicit cell tag for every event this tracer records; overrides the
  // thread's CurrentLogCell(). -1 = use the thread tag.
  void set_default_cell(int cell) { default_cell_ = cell; }
  int default_cell() const { return default_cell_; }

  void Span(int track, const char* name, SimTime start, Duration dur,
            TraceArg a = {}, TraceArg b = {}, TraceArg c = {});
  void Instant(int track, const char* name, SimTime at, TraceArg a = {},
               TraceArg b = {});

  size_t capacity() const { return capacity_; }
  // Events currently retained (<= capacity).
  size_t size() const { return size_; }
  // Exact number of events overwritten because the ring was full.
  uint64_t dropped() const { return dropped_; }
  uint64_t total_recorded() const { return dropped_ + size_; }

  // Visits retained events oldest-first (the ring unrolled).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < size_; ++i) {
      size_t idx = head_ + i;
      if (idx >= size_) {
        idx -= size_;  // head_ is nonzero only once the ring is full.
      }
      fn(At(idx));
    }
  }
  // Copies the retained events out, oldest-first (tests, exporters).
  std::vector<TraceEvent> Events() const;

 private:
  // The ring's storage is slabs of kSlabEvents, allocated only as events
  // arrive: an idle tracer costs nothing, a busy one stops allocating for
  // good once the flight-recorder window is full (the request path then
  // performs zero heap allocations per event). Event slots never move, so
  // exporters can hold references across pushes of other slots.
  static constexpr size_t kSlabShift = 12;
  static constexpr size_t kSlabEvents = size_t{1} << kSlabShift;

  TraceEvent& At(size_t i) const {
    return slabs_[i >> kSlabShift][i & (kSlabEvents - 1)];
  }

  void Push(TraceEvent event);

  size_t capacity_;
  std::vector<std::unique_ptr<TraceEvent[]>> slabs_;
  size_t size_ = 0;                 // Events retained so far (<= capacity_).
  size_t head_ = 0;                 // Oldest retained event.
  uint64_t dropped_ = 0;
  int default_cell_ = -1;
  std::vector<std::string> tracks_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_OBS_SPAN_TRACER_H_
