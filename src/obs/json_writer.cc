#include "src/obs/json_writer.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace ssmc {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"' << JsonEscape(s) << '"';
}

std::string FormatJsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  // Default ostream formatting (6 significant digits, exponent fallback) —
  // identical to what the pre-obs hand-rolled bench writers produced, which
  // keeps regenerated BENCH_*.json diffs limited to real changes.
  std::ostringstream os;
  os << value;
  return os.str();
}

}  // namespace ssmc
