#include "src/vm/page_table.h"

#include <cassert>

namespace ssmc {

PageTable::PageTable(uint64_t page_bytes, StorageManager* charge)
    : page_bytes_(page_bytes), charge_(charge) {
  assert(page_bytes_ > 0 && (page_bytes_ & (page_bytes_ - 1)) == 0 &&
         "page size must be a power of two");
  levels_ = LevelsFor(page_bytes_);
}

int PageTable::LevelsFor(uint64_t page_bytes) const {
  int offset_bits = 0;
  while ((uint64_t{1} << offset_bits) < page_bytes) {
    ++offset_bits;
  }
  const int vpn_bits = 64 - offset_bits;
  return (vpn_bits + kBitsPerLevel - 1) / kBitsPerLevel;
}

void PageTable::Charge() const {
  if (charge_ != nullptr) {
    // One page-table-entry read (8 bytes) per level touched.
    charge_->ChargeMetadataRead(8);
  }
}

PageTableEntry* PageTable::Find(uint64_t va) {
  stats_.walks.Add();
  const uint64_t vpn = PageNumberOf(va);
  Node* node = &root_;
  for (int level = levels_ - 1; level > 0; --level) {
    Charge();
    stats_.levels_touched.Add();
    const size_t index =
        (vpn >> (static_cast<uint64_t>(level) * kBitsPerLevel)) & (kFanout - 1);
    Node* child = node->children[index].get();
    if (child == nullptr) {
      return nullptr;
    }
    node = child;
  }
  Charge();
  stats_.levels_touched.Add();
  if (node->entries == nullptr) {
    return nullptr;
  }
  return &(*node->entries)[vpn & (kFanout - 1)];
}

PageTableEntry& PageTable::FindOrCreate(uint64_t va) {
  stats_.walks.Add();
  const uint64_t vpn = PageNumberOf(va);
  Node* node = &root_;
  for (int level = levels_ - 1; level > 0; --level) {
    Charge();
    stats_.levels_touched.Add();
    const size_t index =
        (vpn >> (static_cast<uint64_t>(level) * kBitsPerLevel)) & (kFanout - 1);
    if (node->children[index] == nullptr) {
      node->children[index] = std::make_unique<Node>();
      if (charge_ != nullptr) {
        charge_->ChargeMetadataWrite(8);
      }
    }
    node = node->children[index].get();
  }
  Charge();
  stats_.levels_touched.Add();
  if (node->entries == nullptr) {
    node->entries = std::make_unique<std::array<PageTableEntry, kFanout>>();
  }
  return (*node->entries)[vpn & (kFanout - 1)];
}

void PageTable::Remove(uint64_t va) {
  PageTableEntry* pte = Find(va);
  if (pte == nullptr) {
    return;
  }
  MarkPresent(*pte, false);
  *pte = PageTableEntry{};
}

void PageTable::MarkPresent(PageTableEntry& pte, bool present) {
  if (pte.present == present) {
    return;
  }
  pte.present = present;
  if (present) {
    ++present_count_;
  } else {
    assert(present_count_ > 0);
    --present_count_;
  }
}

}  // namespace ssmc
