// Radix page table for a single-level 64-bit address space.
//
// The paper's organization keeps virtual memory "primarily to provide
// protection across multiple address spaces, rather than to expand
// capacity" (Section 3.2). The table is a classic 9-bit-per-level radix
// tree; with 512-byte pages that is seven levels for a full 64-bit space,
// built lazily. Each level touched during a walk charges one DRAM access
// through the StorageManager, so page-table walks have an honest cost.
//
// A PTE's frame is either a DRAM page index or a physical flash address,
// which is what makes execute-in-place and copy-on-write file mappings
// representable: a read-only PTE can point straight into flash.

#ifndef SSMC_SRC_VM_PAGE_TABLE_H_
#define SSMC_SRC_VM_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>

#include "src/sim/stats.h"
#include "src/storage/storage_manager.h"

namespace ssmc {

enum class FrameBacking { kDram, kFlash, kNvm };

struct PageTableEntry {
  bool present = false;
  bool writable = false;
  bool accessed = false;
  bool dirty = false;
  FrameBacking backing = FrameBacking::kDram;
  // DRAM page index (kDram), physical flash byte address (kFlash), or NVM
  // page index (kNvm — hardware-migrated hot pages, address_space.h).
  uint64_t frame = 0;
};

class PageTable {
 public:
  // charge may be null (tests); then walks cost nothing.
  PageTable(uint64_t page_bytes, StorageManager* charge);

  uint64_t page_bytes() const { return page_bytes_; }
  uint64_t PageNumberOf(uint64_t va) const { return va / page_bytes_; }

  // Walks the tree without allocating. Returns null if unmapped.
  PageTableEntry* Find(uint64_t va);

  // Walks the tree, allocating intermediate nodes as needed.
  PageTableEntry& FindOrCreate(uint64_t va);

  // Clears (unmaps) the entry; no-op if absent.
  void Remove(uint64_t va);

  // Number of present leaf entries.
  uint64_t present_count() const { return present_count_; }

  struct Stats {
    Counter walks;
    Counter levels_touched;
  };
  const Stats& stats() const { return stats_; }

  // The entry is transitioning presence; the table maintains its count.
  void MarkPresent(PageTableEntry& pte, bool present);

 private:
  static constexpr int kBitsPerLevel = 9;
  static constexpr size_t kFanout = 1u << kBitsPerLevel;

  struct Node {
    // Interior: children; leaf level: entries.
    std::array<std::unique_ptr<Node>, kFanout> children;
    std::unique_ptr<std::array<PageTableEntry, kFanout>> entries;
  };

  int LevelsFor(uint64_t page_bytes) const;
  void Charge() const;

  uint64_t page_bytes_;
  StorageManager* charge_;
  int levels_;
  Node root_;
  uint64_t present_count_ = 0;
  mutable Stats stats_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_VM_PAGE_TABLE_H_
