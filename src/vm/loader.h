// Program loader with three launch strategies (Section 3.2, experiment E5):
//  * execute-in-place — map the text segment read-only straight into flash;
//    launch is just a mapping operation, and no DRAM is spent on code;
//  * copy-from-flash — the conventional "load the code segment into primary
//    storage before execution" that the paper says XIP eliminates;
//  * copy-from-disk — the same load on the disk-based baseline machine.
//
// Execution is modeled as instruction fetches over the text segment: the
// first pass is cold (every page fetched in full); subsequent passes touch
// one cache line per page (a warm instruction cache re-checking residency).
// That gives XIP an honest steady-state penalty — flash reads are slower
// than DRAM — so the bench can report the pass count where copying wins.

#ifndef SSMC_SRC_VM_LOADER_H_
#define SSMC_SRC_VM_LOADER_H_

#include <cstdint>
#include <string>

#include "src/fs/file_system.h"
#include "src/fs/memory_fs.h"
#include "src/vm/address_space.h"

namespace ssmc {

struct Program {
  std::string path;           // File holding the text image.
  uint64_t text_bytes = 0;
  uint64_t data_bytes = 0;    // Zero-initialized data segment.
  uint64_t stack_bytes = 16 * kKiB;
};

enum class LaunchStrategy {
  kExecuteInPlace,  // Map text straight into flash; no copy ever.
  kCopyFromFlash,   // Eagerly copy the whole text into DRAM at launch.
  kDemandPaged,     // Copy text pages into DRAM on first fetch (lazily).
  kCopyFromDisk,    // The conventional baseline's eager load.
};

std::string_view LaunchStrategyName(LaunchStrategy s);

struct LaunchResult {
  Duration launch_latency = 0;
  uint64_t dram_pages_after_launch = 0;  // Resident pages in the space.
  uint64_t text_va = 0;
  uint64_t data_va = 0;
  uint64_t stack_va = 0;
  uint64_t text_bytes = 0;
};

// Writes the program's text image into the file system and syncs it so the
// image resides in stable storage (as shipped software would).
Status InstallProgram(FileSystem& fs, const Program& program);

class ProgramLoader {
 public:
  // Conventional layout constants (page-aligned by construction).
  static constexpr uint64_t kTextBase = uint64_t{1} << 32;
  static constexpr uint64_t kDataBase = uint64_t{3} << 32;
  static constexpr uint64_t kStackBase = uint64_t{5} << 32;

  // Launches from the solid-state machine's file system. Strategy must be
  // kExecuteInPlace or kCopyFromFlash.
  Result<LaunchResult> Launch(AddressSpace& space, MemoryFileSystem& fs,
                              const Program& program, LaunchStrategy strategy);

  // Launches on the disk baseline: copies the text from a (disk) file system
  // into anonymous DRAM pages.
  Result<LaunchResult> LaunchFromDisk(AddressSpace& space, FileSystem& disk_fs,
                                      const Program& program);

  // Simulates `passes` executions over the whole text segment. Returns total
  // fetch time. warm_line_bytes is the per-page touch size on warm passes.
  Result<Duration> Execute(AddressSpace& space, const LaunchResult& launch,
                           int passes, uint64_t warm_line_bytes = 64);
};

}  // namespace ssmc

#endif  // SSMC_SRC_VM_LOADER_H_
