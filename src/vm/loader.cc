#include "src/vm/loader.h"

#include <algorithm>
#include <vector>

namespace ssmc {

std::string_view LaunchStrategyName(LaunchStrategy s) {
  switch (s) {
    case LaunchStrategy::kExecuteInPlace:
      return "execute-in-place";
    case LaunchStrategy::kCopyFromFlash:
      return "copy-from-flash";
    case LaunchStrategy::kDemandPaged:
      return "demand-paged";
    case LaunchStrategy::kCopyFromDisk:
      return "copy-from-disk";
  }
  return "?";
}

Status InstallProgram(FileSystem& fs, const Program& program) {
  SSMC_RETURN_IF_ERROR(fs.Create(program.path));
  // Deterministic "machine code" pattern.
  std::vector<uint8_t> text(program.text_bytes);
  for (size_t i = 0; i < text.size(); ++i) {
    text[i] = static_cast<uint8_t>(0x90 ^ (i * 17));
  }
  Result<uint64_t> wrote = fs.Write(program.path, 0, text);
  if (!wrote.ok()) {
    return wrote.status();
  }
  // Shipped software lives in stable storage.
  return fs.Sync();
}

namespace {

// Maps the data and stack segments (identical across strategies).
Status MapDataAndStack(AddressSpace& space, const Program& program,
                       LaunchResult& result) {
  result.data_va = ProgramLoader::kDataBase;
  result.stack_va = ProgramLoader::kStackBase;
  if (program.data_bytes > 0) {
    SSMC_RETURN_IF_ERROR(
        space.MapAnonymous(result.data_va, program.data_bytes, "data"));
  }
  return space.MapAnonymous(result.stack_va, program.stack_bytes, "stack");
}

}  // namespace

Result<LaunchResult> ProgramLoader::Launch(AddressSpace& space,
                                           MemoryFileSystem& fs,
                                           const Program& program,
                                           LaunchStrategy strategy) {
  if (strategy == LaunchStrategy::kCopyFromDisk) {
    return InvalidArgumentError(
        "use LaunchFromDisk for the disk-based baseline");
  }
  LaunchResult result;
  result.text_va = kTextBase;
  result.text_bytes = program.text_bytes;
  SimClock& clock = fs.storage().flash_store().device().clock();
  const SimTime start = clock.now();

  if (strategy == LaunchStrategy::kExecuteInPlace) {
    // "Programs residing in flash memory can be executed in place ... There
    // is no need to load their code segment into primary storage."
    SSMC_RETURN_IF_ERROR(space.MapXip(result.text_va, fs, program.path));
  } else if (strategy == LaunchStrategy::kDemandPaged) {
    SSMC_RETURN_IF_ERROR(space.MapFileDemandCopy(result.text_va, fs,
                                                 program.path,
                                                 /*writable=*/false));
  } else {
    SSMC_RETURN_IF_ERROR(
        space.MapFileCow(result.text_va, fs, program.path, /*writable=*/false));
    // Eager copy into DRAM — the conventional load.
    Result<Duration> populated = space.Populate(result.text_va);
    if (!populated.ok()) {
      return populated.status();
    }
  }
  SSMC_RETURN_IF_ERROR(MapDataAndStack(space, program, result));
  result.launch_latency = clock.now() - start;
  result.dram_pages_after_launch = space.resident_dram_pages();
  return result;
}

Result<LaunchResult> ProgramLoader::LaunchFromDisk(AddressSpace& space,
                                                   FileSystem& disk_fs,
                                                   const Program& program) {
  LaunchResult result;
  result.text_va = kTextBase;
  result.text_bytes = program.text_bytes;
  // The clock is shared machine-wide; reach it through the storage manager.
  SimClock& clock = space.storage().dram().clock();
  const SimTime start = clock.now();

  SSMC_RETURN_IF_ERROR(
      space.MapAnonymous(result.text_va, program.text_bytes, "text"));
  // Copy the image from disk into the anonymous region, page by page.
  const uint64_t chunk = 8 * kKiB;
  std::vector<uint8_t> buffer(chunk);
  uint64_t offset = 0;
  while (offset < program.text_bytes) {
    const uint64_t n = std::min(chunk, program.text_bytes - offset);
    buffer.resize(n);
    Result<uint64_t> read = disk_fs.Read(program.path, offset, buffer);
    if (!read.ok()) {
      return read.status();
    }
    Result<Duration> wrote = space.Write(result.text_va + offset, buffer);
    if (!wrote.ok()) {
      return wrote.status();
    }
    offset += n;
  }
  SSMC_RETURN_IF_ERROR(MapDataAndStack(space, program, result));
  result.launch_latency = clock.now() - start;
  result.dram_pages_after_launch = space.resident_dram_pages();
  return result;
}

Result<Duration> ProgramLoader::Execute(AddressSpace& space,
                                        const LaunchResult& launch,
                                        int passes, uint64_t warm_line_bytes) {
  // Measure wall (simulated) time: fetches, page-table walks, and demand
  // faults all advance the shared clock.
  SimClock& clock = space.storage().dram().clock();
  const SimTime start = clock.now();
  const uint64_t page = space.page_bytes();
  for (int pass = 0; pass < passes; ++pass) {
    for (uint64_t va = launch.text_va;
         va < launch.text_va + launch.text_bytes; va += page) {
      const uint64_t remaining = launch.text_va + launch.text_bytes - va;
      const uint64_t cold = std::min(page, remaining);
      const uint64_t warm = std::min(warm_line_bytes, remaining);
      Result<Duration> fetched =
          space.Fetch(va, pass == 0 ? cold : warm);
      if (!fetched.ok()) {
        return fetched.status();
      }
    }
  }
  return clock.now() - start;
}

}  // namespace ssmc
