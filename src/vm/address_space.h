// AddressSpace: a protected 64-bit single-level address space (Section 3.2).
//
// Regions map three kinds of memory:
//  * anonymous — zero-fill DRAM on first touch (heap, stack, data segment);
//  * file copy-on-write — pages initially map straight into flash (no copy,
//    no duplicate DRAM storage — the Section 3.1 mapped-file technique);
//    the first write to a page copies that block into DRAM and remaps;
//  * execute-in-place — a copy-on-write file mapping whose pages are fetched
//    (executed) directly from flash [Section 3.2, ref 15].
//
// Accesses walk the page table (charged DRAM time per level), fault pages in
// on demand, and then pay the backing device's access cost for the bytes
// touched. Flash-backed pages re-resolve their physical address through the
// flash store on each fault because the cleaner relocates blocks.

#ifndef SSMC_SRC_VM_ADDRESS_SPACE_H_
#define SSMC_SRC_VM_ADDRESS_SPACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fs/memory_fs.h"
#include "src/sim/stats.h"
#include "src/storage/residency.h"
#include "src/storage/storage_manager.h"
#include "src/support/status.h"
#include "src/vm/page_table.h"

namespace ssmc {

// Hardware-managed page migration (the OS-vs-hardware comparison of E16).
// A memory controller counts accesses to flash-mapped pages and, each epoch,
// transparently remaps the hot ones into byte-addressable NVM (or DRAM on a
// machine without NVM). The OS sees nothing: no file-system calls, no
// residency-manager heat, just a PTE whose frame moved. Contrast with the
// OS-managed path, where the ResidencyManager promotes file blocks using
// global sim-time heat.
struct HwMigrationOptions {
  bool enabled = false;
  // Run a migration scan after this many counted flash-frame accesses.
  uint64_t epoch_accesses = 256;
  // Pages with at least this many accesses within the epoch migrate.
  uint64_t promote_threshold = 4;
  // Migrate into NVM pages when the machine has NVM; otherwise fall back to
  // plain DRAM frames (no reclaim pressure — hardware cannot ask the OS).
  bool use_nvm = true;
};

// Registers with the residency manager as a reclaim source: under DRAM
// pressure any space's clean file-backed copies can be dropped, so VM pages,
// dirty buffer pages and the clean cache all compete for one DRAM pool (the
// paper's single-level-store premise).
class AddressSpace : public ResidencyManager::ReclaimSource {
 public:
  enum class RegionKind {
    kAnonymous,
    kFileCow,         // Reads map flash in place; writes copy to DRAM.
    kXip,             // kFileCow, read-only, executable.
    kFileDemandCopy,  // Every fault copies the block to DRAM (demand paging
                      // into primary storage; steady state = DRAM speed).
  };

  struct Region {
    uint64_t start = 0;
    uint64_t length = 0;
    RegionKind kind = RegionKind::kAnonymous;
    bool writable = false;
    std::string name;
    // File-backed regions.
    MemoryFileSystem* fs = nullptr;
    std::string path;
  };

  // Page size must equal the storage manager's page size for file mappings
  // to be block-aligned.
  explicit AddressSpace(StorageManager& storage);
  ~AddressSpace() override;

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  uint64_t page_bytes() const { return table_.page_bytes(); }

  // Maps a zero-filled writable region.
  Status MapAnonymous(uint64_t va, uint64_t length, const std::string& name);

  // Maps a file copy-on-write: reads are served in place from flash, the
  // first write to a page copies it to DRAM. The file must be synced (its
  // blocks in flash) for in-place mapping; still-buffered blocks are copied
  // on first touch instead.
  Status MapFileCow(uint64_t va, MemoryFileSystem& fs, const std::string& path,
                    bool writable);

  // Maps a file for execute-in-place: like MapFileCow but read-only and
  // counted separately (E5).
  Status MapXip(uint64_t va, MemoryFileSystem& fs, const std::string& path);

  // Maps a file demand-paged: faults copy blocks into DRAM one at a time
  // (launch is instant like XIP, steady state runs at DRAM speed like an
  // eager copy, memory cost grows with the touched working set).
  Status MapFileDemandCopy(uint64_t va, MemoryFileSystem& fs,
                           const std::string& path, bool writable);

  // Unmaps the region starting at va, releasing its DRAM pages.
  Status Unmap(uint64_t va);

  // Simulated CPU accesses. Data really moves: reads return backing bytes,
  // writes persist into the (DRAM) page. Access may span pages but must stay
  // within one region.
  Result<Duration> Read(uint64_t va, std::span<uint8_t> out);
  Result<Duration> Write(uint64_t va, std::span<const uint8_t> data);

  // Instruction fetch for execute-in-place: a read that must hit an
  // executable (kXip) or file region.
  Result<Duration> Fetch(uint64_t va, uint64_t bytes);

  // Pre-faults every page of the region at `va` by copying it into DRAM —
  // the eager "load the program into primary storage" path the paper says
  // XIP avoids. Returns the total time spent.
  Result<Duration> Populate(uint64_t va);

  // ReclaimSource: drops one clean, re-fetchable DRAM page back to the
  // allocator. Called by the residency manager under DRAM pressure — from
  // this space's own allocations (always) or another consumer's (migration
  // policies only).
  bool TryReclaimOne() override { return ReclaimOnePage(); }

  const Region* FindRegion(uint64_t va) const;
  StorageManager& storage() { return storage_; }
  uint64_t resident_dram_pages() const { return resident_dram_pages_; }
  uint64_t resident_nvm_pages() const { return resident_nvm_pages_; }
  const PageTable& page_table() const { return table_; }

  // Hardware-managed migration policy (off by default — identical behavior
  // to the pre-E16 simulator). Set before mapping; the counters it keeps
  // are per-space, like a per-process memory controller context.
  void set_hw_migration(const HwMigrationOptions& options) {
    hw_migration_ = options;
  }
  const HwMigrationOptions& hw_migration() const { return hw_migration_; }

  struct Stats {
    Counter faults;            // All demand faults.
    Counter cow_faults;        // Write faults that copied flash -> DRAM.
    Counter zero_fill_faults;  // Anonymous first touches.
    Counter flash_map_faults;  // Faults resolved by mapping flash in place.
    Counter demand_copies;     // Demand-copy faults (flash -> DRAM).
    Counter reclaimed_pages;   // Clean DRAM pages dropped under pressure.
    Counter reads;
    Counter writes;
    Counter protection_errors;
    Counter hw_epochs;          // Hardware migration scans run.
    Counter hw_migrations;      // Pages remapped flash -> NVM/DRAM.
    Counter hw_migrated_bytes;
  };
  const Stats& stats() const { return stats_; }

 private:
  // Ensures the page holding va is present with the needed access; resolves
  // faults. Returns the PTE.
  Result<PageTableEntry*> EnsurePresent(uint64_t va, bool for_write);

  // Copies the file block behind `va` into a fresh DRAM page.
  Result<uint64_t> CopyBlockToDram(const Region& region, uint64_t va);

  // Allocates a DRAM page through the residency manager's shared budget:
  // clean-cache demotion first (migration policies), then this space's own
  // reclaimable pages (flash is the backing store for clean file pages, so
  // dropping one loses nothing), then other spaces'.
  Result<uint64_t> AllocateDramPageWithReclaim();
  // Drops one clean, re-fetchable DRAM page. Returns false if none exists.
  bool ReclaimOnePage();

  Status HandleFault(const Region& region, uint64_t va, bool for_write,
                     PageTableEntry& pte);

  // Hardware migration: counts one access to a flash-mapped page; runs an
  // epoch scan when the access budget is spent.
  void NoteHwAccess(uint64_t page_va);
  void RunHwEpoch();
  // Releases the frame a present PTE holds (DRAM or NVM; flash frames are
  // mappings, not allocations).
  void ReleaseFrame(const PageTableEntry& pte);

  // Device access to the resolved frame.
  Result<Duration> FrameRead(const PageTableEntry& pte, uint64_t offset,
                             std::span<uint8_t> out);
  Result<Duration> FrameWrite(PageTableEntry& pte, uint64_t offset,
                              std::span<const uint8_t> data);

  StorageManager& storage_;
  PageTable table_;
  std::vector<Region> regions_;
  // FIFO of page VAs that may be reclaimable (clean file-backed copies);
  // validated at reclaim time.
  std::deque<uint64_t> reclaim_candidates_;
  uint64_t resident_dram_pages_ = 0;
  uint64_t resident_nvm_pages_ = 0;
  Stats stats_;

  HwMigrationOptions hw_migration_;
  // Per-epoch access counts for flash-mapped pages, with insertion order
  // kept separately so the epoch scan is deterministic (unordered_map
  // iteration order is not).
  std::unordered_map<uint64_t, uint64_t> hw_access_counts_;
  std::vector<uint64_t> hw_access_order_;
  uint64_t hw_epoch_spent_ = 0;
};

}  // namespace ssmc

#endif  // SSMC_SRC_VM_ADDRESS_SPACE_H_
