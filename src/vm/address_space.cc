#include "src/vm/address_space.h"

#include <algorithm>
#include <cassert>

namespace ssmc {

AddressSpace::AddressSpace(StorageManager& storage)
    : storage_(storage), table_(storage.page_bytes(), &storage) {
  storage_.residency().RegisterSource(this);
}

AddressSpace::~AddressSpace() {
  storage_.residency().DropSource(this);
  while (!regions_.empty()) {
    (void)Unmap(regions_.front().start);
  }
}

const AddressSpace::Region* AddressSpace::FindRegion(uint64_t va) const {
  for (const Region& r : regions_) {
    if (va >= r.start && va < r.start + r.length) {
      return &r;
    }
  }
  return nullptr;
}

namespace {
uint64_t RoundUp(uint64_t v, uint64_t unit) {
  return (v + unit - 1) / unit * unit;
}
}  // namespace

Status AddressSpace::MapAnonymous(uint64_t va, uint64_t length,
                                  const std::string& name) {
  if (va % page_bytes() != 0 || length == 0) {
    return InvalidArgumentError("bad anonymous mapping");
  }
  length = RoundUp(length, page_bytes());
  for (const Region& r : regions_) {
    if (va < r.start + r.length && r.start < va + length) {
      return AlreadyExistsError("overlapping mapping");
    }
  }
  Region region;
  region.start = va;
  region.length = length;
  region.kind = RegionKind::kAnonymous;
  region.writable = true;
  region.name = name;
  regions_.push_back(std::move(region));
  storage_.ChargeMetadataWrite(64);  // Region descriptor.
  return Status::Ok();
}

Status AddressSpace::MapFileCow(uint64_t va, MemoryFileSystem& fs,
                                const std::string& path, bool writable) {
  if (va % page_bytes() != 0) {
    return InvalidArgumentError("unaligned mapping");
  }
  Result<FileInfo> info = fs.Stat(path);
  if (!info.ok()) {
    return info.status();
  }
  if (info.value().is_directory || info.value().size == 0) {
    return InvalidArgumentError("cannot map " + path);
  }
  const uint64_t length = RoundUp(info.value().size, page_bytes());
  for (const Region& r : regions_) {
    if (va < r.start + r.length && r.start < va + length) {
      return AlreadyExistsError("overlapping mapping");
    }
  }
  Region region;
  region.start = va;
  region.length = length;
  region.kind = RegionKind::kFileCow;
  region.writable = writable;
  region.name = path;
  region.fs = &fs;
  region.path = path;
  regions_.push_back(std::move(region));
  storage_.ChargeMetadataWrite(64);
  return Status::Ok();
}

Status AddressSpace::MapXip(uint64_t va, MemoryFileSystem& fs,
                            const std::string& path) {
  SSMC_RETURN_IF_ERROR(MapFileCow(va, fs, path, /*writable=*/false));
  regions_.back().kind = RegionKind::kXip;
  return Status::Ok();
}

Status AddressSpace::MapFileDemandCopy(uint64_t va, MemoryFileSystem& fs,
                                       const std::string& path,
                                       bool writable) {
  SSMC_RETURN_IF_ERROR(MapFileCow(va, fs, path, writable));
  regions_.back().kind = RegionKind::kFileDemandCopy;
  return Status::Ok();
}

Status AddressSpace::Unmap(uint64_t va) {
  auto it = std::find_if(regions_.begin(), regions_.end(),
                         [va](const Region& r) { return r.start == va; });
  if (it == regions_.end()) {
    return NotFoundError("no region at that address");
  }
  for (uint64_t page_va = it->start; page_va < it->start + it->length;
       page_va += page_bytes()) {
    PageTableEntry* pte = table_.Find(page_va);
    if (pte != nullptr && pte->present) {
      ReleaseFrame(*pte);
      table_.Remove(page_va);
    }
  }
  regions_.erase(it);
  return Status::Ok();
}

void AddressSpace::ReleaseFrame(const PageTableEntry& pte) {
  if (pte.backing == FrameBacking::kDram) {
    (void)storage_.FreeDramPage(pte.frame);
    assert(resident_dram_pages_ > 0);
    --resident_dram_pages_;
  } else if (pte.backing == FrameBacking::kNvm) {
    (void)storage_.FreeNvmPage(pte.frame);
    assert(resident_nvm_pages_ > 0);
    --resident_nvm_pages_;
  }
  // kFlash: the frame is a mapping into the store, not an allocation.
}

bool AddressSpace::ReclaimOnePage() {
  while (!reclaim_candidates_.empty()) {
    const uint64_t page_va = reclaim_candidates_.front();
    reclaim_candidates_.pop_front();
    PageTableEntry* pte = table_.Find(page_va);
    if (pte == nullptr || !pte->present ||
        pte->backing != FrameBacking::kDram || pte->dirty) {
      continue;  // Gone, relocated, or no longer clean.
    }
    const Region* region = FindRegion(page_va);
    if (region == nullptr || region->kind == RegionKind::kAnonymous) {
      continue;  // Not re-fetchable.
    }
    // Clean file-backed page: its content can always be re-fetched from the
    // file system (flash or the battery-backed write buffer), so drop it.
    (void)storage_.FreeDramPage(pte->frame);
    assert(resident_dram_pages_ > 0);
    --resident_dram_pages_;
    table_.MarkPresent(*pte, false);
    *pte = PageTableEntry{};
    stats_.reclaimed_pages.Add();
    return true;
  }
  return false;
}

Result<uint64_t> AddressSpace::AllocateDramPageWithReclaim() {
  return storage_.residency().AllocateDramPage(this);
}

Result<uint64_t> AddressSpace::CopyBlockToDram(const Region& region,
                                               uint64_t va) {
  const uint64_t page_va = va / page_bytes() * page_bytes();
  const uint64_t offset_in_file = page_va - region.start;
  std::vector<uint8_t> staging(page_bytes(), 0);
  // Reads through the file system: flash (or buffer) pays its access cost.
  Result<uint64_t> n = region.fs->Read(region.path, offset_in_file, staging);
  if (!n.ok()) {
    return n.status();
  }
  Result<uint64_t> page = AllocateDramPageWithReclaim();
  if (!page.ok()) {
    return page.status();
  }
  storage_.WritePagePayload(page.value(), 0, staging);
  return page.value();
}

Status AddressSpace::HandleFault(const Region& region, uint64_t va,
                                 bool for_write, PageTableEntry& pte) {
  stats_.faults.Add();
  const uint64_t page_va = va / page_bytes() * page_bytes();

  if (region.kind == RegionKind::kAnonymous) {
    Result<uint64_t> page = AllocateDramPageWithReclaim();
    if (!page.ok()) {
      return page.status();
    }
    // Zero-fill costs one DRAM page write; the frame aliases the shared
    // all-zeros extent until its first real write copies it.
    storage_.ZeroFillPagePayload(page.value());
    pte.backing = FrameBacking::kDram;
    pte.frame = page.value();
    pte.writable = true;
    table_.MarkPresent(pte, true);
    ++resident_dram_pages_;
    stats_.zero_fill_faults.Add();
    return Status::Ok();
  }

  // File-backed region.
  const uint64_t block_index = (page_va - region.start) / page_bytes();
  Result<std::vector<BlockLocation>> locations =
      region.fs->BlockLocations(region.path);
  if (!locations.ok()) {
    return locations.status();
  }
  const BlockLocation location =
      block_index < locations.value().size() ? locations.value()[block_index]
                                             : BlockLocation{};

  if (location.kind == BlockLocation::Kind::kFlash && !for_write &&
      region.kind != RegionKind::kFileDemandCopy) {
    // VM faults feed block heat too (migration policies only — FileId walks
    // the namespace, and kWriteBufferOnly must stay byte-identical). A block
    // hot enough to promote is copied into this space's DRAM instead of
    // being mapped in place, so its accesses run at DRAM speed.
    ResidencyManager& res = storage_.residency();
    bool promote_to_dram = false;
    if (res.enabled()) {
      Result<uint64_t> file_id = region.fs->FileId(region.path);
      promote_to_dram =
          file_id.ok() &&
          res.NoteVmFault(BlockKey{file_id.value(), block_index},
                          storage_.flash_store().device().clock().now());
    }
    if (!promote_to_dram) {
      // Map the flash block in place: no copy, no DRAM consumed. The PTE
      // holds the *logical* store block; accesses re-resolve the physical
      // address so cleaning cannot leave the mapping stale.
      pte.backing = FrameBacking::kFlash;
      pte.frame = location.flash_block;
      pte.writable = false;
      table_.MarkPresent(pte, true);
      stats_.flash_map_faults.Add();
      return Status::Ok();
    }
  }

  // Copy path: demand-copy regions, buffered or hole blocks, write faults.
  Result<uint64_t> page = CopyBlockToDram(region, va);
  if (!page.ok()) {
    return page.status();
  }
  pte.backing = FrameBacking::kDram;
  pte.frame = page.value();
  pte.writable = region.writable;
  table_.MarkPresent(pte, true);
  ++resident_dram_pages_;
  if (for_write) {
    stats_.cow_faults.Add();
  } else {
    if (region.kind == RegionKind::kFileDemandCopy) {
      stats_.demand_copies.Add();
    }
    // A clean file-backed copy can be dropped under memory pressure.
    reclaim_candidates_.push_back(page_va);
  }
  return Status::Ok();
}

Result<PageTableEntry*> AddressSpace::EnsurePresent(uint64_t va,
                                                    bool for_write) {
  const Region* region = FindRegion(va);
  if (region == nullptr) {
    return OutOfRangeError("unmapped address");
  }
  if (for_write && !region->writable) {
    stats_.protection_errors.Add();
    return PermissionDeniedError("write to read-only region " + region->name);
  }
  const uint64_t page_va = va / page_bytes() * page_bytes();
  PageTableEntry& pte = table_.FindOrCreate(page_va);
  if (!pte.present) {
    SSMC_RETURN_IF_ERROR(HandleFault(*region, va, for_write, pte));
  }
  if (for_write && !pte.writable) {
    // Copy-on-write: the page is mapped read-only into flash (or was
    // hardware-migrated into NVM); the first write copies the affected
    // block to DRAM (Section 3.1).
    stats_.faults.Add();
    stats_.cow_faults.Add();
    Result<uint64_t> page = CopyBlockToDram(*region, va);
    if (!page.ok()) {
      return page.status();
    }
    if (pte.backing == FrameBacking::kNvm) {
      (void)storage_.FreeNvmPage(pte.frame);
      assert(resident_nvm_pages_ > 0);
      --resident_nvm_pages_;
    }
    pte.backing = FrameBacking::kDram;
    pte.frame = page.value();
    pte.writable = true;
    ++resident_dram_pages_;
  }
  pte.accessed = true;
  if (for_write) {
    pte.dirty = true;
  }
  return &pte;
}

Result<Duration> AddressSpace::FrameRead(const PageTableEntry& pte,
                                         uint64_t offset,
                                         std::span<uint8_t> out) {
  if (pte.backing == FrameBacking::kDram) {
    return storage_.ReadPagePayload(pte.frame, offset, out);
  }
  if (pte.backing == FrameBacking::kNvm) {
    // A hardware-migrated page: byte-addressable NVM access, the caller
    // blocks at NVM (not flash) latency.
    return storage_.ReadNvmPagePayload(pte.frame, offset, out);
  }
  return storage_.flash_store().ReadPartial(pte.frame, offset, out);
}

Result<Duration> AddressSpace::FrameWrite(PageTableEntry& pte, uint64_t offset,
                                          std::span<const uint8_t> data) {
  assert(pte.backing == FrameBacking::kDram && "writes always land in DRAM");
  return storage_.WritePagePayload(pte.frame, offset, data);
}

void AddressSpace::NoteHwAccess(uint64_t page_va) {
  auto [it, inserted] = hw_access_counts_.emplace(page_va, 0);
  if (inserted) {
    hw_access_order_.push_back(page_va);
  }
  ++it->second;
  if (++hw_epoch_spent_ >= hw_migration_.epoch_accesses) {
    RunHwEpoch();
  }
}

void AddressSpace::RunHwEpoch() {
  stats_.hw_epochs.Add();
  const bool to_nvm =
      hw_migration_.use_nvm && storage_.total_nvm_pages() > 0;
  for (const uint64_t page_va : hw_access_order_) {
    if (hw_access_counts_[page_va] < hw_migration_.promote_threshold) {
      continue;
    }
    PageTableEntry* pte = table_.Find(page_va);
    if (pte == nullptr || !pte->present ||
        pte->backing != FrameBacking::kFlash) {
      continue;  // Unmapped or already moved since it was counted.
    }
    // Hardware cannot ask the OS to reclaim: a plain allocation, and a hot
    // page simply stays flash-mapped when the pool is dry.
    Result<uint64_t> page =
        to_nvm ? storage_.AllocateNvmPage() : storage_.AllocateDramPage();
    if (!page.ok()) {
      continue;
    }
    // The migration engine copies the block in the background (the CPU is
    // not blocked on it) and remaps the PTE. The PTE held the *logical*
    // store block, so the copy source re-resolves through the FTL — a
    // concurrent cleaner relocation cannot leave this stale.
    Result<PayloadRef> payload =
        storage_.flash_store().ReadRef(pte->frame, kCleanerIo);
    if (!payload.ok()) {
      to_nvm ? (void)storage_.FreeNvmPage(page.value())
             : (void)storage_.FreeDramPage(page.value());
      continue;
    }
    if (to_nvm) {
      storage_.InstallNvmPagePayload(page.value(), std::move(payload.value()));
      pte->backing = FrameBacking::kNvm;
      ++resident_nvm_pages_;
    } else {
      storage_.InstallPagePayload(page.value(), std::move(payload.value()));
      pte->backing = FrameBacking::kDram;
      ++resident_dram_pages_;
    }
    pte->frame = page.value();
    // Migrated pages stay read-only: the first write still takes the normal
    // copy-on-write fault into DRAM.
    stats_.hw_migrations.Add();
    stats_.hw_migrated_bytes.Add(page_bytes());
  }
  hw_access_counts_.clear();
  hw_access_order_.clear();
  hw_epoch_spent_ = 0;
}

Result<Duration> AddressSpace::Read(uint64_t va, std::span<uint8_t> out) {
  Duration total = 0;
  uint64_t done = 0;
  while (done < out.size()) {
    const uint64_t pos = va + done;
    const uint64_t in_page = pos % page_bytes();
    const uint64_t chunk = std::min(page_bytes() - in_page,
                                    static_cast<uint64_t>(out.size()) - done);
    Result<PageTableEntry*> pte = EnsurePresent(pos, /*for_write=*/false);
    if (!pte.ok()) {
      return pte.status();
    }
    if (hw_migration_.enabled &&
        pte.value()->backing == FrameBacking::kFlash) {
      // The memory controller counts this access; the scan it may trigger
      // can migrate the page before the read below (which then runs at the
      // new tier's speed — exactly what transparent remap means).
      NoteHwAccess(pos / page_bytes() * page_bytes());
    }
    Result<Duration> r = FrameRead(
        *pte.value(), in_page, std::span<uint8_t>(out.data() + done, chunk));
    if (!r.ok()) {
      return r.status();
    }
    total += r.value();
    done += chunk;
  }
  stats_.reads.Add();
  return total;
}

Result<Duration> AddressSpace::Write(uint64_t va,
                                     std::span<const uint8_t> data) {
  Duration total = 0;
  uint64_t done = 0;
  while (done < data.size()) {
    const uint64_t pos = va + done;
    const uint64_t in_page = pos % page_bytes();
    const uint64_t chunk = std::min(page_bytes() - in_page,
                                    static_cast<uint64_t>(data.size()) - done);
    Result<PageTableEntry*> pte = EnsurePresent(pos, /*for_write=*/true);
    if (!pte.ok()) {
      return pte.status();
    }
    Result<Duration> r = FrameWrite(
        *pte.value(), in_page,
        std::span<const uint8_t>(data.data() + done, chunk));
    if (!r.ok()) {
      return r.status();
    }
    total += r.value();
    done += chunk;
  }
  stats_.writes.Add();
  return total;
}

Result<Duration> AddressSpace::Fetch(uint64_t va, uint64_t bytes) {
  std::vector<uint8_t> sink(bytes);
  return Read(va, sink);
}

Result<Duration> AddressSpace::Populate(uint64_t va) {
  const Region* region = FindRegion(va);
  if (region == nullptr) {
    return NotFoundError("no region at that address");
  }
  const SimTime before = storage_.flash_store().device().clock().now();
  for (uint64_t page_va = region->start;
       page_va < region->start + region->length; page_va += page_bytes()) {
    Result<PageTableEntry*> pte = EnsurePresent(page_va, /*for_write=*/false);
    if (!pte.ok()) {
      return pte.status();
    }
    if (pte.value()->backing == FrameBacking::kFlash) {
      // Force the copy the eager loader would have made.
      Result<uint64_t> page = CopyBlockToDram(*region, page_va);
      if (!page.ok()) {
        return page.status();
      }
      pte.value()->backing = FrameBacking::kDram;
      pte.value()->frame = page.value();
      pte.value()->writable = region->writable;
      ++resident_dram_pages_;
    }
  }
  return storage_.flash_store().device().clock().now() - before;
}

}  // namespace ssmc
