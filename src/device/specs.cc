#include "src/device/specs.h"

#include <cmath>

namespace ssmc {

DramSpec NecDram1993() {
  DramSpec spec;
  spec.name = "NEC 3.3V DRAM";
  // 80 ns random access, ~25 ns/byte streaming on a 32-bit bus.
  spec.read = {80, 25};
  spec.write = {80, 25};
  spec.active_mw_per_mib = 150;   // Active read/write power.
  spec.standby_mw_per_mib = 1.5;  // Low-power self-refresh mode.
  spec.dollars_per_mib = 30;      // ~10x the KittyHawk's $/MB (paper).
  spec.mib_per_cubic_inch = 15;   // Quoted in the paper.
  spec.battery_backed = true;
  return spec;
}

FlashSpec IntelFlash1993() {
  FlashSpec spec;
  spec.name = "Intel Series 2 flash";
  // Memory-mapped: reads close to DRAM speed.
  spec.read = {150, 100};       // ~100 ns/byte (paper's round number).
  spec.program = {2000, 10000};  // ~10 us/byte programming.
  spec.erase_sector_bytes = 64 * kKiB;  // Large erase blocks.
  spec.erase_ns = 1600 * kMillisecond;  // Block erase ~1.6 s.
  spec.endurance_cycles = 100000;
  spec.active_mw_per_mib = 30;  // "tens of milliwatts per megabyte".
  spec.standby_mw_per_mib = 0.05;
  spec.dollars_per_mib = 50;  // Paper: "50-dollar per megabyte range".
  spec.mib_per_cubic_inch = 15.2;  // "within 20% of the KittyHawk".
  return spec;
}

FlashSpec SunDiskFlash1993() {
  FlashSpec spec;
  spec.name = "SunDisk SDI flash";
  // Disk-like sector interface: slower reads than Intel, faster writes.
  spec.read = {25000, 200};      // Sector setup dominated.
  spec.program = {25000, 2500};  // Optimized write path (~2.5 us/byte).
  spec.erase_sector_bytes = 512;  // Paper: "minimum erase sector in the
                                  // 512-byte range".
  spec.erase_ns = 3 * kMillisecond;  // Per-sector erase folded into writes.
  spec.endurance_cycles = 100000;
  spec.active_mw_per_mib = 35;
  spec.standby_mw_per_mib = 0.05;
  spec.dollars_per_mib = 50;
  spec.mib_per_cubic_inch = 15.5;
  return spec;
}

FlashSpec GenericPaperFlash() {
  FlashSpec spec;
  spec.name = "generic flash (paper)";
  spec.read = {100, 100};        // 100 ns/byte reads.
  spec.program = {1000, 10000};  // 10 us/byte writes.
  spec.erase_sector_bytes = 4 * kKiB;  // Direct-mapped card, small sectors.
  spec.erase_ns = 100 * kMillisecond;
  spec.endurance_cycles = 100000;  // Guaranteed 100,000 erase cycles.
  spec.active_mw_per_mib = 30;
  spec.standby_mw_per_mib = 0.05;
  spec.dollars_per_mib = 50;
  spec.mib_per_cubic_inch = 15;
  return spec;
}

NvmSpec PcmNvm() {
  NvmSpec spec;
  spec.name = "PCM NVM";
  // Reads: ~3x the DRAM access latency, ~2x its streaming cost
  // (MigrantStore, arXiv 1504.04297, Table 1 ratios applied to the NEC
  // DRAM baseline). Still well under flash at block granularity: a 512 B
  // read costs 25.9 us here vs 51.4 us on the Intel card.
  spec.read = {250, 50};
  // Writes: the phase-change programming pulse makes array writes ~4x
  // slower than reads (arXiv 2004.05518 quotes 3-8x).
  spec.write = {500, 200};
  spec.endurance_writes = 100000000;  // ~1e8 (arXiv 1805.09127).
  spec.active_mw_per_mib = 60;    // Write pulses draw more than DRAM reads.
  spec.standby_mw_per_mib = 0.05;  // Non-volatile: no refresh, interface only.
  spec.dollars_per_mib = 40;       // Between DRAM ($30) and flash ($50).
  spec.mib_per_cubic_inch = 15;
  return spec;
}

DiskSpec KittyHawkDisk1993() {
  DiskSpec spec;
  spec.name = "HP KittyHawk 1.3\"";
  spec.sector_bytes = 512;
  spec.sectors_per_track = 31;
  spec.cylinders = 1260;  // ~20 MB.
  spec.min_seek_ns = 5 * kMillisecond;
  spec.avg_seek_ns = 18 * kMillisecond;
  spec.max_seek_ns = 35 * kMillisecond;
  spec.rotation_ns = 11 * kMillisecond;  // 5400 RPM.
  spec.transfer_mib_per_s = 0.9;
  spec.spin_up_ns = 1 * kSecond;  // Fast spin-up was a KittyHawk feature.
  spec.active_mw = 1500;
  spec.idle_mw = 700;
  spec.standby_mw = 15;
  spec.dollars_per_mib = 3;  // DRAM package "costs ten times more" (paper).
  spec.mib_per_cubic_inch = 19;  // Quoted in the paper.
  return spec;
}

DiskSpec FujitsuDisk1993() {
  DiskSpec spec;
  spec.name = "Fujitsu M2633 2.5\"";
  spec.sector_bytes = 512;
  spec.sectors_per_track = 38;
  spec.cylinders = 2332;  // ~45 MB.
  spec.min_seek_ns = 4 * kMillisecond;
  spec.avg_seek_ns = 25 * kMillisecond;
  spec.max_seek_ns = 45 * kMillisecond;
  spec.rotation_ns = 17 * kMillisecond;  // 3500 RPM class.
  spec.transfer_mib_per_s = 1.2;
  spec.spin_up_ns = 2 * kSecond;
  spec.active_mw = 2300;
  spec.idle_mw = 1000;
  spec.standby_mw = 20;
  spec.dollars_per_mib = 2;  // Double the density, cheaper per MB.
  spec.mib_per_cubic_inch = 31;  // Paper: flash "only half" this density.
  return spec;
}

double ProjectDollarsPerMib(double base_dollars_per_mib, double rate,
                            int year) {
  // MB/$ grows by (1+rate) per year, so $/MB shrinks by the same factor.
  return base_dollars_per_mib /
         std::pow(1.0 + rate, year - kCatalogBaseYear);
}

double ProjectDensity(double base_mib_per_cubic_inch, double rate, int year) {
  return base_mib_per_cubic_inch * std::pow(1.0 + rate, year - kCatalogBaseYear);
}

int CostCrossoverYear(double a_dollars, double a_rate, double b_dollars,
                      double b_rate) {
  if (a_dollars <= b_dollars) {
    return kCatalogBaseYear;
  }
  if (a_rate <= b_rate) {
    return -1;  // a never catches up.
  }
  for (int year = kCatalogBaseYear; year <= kCatalogBaseYear + 100; ++year) {
    if (ProjectDollarsPerMib(a_dollars, a_rate, year) <=
        ProjectDollarsPerMib(b_dollars, b_rate, year)) {
      return year;
    }
  }
  return -1;
}

}  // namespace ssmc
