#include "src/device/nvm_device.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "src/obs/obs.h"

namespace ssmc {

NvmDevice::NvmDevice(NvmSpec spec, uint64_t capacity_bytes, int banks,
                     SimClock& clock)
    : spec_(std::move(spec)),
      capacity_(capacity_bytes),
      clock_(clock),
      sched_(clock, banks) {
  assert(banks >= 1);
  assert(capacity_ % static_cast<uint64_t>(banks) == 0 &&
         "capacity must divide evenly into banks");
  bytes_per_bank_ = capacity_ / static_cast<uint64_t>(banks);
  bank_writes_.assign(static_cast<size_t>(banks), 0);
  bank_write_bytes_.assign(static_cast<size_t>(banks), 0);
  // Same exactness contract as the flash card: reservations pushed later by
  // a reordering policy owe their lanes the extra wait as the shift happens.
  sched_.set_shift_observer([this](const IoRequest& req, Duration delta) {
    stats_.by_class[static_cast<int>(req.priority)].queue_wait_ns.Add(
        static_cast<uint64_t>(delta));
    stats_.by_tenant.For(req.tenant).queue_wait_ns.Add(
        static_cast<uint64_t>(delta));
  });
}

NvmDevice::~NvmDevice() {
  if (obs_ != nullptr) {
    obs_->metrics().FlushAndRemoveCollector("nvm");
  }
}

void NvmDevice::AttachObs(Obs* obs) {
  if (obs_ != nullptr && obs_ != obs) {
    obs_->metrics().FlushAndRemoveCollector("nvm");
  }
  obs_ = obs;
  if (obs_ == nullptr) {
    sched_.set_retire_hook(nullptr);
    return;
  }
  SpanTracer& tracer = obs_->tracer();
  obs_bank_tracks_.clear();
  for (int b = 0; b < num_banks(); ++b) {
    obs_bank_tracks_.push_back(
        tracer.RegisterTrack("nvm bank " + std::to_string(b)));
  }
  MetricsRegistry& m = obs_->metrics();
  for (int c = 0; c < kNumIoPriorities; ++c) {
    const std::string cls = IoPriorityName(static_cast<IoPriority>(c));
    obs_class_tracks_[c] = tracer.RegisterTrack("nvm class " + cls);
    obs_wait_hist_[c] = m.AddHistogram("nvm/" + cls + "/wait_ns");
    obs_service_hist_[c] = m.AddHistogram("nvm/" + cls + "/service_ns");
  }
  obs_tenant_hist_.clear();
  sched_.set_retire_hook(
      [this](int bank, const IoRequest& req) { ObsRetire(bank, req); });

  Counter* reads = m.AddCounter("nvm/reads");
  Counter* read_bytes = m.AddCounter("nvm/read_bytes");
  Counter* writes = m.AddCounter("nvm/writes");
  Counter* written_bytes = m.AddCounter("nvm/written_bytes");
  Counter* read_stall = m.AddCounter("nvm/read_stall_ns");
  Gauge* wear_max = m.AddGauge("nvm/wear_max_bank_writes");
  m.AddCollector("nvm", [=, this] {
    auto mirror = [](Counter* dst, const Counter& src) {
      dst->Reset();
      dst->Add(src.value());
    };
    mirror(reads, stats_.reads);
    mirror(read_bytes, stats_.read_bytes);
    mirror(writes, stats_.writes);
    mirror(written_bytes, stats_.written_bytes);
    mirror(read_stall, stats_.read_stall_ns);
    wear_max->Set(static_cast<int64_t>(SummarizeWear().max_writes));
    for (const TenantLaneTable::Entry& e : stats_.by_tenant.entries()) {
      const std::string base = "nvm/tenant" + std::to_string(e.tenant) + "/";
      auto mirror_lane = [&](const char* key, const Counter& src) {
        Counter* dst = obs_->metrics().AddCounter(base + key);
        dst->Reset();
        dst->Add(src.value());
      };
      mirror_lane("requests", e.value.requests);
      mirror_lane("queue_wait_ns", e.value.queue_wait_ns);
      mirror_lane("service_ns", e.value.service_ns);
    }
  });
}

void NvmDevice::ObsRetire(int bank, const IoRequest& req) {
  const int cls = static_cast<int>(req.priority);
  const Duration wait = std::max<Duration>(0, req.start_time - req.issue_time);
  const Duration service =
      std::max<Duration>(0, req.complete_time - req.start_time);
  obs_wait_hist_[cls]->Record(static_cast<uint64_t>(wait));
  obs_service_hist_[cls]->Record(static_cast<uint64_t>(service));
  ObsTenantLane* tenant_lane = nullptr;
  for (ObsTenantLane& lane : obs_tenant_hist_) {
    if (lane.tenant == req.tenant) {
      tenant_lane = &lane;
      break;
    }
  }
  if (tenant_lane == nullptr) {
    const std::string base = "nvm/tenant" + std::to_string(req.tenant) + "/";
    obs_tenant_hist_.push_back(
        ObsTenantLane{req.tenant,
                      obs_->metrics().AddHistogram(base + "wait_ns"),
                      obs_->metrics().AddHistogram(base + "service_ns")});
    tenant_lane = &obs_tenant_hist_.back();
  }
  tenant_lane->wait->Record(static_cast<uint64_t>(wait));
  tenant_lane->service->Record(static_cast<uint64_t>(service));
  SpanTracer& tracer = obs_->tracer();
  tracer.Span(obs_bank_tracks_[static_cast<size_t>(bank)], IoOpName(req.op),
              req.start_time, service, {"bytes", req.bytes},
              {"wait_ns", static_cast<uint64_t>(wait)},
              {"prio", static_cast<uint64_t>(cls)});
  tracer.Span(obs_class_tracks_[cls], IoOpName(req.op), req.issue_time,
              wait + service, {"bytes", req.bytes},
              {"bank", static_cast<uint64_t>(bank)},
              {"tenant", static_cast<uint64_t>(req.tenant)});
}

IoScheduler::Dispatch NvmDevice::SubmitOp(IoOp op, int bank, uint64_t addr,
                                          uint64_t bytes, Duration op_ns,
                                          IoIssue issue) {
  IoRequest req;
  req.op = op;
  req.addr = addr;
  req.bytes = bytes;
  req.priority = issue.priority;
  req.blocking = issue.blocking;
  req.tenant = issue.tenant;
  const IoScheduler::Dispatch d = sched_.Submit(bank, std::move(req), op_ns);
  total_active_ns_ += op_ns;
  IoLaneStats& cls = stats_.by_class[static_cast<int>(issue.priority)];
  cls.requests.Add();
  cls.queue_wait_ns.Add(static_cast<uint64_t>(d.wait));
  cls.service_ns.Add(static_cast<uint64_t>(d.service));
  IoLaneStats& lane = stats_.by_tenant.For(issue.tenant);
  lane.requests.Add();
  lane.queue_wait_ns.Add(static_cast<uint64_t>(d.wait));
  lane.service_ns.Add(static_cast<uint64_t>(d.service));
  energy_.AddActive(active_mw(), op_ns);
  return d;
}

Result<Duration> NvmDevice::Read(uint64_t addr, uint64_t bytes,
                                 IoIssue issue) {
  if (addr + bytes > capacity_) {
    return OutOfRangeError("nvm read past end of device");
  }
  if (bytes == 0) {
    return Duration{0};
  }
  const int bank = BankOfAddress(addr);
  if (BankOfAddress(addr + bytes - 1) != bank) {
    return InvalidArgumentError("nvm read crosses a bank boundary");
  }
  const Duration op_ns = spec_.read.LatencyFor(bytes);
  const IoScheduler::Dispatch d =
      SubmitOp(IoOp::kRead, bank, addr, bytes, op_ns, issue);
  if (issue.blocking) {
    stats_.read_stall_ns.Add(static_cast<uint64_t>(d.wait));
    clock_.AdvanceTo(d.complete);
  }
  stats_.reads.Add();
  stats_.read_bytes.Add(bytes);
  return d.wait + op_ns;
}

Result<Duration> NvmDevice::Write(uint64_t addr, uint64_t bytes,
                                  IoIssue issue) {
  if (addr + bytes > capacity_) {
    return OutOfRangeError("nvm write past end of device");
  }
  if (bytes == 0) {
    return Duration{0};
  }
  const int bank = BankOfAddress(addr);
  if (BankOfAddress(addr + bytes - 1) != bank) {
    return InvalidArgumentError("nvm write crosses a bank boundary");
  }
  const Duration op_ns = spec_.write.LatencyFor(bytes);
  const IoScheduler::Dispatch d =
      SubmitOp(IoOp::kProgram, bank, addr, bytes, op_ns, issue);
  if (issue.blocking) {
    clock_.AdvanceTo(d.complete);
  }
  stats_.writes.Add();
  stats_.written_bytes.Add(bytes);
  bank_writes_[static_cast<size_t>(bank)] += 1;
  bank_write_bytes_[static_cast<size_t>(bank)] += bytes;
  return d.wait + op_ns;
}

void NvmDevice::AccountIdleEnergy() {
  const Duration now = clock_.now();
  const Duration window = now - idle_accounted_until_;
  if (window <= 0) {
    return;
  }
  const Duration idle = std::max<Duration>(0, window - total_active_ns_);
  energy_.AddIdle(standby_mw(), idle);
  idle_accounted_until_ = now;
}

NvmDevice::WearSummary NvmDevice::SummarizeWear() const {
  WearSummary w;
  if (bank_writes_.empty()) {
    return w;
  }
  w.min_writes = bank_writes_[0];
  double sum = 0;
  for (size_t b = 0; b < bank_writes_.size(); ++b) {
    w.min_writes = std::min(w.min_writes, bank_writes_[b]);
    w.max_writes = std::max(w.max_writes, bank_writes_[b]);
    sum += static_cast<double>(bank_writes_[b]);
    w.total_write_bytes += bank_write_bytes_[b];
  }
  w.mean_writes = sum / static_cast<double>(bank_writes_.size());
  return w;
}

}  // namespace ssmc
