// Simulated battery-backed DRAM.
//
// Primary storage in the paper's organization: uniform random-access reads
// and writes, no erase constraint, effectively unlimited endurance. Contents
// survive as long as a battery holds them up; on power loss the device drops
// its contents (unless battery_backed, in which case loss happens only when
// the Battery model declares total failure — see battery.h and the E10
// reliability experiment).

#ifndef SSMC_SRC_DEVICE_DRAM_DEVICE_H_
#define SSMC_SRC_DEVICE_DRAM_DEVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/device/specs.h"
#include "src/sim/clock.h"
#include "src/sim/energy.h"
#include "src/sim/stats.h"
#include "src/support/status.h"
#include "src/support/units.h"

namespace ssmc {

class DramDevice {
 public:
  DramDevice(DramSpec spec, uint64_t capacity_bytes, SimClock& clock);

  uint64_t capacity_bytes() const { return capacity_; }
  const DramSpec& spec() const { return spec_; }
  SimClock& clock() { return clock_; }

  // Blocking read/write; advances the clock and returns the latency.
  Result<Duration> Read(uint64_t addr, std::span<uint8_t> out);
  Result<Duration> Write(uint64_t addr, std::span<const uint8_t> data);

  // Charges the timing and energy of an access of `bytes` without moving
  // data. Used to account metadata operations on memory-resident structures
  // (directory lookups, page-table walks) that the simulator keeps in host
  // containers rather than in the simulated byte array.
  Duration ChargeAccess(uint64_t bytes, bool is_write);

  // Models power failure. Battery-backed DRAM keeps its contents; volatile
  // DRAM loses everything (zeroed) and records the loss.
  void OnPowerLoss();
  // Unconditional loss (battery totally failed / machine dropped).
  void ForceContentLoss();
  bool contents_lost() const { return contents_lost_; }

  struct Stats {
    Counter reads;
    Counter read_bytes;
    Counter writes;
    Counter written_bytes;
    Counter content_losses;
  };
  const Stats& stats() const { return stats_; }
  const EnergyMeter& energy() const { return energy_; }
  Duration total_active_ns() const { return total_active_ns_; }
  void AccountIdleEnergy();

  // An access activates one bank (~1 MiB of array): active draw is the
  // per-megabyte figure for one megabyte.
  double active_mw() const { return spec_.active_mw_per_mib; }
  // Retention (self-refresh) power covers the whole array; this is what
  // drains the battery while the machine is otherwise idle.
  double standby_mw() const {
    return spec_.standby_mw_per_mib * (static_cast<double>(capacity_) / kMiB);
  }

 private:
  // Backing storage is materialized in fixed chunks on first write; a null
  // chunk reads as zeros. Keeps construction (and content loss) O(touched)
  // instead of O(capacity) — a 16 MiB array costs nothing until used.
  static constexpr uint64_t kChunkBytes = 64 * 1024;

  uint8_t* MaterializeChunk(uint64_t chunk);

  DramSpec spec_;
  uint64_t capacity_;
  SimClock& clock_;
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  Stats stats_;
  EnergyMeter energy_;
  Duration total_active_ns_ = 0;
  Duration idle_accounted_until_ = 0;
  bool contents_lost_ = false;
};

}  // namespace ssmc

#endif  // SSMC_SRC_DEVICE_DRAM_DEVICE_H_
