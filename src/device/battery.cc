#include "src/device/battery.h"

#include <algorithm>

namespace ssmc {

Battery::Battery(double primary_mwh, double backup_mwh, SimClock& clock)
    : primary_capacity_j_(primary_mwh * kJoulesPerMwh),
      primary_j_(primary_mwh * kJoulesPerMwh),
      backup_j_(backup_mwh * kJoulesPerMwh),
      clock_(clock) {}

bool Battery::Drain(double nanojoules) {
  if (dead_) {
    return false;
  }
  double joules = nanojoules * 1e-9;
  const double from_primary = std::min(joules, primary_j_);
  primary_j_ -= from_primary;
  joules -= from_primary;
  if (joules > 0) {
    const double from_backup = std::min(joules, backup_j_);
    backup_j_ -= from_backup;
    joules -= from_backup;
  }
  if (joules > 0) {
    dead_ = true;
    stats_.deaths.Add();
    return false;
  }
  return true;
}

bool Battery::SwapPrimary(double mwh, double load_mw, Duration swap_time) {
  if (dead_) {
    return false;
  }
  stats_.swaps.Add();
  // During the swap only the backup is present.
  const double swap_demand_j =
      load_mw * 1e-3 * static_cast<double>(swap_time) * 1e-9;
  clock_.Advance(swap_time);
  if (swap_demand_j > backup_j_) {
    backup_j_ = 0;
    dead_ = true;
    stats_.deaths.Add();
    return false;
  }
  backup_j_ -= swap_demand_j;
  primary_capacity_j_ = mwh * kJoulesPerMwh;
  primary_j_ = primary_capacity_j_;
  return true;
}

void Battery::InjectFailure() {
  primary_j_ = 0;
  backup_j_ = 0;
  dead_ = true;
  stats_.injected_failures.Add();
  stats_.deaths.Add();
}

Duration Battery::TimeRemainingAt(double milliwatts) const {
  if (milliwatts <= 0 || dead_) {
    return 0;
  }
  const double joules = primary_j_ + backup_j_;
  const double seconds = joules / (milliwatts * 1e-3);
  const double ns = seconds * 1e9;
  if (ns >= static_cast<double>(std::numeric_limits<Duration>::max())) {
    return std::numeric_limits<Duration>::max();
  }
  return static_cast<Duration>(ns);
}

}  // namespace ssmc
