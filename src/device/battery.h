// Battery model for a mobile computer.
//
// The paper (Section 3.1) relies on two power sources: primary batteries
// that "discharge gradually and predictably" and can hold idle DRAM for many
// days, and a small lithium backup that carries the DRAM for many hours while
// primaries are swapped or after they drain. Battery failure — depletion by
// other devices, or a dropped machine — is what makes flash necessary for
// truly stable storage.
//
// This model tracks remaining energy in both packs, drains them from the
// devices' energy meters, supports a primary-swap operation (load shifts to
// the backup), and supports sudden-failure injection for the E10 reliability
// experiment. When both packs are exhausted the battery reports dead and the
// machine loses DRAM contents.

#ifndef SSMC_SRC_DEVICE_BATTERY_H_
#define SSMC_SRC_DEVICE_BATTERY_H_

#include <cstdint>

#include "src/sim/clock.h"
#include "src/sim/stats.h"
#include "src/support/units.h"

namespace ssmc {

class Battery {
 public:
  // Capacities in milliwatt-hours. A notebook primary pack of the era was
  // ~20,000 mWh; a lithium coin backup ~250 mWh.
  Battery(double primary_mwh, double backup_mwh, SimClock& clock);

  // Consumes energy (nanojoules) from the primary, spilling to the backup
  // when the primary is empty. Returns false if the demand could not be met
  // (the battery is now dead).
  bool Drain(double nanojoules);

  // Convenience: drain for a power level over a duration.
  bool DrainPower(double milliwatts, Duration d) {
    return Drain(milliwatts * 1e-3 * static_cast<double>(d));
  }

  // Replaces the primary pack with a fresh one of `mwh` capacity. While
  // swapped (duration `swap_time`), the backup alone carries `load_mw`;
  // returns false if the backup dies during the swap.
  bool SwapPrimary(double mwh, double load_mw, Duration swap_time);

  // Sudden total failure (machine dropped / pack shorted). DRAM is lost.
  void InjectFailure();

  bool dead() const { return dead_; }
  double primary_remaining_mwh() const { return primary_j_ / kJoulesPerMwh; }
  double backup_remaining_mwh() const { return backup_j_ / kJoulesPerMwh; }
  double primary_fraction() const {
    return primary_capacity_j_ > 0 ? primary_j_ / primary_capacity_j_ : 0;
  }

  // How long the remaining charge lasts at a steady draw (ns).
  Duration TimeRemainingAt(double milliwatts) const;

  struct Stats {
    Counter swaps;
    Counter injected_failures;
    Counter deaths;  // Times the battery went fully dead.
  };
  const Stats& stats() const { return stats_; }

  static constexpr double kJoulesPerMwh = 3.6;

 private:
  double primary_capacity_j_;
  double primary_j_;
  double backup_j_;
  SimClock& clock_;
  bool dead_ = false;
  Stats stats_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_DEVICE_BATTERY_H_
