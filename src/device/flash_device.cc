#include "src/device/flash_device.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace ssmc {

namespace {
constexpr uint8_t kErasedByte = 0xFF;
}  // namespace

FlashDevice::FlashDevice(FlashSpec spec, uint64_t capacity_bytes, int banks,
                         SimClock& clock, uint64_t seed)
    : spec_(std::move(spec)),
      capacity_(capacity_bytes),
      clock_(clock),
      rng_(seed) {
  assert(banks >= 1);
  assert(spec_.erase_sector_bytes > 0);
  assert(capacity_ % spec_.erase_sector_bytes == 0);
  assert((capacity_ / spec_.erase_sector_bytes) % banks == 0 &&
         "sectors must divide evenly into banks");
  contents_.assign(capacity_, kErasedByte);
  erased_template_.assign(spec_.erase_sector_bytes, kErasedByte);
  sectors_.resize(capacity_ / spec_.erase_sector_bytes);
  banks_.resize(banks);
}

int FlashDevice::BankOfAddress(uint64_t addr) const {
  return BankOfSector(addr / sector_bytes());
}

int FlashDevice::BankOfSector(uint64_t sector) const {
  return static_cast<int>(sector / sectors_per_bank());
}

SimTime FlashDevice::OccupyBank(int bank, Duration op_ns, Duration* wait_out) {
  Bank& b = banks_[bank];
  const SimTime start = std::max(clock_.now(), b.busy_until);
  if (wait_out != nullptr) {
    *wait_out = start - clock_.now();
  }
  b.busy_until = start + op_ns;
  total_active_ns_ += op_ns;
  return b.busy_until;
}

void FlashDevice::AddActiveEnergy(Duration busy_ns) {
  energy_.AddActive(active_mw(), busy_ns);
}

Result<Duration> FlashDevice::Read(uint64_t addr, std::span<uint8_t> out,
                                   bool blocking) {
  if (addr + out.size() > capacity_) {
    return OutOfRangeError("flash read past end of device");
  }
  if (out.empty()) {
    return Duration{0};
  }
  // A read may span sectors but not banks (callers split larger transfers;
  // the FTL never issues cross-bank reads).
  const int bank = BankOfAddress(addr);
  if (BankOfAddress(addr + out.size() - 1) != bank) {
    return InvalidArgumentError("flash read crosses a bank boundary");
  }
  for (uint64_t s = addr / sector_bytes();
       s <= (addr + out.size() - 1) / sector_bytes(); ++s) {
    if (sectors_[s].bad) {
      return DataLossError("read from worn-out flash sector " +
                           std::to_string(s));
    }
    if (fault_reads_remaining_ > 0 && s == fault_sector_) {
      fault_reads_remaining_ -= 1;
      return InternalError("injected read fault in flash sector " +
                           std::to_string(s));
    }
  }

  const Duration op_ns = spec_.read.LatencyFor(out.size());
  Duration wait = 0;
  const SimTime done = OccupyBank(bank, op_ns, &wait);
  if (blocking) {
    stats_.read_stall_ns.Add(static_cast<uint64_t>(wait));
  }
  AddActiveEnergy(op_ns);
  if (blocking) {
    clock_.AdvanceTo(done);
  }

  std::copy_n(contents_.begin() + static_cast<ptrdiff_t>(addr), out.size(),
              out.begin());
  stats_.reads.Add();
  stats_.read_bytes.Add(out.size());
  return wait + op_ns;
}

Result<Duration> FlashDevice::Program(uint64_t addr,
                                      std::span<const uint8_t> data,
                                      bool blocking) {
  if (addr + data.size() > capacity_) {
    return OutOfRangeError("flash program past end of device");
  }
  if (data.empty()) {
    return Duration{0};
  }
  const uint64_t sector = addr / sector_bytes();
  if ((addr + data.size() - 1) / sector_bytes() != sector) {
    return InvalidArgumentError("flash program crosses a sector boundary");
  }
  if (sectors_[sector].bad) {
    return DataLossError("program to worn-out flash sector " +
                         std::to_string(sector));
  }
  // Strict NOR semantics: target bytes must be erased. memcmp against the
  // all-0xFF template vectorizes; the per-byte scan only runs on the error
  // path to name the offending address.
  if (std::memcmp(contents_.data() + addr, erased_template_.data(),
                  data.size()) != 0) {
    uint64_t i = 0;
    while (contents_[addr + i] == kErasedByte) {
      ++i;
    }
    return FailedPreconditionError(
        "program to non-erased flash byte at address " +
        std::to_string(addr + i));
  }

  const Duration op_ns = spec_.program.LatencyFor(data.size());
  Duration wait = 0;
  const SimTime done = OccupyBank(BankOfAddress(addr), op_ns, &wait);
  AddActiveEnergy(op_ns);
  if (blocking) {
    clock_.AdvanceTo(done);
  }

  std::copy(data.begin(), data.end(),
            contents_.begin() + static_cast<ptrdiff_t>(addr));
  stats_.programs.Add();
  stats_.programmed_bytes.Add(data.size());
  return wait + op_ns;
}

Result<Duration> FlashDevice::EraseSector(uint64_t sector, bool blocking) {
  if (sector >= num_sectors()) {
    return OutOfRangeError("erase of nonexistent flash sector");
  }
  Sector& s = sectors_[sector];
  if (s.bad) {
    return DataLossError("erase of worn-out flash sector " +
                         std::to_string(sector));
  }

  const Duration op_ns = spec_.erase_ns;
  Duration wait = 0;
  const SimTime done = OccupyBank(BankOfSector(sector), op_ns, &wait);
  AddActiveEnergy(op_ns);
  if (blocking) {
    clock_.AdvanceTo(done);
  }

  s.erase_count += 1;
  stats_.erases.Add();

  // Endurance model: within the guaranteed cycle count erases always
  // succeed. Beyond it, each erase fails (permanently retiring the sector)
  // with probability ramping linearly, reaching certainty at 2x endurance.
  if (spec_.endurance_cycles > 0 && s.erase_count > spec_.endurance_cycles) {
    const double overshoot =
        static_cast<double>(s.erase_count - spec_.endurance_cycles) /
        static_cast<double>(spec_.endurance_cycles);
    if (rng_.NextBool(std::min(1.0, overshoot))) {
      s.bad = true;
      stats_.bad_sectors.Add();
      if (erase_observer_) {
        erase_observer_(sector, s.erase_count, /*now_bad=*/true);
      }
      return DataLossError("flash sector " + std::to_string(sector) +
                           " wore out after " + std::to_string(s.erase_count) +
                           " erase cycles");
    }
  }
  if (erase_observer_) {
    erase_observer_(sector, s.erase_count, /*now_bad=*/false);
  }

  const uint64_t base = sector * sector_bytes();
  std::fill_n(contents_.begin() + static_cast<ptrdiff_t>(base), sector_bytes(),
              kErasedByte);
  return wait + op_ns;
}

bool FlashDevice::IsSectorErased(uint64_t sector) const {
  const uint64_t base = sector * sector_bytes();
  return std::memcmp(contents_.data() + base, erased_template_.data(),
                     sector_bytes()) == 0;
}

void FlashDevice::AccountIdleEnergy() {
  const Duration now = clock_.now();
  const Duration window = now - idle_accounted_until_;
  if (window <= 0) {
    return;
  }
  // Approximation: active time within the window is whatever active time has
  // not yet been offset against idle accounting. Active never exceeds
  // wall-clock times bank count, and in practice is far below the window.
  const Duration idle = std::max<Duration>(0, window - total_active_ns_);
  energy_.AddIdle(standby_mw(), idle);
  idle_accounted_until_ = now;
}

FlashDevice::WearSummary FlashDevice::SummarizeWear() const {
  WearSummary w;
  if (sectors_.empty()) {
    return w;
  }
  w.min_erases = sectors_[0].erase_count;
  double sum = 0;
  for (const Sector& s : sectors_) {
    w.min_erases = std::min(w.min_erases, s.erase_count);
    w.max_erases = std::max(w.max_erases, s.erase_count);
    sum += static_cast<double>(s.erase_count);
    if (s.bad) {
      ++w.bad_sectors;
    }
  }
  w.mean_erases = sum / static_cast<double>(sectors_.size());
  double var = 0;
  for (const Sector& s : sectors_) {
    const double d = static_cast<double>(s.erase_count) - w.mean_erases;
    var += d * d;
  }
  w.stddev_erases = std::sqrt(var / static_cast<double>(sectors_.size()));
  return w;
}

}  // namespace ssmc
