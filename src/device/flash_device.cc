#include "src/device/flash_device.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/obs/obs.h"
#include "src/support/log.h"

namespace ssmc {

namespace {
constexpr uint8_t kErasedByte = 0xFF;

bool ValidatePayloadsFromEnv() {
  const char* v = std::getenv("SSMC_VALIDATE_PAYLOADS");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}
}  // namespace

FlashDevice::FlashDevice(FlashSpec spec, uint64_t capacity_bytes, int banks,
                         SimClock& clock, uint64_t seed)
    : spec_(std::move(spec)),
      capacity_(capacity_bytes),
      clock_(clock),
      rng_(seed),
      sched_(clock, banks) {
  assert(banks >= 1);
  assert(spec_.erase_sector_bytes > 0);
  assert(capacity_ % spec_.erase_sector_bytes == 0);
  assert((capacity_ / spec_.erase_sector_bytes) % banks == 0 &&
         "sectors must divide evenly into banks");
  sector_data_.resize(capacity_ / spec_.erase_sector_bytes);
  sector_extents_.resize(capacity_ / spec_.erase_sector_bytes);
  sectors_per_bank_ = (capacity_ / spec_.erase_sector_bytes) /
                      static_cast<uint64_t>(banks);
  if (std::has_single_bit(spec_.erase_sector_bytes)) {
    sector_shift_ = std::countr_zero(spec_.erase_sector_bytes);
  }
  if (std::has_single_bit(sectors_per_bank_)) {
    bank_shift_ = std::countr_zero(sectors_per_bank_);
  }
  erased_template_.assign(spec_.erase_sector_bytes, kErasedByte);
  sectors_.resize(capacity_ / spec_.erase_sector_bytes);
  // Queued reservations pushed later by a higher-priority (or fairer)
  // request owe their lanes the extra wait; add it as the shift happens so
  // by_class/by_tenant stay exact without draining the pipeline.
  sched_.set_shift_observer([this](const IoRequest& req, Duration delta) {
    stats_.by_class[static_cast<int>(req.priority)].queue_wait_ns.Add(
        static_cast<uint64_t>(delta));
    stats_.by_tenant.For(req.tenant).queue_wait_ns.Add(
        static_cast<uint64_t>(delta));
  });
  if (ValidatePayloadsFromEnv()) {
    set_validate_payloads(true);
  }
}

FlashDevice::~FlashDevice() {
  // The Obs routinely outlives the device (benches snapshot after the run):
  // flush the final stats into the registry and drop the dangling collector.
  if (obs_ != nullptr) {
    obs_->metrics().FlushAndRemoveCollector("flash");
  }
}

void FlashDevice::AttachObs(Obs* obs) {
  if (obs_ != nullptr && obs_ != obs) {
    obs_->metrics().FlushAndRemoveCollector("flash");
  }
  obs_ = obs;
  if (obs_ == nullptr) {
    sched_.set_retire_hook(nullptr);
    return;
  }
  SpanTracer& tracer = obs_->tracer();
  obs_bank_tracks_.clear();
  for (int b = 0; b < num_banks(); ++b) {
    obs_bank_tracks_.push_back(
        tracer.RegisterTrack("flash bank " + std::to_string(b)));
  }
  MetricsRegistry& m = obs_->metrics();
  for (int c = 0; c < kNumIoPriorities; ++c) {
    const std::string cls = IoPriorityName(static_cast<IoPriority>(c));
    obs_class_tracks_[c] = tracer.RegisterTrack("flash class " + cls);
    obs_wait_hist_[c] = m.AddHistogram("flash/" + cls + "/wait_ns");
    obs_service_hist_[c] = m.AddHistogram("flash/" + cls + "/service_ns");
  }
  obs_tenant_hist_.clear();
  sched_.set_retire_hook(
      [this](int bank, const IoRequest& req) { ObsRetire(bank, req); });

  // Snapshot-time pull of the device's Stats — no per-operation cost.
  Counter* reads = m.AddCounter("flash/reads");
  Counter* read_bytes = m.AddCounter("flash/read_bytes");
  Counter* programs = m.AddCounter("flash/programs");
  Counter* programmed_bytes = m.AddCounter("flash/programmed_bytes");
  Counter* erases = m.AddCounter("flash/erases");
  Counter* read_stall = m.AddCounter("flash/read_stall_ns");
  Gauge* bad = m.AddGauge("flash/bad_sectors");
  Gauge* wear_max = m.AddGauge("flash/wear_max_erases");
  m.AddCollector("flash", [=, this] {
    auto mirror = [](Counter* dst, const Counter& src) {
      dst->Reset();
      dst->Add(src.value());
    };
    mirror(reads, stats_.reads);
    mirror(read_bytes, stats_.read_bytes);
    mirror(programs, stats_.programs);
    mirror(programmed_bytes, stats_.programmed_bytes);
    mirror(erases, stats_.erases);
    mirror(read_stall, stats_.read_stall_ns);
    bad->Set(static_cast<int64_t>(stats_.bad_sectors.value()));
    const WearSummary w = SummarizeWear();
    wear_max->Set(static_cast<int64_t>(w.max_erases));
    // Per-tenant SLO lanes, registered on first sight of each tenant
    // (AddCounter is idempotent per name, and handles live in a deque, so
    // snapshot-time registration is safe).
    for (const TenantLaneTable::Entry& e : stats_.by_tenant.entries()) {
      const std::string base =
          "flash/tenant" + std::to_string(e.tenant) + "/";
      auto mirror_lane = [&](const char* key, const Counter& src) {
        Counter* dst = obs_->metrics().AddCounter(base + key);
        dst->Reset();
        dst->Add(src.value());
      };
      mirror_lane("requests", e.value.requests);
      mirror_lane("queue_wait_ns", e.value.queue_wait_ns);
      mirror_lane("service_ns", e.value.service_ns);
    }
  });
}

void FlashDevice::ObsRetire(int bank, const IoRequest& req) {
  const int cls = static_cast<int>(req.priority);
  const Duration wait = std::max<Duration>(0, req.start_time - req.issue_time);
  const Duration service =
      std::max<Duration>(0, req.complete_time - req.start_time);
  obs_wait_hist_[cls]->Record(static_cast<uint64_t>(wait));
  obs_service_hist_[cls]->Record(static_cast<uint64_t>(service));
  // Per-tenant wait/service histograms, one lane per tenant seen (linear
  // scan: a machine serves a handful of tenant ids).
  ObsTenantLane* tenant_lane = nullptr;
  for (ObsTenantLane& lane : obs_tenant_hist_) {
    if (lane.tenant == req.tenant) {
      tenant_lane = &lane;
      break;
    }
  }
  if (tenant_lane == nullptr) {
    const std::string base =
        "flash/tenant" + std::to_string(req.tenant) + "/";
    obs_tenant_hist_.push_back(
        ObsTenantLane{req.tenant,
                      obs_->metrics().AddHistogram(base + "wait_ns"),
                      obs_->metrics().AddHistogram(base + "service_ns")});
    tenant_lane = &obs_tenant_hist_.back();
  }
  tenant_lane->wait->Record(static_cast<uint64_t>(wait));
  tenant_lane->service->Record(static_cast<uint64_t>(service));
  SpanTracer& tracer = obs_->tracer();
  // Bank track: the service window on the medium. Class track: the request's
  // full latency including its queue wait — on a per-class track a long span
  // with a short bank twin reads directly as queueing delay.
  tracer.Span(obs_bank_tracks_[static_cast<size_t>(bank)], IoOpName(req.op),
              req.start_time, service, {"bytes", req.bytes},
              {"wait_ns", static_cast<uint64_t>(wait)},
              {"prio", static_cast<uint64_t>(cls)});
  tracer.Span(obs_class_tracks_[cls], IoOpName(req.op), req.issue_time,
              wait + service, {"bytes", req.bytes},
              {"bank", static_cast<uint64_t>(bank)},
              {"tenant", static_cast<uint64_t>(req.tenant)});
}

int FlashDevice::BankOfAddress(uint64_t addr) const {
  return BankOfSector(SectorOfAddr(addr));
}

void FlashDevice::PrefetchPayload(uint64_t addr, uint64_t bytes) const {
  if (bytes == 0 || addr + bytes > capacity_) {
    return;
  }
  const uint64_t sector = SectorOfAddr(addr);
  if (sector != SectorOfAddr(addr + bytes - 1)) {
    return;  // Callers' transfers never span sectors; don't bother.
  }
  const uint64_t off = OffsetInSector(addr);
  if (const uint8_t* base = sector_data_[sector].get()) {
    const uint8_t* p = base + off;
    for (uint64_t i = 0; i < bytes; i += 64) {
      __builtin_prefetch(p + i, 0);
    }
  }
  // Unmaterialized flat storage reads as 0xFF without touching memory; any
  // extent payloads intersecting the range are worth pulling in though.
  const std::vector<ExtentEntry>& extents = sector_extents_[sector];
  if (extents.empty()) {
    return;
  }
  auto it = std::upper_bound(
      extents.begin(), extents.end(), off,
      [](uint64_t o, const ExtentEntry& e) { return o < e.offset; });
  if (it != extents.begin()) {
    --it;
  }
  for (; it != extents.end() && it->offset < off + bytes; ++it) {
    const uint64_t lo = std::max<uint64_t>(off, it->offset);
    const uint64_t hi =
        std::min<uint64_t>(off + bytes, it->offset + it->ref.size());
    if (lo >= hi) {
      continue;
    }
    const uint8_t* p = it->ref.data() + (lo - it->offset);
    for (uint64_t i = 0; i < hi - lo; i += 64) {
      __builtin_prefetch(p + i, 0);
    }
  }
}

void FlashDevice::PrefetchExtentIndex(uint64_t sector) const {
  const std::vector<ExtentEntry>& extents = sector_extents_[sector];
  for (const ExtentEntry& e : extents) {
    e.ref.Prefetch();
  }
}

int FlashDevice::BankOfSector(uint64_t sector) const {
  return static_cast<int>(bank_shift_ >= 0 ? sector >> bank_shift_
                                           : sector / sectors_per_bank());
}

IoScheduler::Dispatch FlashDevice::SubmitOp(IoOp op, int bank, uint64_t addr,
                                            uint64_t bytes, Duration op_ns,
                                            IoIssue issue) {
  IoRequest req;
  req.op = op;
  req.addr = addr;
  req.bytes = bytes;
  req.priority = issue.priority;
  req.blocking = issue.blocking;
  req.tenant = issue.tenant;
  const IoScheduler::Dispatch d = sched_.Submit(bank, std::move(req), op_ns);
  total_active_ns_ += op_ns;
  IoLaneStats& cls = stats_.by_class[static_cast<int>(issue.priority)];
  cls.requests.Add();
  cls.queue_wait_ns.Add(static_cast<uint64_t>(d.wait));
  cls.service_ns.Add(static_cast<uint64_t>(d.service));
  IoLaneStats& lane = stats_.by_tenant.For(issue.tenant);
  lane.requests.Add();
  lane.queue_wait_ns.Add(static_cast<uint64_t>(d.wait));
  lane.service_ns.Add(static_cast<uint64_t>(d.service));
  AddActiveEnergy(op_ns);
  return d;
}

void FlashDevice::AddActiveEnergy(Duration busy_ns) {
  energy_.AddActive(active_mw(), busy_ns);
}

Result<Duration> FlashDevice::Read(uint64_t addr, std::span<uint8_t> out,
                                   IoIssue issue) {
  if (addr + out.size() > capacity_) {
    return OutOfRangeError("flash read past end of device");
  }
  if (out.empty()) {
    return Duration{0};
  }
  // A read may span sectors but not banks (callers split larger transfers;
  // the FTL never issues cross-bank reads).
  const int bank = BankOfAddress(addr);
  if (BankOfAddress(addr + out.size() - 1) != bank) {
    return InvalidArgumentError("flash read crosses a bank boundary");
  }
  for (uint64_t s = SectorOfAddr(addr);
       s <= SectorOfAddr(addr + out.size() - 1); ++s) {
    if (sectors_[s].bad) {
      return DataLossError("read from worn-out flash sector " +
                           std::to_string(s));
    }
    if (fault_reads_remaining_ > 0 && s == fault_sector_) {
      fault_reads_remaining_ -= 1;
      return InternalError("injected read fault in flash sector " +
                           std::to_string(s));
    }
  }

  const Duration op_ns = spec_.read.LatencyFor(out.size());
  const IoScheduler::Dispatch d =
      SubmitOp(IoOp::kRead, bank, addr, out.size(), op_ns, issue);
  if (issue.blocking) {
    stats_.read_stall_ns.Add(static_cast<uint64_t>(d.wait));
    clock_.AdvanceTo(d.complete);
  }

  uint64_t pos = addr;
  uint8_t* dst = out.data();
  uint64_t remaining = out.size();
  while (remaining > 0) {
    const uint64_t s = SectorOfAddr(pos);
    const uint64_t off = OffsetInSector(pos);
    const uint64_t n = std::min(remaining, sector_bytes() - off);
    CopyOut(s, off, n, dst);
    dst += n;
    pos += n;
    remaining -= n;
  }
  if (validate_payloads_) {
    CheckAgainstShadow(addr, out.data(), out.size());
  }
  stats_.reads.Add();
  stats_.read_bytes.Add(out.size());
  return d.wait + op_ns;
}

void FlashDevice::CopyOut(uint64_t sector, uint64_t off, uint64_t n,
                          uint8_t* dst) const {
  const std::vector<ExtentEntry>& extents = sector_extents_[sector];
  if (!extents.empty()) {
    // Fast path: the range is exactly one programmed extent (the FTL's
    // page-granular reads) — one memcpy, no background fill. Extent content
    // wins over flat content trivially: erase-before-write keeps the two
    // representations disjoint, so flat bytes under an extent are 0xFF.
    auto it = std::lower_bound(
        extents.begin(), extents.end(), off,
        [](const ExtentEntry& e, uint64_t o) { return e.offset < o; });
    if (it != extents.end() && it->offset == off && it->ref.size() == n) {
      std::memcpy(dst, it->ref.data(), n);
      return;
    }
    // General path: flat (or erased) background, then overlay every
    // intersecting extent.
    if (const uint8_t* src = sector_data_[sector].get()) {
      std::memcpy(dst, src + off, n);
    } else {
      std::memset(dst, kErasedByte, n);
    }
    if (it != extents.begin()) {
      --it;  // The previous extent may begin before `off` and reach into it.
    }
    for (; it != extents.end() && it->offset < off + n; ++it) {
      const uint64_t lo = std::max<uint64_t>(off, it->offset);
      const uint64_t hi =
          std::min<uint64_t>(off + n, it->offset + it->ref.size());
      if (lo < hi) {
        std::memcpy(dst + (lo - off), it->ref.data() + (lo - it->offset),
                    hi - lo);
      }
    }
    return;
  }
  if (const uint8_t* src = sector_data_[sector].get()) {
    std::memcpy(dst, src + off, n);
  } else {
    std::memset(dst, kErasedByte, n);
  }
}

Result<PayloadRef> FlashDevice::ReadExtent(uint64_t addr, uint64_t bytes,
                                           ExtentPool& pool, IoIssue issue) {
  assert(pool.payload_bytes() == bytes &&
         "ReadExtent assembles into whole pool extents");
  if (addr + bytes > capacity_) {
    return OutOfRangeError("flash read past end of device");
  }
  if (bytes == 0) {
    return PayloadRef{};
  }
  const int bank = BankOfAddress(addr);
  if (BankOfAddress(addr + bytes - 1) != bank) {
    return InvalidArgumentError("flash read crosses a bank boundary");
  }
  for (uint64_t s = SectorOfAddr(addr); s <= SectorOfAddr(addr + bytes - 1);
       ++s) {
    if (sectors_[s].bad) {
      return DataLossError("read from worn-out flash sector " +
                           std::to_string(s));
    }
    if (fault_reads_remaining_ > 0 && s == fault_sector_) {
      fault_reads_remaining_ -= 1;
      return InternalError("injected read fault in flash sector " +
                           std::to_string(s));
    }
  }

  const Duration op_ns = spec_.read.LatencyFor(bytes);
  const IoScheduler::Dispatch d =
      SubmitOp(IoOp::kRead, bank, addr, bytes, op_ns, issue);
  if (issue.blocking) {
    stats_.read_stall_ns.Add(static_cast<uint64_t>(d.wait));
    clock_.AdvanceTo(d.complete);
  }

  PayloadRef payload;
  const uint64_t sector = SectorOfAddr(addr);
  const uint64_t off = OffsetInSector(addr);
  if (off + bytes <= sector_bytes()) {
    const std::vector<ExtentEntry>& extents = sector_extents_[sector];
    auto it = std::lower_bound(
        extents.begin(), extents.end(), off,
        [](const ExtentEntry& e, uint64_t o) { return e.offset < o; });
    if (it != extents.end() && it->offset == off && it->ref.size() == bytes) {
      payload = it->ref;  // Zero-copy: share the stored extent.
    }
  }
  if (!payload) {
    // No exact match (flat-programmed or fragmented range): assemble a copy,
    // exactly what Read would have produced.
    payload = pool.Allocate();
    uint8_t* dst = payload.MutableData();
    uint64_t pos = addr;
    uint64_t remaining = bytes;
    while (remaining > 0) {
      const uint64_t s = SectorOfAddr(pos);
      const uint64_t o = OffsetInSector(pos);
      const uint64_t n = std::min(remaining, sector_bytes() - o);
      CopyOut(s, o, n, dst);
      dst += n;
      pos += n;
      remaining -= n;
    }
  }
  if (validate_payloads_) {
    CheckAgainstShadow(addr, payload.data(), bytes);
  }
  stats_.reads.Add();
  stats_.read_bytes.Add(bytes);
  return payload;
}

Result<Duration> FlashDevice::Program(uint64_t addr,
                                      std::span<const uint8_t> data,
                                      IoIssue issue) {
  if (addr + data.size() > capacity_) {
    return OutOfRangeError("flash program past end of device");
  }
  if (data.empty()) {
    return Duration{0};
  }
  const uint64_t sector = SectorOfAddr(addr);
  if (SectorOfAddr(addr + data.size() - 1) != sector) {
    return InvalidArgumentError("flash program crosses a sector boundary");
  }
  Sector& meta = sectors_[sector];
  if (meta.bad) {
    return DataLossError("program to worn-out flash sector " +
                         std::to_string(sector));
  }
  // Strict NOR semantics: target bytes must be erased. Bytes at or beyond
  // the programmed watermark are erased by construction (so the FTL's
  // append-order programs skip the scan); below it, RangeErased memcmps both
  // payload representations against the all-0xFF template.
  const uint64_t off = OffsetInSector(addr);
  if (off < meta.programmed_end) {
    uint64_t first_programmed = 0;
    if (!RangeErased(sector, off, data.size(), &first_programmed)) {
      return FailedPreconditionError(
          "program to non-erased flash byte at address " +
          std::to_string(first_programmed));
    }
  }

  if (torn_program_armed_) {
    if (torn_program_skip_ > 0) {
      --torn_program_skip_;
    } else {
      torn_program_armed_ = false;
      const uint64_t applied =
          std::min<uint64_t>(torn_program_bytes_, data.size());
      if (applied > 0) {
        std::memcpy(MaterializeSector(sector) + off, data.data(), applied);
        if (validate_payloads_) {
          std::memcpy(ShadowSector(sector) + off, data.data(), applied);
        }
        meta.programmed_end = std::max(meta.programmed_end,
                                       static_cast<uint32_t>(off + applied));
      }
      stats_.torn_programs.Add();
      return InternalError("injected torn program at flash address " +
                           std::to_string(addr));
    }
  }

  const Duration op_ns = spec_.program.LatencyFor(data.size());
  const IoScheduler::Dispatch d = SubmitOp(
      IoOp::kProgram, BankOfAddress(addr), addr, data.size(), op_ns, issue);
  if (issue.blocking) {
    clock_.AdvanceTo(d.complete);
  }

  std::memcpy(MaterializeSector(sector) + off, data.data(), data.size());
  if (validate_payloads_) {
    std::memcpy(ShadowSector(sector) + off, data.data(), data.size());
  }
  meta.programmed_end =
      std::max(meta.programmed_end, static_cast<uint32_t>(off + data.size()));
  stats_.programs.Add();
  stats_.programmed_bytes.Add(data.size());
  return d.wait + op_ns;
}

Result<Duration> FlashDevice::ProgramExtent(uint64_t addr, PayloadRef payload,
                                            IoIssue issue) {
  const uint64_t size = payload.size();
  if (addr + size > capacity_) {
    return OutOfRangeError("flash program past end of device");
  }
  if (size == 0) {
    return Duration{0};
  }
  const uint64_t sector = SectorOfAddr(addr);
  if (SectorOfAddr(addr + size - 1) != sector) {
    return InvalidArgumentError("flash program crosses a sector boundary");
  }
  Sector& meta = sectors_[sector];
  if (meta.bad) {
    return DataLossError("program to worn-out flash sector " +
                         std::to_string(sector));
  }
  const uint64_t off = OffsetInSector(addr);
  if (off < meta.programmed_end) {
    uint64_t first_programmed = 0;
    if (!RangeErased(sector, off, size, &first_programmed)) {
      return FailedPreconditionError(
          "program to non-erased flash byte at address " +
          std::to_string(first_programmed));
    }
  }

  if (torn_program_armed_) {
    if (torn_program_skip_ > 0) {
      --torn_program_skip_;
    } else {
      torn_program_armed_ = false;
      // The surviving prefix lands in the flat representation: a torn extent
      // is no longer the extent the writer handed over, so filing the ref
      // would misrepresent the medium.
      const uint64_t applied = std::min<uint64_t>(torn_program_bytes_, size);
      if (applied > 0) {
        std::memcpy(MaterializeSector(sector) + off, payload.data(), applied);
        if (validate_payloads_) {
          std::memcpy(ShadowSector(sector) + off, payload.data(), applied);
        }
        meta.programmed_end = std::max(meta.programmed_end,
                                       static_cast<uint32_t>(off + applied));
      }
      stats_.torn_programs.Add();
      return InternalError("injected torn program at flash address " +
                           std::to_string(addr));
    }
  }

  const Duration op_ns = spec_.program.LatencyFor(size);
  const IoScheduler::Dispatch d =
      SubmitOp(IoOp::kProgram, BankOfAddress(addr), addr, size, op_ns, issue);
  if (issue.blocking) {
    clock_.AdvanceTo(d.complete);
  }

  if (validate_payloads_) {
    std::memcpy(ShadowSector(sector) + off, payload.data(), size);
  }
  // File the ref instead of copying the bytes: the device is now one more
  // holder of the extent.
  std::vector<ExtentEntry>& extents = sector_extents_[sector];
  auto it = std::lower_bound(
      extents.begin(), extents.end(), off,
      [](const ExtentEntry& e, uint64_t o) { return e.offset < o; });
  extents.insert(it,
                 ExtentEntry{static_cast<uint32_t>(off), std::move(payload)});
  meta.programmed_end =
      std::max(meta.programmed_end, static_cast<uint32_t>(off + size));
  stats_.programs.Add();
  stats_.programmed_bytes.Add(size);
  return d.wait + op_ns;
}

bool FlashDevice::RangeErased(uint64_t sector, uint64_t off, uint64_t n,
                              uint64_t* first_programmed_addr) const {
  const uint64_t base_addr = sector * sector_bytes();
  uint64_t first = ~uint64_t{0};
  // Flat representation: one vectorized memcmp, per-byte scan only to name
  // the offending address (identical to the pre-extent check).
  if (const uint8_t* cur = sector_data_[sector].get();
      cur != nullptr &&
      std::memcmp(cur + off, erased_template_.data(), n) != 0) {
    uint64_t i = 0;
    while (cur[off + i] == kErasedByte) {
      ++i;
    }
    first = off + i;
  }
  // Extent representation: every entry intersecting the range. Disjointness
  // means an extent's bytes are 0xFF in the flat buffer, so the minimum over
  // both scans names the true first programmed byte.
  const std::vector<ExtentEntry>& extents = sector_extents_[sector];
  auto it = std::upper_bound(
      extents.begin(), extents.end(), off,
      [](uint64_t o, const ExtentEntry& e) { return o < e.offset; });
  if (it != extents.begin()) {
    --it;
  }
  for (; it != extents.end() && it->offset < off + n; ++it) {
    const uint64_t lo = std::max<uint64_t>(off, it->offset);
    const uint64_t hi = std::min<uint64_t>(off + n, it->offset + it->ref.size());
    if (lo >= hi || lo >= first) {
      continue;
    }
    const uint8_t* p = it->ref.data() + (lo - it->offset);
    if (std::memcmp(p, erased_template_.data(), hi - lo) != 0) {
      uint64_t i = 0;
      while (p[i] == kErasedByte) {
        ++i;
      }
      first = std::min(first, lo + i);
    }
  }
  if (first == ~uint64_t{0}) {
    return true;
  }
  if (first_programmed_addr != nullptr) {
    *first_programmed_addr = base_addr + first;
  }
  return false;
}

Result<Duration> FlashDevice::EraseSector(uint64_t sector, IoIssue issue) {
  if (sector >= num_sectors()) {
    return OutOfRangeError("erase of nonexistent flash sector");
  }
  Sector& s = sectors_[sector];
  if (s.bad) {
    return DataLossError("erase of worn-out flash sector " +
                         std::to_string(sector));
  }

  if (erase_interrupt_armed_) {
    erase_interrupt_armed_ = false;
    // An interrupted erase still consumes the wear cycle but leaves the
    // sector's contents as they were — callers must re-erase before reuse.
    s.erase_count += 1;
    stats_.erases.Add();
    stats_.interrupted_erases.Add();
    if (erase_observer_) {
      erase_observer_(sector, s.erase_count, /*now_bad=*/false);
    }
    return InternalError("injected interrupted erase of flash sector " +
                         std::to_string(sector));
  }

  const Duration op_ns = spec_.erase_ns;
  const IoScheduler::Dispatch d =
      SubmitOp(IoOp::kErase, BankOfSector(sector), sector * sector_bytes(),
               /*bytes=*/0, op_ns, issue);
  if (issue.blocking) {
    clock_.AdvanceTo(d.complete);
  }

  s.erase_count += 1;
  stats_.erases.Add();

  // Endurance model: within the guaranteed cycle count erases always
  // succeed. Beyond it, each erase fails (permanently retiring the sector)
  // with probability ramping linearly, reaching certainty at 2x endurance.
  if (spec_.endurance_cycles > 0 && s.erase_count > spec_.endurance_cycles) {
    const double overshoot =
        static_cast<double>(s.erase_count - spec_.endurance_cycles) /
        static_cast<double>(spec_.endurance_cycles);
    if (rng_.NextBool(std::min(1.0, overshoot))) {
      s.bad = true;
      stats_.bad_sectors.Add();
      if (erase_observer_) {
        erase_observer_(sector, s.erase_count, /*now_bad=*/true);
      }
      return DataLossError("flash sector " + std::to_string(sector) +
                           " wore out after " + std::to_string(s.erase_count) +
                           " erase cycles");
    }
  }
  if (erase_observer_) {
    erase_observer_(sector, s.erase_count, /*now_bad=*/false);
  }

  // Extent payloads are simply dropped (a refcount decrement per entry, no
  // byte traffic — other layers still aliasing an extent keep its bytes
  // alive). An already-materialized flat buffer is kept and refilled (no
  // allocator churn); a never-programmed sector stays null.
  sector_extents_[sector].clear();
  if (uint8_t* data_ptr = sector_data_[sector].get()) {
    std::memset(data_ptr, kErasedByte, sector_bytes());
  }
  if (validate_payloads_) {
    if (uint8_t* shadow = shadow_data_[sector].get()) {
      std::memset(shadow, kErasedByte, sector_bytes());
    }
  }
  s.programmed_end = 0;
  return d.wait + op_ns;
}

bool FlashDevice::IsSectorErased(uint64_t sector) const {
  for (const ExtentEntry& e : sector_extents_[sector]) {
    if (std::memcmp(e.ref.data(), erased_template_.data(), e.ref.size()) !=
        0) {
      return false;
    }
  }
  const uint8_t* data_ptr = sector_data_[sector].get();
  return data_ptr == nullptr ||
         std::memcmp(data_ptr, erased_template_.data(), sector_bytes()) == 0;
}

uint8_t* FlashDevice::MaterializeSector(uint64_t sector) {
  std::unique_ptr<uint8_t[]>& slot = sector_data_[sector];
  if (!slot) {
    slot.reset(new uint8_t[sector_bytes()]);
    std::memset(slot.get(), kErasedByte, sector_bytes());
  }
  return slot.get();
}

uint8_t* FlashDevice::ShadowSector(uint64_t sector) {
  std::unique_ptr<uint8_t[]>& slot = shadow_data_[sector];
  if (!slot) {
    slot.reset(new uint8_t[sector_bytes()]);
    std::memset(slot.get(), kErasedByte, sector_bytes());
  }
  return slot.get();
}

void FlashDevice::set_validate_payloads(bool on) {
  if (on == validate_payloads_) {
    return;
  }
  validate_payloads_ = on;
  if (!on) {
    shadow_data_.clear();
    return;
  }
  // Seed the shadow from the current merged contents so the oracle can be
  // switched on mid-life (tests attach it after setup writes).
  shadow_data_.resize(num_sectors());
  for (uint64_t s = 0; s < num_sectors(); ++s) {
    if (sector_data_[s] != nullptr || !sector_extents_[s].empty()) {
      CopyOut(s, 0, sector_bytes(), ShadowSector(s));
    }
  }
}

void FlashDevice::CheckAgainstShadow(uint64_t addr, const uint8_t* got,
                                     uint64_t n) {
  uint64_t pos = addr;
  uint64_t remaining = n;
  while (remaining > 0) {
    const uint64_t s = SectorOfAddr(pos);
    const uint64_t off = OffsetInSector(pos);
    const uint64_t chunk = std::min(remaining, sector_bytes() - off);
    const uint8_t* shadow = shadow_data_[s].get();
    bool match;
    if (shadow != nullptr) {
      match = std::memcmp(got + (pos - addr), shadow + off, chunk) == 0;
    } else {
      // Never-programmed sector: the memcpy path would have produced 0xFF.
      match = std::memcmp(got + (pos - addr), erased_template_.data(),
                          chunk) == 0;
    }
    if (!match) {
      payload_validation_failures_ += 1;
      SSMC_LOG(kError) << "flash payload oracle mismatch: read of "
                       << chunk << " bytes at address " << pos
                       << " disagrees with the memcpy shadow";
    }
    pos += chunk;
    remaining -= chunk;
  }
}

void FlashDevice::AccountIdleEnergy() {
  const Duration now = clock_.now();
  const Duration window = now - idle_accounted_until_;
  if (window <= 0) {
    return;
  }
  // Approximation: active time within the window is whatever active time has
  // not yet been offset against idle accounting. Active never exceeds
  // wall-clock times bank count, and in practice is far below the window.
  const Duration idle = std::max<Duration>(0, window - total_active_ns_);
  energy_.AddIdle(standby_mw(), idle);
  idle_accounted_until_ = now;
}

FlashDevice::WearSummary FlashDevice::SummarizeWear() const {
  WearSummary w;
  if (sectors_.empty()) {
    return w;
  }
  w.min_erases = sectors_[0].erase_count;
  double sum = 0;
  for (const Sector& s : sectors_) {
    w.min_erases = std::min(w.min_erases, s.erase_count);
    w.max_erases = std::max(w.max_erases, s.erase_count);
    sum += static_cast<double>(s.erase_count);
    if (s.bad) {
      ++w.bad_sectors;
    }
  }
  w.mean_erases = sum / static_cast<double>(sectors_.size());
  double var = 0;
  for (const Sector& s : sectors_) {
    const double d = static_cast<double>(s.erase_count) - w.mean_erases;
    var += d * d;
  }
  w.stddev_erases = std::sqrt(var / static_cast<double>(sectors_.size()));
  return w;
}

}  // namespace ssmc
