// Simulated direct-mapped (NOR-style) flash memory.
//
// Semantics modeled on the paper's description of flash (Section 2):
//  * random byte-level reads at DRAM-like speed (fixed access latency plus a
//    per-byte streaming cost);
//  * programming is ~100x slower than reading and can only clear bits: a
//    program targets bytes that are in the erased state (0xFF), otherwise it
//    fails with FAILED_PRECONDITION (strict mode) — this is the
//    "erase-before-write" constraint the OS must hide;
//  * erasure happens in fixed-size sectors and is slow (ms to seconds);
//  * each sector endures a limited number of erase cycles; beyond the
//    guaranteed endurance, erases fail probabilistically and the sector goes
//    bad (reads return DATA_LOSS) — this drives the wear-leveling experiment.
//
// Bank model (Section 3.3): capacity is split into equal contiguous banks,
// each an independent channel of the device's IoScheduler. Every operation
// is an IoRequest dispatched onto its bank's channel: while a program or
// erase is being served in a bank, requests to that bank queue behind it;
// requests to other banks proceed. Under the default FIFO policy dispatch
// reproduces the historical per-bank busy-until charge-latency model
// bit-for-bit; IoSchedPolicy::kPriority lets foreground reads jump queued
// flush/cleaner work (see io_request.h).
//
// Callers describe how they issue each operation with an IoIssue: the
// scheduling class, and whether the caller's clock advances to completion
// (the CPU is waiting) or the bank absorbs the time in the background (the
// storage manager's flush and cleaning paths).
//
// Threading: none. The simulator is single-threaded; "concurrency" between
// the CPU and the flash array is represented by the per-bank reservation
// timelines of the scheduler.

#ifndef SSMC_SRC_DEVICE_FLASH_DEVICE_H_
#define SSMC_SRC_DEVICE_FLASH_DEVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/device/specs.h"
#include "src/sim/clock.h"
#include "src/sim/energy.h"
#include "src/sim/io_request.h"
#include "src/sim/io_scheduler.h"
#include "src/sim/io_stats.h"
#include "src/sim/stats.h"
#include "src/support/extent.h"
#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/support/units.h"

namespace ssmc {

class Obs;

class FlashDevice {
 public:
  // capacity_bytes must be a multiple of spec.erase_sector_bytes * banks.
  FlashDevice(FlashSpec spec, uint64_t capacity_bytes, int banks,
              SimClock& clock, uint64_t seed = 1);
  // Flushes and removes this device's metrics collector from any attached
  // Obs (which routinely outlives the device).
  ~FlashDevice();

  // --- Geometry ---------------------------------------------------------
  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t sector_bytes() const { return spec_.erase_sector_bytes; }
  uint64_t num_sectors() const { return capacity_ / sector_bytes(); }
  int num_banks() const { return sched_.num_channels(); }
  uint64_t sectors_per_bank() const { return sectors_per_bank_; }
  int BankOfAddress(uint64_t addr) const;
  int BankOfSector(uint64_t sector) const;

  // Advisory: start pulling the payload cache lines of [addr, addr + bytes)
  // toward the core ahead of a Read/Program. No effect on simulated state or
  // timing; never materializes an untouched sector.
  void PrefetchPayload(uint64_t addr, uint64_t bytes) const;

  // Advisory, for relocation pre-loops: pull `sector`'s extent directory and
  // each extent's refcount header toward the core. Zero-copy relocation
  // touches exactly these lines — never the payload bytes — so this is the
  // extent-plane counterpart of PrefetchPayload (which pulls the bytes).
  void PrefetchExtentIndex(uint64_t sector) const;
  const FlashSpec& spec() const { return spec_; }
  SimClock& clock() { return clock_; }

  // --- Operations -------------------------------------------------------
  // All operations validate bounds, then submit an IoRequest to the bank's
  // scheduler channel. Blocking issues advance the shared clock to the
  // request's completion and return the total latency the caller observed
  // (queue wait + service). Non-blocking issues reserve bank time and return
  // the same figure without advancing the clock (under kPriority it is the
  // dispatch-time estimate; queued work may shift later).

  // Random-access read. Foreground-blocking by default (the CPU consumes the
  // data); the cleaner's relocation reads pass a background issue so they
  // reserve bank time without advancing the caller's clock. Fails with
  // DATA_LOSS if any touched sector has worn out.
  Result<Duration> Read(uint64_t addr, std::span<uint8_t> out,
                        IoIssue issue = {});

  // Program pre-erased bytes. The span must lie within one sector. Fails with
  // FAILED_PRECONDITION if any target byte is not 0xFF.
  Result<Duration> Program(uint64_t addr, std::span<const uint8_t> data,
                           IoIssue issue = {});

  // Zero-copy variants for the FTL data plane. Validation, simulated timing,
  // energy, and stats are identical to Read/Program byte-for-byte; only the
  // host-side payload representation differs.
  //
  // ProgramExtent files the refcounted payload against the sector instead of
  // memcpying it into a flat buffer: the device becomes one more holder of
  // the extent (a counter bump), so a cleaner relocation that re-programs an
  // unchanged page moves zero payload bytes.
  Result<Duration> ProgramExtent(uint64_t addr, PayloadRef payload,
                                 IoIssue issue = {});

  // ReadExtent returns a shared ref to the stored payload when the range
  // exactly matches a previously programmed extent (the FTL's page reads —
  // no bytes move); otherwise it assembles the range into a fresh extent
  // from `pool` (whose payload_bytes() must equal `bytes`). Errors exactly
  // like Read (bounds, bank crossing, DATA_LOSS, injected faults).
  Result<PayloadRef> ReadExtent(uint64_t addr, uint64_t bytes,
                                ExtentPool& pool, IoIssue issue = {});

  // Erase one sector by index. Increments wear; may permanently fail the
  // sector once past the endurance limit.
  Result<Duration> EraseSector(uint64_t sector, IoIssue issue = {});

  // True if the sector is entirely 0xFF (cheap check used by allocators).
  bool IsSectorErased(uint64_t sector) const;
  bool IsSectorBad(uint64_t sector) const { return sectors_[sector].bad; }
  uint64_t EraseCount(uint64_t sector) const {
    return sectors_[sector].erase_count;
  }

  // Simulated time at which the given bank becomes free (completion of its
  // last reservation; monotone, like the busy-until timestamp it replaces).
  SimTime BankBusyUntil(int bank) const {
    return sched_.ChannelBusyUntil(bank);
  }

  // Request scheduling policy for all banks (default FIFO — byte-identical
  // to the pre-pipeline simulator). Switch requires an idle device.
  IoSchedPolicy sched_policy() const { return sched_.policy(); }
  void set_sched_policy(IoSchedPolicy policy) { sched_.set_policy(policy); }
  // The underlying per-bank scheduler (tests, pipeline introspection).
  IoScheduler& scheduler() { return sched_; }

  // Per-tenant QoS knobs, forwarded to the scheduler: a kWeightedFair share
  // weight and a kTokenBucket byte-rate cap (see io_scheduler.h).
  void set_tenant_weight(TenantId tenant, uint32_t weight) {
    sched_.set_tenant_weight(tenant, weight);
  }
  void set_tenant_rate(TenantId tenant, uint64_t bytes_per_s,
                       uint64_t burst_bytes) {
    sched_.set_tenant_rate(tenant, bytes_per_s, burst_bytes);
  }

  // Erase-count change notification. Called after every EraseSector attempt
  // that bumps a sector's wear (i.e. on success AND on a wear-out failure —
  // the cycle is consumed either way), with the new count and whether the
  // sector just went bad. Lets the FTL's wear trackers stay incremental
  // instead of rescanning erase counts. At most one observer; pass nullptr
  // to unhook.
  using EraseObserver =
      std::function<void(uint64_t sector, uint64_t new_count, bool now_bad)>;
  void set_erase_observer(EraseObserver observer) {
    erase_observer_ = std::move(observer);
  }

  // Observability (nullable; null detaches). Registers one trace track per
  // bank and per priority class plus wait/service histograms and counter
  // mirrors in `obs`, and hooks the scheduler's retire path so every request
  // becomes a span with FINAL timestamps (queue-shifts under kPriority are
  // settled by retirement). With no obs attached the hot paths are
  // unchanged: the scheduler's retire hook stays empty.
  void AttachObs(Obs* obs);

  // Test hook: the next `count` reads touching `sector` fail with INTERNAL
  // (transient fault, distinct from wear-out DATA_LOSS). The failure is
  // injected before the request is scheduled, so it has no timing or energy
  // side effects.
  void InjectReadFaults(uint64_t sector, int count) {
    fault_sector_ = sector;
    fault_reads_remaining_ = count;
  }

  // Test hook (crash injection): after `after_programs` further successful
  // programs, the next program is torn by a simulated power failure — only
  // its first `bytes` bytes reach the medium, the op fails with INTERNAL,
  // and stats().torn_programs is bumped. Like InjectReadFaults the failure
  // fires before the request is scheduled (no timing or energy side
  // effects), and the hook is one-shot: it disarms after firing, so every
  // later program is genuine.
  void FailNextProgramAfterBytes(uint64_t bytes, uint64_t after_programs = 0) {
    torn_program_armed_ = true;
    torn_program_bytes_ = bytes;
    torn_program_skip_ = after_programs;
  }

  // Test hook (crash injection): the next EraseSector is interrupted by a
  // simulated power failure — the wear cycle is consumed (observer notified)
  // but the sector's contents stay untouched and the op fails with INTERNAL.
  // One-shot, like FailNextProgramAfterBytes.
  void InterruptNextErase() { erase_interrupt_armed_ = true; }

  // Differential payload oracle (also enabled by the SSMC_VALIDATE_PAYLOADS
  // env var, same pattern as the event queue's SSMC_VALIDATE_EVENTS): every
  // program additionally memcpys its bytes into a flat shadow copy of the
  // card — the representation the extent layer replaced — and every
  // Read/ReadExtent result is memcmp'd against it. Mismatches are logged at
  // kError and counted. O(bytes) per op — tests only.
  void set_validate_payloads(bool on);
  bool validate_payloads() const { return validate_payloads_; }
  // Oracle disagreements observed (0 when the mode is off or every payload
  // matched the memcpy path).
  uint64_t payload_validation_failures() const {
    return payload_validation_failures_;
  }

  // --- Accounting -------------------------------------------------------
  // Keyed request attribution (io_stats.h): how much of each stream's
  // latency was queueing behind other work vs time on the medium, by
  // priority class (dense array) and by tenant (sparse table — only
  // tenants that actually issued requests appear). Queue waits are kept
  // exact under reordering policies via the scheduler's shift observer
  // (pushed-back reservations add their extra wait as it happens).
  struct Stats {
    Counter reads;            // Read operations.
    Counter read_bytes;
    Counter programs;         // Program operations.
    Counter programmed_bytes;
    Counter erases;           // Sector erases (includes failed attempts).
    Counter read_stall_ns;    // Time blocking reads spent waiting on banks.
    Counter bad_sectors;      // Sectors permanently failed.
    Counter torn_programs;    // Injected power-fail torn writes (tests).
    Counter interrupted_erases;  // Injected power-fail erases (tests).
    IoLaneStats by_class[kNumIoPriorities];  // Indexed by IoPriority.
    TenantLaneTable by_tenant;               // Keyed by issuing tenant.
  };
  const Stats& stats() const { return stats_; }
  const EnergyMeter& energy() const { return energy_; }
  // Active (busy) nanoseconds across all banks; idle time is wall minus this.
  Duration total_active_ns() const { return total_active_ns_; }
  // Adds idle energy for the interval [0, clock.now()) not covered by active
  // time; call once when finalizing a run.
  void AccountIdleEnergy();

  struct WearSummary {
    uint64_t min_erases = 0;
    uint64_t max_erases = 0;
    double mean_erases = 0;
    double stddev_erases = 0;
    uint64_t bad_sectors = 0;
  };
  WearSummary SummarizeWear() const;

  // Power model: an operation activates one chip (~1 MiB of array), so
  // active draw is the paper's per-megabyte figure for one megabyte; standby
  // (retention/interface) draw scales with the whole card.
  double active_mw() const { return spec_.active_mw_per_mib; }
  double standby_mw() const {
    return spec_.standby_mw_per_mib * (static_cast<double>(capacity_) / kMiB);
  }

 private:
  struct Sector {
    uint64_t erase_count = 0;
    // End offset (exclusive) of the highest byte programmed since the last
    // erase. Bytes at or beyond it are guaranteed still erased, so
    // append-order programs (the FTL's only pattern) skip the erased-check
    // memcmp; programs below it fall back to the full check.
    uint32_t programmed_end = 0;
    bool bad = false;
  };

  // Sector geometry is almost always a power of two; cache the shift so the
  // per-operation address decomposition is a shift/mask instead of 64-bit
  // division. -1 falls back to division for odd geometries.
  uint64_t SectorOfAddr(uint64_t addr) const {
    return sector_shift_ >= 0 ? addr >> sector_shift_ : addr / sector_bytes();
  }
  uint64_t OffsetInSector(uint64_t addr) const {
    return sector_shift_ >= 0 ? addr & (sector_bytes() - 1)
                              : addr % sector_bytes();
  }

  // Builds and submits the request for an operation of duration `op_ns` on
  // `bank`, records attribution, and advances the clock for blocking issues.
  // Returns the dispatch (wait + service = the latency the caller observed).
  IoScheduler::Dispatch SubmitOp(IoOp op, int bank, uint64_t addr,
                                 uint64_t bytes, Duration op_ns,
                                 IoIssue issue);

  void AddActiveEnergy(Duration busy_ns);

  // Retire-hook body: spans + latency histograms for one finished request.
  void ObsRetire(int bank, const IoRequest& req);

  // Returns the sector's payload buffer, materializing (and 0xFF-filling) it
  // on first touch.
  uint8_t* MaterializeSector(uint64_t sector);

  // One programmed extent within a sector: `ref`'s payload covers
  // [offset, offset + ref.size()). Entries are kept sorted by offset and
  // disjoint (erase-before-write semantics forbid overlap, enforced by the
  // erased checks — the same rule that keeps extents disjoint from any
  // flat-programmed bytes in the same sector).
  struct ExtentEntry {
    uint32_t offset;
    PayloadRef ref;
  };

  // Assembles [off, off + n) of `sector` into `dst`: flat bytes (or 0xFF for
  // unmaterialized) overlaid with every intersecting extent. Exact
  // single-extent matches short-circuit to one memcpy.
  void CopyOut(uint64_t sector, uint64_t off, uint64_t n, uint8_t* dst) const;

  // Erased check for [off, off + n) across both representations. On failure
  // returns the absolute address of the first non-erased byte (for the
  // error message); returns n (i.e. off + n relative) sentinel via bool.
  bool RangeErased(uint64_t sector, uint64_t off, uint64_t n,
                   uint64_t* first_programmed_addr) const;

  // Shadow flat card for validate_payloads mode (lazy per sector, 0xFF
  // before first program like sector_data_).
  uint8_t* ShadowSector(uint64_t sector);
  // memcmp `got` against the shadow's [addr, addr + n); logs + counts on
  // mismatch.
  void CheckAgainstShadow(uint64_t addr, const uint8_t* got, uint64_t n);

  FlashSpec spec_;
  uint64_t capacity_;
  SimClock& clock_;
  Rng rng_;
  // Per-sector payloads, materialized on first program. A null entry means
  // the sector has never been programmed and reads as all-0xFF. Most of a
  // card stays in that state for most workloads, so construction costs no
  // capacity-sized fill (and no page faults re-touching tens of MiB).
  int sector_shift_ = -1;
  int bank_shift_ = -1;
  uint64_t sectors_per_bank_ = 0;
  std::vector<std::unique_ptr<uint8_t[]>> sector_data_;
  // Per-sector extent payloads (ProgramExtent). A sector may mix both
  // representations — flat bytes from raw Program spans, extents from the
  // FTL — with CopyOut/RangeErased merging the two views; pure-FTL sectors
  // never materialize a flat buffer at all, so erases drop refs instead of
  // memsetting.
  std::vector<std::vector<ExtentEntry>> sector_extents_;
  // One sector's worth of 0xFF, compared wholesale (memcmp) by the erased
  // checks in Program() and IsSectorErased().
  std::vector<uint8_t> erased_template_;
  std::vector<Sector> sectors_;
  // validate_payloads state (see set_validate_payloads).
  bool validate_payloads_ = false;
  uint64_t payload_validation_failures_ = 0;
  std::vector<std::unique_ptr<uint8_t[]>> shadow_data_;
  IoScheduler sched_;  // One channel per bank.
  Stats stats_;
  EnergyMeter energy_;
  EraseObserver erase_observer_;
  uint64_t fault_sector_ = 0;
  int fault_reads_remaining_ = 0;
  bool torn_program_armed_ = false;
  uint64_t torn_program_bytes_ = 0;
  uint64_t torn_program_skip_ = 0;
  bool erase_interrupt_armed_ = false;
  Duration total_active_ns_ = 0;
  Duration idle_accounted_until_ = 0;

  Obs* obs_ = nullptr;
  std::vector<int> obs_bank_tracks_;
  int obs_class_tracks_[kNumIoPriorities] = {};
  Histogram* obs_wait_hist_[kNumIoPriorities] = {};
  Histogram* obs_service_hist_[kNumIoPriorities] = {};
  // Per-tenant wait/service histogram lanes, grown as tenants appear.
  struct ObsTenantLane {
    TenantId tenant = kDefaultTenant;
    Histogram* wait = nullptr;
    Histogram* service = nullptr;
  };
  std::vector<ObsTenantLane> obs_tenant_hist_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_DEVICE_FLASH_DEVICE_H_
