// Simulated small-form-factor magnetic disk — the technology the paper argues
// mobile computers will drop. Used as the baseline substrate for the
// conventional DiskFileSystem and the E1/E3/E5 comparisons.
//
// Timing model:
//  * seek: track-to-track minimum plus a square-root profile up to the full
//    stroke (the standard first-order model of arm acceleration);
//  * rotation: the platter position is derived deterministically from the
//    simulated clock, so rotational delay is the angular distance from the
//    head's current position to the target sector;
//  * transfer: media rate from the spec;
//  * spin state: the disk spins down after an idle timeout (a power-saving
//    necessity on mobile machines) and pays the spin-up latency on the next
//    access. Power accounting distinguishes active / idle-spinning / standby.
//
// Request pipeline: the single arm is one IoScheduler channel (FIFO — the
// arm position makes reordering nonsensical here). Each operation is an
// IoRequest whose service time (seek + rotation + transfer) is computed at
// dispatch, since rotation depends on when the arm starts. Blocking issues
// advance the clock to completion; a non-blocking issue (write-behind)
// reserves arm time and lets the next request queue behind it — the queue
// wait is surfaced in Stats with the same breakdown FlashDevice reports.
// Spin-up always advances the caller's clock: the issuing process waits for
// the medium to become ready before the request can be scheduled.

#ifndef SSMC_SRC_DEVICE_DISK_DEVICE_H_
#define SSMC_SRC_DEVICE_DISK_DEVICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/device/specs.h"
#include "src/sim/clock.h"
#include "src/sim/energy.h"
#include "src/sim/io_request.h"
#include "src/sim/io_scheduler.h"
#include "src/sim/stats.h"
#include "src/support/status.h"
#include "src/support/units.h"

namespace ssmc {

class Obs;

class DiskDevice {
 public:
  DiskDevice(DiskSpec spec, SimClock& clock);
  // Flushes and removes this device's metrics collector from any attached
  // Obs (which routinely outlives the device).
  ~DiskDevice();

  uint64_t capacity_bytes() const { return spec_.capacity_bytes(); }
  uint64_t sector_bytes() const { return spec_.sector_bytes; }
  uint64_t num_sectors() const {
    return spec_.sectors_per_track * spec_.cylinders;
  }
  const DiskSpec& spec() const { return spec_; }

  // Disable automatic spin-down (0 = never spin down).
  void set_spin_down_after(Duration idle) { spin_down_after_ = idle; }

  // Sector-granularity I/O; `sector` is a logical block address. Buffers
  // must be a multiple of the sector size. Blocking (the default) advances
  // the clock to the request's completion; a non-blocking issue reserves the
  // arm without advancing the clock, and later requests queue behind it.
  Result<Duration> ReadSectors(uint64_t sector, std::span<uint8_t> out,
                               IoIssue issue = {});
  Result<Duration> WriteSectors(uint64_t sector, std::span<const uint8_t> data,
                                IoIssue issue = {});

  // Time at which the arm finishes its last reservation (monotone).
  SimTime ArmBusyUntil() const { return sched_.ChannelBusyUntil(0); }

  // Observability (nullable; null detaches): one "disk arm" trace track with
  // a span per retired request, spin-up instants, latency histograms, and a
  // Stats mirror collector.
  void AttachObs(Obs* obs);

  struct Stats {
    Counter reads;
    Counter read_bytes;
    Counter writes;
    Counter written_bytes;
    Counter seeks;
    Counter seek_ns;
    Counter rotation_ns;
    Counter transfer_ns;
    Counter spin_ups;
    // Pipeline attribution, parity with FlashDevice::Stats: time requests
    // spent queued behind the arm's earlier reservations (all requests), and
    // the slice of that wait observed by blocking reads specifically.
    Counter queue_wait_ns;
    Counter read_stall_ns;
  };
  const Stats& stats() const { return stats_; }
  const EnergyMeter& energy() const { return energy_; }
  // Accounts idle-spinning and standby energy up to now; call when
  // finalizing a run.
  void AccountIdleEnergy();

 private:
  uint64_t CylinderOf(uint64_t sector) const {
    return sector / spec_.sectors_per_track;
  }
  uint64_t SectorInTrack(uint64_t sector) const {
    return sector % spec_.sectors_per_track;
  }

  Duration SeekTime(uint64_t from_cyl, uint64_t to_cyl) const;
  // Rotational delay from the platter angle at `at` to the start of
  // `sector_in_track`.
  Duration RotationDelay(SimTime at, uint64_t sector_in_track) const;
  Duration TransferTime(uint64_t bytes) const;

  // Ensures the disk is spinning; advances the clock through spin-up if not.
  // Also applies auto-spin-down bookkeeping for the idle gap since the last
  // operation.
  void EnsureSpinning();

  Result<Duration> DoIo(uint64_t sector, uint64_t bytes, bool is_write,
                        IoIssue issue);

  DiskSpec spec_;
  SimClock& clock_;
  IoScheduler sched_;  // One channel: the arm. Always FIFO.
  std::vector<uint8_t> contents_;
  uint64_t head_cylinder_ = 0;
  bool spinning_ = true;
  SimTime last_op_end_ = 0;
  Duration spin_down_after_ = 5 * kSecond;
  Stats stats_;
  EnergyMeter energy_;
  SimTime energy_accounted_until_ = 0;

  Obs* obs_ = nullptr;
  int obs_arm_track_ = 0;
  Histogram* obs_wait_hist_ = nullptr;
  Histogram* obs_service_hist_ = nullptr;
};

}  // namespace ssmc

#endif  // SSMC_SRC_DEVICE_DISK_DEVICE_H_
