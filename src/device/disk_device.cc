#include "src/device/disk_device.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/obs/obs.h"

namespace ssmc {

DiskDevice::DiskDevice(DiskSpec spec, SimClock& clock)
    : spec_(std::move(spec)), clock_(clock), sched_(clock, /*channels=*/1) {
  contents_.assign(capacity_bytes(), 0);
}

DiskDevice::~DiskDevice() {
  if (obs_ != nullptr) {
    obs_->metrics().FlushAndRemoveCollector("disk");
  }
}

void DiskDevice::AttachObs(Obs* obs) {
  if (obs_ != nullptr && obs_ != obs) {
    obs_->metrics().FlushAndRemoveCollector("disk");
  }
  obs_ = obs;
  if (obs_ == nullptr) {
    sched_.set_retire_hook(nullptr);
    return;
  }
  obs_arm_track_ = obs_->tracer().RegisterTrack("disk arm");
  MetricsRegistry& m = obs_->metrics();
  obs_wait_hist_ = m.AddHistogram("disk/wait_ns");
  obs_service_hist_ = m.AddHistogram("disk/service_ns");
  sched_.set_retire_hook([this](int, const IoRequest& req) {
    const Duration wait =
        std::max<Duration>(0, req.start_time - req.issue_time);
    const Duration service =
        std::max<Duration>(0, req.complete_time - req.start_time);
    obs_wait_hist_->Record(static_cast<uint64_t>(wait));
    obs_service_hist_->Record(static_cast<uint64_t>(service));
    obs_->tracer().Span(obs_arm_track_, IoOpName(req.op), req.start_time,
                        service, {"bytes", req.bytes},
                        {"wait_ns", static_cast<uint64_t>(wait)});
  });

  Counter* reads = m.AddCounter("disk/reads");
  Counter* writes = m.AddCounter("disk/writes");
  Counter* seeks = m.AddCounter("disk/seeks");
  Counter* seek_ns = m.AddCounter("disk/seek_ns");
  Counter* rotation_ns = m.AddCounter("disk/rotation_ns");
  Counter* spin_ups = m.AddCounter("disk/spin_ups");
  Counter* queue_wait = m.AddCounter("disk/queue_wait_ns");
  m.AddCollector("disk", [=, this] {
    auto mirror = [](Counter* dst, const Counter& src) {
      dst->Reset();
      dst->Add(src.value());
    };
    mirror(reads, stats_.reads);
    mirror(writes, stats_.writes);
    mirror(seeks, stats_.seeks);
    mirror(seek_ns, stats_.seek_ns);
    mirror(rotation_ns, stats_.rotation_ns);
    mirror(spin_ups, stats_.spin_ups);
    mirror(queue_wait, stats_.queue_wait_ns);
  });
}

Duration DiskDevice::SeekTime(uint64_t from_cyl, uint64_t to_cyl) const {
  if (from_cyl == to_cyl) {
    return 0;
  }
  const double dist = static_cast<double>(
      from_cyl > to_cyl ? from_cyl - to_cyl : to_cyl - from_cyl);
  const double frac =
      std::sqrt(dist / static_cast<double>(std::max<uint64_t>(1, spec_.cylinders - 1)));
  const double ns = static_cast<double>(spec_.min_seek_ns) +
                    frac * static_cast<double>(spec_.max_seek_ns -
                                               spec_.min_seek_ns);
  return static_cast<Duration>(ns);
}

Duration DiskDevice::RotationDelay(SimTime at, uint64_t sector_in_track) const {
  const Duration rot = spec_.rotation_ns;
  assert(rot > 0);
  // Platter angle is a pure function of time: angle(t) = t mod rotation.
  const Duration angle_now = at % rot;
  const Duration target =
      static_cast<Duration>(sector_in_track * static_cast<uint64_t>(rot) /
                            spec_.sectors_per_track);
  Duration delay = target - angle_now;
  if (delay < 0) {
    delay += rot;
  }
  return delay;
}

Duration DiskDevice::TransferTime(uint64_t bytes) const {
  const double ns_per_byte = 1e9 / (spec_.transfer_mib_per_s * kMiB);
  return static_cast<Duration>(static_cast<double>(bytes) * ns_per_byte);
}

void DiskDevice::EnsureSpinning() {
  const SimTime now = clock_.now();
  // Settle energy for the elapsed gap first.
  if (now > energy_accounted_until_) {
    Duration gap = now - energy_accounted_until_;
    if (spinning_ && spin_down_after_ > 0 && gap > spin_down_after_) {
      // Disk idled long enough to spin down partway through the gap.
      energy_.AddIdle(spec_.idle_mw, spin_down_after_);
      energy_.AddIdle(spec_.standby_mw, gap - spin_down_after_);
      spinning_ = false;
    } else {
      energy_.AddIdle(spinning_ ? spec_.idle_mw : spec_.standby_mw, gap);
    }
    energy_accounted_until_ = now;
  }
  if (!spinning_) {
    clock_.Advance(spec_.spin_up_ns);
    energy_.AddActive(spec_.active_mw, spec_.spin_up_ns);
    energy_accounted_until_ = clock_.now();
    spinning_ = true;
    stats_.spin_ups.Add();
    if (obs_ != nullptr) {
      obs_->tracer().Span(obs_arm_track_, "spin-up",
                          clock_.now() - spec_.spin_up_ns, spec_.spin_up_ns);
    }
  }
}

Result<Duration> DiskDevice::DoIo(uint64_t sector, uint64_t bytes,
                                  bool is_write, IoIssue issue) {
  if (bytes == 0 || bytes % sector_bytes() != 0) {
    return InvalidArgumentError("disk I/O must be whole sectors");
  }
  const uint64_t count = bytes / sector_bytes();
  if (sector + count > num_sectors()) {
    return OutOfRangeError("disk I/O past end of device");
  }

  const SimTime op_issue = clock_.now();
  EnsureSpinning();  // Spin-up (if any) advances the clock for all issues.

  // The mechanical phases depend on when the arm starts: rotation is the
  // angular distance at the post-seek instant. The scheduler evaluates the
  // service function once, at dispatch, with the request's start time —
  // identical math to advancing the clock phase by phase.
  const uint64_t target_cyl = CylinderOf(sector);
  const uint64_t from_cyl = head_cylinder_;
  Duration seek = 0;
  Duration rot = 0;
  Duration xfer = 0;
  const IoScheduler::ServiceFn service = [&](SimTime start) {
    seek = SeekTime(from_cyl, target_cyl);
    rot = RotationDelay(start + seek, SectorInTrack(sector));
    xfer = TransferTime(bytes);
    return seek + rot + xfer;
  };

  IoRequest req;
  req.op = is_write ? IoOp::kDiskWrite : IoOp::kDiskRead;
  req.addr = sector;
  req.bytes = bytes;
  req.priority = issue.priority;
  req.blocking = issue.blocking;
  const IoScheduler::Dispatch d = sched_.Submit(0, std::move(req), service);
  head_cylinder_ = target_cyl;

  if (seek > 0) {
    stats_.seeks.Add();
    stats_.seek_ns.Add(static_cast<uint64_t>(seek));
  }
  stats_.rotation_ns.Add(static_cast<uint64_t>(rot));
  stats_.transfer_ns.Add(static_cast<uint64_t>(xfer));
  stats_.queue_wait_ns.Add(static_cast<uint64_t>(d.wait));
  if (!is_write && issue.blocking) {
    stats_.read_stall_ns.Add(static_cast<uint64_t>(d.wait));
  }

  // Active energy: spin-up (already charged once inside EnsureSpinning, and
  // again here as part of the observed busy window, matching the historical
  // accounting) plus the mechanical service. Queue wait is not active time —
  // the earlier reservation charged its own service.
  const Duration spin_up_part = clock_.now() - op_issue;
  energy_.AddActive(spec_.active_mw, spin_up_part + d.service);

  if (issue.blocking) {
    clock_.AdvanceTo(d.complete);
  }
  energy_accounted_until_ = std::max(energy_accounted_until_, d.complete);
  last_op_end_ = std::max(last_op_end_, d.complete);
  return spin_up_part + d.wait + d.service;
}

Result<Duration> DiskDevice::ReadSectors(uint64_t sector,
                                         std::span<uint8_t> out,
                                         IoIssue issue) {
  Result<Duration> r = DoIo(sector, out.size(), /*is_write=*/false, issue);
  if (!r.ok()) {
    return r;
  }
  const uint64_t addr = sector * sector_bytes();
  std::copy_n(contents_.begin() + static_cast<ptrdiff_t>(addr), out.size(),
              out.begin());
  stats_.reads.Add();
  stats_.read_bytes.Add(out.size());
  return r;
}

Result<Duration> DiskDevice::WriteSectors(uint64_t sector,
                                          std::span<const uint8_t> data,
                                          IoIssue issue) {
  Result<Duration> r = DoIo(sector, data.size(), /*is_write=*/true, issue);
  if (!r.ok()) {
    return r;
  }
  const uint64_t addr = sector * sector_bytes();
  std::copy(data.begin(), data.end(),
            contents_.begin() + static_cast<ptrdiff_t>(addr));
  stats_.writes.Add();
  stats_.written_bytes.Add(data.size());
  return r;
}

void DiskDevice::AccountIdleEnergy() {
  const SimTime now = clock_.now();
  if (now <= energy_accounted_until_) {
    return;
  }
  Duration gap = now - energy_accounted_until_;
  if (spinning_ && spin_down_after_ > 0 && gap > spin_down_after_) {
    energy_.AddIdle(spec_.idle_mw, spin_down_after_);
    energy_.AddIdle(spec_.standby_mw, gap - spin_down_after_);
    spinning_ = false;
  } else {
    energy_.AddIdle(spinning_ ? spec_.idle_mw : spec_.standby_mw, gap);
  }
  energy_accounted_until_ = now;
}

}  // namespace ssmc
