#include "src/device/dram_device.h"

#include <algorithm>
#include <cassert>

namespace ssmc {

DramDevice::DramDevice(DramSpec spec, uint64_t capacity_bytes, SimClock& clock)
    : spec_(std::move(spec)), capacity_(capacity_bytes), clock_(clock) {
  contents_.assign(capacity_, 0);
}

Result<Duration> DramDevice::Read(uint64_t addr, std::span<uint8_t> out) {
  if (addr + out.size() > capacity_) {
    return OutOfRangeError("DRAM read past end of device");
  }
  const Duration d = spec_.read.LatencyFor(out.size());
  clock_.Advance(d);
  total_active_ns_ += d;
  energy_.AddActive(active_mw(), d);
  std::copy_n(contents_.begin() + static_cast<ptrdiff_t>(addr), out.size(),
              out.begin());
  stats_.reads.Add();
  stats_.read_bytes.Add(out.size());
  return d;
}

Result<Duration> DramDevice::Write(uint64_t addr,
                                   std::span<const uint8_t> data) {
  if (addr + data.size() > capacity_) {
    return OutOfRangeError("DRAM write past end of device");
  }
  const Duration d = spec_.write.LatencyFor(data.size());
  clock_.Advance(d);
  total_active_ns_ += d;
  energy_.AddActive(active_mw(), d);
  std::copy(data.begin(), data.end(),
            contents_.begin() + static_cast<ptrdiff_t>(addr));
  stats_.writes.Add();
  stats_.written_bytes.Add(data.size());
  return d;
}

Duration DramDevice::ChargeAccess(uint64_t bytes, bool is_write) {
  const MemoryTiming& t = is_write ? spec_.write : spec_.read;
  const Duration d = t.LatencyFor(bytes);
  clock_.Advance(d);
  total_active_ns_ += d;
  energy_.AddActive(active_mw(), d);
  if (is_write) {
    stats_.writes.Add();
    stats_.written_bytes.Add(bytes);
  } else {
    stats_.reads.Add();
    stats_.read_bytes.Add(bytes);
  }
  return d;
}

void DramDevice::OnPowerLoss() {
  if (spec_.battery_backed) {
    return;  // Battery holds the contents up.
  }
  ForceContentLoss();
}

void DramDevice::ForceContentLoss() {
  std::fill(contents_.begin(), contents_.end(), 0);
  contents_lost_ = true;
  stats_.content_losses.Add();
}

void DramDevice::AccountIdleEnergy() {
  const Duration now = clock_.now();
  const Duration window = now - idle_accounted_until_;
  if (window <= 0) {
    return;
  }
  const Duration idle = std::max<Duration>(0, window - total_active_ns_);
  energy_.AddIdle(standby_mw(), idle);
  idle_accounted_until_ = now;
}

}  // namespace ssmc
