#include "src/device/dram_device.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ssmc {

DramDevice::DramDevice(DramSpec spec, uint64_t capacity_bytes, SimClock& clock)
    : spec_(std::move(spec)), capacity_(capacity_bytes), clock_(clock) {
  chunks_.resize((capacity_ + kChunkBytes - 1) / kChunkBytes);
}

uint8_t* DramDevice::MaterializeChunk(uint64_t chunk) {
  std::unique_ptr<uint8_t[]>& slot = chunks_[chunk];
  if (!slot) {
    slot.reset(new uint8_t[kChunkBytes]());
  }
  return slot.get();
}

Result<Duration> DramDevice::Read(uint64_t addr, std::span<uint8_t> out) {
  if (addr + out.size() > capacity_) {
    return OutOfRangeError("DRAM read past end of device");
  }
  const Duration d = spec_.read.LatencyFor(out.size());
  clock_.Advance(d);
  total_active_ns_ += d;
  energy_.AddActive(active_mw(), d);
  uint64_t pos = addr;
  uint8_t* dst = out.data();
  uint64_t remaining = out.size();
  while (remaining > 0) {
    const uint64_t off = pos % kChunkBytes;
    const uint64_t n = std::min(remaining, kChunkBytes - off);
    if (const uint8_t* src = chunks_[pos / kChunkBytes].get()) {
      std::memcpy(dst, src + off, n);
    } else {
      std::memset(dst, 0, n);
    }
    dst += n;
    pos += n;
    remaining -= n;
  }
  stats_.reads.Add();
  stats_.read_bytes.Add(out.size());
  return d;
}

Result<Duration> DramDevice::Write(uint64_t addr,
                                   std::span<const uint8_t> data) {
  if (addr + data.size() > capacity_) {
    return OutOfRangeError("DRAM write past end of device");
  }
  const Duration d = spec_.write.LatencyFor(data.size());
  clock_.Advance(d);
  total_active_ns_ += d;
  energy_.AddActive(active_mw(), d);
  uint64_t pos = addr;
  const uint8_t* src = data.data();
  uint64_t remaining = data.size();
  while (remaining > 0) {
    const uint64_t off = pos % kChunkBytes;
    const uint64_t n = std::min(remaining, kChunkBytes - off);
    std::memcpy(MaterializeChunk(pos / kChunkBytes) + off, src, n);
    src += n;
    pos += n;
    remaining -= n;
  }
  stats_.writes.Add();
  stats_.written_bytes.Add(data.size());
  return d;
}

Duration DramDevice::ChargeAccess(uint64_t bytes, bool is_write) {
  const MemoryTiming& t = is_write ? spec_.write : spec_.read;
  const Duration d = t.LatencyFor(bytes);
  clock_.Advance(d);
  total_active_ns_ += d;
  energy_.AddActive(active_mw(), d);
  if (is_write) {
    stats_.writes.Add();
    stats_.written_bytes.Add(bytes);
  } else {
    stats_.reads.Add();
    stats_.read_bytes.Add(bytes);
  }
  return d;
}

void DramDevice::OnPowerLoss() {
  if (spec_.battery_backed) {
    return;  // Battery holds the contents up.
  }
  ForceContentLoss();
}

void DramDevice::ForceContentLoss() {
  // Dropping chunks zeroes the array: unmaterialized regions already read 0.
  for (std::unique_ptr<uint8_t[]>& chunk : chunks_) {
    chunk.reset();
  }
  contents_lost_ = true;
  stats_.content_losses.Add();
}

void DramDevice::AccountIdleEnergy() {
  const Duration now = clock_.now();
  const Duration window = now - idle_accounted_until_;
  if (window <= 0) {
    return;
  }
  const Duration idle = std::max<Duration>(0, window - total_active_ns_);
  energy_.AddIdle(standby_mw(), idle);
  idle_accounted_until_ = now;
}

}  // namespace ssmc
