// Simulated byte-addressable non-volatile memory (PCM class).
//
// The third tier of the paper's Section 5 hierarchy: random byte-level reads
// a small multiple of DRAM latency, asymmetrically slower writes (the
// phase-change programming pulse), no erase constraint, and contents that
// survive power loss at zero retention power. Capacity is split into equal
// contiguous banks, each an independent channel of the device's IoScheduler,
// exactly like the flash card: a write being served in a bank queues later
// requests to that bank while other banks proceed.
//
// Unlike the flash device this one carries no payload plane of its own — the
// StorageManager's refcounted page-payload tables hold the bytes for every
// byte-addressable tier (DRAM and NVM alike), so the device models timing,
// energy, per-bank wear, and attribution only.

#ifndef SSMC_SRC_DEVICE_NVM_DEVICE_H_
#define SSMC_SRC_DEVICE_NVM_DEVICE_H_

#include <cstdint>
#include <vector>

#include "src/device/specs.h"
#include "src/sim/clock.h"
#include "src/sim/energy.h"
#include "src/sim/io_request.h"
#include "src/sim/io_scheduler.h"
#include "src/sim/io_stats.h"
#include "src/sim/stats.h"
#include "src/support/status.h"
#include "src/support/units.h"

namespace ssmc {

class Obs;

class NvmDevice {
 public:
  // capacity_bytes must divide evenly into `banks`.
  NvmDevice(NvmSpec spec, uint64_t capacity_bytes, int banks, SimClock& clock);
  // Flushes and removes this device's metrics collector from any attached
  // Obs (which routinely outlives the device).
  ~NvmDevice();

  NvmDevice(const NvmDevice&) = delete;
  NvmDevice& operator=(const NvmDevice&) = delete;

  // --- Geometry ---------------------------------------------------------
  uint64_t capacity_bytes() const { return capacity_; }
  int num_banks() const { return sched_.num_channels(); }
  uint64_t bytes_per_bank() const { return bytes_per_bank_; }
  int BankOfAddress(uint64_t addr) const {
    return static_cast<int>(addr / bytes_per_bank_);
  }
  const NvmSpec& spec() const { return spec_; }
  SimClock& clock() { return clock_; }

  // --- Operations -------------------------------------------------------
  // Bounds-checked, then submitted as an IoRequest to the address's bank
  // channel. Blocking issues advance the shared clock to completion and the
  // returned latency includes queue wait; background issues reserve bank
  // time only. A transfer may not cross a bank boundary (callers split at
  // page granularity, pages never straddle banks).
  Result<Duration> Read(uint64_t addr, uint64_t bytes, IoIssue issue = {});
  Result<Duration> Write(uint64_t addr, uint64_t bytes, IoIssue issue = {});

  SimTime BankBusyUntil(int bank) const {
    return sched_.ChannelBusyUntil(bank);
  }
  IoSchedPolicy sched_policy() const { return sched_.policy(); }
  void set_sched_policy(IoSchedPolicy policy) { sched_.set_policy(policy); }
  IoScheduler& scheduler() { return sched_; }
  void set_tenant_weight(TenantId tenant, uint32_t weight) {
    sched_.set_tenant_weight(tenant, weight);
  }
  void set_tenant_rate(TenantId tenant, uint64_t bytes_per_s,
                       uint64_t burst_bytes) {
    sched_.set_tenant_rate(tenant, bytes_per_s, burst_bytes);
  }

  // Observability (nullable; null detaches): per-bank trace tracks, per
  // priority class wait/service histograms, per-tenant histogram lanes, and
  // snapshot-time counter mirrors — the flash device's layout under the
  // "nvm" prefix.
  void AttachObs(Obs* obs);

  // --- Accounting -------------------------------------------------------
  struct Stats {
    Counter reads;
    Counter read_bytes;
    Counter writes;
    Counter written_bytes;
    Counter read_stall_ns;  // Time blocking reads spent waiting on banks.
    IoLaneStats by_class[kNumIoPriorities];  // Indexed by IoPriority.
    TenantLaneTable by_tenant;               // Keyed by issuing tenant.
  };
  const Stats& stats() const { return stats_; }
  const EnergyMeter& energy() const { return energy_; }
  Duration total_active_ns() const { return total_active_ns_; }
  void AccountIdleEnergy();

  // Per-bank write wear: PCM endurance is per-line, so the interesting
  // signal is how evenly write traffic spreads across banks.
  struct WearSummary {
    uint64_t min_writes = 0;
    uint64_t max_writes = 0;
    double mean_writes = 0;
    uint64_t total_write_bytes = 0;
  };
  WearSummary SummarizeWear() const;
  uint64_t BankWriteCount(int bank) const { return bank_writes_[bank]; }

  // An access activates one chip (~1 MiB of array); standby draw scales
  // with capacity (interface only — the array retains at zero power).
  double active_mw() const { return spec_.active_mw_per_mib; }
  double standby_mw() const {
    return spec_.standby_mw_per_mib * (static_cast<double>(capacity_) / kMiB);
  }

 private:
  IoScheduler::Dispatch SubmitOp(IoOp op, int bank, uint64_t addr,
                                 uint64_t bytes, Duration op_ns,
                                 IoIssue issue);
  void ObsRetire(int bank, const IoRequest& req);

  NvmSpec spec_;
  uint64_t capacity_;
  uint64_t bytes_per_bank_;
  SimClock& clock_;
  IoScheduler sched_;  // One channel per bank.
  Stats stats_;
  std::vector<uint64_t> bank_writes_;       // Write ops per bank.
  std::vector<uint64_t> bank_write_bytes_;  // Write bytes per bank.
  EnergyMeter energy_;
  Duration total_active_ns_ = 0;
  Duration idle_accounted_until_ = 0;

  Obs* obs_ = nullptr;
  std::vector<int> obs_bank_tracks_;
  int obs_class_tracks_[kNumIoPriorities] = {};
  Histogram* obs_wait_hist_[kNumIoPriorities] = {};
  Histogram* obs_service_hist_[kNumIoPriorities] = {};
  struct ObsTenantLane {
    TenantId tenant = kDefaultTenant;
    Histogram* wait = nullptr;
    Histogram* service = nullptr;
  };
  std::vector<ObsTenantLane> obs_tenant_hist_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_DEVICE_NVM_DEVICE_H_
