// Device parameter sheets ("specs") and the 1993 product catalog.
//
// The paper compares five concrete products (Section 2): an NEC 3.3 V DRAM,
// Intel and SunDisk flash memories, and HP KittyHawk 1.3" / Fujitsu M2633
// 2.5" disks. It quotes characteristic numbers for the flash class: ~100 ns
// per byte reads, ~10 us per byte writes, >= 512-byte erase sectors, 100,000
// guaranteed erase cycles, ~$50/MB, tens of mW per MB active power. The specs
// below encode those quoted numbers, filled in with era-typical datasheet
// values where the paper gives none. Every experiment that reports absolute
// times derives them from these constants, so the provenance is explicit.
//
// Trend model (Section 2): megabytes per dollar and per cubic inch improve
// 40%/year for DRAM and flash, 25%/year for disk, from the 1993 baseline.

#ifndef SSMC_SRC_DEVICE_SPECS_H_
#define SSMC_SRC_DEVICE_SPECS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/units.h"

namespace ssmc {

// Byte-addressable memory timing: fixed access latency plus streaming rate.
struct MemoryTiming {
  Duration access_ns = 0;       // Fixed per-operation latency.
  Duration per_byte_ns = 0;     // Additional time per byte transferred.

  Duration LatencyFor(uint64_t bytes) const {
    return access_ns + per_byte_ns * static_cast<Duration>(bytes);
  }
};

struct DramSpec {
  std::string name;
  MemoryTiming read;
  MemoryTiming write;
  double active_mw_per_mib = 0;   // Power while reading/writing.
  double standby_mw_per_mib = 0;  // Self-refresh / data-retention power.
  double dollars_per_mib = 0;     // 1993 street price.
  double mib_per_cubic_inch = 0;  // Packaged density.
  bool battery_backed = true;     // Mobile systems back DRAM with batteries.
};

// Byte-addressable non-volatile memory (PCM class). Sits between DRAM and
// flash in the hierarchy the paper sketches in Section 5: random byte reads
// a small multiple of DRAM latency, writes asymmetrically slower (the
// phase-change SET/RESET pulse), no erase constraint, data retained at zero
// power. Per-cell write endurance is finite but orders of magnitude above
// flash sector endurance.
struct NvmSpec {
  std::string name;
  MemoryTiming read;
  MemoryTiming write;              // Asymmetric: slower than read.
  uint64_t endurance_writes = 0;   // Guaranteed writes per line.
  double active_mw_per_mib = 0;
  double standby_mw_per_mib = 0;   // Non-volatile: interface standby only.
  double dollars_per_mib = 0;
  double mib_per_cubic_inch = 0;
};

struct FlashSpec {
  std::string name;
  MemoryTiming read;
  MemoryTiming program;            // Write to pre-erased bytes.
  uint64_t erase_sector_bytes = 0;  // Minimum erase granule.
  Duration erase_ns = 0;            // Time to erase one sector.
  uint64_t endurance_cycles = 0;    // Guaranteed erases per sector.
  double active_mw_per_mib = 0;
  double standby_mw_per_mib = 0;    // Flash retains data at zero power; this
                                    // models interface/controller standby.
  double dollars_per_mib = 0;
  double mib_per_cubic_inch = 0;
};

struct DiskSpec {
  std::string name;
  uint64_t sector_bytes = 512;
  uint64_t sectors_per_track = 32;
  uint64_t cylinders = 1024;
  Duration min_seek_ns = 0;        // Track-to-track.
  Duration avg_seek_ns = 0;        // Catalog average seek.
  Duration max_seek_ns = 0;        // Full stroke.
  Duration rotation_ns = 0;        // One full revolution.
  double transfer_mib_per_s = 0;   // Media transfer rate.
  Duration spin_up_ns = 0;         // Time from standby to ready.
  double active_mw = 0;            // Seeking/transferring.
  double idle_mw = 0;              // Spinning, not transferring.
  double standby_mw = 0;           // Spun down.
  double dollars_per_mib = 0;
  double mib_per_cubic_inch = 0;

  uint64_t capacity_bytes() const {
    return sector_bytes * sectors_per_track * cylinders;
  }
};

// The five 1993 products the paper compares, plus a generic flash spec that
// matches the paper's round numbers (used by default in experiments).

// NEC 3.3 V self-refresh DRAM (uPD42 series) [paper ref 7]. The paper quotes
// 15 MiB/in^3 packaged density and a 10:1 price ratio vs disk.
DramSpec NecDram1993();

// Intel Series 2 flash card [paper ref 6]: memory-mapped, fast reads, slow
// writes, large erase blocks. The paper: "much faster read times but slower
// write times" than SunDisk.
FlashSpec IntelFlash1993();

// SunDisk SDI (solid-state disk) [paper ref 13]: disk-like sector interface,
// balanced read/write, small (512 B) erase sectors.
FlashSpec SunDiskFlash1993();

// Generic direct-mapped flash with exactly the paper's round numbers:
// 100 ns/B read, 10 us/B write, 512 B sectors, 100k cycles, $50/MB.
FlashSpec GenericPaperFlash();

// Phase-change memory, the byte-addressable NVM tier the paper's Section 5
// hierarchy anticipates. Constants follow the PCM literature in PAPERS.md:
// MigrantStore (arXiv 1504.04297) models PCM at a small multiple of DRAM
// read latency with ~2-4x slower array writes; the hybrid DRAM-PCM surveys
// (arXiv 2004.05518, 1805.09127) quote the same read/write asymmetry and
// ~1e8 write endurance. Scaled onto this catalog's 1993 timing baseline so
// the ordering DRAM < PCM < flash (reads) and PCM read < PCM write holds at
// block granularity.
NvmSpec PcmNvm();

// HP KittyHawk C3013A 1.3" 20 MB microdisk [paper ref 5]. Paper quotes
// 19 MiB/in^3.
DiskSpec KittyHawkDisk1993();

// Fujitsu M2633 2.5" 45 MB disk [paper ref 4].
DiskSpec FujitsuDisk1993();

// --- Technology trend model (Section 2) ---------------------------------

// Annual improvement in MB/$ and MB/in^3.
inline constexpr double kDramCostImprovementPerYear = 0.40;
inline constexpr double kFlashCostImprovementPerYear = 0.40;  // "follows DRAM"
inline constexpr double kDiskCostImprovementPerYear = 0.25;
inline constexpr int kCatalogBaseYear = 1993;

// Projects a 1993 $/MiB figure to `year` under `rate` annual MB/$ growth.
double ProjectDollarsPerMib(double base_dollars_per_mib, double rate, int year);

// Projects a 1993 MiB/in^3 figure to `year`.
double ProjectDensity(double base_mib_per_cubic_inch, double rate, int year);

// First year (>= 1993) in which `a` becomes no more expensive per MiB than
// `b` given their respective improvement rates. Returns -1 if never (a
// already cheaper counts as 1993).
int CostCrossoverYear(double a_dollars, double a_rate, double b_dollars,
                      double b_rate);

}  // namespace ssmc

#endif  // SSMC_SRC_DEVICE_SPECS_H_
