// Parallel experiment harness. The E3/E6/E7/E9-style benches sweep a matrix
// of configurations, each replaying a trace on a fully independent simulated
// machine; every such cell owns its SimClock, devices, file system, and Rng,
// so cells are embarrassingly parallel. The runner executes cells on a
// ThreadPool and returns results in submission order, which makes the
// resulting tables byte-identical to a serial run regardless of how the OS
// schedules the workers; `--jobs=1` (or SSMC_JOBS=1) degenerates to a plain
// in-thread loop.
//
// Determinism contract: a cell closure must not touch state outside its own
// cell (the closures the benches build construct everything they use). Seeds
// for generated-per-cell randomness derive from one base seed via splitmix64
// (DeriveCellSeed), so adding cells never perturbs existing ones.

#ifndef SSMC_SRC_HARNESS_PARALLEL_RUNNER_H_
#define SSMC_SRC_HARNESS_PARALLEL_RUNNER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <future>
#include <utility>
#include <vector>

#include "src/core/machine.h"
#include "src/support/log.h"
#include "src/support/thread_pool.h"
#include "src/trace/replayer.h"
#include "src/trace/trace.h"

namespace ssmc {

// Seed for cell `cell_index` of a run seeded with `base_seed`: one splitmix64
// output per cell. Distinct indexes give decorrelated xoshiro streams (Rng
// already expands its seed through splitmix64 once more).
uint64_t DeriveCellSeed(uint64_t base_seed, uint64_t cell_index);

// One (config, trace) simulation cell: an independent machine replaying a
// trace. The trace is borrowed and may be shared between cells (replay only
// reads it).
struct MachineCell {
  MachineConfig config;
  const Trace* trace = nullptr;
};

class ParallelRunner {
 public:
  // jobs <= 0 selects DefaultJobs() (SSMC_JOBS env override, else CPU count).
  explicit ParallelRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  // Runs the tasks concurrently on jobs() workers and returns their results
  // in submission order. With jobs() == 1 the tasks run inline, strictly
  // serially, with no pool. Each task's log lines are tagged with its cell
  // index. A task's exception resurfaces here in the calling thread.
  template <typename T>
  std::vector<T> RunOrdered(std::vector<std::function<T()>> tasks) {
    std::vector<T> results;
    results.reserve(tasks.size());
    if (jobs_ == 1 || tasks.size() <= 1) {
      for (size_t i = 0; i < tasks.size(); ++i) {
        ScopedLogCell tag(static_cast<int>(i));
        results.push_back(tasks[i]());
      }
      return results;
    }
    ThreadPool pool(std::min(jobs_, static_cast<int>(tasks.size())));
    std::vector<std::future<T>> futures;
    futures.reserve(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) {
      futures.push_back(pool.Submit(
          [i, task = std::move(tasks[i])]() -> T {
            ScopedLogCell tag(static_cast<int>(i));
            return task();
          }));
    }
    for (std::future<T>& f : futures) {
      results.push_back(f.get());
    }
    return results;
  }

  // The common experiment shape: independent machines, one trace replay
  // each; reports come back in cell order.
  std::vector<ReplayReport> RunMachineCells(std::vector<MachineCell> cells);

 private:
  int jobs_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_HARNESS_PARALLEL_RUNNER_H_
