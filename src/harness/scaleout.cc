#include "src/harness/scaleout.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <utility>

#include "src/trace/generator.h"

namespace ssmc {

namespace {

// One user's full life: generate the trace from the user's derived seed,
// build a fresh machine, replay. Everything (workload seed, machine seed,
// file sizes, rng streams) is a pure function of (base_seed, user_index).
ReplayReport RunUser(const ScaleoutOptions& options, int user) {
  // With a tenant mix, the user's class decides its profile and tenant tag;
  // without one, the legacy even/odd office/write-hot alternation applies
  // (which a two-class {office, write-hot} mix reproduces seed-for-seed).
  const TenantClassSpec* cls =
      options.tenant_mix.empty()
          ? nullptr
          : &options.tenant_mix[static_cast<size_t>(user) %
                                options.tenant_mix.size()];
  const bool write_hot = cls != nullptr ? cls->write_hot : (user % 2 != 0);
  WorkloadOptions workload = write_hot ? WriteHotWorkload() : OfficeWorkload();
  workload.seed = DeriveCellSeed(options.base_seed, 2 * static_cast<uint64_t>(user));
  workload.duration = options.user_duration;
  workload.max_file_bytes = options.max_file_bytes;
  Trace trace = WorkloadGenerator(workload).Generate();
  if (cls != nullptr && cls->tenant != kDefaultTenant) {
    trace = trace.WithTenant(cls->tenant);
  }

  MachineConfig config = NotebookConfig();
  config.name = "scaleout-user-" + std::to_string(user);
  config.seed =
      DeriveCellSeed(options.base_seed, 2 * static_cast<uint64_t>(user) + 1);
  if (!options.tenant_mix.empty()) {
    config.io_sched = options.io_sched;
    config.tenant_qos.reserve(options.tenant_mix.size());
    for (const TenantClassSpec& spec : options.tenant_mix) {
      config.tenant_qos.push_back({spec.tenant, spec.weight,
                                   spec.rate_bytes_per_s, spec.burst_bytes});
    }
  }
  if (options.user_obs) {
    config.obs = options.user_obs(user);
  }
  MobileComputer machine(config);
  return machine.RunTrace(trace);
}

// What a shard hands back to the merge: its users' partial aggregate (always
// maintained — merging is associative, so folding per shard and then across
// shards in shard order equals the flat user-order fold) plus, in keep mode,
// the individual reports.
struct ShardResult {
  std::vector<ReplayReport> per_user;  // Empty when !keep_per_user.
  ReplayReport merged;
  Duration longest_elapsed = 0;
};

}  // namespace

double ScaleoutReport::SimOpsPerSimSecond() const {
  const double s = static_cast<double>(longest_elapsed) / kSecond;
  return s > 0 ? static_cast<double>(aggregate.ops) / s : 0;
}

ScaleoutReport RunScaleout(const ScaleoutOptions& options) {
  assert(options.users >= 1);
  const int cells = std::clamp(options.cells, 1, options.users);

  // Shard s serially runs the contiguous balanced user range [lo, hi).
  std::vector<std::function<ShardResult()>> shards;
  shards.reserve(static_cast<size_t>(cells));
  for (int s = 0; s < cells; ++s) {
    const int lo = static_cast<int>(
        static_cast<int64_t>(s) * options.users / cells);
    const int hi = static_cast<int>(
        static_cast<int64_t>(s + 1) * options.users / cells);
    shards.push_back([&options, lo, hi] {
      ShardResult result;
      if (options.keep_per_user) {
        result.per_user.reserve(static_cast<size_t>(hi - lo));
      }
      for (int user = lo; user < hi; ++user) {
        ReplayReport report = RunUser(options, user);
        result.longest_elapsed =
            std::max(result.longest_elapsed, report.elapsed());
        result.merged.Merge(report);
        if (options.keep_per_user) {
          result.per_user.push_back(std::move(report));
        }
      }
      return result;
    });
  }

  ParallelRunner runner(options.jobs);
  std::vector<ShardResult> shard_results = runner.RunOrdered(std::move(shards));

  ScaleoutReport report;
  report.users = options.users;
  report.cells = cells;
  report.jobs = runner.jobs();
  if (options.keep_per_user) {
    report.per_user.reserve(static_cast<size_t>(options.users));
  }
  // Shards are contiguous ranges in shard order, so concatenation restores
  // user order; merging in that order makes the aggregate K-independent.
  for (ShardResult& shard : shard_results) {
    report.longest_elapsed =
        std::max(report.longest_elapsed, shard.longest_elapsed);
    report.aggregate.Merge(shard.merged);
    for (ReplayReport& user_report : shard.per_user) {
      report.per_user.push_back(std::move(user_report));
    }
  }
  return report;
}

}  // namespace ssmc
