// Sharded multi-user scale-out (experiment E11). M simulated users — each a
// full independent MobileComputer replaying its own generated trace — are
// sharded over K cells; each cell runs its users serially, the cells run
// concurrently on the parallel runner, and the per-user reports merge into
// one aggregate. Because a user's entire simulation depends only on its
// derived seed, and the merge happens in user order, the aggregate is
// bit-identical for every K and every jobs count: sharding buys host time,
// never different results.

#ifndef SSMC_SRC_HARNESS_SCALEOUT_H_
#define SSMC_SRC_HARNESS_SCALEOUT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/harness/parallel_runner.h"
#include "src/trace/replayer.h"

namespace ssmc {

class Obs;

struct ScaleoutOptions {
  int users = 8;   // M: total simulated users.
  int cells = 1;   // K: shards; users split into K contiguous balanced runs.
  int jobs = 0;    // Worker threads; 0 = DefaultJobs(). Cells <= jobs scale.
  uint64_t base_seed = 911;  // All per-user seeds derive from this.
  // Per-user workload: even users replay the office profile, odd users the
  // write-hot profile, over this simulated duration.
  Duration user_duration = 30 * kSecond;
  uint64_t max_file_bytes = 64 * 1024;
  // Optional per-user observability: called once per user (from the shard's
  // worker thread, in that shard's serial user order) before the user's
  // machine is built; the returned bundle — null to skip that user — is
  // wired through MachineConfig::obs. The callee owns the Obs objects and
  // must make the callback thread-safe (shards run concurrently); give each
  // user its own Obs so no two threads ever share one.
  std::function<Obs*(int user)> user_obs;
  // When false, each shard folds its users into one partial aggregate as it
  // goes and drops the individual reports; ScaleoutReport::per_user stays
  // empty and host memory is O(cells) instead of O(users). Merging is
  // associative (sums, min/max, bucket adds), so the aggregate is
  // bit-identical either way. The 64k-user footprint curve runs this mode.
  bool keep_per_user = true;
};

struct ScaleoutReport {
  // In user order; shard-independent. Empty when !keep_per_user.
  std::vector<ReplayReport> per_user;
  ReplayReport aggregate;  // Merge of every user's report, in user order.
  // Max over users of that user's simulated elapsed time (tracked during the
  // merge, so it is available in both per-user and aggregate-only modes).
  Duration longest_elapsed = 0;
  int users = 0;
  int cells = 0;
  int jobs = 0;

  // Aggregate throughput per *simulated* second: users run concurrently in
  // simulated terms (each owns a clock starting at 0), so the fleet finishes
  // when its slowest user does. Divide total ops by host seconds instead for
  // the harness-throughput view (sim ops per host second); the two answer
  // different questions and BENCH_scaleout.json reports both.
  double SimOpsPerSimSecond() const;
};

// Runs the sharded experiment. Host wall time is the caller's to measure
// (that is the quantity E11 sweeps K against).
ScaleoutReport RunScaleout(const ScaleoutOptions& options);

}  // namespace ssmc

#endif  // SSMC_SRC_HARNESS_SCALEOUT_H_
