// Sharded multi-user scale-out (experiment E11). M simulated users — each a
// full independent MobileComputer replaying its own generated trace — are
// sharded over K cells; each cell runs its users serially, the cells run
// concurrently on the parallel runner, and the per-user reports merge into
// one aggregate. Because a user's entire simulation depends only on its
// derived seed, and the merge happens in user order, the aggregate is
// bit-identical for every K and every jobs count: sharding buys host time,
// never different results.

#ifndef SSMC_SRC_HARNESS_SCALEOUT_H_
#define SSMC_SRC_HARNESS_SCALEOUT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/machine.h"
#include "src/harness/parallel_runner.h"
#include "src/trace/replayer.h"

namespace ssmc {

class Obs;

// One tenant class in a fleet mix: which workload profile its users replay
// and what QoS the flash scheduler grants them. Users map onto classes
// round-robin (user u runs class u % mix.size()), so a mix of
// {office tenant 1, write-hot tenant 2} reproduces the legacy even/odd
// alternation exactly — same seeds, same traces — just tagged.
struct TenantClassSpec {
  TenantId tenant = kDefaultTenant;
  bool write_hot = false;         // Workload profile for this class's users.
  uint32_t weight = 1;            // kWeightedFair share.
  uint64_t rate_bytes_per_s = 0;  // kTokenBucket cap; 0 = unlimited.
  uint64_t burst_bytes = 0;
};

struct ScaleoutOptions {
  int users = 8;   // M: total simulated users.
  int cells = 1;   // K: shards; users split into K contiguous balanced runs.
  int jobs = 0;    // Worker threads; 0 = DefaultJobs(). Cells <= jobs scale.
  uint64_t base_seed = 911;  // All per-user seeds derive from this.
  // Per-user workload: even users replay the office profile, odd users the
  // write-hot profile, over this simulated duration.
  Duration user_duration = 30 * kSecond;
  uint64_t max_file_bytes = 64 * 1024;
  // Tenant mix. Empty (the default) is the pre-tenancy fleet: even users
  // office, odd users write-hot, every record the default tenant, and
  // `io_sched`/QoS left at the machine default. Non-empty stamps every
  // user's trace with its class tenant (Trace::WithTenant) and applies
  // `io_sched` plus each class's QoS row to every machine; the aggregate
  // report then carries fleet-wide per-tenant latency and I/O-time lanes
  // (ReplayReport::by_tenant / io_by_tenant), streamed through the same
  // O(1)-per-user shard fold as every other counter.
  std::vector<TenantClassSpec> tenant_mix;
  IoSchedPolicy io_sched = IoSchedPolicy::kFifo;
  // Optional per-user observability: called once per user (from the shard's
  // worker thread, in that shard's serial user order) before the user's
  // machine is built; the returned bundle — null to skip that user — is
  // wired through MachineConfig::obs. The callee owns the Obs objects and
  // must make the callback thread-safe (shards run concurrently); give each
  // user its own Obs so no two threads ever share one.
  std::function<Obs*(int user)> user_obs;
  // When false, each shard folds its users into one partial aggregate as it
  // goes and drops the individual reports; ScaleoutReport::per_user stays
  // empty and host memory is O(cells) instead of O(users). Merging is
  // associative (sums, min/max, bucket adds), so the aggregate is
  // bit-identical either way. The 64k-user footprint curve runs this mode.
  bool keep_per_user = true;
};

struct ScaleoutReport {
  // In user order; shard-independent. Empty when !keep_per_user.
  std::vector<ReplayReport> per_user;
  ReplayReport aggregate;  // Merge of every user's report, in user order.
  // Max over users of that user's simulated elapsed time (tracked during the
  // merge, so it is available in both per-user and aggregate-only modes).
  Duration longest_elapsed = 0;
  int users = 0;
  int cells = 0;
  int jobs = 0;

  // Aggregate throughput per *simulated* second: users run concurrently in
  // simulated terms (each owns a clock starting at 0), so the fleet finishes
  // when its slowest user does. Divide total ops by host seconds instead for
  // the harness-throughput view (sim ops per host second); the two answer
  // different questions and BENCH_scaleout.json reports both.
  double SimOpsPerSimSecond() const;
};

// Runs the sharded experiment. Host wall time is the caller's to measure
// (that is the quantity E11 sweeps K against).
ScaleoutReport RunScaleout(const ScaleoutOptions& options);

}  // namespace ssmc

#endif  // SSMC_SRC_HARNESS_SCALEOUT_H_
