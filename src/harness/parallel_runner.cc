#include "src/harness/parallel_runner.h"

namespace ssmc {

uint64_t DeriveCellSeed(uint64_t base_seed, uint64_t cell_index) {
  // splitmix64 of the (cell_index + 1)-th point of the golden-gamma walk
  // from base_seed. +1 keeps cell 0 distinct from the raw base seed.
  uint64_t z = base_seed + (cell_index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ParallelRunner::ParallelRunner(int jobs)
    : jobs_(jobs > 0 ? jobs : DefaultJobs()) {}

std::vector<ReplayReport> ParallelRunner::RunMachineCells(
    std::vector<MachineCell> cells) {
  std::vector<std::function<ReplayReport()>> tasks;
  tasks.reserve(cells.size());
  for (MachineCell& cell : cells) {
    tasks.push_back([config = std::move(cell.config), trace = cell.trace] {
      MobileComputer machine(config);
      return machine.RunTrace(*trace);
    });
  }
  return RunOrdered(std::move(tasks));
}

}  // namespace ssmc
