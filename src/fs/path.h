// Path handling shared by both file systems. Paths are absolute,
// '/'-separated, with no "." / ".." resolution (the simulator's workloads
// only generate canonical paths; anything else is rejected as invalid).

#ifndef SSMC_SRC_FS_PATH_H_
#define SSMC_SRC_FS_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.h"

namespace ssmc {

// True for a canonical absolute path: starts with '/', no empty, "." or ".."
// components, no trailing slash (except the root itself).
bool IsValidPath(std::string_view path);

// Splits "/a/b/c" into {"a","b","c"}; root splits into {}.
// Pre: IsValidPath(path).
std::vector<std::string> SplitPath(std::string_view path);

// Parent of "/a/b/c" is "/a/b"; parent of "/a" is "/"; parent of "/" is "/".
std::string ParentPath(std::string_view path);

// Final component; basename of "/" is "".
std::string BaseName(std::string_view path);

// Joins a directory and a name ("/a" + "b" -> "/a/b"; "/" + "b" -> "/b").
std::string JoinPath(std::string_view dir, std::string_view name);

// Zero-allocation variants for per-operation lookups: views into `path`,
// valid as long as the argument's backing storage. Same preconditions as
// the owning versions above.
std::string_view ParentPathView(std::string_view path);
std::string_view BaseNameView(std::string_view path);

// Zero-allocation split: a forward range over the components of a canonical
// path, each a view into it ("/a/b/c" -> "a", "b", "c"; "/" -> empty range).
// Pre: IsValidPath(path).
class PathComponents {
 public:
  class iterator {
   public:
    std::string_view operator*() const {
      return path_.substr(start_, end_ - start_);
    }
    iterator& operator++() {
      start_ = end_ + 1;
      Advance();
      return *this;
    }
    bool operator==(const iterator& o) const { return start_ == o.start_; }
    bool operator!=(const iterator& o) const { return start_ != o.start_; }

   private:
    friend class PathComponents;
    iterator(std::string_view path, size_t start)
        : path_(path), start_(start) {
      Advance();
    }
    void Advance() {
      if (start_ >= path_.size()) {
        start_ = path_.size();
        end_ = start_;
        return;
      }
      end_ = path_.find('/', start_);
      if (end_ == std::string_view::npos) {
        end_ = path_.size();
      }
    }
    std::string_view path_;
    size_t start_;
    size_t end_ = 0;
  };

  explicit PathComponents(std::string_view path) : path_(path) {}
  iterator begin() const { return iterator(path_, 1); }
  iterator end() const { return iterator(path_, path_.size()); }

 private:
  std::string_view path_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_FS_PATH_H_
