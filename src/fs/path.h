// Path handling shared by both file systems. Paths are absolute,
// '/'-separated, with no "." / ".." resolution (the simulator's workloads
// only generate canonical paths; anything else is rejected as invalid).

#ifndef SSMC_SRC_FS_PATH_H_
#define SSMC_SRC_FS_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.h"

namespace ssmc {

// True for a canonical absolute path: starts with '/', no empty, "." or ".."
// components, no trailing slash (except the root itself).
bool IsValidPath(std::string_view path);

// Splits "/a/b/c" into {"a","b","c"}; root splits into {}.
// Pre: IsValidPath(path).
std::vector<std::string> SplitPath(std::string_view path);

// Parent of "/a/b/c" is "/a/b"; parent of "/a" is "/"; parent of "/" is "/".
std::string ParentPath(std::string_view path);

// Final component; basename of "/" is "".
std::string BaseName(std::string_view path);

// Joins a directory and a name ("/a" + "b" -> "/a/b"; "/" + "b" -> "/b").
std::string JoinPath(std::string_view dir, std::string_view name);

}  // namespace ssmc

#endif  // SSMC_SRC_FS_PATH_H_
