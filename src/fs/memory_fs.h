// MemoryFileSystem — the paper's file system (Section 3.1).
//
// Everything the paper calls for:
//  * metadata is entirely memory-resident: the namespace is a tree in
//    battery-backed DRAM, looked up at DRAM speed (no metadata I/O);
//  * no block clustering — flash has no seeks, so placement is whatever the
//    flash store's log gives us;
//  * no indirect blocks — a file's block map is one flat extent vector;
//  * no traditional buffer cache — reads resolve through the residency
//    manager (src/storage/residency.h): dirty blocks come from the DRAM
//    write buffer, promoted hot blocks from its clean cache (migration
//    policies only), everything else directly from flash at byte
//    granularity;
//  * writes go to the DRAM write buffer (copy-on-write from flash for
//    partial-block updates) and reach flash only when flushed — short-lived
//    data is dropped before it ever costs a flash program;
//  * deletes drop buffered blocks (write avoidance) and trim flash blocks.
//
// The file system is also the flush destination: when the write buffer
// evicts or ages out a dirty block, the callback here allocates a flash
// block (first write) or overwrites the existing one out-of-place.

#ifndef SSMC_SRC_FS_MEMORY_FS_H_
#define SSMC_SRC_FS_MEMORY_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/fs/file_system.h"
#include "src/sim/io_stats.h"
#include "src/sim/stats.h"
#include "src/storage/storage_manager.h"
#include "src/storage/write_buffer.h"
#include "src/support/status.h"

namespace ssmc {

class MetadataJournal;
struct JournalRecord;

struct MemoryFsOptions {
  // Write buffer capacity in pages (pages are storage.page_bytes() each).
  // 2048 pages of 512 B = 1 MiB, the size Baker et al. showed absorbs
  // 40-50% of write traffic. 0 = unbuffered write-through baseline.
  uint64_t write_buffer_pages = 2048;
  // Dirty blocks older than this are flushed by TickFlush().
  Duration flush_age = 30 * kSecond;
  // Differential oracle mode (PR 1 technique): every placement decision the
  // residency manager makes is cross-checked against the pre-residency
  // buffered->flash->hole resolution chain, counting mismatches in
  // residency_validation_failures(). A clean-cache hit where the oracle
  // says flash is the one legal divergence (under migration policies the
  // flash copy stays authoritative).
  bool validate_residency = false;
  // Durable metadata journal (ROADMAP E13). When set, every namespace
  // mutation appends a record to the journal before the operation is acked,
  // CheckpointMetadata() compacts through the journal's dense snapshot, and
  // the log is bounded by the journal's compaction advisory. Null = legacy
  // behavior, byte-identical to the pre-journal file system.
  MetadataJournal* journal = nullptr;
  // With the journal enabled, ALSO maintain the legacy block-0 checkpoint on
  // every CheckpointMetadata() so the two recovery paths can be compared
  // differentially (tests and the E13 bench).
  bool journal_oracle = false;
};

// Where a mapped file block currently lives (consumed by the VM layer for
// copy-on-write file mappings and execute-in-place).
struct BlockLocation {
  enum class Kind { kHole, kBuffered, kFlash };
  Kind kind = Kind::kHole;
  uint64_t flash_block = 0;  // Valid when kind == kFlash.
};

// Outcome of rebuilding a file system from its flash checkpoint after the
// battery-backed metadata was lost.
struct RecoveryReport {
  uint64_t directories_recovered = 0;
  uint64_t files_recovered = 0;
  uint64_t bytes_recovered = 0;  // File bytes whose blocks are in flash.
  SimTime checkpoint_age = 0;    // How stale the recovered state is.
  uint64_t journal_records_replayed = 0;  // Log-tail records applied on top
                                          // of the checkpoint (journal path).
};

class MemoryFileSystem : public FileSystem {
 public:
  MemoryFileSystem(StorageManager& storage, MemoryFsOptions options);
  ~MemoryFileSystem() override;

  // --- Crash safety (Section 3.1) ----------------------------------------
  // The namespace and inodes live in battery-backed DRAM; flash must also
  // hold a recoverable copy or a total battery failure loses every file.
  // CheckpointMetadata serializes the namespace into flash blocks anchored
  // at a fixed superblock (flash logical block 0), replacing the previous
  // checkpoint atomically (the superblock is rewritten last, out of place).
  Status CheckpointMetadata();

  // Rebuilds a file system from the checkpoint in `storage`'s flash store.
  // Used after a total battery failure: the caller constructs a fresh
  // StorageManager over the surviving FlashStore (the FTL's mapping is
  // recoverable from per-sector summaries on real hardware) and this
  // factory re-reads the superblock, rebuilds the tree, and re-registers
  // every referenced flash block with the allocator. Data written after the
  // last checkpoint — and anything still in the write buffer at the crash —
  // is gone; the report says what survived.
  static Result<std::unique_ptr<MemoryFileSystem>> RecoverFromCheckpoint(
      StorageManager& storage, MemoryFsOptions options,
      RecoveryReport* report);

  // Journal-based remount (ROADMAP E13): mounts `journal` from flash (the
  // newest valid superblock), installs its dense namespace checkpoint, and
  // replays the log tail so every mutation the journal acked before the
  // crash is restored — not just state as of the last checkpoint. Mount
  // work scales with checkpoint size + log-tail length, never with a
  // per-path walk of the namespace. `options.journal` is overwritten to
  // point at `journal`; the returned fs keeps journaling.
  static Result<std::unique_ptr<MemoryFileSystem>> RecoverFromJournal(
      MetadataJournal& journal, StorageManager& storage,
      MemoryFsOptions options, RecoveryReport* report);

  std::string name() const override { return "memory-fs"; }

  // The issuing tenant for subsequent operations: stamped onto every flash
  // read this fs issues, onto buffered dirty blocks (the eventual flush is
  // billed to the last writer), and onto per-tenant fs stats. Checkpoint
  // metadata I/O stays on the default (system) tenant. Also steers the
  // residency manager's promotion attribution.
  void set_current_tenant(TenantId tenant) override;
  TenantId current_tenant() const override { return tenant_; }

  Status Create(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Mkdir(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Result<uint64_t> Read(const std::string& path, uint64_t offset,
                        std::span<uint8_t> out) override;
  Result<uint64_t> Write(const std::string& path, uint64_t offset,
                         std::span<const uint8_t> data) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Result<FileInfo> Stat(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<std::vector<std::string>> List(const std::string& path) override;
  Status Sync() override;

  // Periodic age-based flush; the machine's flush daemon calls this.
  Status TickFlush(SimTime now);

  // Stable identifier of a file (used as the write-buffer key space and by
  // the VM layer for mappings).
  Result<uint64_t> FileId(const std::string& path);

  // Current location of each block of the file; blocks beyond EOF excluded.
  // VM mappings re-resolve through this after faults because the cleaner
  // relocates flash blocks.
  Result<std::vector<BlockLocation>> BlockLocations(const std::string& path);

  // Simulates total battery failure: every dirty buffered block is lost,
  // and the (battery-backed DRAM) clean cache evaporates with it — though
  // the latter costs nothing, its flash copies being authoritative.
  // Returns the number of lost dirty bytes. Flash contents survive.
  uint64_t LoseBufferedData() {
    storage_.residency().InvalidateAllClean();
    return buffer_.DropAllUnflushed();
  }

  const WriteBuffer& write_buffer() const { return buffer_; }
  WriteBuffer& write_buffer() { return buffer_; }
  StorageManager& storage() { return storage_; }
  uint64_t block_bytes() const { return storage_.page_bytes(); }

  struct Stats {
    Counter creates;
    Counter unlinks;
    Counter reads;
    Counter read_bytes;
    Counter writes;
    Counter written_bytes;
    Counter flash_direct_read_bytes;  // Bytes served straight from flash.
    Counter buffered_read_bytes;      // Bytes served from the write buffer.
    Counter clean_cached_read_bytes;  // Bytes served from the residency
                                      // manager's clean DRAM cache.
    Counter nvm_cached_read_bytes;    // Bytes served from the NVM tier.
    Counter cow_block_copies;         // Flash->DRAM copies for partial writes.
    // Per-tenant op/byte attribution at the fs boundary (reads include
    // bytes served from DRAM; the flash-only split lives in FlashStore).
    TenantIoTable by_tenant;
  };
  const Stats& stats() const { return stats_; }

  // Mismatches found by MemoryFsOptions::validate_residency (0 = the
  // residency manager agreed with the legacy resolution on every access).
  uint64_t residency_validation_failures() const {
    return residency_validation_failures_;
  }

  // Observability (nullable; null detaches): a "memory-fs" trace track with
  // data-op and checkpoint spans plus a Stats mirror collector. Also attaches
  // the embedded write buffer. The machine re-attaches after crash recovery
  // (the fs and buffer are rebuilt); track registration and collector keys
  // dedupe, so re-attachment is safe.
  void AttachObs(Obs* obs);

 private:
  struct Inode {
    uint64_t id = 0;
    uint64_t size = 0;
    // Block index -> flash logical block, or -1 if not (yet) in flash.
    // Deliberately a flat vector: "the complexity of multiple levels of
    // indirect blocks may also be eliminated."
    std::vector<int64_t> flash_blocks;
    // Last tenant to write this file; journaled (kTenantStamp) so post-crash
    // flush attribution survives remount.
    TenantId last_writer = kDefaultTenant;
  };

  struct Node {
    bool is_dir = false;
    // std::less<> enables lookups by string_view without a key copy.
    std::map<std::string, std::unique_ptr<Node>, std::less<>> children;  // Dirs only.
    Inode inode;                                            // Files only.
  };

  // Per-component metadata costs (bytes charged to DRAM per operation).
  static constexpr uint64_t kDirEntryBytes = 48;
  static constexpr uint64_t kInodeBytes = 64;
  // Flash logical block anchoring the checkpoint chain.
  static constexpr uint64_t kSuperblock = 0;

  // Serializes the namespace tree (paths, inodes, block maps) to a blob.
  void SerializeTree(const Node& node, const std::string& path,
                     std::vector<uint8_t>& out) const;
  // Releases the flash blocks of the previous checkpoint.
  void ReleaseOldCheckpoint();
  // Frees a detached checkpoint-block list, skipping blocks this manager no
  // longer holds (safe across recovery replacing the manager mid-release).
  void ReleaseCheckpointBlocks(std::vector<uint64_t> blocks);

  // Dense snapshot for the journal's checkpoint chain: parent-index +
  // basename per node instead of one full path per record, preorder, so
  // deserialization is straight array indexing with no path walks.
  void SerializeDense(std::vector<uint8_t>& out) const;
  uint32_t SerializeDenseChildren(const Node& dir, uint32_t dir_index,
                                  uint32_t next_index, uint64_t* count,
                                  std::vector<uint8_t>& out) const;

  // Appends `record` durably when journaling is on (no-op otherwise or
  // during replay). The caller must not have applied the mutation yet: a
  // failed append fails the operation with the namespace unchanged.
  Status JournalAppend(JournalRecord record);
  // Compacts the journal (through CheckpointMetadata) once its log passes
  // the configured bound. Advisory: failures are swallowed, the log just
  // stays long until the next opportunity.
  void MaybeCompact();
  // Applies one recovered log record to the in-memory state. Never touches
  // the block allocator (extents are reserved in one pass after replay).
  Status ReplayRecord(const JournalRecord& record);

  // Walks the tree, charging DRAM reads per component. Returns null if any
  // component is missing or a non-directory is traversed.
  Node* Lookup(std::string_view path);
  // Returns the parent node of `path` (charging lookups) or null.
  Node* LookupParent(std::string_view path);

  // The write buffer's flush destination. `tenant` is whoever last dirtied
  // the block (recorded by the buffer), not whoever triggered the drain.
  Status FlushBlock(const BlockKey& key, const PayloadRef& data,
                    TenantId tenant);

  // Releases one file block everywhere (buffer + flash).
  void ReleaseBlock(Inode& inode, uint64_t block_index);

  // Stages a block into the write buffer, performing copy-on-write from
  // flash (or the clean cache, at DRAM speed) when the write does not cover
  // the whole block.
  Status StageBlockWrite(Inode& inode, uint64_t block_index,
                         uint64_t offset_in_block,
                         std::span<const uint8_t> data);

  // The pre-residency placement chain, kept as the differential oracle for
  // MemoryFsOptions::validate_residency.
  Residency OracleResolve(const BlockKey& key, int64_t flash_block) const;
  // Counts a mismatch between `got` and the oracle (no-op unless
  // validate_residency is set).
  void CheckResolve(Residency got, const BlockKey& key, int64_t flash_block);

  StorageManager& storage_;
  MemoryFsOptions options_;
  WriteBuffer buffer_;
  std::unique_ptr<Node> root_;
  // Inode id -> inode (for flush callbacks); owned by the node tree.
  std::unordered_map<uint64_t, Inode*> inode_index_;
  uint64_t next_inode_id_ = 1;
  std::vector<uint64_t> checkpoint_blocks_;  // Data blocks of the last
                                             // checkpoint (superblock extra).
  SimTime last_checkpoint_at_ = -1;          // -1: never checkpointed.
  uint64_t residency_validation_failures_ = 0;
  // True while RecoverFromJournal replays records: suppresses journal
  // emission from the mutation paths replay reuses.
  bool replaying_ = false;
  TenantId tenant_ = kDefaultTenant;
  Stats stats_;
  Obs* obs_ = nullptr;
  int obs_track_ = 0;
};

}  // namespace ssmc

#endif  // SSMC_SRC_FS_MEMORY_FS_H_
