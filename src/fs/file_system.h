// Abstract file-system interface.
//
// Both file systems in this repository — the paper's MemoryFileSystem and
// the conventional DiskFileSystem baseline — implement this interface so the
// trace replayer and the E3/E6 benches can drive them interchangeably. The
// API is path-based (no descriptors): every call is one simulated operation
// whose cost is whatever the implementation's devices charge to the clock.

#ifndef SSMC_SRC_FS_FILE_SYSTEM_H_
#define SSMC_SRC_FS_FILE_SYSTEM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/sim/io_request.h"
#include "src/support/status.h"
#include "src/support/units.h"

namespace ssmc {

struct FileInfo {
  uint64_t size = 0;
  bool is_directory = false;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual std::string name() const = 0;

  // The tenant on whose behalf subsequent operations are issued. The
  // replayer sets this per trace record; implementations stamp it onto the
  // device I/O they generate (and onto buffered dirty data, so the eventual
  // flush is billed to the dirtier). Default implementation ignores it —
  // a file system with no tenant-aware accounting stays valid.
  virtual void set_current_tenant(TenantId tenant) { (void)tenant; }
  virtual TenantId current_tenant() const { return kDefaultTenant; }

  // Creates an empty regular file. Parent directory must exist.
  virtual Status Create(const std::string& path) = 0;

  // Removes a regular file and releases its storage.
  virtual Status Unlink(const std::string& path) = 0;

  // Creates a directory. Parent must exist.
  virtual Status Mkdir(const std::string& path) = 0;

  // Removes an empty directory.
  virtual Status Rmdir(const std::string& path) = 0;

  // Reads up to out.size() bytes at `offset`; returns bytes read (0 at or
  // past EOF).
  virtual Result<uint64_t> Read(const std::string& path, uint64_t offset,
                                std::span<uint8_t> out) = 0;

  // Writes data at `offset`, extending the file as needed. Returns bytes
  // written.
  virtual Result<uint64_t> Write(const std::string& path, uint64_t offset,
                                 std::span<const uint8_t> data) = 0;

  // Shrinks or extends (zero-filled) the file to `size`.
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  virtual Result<FileInfo> Stat(const std::string& path) = 0;

  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  // Names (not paths) of entries in a directory.
  virtual Result<std::vector<std::string>> List(const std::string& path) = 0;

  // Forces all buffered dirty data to stable storage.
  virtual Status Sync() = 0;
};

}  // namespace ssmc

#endif  // SSMC_SRC_FS_FILE_SYSTEM_H_
