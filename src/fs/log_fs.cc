#include "src/fs/log_fs.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/fs/path.h"

namespace ssmc {

LogFileSystem::LogFileSystem(DiskDevice& disk, LogFsOptions options)
    : disk_(disk), options_(options), root_(std::make_unique<Node>()) {
  assert(options_.block_bytes % disk_.sector_bytes() == 0);
  root_->is_dir = true;
  const uint64_t blocks = disk_.capacity_bytes() / options_.block_bytes;
  num_segments_ = blocks / options_.segment_blocks;
  assert(num_segments_ > options_.free_segment_low_water + 2);
  usage_.assign(num_segments_, 0);
  summary_.assign(num_segments_,
                  std::vector<SlotOwner>(options_.segment_blocks));
  segment_free_.assign(num_segments_, true);
  free_segments_.reserve(num_segments_);
  for (uint64_t s = num_segments_; s > 0; --s) {
    free_segments_.push_back(s - 1);
  }
}

LogFileSystem::~LogFileSystem() = default;

// --- Namespace (memory-resident, mirroring Sprite LFS's cached metadata) ---

LogFileSystem::Node* LogFileSystem::Lookup(std::string_view path) {
  if (!IsValidPath(path)) {
    return nullptr;
  }
  Node* node = root_.get();
  for (const std::string_view component : PathComponents(path)) {
    if (!node->is_dir) {
      return nullptr;
    }
    auto it = node->children.find(component);
    if (it == node->children.end()) {
      return nullptr;
    }
    node = it->second.get();
  }
  return node;
}

LogFileSystem::Node* LogFileSystem::LookupParent(std::string_view path) {
  if (!IsValidPath(path) || path == "/") {
    return nullptr;
  }
  Node* parent = Lookup(ParentPathView(path));
  return parent != nullptr && parent->is_dir ? parent : nullptr;
}

Status LogFileSystem::Create(const std::string& path) {
  Node* parent = LookupParent(path);
  if (parent == nullptr) {
    return NotFoundError("no parent directory for " + path);
  }
  const std::string base = BaseName(path);
  if (parent->children.find(base) != parent->children.end()) {
    return AlreadyExistsError(path);
  }
  auto node = std::make_unique<Node>();
  node->inode.id = next_inode_id_++;
  inode_index_[node->inode.id] = &node->inode;
  parent->children.emplace(base, std::move(node));
  return Status::Ok();
}

Status LogFileSystem::Mkdir(const std::string& path) {
  Node* parent = LookupParent(path);
  if (parent == nullptr) {
    return NotFoundError("no parent directory for " + path);
  }
  const std::string base = BaseName(path);
  if (parent->children.find(base) != parent->children.end()) {
    return AlreadyExistsError(path);
  }
  auto node = std::make_unique<Node>();
  node->is_dir = true;
  parent->children.emplace(base, std::move(node));
  return Status::Ok();
}

void LogFileSystem::KillBlock(int64_t disk_block) {
  if (disk_block < 0) {
    return;
  }
  const uint64_t seg = SegmentOfBlock(static_cast<uint64_t>(disk_block));
  assert(usage_[seg] > 0);
  usage_[seg] -= 1;
  if (usage_[seg] == 0 && !segment_free_[seg]) {
    segment_free_[seg] = true;
    free_segments_.push_back(seg);
  }
}

void LogFileSystem::ReleaseFile(Inode& inode) {
  for (int64_t block : inode.blocks) {
    KillBlock(block);
  }
  inode.blocks.clear();
  // Drop every dirty block of this inode — including blocks staged beyond
  // the file size by a write that failed partway (NO_SPACE mid-write).
  for (auto it = dirty_.lower_bound(DirtyKey{inode.id, 0});
       it != dirty_.end() && it->first.first == inode.id;) {
    it = dirty_.erase(it);
  }
}

Status LogFileSystem::Unlink(const std::string& path) {
  Node* parent = LookupParent(path);
  if (parent == nullptr) {
    return NotFoundError("no parent directory for " + path);
  }
  auto it = parent->children.find(BaseNameView(path));
  if (it == parent->children.end()) {
    return NotFoundError(path);
  }
  if (it->second->is_dir) {
    return FailedPreconditionError(path + " is a directory");
  }
  ReleaseFile(it->second->inode);
  inode_index_.erase(it->second->inode.id);
  parent->children.erase(it);
  return Status::Ok();
}

Status LogFileSystem::Rmdir(const std::string& path) {
  Node* parent = LookupParent(path);
  if (parent == nullptr) {
    return NotFoundError("no parent directory for " + path);
  }
  auto it = parent->children.find(BaseNameView(path));
  if (it == parent->children.end()) {
    return NotFoundError(path);
  }
  if (!it->second->is_dir) {
    return FailedPreconditionError(path + " is not a directory");
  }
  if (!it->second->children.empty()) {
    return FailedPreconditionError(path + " is not empty");
  }
  parent->children.erase(it);
  return Status::Ok();
}

// --- The log ---------------------------------------------------------------

Result<uint64_t> LogFileSystem::TakeFreeSegment() {
  if (free_segments_.size() <= options_.free_segment_low_water &&
      !cleaning_) {
    SSMC_RETURN_IF_ERROR(CleanOne().status());
  }
  if (free_segments_.empty()) {
    return NoSpaceError("log out of segments");
  }
  const uint64_t seg = free_segments_.back();
  free_segments_.pop_back();
  segment_free_[seg] = false;
  return seg;
}

Result<bool> LogFileSystem::CleanOne() {
  if (cleaning_) {
    return false;
  }
  cleaning_ = true;
  const uint64_t seg_bytes = options_.segment_blocks * options_.block_bytes;
  bool made_progress = false;

  while (free_segments_.size() <= options_.free_segment_low_water) {
    if (free_segments_.empty()) {
      break;  // Nothing to stage compaction into.
    }
    const size_t free_before = free_segments_.size();
    // Destination for compacted live data.
    const uint64_t dest = free_segments_.back();
    free_segments_.pop_back();
    segment_free_[dest] = false;

    std::vector<uint8_t> out;
    out.reserve(seg_bytes);
    uint64_t dest_slot = 0;

    // Pack victims (lowest utilization first) until the destination fills
    // or nothing cleanable remains. Moves are applied per victim, so a
    // fully drained victim frees immediately and cannot be re-picked.
    while (out.size() < seg_bytes) {
      int64_t victim = -1;
      for (uint64_t s = 0; s < num_segments_; ++s) {
        if (segment_free_[s] || s == dest || usage_[s] == 0 ||
            usage_[s] >= options_.segment_blocks) {
          continue;
        }
        if (victim < 0 || usage_[s] < usage_[static_cast<uint64_t>(victim)]) {
          victim = static_cast<int64_t>(s);
        }
      }
      if (victim < 0) {
        break;
      }
      // One sequential read of the whole victim segment.
      std::vector<uint8_t> seg_data(seg_bytes);
      Result<Duration> read = disk_.ReadSectors(
          SectorOfBlock(static_cast<uint64_t>(victim) *
                        options_.segment_blocks),
          seg_data);
      if (!read.ok()) {
        cleaning_ = false;
        return read.status();
      }
      bool victim_progress = false;
      for (uint64_t slot = 0;
           slot < options_.segment_blocks && out.size() < seg_bytes; ++slot) {
        const SlotOwner owner = summary_[static_cast<uint64_t>(victim)][slot];
        auto it = inode_index_.find(owner.ino);
        if (it == inode_index_.end()) {
          continue;
        }
        Inode& inode = *it->second;
        const int64_t addr = static_cast<int64_t>(
            static_cast<uint64_t>(victim) * options_.segment_blocks + slot);
        if (owner.block_index >= inode.blocks.size() ||
            inode.blocks[owner.block_index] != addr) {
          continue;  // Dead slot.
        }
        // Stage the bytes and retarget the block at its new home.
        out.insert(out.end(),
                   seg_data.begin() +
                       static_cast<ptrdiff_t>(slot * options_.block_bytes),
                   seg_data.begin() + static_cast<ptrdiff_t>(
                                          (slot + 1) * options_.block_bytes));
        KillBlock(addr);
        inode.blocks[owner.block_index] = static_cast<int64_t>(
            dest * options_.segment_blocks + dest_slot);
        usage_[dest] += 1;
        summary_[dest][dest_slot] = owner;
        ++dest_slot;
        stats_.cleaner_live_blocks.Add();
        victim_progress = true;
      }
      if (!victim_progress) {
        break;  // Summary claims live data but every pointer disagrees.
      }
      stats_.cleaner_runs.Add();
    }

    if (dest_slot == 0) {
      // Nothing cleanable; hand the destination back.
      segment_free_[dest] = true;
      free_segments_.push_back(dest);
      break;
    }

    // One sequential write of the compacted data.
    Result<Duration> wrote = disk_.WriteSectors(
        SectorOfBlock(dest * options_.segment_blocks), out);
    if (!wrote.ok()) {
      cleaning_ = false;
      return wrote.status();
    }
    stats_.segment_writes.Add();
    stats_.blocks_written.Add(dest_slot);
    made_progress = true;
    if (free_segments_.size() <= free_before) {
      // The pass consumed as many segments as it freed (victims are nearly
      // full): further cleaning cannot gain space.
      break;
    }
  }
  cleaning_ = false;
  return made_progress;
}

Status LogFileSystem::FlushDirtyBuffer() {
  while (!dirty_.empty()) {
    Result<uint64_t> seg = TakeFreeSegment();
    if (!seg.ok()) {
      return seg.status();
    }
    const uint64_t n =
        std::min<uint64_t>(dirty_.size(), options_.segment_blocks);
    std::vector<uint8_t> out;
    out.reserve(n * options_.block_bytes);
    std::vector<DirtyKey> keys;
    keys.reserve(n);
    for (auto it = dirty_.begin(); keys.size() < n; ++it) {
      keys.push_back(it->first);
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
    // One big sequential write — the whole point of the log.
    Result<Duration> wrote = disk_.WriteSectors(
        SectorOfBlock(seg.value() * options_.segment_blocks), out);
    if (!wrote.ok()) {
      return wrote.status();
    }
    stats_.segment_writes.Add();
    stats_.blocks_written.Add(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      const auto [ino, block_index] = keys[i];
      auto it = inode_index_.find(ino);
      if (it == inode_index_.end()) {
        // The file vanished while its block sat in the buffer; the slot in
        // the just-written segment is simply dead.
        dirty_.erase(keys[i]);
        continue;
      }
      Inode& inode = *it->second;
      if (inode.blocks.size() <= block_index) {
        inode.blocks.resize(block_index + 1, kHole);
      }
      KillBlock(inode.blocks[block_index]);
      inode.blocks[block_index] =
          static_cast<int64_t>(seg.value() * options_.segment_blocks + i);
      usage_[seg.value()] += 1;
      summary_[seg.value()][i] = SlotOwner{ino, block_index};
      dirty_.erase(keys[i]);
    }
  }
  return Status::Ok();
}

Status LogFileSystem::PutDirty(Inode& inode, uint64_t block_index,
                               std::vector<uint8_t> data) {
  assert(data.size() == options_.block_bytes);
  dirty_[DirtyKey{inode.id, block_index}] = std::move(data);
  ++user_blocks_written_;
  if (dirty_.size() >= options_.segment_blocks) {
    return FlushDirtyBuffer();
  }
  return Status::Ok();
}

// --- Read / write ------------------------------------------------------------

Result<uint64_t> LogFileSystem::Read(const std::string& path, uint64_t offset,
                                     std::span<uint8_t> out) {
  Node* node = Lookup(path);
  if (node == nullptr) {
    return NotFoundError(path);
  }
  if (node->is_dir) {
    return FailedPreconditionError(path + " is a directory");
  }
  Inode& inode = node->inode;
  if (offset >= inode.size) {
    return uint64_t{0};
  }
  const uint64_t bs = options_.block_bytes;
  const uint64_t n = std::min<uint64_t>(out.size(), inode.size - offset);
  std::vector<uint8_t> staging(bs);
  uint64_t done = 0;
  while (done < n) {
    const uint64_t pos = offset + done;
    const uint64_t block = pos / bs;
    const uint64_t in_block = pos % bs;
    const uint64_t chunk = std::min(bs - in_block, n - done);
    auto dirty_it = dirty_.find(DirtyKey{inode.id, block});
    if (dirty_it != dirty_.end()) {
      std::memcpy(out.data() + done, dirty_it->second.data() + in_block,
                  chunk);
      stats_.reads_from_buffer.Add();
    } else if (block < inode.blocks.size() && inode.blocks[block] >= 0) {
      Result<Duration> read = disk_.ReadSectors(
          SectorOfBlock(static_cast<uint64_t>(inode.blocks[block])), staging);
      if (!read.ok()) {
        return read.status();
      }
      std::memcpy(out.data() + done, staging.data() + in_block, chunk);
      stats_.reads_from_disk.Add();
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
  return n;
}

Result<uint64_t> LogFileSystem::Write(const std::string& path,
                                      uint64_t offset,
                                      std::span<const uint8_t> data) {
  Node* node = Lookup(path);
  if (node == nullptr) {
    return NotFoundError(path);
  }
  if (node->is_dir) {
    return FailedPreconditionError(path + " is a directory");
  }
  Inode& inode = node->inode;
  const uint64_t bs = options_.block_bytes;
  uint64_t done = 0;
  while (done < data.size()) {
    const uint64_t pos = offset + done;
    const uint64_t block = pos / bs;
    const uint64_t in_block = pos % bs;
    const uint64_t chunk = std::min(bs - in_block, data.size() - done);

    std::vector<uint8_t> staging(bs, 0);
    if (chunk < bs) {
      // Partial block: merge with the current contents.
      auto dirty_it = dirty_.find(DirtyKey{inode.id, block});
      if (dirty_it != dirty_.end()) {
        staging = dirty_it->second;
      } else if (block < inode.blocks.size() && inode.blocks[block] >= 0) {
        Result<Duration> read = disk_.ReadSectors(
            SectorOfBlock(static_cast<uint64_t>(inode.blocks[block])),
            staging);
        if (!read.ok()) {
          return read.status();
        }
      }
    }
    std::memcpy(staging.data() + in_block, data.data() + done, chunk);
    SSMC_RETURN_IF_ERROR(PutDirty(inode, block, std::move(staging)));
    done += chunk;
  }
  if (offset + data.size() > inode.size) {
    inode.size = offset + data.size();
  }
  return static_cast<uint64_t>(data.size());
}

Status LogFileSystem::Truncate(const std::string& path, uint64_t size) {
  Node* node = Lookup(path);
  if (node == nullptr) {
    return NotFoundError(path);
  }
  if (node->is_dir) {
    return FailedPreconditionError(path + " is a directory");
  }
  Inode& inode = node->inode;
  const uint64_t bs = options_.block_bytes;
  if (size < inode.size) {
    const uint64_t first_dead = (size + bs - 1) / bs;
    const uint64_t old_blocks = (inode.size + bs - 1) / bs;
    for (uint64_t b = first_dead; b < old_blocks; ++b) {
      dirty_.erase(DirtyKey{inode.id, b});
      if (b < inode.blocks.size()) {
        KillBlock(inode.blocks[b]);
        inode.blocks[b] = kHole;
      }
    }
    if (inode.blocks.size() > first_dead) {
      inode.blocks.resize(first_dead, kHole);
    }
    // Zero the cut-off tail of the surviving partial block.
    const uint64_t tail = size % bs;
    if (tail != 0) {
      std::vector<uint8_t> staging(bs, 0);
      auto dirty_it = dirty_.find(DirtyKey{inode.id, size / bs});
      if (dirty_it != dirty_.end()) {
        staging = dirty_it->second;
      } else if (size / bs < inode.blocks.size() &&
                 inode.blocks[size / bs] >= 0) {
        Result<Duration> read = disk_.ReadSectors(
            SectorOfBlock(static_cast<uint64_t>(inode.blocks[size / bs])),
            staging);
        if (!read.ok()) {
          return read.status();
        }
      }
      std::fill(staging.begin() + static_cast<ptrdiff_t>(tail), staging.end(),
                0);
      SSMC_RETURN_IF_ERROR(PutDirty(inode, size / bs, std::move(staging)));
    }
  }
  inode.size = size;
  return Status::Ok();
}

Result<FileInfo> LogFileSystem::Stat(const std::string& path) {
  Node* node = Lookup(path);
  if (node == nullptr) {
    return NotFoundError(path);
  }
  FileInfo info;
  info.is_directory = node->is_dir;
  info.size = node->is_dir ? 0 : node->inode.size;
  return info;
}

Status LogFileSystem::Rename(const std::string& from, const std::string& to) {
  Node* from_parent = LookupParent(from);
  if (from_parent == nullptr) {
    return NotFoundError(from);
  }
  auto it = from_parent->children.find(BaseNameView(from));
  if (it == from_parent->children.end()) {
    return NotFoundError(from);
  }
  Node* to_parent = LookupParent(to);
  if (to_parent == nullptr) {
    return NotFoundError("no parent directory for " + to);
  }
  const std::string to_base = BaseName(to);
  if (to_parent->children.find(to_base) != to_parent->children.end()) {
    return AlreadyExistsError(to);
  }
  to_parent->children.emplace(to_base, std::move(it->second));
  from_parent->children.erase(it);
  return Status::Ok();
}

Result<std::vector<std::string>> LogFileSystem::List(const std::string& path) {
  Node* node = Lookup(path);
  if (node == nullptr) {
    return NotFoundError(path);
  }
  if (!node->is_dir) {
    return FailedPreconditionError(path + " is not a directory");
  }
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    names.push_back(name);
  }
  return names;
}

Status LogFileSystem::Sync() { return FlushDirtyBuffer(); }

double LogFileSystem::WriteAmplification() const {
  if (user_blocks_written_ == 0) {
    return 1.0;
  }
  return static_cast<double>(stats_.blocks_written.value()) /
         static_cast<double>(user_blocks_written_);
}

}  // namespace ssmc
