// DiskFileSystem — the conventional organization the paper argues mobile
// computers will abandon. A classical UNIX-style file system over a
// simulated magnetic disk, complete with everything the memory-resident
// file system gets to delete:
//  * on-disk inodes with direct, single-indirect and double-indirect block
//    pointers;
//  * allocation bitmaps and an inode table occupying disk blocks;
//  * directory contents stored in file data blocks and scanned linearly;
//  * an LRU buffer cache hiding disk latency, write-back for data and
//    write-through for metadata (the classical consistency compromise);
//  * allocation-group placement that tries to cluster a file's blocks near
//    each other to shorten seeks.
//
// On-disk layout (cache blocks of block_bytes, default 4 KiB):
//   [0]                superblock
//   [1 .. ib]          inode bitmap
//   [ib+1 .. db]       data bitmap (covers the whole device)
//   [db+1 .. it]       inode table (128 B per inode)
//   [it+1 .. end]      data blocks

#ifndef SSMC_SRC_FS_DISK_FS_H_
#define SSMC_SRC_FS_DISK_FS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/device/disk_device.h"
#include "src/fs/buffer_cache.h"
#include "src/fs/file_system.h"
#include "src/sim/stats.h"
#include "src/support/status.h"

namespace ssmc {

struct DiskFsOptions {
  uint64_t block_bytes = 4096;
  uint64_t cache_blocks = 64;       // 256 KiB cache at 4 KiB blocks.
  uint64_t inode_count = 1024;
  // Classical UNIX semantics: metadata (inodes, bitmaps, directories) is
  // written through to disk for crash consistency; file data is write-back.
  bool sync_metadata = true;
  // Number of allocation groups for clustered placement.
  uint64_t allocation_groups = 8;
};

class DiskFileSystem : public FileSystem {
 public:
  // Formats the disk (mkfs) and mounts it.
  DiskFileSystem(DiskDevice& disk, DiskFsOptions options);

  std::string name() const override { return "disk-fs"; }

  Status Create(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Mkdir(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Result<uint64_t> Read(const std::string& path, uint64_t offset,
                        std::span<uint8_t> out) override;
  Result<uint64_t> Write(const std::string& path, uint64_t offset,
                         std::span<const uint8_t> data) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Result<FileInfo> Stat(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<std::vector<std::string>> List(const std::string& path) override;
  Status Sync() override;

  const BufferCache& cache() const { return cache_; }

  // Flushes and empties the buffer cache — simulates a cold start (reboot)
  // for launch-latency measurements.
  Status DropCaches() { return cache_.DropAll(); }

  struct Stats {
    Counter creates;
    Counter unlinks;
    Counter reads;
    Counter read_bytes;
    Counter writes;
    Counter written_bytes;
    Counter dir_scans;          // Directory-block scans during lookups.
    Counter indirect_fetches;   // Indirect-block loads.
  };
  const Stats& stats() const { return stats_; }

  // Capacity facts derived from the layout (exposed for tests).
  uint64_t data_block_start() const { return layout_.data_start; }
  uint64_t total_blocks() const { return layout_.total_blocks; }

 private:
  // 128-byte on-disk inode. kDirect * 4 KiB direct + one indirect (1024
  // pointers) + one double indirect — the multi-level structure Section 3.1
  // says a single-level store eliminates.
  static constexpr uint32_t kDirect = 12;
  static constexpr uint32_t kInodeBytes = 128;
  static constexpr uint32_t kDirEntryBytes = 64;
  static constexpr uint32_t kNameMax = kDirEntryBytes - 4 - 1;

  struct DiskInode {
    uint32_t mode = 0;  // 0 free, 1 file, 2 directory.
    uint32_t reserved = 0;
    uint64_t size = 0;
    uint32_t direct[kDirect] = {};
    uint32_t indirect = 0;
    uint32_t double_indirect = 0;
    uint8_t padding[kInodeBytes - 4 - 4 - 8 - 4 * kDirect - 4 - 4] = {};
  };
  static_assert(sizeof(DiskInode) == kInodeBytes);

  struct Layout {
    uint64_t total_blocks = 0;
    uint64_t inode_bitmap_start = 0;
    uint64_t inode_bitmap_blocks = 0;
    uint64_t data_bitmap_start = 0;
    uint64_t data_bitmap_blocks = 0;
    uint64_t inode_table_start = 0;
    uint64_t inode_table_blocks = 0;
    uint64_t data_start = 0;
  };

  void Mkfs();

  // --- Inode access -------------------------------------------------------
  Result<DiskInode> ReadInode(uint32_t ino);
  Status WriteInode(uint32_t ino, const DiskInode& inode);
  Result<uint32_t> AllocateInode(uint32_t mode);
  Status FreeInode(uint32_t ino);

  // --- Block allocation ---------------------------------------------------
  // Allocates a data block, preferring the allocation group of `hint_block`
  // (0 = derive from the inode number) — FFS-style clustering.
  Result<uint32_t> AllocateDataBlock(uint32_t hint_block);
  Status FreeDataBlock(uint32_t block);
  Status SetBitmapBit(uint64_t bitmap_start, uint64_t index, bool value);
  Result<bool> GetBitmapBit(uint64_t bitmap_start, uint64_t index);

  // --- File block mapping -------------------------------------------------
  // Maps file block `index` to a disk block. With allocate=true missing
  // blocks (and missing indirect blocks) are allocated. Returns 0 for holes
  // when allocate=false.
  Result<uint32_t> GetFileBlock(uint32_t ino, DiskInode& inode, uint64_t index,
                                bool allocate);
  // Frees every data and indirect block of the inode beyond
  // `first_dead_index`.
  Status FreeFileBlocks(DiskInode& inode, uint64_t first_dead_index);

  // --- Directories --------------------------------------------------------
  // Scans directory `dir_ino` for `name`; returns the inode or NOT_FOUND.
  Result<uint32_t> DirLookup(uint32_t dir_ino, std::string_view name);
  Status DirAdd(uint32_t dir_ino, std::string_view name, uint32_t ino);
  Status DirRemove(uint32_t dir_ino, std::string_view name);
  Result<bool> DirEmpty(uint32_t dir_ino);
  Result<std::vector<std::pair<std::string, uint32_t>>> DirEntries(
      uint32_t dir_ino);

  // Resolves a path to an inode number.
  Result<uint32_t> Resolve(std::string_view path);
  // Resolves the parent directory of `path`.
  Result<uint32_t> ResolveParent(std::string_view path);

  // Metadata write helper honoring sync_metadata.
  Status MetaWrite(uint64_t block, uint64_t offset,
                   std::span<const uint8_t> data);

  Result<uint64_t> ReadAt(uint32_t ino, DiskInode& inode, uint64_t offset,
                          std::span<uint8_t> out);
  Result<uint64_t> WriteAt(uint32_t ino, DiskInode& inode, uint64_t offset,
                           std::span<const uint8_t> data);

  uint32_t PointersPerBlock() const {
    return static_cast<uint32_t>(options_.block_bytes / 4);
  }
  uint64_t GroupOfBlock(uint64_t block) const;

  DiskDevice& disk_;
  DiskFsOptions options_;
  BufferCache cache_;
  Layout layout_;
  Stats stats_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_FS_DISK_FS_H_
