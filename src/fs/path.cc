#include "src/fs/path.h"

namespace ssmc {

bool IsValidPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return false;
  }
  if (path == "/") {
    return true;
  }
  if (path.back() == '/') {
    return false;
  }
  size_t start = 1;
  while (start <= path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string_view::npos) {
      end = path.size();
    }
    const std::string_view component = path.substr(start, end - start);
    if (component.empty() || component == "." || component == "..") {
      return false;
    }
    start = end + 1;
  }
  return true;
}

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> components;
  if (path == "/") {
    return components;
  }
  size_t start = 1;
  while (start < path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string_view::npos) {
      end = path.size();
    }
    components.emplace_back(path.substr(start, end - start));
    start = end + 1;
  }
  return components;
}

std::string ParentPath(std::string_view path) {
  if (path == "/") {
    return "/";
  }
  const size_t slash = path.rfind('/');
  if (slash == 0) {
    return "/";
  }
  return std::string(path.substr(0, slash));
}

std::string BaseName(std::string_view path) {
  if (path == "/") {
    return "";
  }
  const size_t slash = path.rfind('/');
  return std::string(path.substr(slash + 1));
}

std::string_view ParentPathView(std::string_view path) {
  if (path == "/") {
    return path;
  }
  const size_t slash = path.rfind('/');
  if (slash == 0) {
    return path.substr(0, 1);
  }
  return path.substr(0, slash);
}

std::string_view BaseNameView(std::string_view path) {
  if (path == "/") {
    return {};
  }
  return path.substr(path.rfind('/') + 1);
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  if (dir == "/") {
    return "/" + std::string(name);
  }
  return std::string(dir) + "/" + std::string(name);
}

}  // namespace ssmc
