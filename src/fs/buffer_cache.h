// Buffer cache for the conventional disk file system.
//
// Exactly the structure the paper says a memory-resident file system makes
// unnecessary: an LRU cache of disk blocks in (volatile) DRAM that exists to
// hide disk latency. Write-back: dirty blocks are written to disk on
// eviction or on Sync(). Cache block size is a multiple of the disk sector
// size (classically 4 KiB on 512 B sectors).

#ifndef SSMC_SRC_FS_BUFFER_CACHE_H_
#define SSMC_SRC_FS_BUFFER_CACHE_H_

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/device/disk_device.h"
#include "src/sim/stats.h"
#include "src/support/extent.h"
#include "src/support/status.h"

namespace ssmc {

class BufferCache {
 public:
  // capacity_blocks of block_bytes each; block_bytes must be a multiple of
  // the disk's sector size.
  BufferCache(DiskDevice& disk, uint64_t block_bytes,
              uint64_t capacity_blocks);

  uint64_t block_bytes() const { return block_bytes_; }
  uint64_t capacity_blocks() const { return capacity_blocks_; }
  uint64_t num_blocks() const { return disk_.capacity_bytes() / block_bytes_; }
  uint64_t cached_blocks() const { return entries_.size(); }

  // Reads a whole cache block (through the cache).
  Status Read(uint64_t block, std::span<uint8_t> out);

  // Writes a whole cache block (dirty in cache; disk write deferred).
  Status Write(uint64_t block, std::span<const uint8_t> data);

  // Partial update within one block: read-modify-write through the cache.
  Status WritePartial(uint64_t block, uint64_t offset,
                      std::span<const uint8_t> data);

  // Writes all dirty blocks back to disk.
  Status Sync();

  // Writes one block back immediately if dirty (synchronous-metadata
  // policy of classical UNIX file systems).
  Status FlushBlock(uint64_t block);

  // Drops a block without writeback (its file was freed).
  void Invalidate(uint64_t block);

  // Writes back everything dirty, then empties the cache (cold-start
  // simulation for launch-latency experiments).
  Status DropAll();

  struct Stats {
    Counter hits;
    Counter misses;
    Counter writebacks;       // Dirty blocks written to disk.
    Counter writeback_bytes;
    Counter read_bytes;       // Bytes served to callers.
  };
  const Stats& stats() const { return stats_; }

 private:
  // Block payloads are slab-pooled extents: eviction/refill churn recycles
  // fixed buffers instead of reallocating a vector per miss.
  struct Entry {
    PayloadRef data;
    bool dirty = false;
    std::list<uint64_t>::iterator lru_it;
  };

  // Returns the cache entry for `block`, faulting it in from disk if needed
  // (fill=false skips the disk read for full overwrites).
  Result<Entry*> GetEntry(uint64_t block, bool fill);
  Status EvictOne();
  Status WriteBack(uint64_t block, Entry& entry);

  uint64_t SectorOfBlock(uint64_t block) const {
    return block * (block_bytes_ / disk_.sector_bytes());
  }

  DiskDevice& disk_;
  uint64_t block_bytes_;
  uint64_t capacity_blocks_;
  ExtentPool pool_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;  // Front = least recently used.
  Stats stats_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_FS_BUFFER_CACHE_H_
